package fibril_test

import (
	"math"
	"sync/atomic"
	"testing"

	"fibril"
)

// Edge-case coverage for the lazily-split loops: degenerate ranges, grain
// extremes, zero-length collections, and cross-P determinism of Reduce.

func TestForEmptyRange(t *testing.T) {
	rt := fibril.New(fibril.Config{Workers: 2})
	ran := 0
	rt.Run(func(w *fibril.W) {
		fibril.For(w, 5, 5, 4, func(w *fibril.W, i int) { ran++ })  // hi == lo
		fibril.For(w, 9, 2, 4, func(w *fibril.W, i int) { ran++ })  // hi < lo
		fibril.For(w, -3, -8, 0, func(w *fibril.W, i int) { ran++ }) // negative, inverted, auto-grain
	})
	if ran != 0 {
		t.Errorf("empty/inverted ranges ran %d iterations, want 0", ran)
	}
}

func TestForGrainLargerThanRange(t *testing.T) {
	rt := fibril.New(fibril.Config{Workers: 4})
	var n atomic.Int32
	rt.Run(func(w *fibril.W) {
		fibril.For(w, 10, 20, 1000, func(w *fibril.W, i int) { n.Add(1) })
	})
	if got := n.Load(); got != 10 {
		t.Errorf("grain > range ran %d iterations, want 10", got)
	}
}

func TestForAutoGrainCoversExactlyOnce(t *testing.T) {
	rt := fibril.New(fibril.Config{Workers: 4})
	for _, n := range []int{1, 2, 255, 256, 257, 5000} {
		counts := make([]atomic.Int32, n)
		rt.Run(func(w *fibril.W) {
			fibril.For(w, 0, n, 0, func(w *fibril.W, i int) { counts[i].Add(1) })
		})
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("n=%d auto-grain: index %d ran %d times, want 1", n, i, got)
			}
		}
	}
}

func TestForEachAndMapZeroLength(t *testing.T) {
	rt := fibril.New(fibril.Config{Workers: 2})
	rt.Run(func(w *fibril.W) {
		fibril.ForEach(w, []int(nil), 4, func(w *fibril.W, v *int) {
			t.Error("ForEach over nil slice ran a body")
		})
		fibril.ForEach(w, []string{}, 0, func(w *fibril.W, v *string) {
			t.Error("ForEach over empty slice ran a body")
		})
		fibril.Map(w, []int{}, []int{}, 4, func(w *fibril.W, v int) int {
			t.Error("Map over empty slices ran a body")
			return v
		})
	})
}

// TestReduceDeterministicAcrossWorkers pins the lazy splitter's promise
// that the combine-tree shape depends only on (lo, hi, grain): a
// floating-point sum — where reassociation changes the bits — must come
// out bit-identical at P = 1, 2, 4, for explicit and automatic grain, no
// matter how the fork decisions fell.
func TestReduceDeterministicAcrossWorkers(t *testing.T) {
	const n = 10_000
	f := func(w *fibril.W, i int) float64 { return math.Sqrt(float64(i)) * 1e-3 }
	sum := func(a, b float64) float64 { return a + b }
	for _, grain := range []int{7, 0} { // explicit and auto
		var want float64
		var wantBits uint64
		for pi, p := range []int{1, 2, 4} {
			rt := fibril.New(fibril.Config{Workers: p})
			var got float64
			// Several rounds per P: scheduling varies run to run, and the
			// result must not.
			for round := 0; round < 5; round++ {
				rt.Run(func(w *fibril.W) {
					got = fibril.Reduce(w, 0, n, grain, 0, f, sum)
				})
				if pi == 0 && round == 0 {
					want, wantBits = got, math.Float64bits(got)
					continue
				}
				if math.Float64bits(got) != wantBits {
					t.Fatalf("grain=%d P=%d round %d: sum %v (bits %#x) differs from P=1 result %v (bits %#x)",
						grain, p, round, got, math.Float64bits(got), want, wantBits)
				}
			}
		}
	}
}
