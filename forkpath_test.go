package fibril_test

import (
	"runtime"
	"sync/atomic"
	"testing"
	"unsafe"

	"fibril"
	"fibril/internal/core"
)

// nopArgTask is the empty argument-carrying task body used by the fork
// fast-path benchmarks and gates; package-level, so its func value is
// static and contributes no allocation.
func nopArgTask(*core.W, unsafe.Pointer) {}

// mallocsDuring runs body on a single-worker runtime and returns the heap
// allocation count of the body region alone (warm-up excluded), measured
// with ReadMemStats inside the Run so the runtime's own setup and
// shutdown don't pollute the figure.
func mallocsDuring(rt *core.Runtime, warm, body func(w *core.W)) uint64 {
	var before, after runtime.MemStats
	rt.Run(func(w *core.W) {
		warm(w)
		runtime.ReadMemStats(&before)
		body(w)
		runtime.ReadMemStats(&after)
	})
	return after.Mallocs - before.Mallocs
}

// TestForkPathGate is the CI benchmark-regression gate for the fork fast
// path, hard assertions only (timing comparisons live in the forkpath
// experiment, which CI runs as a smoke):
//
//  1. the ForkArg steady state on the default (THE) deque performs zero
//     heap allocations per fork/join pair;
//  2. a lazily-split For performs O(1) allocations per call — not the
//     O(n/grain) closures the eager splitter paid — even at grain 1.
func TestForkPathGate(t *testing.T) {
	t.Run("forkarg-zero-alloc", func(t *testing.T) {
		const iters = 200_000
		got := mallocsDuring(core.NewRuntime(core.Config{Workers: 1}),
			func(w *core.W) {
				var fr core.Frame
				w.Init(&fr)
				for i := 0; i < 256; i++ { // warm the slot arena and deque ring
					w.ForkArg(&fr, nopArgTask, nil)
					w.Join(&fr)
				}
			},
			func(w *core.W) {
				var fr core.Frame
				w.Init(&fr)
				for i := 0; i < iters; i++ {
					w.ForkArg(&fr, nopArgTask, nil)
					w.Join(&fr)
				}
			})
		// A handful of background mallocs (GC bookkeeping) are tolerated;
		// anything proportional to the iteration count is a regression.
		if got > 64 {
			t.Errorf("ForkArg steady state allocated %d times over %d fork/join pairs, want ~0", got, iters)
		}
	})

	t.Run("forkarg-zero-alloc-stealing", func(t *testing.T) {
		// The steal-heavy variant of the gate above: P=4 with real thieves,
		// forking four tasks per join so the deque always holds a stealable
		// surplus. The zero-allocation property must survive stealing, with
		// a per-kind budget for what each protocol intrinsically boxes:
		//
		//   - THE stores tasks inline in its ring: zero per-op allocations,
		//     plus a per-steal allowance for suspend/resume bookkeeping;
		//   - relaxed boxes a node per *publication*; the fork/join loop
		//     drains its own window every join, so publications are bounded
		//     by one per round (a quarter of the forks), not one per fork;
		//   - Chase–Lev boxes every push (~1 alloc per fork) and is gated
		//     to stay in that band rather than at zero.
		for _, kind := range core.DequeKinds() {
			kind := kind
			t.Run(kind.String(), func(t *testing.T) {
				const rounds, width = 25_000, 4
				const ops = rounds * width
				forkRounds := func(w *core.W, n int) {
					var fr core.Frame
					w.Init(&fr)
					for i := 0; i < n; i++ {
						for k := 0; k < width; k++ {
							w.ForkArg(&fr, nopArgTask, nil)
						}
						w.Join(&fr)
					}
				}
				rt := core.NewRuntime(core.Config{Workers: 4, Deque: kind})
				got := mallocsDuring(rt,
					func(w *core.W) { forkRounds(w, 256) },
					func(w *core.W) { forkRounds(w, rounds) })
				steals := uint64(rt.Stats().Steals)
				var budget uint64
				switch kind {
				case core.DequeChaseLev:
					budget = 2*ops + 64 + 32*steals
				case core.DequeRelaxed:
					budget = ops/2 + 64 + 32*steals
				default:
					budget = 64 + 32*steals
				}
				t.Logf("%s: %d allocs over %d forks with %d steals (budget %d)",
					kind, got, ops, steals, budget)
				if got > budget {
					t.Errorf("%s under stealing allocated %d times over %d forks (%d steals), budget %d",
						kind, got, ops, steals, budget)
				}
			})
		}
	})

	t.Run("lazy-for-alloc-bound", func(t *testing.T) {
		const n, reps = 4096, 64
		var sink atomic.Int64
		got := mallocsDuring(core.NewRuntime(core.Config{Workers: 1}),
			func(w *core.W) {
				fibril.For(w, 0, n, 1, func(w *fibril.W, i int) { sink.Add(int64(i)) })
			},
			func(w *core.W) {
				for r := 0; r < reps; r++ {
					fibril.For(w, 0, n, 1, func(w *fibril.W, i int) { sink.Add(int64(i)) })
				}
			})
		// Each For call may allocate its body closure and a few cold arena
		// blocks; the eager splitter allocated ~2 closures per split, i.e.
		// thousands per call at grain 1.
		perCall := got / reps
		t.Logf("lazy For: %d allocs over %d calls of n=%d grain=1 (%d/call)", got, reps, n, perCall)
		if perCall > 64 {
			t.Errorf("lazy For allocated %d times per call (n=%d, grain=1), want O(1)", perCall, n)
		}
	})

	t.Run("lazy-vs-eager-smoke", func(t *testing.T) {
		if testing.Short() {
			t.Skip("timing smoke skipped in -short")
		}
		// Informational ns/op comparison between the lazy For and the old
		// eager splitter (reconstructed here); no timing assertion — CI
		// machines are too noisy — but the numbers land in the test log.
		const n = 1 << 16
		var sink atomic.Int64
		body := func(w *fibril.W, i int) { sink.Add(int64(i)) }
		rt := fibril.New(fibril.Config{Workers: 4})
		lazy := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rt.Run(func(w *fibril.W) { fibril.For(w, 0, n, 64, body) })
			}
		})
		eager := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rt.Run(func(w *fibril.W) { eagerFor(w, 0, n, 64, body) })
			}
		})
		t.Logf("For over n=%d grain=64: lazy %d ns/op, eager %d ns/op", n, lazy.NsPerOp(), eager.NsPerOp())
	})
}

// eagerFor is the pre-lazy-splitting For, kept as the smoke baseline:
// recursively fork one half down to the grain, unconditionally.
func eagerFor(w *fibril.W, lo, hi, grain int, body func(*fibril.W, int)) {
	if hi-lo > grain {
		mid := lo + (hi-lo)/2
		var fr fibril.Frame
		w.Init(&fr)
		w.Fork(&fr, func(w *fibril.W) { eagerFor(w, lo, mid, grain, body) })
		w.Call(func(w *fibril.W) { eagerFor(w, mid, hi, grain, body) })
		w.Join(&fr)
		return
	}
	for i := lo; i < hi; i++ {
		body(w, i)
	}
}
