package fibril_test

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"fibril"
)

func parfib(w *fibril.W, n int, out *int64) {
	if n < 2 {
		*out = int64(n)
		return
	}
	var fr fibril.Frame
	w.Init(&fr)
	var x, y int64
	w.Fork(&fr, func(w *fibril.W) { parfib(w, n-1, &x) })
	w.Call(func(w *fibril.W) { parfib(w, n-2, &y) })
	w.Join(&fr)
	*out = x + y
}

func TestRunQuickstart(t *testing.T) {
	var result int64
	stats := fibril.Run(func(w *fibril.W) { parfib(w, 20, &result) })
	if result != 6765 {
		t.Errorf("parfib(20) = %d, want 6765", result)
	}
	if stats.Forks == 0 {
		t.Error("no forks recorded")
	}
}

func TestCElisionRule(t *testing.T) {
	// The serial elision — Fork replaced by Call, Init/Join dropped —
	// must compute the same value (§4.1).
	var elided func(w *fibril.W, n int, out *int64)
	elided = func(w *fibril.W, n int, out *int64) {
		if n < 2 {
			*out = int64(n)
			return
		}
		var x, y int64
		w.Call(func(w *fibril.W) { elided(w, n-1, &x) })
		w.Call(func(w *fibril.W) { elided(w, n-2, &y) })
		*out = x + y
	}
	var parallel, serial int64
	fibril.Run(func(w *fibril.W) { parfib(w, 18, &parallel) })
	fibril.New(fibril.Config{Workers: 1}).Run(func(w *fibril.W) { elided(w, 18, &serial) })
	if parallel != serial {
		t.Errorf("parallel %d != serial elision %d", parallel, serial)
	}
}

func TestAllExportedStrategiesRun(t *testing.T) {
	for _, s := range fibril.Strategies() {
		rt := fibril.New(fibril.Config{Workers: 4, Strategy: s})
		var n atomic.Int64
		rt.Run(func(w *fibril.W) {
			var fr fibril.Frame
			w.Init(&fr)
			for i := 0; i < 16; i++ {
				w.Fork(&fr, func(w *fibril.W) { n.Add(1) })
			}
			w.Join(&fr)
		})
		if n.Load() != 16 {
			t.Errorf("%v: completed %d of 16 children", s, n.Load())
		}
	}
}

func ExampleRun() {
	var result int64
	fibril.Run(func(w *fibril.W) { parfib(w, 10, &result) })
	fmt.Println(result)
	// Output: 55
}

func ExampleNew() {
	rt := fibril.New(fibril.Config{Workers: 4, Strategy: fibril.Fibril})
	var sum atomic.Int64
	rt.Run(func(w *fibril.W) {
		var fr fibril.Frame
		w.Init(&fr)
		for i := 1; i <= 4; i++ {
			i := i
			w.Fork(&fr, func(w *fibril.W) { sum.Add(int64(i)) })
		}
		w.Join(&fr)
	})
	fmt.Println(sum.Load())
	// Output: 10
}

// TestConfigSingleWorker pins the serial degenerate case: with one worker
// there is no thief, so the run must complete with zero steals and zero
// suspensions — the scheduler reduces to the C elision.
func TestConfigSingleWorker(t *testing.T) {
	rt := fibril.New(fibril.Config{Workers: 1})
	var result int64
	stats := rt.Run(func(w *fibril.W) { parfib(w, 18, &result) })
	if result != 2584 {
		t.Fatalf("parfib(18) = %d, want 2584", result)
	}
	if stats.Steals != 0 || stats.Suspends != 0 {
		t.Errorf("P=1 run recorded steals=%d suspends=%d, want 0/0", stats.Steals, stats.Suspends)
	}
	if stats.Workers != 1 {
		t.Errorf("Stats.Workers = %d, want 1", stats.Workers)
	}
}

// TestConfigOversubscribed runs with more workers than GOMAXPROCS: the
// runtime must still produce the right answer (thieves time-slice).
func TestConfigOversubscribed(t *testing.T) {
	workers := runtime.GOMAXPROCS(0) * 4
	rt := fibril.New(fibril.Config{Workers: workers})
	var result int64
	stats := rt.Run(func(w *fibril.W) { parfib(w, 20, &result) })
	if result != 6765 {
		t.Fatalf("parfib(20) with %d workers = %d, want 6765", workers, result)
	}
	if stats.Workers != workers {
		t.Errorf("Stats.Workers = %d, want %d", stats.Workers, workers)
	}
}

// TestConfigDequeKinds drives both deque implementations through the
// public façade and requires identical results.
func TestConfigDequeKinds(t *testing.T) {
	for _, dk := range fibril.DequeKinds() {
		rt := fibril.New(fibril.Config{Workers: 4, Deque: dk})
		var result int64
		rt.Run(func(w *fibril.W) { parfib(w, 22, &result) })
		if result != 17711 {
			t.Errorf("deque %v: parfib(22) = %d, want 17711", dk, result)
		}
	}
}

// TestPanicPropagatesFromRun pins the panic contract at the API boundary:
// a panic in a forked task resurfaces from Run as a *fibril.TaskPanic
// carrying the original value, errors.As can unwrap error values, and the
// runtime is reusable afterwards.
func TestPanicPropagatesFromRun(t *testing.T) {
	rt := fibril.New(fibril.Config{Workers: 2})
	boom := errors.New("boom")
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		rt.Run(func(w *fibril.W) {
			var fr fibril.Frame
			w.Init(&fr)
			w.Fork(&fr, func(*fibril.W) { panic(boom) })
			w.Join(&fr)
		})
	}()
	tp, ok := recovered.(*fibril.TaskPanic)
	if !ok {
		t.Fatalf("recovered %T (%v), want *fibril.TaskPanic", recovered, recovered)
	}
	if tp.Value != boom {
		t.Errorf("TaskPanic.Value = %v, want %v", tp.Value, boom)
	}
	if !errors.Is(tp, boom) {
		t.Error("errors.Is(TaskPanic, boom) = false, want true")
	}
	// The runtime must have quiesced cleanly and be usable again.
	var result int64
	rt.Run(func(w *fibril.W) { parfib(w, 15, &result) })
	if result != 610 {
		t.Errorf("post-panic reuse: parfib(15) = %d, want 610", result)
	}
}

// TestPanicFromRootTask checks the root-task path: a panic that never
// crosses a Join still surfaces from Run wrapped in TaskPanic.
func TestPanicFromRootTask(t *testing.T) {
	rt := fibril.New(fibril.Config{Workers: 2})
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		rt.Run(func(w *fibril.W) { panic("root boom") })
	}()
	tp, ok := recovered.(*fibril.TaskPanic)
	if !ok {
		t.Fatalf("recovered %T (%v), want *fibril.TaskPanic", recovered, recovered)
	}
	if tp.Value != "root boom" {
		t.Errorf("TaskPanic.Value = %v, want \"root boom\"", tp.Value)
	}
}
