package fibril_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	"fibril"
)

func parfib(w *fibril.W, n int, out *int64) {
	if n < 2 {
		*out = int64(n)
		return
	}
	var fr fibril.Frame
	w.Init(&fr)
	var x, y int64
	w.Fork(&fr, func(w *fibril.W) { parfib(w, n-1, &x) })
	w.Call(func(w *fibril.W) { parfib(w, n-2, &y) })
	w.Join(&fr)
	*out = x + y
}

func TestRunQuickstart(t *testing.T) {
	var result int64
	stats := fibril.Run(func(w *fibril.W) { parfib(w, 20, &result) })
	if result != 6765 {
		t.Errorf("parfib(20) = %d, want 6765", result)
	}
	if stats.Forks == 0 {
		t.Error("no forks recorded")
	}
}

func TestCElisionRule(t *testing.T) {
	// The serial elision — Fork replaced by Call, Init/Join dropped —
	// must compute the same value (§4.1).
	var elided func(w *fibril.W, n int, out *int64)
	elided = func(w *fibril.W, n int, out *int64) {
		if n < 2 {
			*out = int64(n)
			return
		}
		var x, y int64
		w.Call(func(w *fibril.W) { elided(w, n-1, &x) })
		w.Call(func(w *fibril.W) { elided(w, n-2, &y) })
		*out = x + y
	}
	var parallel, serial int64
	fibril.Run(func(w *fibril.W) { parfib(w, 18, &parallel) })
	fibril.New(fibril.Config{Workers: 1}).Run(func(w *fibril.W) { elided(w, 18, &serial) })
	if parallel != serial {
		t.Errorf("parallel %d != serial elision %d", parallel, serial)
	}
}

func TestAllExportedStrategiesRun(t *testing.T) {
	for _, s := range fibril.Strategies() {
		rt := fibril.New(fibril.Config{Workers: 4, Strategy: s})
		var n atomic.Int64
		rt.Run(func(w *fibril.W) {
			var fr fibril.Frame
			w.Init(&fr)
			for i := 0; i < 16; i++ {
				w.Fork(&fr, func(w *fibril.W) { n.Add(1) })
			}
			w.Join(&fr)
		})
		if n.Load() != 16 {
			t.Errorf("%v: completed %d of 16 children", s, n.Load())
		}
	}
}

func ExampleRun() {
	var result int64
	fibril.Run(func(w *fibril.W) { parfib(w, 10, &result) })
	fmt.Println(result)
	// Output: 55
}

func ExampleNew() {
	rt := fibril.New(fibril.Config{Workers: 4, Strategy: fibril.Fibril})
	var sum atomic.Int64
	rt.Run(func(w *fibril.W) {
		var fr fibril.Frame
		w.Init(&fr)
		for i := 1; i <= 4; i++ {
			i := i
			w.Fork(&fr, func(w *fibril.W) { sum.Add(int64(i)) })
		}
		w.Join(&fr)
	})
	fmt.Println(sum.Load())
	// Output: 10
}
