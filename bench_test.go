// Root benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (SPAA 2016, §5), built on the same code as
// cmd/fibril-bench. Custom metrics carry the non-time quantities the
// paper's tables report (steals, unmaps, page faults, stack pages).
//
//	go test -bench=. -benchmem            # everything, CI-scale inputs
//	go test -bench BenchmarkFig4 -benchtime 1x
package fibril_test

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"fibril"
	"fibril/internal/bench"
	"fibril/internal/core"
	"fibril/internal/deque"
	"fibril/internal/invoke"
	"fibril/internal/sim"
)

// benchArgs are fixed CI-scale inputs so benchmark numbers are comparable
// run to run.
func benchArg(s *bench.Spec) bench.Arg {
	switch s.Name {
	case "fib":
		return bench.Arg{N: 22}
	case "integrate":
		return bench.Arg{N: 50, M: 2}
	case "knapsack":
		return bench.Arg{N: 20}
	case "nqueens":
		return bench.Arg{N: 9}
	case "quicksort":
		return bench.Arg{N: 150_000}
	case "matmul", "lu", "cholesky", "rectmul":
		return bench.Arg{N: 128}
	case "strassen":
		return bench.Arg{N: 128}
	case "fft":
		return bench.Arg{N: 13}
	case "heat":
		return bench.Arg{N: 96, M: 10}
	case "adversarial":
		return bench.Arg{N: 32, M: 64}
	}
	return s.Default
}

// BenchmarkFig3 measures what Figure 3 plots: each runtime's single-worker
// execution of each benchmark (compare against the Serial sub-benchmarks
// to form Tserial/T1).
func BenchmarkFig3(b *testing.B) {
	strategies := []core.Strategy{
		core.StrategyFibril, core.StrategyCilkPlus, core.StrategyTBB,
		core.StrategyGoroutine,
	}
	for _, s := range bench.All() {
		if s.Name == "adversarial" {
			continue
		}
		a := benchArg(s)
		b.Run(s.Name+"/serial", func(b *testing.B) {
			var sink uint64
			for i := 0; i < b.N; i++ {
				sink += s.Serial(a)
			}
			_ = sink
		})
		for _, strat := range strategies {
			b.Run(s.Name+"/"+strat.String(), func(b *testing.B) {
				rt := core.NewRuntime(core.Config{
					Workers: 1, Strategy: strat, StackPages: 4096,
				})
				var sink uint64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rt.Run(func(w *core.W) { sink += s.Parallel(w, a) })
				}
				_ = sink
			})
		}
	}
}

// BenchmarkFig4 measures what Figure 4 plots: simulated execution across
// worker counts; the reported sim-speedup metric is T1work/Tp.
func BenchmarkFig4(b *testing.B) {
	for _, name := range []string{"fib", "nqueens", "quicksort", "heat", "matmul"} {
		s := bench.Get(name)
		a := benchArg(s)
		work := invoke.Analyze(s.Tree(a)).Work
		for _, p := range []int{1, 8, 32, 72} {
			for _, strat := range []core.Strategy{core.StrategyFibril, core.StrategyTBB} {
				b.Run(benchName(name, strat, p), func(b *testing.B) {
					var last sim.Result
					for i := 0; i < b.N; i++ {
						cfg := sim.Config{Workers: p, Strategy: strat}
						if strat == core.StrategyTBB {
							cfg.StackPages = 2048
						}
						last = sim.Run(cfg, s.Tree(a))
					}
					b.ReportMetric(float64(work)/float64(last.Makespan), "sim-speedup")
				})
			}
		}
	}
}

func benchName(n string, s core.Strategy, p int) string {
	return n + "/" + s.String() + "/p=" + itoa(p)
}

func itoa(p int) string {
	if p >= 10 {
		return string(rune('0'+p/10)) + string(rune('0'+p%10))
	}
	return string(rune('0' + p))
}

// BenchmarkTable2 regenerates Table 2's counters (steals, unmaps, page
// faults) as reported metrics.
func BenchmarkTable2(b *testing.B) {
	for _, name := range []string{"fib", "quicksort", "nqueens"} {
		s := bench.Get(name)
		a := benchArg(s)
		b.Run(name, func(b *testing.B) {
			var last sim.Result
			for i := 0; i < b.N; i++ {
				last = sim.Run(sim.Config{Workers: 16, Strategy: core.StrategyFibril}, s.Tree(a))
			}
			b.ReportMetric(float64(last.Steals), "steals")
			b.ReportMetric(float64(last.Unmaps), "unmaps")
			b.ReportMetric(float64(last.VM.PageFaults), "faults")
		})
	}
}

// BenchmarkTable3 regenerates Table 3: S_P/P against the S1+D bound.
func BenchmarkTable3(b *testing.B) {
	for _, name := range []string{"fib", "quicksort", "strassen"} {
		s := bench.Get(name)
		a := benchArg(s)
		m := invoke.Analyze(s.Tree(a))
		b.Run(name, func(b *testing.B) {
			var last sim.Result
			for i := 0; i < b.N; i++ {
				last = sim.Run(sim.Config{Workers: 16, Strategy: core.StrategyFibril}, s.Tree(a))
			}
			b.ReportMetric(last.MaxStackPagesPerWorker(), "pages/worker")
			b.ReportMetric(float64(m.FibrilDepth), "D")
		})
	}
}

// BenchmarkTable4 regenerates Table 4: stack RSS and stack counts.
func BenchmarkTable4(b *testing.B) {
	s := bench.Get("quicksort")
	a := benchArg(s)
	for _, strat := range []core.Strategy{core.StrategyFibril, core.StrategyFibrilNoUnmap} {
		b.Run(strat.String(), func(b *testing.B) {
			var last sim.Result
			for i := 0; i < b.N; i++ {
				cfg := sim.Config{Workers: 16, Strategy: strat}
				last = sim.Run(cfg, s.Tree(a))
			}
			b.ReportMetric(float64(last.VM.MaxRSSPages), "rss-pages")
			b.ReportMetric(float64(last.StacksCreated), "stacks")
		})
	}
}

// BenchmarkAblationMMap measures the §4.3 design choice: madvise vs
// serialized mmap unmap at high steal rates.
func BenchmarkAblationMMap(b *testing.B) {
	s := bench.Get("fib")
	a := benchArg(s)
	for _, strat := range []core.Strategy{core.StrategyFibril, core.StrategyFibrilMMap} {
		b.Run(strat.String(), func(b *testing.B) {
			var last sim.Result
			for i := 0; i < b.N; i++ {
				last = sim.Run(sim.Config{Workers: 32, Strategy: strat}, s.Tree(a))
			}
			b.ReportMetric(float64(last.Makespan), "sim-Tp")
		})
	}
}

// BenchmarkAblationDepthRestricted measures the Sukha-direction gap on the
// adversarial workload.
func BenchmarkAblationDepthRestricted(b *testing.B) {
	s := bench.Adversarial
	a := benchArg(s)
	for _, strat := range []core.Strategy{
		core.StrategyFibril, core.StrategyTBB, core.StrategyLeapfrog,
	} {
		b.Run(strat.String(), func(b *testing.B) {
			var last sim.Result
			for i := 0; i < b.N; i++ {
				cfg := sim.Config{Workers: 16, Strategy: strat, StackPages: 2048}
				last = sim.Run(cfg, s.Tree(a))
			}
			b.ReportMetric(float64(last.Makespan), "sim-Tp")
		})
	}
}

// BenchmarkForkJoin is the microbenchmark behind Figure 3's story: the
// cost of one fork+join pair on the real runtime, per strategy.
func BenchmarkForkJoin(b *testing.B) {
	for _, strat := range []core.Strategy{
		core.StrategyFibril, core.StrategyCilkPlus, core.StrategyTBB,
	} {
		b.Run(strat.String(), func(b *testing.B) {
			rt := core.NewRuntime(core.Config{Workers: 1, Strategy: strat})
			b.ResetTimer()
			rt.Run(func(w *core.W) {
				var fr core.Frame
				w.Init(&fr)
				for i := 0; i < b.N; i++ {
					w.Fork(&fr, func(*core.W) {})
					w.Join(&fr)
				}
			})
		})
	}
}

// BenchmarkForkJoinOverhead measures the per-strategy cost of one
// fork+join pair (Figure 3 spirit) for both deque implementations, so the
// fork fast path's cost — and the Chase–Lev boxing cost — stay visible.
// The forkarg lanes run the same loop through the zero-allocation
// (code pointer, argument pointer) fork: on the THE deque they must report
// 0 allocs/op (TestForkPathGate enforces it); on Chase–Lev the one boxing
// allocation per push remains, by design.
func BenchmarkForkJoinOverhead(b *testing.B) {
	for _, strat := range []core.Strategy{
		core.StrategyFibril, core.StrategyCilkPlus, core.StrategyTBB,
		core.StrategyLeapfrog,
	} {
		for _, kind := range core.DequeKinds() {
			b.Run(strat.String()+"/"+kind.String(), func(b *testing.B) {
				rt := core.NewRuntime(core.Config{
					Workers: 1, Strategy: strat, Deque: kind,
				})
				b.ReportAllocs()
				b.ResetTimer()
				rt.Run(func(w *core.W) {
					var fr core.Frame
					w.Init(&fr)
					for i := 0; i < b.N; i++ {
						w.Fork(&fr, func(*core.W) {})
						w.Join(&fr)
					}
				})
			})
		}
	}
	for _, kind := range core.DequeKinds() {
		b.Run("forkarg/"+kind.String(), func(b *testing.B) {
			rt := core.NewRuntime(core.Config{Workers: 1, Deque: kind})
			b.ReportAllocs()
			b.ResetTimer()
			rt.Run(func(w *core.W) {
				var fr core.Frame
				w.Init(&fr)
				for i := 0; i < b.N; i++ {
					w.ForkArg(&fr, nopArgTask, nil)
					w.Join(&fr)
				}
			})
		})
	}
}

// BenchmarkStealThroughput measures pure steal throughput under thief
// contention: one producer fills the deque (untimed — Push cost is
// BenchmarkForkJoinOverhead's job), then P thieves race to drain it and
// only the drain is timed. The THE deque serializes every thief on a
// mutex; Chase–Lev resolves each steal with one CAS, which is the
// tentpole win this benchmark pins. Runs at GOMAXPROCS>=4 so thief
// contention is real even on small hosts.
func BenchmarkStealThroughput(b *testing.B) {
	const thieves = 4
	run := func(b *testing.B, push func(int), steal func() (int, bool)) {
		if prev := runtime.GOMAXPROCS(0); prev < 4 {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
		}
		for i := 0; i < b.N; i++ {
			push(i)
		}
		var consumed atomic.Int64
		start := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < thieves; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for {
					if _, ok := steal(); ok {
						consumed.Add(1)
						continue
					}
					if consumed.Load() >= int64(b.N) {
						return
					}
					runtime.Gosched()
				}
			}()
		}
		b.ResetTimer()
		close(start)
		wg.Wait()
		b.StopTimer()
	}
	b.Run("the", func(b *testing.B) {
		d := &deque.Deque[int]{}
		run(b, d.Push, d.Steal)
	})
	b.Run("chaselev", func(b *testing.B) {
		d := &deque.ChaseLev[int]{}
		run(b, d.Push, d.Steal)
	})
}

// BenchmarkPublicAPI exercises the exported package the way the quickstart
// does, so API-level overhead is tracked too.
func BenchmarkPublicAPI(b *testing.B) {
	rt := fibril.New(fibril.Config{Workers: 1})
	b.ReportAllocs()
	b.ResetTimer()
	rt.Run(func(w *fibril.W) {
		var fr fibril.Frame
		w.Init(&fr)
		for i := 0; i < b.N; i++ {
			w.Fork(&fr, func(*fibril.W) {})
			w.Join(&fr)
		}
	})
}
