package fibril

// Parallel-iteration helpers layered on Fork/Call/Join — the idioms the
// paper's benchmarks use by hand (heat's row splitting, fft's butterfly
// ranges), packaged the way a downstream user expects from a fork-join
// runtime. All of them follow the C elision rule: with grain ≥ the range
// size they degrade to a plain loop.

// For runs body(i) for every i in [lo, hi) in parallel, recursively
// splitting the range and forking one half — the divide-and-conquer loop
// of the Cilk tradition, whose span is O(log n) rather than the O(n) of
// spawning each iteration. grain is the largest range executed serially;
// grain ≤ 0 means 1.
//
// Iterations must be independent: For provides no ordering and no
// exclusion between them. A panic in any iteration surfaces at the
// enclosing For call (first panic wins).
func For(w *W, lo, hi, grain int, body func(w *W, i int)) {
	if grain <= 0 {
		grain = 1
	}
	forRange(w, lo, hi, grain, body)
}

func forRange(w *W, lo, hi, grain int, body func(w *W, i int)) {
	if hi-lo > grain {
		mid := lo + (hi-lo)/2
		var fr Frame
		w.Init(&fr)
		// Fork the left half; continue with the right half on this worker
		// (a call, per the C elision); join the forked half.
		w.Fork(&fr, func(w *W) { forRange(w, lo, mid, grain, body) })
		w.Call(func(w *W) { forRange(w, mid, hi, grain, body) })
		w.Join(&fr)
		return
	}
	for i := lo; i < hi; i++ {
		body(w, i)
	}
}

// ForEach runs body over every element of items in parallel, with the
// same splitting and grain semantics as For.
func ForEach[T any](w *W, items []T, grain int, body func(w *W, item *T)) {
	For(w, 0, len(items), grain, func(w *W, i int) { body(w, &items[i]) })
}

// Reduce computes the reduction of f(i) for i in [lo, hi) under an
// associative combine with the given identity, using the same recursive
// range splitting as For. Each worker-side subrange folds serially;
// subrange results combine pairwise up the recursion tree, so combine is
// invoked O(n/grain) times regardless of worker count.
//
// combine must be associative, and identity its neutral element;
// commutativity is NOT required (results combine in range order), so
// string concatenation or matrix products work. Floating-point addition
// combines in a deterministic tree shape fixed by (lo, hi, grain): results
// are reproducible run to run, though they may differ from the serial
// left-to-right sum by reassociation.
func Reduce[T any](w *W, lo, hi, grain int, identity T,
	f func(w *W, i int) T, combine func(a, b T) T) T {
	if grain <= 0 {
		grain = 1
	}
	return reduceRange(w, lo, hi, grain, identity, f, combine)
}

func reduceRange[T any](w *W, lo, hi, grain int, identity T,
	f func(w *W, i int) T, combine func(a, b T) T) T {
	if hi-lo <= grain {
		acc := identity
		for i := lo; i < hi; i++ {
			acc = combine(acc, f(w, i))
		}
		return acc
	}
	mid := lo + (hi-lo)/2
	var fr Frame
	w.Init(&fr)
	var left T
	w.Fork(&fr, func(w *W) { left = reduceRange(w, lo, mid, grain, identity, f, combine) })
	var right T
	w.Call(func(w *W) { right = reduceRange(w, mid, hi, grain, identity, f, combine) })
	w.Join(&fr)
	return combine(left, right)
}

// Map writes out[i] = f(in[i]) in parallel. out and in may alias (in-place
// transform); they must have equal length.
func Map[T, U any](w *W, out []U, in []T, grain int, f func(w *W, v T) U) {
	if len(out) != len(in) {
		panic("fibril: Map length mismatch")
	}
	For(w, 0, len(in), grain, func(w *W, i int) { out[i] = f(w, in[i]) })
}
