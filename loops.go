package fibril

import "fibril/internal/core"

// Parallel-iteration helpers layered on Fork/Call/Join — the idioms the
// paper's benchmarks use by hand (heat's row splitting, fft's butterfly
// ranges), packaged the way a downstream user expects from a fork-join
// runtime. All of them follow the C elision rule: with grain ≥ the range
// size they degrade to a plain loop.

// For runs body(i) for every i in [lo, hi) in parallel using steal-driven
// lazy splitting: the worker runs the range as serial chunks of grain
// iterations and forks the far half of its remaining range only when its
// deque is empty or a thief is parked hungry (W.ShouldSplit). A saturated
// system therefore runs tight serial loops — no per-half closure
// allocations, no deque traffic — while an idle one splits within one
// grain of work. Forked halves carry their descriptor in a per-worker
// arena block, so splitting allocates nothing either.
//
// grain is the largest range executed as one serial chunk (and the probe
// period); grain ≤ 0 selects an automatic grain from the range size.
//
// Iterations must be independent: For provides no ordering and no
// exclusion between them. A panic in any iteration surfaces at the
// enclosing For call (first panic wins).
func For(w *W, lo, hi, grain int, body func(w *W, i int)) {
	core.LazyFor(w, lo, hi, grain, body)
}

// ForEach runs body over every element of items in parallel, with the
// same lazy splitting and grain semantics as For.
func ForEach[T any](w *W, items []T, grain int, body func(w *W, item *T)) {
	if len(items) == 0 {
		return
	}
	For(w, 0, len(items), grain, func(w *W, i int) { body(w, &items[i]) })
}

// Reduce computes the reduction of f(i) for i in [lo, hi) under an
// associative combine with the given identity. The recursion always
// splits ranges at their midpoint down to the grain, so the combine-tree
// shape is fixed by (lo, hi, grain) alone — but whether a given split
// *forks* its left half or recurses into it serially is decided lazily by
// W.ShouldSplit, so a saturated system pays no fork traffic. Each leaf
// subrange folds serially; subrange results combine pairwise up the tree,
// so combine is invoked O(n/grain) times regardless of worker count.
//
// combine must be associative, and identity its neutral element;
// commutativity is NOT required (results combine in range order), so
// string concatenation or matrix products work. Floating-point addition
// combines in a deterministic tree shape fixed by (lo, hi, grain):
// results are bit-identical run to run and across worker counts — the
// automatic grain (grain ≤ 0) depends only on the range size, never on P
// — though they may differ from the serial left-to-right sum by
// reassociation.
func Reduce[T any](w *W, lo, hi, grain int, identity T,
	f func(w *W, i int) T, combine func(a, b T) T) T {
	if hi <= lo {
		return identity
	}
	if grain <= 0 {
		grain = core.AutoGrain(hi - lo)
	}
	return reduceRange(w, lo, hi, grain, identity, f, combine)
}

func reduceRange[T any](w *W, lo, hi, grain int, identity T,
	f func(w *W, i int) T, combine func(a, b T) T) T {
	if hi-lo <= grain {
		acc := identity
		for i := lo; i < hi; i++ {
			acc = combine(acc, f(w, i))
		}
		return acc
	}
	mid := lo + (hi-lo)/2
	if w.ShouldSplit() {
		var fr Frame
		w.Init(&fr)
		var left T
		w.Fork(&fr, func(w *W) { left = reduceRange(w, lo, mid, grain, identity, f, combine) })
		right := reduceRange(w, mid, hi, grain, identity, f, combine)
		w.Join(&fr)
		return combine(left, right)
	}
	// Saturated: same split, no fork — the tree shape (and therefore the
	// result, even for floating point) is identical either way.
	left := reduceRange(w, lo, mid, grain, identity, f, combine)
	right := reduceRange(w, mid, hi, grain, identity, f, combine)
	return combine(left, right)
}

// Map writes out[i] = f(in[i]) in parallel with For's lazy splitting. out
// and in may alias (in-place transform); they must have equal length.
func Map[T, U any](w *W, out []U, in []T, grain int, f func(w *W, v T) U) {
	if len(out) != len(in) {
		panic("fibril: Map length mismatch")
	}
	For(w, 0, len(in), grain, func(w *W, i int) { out[i] = f(w, in[i]) })
}
