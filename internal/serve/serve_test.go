package serve

import (
	"testing"

	"fibril/internal/core"
)

// TestCapacity pins the calibration contract: a positive requests/second
// estimate from a closed-loop run.
func TestCapacity(t *testing.T) {
	cap, err := Capacity(Config{Runtime: core.Config{Workers: 2}, Seed: 1}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if cap <= 0 {
		t.Fatalf("Capacity = %v, want > 0", cap)
	}
}

// TestRunLight drives a light open-loop load and checks the conservation
// and measurement contract: every request completes, none shed or
// drained, latencies measured, drain gauges zero.
func TestRunLight(t *testing.T) {
	res, err := Run(Config{
		Runtime:  core.Config{Workers: 2},
		Rate:     500,
		Requests: 40,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != int64(res.Offered) || res.Shed != 0 || res.Drained != 0 {
		t.Fatalf("conservation: %+v", res)
	}
	if res.Errors != 0 {
		t.Fatalf("unexpected job errors: %d", res.Errors)
	}
	if res.P50 <= 0 || res.P99 < res.P50 || res.P999 < res.P99 {
		t.Fatalf("latency quantiles not monotone-positive: p50=%v p99=%v p999=%v",
			res.P50, res.P99, res.P999)
	}
	if lat := res.Stats.JobsCompleted; lat != int64(res.Offered) {
		t.Fatalf("JobsCompleted=%d, want %d", lat, res.Offered)
	}
	if res.DrainQueuedTasks != 0 || res.DrainPendingReclaims != 0 {
		t.Fatalf("drain left state: queued=%d pending=%d",
			res.DrainQueuedTasks, res.DrainPendingReclaims)
	}
}

// TestRunShedOverload pins the overload posture: with MaxInflight bounded
// and AdmitShed, a rate far past capacity sheds rather than queues, and
// Submitted == Shed + Completed still balances.
func TestRunShedOverload(t *testing.T) {
	res, err := Run(Config{
		Runtime: core.Config{
			Workers:     2,
			MaxInflight: 2,
			Admission:   core.AdmitShed,
		},
		Rate:     50_000, // far past any 2-worker capacity for these shapes
		Requests: 120,
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed == 0 {
		t.Fatal("overload under AdmitShed shed nothing")
	}
	if got := res.Completed + res.Shed + res.Drained; got != int64(res.Offered) {
		t.Fatalf("conservation: completed=%d + shed=%d + drained=%d != offered=%d",
			res.Completed, res.Shed, res.Drained, res.Offered)
	}
	if res.Errors != 0 {
		t.Fatalf("unexpected job errors: %d", res.Errors)
	}
}

// TestRunQueueOverload pins the queueing posture: same overload, default
// AdmitQueue — nothing is shed, everything eventually completes (Run
// closes gracefully, so the admission queue fully drains).
func TestRunQueueOverload(t *testing.T) {
	res, err := Run(Config{
		Runtime: core.Config{
			Workers:     2,
			MaxInflight: 2,
		},
		Rate:     50_000,
		Requests: 80,
		Seed:     13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed != 0 || res.Drained != 0 {
		t.Fatalf("queue mode shed=%d drained=%d, want 0/0", res.Shed, res.Drained)
	}
	if res.Completed != int64(res.Offered) {
		t.Fatalf("completed=%d, want %d", res.Completed, res.Offered)
	}
}

// TestRunTenants spreads requests over tenants with a per-tenant page
// quota low enough to engage; conservation must still balance.
func TestRunTenants(t *testing.T) {
	res, err := Run(Config{
		Runtime: core.Config{
			Workers:          2,
			StackPages:       64,
			TenantQuotaPages: 64, // one inflight job per tenant
			Admission:        core.AdmitShed,
		},
		Rate:     50_000,
		Requests: 60,
		Seed:     17,
		Tenants:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Completed + res.Shed + res.Drained; got != int64(res.Offered) {
		t.Fatalf("conservation: %+v", res)
	}
	if res.Shed == 0 {
		t.Fatal("tenant quota under overload shed nothing")
	}
}

// TestMixSelection rejects unknown shapes and honours subsets.
func TestMixSelection(t *testing.T) {
	if _, err := Run(Config{Rate: 1000, Requests: 1, Shapes: []string{"nope"}}); err == nil {
		t.Fatal("unknown shape accepted")
	}
	res, err := Run(Config{
		Runtime:  core.Config{Workers: 2},
		Rate:     2000,
		Requests: 10,
		Shapes:   []string{"reqgraph"},
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 10 {
		t.Fatalf("completed=%d, want 10", res.Completed)
	}
}
