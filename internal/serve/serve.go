// Package serve is "fibril as a service": an open-loop request generator
// that fires mixed fork-join request trees at one live serving Runtime
// (Start/Submit/Close, internal/core) and reports request-latency
// quantiles and saturation behaviour.
//
// The generator is open-loop: arrivals follow a fixed schedule derived
// from the offered rate, independent of completions, so when the offered
// load exceeds the runtime's capacity the backlog (or the shed count,
// under AdmitShed) grows instead of the arrival process silently slowing
// down — the coordinated-omission trap a closed-loop generator falls
// into. Latency is measured by the runtime itself: every Job's
// submit-to-completion time lands in the attached MetricsSink's
// job-latency histogram (trace.KindJobDone), so queueing delay under
// admission control is part of the measurement, exactly as a caller
// would experience it.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"fibril/internal/bench"
	"fibril/internal/core"
	"fibril/internal/trace"
)

// Config parameterizes one load run.
type Config struct {
	// Runtime is the serving runtime's configuration (Workers,
	// MaxInflight, Admission, TenantQuotaPages, ...). Its Sink field is
	// ignored: Run attaches its own MetricsSink to read latencies.
	Runtime core.Config
	// Rate is the offered load in requests per second. Must be > 0.
	Rate float64
	// Requests is the number of requests to fire.
	Requests int
	// Seed drives the request-mix RNG; runs with equal seeds fire the
	// same request sequence.
	Seed uint64
	// Tenants spreads requests round-robin over this many tenant names
	// ("t0", "t1", ...); 0 or 1 submits everything under the default
	// tenant.
	Tenants int
	// Shapes restricts the request mix to the named shapes; empty means
	// all of ShapeNames().
	Shapes []string
}

// Result is the outcome of one load run.
type Result struct {
	Offered   int           // requests fired
	Completed int64         // requests that ran to completion
	Shed      int64         // requests rejected at admission
	Drained   int64         // requests abandoned by Close (0: Run closes gracefully)
	Errors    int           // Job errors other than shed/drained (must be 0)
	Elapsed   time.Duration // first submission to last completion
	P50       time.Duration // request-latency quantiles (bucket upper bounds)
	P99       time.Duration
	P999      time.Duration
	Mean      time.Duration
	Stats     core.Stats
	// Post-drain gauges: Close must leave no queued tasks and no live
	// reclaim tickets.
	DrainQueuedTasks     int
	DrainPendingReclaims int
}

func (r Result) String() string {
	return fmt.Sprintf("offered=%d completed=%d shed=%d p50<=%v p99<=%v p999<=%v",
		r.Offered, r.Completed, r.Shed, r.P50, r.P99, r.P999)
}

// checksum defeats dead-code elimination of the request bodies.
var checksum atomic.Uint64

// shape is one request type: a fork-join tree a Job executes.
type shape struct {
	name string
	body func(w *core.W, rng uint64)
}

// benchShape adapts a registered benchmark at a request-scale input:
// small enough that one request is sub-millisecond work, large enough to
// fork real parallelism into the scheduler.
func benchShape(name string, a bench.Arg) shape {
	s := bench.Get(name)
	if s == nil {
		panic("serve: unknown benchmark " + name)
	}
	return shape{name: name, body: func(w *core.W, _ uint64) {
		checksum.Add(s.Parallel(w, a))
	}}
}

// shapes returns the request mix in presentation order. Three of the
// paper's divide-and-conquer trees at request scale, plus the layered
// request graph no batch benchmark exhibits.
func shapes() []shape {
	return []shape{
		benchShape("fib", bench.Arg{N: 16}),
		benchShape("nqueens", bench.Arg{N: 7}),
		benchShape("integrate", bench.Arg{N: 8, M: 2}),
		{name: "reqgraph", body: reqGraph},
	}
}

// ShapeNames lists the request shapes Run can mix.
func ShapeNames() []string {
	ss := shapes()
	names := make([]string, len(ss))
	for i, s := range ss {
		names[i] = s.name
	}
	return names
}

// reqGraph is the request-graph shape: a service request that runs three
// sequential stages, each fanning out to parallel sub-requests (gather
// from F backends, combine, continue) whose leaves do pseudo-random
// amounts of work. Unlike the divide-and-conquer benchmarks its
// parallelism is wide and shallow with full barriers between stages —
// the fork/join skeleton of a fan-out RPC handler.
func reqGraph(w *core.W, rng uint64) {
	var sum atomic.Uint64
	for stage := 0; stage < 3; stage++ {
		fan := 2 + int(rng>>uint(8*stage))%3 // 2..4 sub-requests per stage
		var f core.Frame
		w.Init(&f)
		for i := 0; i < fan; i++ {
			leafRng := splitmix(rng + uint64(stage*16+i))
			w.Fork(&f, func(w *core.W) {
				sum.Add(leafWork(w, leafRng))
			})
		}
		w.Join(&f)
		rng = splitmix(rng)
	}
	checksum.Add(sum.Load())
}

// leafWork is one backend sub-request: a short spin whose length varies
// by leaf, plus one nested fork pair on the longer leaves so sub-requests
// themselves expose stealable work.
func leafWork(w *core.W, rng uint64) uint64 {
	units := 200 + int64(rng%1800)
	if rng&7 == 0 {
		var f core.Frame
		w.Init(&f)
		var a, b uint64
		w.Fork(&f, func(*core.W) { a = spin(units) })
		b = spin(units / 2)
		w.Join(&f)
		return a + b
	}
	return spin(units)
}

// spin burns roughly `units` of CPU and returns a value derived from it.
func spin(units int64) uint64 {
	x := uint64(units)*0x9E3779B97F4A7C15 | 1
	for i := int64(0); i < units*16; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	return x
}

func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// mix resolves cfg.Shapes against the registry.
func (cfg Config) mix() ([]shape, error) {
	all := shapes()
	if len(cfg.Shapes) == 0 {
		return all, nil
	}
	byName := map[string]shape{}
	for _, s := range all {
		byName[s.name] = s
	}
	var picked []shape
	for _, n := range cfg.Shapes {
		s, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("serve: unknown shape %q (have %v)", n, ShapeNames())
		}
		picked = append(picked, s)
	}
	return picked, nil
}

// request returns the i-th request of the run: its shape, its body RNG,
// and its tenant.
func (cfg Config) request(mix []shape, i int) (shape, uint64, string) {
	r := splitmix(cfg.Seed + uint64(i)*0x9E37)
	s := mix[int(r%uint64(len(mix)))]
	tenant := ""
	if cfg.Tenants > 1 {
		tenant = fmt.Sprintf("t%d", i%cfg.Tenants)
	}
	return s, r, tenant
}

func (cfg Config) runtimeConfig(sink trace.Sink) core.Config {
	rc := cfg.Runtime
	if rc.Workers == 0 {
		rc.Workers = 4
	}
	if rc.StackPages == 0 {
		rc.StackPages = 1024
	}
	rc.Sink = sink
	return rc
}

// Capacity estimates the runtime's saturation throughput for cfg's
// request mix: it starts a runtime, runs n requests back-to-back — a
// closed loop with exactly Workers requests in flight, so the scheduler
// is busy but never queue-building — and returns completed requests per
// second. Offered rates for Run are meaningfully expressed as fractions
// or multiples of this number, which makes the experiment's saturation
// legs host-independent.
func Capacity(cfg Config, n int) (float64, error) {
	mix, err := cfg.mix()
	if err != nil {
		return 0, err
	}
	rc := cfg.runtimeConfig(nil)
	rc.MaxInflight = 0 // closed loop does its own windowing
	rt := core.NewRuntime(rc)
	rt.Start()
	defer rt.Close(context.Background())

	window := rc.Workers
	if window < 1 {
		window = 1
	}
	jobs := make(chan *core.Job, window)
	start := time.Now()
	fired := 0
	for fired < window && fired < n {
		s, r, tenant := cfg.request(mix, fired)
		jobs <- rt.SubmitTenant(tenant, bodyOf(s, r))
		fired++
	}
	done := 0
	for done < n {
		j := <-jobs
		// Err, not Wait: the calibration loop needs completion, not a
		// Stats aggregation per request; Release recycles the handle
		// into the intake pool for the next submission.
		j.Err()
		j.Release()
		done++
		if fired < n {
			s, r, tenant := cfg.request(mix, fired)
			jobs <- rt.SubmitTenant(tenant, bodyOf(s, r))
			fired++
		}
	}
	elapsed := time.Since(start)
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	return float64(n) / elapsed.Seconds(), nil
}

func bodyOf(s shape, rng uint64) func(*core.W) {
	return func(w *core.W) { s.body(w, rng) }
}

// Run fires cfg.Requests requests at cfg.Rate against a fresh serving
// runtime, waits for every Job, closes the runtime gracefully, and
// reports latency quantiles and the admission outcome. The arrival
// schedule is fixed up front (start + i/Rate); a generator running
// behind schedule submits immediately without stretching later arrivals.
func Run(cfg Config) (Result, error) {
	if cfg.Rate <= 0 {
		return Result{}, errors.New("serve: Config.Rate must be > 0")
	}
	if cfg.Requests <= 0 {
		return Result{}, errors.New("serve: Config.Requests must be > 0")
	}
	mix, err := cfg.mix()
	if err != nil {
		return Result{}, err
	}
	sink := trace.NewMetricsSink()
	rt := core.NewRuntime(cfg.runtimeConfig(sink))
	rt.Start()

	interval := time.Duration(float64(time.Second) / cfg.Rate)
	start := time.Now()
	jobs := make([]*core.Job, cfg.Requests)
	for i := 0; i < cfg.Requests; i++ {
		if due := start.Add(time.Duration(i) * interval); time.Now().Before(due) {
			time.Sleep(time.Until(due))
		}
		s, r, tenant := cfg.request(mix, i)
		jobs[i] = rt.SubmitTenant(tenant, bodyOf(s, r))
	}
	res := Result{Offered: cfg.Requests}
	for _, j := range jobs {
		switch err := j.Err(); {
		case err == nil,
			errors.Is(err, core.ErrShed),
			errors.Is(err, core.ErrDrained):
		default:
			res.Errors++
		}
		j.Release() // last read of this handle — recycle it
	}
	res.Elapsed = time.Since(start)
	if err := rt.Close(context.Background()); err != nil {
		return res, fmt.Errorf("serve: graceful Close failed: %w", err)
	}
	res.Stats = rt.Stats()
	res.Completed = res.Stats.JobsCompleted
	res.Shed = res.Stats.JobsShed
	res.Drained = res.Stats.JobsDrained
	res.DrainQueuedTasks = rt.QueuedTasks()
	res.DrainPendingReclaims = rt.PendingReclaims()

	lat := sink.Snapshot().JobLatency
	res.P50 = time.Duration(lat.Quantile(0.5))
	res.P99 = time.Duration(lat.Quantile(0.99))
	res.P999 = time.Duration(lat.Quantile(0.999))
	res.Mean = time.Duration(lat.Mean())
	return res, nil
}

// SortedShapes returns cfg's effective shape names, sorted — the mix
// identity recorded in experiment rows.
func (cfg Config) SortedShapes() []string {
	names := cfg.Shapes
	if len(names) == 0 {
		names = ShapeNames()
	}
	out := append([]string(nil), names...)
	sort.Strings(out)
	return out
}
