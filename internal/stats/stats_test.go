package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOfEmpty(t *testing.T) {
	if s := Of(nil); s != (Summary{}) {
		t.Errorf("Of(nil) = %+v", s)
	}
}

func TestOfKnownSample(t *testing.T) {
	s := Of([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 {
		t.Errorf("mean = %g, want 5", s.Mean)
	}
	// Sample std of this classic sample is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Errorf("std = %g, want %g", s.Std, want)
	}
	if s.Min != 2 || s.Max != 9 || s.N != 8 {
		t.Errorf("min/max/n = %g/%g/%d", s.Min, s.Max, s.N)
	}
}

func TestSingleton(t *testing.T) {
	s := Of([]float64{3.5})
	if s.Mean != 3.5 || s.Std != 0 || s.Min != 3.5 || s.Max != 3.5 {
		t.Errorf("singleton summary = %+v", s)
	}
}

func TestRelStdZeroMean(t *testing.T) {
	if got := (Summary{Mean: 0, Std: 1}).RelStd(); got != 0 {
		t.Errorf("RelStd with zero mean = %g", got)
	}
}

// Property: Min ≤ Mean ≤ Max and Std ≥ 0 for any finite sample.
func TestQuickBounds(t *testing.T) {
	prop := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Of(xs)
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 && s.Std >= 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
