// Package stats provides the small aggregation helpers the harness uses to
// summarize repeated measurement runs, following the paper's methodology
// (mean of ten runs; "the standard deviation of our results is
// negligible").
package stats

import (
	"fmt"
	"math"
)

// Summary describes a sample of measurements.
type Summary struct {
	N    int
	Mean float64
	Std  float64
	Min  float64
	Max  float64
}

// Of summarizes the sample. An empty sample yields the zero Summary.
func Of(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// RelStd returns the relative standard deviation (σ/μ), 0 for a zero mean.
func (s Summary) RelStd() float64 {
	if s.Mean == 0 {
		return 0
	}
	return s.Std / s.Mean
}

// String renders the summary compactly: "mean±std [min,max] (n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.4g±%.2g [%.4g,%.4g] (n=%d)", s.Mean, s.Std, s.Min, s.Max, s.N)
}
