package check

import (
	"sync"
	"sync/atomic"
	"testing"

	"fibril/internal/core"
	"fibril/internal/trace"
)

// TestSnapshotConcurrentWithRun hammers Runtime.Snapshot from observer
// goroutines while generated programs execute, then reconciles the final
// snapshot at quiescence. The CI race job runs this package under -race,
// which is the real assertion: every read Snapshot performs must be
// individually synchronized against the scheduler hot paths.
func TestSnapshotConcurrentWithRun(t *testing.T) {
	ms := trace.NewMetricsSink()
	rt := core.NewRuntime(core.Config{
		Workers:    4,
		StackPages: harnessStackPages,
		UnmapBatch: 4, // exercise the reclaim-ticket gauge too
		Sink:       ms,
	})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var snaps atomic.Int64
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastForks int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				m := rt.Snapshot()
				snaps.Add(1)
				// Monotonic counters never regress across samples, and
				// gauges are never negative.
				if m.Stats.Forks < lastForks {
					t.Errorf("Snapshot: Forks went backwards %d -> %d", lastForks, m.Stats.Forks)
					return
				}
				lastForks = m.Stats.Forks
				if m.Gauges.QueuedTasks < 0 || m.Gauges.ParkedThieves < 0 ||
					m.Gauges.ResidentPages < 0 || m.Gauges.PendingReclaims < 0 ||
					m.Gauges.StacksInUse < 0 {
					t.Errorf("Snapshot: negative gauge %+v", m.Gauges)
					return
				}
				if m.Trace == nil {
					t.Error("Snapshot: Trace nil with a MetricsSink attached")
					return
				}
			}
		}()
	}

	for seed := uint64(1); seed <= 8; seed++ {
		p := Generate(seed, Params{})
		counts := make([]uint32, p.Nodes)
		rt.Run(p.Body(counts))
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	if snaps.Load() == 0 {
		t.Fatal("observer goroutines took no snapshots")
	}

	// Quiescent reconciliation: gauges drain to zero and the metrics
	// sink's histogram populations match the counter plane.
	m := rt.Snapshot()
	st := m.Stats
	if g := m.Gauges; g.QueuedTasks != 0 || g.ParkedThieves != 0 || g.PendingReclaims != 0 || g.StacksInUse != 0 {
		t.Errorf("gauges not drained at quiescence: %+v", g)
	}
	if got, want := m.Trace.StealLatency.Count, st.Steals; got != want {
		t.Errorf("StealLatency.Count=%d, want Steals=%d", got, want)
	}
	if got, want := m.Trace.JoinWait.Count, st.Suspends; got != want {
		t.Errorf("JoinWait.Count=%d, want Suspends=%d", got, want)
	}
	if got, want := m.Trace.TaskRun.Count, st.Steals-st.RestrictedSteals; got != want {
		t.Errorf("TaskRun.Count=%d, want Steals-RestrictedSteals=%d", got, want)
	}
	if got, want := m.Trace.UnmapBatch.Count, st.UnmapBatches; got != want {
		t.Errorf("UnmapBatch.Count=%d, want UnmapBatches=%d", got, want)
	}
}
