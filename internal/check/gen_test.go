package check

import "testing"

// walk visits every node of a program exactly as reachable from the root.
func walk(n *Node, fn func(*Node)) {
	fn(n)
	for _, s := range n.Segs {
		if s.Call != nil {
			walk(s.Call, fn)
		}
		if s.Fork != nil {
			walk(s.Fork, fn)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		a := Generate(seed, Params{})
		b := Generate(seed, Params{})
		if a.String() != b.String() {
			t.Fatalf("seed %d: %v != %v", seed, a, b)
		}
		// Structural equality, not just summary equality.
		var sa, sb []int
		walk(a.Root, func(n *Node) { sa = append(sa, n.ID, n.Frame, len(n.Segs)) })
		walk(b.Root, func(n *Node) { sb = append(sb, n.ID, n.Frame, len(n.Segs)) })
		if len(sa) != len(sb) {
			t.Fatalf("seed %d: shapes differ", seed)
		}
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("seed %d: shapes differ at %d", seed, i)
			}
		}
	}
}

func TestGenerateRespectsParams(t *testing.T) {
	params := DefaultParams()
	for seed := uint64(0); seed < 200; seed++ {
		p := Generate(seed, params)
		if p.Nodes > params.MaxNodes {
			t.Fatalf("seed %d: %d nodes > MaxNodes %d", seed, p.Nodes, params.MaxNodes)
		}
		seen := 0
		ids := make(map[int]bool)
		walk(p.Root, func(n *Node) {
			seen++
			if ids[n.ID] {
				t.Fatalf("seed %d: duplicate node ID %d", seed, n.ID)
			}
			ids[n.ID] = true
			if n.ID < 0 || n.ID >= p.Nodes {
				t.Fatalf("seed %d: node ID %d outside [0,%d)", seed, n.ID, p.Nodes)
			}
			if n.Frame < params.FrameMin || n.Frame > 2*4096 {
				t.Fatalf("seed %d: frame %d outside bounds", seed, n.Frame)
			}
			if n.Panic {
				t.Fatalf("seed %d: panic node with PanicPct=0", seed)
			}
			// A node that forks must end joined: its last fork-bearing or
			// later segment either sets Join or is followed by the implicit
			// terminal join in Body/Tree — structurally, no constraint to
			// check beyond frame declaration, which forks() derives.
		})
		if seen != p.Nodes {
			t.Fatalf("seed %d: walked %d nodes, program says %d", seed, seen, p.Nodes)
		}
		// The tree conversion must agree with the generator's edge counts.
		m := p.Metrics()
		if m.Tasks != int64(p.Nodes) {
			t.Fatalf("seed %d: Analyze sees %d tasks, generator made %d", seed, m.Tasks, p.Nodes)
		}
		if m.Forks != int64(p.Forks) {
			t.Fatalf("seed %d: Analyze sees %d forks, generator made %d", seed, m.Forks, p.Forks)
		}
		if m.Calls != int64(p.Calls) {
			t.Fatalf("seed %d: Analyze sees %d calls, generator made %d", seed, m.Calls, p.Calls)
		}
	}
}

func TestGenerateShapeDiversity(t *testing.T) {
	// Over a modest seed range the generator must produce both trivial and
	// rich programs: single-node leaves, deep nests, wide loops, calls and
	// forks. This guards against a regression that quietly collapses the
	// distribution (e.g. every program becoming a leaf).
	var leaves, deep, wide, withCalls int
	for seed := uint64(0); seed < 300; seed++ {
		p := Generate(seed, Params{})
		m := p.Metrics()
		if p.Nodes == 1 {
			leaves++
		}
		if m.FibrilDepth >= 3 {
			deep++
		}
		if p.Forks >= 10 {
			wide++
		}
		if p.Calls > 0 {
			withCalls++
		}
	}
	if leaves == 0 || deep == 0 || wide == 0 || withCalls == 0 {
		t.Fatalf("distribution collapsed: leaves=%d deep=%d wide=%d withCalls=%d",
			leaves, deep, wide, withCalls)
	}
}

func TestGeneratePanicMode(t *testing.T) {
	params := Params{PanicPct: 30}
	var panicky int
	for seed := uint64(0); seed < 100; seed++ {
		p := Generate(seed, params)
		if p.Panics > 0 {
			panicky++
		}
		walk(p.Root, func(n *Node) {
			if n.Panic && len(n.Segs) != 1 {
				t.Fatalf("seed %d: non-leaf panic node n%d", seed, n.ID)
			}
			if n.Panic && n.ID == 0 {
				t.Fatalf("seed %d: root marked panicking", seed)
			}
			// Panic-orderliness invariant: calls precede forks within a
			// node, so a panic propagating out of a call cannot bypass a
			// join with outstanding forked children.
			sawFork := false
			for _, s := range n.Segs {
				if s.Fork != nil {
					sawFork = true
				}
				if s.Call != nil && sawFork {
					t.Fatalf("seed %d: node n%d has call after fork in panic mode", seed, n.ID)
				}
			}
		})
	}
	if panicky == 0 {
		t.Fatal("PanicPct=30 produced no panicking programs in 100 seeds")
	}
}

func TestFrameBytesWithinSimLimits(t *testing.T) {
	// Worst case: every node's frame on one stack (the help-first inline
	// drain can in principle nest any execution chain). The harness stack
	// must absorb it.
	params := DefaultParams()
	worst := params.MaxNodes * 2 * 4096
	if worst > harnessStackPages*4096 {
		t.Fatalf("worst-case frame chain %dB exceeds harness stack %dB",
			worst, harnessStackPages*4096)
	}
}
