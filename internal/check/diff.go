package check

import (
	"errors"

	"fibril/internal/core"
)

// Options selects the executor matrix Differential runs a program through.
// The zero value takes the defaults documented on each field.
type Options struct {
	// Workers are the real-runtime worker counts. Default {1, 2, 4}.
	Workers []int
	// Deques are the real-runtime deque kinds. Default both.
	Deques []core.DequeKind
	// Strategies are the scheduling strategies, applied to the real runtime
	// and the simulators. Default {Fibril}.
	Strategies []core.Strategy
	// Mem are the memory-pressure-engine configurations each real-runtime
	// leg is run with. Default {{}} — the default engine (sharded pool,
	// eager unmap, no ceiling). The simulators do not model the engine, so
	// the sim legs ignore this.
	Mem []MemParams
	// Policies are the steal policies each real-runtime leg is run with.
	// Default {StealRandom}. The sim legs model policies separately (and
	// with their own cost model), so they always run the default.
	Policies []core.StealPolicy
	// SimWorkers are the simulator worker counts, run with both the
	// help-first and the work-first engine. Default {1, 3}; nil-able via
	// NoSim.
	SimWorkers []int
	// NoSim disables the simulator legs (used for panic-injected programs,
	// which the simulator does not model, and by fuzz targets that only
	// exercise the real runtime).
	NoSim bool
}

func (o Options) withDefaults() Options {
	if len(o.Workers) == 0 {
		o.Workers = []int{1, 2, 4}
	}
	if len(o.Deques) == 0 {
		o.Deques = core.DequeKinds()
	}
	if len(o.Strategies) == 0 {
		o.Strategies = []core.Strategy{core.StrategyFibril}
	}
	if len(o.Mem) == 0 {
		o.Mem = []MemParams{{}}
	}
	if len(o.Policies) == 0 {
		o.Policies = []core.StealPolicy{core.StealRandom}
	}
	if len(o.SimWorkers) == 0 {
		o.SimWorkers = []int{1, 3}
	}
	return o
}

// Differential executes the program across the full executor matrix —
// real runtime × strategies × deque kinds × worker counts, plus both
// simulator engines — and checks every oracle against every execution.
// Exactly-once execution on each leg implies all legs computed the same
// multiset of leaf executions, which is the differential guarantee. The
// returned error joins every violation, each tagged with the executor
// label and the replayable seed; nil means fully conformant.
func Differential(p *Program, opts Options) error {
	opts = opts.withDefaults()
	m := p.Metrics()
	var errs []error

	for _, strat := range opts.Strategies {
		for _, dk := range opts.Deques {
			for _, workers := range opts.Workers {
				for _, mem := range opts.Mem {
					for _, pol := range opts.Policies {
						e := RunReal(p, workers, dk, strat, pol, mem)
						if p.Panics > 0 {
							errs = append(errs, CheckRealPanic(p, e))
						} else {
							errs = append(errs, CheckReal(p, m, e))
						}
					}
				}
			}
		}
		if opts.NoSim || p.Panics > 0 {
			continue
		}
		for _, workers := range opts.SimWorkers {
			for _, workFirst := range []bool{false, true} {
				e, err := RunSim(p, workers, workFirst, strat)
				if err != nil {
					errs = append(errs, err)
					continue
				}
				errs = append(errs, CheckSim(p, m, e))
			}
		}
	}
	return errors.Join(errs...)
}
