package check

import (
	"strings"
	"testing"

	"fibril/internal/core"
)

// TestDifferentialConformance is the acceptance suite of the harness:
// ≥50 generated programs, each executed on the real runtime with both
// deque kinds at 1, 2 and 4 workers and on both simulator engines, with
// every oracle checked. Any failure prints a seed that replays with
// `go run ./cmd/fibril-check -seed N`.
func TestDifferentialConformance(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 12
	}
	for seed := 0; seed < n; seed++ {
		seed := uint64(seed)
		t.Run(Generate(seed, Params{}).String(), func(t *testing.T) {
			t.Parallel()
			p := Generate(seed, Params{})
			if err := Differential(p, Options{}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestDifferentialStrategyMatrix runs a smaller seed range through the
// non-default strategies: the paper's ablations (NoUnmap, MMap) and the
// baselines whose join discipline differs structurally (CilkPlus suspends
// like Fibril but with a bounded pool; TBB and Leapfrog never suspend).
func TestDifferentialStrategyMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("strategy matrix is long; covered by the default suite in short mode")
	}
	strategies := []core.Strategy{
		core.StrategyFibrilNoUnmap,
		core.StrategyFibrilMMap,
		core.StrategyCilkPlus,
		core.StrategyTBB,
		core.StrategyLeapfrog,
	}
	for _, strat := range strategies {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			t.Parallel()
			for seed := uint64(100); seed < 110; seed++ {
				p := Generate(seed, Params{})
				opts := Options{
					Workers:    []int{2, 4},
					Strategies: []core.Strategy{strat},
					SimWorkers: []int{3},
				}
				// TBB and Leapfrog joins run the inline-steal discipline
				// only in the real runtime's help-first substitution; the
				// work-first engine models them too, so both engines stay on.
				if err := Differential(p, opts); err != nil {
					t.Error(err)
				}
			}
		})
	}
}

// TestDifferentialPanicPrograms checks orderly panic propagation: the
// injected panic resurfaces from Run as a *TaskPanic, nothing executes
// twice, and the runtime still quiesces cleanly.
func TestDifferentialPanicPrograms(t *testing.T) {
	n := 40
	if testing.Short() {
		n = 10
	}
	ran := 0
	for seed := uint64(0); seed < uint64(n); seed++ {
		p := Generate(seed, Params{PanicPct: 35})
		if p.Panics == 0 {
			continue
		}
		ran++
		if err := Differential(p, Options{Workers: []int{1, 3}}); err != nil {
			t.Error(err)
		}
	}
	if ran == 0 {
		t.Fatal("no panic-injected programs generated; raise PanicPct or seed range")
	}
}

// TestDifferentialRelaxedDeque is the explicit relaxed-oracle leg: seeded
// programs over {THE, ChaseLev, Relaxed} × {1,2,4} workers, plus a
// panic-injection pass over the same matrix. The oracles assert the
// relaxed exactly-once law (executions == 1 under at-least-once
// extraction), that the linearizable kinds and every P=1 run report zero
// DuplicateExtractions, and that the trace's KindDupSteal count
// reconciles with the counter.
func TestDifferentialRelaxedDeque(t *testing.T) {
	opts := Options{
		Workers: []int{1, 2, 4},
		Deques:  []core.DequeKind{core.DequeTHE, core.DequeChaseLev, core.DequeRelaxed},
		NoSim:   true, // the simulator has no deque kinds; sim legs run elsewhere
	}
	n := 12
	if testing.Short() {
		n = 4
	}
	for seed := uint64(200); seed < uint64(200+n); seed++ {
		p := Generate(seed, Params{})
		if err := Differential(p, opts); err != nil {
			t.Error(err)
		}
	}
	ran := 0
	for seed := uint64(200); ran < 5 && seed < 260; seed++ {
		p := Generate(seed, Params{PanicPct: 35})
		if p.Panics == 0 {
			continue
		}
		ran++
		if err := Differential(p, opts); err != nil {
			t.Error(err)
		}
	}
	if ran == 0 {
		t.Fatal("no panic-injected programs generated; raise PanicPct or the seed range")
	}
}

// TestDifferentialStealPolicies runs every steal policy through the
// differential harness on every deque kind: the victim-selection order and
// the StealHalf loot protocol must preserve exactly-once execution, the
// counter identities, quiescence (the loose queue drains), and the arena
// conservation laws — including under injected panics, where a batch
// thief's loot must still be executed or surface in Queued (never lost).
func TestDifferentialStealPolicies(t *testing.T) {
	opts := Options{
		Workers:  []int{2, 4},
		Deques:   []core.DequeKind{core.DequeTHE, core.DequeChaseLev, core.DequeRelaxed},
		Policies: core.StealPolicies(),
		NoSim:    true, // sim policy legs are covered by the sim's own tests
	}
	n := 10
	if testing.Short() {
		n = 3
	}
	for seed := uint64(400); seed < uint64(400+n); seed++ {
		p := Generate(seed, Params{})
		if err := Differential(p, opts); err != nil {
			t.Error(err)
		}
	}
	ran := 0
	for seed := uint64(400); ran < 3 && seed < 460; seed++ {
		p := Generate(seed, Params{PanicPct: 35})
		if p.Panics == 0 {
			continue
		}
		ran++
		if err := Differential(p, opts); err != nil {
			t.Error(err)
		}
	}
	if ran == 0 {
		t.Fatal("no panic-injected programs generated; raise PanicPct or the seed range")
	}
}

// TestDifferentialLazyPrograms mixes lazy fork edges into the generated
// programs: the real runtime resolves each one at run time via
// W.ShouldSplit (fork on an idle system, plain call on a busy one), the
// simulator forks them all, and the oracles hold the two accountings to
// the edge-conservation law. Combined with compile()'s deterministic
// ForkArg/Scratch alternation this drives the zero-allocation fork path
// and arena recycling through the full differential matrix.
func TestDifferentialLazyPrograms(t *testing.T) {
	n := 30
	if testing.Short() {
		n = 8
	}
	withLazy := 0
	for seed := 0; seed < n; seed++ {
		seed := uint64(seed)
		p := Generate(seed, Params{LazyPct: 40})
		if p.LazyEdges > 0 {
			withLazy++
		}
		t.Run(p.String(), func(t *testing.T) {
			t.Parallel()
			p := Generate(seed, Params{LazyPct: 40})
			if err := Differential(p, Options{}); err != nil {
				t.Error(err)
			}
		})
	}
	if withLazy == 0 {
		t.Error("no program drew a lazy edge; raise LazyPct or the seed range")
	}
}

// TestDifferentialAdversarialParams pushes the generator to its corners:
// schedule-only programs (zero work everywhere is approximated by MaxWork=1),
// wide flat loops, and deep call-heavy nests.
func TestDifferentialAdversarialParams(t *testing.T) {
	if testing.Short() {
		t.Skip("adversarial corners are long; covered by fuzzing")
	}
	corners := []struct {
		name   string
		params Params
	}{
		{"schedule-only", Params{MaxWork: 1, MaxNodes: 80}},
		{"wide-loops", Params{LoopPct: 100, MaxFanout: 8, MaxDepth: 3}},
		{"deep-narrow", Params{MaxDepth: 12, MaxFanout: 1, MaxCalls: 3, MaxNodes: 60}},
		{"big-frames", Params{FrameMin: 3000, FrameMax: 8000, MaxNodes: 100}},
	}
	for _, c := range corners {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			for seed := uint64(0); seed < 8; seed++ {
				p := Generate(seed, c.params)
				if err := Differential(p, Options{Workers: []int{4}}); err != nil {
					t.Error(err)
				}
			}
		})
	}
}

// TestDifferentialMemoryEngine runs the seed range through the three
// memory-pressure-engine configurations the runtime distinguishes: the
// global mutex pool with eager unmap (the pre-engine behaviour), the
// sharded pool with coalesced unmap, and coalescing plus a soft RSS
// ceiling low enough that the pressure valve fires on real programs.
// Every oracle — including the Unmaps/ReclaimCancels/ReclaimSkips
// conservation law and the ceiling accounting — is checked on each leg.
func TestDifferentialMemoryEngine(t *testing.T) {
	n := 16
	if testing.Short() {
		n = 4
	}
	mems := []MemParams{
		{Pool: core.PoolGlobal},
		{UnmapBatch: 4},
		{UnmapBatch: 4, MaxResidentPages: 64},
	}
	for seed := 0; seed < n; seed++ {
		seed := uint64(seed)
		t.Run(Generate(seed, Params{}).String(), func(t *testing.T) {
			t.Parallel()
			p := Generate(seed, Params{})
			opts := Options{
				Workers: []int{1, 4},
				Deques:  []core.DequeKind{core.DequeTHE},
				Mem:     mems,
				NoSim:   true, // sim legs ignore Mem; covered elsewhere
			}
			if err := Differential(p, opts); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestViolationReportsSeed pins the replayability contract: a failing
// oracle's message must contain the program seed.
func TestViolationReportsSeed(t *testing.T) {
	p := Generate(42, Params{})
	e := RealExec{Label: "synthetic", Counts: make([]uint32, p.Nodes)} // all zero: violates exactly-once
	err := CheckReal(p, p.Metrics(), e)
	if err == nil {
		t.Fatal("all-zero counts passed the exactly-once oracle")
	}
	if want := "seed=0x2a"; !strings.Contains(err.Error(), want) {
		t.Fatalf("violation %q does not mention %q", err.Error(), want)
	}
}
