package check

import (
	"fmt"
	"sync/atomic"
	"unsafe"

	"fibril/internal/core"
	"fibril/internal/invoke"
	"fibril/internal/sim"
	"fibril/internal/trace"
)

// harnessStackPages sizes the simulated stacks used by the harness's
// executors. Generated programs bound their frame bytes, but the
// help-first inline drain can nest frames beyond the serial depth, so the
// harness uses 4 MB stacks (vs the 1 MB default) to keep stack overflow —
// which the runtime treats as fatal — out of the reachable state space.
const harnessStackPages = 1024

// sink defeats dead-code elimination of the spin loops without racing.
var sink atomic.Uint64

// spin burns roughly `units` of CPU, the real-runtime analogue of an
// invoke.Seg's abstract work. Varying, nonzero durations are what open the
// steal/suspend race windows the harness exists to explore.
func spin(units int64) {
	x := uint64(units)*0x9E3779B97F4A7C15 | 1
	for i := int64(0); i < units*16; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	sink.Store(x)
}

// InjectedPanic is the value a panic-injected leaf throws; the harness
// asserts it resurfaces from Run wrapped in a *core.TaskPanic.
type InjectedPanic struct {
	Seed uint64
	Node int
}

func (ip InjectedPanic) Error() string {
	return fmt.Sprintf("check: injected panic at node %d (seed %#x)", ip.Node, ip.Seed)
}

// Body compiles the program to a real-runtime task body. Executions are
// recorded in counts (one slot per node ID, atomically — thieves run
// nodes concurrently), which the exactly-once oracle inspects afterwards.
func (p *Program) Body(counts []uint32) func(*core.W) {
	return p.compile(p.Root, counts)
}

// bodyTramp adapts a compiled closure to the ForkArg calling convention:
// the payload is a pointer to the closure value in the parent's compiled
// segment table. The table is ordinary scanned memory kept alive by the
// parent body (blocked at its Join while children are in flight), so the
// arena's reachability contract is met without any extra pinning.
func bodyTramp(w *core.W, p unsafe.Pointer) {
	(*(*func(*core.W))(p))(w)
}

// compile lowers one node. Fork edges alternate deterministically (by
// node ID and segment index) between the closure fork and the
// zero-allocation ForkArg path, and forking nodes alternate between a
// stack-declared Frame and an arena Scratch block, so every conformance
// and fuzz run differentially exercises both fork representations and
// arena recycling — including the no-release-on-unwind rule: a panic
// surfacing at Join skips ReleaseScratch naturally, leaking the block to
// the GC as the arena contract requires. Lazy edges consult
// W.ShouldSplit and degrade to plain calls on a busy worker.
func (p *Program) compile(n *Node, counts []uint32) func(*core.W) {
	type cseg struct {
		work      int64
		call      func(*core.W)
		callBytes int
		fork      func(*core.W)
		forkBytes int
		useArg    bool
		lazy      bool
		join      bool
	}
	segs := make([]cseg, len(n.Segs))
	for i, s := range n.Segs {
		segs[i].work = s.Work
		segs[i].join = s.Join
		if s.Call != nil {
			segs[i].call = p.compile(s.Call, counts)
			segs[i].callBytes = s.Call.Frame
		}
		if s.Fork != nil {
			segs[i].fork = p.compile(s.Fork, counts)
			segs[i].forkBytes = s.Fork.Frame
			segs[i].useArg = (n.ID+i)%2 == 0
			segs[i].lazy = s.Lazy
		}
	}
	hasFork := n.forks()
	useScratch := hasFork && n.ID%2 == 1
	id, seed, doPanic := n.ID, p.Seed, n.Panic
	return func(w *core.W) {
		atomic.AddUint32(&counts[id], 1)
		var fr core.Frame
		frp := &fr
		var scratch *core.Scratch
		if hasFork {
			if useScratch {
				scratch = w.AcquireScratch()
				frp = scratch.Frame()
			}
			w.Init(frp)
		}
		forked := false
		for i := range segs {
			s := &segs[i]
			if s.work > 0 {
				spin(s.work)
			}
			if s.call != nil {
				w.CallSized(s.callBytes, s.call)
			}
			if s.fork != nil {
				switch {
				case s.lazy && !w.ShouldSplit():
					w.CallSized(s.forkBytes, s.fork)
				case s.useArg:
					w.ForkArgSized(frp, s.forkBytes, bodyTramp, unsafe.Pointer(&s.fork))
					forked = true
				default:
					w.ForkSized(frp, s.forkBytes, s.fork)
					forked = true
				}
			}
			if s.join && forked {
				w.Join(frp)
				forked = false
			}
		}
		if forked {
			w.Join(frp)
		}
		if scratch != nil {
			// Quiescent: every Join above returned without panicking.
			w.ReleaseScratch(scratch)
		}
		if doPanic {
			panic(InjectedPanic{Seed: seed, Node: id})
		}
	}
}

// MemParams selects the memory-pressure-engine knobs of a real-runtime
// leg. The zero value is the default engine configuration (sharded pool,
// eager unmap, no ceiling); the oracles read the params to pick between
// the eager equalities and the coalesced conservation laws.
type MemParams struct {
	Pool             core.PoolKind
	UnmapBatch       int
	MaxResidentPages int64
}

// String renders the non-default knobs, empty for the zero value.
func (mp MemParams) String() string {
	if mp == (MemParams{}) {
		return ""
	}
	return fmt.Sprintf("pool=%v,batch=%d,ceiling=%d", mp.Pool, mp.UnmapBatch, mp.MaxResidentPages)
}

// RealExec is the observable outcome of one real-runtime execution.
type RealExec struct {
	Label     string
	Mem       MemParams
	Deque     core.DequeKind   // deque kind the run used (relaxed laws differ)
	Policy    core.StealPolicy // steal policy the run used
	Counts    []uint32         // executions per node ID
	Stats     core.Stats
	Queued    int          // tasks left in deques at quiescence (must be 0)
	Parked    int          // thieves still parked at quiescence (must be 0)
	Pending   int          // live reclaim tickets at quiescence (must be 0)
	Backlog   int          // Scratch blocks parked on remote-free lists at quiescence
	MaxHW     int          // largest per-stack high-water mark, in pages
	Recovered any          // value recovered from Run, if it panicked
	Trace     TraceSummary // recorded event stream, reconciled against Stats
}

// traceRecorderCap bounds the harness recorder. Generated programs emit a
// handful of events per node, so this is generous; if a soak program ever
// overflows it the reconciliation oracle sees Dropped > 0 and stands down
// rather than reporting phantom violations.
const traceRecorderCap = 1 << 21

// RunReal executes the program on a fresh real runtime and snapshots
// everything the oracles need. The runtime's steal RNG is seeded from the
// program seed (decorrelated by a constant) so executions are as
// reproducible as goroutine scheduling allows.
func RunReal(p *Program, workers int, dk core.DequeKind, strat core.Strategy, pol core.StealPolicy, mem MemParams) RealExec {
	label := fmt.Sprintf("real/%v/%v/P=%d", strat, dk, workers)
	if pol != core.StealRandom {
		label += "/" + pol.String()
	}
	if s := mem.String(); s != "" {
		label += "[" + s + "]"
	}
	e := RealExec{
		Label:  label,
		Mem:    mem,
		Deque:  dk,
		Policy: pol,
		Counts: make([]uint32, p.Nodes),
	}
	rec := trace.NewRecorder(traceRecorderCap)
	rt := core.NewRuntime(core.Config{
		Workers:          workers,
		Strategy:         strat,
		Deque:            dk,
		FrameBytes:       p.Root.Frame, // the root task charges its own frame
		StackPages:       harnessStackPages,
		StealPolicy:      pol,
		Seed:             p.Seed ^ 0xC0FFEE,
		Pool:             mem.Pool,
		UnmapBatch:       mem.UnmapBatch,
		MaxResidentPages: mem.MaxResidentPages,
		Sink:             rec,
	})
	body := p.Body(e.Counts)
	func() {
		defer func() { e.Recovered = recover() }()
		rt.Run(body)
	}()
	e.Stats = rt.Stats()
	e.Trace = SummarizeTrace(rec)
	e.Queued = rt.QueuedTasks()
	e.Parked = rt.ParkedThieves()
	e.Pending = rt.PendingReclaims()
	e.Backlog = rt.RemoteFreeBacklog()
	e.MaxHW = rt.MaxStackHighWaterPages()
	return e
}

// SimExec is the observable outcome of one simulator execution.
type SimExec struct {
	Label     string
	Counts    []uint32 // executions per node ID, via the OnTask hook
	Res       sim.Result
	WorkFirst bool
}

// RunSim executes the program's invocation tree on a simulator engine.
// A simulator deadlock (its internal panic) is converted into a violation
// error rather than crashing the harness, since for the harness a deadlock
// is a finding, not a fatal condition.
func RunSim(p *Program, workers int, workFirst bool, strat core.Strategy) (e SimExec, err error) {
	engine := "helpfirst"
	if workFirst {
		engine = "workfirst"
	}
	e = SimExec{
		Label:     fmt.Sprintf("sim/%s/%v/P=%d", engine, strat, workers),
		Counts:    make([]uint32, p.Nodes),
		WorkFirst: workFirst,
	}
	cfg := sim.Config{
		Workers:    workers,
		Strategy:   strat,
		StackPages: harnessStackPages,
		Seed:       p.Seed ^ 0xFACADE,
		WorkFirst:  workFirst,
		OnTask: func(t invoke.Task) {
			if t.Key < 1 || t.Key > uint64(len(e.Counts)) {
				err = fmt.Errorf("%s: executed task with unknown key %d", e.Label, t.Key)
				return
			}
			e.Counts[t.Key-1]++
		},
	}
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("%s: simulator fault: %v", e.Label, v)
		}
	}()
	e.Res = sim.Run(cfg, p.Tree())
	return e, err
}
