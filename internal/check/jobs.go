package check

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"fibril/internal/core"
	"fibril/internal/trace"
)

// The concurrent-jobs differential leg: K generated programs submitted
// from K goroutines as concurrent Jobs on ONE serving runtime. Where the
// one-shot legs (run.go) pin down a single computation's invariants, this
// leg pins down their *composition*: exactly-once execution per program
// with unrelated roots interleaved on the same deques, panic isolation
// (an injected panic surfaces only through its own Job.Err), the job
// conservation laws at K > 1, and quiescence after a graceful Close.

// JobsExec is the observable outcome of one concurrent-submission run.
type JobsExec struct {
	Label    string
	Counts   [][]uint32 // executions per program, per node ID
	Errs     []error    // Job.Err per program
	Seqs     []uint64   // Job.Seq (completion rank) per program
	Stats    core.Stats
	Queued   int   // tasks left in deques after Close (must be 0)
	Parked   int   // thieves still parked after Close (must be 0)
	Pending  int   // live reclaim tickets after Close (must be 0)
	Backlog  int   // Scratch blocks parked on remote-free lists
	Inflight int   // InflightJobs after Close (must be 0)
	JobQueue int   // QueuedJobs after Close (must be 0)
	CloseErr error // Close's return (must be nil: nothing forced the drain)
	Trace    TraceSummary
}

// RunRealJobs starts one runtime, submits every program from its own
// goroutine — concurrently, mixing panicking and clean roots on the same
// scheduler — waits for every Job, Closes gracefully, and snapshots
// everything CheckJobs needs. The stack size and root frame budget are
// shared across programs (the admission reservation is per-runtime
// config, not per-job), so the runtime is sized for the largest root.
func RunRealJobs(ps []*Program, workers int, dk core.DequeKind, strat core.Strategy) JobsExec {
	e := JobsExec{
		Label:  fmt.Sprintf("jobs/%v/%v/P=%d/K=%d", strat, dk, workers, len(ps)),
		Counts: make([][]uint32, len(ps)),
		Errs:   make([]error, len(ps)),
		Seqs:   make([]uint64, len(ps)),
	}
	frame := 0
	var seed uint64
	for _, p := range ps {
		if p.Root.Frame > frame {
			frame = p.Root.Frame
		}
		seed ^= p.Seed
	}
	rec := trace.NewRecorder(traceRecorderCap)
	rt := core.NewRuntime(core.Config{
		Workers:    workers,
		Strategy:   strat,
		Deque:      dk,
		FrameBytes: frame,
		StackPages: harnessStackPages,
		Seed:       seed ^ 0xC0FFEE,
		Sink:       rec,
	})
	rt.Start()
	var wg sync.WaitGroup
	for i, p := range ps {
		e.Counts[i] = make([]uint32, p.Nodes)
		body := p.Body(e.Counts[i])
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j := rt.Submit(body)
			e.Errs[i] = j.Err()
			e.Seqs[i] = j.Seq()
		}(i)
	}
	wg.Wait()
	e.CloseErr = rt.Close(context.Background())
	e.Stats = rt.Stats()
	e.Trace = SummarizeTrace(rec)
	e.Queued = rt.QueuedTasks()
	e.Parked = rt.ParkedThieves()
	e.Pending = rt.PendingReclaims()
	e.Backlog = rt.RemoteFreeBacklog()
	e.Inflight = rt.InflightJobs()
	e.JobQueue = rt.QueuedJobs()
	return e
}

// CheckJobs runs every oracle that applies to a concurrent-submission run.
// Program seeds appear in each violation message (the collector's own seed
// slot is meaningless for a multi-program leg).
func CheckJobs(ps []*Program, e JobsExec) error {
	v := &violations{label: e.Label}
	st := e.Stats

	// Per-program execution and panic isolation.
	panics := 0
	for i, p := range ps {
		if p.Panics > 0 {
			panics++
			var tp *core.TaskPanic
			switch err := e.Errs[i]; {
			case err == nil:
				v.failf("program %d (seed %#x) injects a panic but Job.Err is nil", i, p.Seed)
			case !errors.As(err, &tp):
				v.failf("program %d (seed %#x): Job.Err is %T (%v), want *core.TaskPanic", i, p.Seed, err, err)
			default:
				ip, ok := tp.Value.(InjectedPanic)
				switch {
				case !ok:
					v.failf("program %d (seed %#x): TaskPanic wraps %T (%v), want check.InjectedPanic",
						i, p.Seed, tp.Value, tp.Value)
				case ip.Seed != p.Seed:
					v.failf("program %d (seed %#x): Job.Err carries a sibling's panic (seed %#x) — isolation broken",
						i, p.Seed, ip.Seed)
				case ip.Node < 0 || ip.Node >= p.Nodes:
					v.failf("program %d (seed %#x): injected panic names unknown node %d", i, p.Seed, ip.Node)
				case e.Counts[i][ip.Node] != 1:
					v.failf("program %d (seed %#x): panicking node n%d executed %d times",
						i, p.Seed, ip.Node, e.Counts[i][ip.Node])
				}
			}
			for id, c := range e.Counts[i] {
				if c > 1 {
					v.failf("program %d (seed %#x): node n%d executed %d times under panic, want ≤1",
						i, p.Seed, id, c)
				}
			}
			continue
		}
		if err := e.Errs[i]; err != nil {
			v.failf("program %d (seed %#x): clean root's Job.Err=%v — a sibling's failure leaked in", i, p.Seed, err)
		}
		for id, c := range e.Counts[i] {
			if c != 1 {
				v.failf("program %d (seed %#x): node n%d executed %d times, want exactly once", i, p.Seed, id, c)
			}
		}
	}

	// Completion ranks: every Job completed, so the Seqs must be a
	// permutation of 1..K (order itself is scheduling-dependent).
	seen := make(map[uint64]int, len(e.Seqs))
	for i, s := range e.Seqs {
		if s < 1 || s > uint64(len(ps)) {
			v.failf("program %d: completion rank %d outside [1,%d]", i, s, len(ps))
		} else if prev, dup := seen[s]; dup {
			v.failf("programs %d and %d share completion rank %d", prev, i, s)
		}
		seen[s] = i
	}

	// Quiescence after a graceful Close.
	if e.CloseErr != nil {
		v.failf("graceful Close returned %v, want nil", e.CloseErr)
	}
	if e.Queued != 0 {
		v.failf("%d tasks left in deques after Close", e.Queued)
	}
	if e.Parked != 0 {
		v.failf("%d thieves still parked after Close", e.Parked)
	}
	if e.Pending != 0 {
		v.failf("%d reclaim tickets still live after Close", e.Pending)
	}
	if e.Inflight != 0 {
		v.failf("InflightJobs=%d after Close, want 0", e.Inflight)
	}
	if e.JobQueue != 0 {
		v.failf("QueuedJobs=%d after Close, want 0", e.JobQueue)
	}

	// Job conservation at K > 1: every submission was admitted and
	// completed (a graceful Close sheds and drains nothing).
	k := int64(len(ps))
	if st.JobsSubmitted != k || st.JobsAdmitted != k || st.JobsCompleted != k {
		v.failf("JobsSubmitted=%d JobsAdmitted=%d JobsCompleted=%d, want %d each",
			st.JobsSubmitted, st.JobsAdmitted, st.JobsCompleted, k)
	}
	if st.JobsShed != 0 || st.JobsDrained != 0 {
		v.failf("graceful run shed %d / drained %d jobs, want 0/0", st.JobsShed, st.JobsDrained)
	}

	// Flow laws that survive mixed panics. The structural fork/call counts
	// relax to bounds when a panic unwound a parent mid-body (its later
	// fork sites never ran) or lazy edges chose at run time.
	if st.Suspends != st.Resumes {
		v.failf("Suspends=%d != Resumes=%d", st.Suspends, st.Resumes)
	}
	if st.Steals > st.Forks {
		v.failf("Steals=%d > Forks=%d (stole something never forked)", st.Steals, st.Forks)
	}
	var forks, calls, lazy int64
	for _, p := range ps {
		forks += int64(p.Forks)
		calls += int64(p.Calls)
		lazy += int64(p.LazyEdges)
	}
	if st.Forks > forks+lazy {
		v.failf("Stats.Forks=%d > total fork edges %d (+%d lazy)", st.Forks, forks, lazy)
	}
	if panics == 0 {
		if st.Forks+st.Calls != forks+calls+lazy {
			v.failf("Stats.Forks=%d + Stats.Calls=%d != fork edges %d + call edges %d + lazy %d",
				st.Forks, st.Calls, forks, calls, lazy)
		}
	}

	// Arena conservation: the balance law relaxes to an inequality when a
	// panic unwind skipped release sites; the backlog law always holds.
	if st.ArenaReleases > st.ArenaAcquires {
		v.failf("ArenaReleases=%d > ArenaAcquires=%d", st.ArenaReleases, st.ArenaAcquires)
	}
	if panics == 0 && st.ArenaAcquires != st.ArenaReleases {
		v.failf("ArenaAcquires=%d != ArenaReleases=%d on a panic-free run", st.ArenaAcquires, st.ArenaReleases)
	}
	if got := st.RemoteFrees - st.RemoteDrains; got != int64(e.Backlog) {
		v.failf("RemoteFrees-RemoteDrains=%d != RemoteFreeBacklog=%d (a hand-back was lost)", got, e.Backlog)
	}

	// Trace reconciliation. Unlike the one-shot panic leg, the jobs leg
	// reconciles unconditionally: a root's panic is captured inside exec
	// and surfaces through its own Job, never unwinding the thief loop, so
	// every event/counter pairing stays intact even with panicking roots
	// in the mix.
	v.reconcileTrace(e.Trace, st)
	return v.err()
}

// The many-submitters × tiny-jobs stress lane: K goroutines each submit M
// single-node roots back to back, so the runtime spends essentially all
// of its time in the intake path — CAS admission, sharded root queues,
// Job pooling (every job is Released), wake-one parking — rather than in
// the computation. This is the adversarial load for PR 10's lock-
// minimized Submit: the generated-program leg above stresses scheduling
// *within* jobs, this lane stresses the machinery *between* them.

// StressExec is the observable outcome of one stress run.
type StressExec struct {
	Label    string
	Counts   []uint32 // executions per root (must be exactly 1 each)
	Errs     []error  // Job.Err per root
	Seqs     []uint64 // Job.Seq per root
	Stats    core.Stats
	Queued   int
	Parked   int
	Pending  int
	Inflight int
	JobQueue int
	CloseErr error
	Trace    TraceSummary
}

// RunJobStress floods one serving runtime with k submitter goroutines ×
// m single-node roots each, waiting for and Releasing every Job, then
// Closes gracefully. The intake kind is a parameter so the sharded
// pipeline and the mutex baseline run the identical program
// differentially.
func RunJobStress(k, m, workers int, intake core.IntakeKind) StressExec {
	n := k * m
	e := StressExec{
		Label:  fmt.Sprintf("jobstress/%v/P=%d/K=%d/M=%d", intake, workers, k, m),
		Counts: make([]uint32, n),
		Errs:   make([]error, n),
		Seqs:   make([]uint64, n),
	}
	rec := trace.NewRecorder(traceRecorderCap)
	rt := core.NewRuntime(core.Config{
		Workers:    workers,
		StackPages: harnessStackPages,
		Intake:     intake,
		Sink:       rec,
	})
	rt.Start()
	var wg sync.WaitGroup
	for s := 0; s < k; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < m; i++ {
				idx := s*m + i
				j := rt.Submit(func(*core.W) {
					atomic.AddUint32(&e.Counts[idx], 1)
				})
				e.Errs[idx] = j.Err()
				e.Seqs[idx] = j.Seq()
				j.Release()
			}
		}(s)
	}
	wg.Wait()
	e.CloseErr = rt.Close(context.Background())
	e.Stats = rt.Stats()
	e.Trace = SummarizeTrace(rec)
	e.Queued = rt.QueuedTasks()
	e.Parked = rt.ParkedThieves()
	e.Pending = rt.PendingReclaims()
	e.Inflight = rt.InflightJobs()
	e.JobQueue = rt.QueuedJobs()
	return e
}

// CheckJobStress runs the oracles for a stress run: exactly-once
// execution, per-root success, Seq a permutation of 1..k*m, quiescence
// after Close, the job conservation laws at Submitted == k*m, the
// no-fork flow laws (single-node roots make no tasks, so Forks and
// Steals must both read zero), and trace reconciliation — which pins
// #JobStart == #JobDone == JobsCompleted and the TaskStart ==
// Steals − RestrictedSteals identity on the stressed path.
func CheckJobStress(k, m int, e StressExec) error {
	v := &violations{label: e.Label}
	st := e.Stats
	n := k * m

	for i, c := range e.Counts {
		if c != 1 {
			v.failf("root %d executed %d times, want exactly once", i, c)
		}
	}
	for i, err := range e.Errs {
		if err != nil {
			v.failf("root %d: Job.Err=%v, want nil", i, err)
		}
	}
	seen := make(map[uint64]int, n)
	for i, s := range e.Seqs {
		if s < 1 || s > uint64(n) {
			v.failf("root %d: completion rank %d outside [1,%d]", i, s, n)
		} else if prev, dup := seen[s]; dup {
			v.failf("roots %d and %d share completion rank %d", prev, i, s)
		}
		seen[s] = i
	}

	if e.CloseErr != nil {
		v.failf("graceful Close returned %v, want nil", e.CloseErr)
	}
	if e.Queued != 0 {
		v.failf("%d tasks left in deques after Close", e.Queued)
	}
	if e.Parked != 0 {
		v.failf("%d thieves still parked after Close", e.Parked)
	}
	if e.Pending != 0 {
		v.failf("%d reclaim tickets still live after Close", e.Pending)
	}
	if e.Inflight != 0 {
		v.failf("InflightJobs=%d after Close, want 0", e.Inflight)
	}
	if e.JobQueue != 0 {
		v.failf("QueuedJobs=%d after Close, want 0", e.JobQueue)
	}

	if st.JobsSubmitted != int64(n) || st.JobsAdmitted != int64(n) || st.JobsCompleted != int64(n) {
		v.failf("JobsSubmitted=%d JobsAdmitted=%d JobsCompleted=%d, want %d each",
			st.JobsSubmitted, st.JobsAdmitted, st.JobsCompleted, n)
	}
	if st.JobsShed != 0 || st.JobsDrained != 0 {
		v.failf("graceful run shed %d / drained %d jobs, want 0/0", st.JobsShed, st.JobsDrained)
	}

	// Single-node roots: the scheduler never sees a forked task, so the
	// whole steal/suspend economy must be silent.
	if st.Forks != 0 || st.Calls != 0 {
		v.failf("Forks=%d Calls=%d on single-node roots, want 0/0", st.Forks, st.Calls)
	}
	if st.Steals != 0 || st.Suspends != 0 || st.Resumes != 0 {
		v.failf("Steals=%d Suspends=%d Resumes=%d on single-node roots, want 0 each",
			st.Steals, st.Suspends, st.Resumes)
	}

	v.reconcileTrace(e.Trace, st)
	return v.err()
}
