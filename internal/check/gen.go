// Package check is the scheduler conformance harness: a seeded random
// fork-join program generator, a set of invariant oracles derived from the
// paper's theory (busy leaves, exactly-once execution, counter
// conservation, space bounds), and differential runners that execute each
// generated program on the real runtime (internal/core, both deque kinds,
// varying worker counts) and on both simulator engines (internal/sim),
// asserting that every executor computes the same execution multiset with
// oracle-clean counters.
//
// The design follows the argument of Cilkmem (Kaler et al.) — fork-join
// memory high-water marks are worth checking mechanically, not just on
// curated benchmarks — and of the fence-free work-stealing literature
// (Castañeda & Piña): steal-protocol bugs are interleaving-sensitive and
// survive ad-hoc testing, so the defense is a generator plus oracles run
// under the race detector. Everything is reproducible: a (seed, Params)
// pair fully determines the program, and every violation reports it.
package check

import (
	"fmt"

	"fibril/internal/invoke"
)

// Params bound the shapes the program generator may produce. The zero
// value takes the documented defaults (DefaultParams).
type Params struct {
	// MaxNodes caps the total number of function instances. Default 150.
	MaxNodes int
	// MaxDepth caps the nesting depth of the invocation tree. Default 7.
	MaxDepth int
	// MaxFanout caps the fork edges per node (parallel-loop nodes may use
	// up to 3×MaxFanout). Default 4.
	MaxFanout int
	// MaxCalls caps the synchronous call edges per node. Default 2.
	MaxCalls int
	// MaxWork caps the serial work units of one segment. Default 48.
	MaxWork int64
	// FrameMin/FrameMax bound the simulated activation-frame bytes of a
	// node. Defaults 48/1024, with an occasional page-crossing large frame
	// (up to 2 pages) to exercise demand paging and unmap.
	FrameMin, FrameMax int
	// LoopPct is the percentage of interior nodes generated as parallel
	// loops: a wide run of forks with a single trailing join, the shape
	// loops.For lowers to. Default 20.
	LoopPct int
	// PanicPct is the percentage of leaf nodes that panic after their
	// work. Panics are injected only into fork subtrees (calls always
	// precede forks in panic-mode programs) so propagation stays orderly;
	// the simulator does not model panics, so programs with PanicPct > 0
	// are for the real runtime only. Default 0.
	PanicPct int
	// LazyPct is the percentage of fork edges generated as LAZY edges:
	// the executor decides fork-vs-call at run time with W.ShouldSplit —
	// the shape loops.For's steal-driven lazy splitter lowers to. The
	// exactly-once and quiescence oracles hold regardless of how the
	// decisions fall; the Forks/Calls equalities relax to a conservation
	// law. Lazy edges are suppressed in panic-mode programs (a lazy edge
	// degrading to a call would let a panic bypass the calls-before-forks
	// ordering above). Default 0, so existing seeds replay bit-identically.
	LazyPct int
}

// DefaultParams returns the generator defaults used by the conformance
// suite and fibril-check.
func DefaultParams() Params {
	return Params{}.withDefaults()
}

// WithDefaults returns the params with zero fields replaced by defaults —
// the exact configuration Generate will run. Exposed for fibril-check's
// shrinker, which needs concrete values to reduce from.
func (p Params) WithDefaults() Params { return p.withDefaults() }

func (p Params) withDefaults() Params {
	if p.MaxNodes <= 0 {
		p.MaxNodes = 150
	}
	if p.MaxDepth <= 0 {
		p.MaxDepth = 7
	}
	if p.MaxFanout <= 0 {
		p.MaxFanout = 4
	}
	if p.MaxCalls < 0 {
		p.MaxCalls = 0
	} else if p.MaxCalls == 0 {
		p.MaxCalls = 2
	}
	if p.MaxWork <= 0 {
		p.MaxWork = 48
	}
	if p.FrameMin <= 0 {
		p.FrameMin = 48
	}
	if p.FrameMax < p.FrameMin {
		p.FrameMax = 1024
	}
	if p.LoopPct < 0 || p.LoopPct > 100 {
		p.LoopPct = 20
	}
	if p.PanicPct < 0 || p.PanicPct > 100 {
		p.PanicPct = 0
	}
	if p.LazyPct < 0 || p.LazyPct > 100 || p.PanicPct > 0 {
		p.LazyPct = 0
	}
	return p
}

func (p Params) String() string {
	return fmt.Sprintf("nodes≤%d depth≤%d fanout≤%d calls≤%d work≤%d frame=[%d,%d] loop%%=%d panic%%=%d lazy%%=%d",
		p.MaxNodes, p.MaxDepth, p.MaxFanout, p.MaxCalls, p.MaxWork,
		p.FrameMin, p.FrameMax, p.LoopPct, p.PanicPct, p.LazyPct)
}

// Seg is one segment of a generated node's body, mirroring invoke.Seg's
// within-segment order: serial work, then a synchronous call, then a fork,
// then an optional join of all children forked so far. A fork edge with
// Lazy set leaves the fork-vs-call decision to the executor at run time
// (W.ShouldSplit on the real runtime; the simulator and the serial
// elision always fork it, the canonical reading of the DAG).
type Seg struct {
	Work int64
	Call *Node
	Fork *Node
	Lazy bool
	Join bool
}

// Node is one function instance of a generated program. IDs are dense
// (0..Nodes-1, root = 0), which lets executors record executions in a flat
// counter array.
type Node struct {
	ID    int
	Frame int
	Segs  []Seg
	Panic bool // leaf only: panic after the body's work
}

// forks reports whether the node forks (and therefore declares a frame).
func (n *Node) forks() bool {
	for _, s := range n.Segs {
		if s.Fork != nil {
			return true
		}
	}
	return false
}

// Program is a generated fork-join program, fully determined by (Seed,
// Params).
type Program struct {
	Seed   uint64
	Params Params
	Root   *Node

	Nodes     int // total function instances
	Forks     int // unconditional fork edges
	Calls     int // call edges
	LazyEdges int // fork edges whose fork-vs-call decision is taken at run time
	Panics    int // panic-injected leaves
}

func (p *Program) String() string {
	return fmt.Sprintf("program(seed=%#x nodes=%d forks=%d calls=%d lazy=%d panics=%d)",
		p.Seed, p.Nodes, p.Forks, p.Calls, p.LazyEdges, p.Panics)
}

// rng is splitmix64 — tiny, seedable, and good enough for shape decisions.
type rng uint64

func (r *rng) next() uint64 {
	*r += 0x9E3779B97F4A7C15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// rangeIn returns a value in [lo, hi].
func (r *rng) rangeIn(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.intn(hi-lo+1)
}

// pct rolls a percentage.
func (r *rng) pct(p int) bool { return p > 0 && r.intn(100) < p }

// Generate builds the program determined by (seed, params). The same pair
// always yields the same program, so any violation found on a generated
// program is replayable from its seed alone.
func Generate(seed uint64, params Params) *Program {
	params = params.withDefaults()
	p := &Program{Seed: seed, Params: params}
	r := rng(seed)
	budget := params.MaxNodes - 1 // root consumes one node
	p.Root = p.gen(&r, 1, &budget)
	return p
}

// frameBytes draws a node's simulated frame size: usually small, and
// occasionally (1 in 8) up to two pages so frames cross page boundaries
// and suspension-time unmap has something to return.
func (p *Program) frameBytes(r *rng) int {
	if r.pct(12) {
		return r.rangeIn(p.Params.FrameMax, 2*4096)
	}
	return r.rangeIn(p.Params.FrameMin, p.Params.FrameMax)
}

// newNode allocates the next node ID.
func (p *Program) newNode(r *rng) *Node {
	n := &Node{ID: p.Nodes, Frame: p.frameBytes(r)}
	p.Nodes++
	return n
}

// gen creates a subtree at the given depth, spending from *budget (the
// count of additional nodes the subtree may allocate beyond its root).
func (p *Program) gen(r *rng, depth int, budget *int) *Node {
	n := p.newNode(r)
	// Leaf when out of depth or budget, or by taper: deeper nodes are
	// increasingly likely to be leaves.
	taper := 100 * depth / (p.Params.MaxDepth + 1)
	if depth >= p.Params.MaxDepth || *budget <= 0 || r.pct(taper) {
		n.Segs = []Seg{{Work: p.work(r)}}
		if p.Params.PanicPct > 0 && depth > 1 && r.pct(p.Params.PanicPct) {
			n.Panic = true
			p.Panics++
		}
		return n
	}
	if r.pct(p.Params.LoopPct) {
		p.genLoop(r, n, depth, budget)
	} else {
		p.genMixed(r, n, depth, budget)
	}
	if len(n.Segs) == 0 { // children denied by budget: degrade to a leaf
		n.Segs = []Seg{{Work: p.work(r)}}
	}
	return n
}

// work draws one segment's serial work, occasionally zero (pure scheduling
// nodes are the adversarial case for steal protocols).
func (p *Program) work(r *rng) int64 {
	if r.pct(25) {
		return 0
	}
	return int64(r.intn(int(p.Params.MaxWork))) + 1
}

// genLoop emits a parallel-loop body: a wide run of forks and a single
// trailing join — the shape loops.For lowers to, and the widest stress on
// the deque (many entries exposed to thieves at once).
func (p *Program) genLoop(r *rng, n *Node, depth int, budget *int) {
	width := r.rangeIn(2, 3*p.Params.MaxFanout)
	for i := 0; i < width && *budget > 0; i++ {
		*budget--
		child := p.gen(r, depth+1, budget)
		seg := Seg{Work: p.work(r) / 4, Fork: child}
		if r.pct(p.Params.LazyPct) {
			seg.Lazy = true
			p.LazyEdges++
		} else {
			p.Forks++
		}
		n.Segs = append(n.Segs, seg)
	}
	n.Segs = append(n.Segs, Seg{Work: p.work(r), Join: true})
}

// genMixed emits a general body: a few calls and forks with optional
// mid-body joins. In panic mode all calls precede all forks, so a panic
// propagating synchronously out of a call can never bypass a join with
// outstanding children (see Params.PanicPct).
func (p *Program) genMixed(r *rng, n *Node, depth int, budget *int) {
	nCalls := r.intn(p.Params.MaxCalls + 1)
	nForks := r.rangeIn(1, p.Params.MaxFanout)
	type edge struct{ fork bool }
	var edges []edge
	for i := 0; i < nCalls; i++ {
		edges = append(edges, edge{fork: false})
	}
	for i := 0; i < nForks; i++ {
		edges = append(edges, edge{fork: true})
	}
	if p.Params.PanicPct == 0 {
		// Shuffle so calls and forks interleave (call-after-fork and
		// call-after-join shapes are the serial-parallel reciprocity
		// surface the paper's §4.1 is about).
		for i := len(edges) - 1; i > 0; i-- {
			j := r.intn(i + 1)
			edges[i], edges[j] = edges[j], edges[i]
		}
	}
	forked := false
	for _, e := range edges {
		if *budget <= 0 {
			break
		}
		*budget--
		child := p.gen(r, depth+1, budget)
		seg := Seg{Work: p.work(r)}
		if e.fork {
			seg.Fork = child
			if r.pct(p.Params.LazyPct) {
				seg.Lazy = true
				p.LazyEdges++
			} else {
				p.Forks++
			}
			forked = true
		} else {
			seg.Call = child
			p.Calls++
		}
		// Occasionally join mid-body, opening a second fork phase.
		if forked && r.pct(20) {
			seg.Join = true
		}
		n.Segs = append(n.Segs, seg)
	}
	n.Segs = append(n.Segs, Seg{Work: p.work(r)})
}

// Tree converts the program to an invocation tree for the simulator and
// for invoke.Analyze. Node IDs ride in Task.Key (offset by one — zero
// disables memoization) so sim executions can be mapped back to nodes;
// keys are unique per node, so memoization degenerates to caching and
// Analyze stays exact.
func (p *Program) Tree() invoke.Task {
	return p.taskOf(p.Root)
}

func (p *Program) taskOf(n *Node) invoke.Task {
	t := invoke.Task{
		Frame: n.Frame,
		Key:   uint64(n.ID) + 1,
		Name:  fmt.Sprintf("n%d", n.ID),
	}
	for _, s := range n.Segs {
		seg := invoke.Seg{Work: s.Work, Join: s.Join}
		if c := s.Call; c != nil {
			seg.Call = func() invoke.Task { return p.taskOf(c) }
		}
		if c := s.Fork; c != nil {
			seg.Fork = func() invoke.Task { return p.taskOf(c) }
		}
		t.Segs = append(t.Segs, seg)
	}
	return t
}

// Metrics analyzes the program's invocation tree: T1, T∞, S1, D, and the
// structural counts the oracles check against.
func (p *Program) Metrics() invoke.Metrics {
	return invoke.Analyze(p.Tree())
}
