package check

import (
	"errors"
	"fmt"

	"fibril/internal/core"
	"fibril/internal/invoke"
	"fibril/internal/vm"
)

// The oracles. Each takes a generated program, the exact structural
// metrics of its invocation tree (invoke.Analyze), and one executor's
// observables, and returns every invariant violation found, tagged with
// the executor label and the program seed so any failure is replayable
// with `fibril-check -seed`.
//
// The invariants come in three families:
//
//   - Completeness/exactly-once: every node executed exactly once (the
//     busy-leaves corollary that no fork is lost and no fork runs twice),
//     and at quiescence no deque holds work and no thief stays parked.
//   - Counter conservation: the scheduler counters must satisfy the flow
//     equations of the child-stealing protocol — Forks and Calls match the
//     tree exactly; every committed suspension is resumed exactly once;
//     a frame suspends only because one of its children was stolen, so
//     Suspends ≤ Steals ≤ Forks; unmap/madvise/remap counters follow the
//     strategy's stack-management discipline; the pool never creates a
//     stack it doesn't hand out.
//   - Space: per-stack high-water and machine-wide resident pages stay
//     under envelopes derived from the paper's Theorem 4.1/4.2 quantities
//     S1 (serial stack high-water) and D (fibril depth). The real
//     runtime's help-first substitution admits more than S1 bytes on one
//     stack (a join may inline-drain a pending child of a *shallower*
//     frame onto the current stack, nesting up to one serial path per
//     fibril level), so the sound per-stack envelope is (D+1)·(S1p+1)
//     pages, not S1p; the strict paper bound is asserted where it does
//     hold, on the work-first simulator engine.
type violations struct {
	seed  uint64
	label string
	errs  []error
}

func (v *violations) failf(format string, args ...any) {
	v.errs = append(v.errs, fmt.Errorf("[%s seed=%#x] %s", v.label, v.seed, fmt.Sprintf(format, args...)))
}

func (v *violations) err() error { return errors.Join(v.errs...) }

// checkCounts asserts exactly-once execution: the executed multiset equals
// the program's node set.
func (v *violations) checkCounts(p *Program, counts []uint32) {
	if len(counts) != p.Nodes {
		v.failf("count array has %d slots, program has %d nodes", len(counts), p.Nodes)
		return
	}
	bad := 0
	for id, c := range counts {
		if c != 1 {
			if bad < 5 {
				v.failf("node n%d executed %d times, want exactly once", id, c)
			}
			bad++
		}
	}
	if bad > 5 {
		v.failf("... and %d more multiplicity violations", bad-5)
	}
}

// perStackEnvelopePages is the sound per-linear-stack high-water envelope
// for help-first execution, in pages (see the package comment above).
func perStackEnvelopePages(m invoke.Metrics, capacityPages int) int {
	s1p := vm.PageAlign(int(m.MaxStackBytes))
	env := (m.FibrilDepth + 1) * (s1p + 1)
	if env > capacityPages {
		env = capacityPages
	}
	return env
}

// CheckReal runs every oracle that applies to a completed (non-panicking)
// real-runtime execution.
func CheckReal(p *Program, m invoke.Metrics, e RealExec) error {
	v := &violations{seed: p.Seed, label: e.Label}
	st := e.Stats

	if e.Recovered != nil {
		v.failf("run panicked unexpectedly: %v", e.Recovered)
		return v.err() // counters are meaningless after an unwound run
	}
	v.checkCounts(p, e.Counts)

	// Busy-leaves quiescence: Run may not return while work remains.
	if e.Queued != 0 {
		v.failf("%d tasks left in deques after Run", e.Queued)
	}
	if e.Parked != 0 {
		v.failf("%d thieves still parked after Run", e.Parked)
	}
	if e.Pending != 0 {
		v.failf("%d reclaim tickets still live after Run", e.Pending)
	}

	// Serving-lifecycle conservation: a one-shot Run is exactly one Submit
	// on the Start/Submit/Close machinery, so the job counters must read
	// one submission, one admission, one completion, nothing shed or
	// drained — the K=1 instance of
	// JobsSubmitted == JobsShed + JobsDrained + JobsCompleted.
	if st.JobsSubmitted != 1 || st.JobsAdmitted != 1 || st.JobsCompleted != 1 {
		v.failf("one Run reads JobsSubmitted=%d JobsAdmitted=%d JobsCompleted=%d, want 1/1/1",
			st.JobsSubmitted, st.JobsAdmitted, st.JobsCompleted)
	}
	if st.JobsShed != 0 || st.JobsDrained != 0 {
		v.failf("one Run shed %d / drained %d jobs, want 0/0", st.JobsShed, st.JobsDrained)
	}

	// Structural conservation: the scheduler executed exactly the tree's
	// edges. (Forks excludes the root: it is Run's argument, not a fork.)
	// A lazy edge resolves at run time into either a fork or a call, so
	// with lazy edges present the exact equalities relax to the
	// conservation law — every edge accounted for exactly once, forks and
	// calls each inside the [unconditional, unconditional+lazy] range.
	if p.LazyEdges == 0 {
		if st.Forks != int64(p.Forks) {
			v.failf("Stats.Forks=%d, tree has %d fork edges", st.Forks, p.Forks)
		}
		if st.Calls != int64(p.Calls) {
			v.failf("Stats.Calls=%d, tree has %d call edges", st.Calls, p.Calls)
		}
	} else {
		lazy := int64(p.LazyEdges)
		if st.Forks+st.Calls != int64(p.Forks+p.Calls)+lazy {
			v.failf("Stats.Forks=%d + Stats.Calls=%d != forks %d + calls %d + lazy %d",
				st.Forks, st.Calls, p.Forks, p.Calls, p.LazyEdges)
		}
		if st.Forks < int64(p.Forks) || st.Forks > int64(p.Forks)+lazy {
			v.failf("Stats.Forks=%d outside [%d, %d] (lazy edges %d)",
				st.Forks, p.Forks, int64(p.Forks)+lazy, p.LazyEdges)
		}
		if st.Calls < int64(p.Calls) || st.Calls > int64(p.Calls)+lazy {
			v.failf("Stats.Calls=%d outside [%d, %d] (lazy edges %d)",
				st.Calls, p.Calls, int64(p.Calls)+lazy, p.LazyEdges)
		}
	}

	// Suspension flow: every committed suspension is resumed exactly once,
	// a frame suspends only if one of its children was stolen, and steals
	// only take forked tasks.
	if st.Suspends != st.Resumes {
		v.failf("Suspends=%d != Resumes=%d", st.Suspends, st.Resumes)
	}
	if st.Suspends > st.Steals {
		v.failf("Suspends=%d > Steals=%d (a frame suspended with no stolen child)", st.Suspends, st.Steals)
	}
	if st.Steals > st.Forks {
		v.failf("Steals=%d > Forks=%d (stole something never forked)", st.Steals, st.Forks)
	}
	if st.Workers == 1 && st.Strategy != core.StrategyGoroutine {
		// With one worker there is nobody to steal, hence nothing to
		// suspend for: the run must degenerate to the serial elision.
		if st.Steals != 0 || st.Suspends != 0 {
			v.failf("P=1 run stole %d / suspended %d times", st.Steals, st.Suspends)
		}
	}

	// Multiplicity discipline. The relaxed exactly-once law — executions
	// == 1 under at-least-once extraction — is checkCounts above, which
	// holds for every deque kind; DuplicateExtractions is the surplus the
	// claim layer absorbed. The linearizable kinds promise exactly-once
	// *extraction*, so any duplicate there is a protocol violation, and at
	// P=1 the relaxed owner is the only extractor, so its private/published
	// split must also produce none.
	if e.Deque != core.DequeRelaxed && st.DuplicateExtractions != 0 {
		v.failf("deque %v reported %d duplicate extractions, want 0",
			e.Deque, st.DuplicateExtractions)
	}
	if st.Workers == 1 && st.Strategy != core.StrategyGoroutine && st.DuplicateExtractions != 0 {
		v.failf("P=1 run reported %d duplicate extractions", st.DuplicateExtractions)
	}
	if st.DuplicateExtractions < 0 {
		v.failf("DuplicateExtractions=%d underflowed", st.DuplicateExtractions)
	}

	// Stack-management discipline per strategy. StrategyFibril with
	// UnmapBatch > 1 runs the coalesced engine: every suspend resolves
	// exactly once as a flushed unmap, a resume-cancelled ticket, or a
	// hysteresis skip, so the eager equality Unmaps == Suspends relaxes to
	// that conservation law (and tightens back — the three coalesced
	// counters must be exactly zero in every other mode).
	coalesced := st.Strategy == core.StrategyFibril && e.Mem.UnmapBatch > 1
	switch {
	case coalesced:
		if got := st.Unmaps + st.ReclaimCancels + st.ReclaimSkips; got != st.Suspends {
			v.failf("Unmaps=%d + ReclaimCancels=%d + ReclaimSkips=%d = %d != Suspends=%d",
				st.Unmaps, st.ReclaimCancels, st.ReclaimSkips, got, st.Suspends)
		}
		if st.UnmapBatches > st.Unmaps {
			v.failf("UnmapBatches=%d > Unmaps=%d (a counted batch flushed nothing)",
				st.UnmapBatches, st.Unmaps)
		}
	case st.Strategy == core.StrategyFibril, st.Strategy == core.StrategyFibrilMMap:
		if st.Unmaps != st.Suspends {
			v.failf("Unmaps=%d != Suspends=%d", st.Unmaps, st.Suspends)
		}
	default:
		if st.Unmaps != 0 {
			v.failf("strategy %v performed %d unmaps, want 0", st.Strategy, st.Unmaps)
		}
	}
	if !coalesced && (st.UnmapBatches != 0 || st.ReclaimCancels != 0 || st.ReclaimSkips != 0) {
		v.failf("eager mode has coalesced counters batches=%d cancels=%d skips=%d, want all 0",
			st.UnmapBatches, st.ReclaimCancels, st.ReclaimSkips)
	}
	// RSS-ceiling discipline: with no ceiling the pressure valve may never
	// fire; with one, every madvise call and page is attributed either to
	// a suspend-path unmap or to a pool reclaim.
	if e.Mem.MaxResidentPages == 0 &&
		(st.CeilingHits != 0 || st.PoolReclaims != 0 || st.ReclaimedPages != 0) {
		v.failf("no ceiling configured but hits=%d poolReclaims=%d reclaimedPages=%d",
			st.CeilingHits, st.PoolReclaims, st.ReclaimedPages)
	}
	switch st.Strategy {
	case core.StrategyFibril:
		if st.VM.MadviseCalls != st.Unmaps+st.PoolReclaims {
			v.failf("VM.MadviseCalls=%d != Unmaps=%d + PoolReclaims=%d",
				st.VM.MadviseCalls, st.Unmaps, st.PoolReclaims)
		}
		if st.VM.MadvisedPages != st.UnmappedPages+st.ReclaimedPages {
			v.failf("VM.MadvisedPages=%d != UnmappedPages=%d + ReclaimedPages=%d",
				st.VM.MadvisedPages, st.UnmappedPages, st.ReclaimedPages)
		}
		if st.VM.RemapCalls != 0 {
			v.failf("madvise strategy performed %d remaps", st.VM.RemapCalls)
		}
	case core.StrategyFibrilMMap:
		// Suspend unmaps go through mmap here; any madvise traffic is the
		// ceiling reclaiming residue off pooled stacks.
		if st.VM.MadviseCalls != st.PoolReclaims {
			v.failf("mmap strategy: VM.MadviseCalls=%d != PoolReclaims=%d",
				st.VM.MadviseCalls, st.PoolReclaims)
		}
		if st.VM.MadvisedPages != st.ReclaimedPages {
			v.failf("mmap strategy: VM.MadvisedPages=%d != ReclaimedPages=%d",
				st.VM.MadvisedPages, st.ReclaimedPages)
		}
		if st.VM.RemapCalls != st.Resumes {
			v.failf("VM.RemapCalls=%d != Resumes=%d", st.VM.RemapCalls, st.Resumes)
		}
	default:
		if st.VM.MadviseCalls != st.PoolReclaims || st.VM.RemapCalls != 0 {
			v.failf("strategy %v touched unmap machinery (madvise=%d poolReclaims=%d remap=%d)",
				st.Strategy, st.VM.MadviseCalls, st.PoolReclaims, st.VM.RemapCalls)
		}
		if st.VM.MadvisedPages != st.ReclaimedPages {
			v.failf("strategy %v: VM.MadvisedPages=%d != ReclaimedPages=%d",
				st.Strategy, st.VM.MadvisedPages, st.ReclaimedPages)
		}
	}
	// A resume must never find its pages swapped for the dummy file: a
	// nonzero DummyTouches means the FibrilMMap remap discipline raced.
	if st.VM.DummyTouches != 0 {
		v.failf("VM.DummyTouches=%d, want 0 (touched a dummy-mapped page)", st.VM.DummyTouches)
	}

	// Arena conservation (the zero-allocation fork path). On a non-panic
	// run every harness release site executes, so acquires and releases
	// balance exactly; every remote hand-back is adopted by a drain or
	// still parked on a remote-free list at quiescence — never lost; and
	// both remote traffic and drops are subsets of the release flow.
	if st.ArenaAcquires != st.ArenaReleases {
		v.failf("ArenaAcquires=%d != ArenaReleases=%d", st.ArenaAcquires, st.ArenaReleases)
	}
	if st.RemoteFrees+st.ArenaDrops > st.ArenaReleases {
		v.failf("RemoteFrees=%d + ArenaDrops=%d > ArenaReleases=%d",
			st.RemoteFrees, st.ArenaDrops, st.ArenaReleases)
	}
	if st.RemoteDrains > st.RemoteFrees {
		v.failf("RemoteDrains=%d > RemoteFrees=%d (adopted more than was handed back)",
			st.RemoteDrains, st.RemoteFrees)
	}
	if got := st.RemoteFrees - st.RemoteDrains; got != int64(e.Backlog) {
		v.failf("RemoteFrees-RemoteDrains=%d != RemoteFreeBacklog=%d (a hand-back was lost)",
			got, e.Backlog)
	}
	if st.Workers == 1 && st.Strategy != core.StrategyGoroutine && st.RemoteFrees != 0 {
		// One slot releases only onto itself; remote traffic needs a
		// foreign releaser.
		v.failf("P=1 run handed %d blocks to a remote-free list", st.RemoteFrees)
	}

	// Pool conservation: a stack is created only when nothing free is
	// found, so creations and peak checkout coincide — exactly on the
	// serialized global pool; on the sharded pool a taker can miss a stack
	// a concurrent Put is still publishing and create a fresh one, so peak
	// checkout is a lower bound there (never an overcount: inUse is bumped
	// strictly after acquisition).
	if e.Mem.Pool == core.PoolGlobal {
		if st.MaxStacksUsed != st.StacksCreated {
			v.failf("MaxStacksUsed=%d != StacksCreated=%d", st.MaxStacksUsed, st.StacksCreated)
		}
	} else if st.MaxStacksUsed > st.StacksCreated {
		v.failf("MaxStacksUsed=%d > StacksCreated=%d", st.MaxStacksUsed, st.StacksCreated)
	}
	if int64(st.StacksCreated) > int64(st.Workers)+st.Suspends {
		v.failf("StacksCreated=%d > Workers+Suspends=%d", st.StacksCreated, int64(st.Workers)+st.Suspends)
	}
	if st.Strategy != core.StrategyCilkPlus && st.PoolStalls != 0 {
		v.failf("unbounded pool recorded %d stalls", st.PoolStalls)
	}

	// Virtual-space conservation: stacks are mapped once and never
	// unmapped during a run.
	if want := int64(st.StacksCreated) * int64(harnessStackPages); st.VM.VirtualPages != want {
		v.failf("VM.VirtualPages=%d != StacksCreated×%d=%d", st.VM.VirtualPages, harnessStackPages, want)
	}
	if st.VM.MUnmapCalls != 0 {
		v.failf("run performed %d munmaps", st.VM.MUnmapCalls)
	}
	// Every page ever resident was faulted in at least once.
	if st.VM.PageFaults < st.VM.MaxRSSPages {
		v.failf("PageFaults=%d < MaxRSSPages=%d", st.VM.PageFaults, st.VM.MaxRSSPages)
	}

	// Space envelopes (see package comment): per-stack high-water, and
	// machine-wide resident pages bounded by the stack population times the
	// per-stack envelope (the pool does not unmap returned stacks, so
	// residue accumulates per stack, never beyond its own high-water).
	env := perStackEnvelopePages(m, harnessStackPages)
	if e.MaxHW > env {
		v.failf("per-stack high-water %d pages > envelope (D+1)(S1p+1)=%d (S1=%dB D=%d)",
			e.MaxHW, env, m.MaxStackBytes, m.FibrilDepth)
	}
	if limit := int64(st.StacksCreated) * int64(env); st.VM.MaxRSSPages > limit {
		v.failf("MaxRSSPages=%d > stacks(%d)×envelope(%d)=%d",
			st.VM.MaxRSSPages, st.StacksCreated, env, limit)
	}

	// Differential check of the observability plane: the streamed event
	// trace must reconcile with the counter shards (see trace.go).
	v.reconcileTrace(e.Trace, st)
	return v.err()
}

// CheckRealPanic runs the oracles that survive an intentionally panicking
// program: the injected panic must resurface from Run wrapped in a
// *core.TaskPanic, no node may run more than once, and the runtime must
// still quiesce (no leaked work, no leaked thieves, balanced suspensions).
func CheckRealPanic(p *Program, e RealExec) error {
	v := &violations{seed: p.Seed, label: e.Label}
	if p.Panics == 0 {
		v.failf("CheckRealPanic on a program with no injected panics")
		return v.err()
	}
	var ip InjectedPanic
	switch r := e.Recovered.(type) {
	case nil:
		v.failf("program injects %d panics but Run returned normally", p.Panics)
		return v.err()
	case *core.TaskPanic:
		var ok bool
		if ip, ok = r.Value.(InjectedPanic); !ok {
			v.failf("TaskPanic wraps %T (%v), want check.InjectedPanic", r.Value, r.Value)
			return v.err()
		}
	default:
		v.failf("Run panicked with %T (%v), want *core.TaskPanic", r, r)
		return v.err()
	}
	if ip.Seed != p.Seed {
		v.failf("injected panic carries seed %#x", ip.Seed)
	}
	if ip.Node < 0 || ip.Node >= p.Nodes {
		v.failf("injected panic names unknown node %d", ip.Node)
	} else if c := e.Counts[ip.Node]; c != 1 {
		v.failf("panicking node n%d executed %d times", ip.Node, c)
	}
	for id, c := range e.Counts {
		if c > 1 {
			v.failf("node n%d executed %d times under panic, want ≤1", id, c)
		}
	}
	if e.Queued != 0 {
		v.failf("%d tasks left in deques after panicked Run", e.Queued)
	}
	if e.Parked != 0 {
		v.failf("%d thieves still parked after panicked Run", e.Parked)
	}
	if e.Pending != 0 {
		v.failf("%d reclaim tickets still live after panicked Run", e.Pending)
	}
	st := e.Stats
	// A panicking root still completes its Job — the panic is captured and
	// re-raised by Run, not leaked mid-flight — so the K=1 job conservation
	// law is identical to the clean-run one.
	if st.JobsSubmitted != 1 || st.JobsAdmitted != 1 || st.JobsCompleted != 1 {
		v.failf("panicked Run reads JobsSubmitted=%d JobsAdmitted=%d JobsCompleted=%d, want 1/1/1",
			st.JobsSubmitted, st.JobsAdmitted, st.JobsCompleted)
	}
	if st.JobsShed != 0 || st.JobsDrained != 0 {
		v.failf("panicked Run shed %d / drained %d jobs, want 0/0", st.JobsShed, st.JobsDrained)
	}
	if st.Suspends != st.Resumes {
		v.failf("Suspends=%d != Resumes=%d after panic", st.Suspends, st.Resumes)
	}
	if st.Forks > int64(p.Forks) {
		v.failf("Stats.Forks=%d > tree fork edges %d", st.Forks, p.Forks)
	}
	if e.Deque != core.DequeRelaxed && st.DuplicateExtractions != 0 {
		v.failf("deque %v reported %d duplicate extractions under panic, want 0",
			e.Deque, st.DuplicateExtractions)
	}
	// A panic unwind skips release sites (the arena contract forbids
	// releasing a block an in-flight child may still reference), so the
	// balance law relaxes to an inequality; the backlog law still holds —
	// blocks that did reach a remote-free list are never lost.
	if st.ArenaReleases > st.ArenaAcquires {
		v.failf("ArenaReleases=%d > ArenaAcquires=%d under panic", st.ArenaReleases, st.ArenaAcquires)
	}
	if got := st.RemoteFrees - st.RemoteDrains; got != int64(e.Backlog) {
		v.failf("RemoteFrees-RemoteDrains=%d != RemoteFreeBacklog=%d under panic", got, e.Backlog)
	}
	return v.err()
}

// CheckSim runs every oracle that applies to a simulator execution.
func CheckSim(p *Program, m invoke.Metrics, e SimExec) error {
	v := &violations{seed: p.Seed, label: e.Label}
	r := e.Res

	v.checkCounts(p, e.Counts)
	if r.Tasks != int64(p.Nodes) {
		v.failf("Result.Tasks=%d, program has %d nodes", r.Tasks, p.Nodes)
	}
	// The simulator executes the canonical invocation tree, where every
	// lazy edge is a fork (laziness is a real-runtime scheduling choice).
	if r.Forks != int64(p.Forks+p.LazyEdges) {
		v.failf("Result.Forks=%d, tree has %d fork edges (%d unconditional + %d lazy)",
			r.Forks, p.Forks+p.LazyEdges, p.Forks, p.LazyEdges)
	}
	if r.Steals > r.Forks && !e.WorkFirst {
		v.failf("Steals=%d > Forks=%d", r.Steals, r.Forks)
	}
	if r.Suspends != r.Resumes {
		v.failf("Suspends=%d != Resumes=%d", r.Suspends, r.Resumes)
	}
	switch {
	case e.WorkFirst:
		// Work-first joiners may become thieves without unmapping (why
		// Table 2 has unmaps < steals); only a loose flow bound holds.
		if r.Unmaps > r.Suspends+r.Steals {
			v.failf("Unmaps=%d > Suspends+Steals=%d", r.Unmaps, r.Suspends+r.Steals)
		}
	case r.Strategy == core.StrategyFibril || r.Strategy == core.StrategyFibrilMMap:
		if r.Unmaps != r.Suspends {
			v.failf("Unmaps=%d != Suspends=%d", r.Unmaps, r.Suspends)
		}
	default:
		if r.Unmaps != 0 {
			v.failf("strategy %v performed %d unmaps, want 0", r.Strategy, r.Unmaps)
		}
	}
	if r.Strategy != core.StrategyCilkPlus && r.PoolStalls != 0 {
		v.failf("unbounded pool recorded %d stalls", r.PoolStalls)
	}
	if r.MaxStacksUsed > r.StacksCreated {
		v.failf("MaxStacksUsed=%d > StacksCreated=%d", r.MaxStacksUsed, r.StacksCreated)
	}

	// Greedy scheduling lower bounds: no engine may finish faster than
	// T1/P or than the critical path.
	if r.Makespan < m.Work/int64(r.Workers) {
		v.failf("Makespan=%d < T1/P=%d", r.Makespan, m.Work/int64(r.Workers))
	}
	if r.Makespan < m.Span {
		v.failf("Makespan=%d < T∞=%d", r.Makespan, m.Span)
	}

	if r.VM.DummyTouches != 0 {
		v.failf("VM.DummyTouches=%d, want 0", r.VM.DummyTouches)
	}
	if r.VM.PageFaults < r.VM.MaxRSSPages {
		v.failf("PageFaults=%d < MaxRSSPages=%d", r.VM.PageFaults, r.VM.MaxRSSPages)
	}

	env := perStackEnvelopePages(m, harnessStackPages)
	if limit := int64(r.StacksCreated) * int64(env); r.VM.MaxRSSPages > limit {
		v.failf("MaxRSSPages=%d > stacks(%d)×envelope(%d)=%d",
			r.VM.MaxRSSPages, r.StacksCreated, env, limit)
	}
	if e.WorkFirst && r.Strategy == core.StrategyFibril {
		// Theorem 4.2's shape holds strictly under true continuation
		// stealing: P stacks of at most S1 pages each live at once, plus
		// one partially-used page per suspension depth.
		s1p := vm.PageAlign(int(m.MaxStackBytes))
		bound := int64(r.Workers) * int64(s1p+m.FibrilDepth+1)
		if r.VM.MaxRSSPages > bound {
			v.failf("work-first MaxRSSPages=%d > P(S1p+D+1)=%d (S1=%dB D=%d P=%d)",
				r.VM.MaxRSSPages, bound, m.MaxStackBytes, m.FibrilDepth, r.Workers)
		}
	}
	return v.err()
}
