package check

import (
	"testing"

	"fibril/internal/core"
)

// jobMix assembles k generated programs for a concurrent-submission leg,
// with every third slot holding a panic-injected program so panicking and
// clean roots share one scheduler.
func jobMix(t *testing.T, k int) []*Program {
	t.Helper()
	ps := make([]*Program, 0, k)
	seed := uint64(700)
	for len(ps) < k {
		params := Params{}
		wantPanic := len(ps)%3 == 0
		if wantPanic {
			params.PanicPct = 50
		}
		p := Generate(seed, params)
		seed++
		if wantPanic != (p.Panics > 0) {
			continue
		}
		ps = append(ps, p)
	}
	return ps
}

// TestDifferentialConcurrentJobs is the concurrent-submission leg of the
// harness: ≥8 generated programs — mixed panicking and clean — submitted
// from one goroutine each as concurrent Jobs on ONE serving runtime,
// across strategies, deque kinds and worker counts, with every CheckJobs
// oracle (per-program exactly-once, panic isolation, job conservation,
// quiescence, trace reconciliation) asserted per leg.
func TestDifferentialConcurrentJobs(t *testing.T) {
	k := 10
	if testing.Short() {
		k = 8
	}
	ps := jobMix(t, k)
	legs := []struct {
		workers int
		dk      core.DequeKind
		strat   core.Strategy
	}{
		{2, core.DequeTHE, core.StrategyFibril},
		{4, core.DequeChaseLev, core.StrategyFibril},
		{4, core.DequeRelaxed, core.StrategyFibril},
		{1, core.DequeTHE, core.StrategyFibril},
		{4, core.DequeTHE, core.StrategyTBB},
		{2, core.DequeTHE, core.StrategyGoroutine},
	}
	if testing.Short() {
		legs = legs[:2]
	}
	for _, leg := range legs {
		e := RunRealJobs(ps, leg.workers, leg.dk, leg.strat)
		if err := CheckJobs(ps, e); err != nil {
			t.Error(err)
		}
	}
}

// TestConcurrentJobsCleanOnly runs the tighter panic-free laws (exact
// fork/call conservation, arena balance) on an all-clean program set.
func TestConcurrentJobsCleanOnly(t *testing.T) {
	k := 8
	ps := make([]*Program, 0, k)
	for seed := uint64(800); len(ps) < k; seed++ {
		ps = append(ps, Generate(seed, Params{}))
	}
	e := RunRealJobs(ps, 4, core.DequeTHE, core.StrategyFibril)
	if err := CheckJobs(ps, e); err != nil {
		t.Error(err)
	}
}

// TestJobStressManySubmitters is the PR 10 intake stress lane: 16
// submitter goroutines × tiny single-node roots, on both the sharded
// intake and the mutex baseline, with every oracle from CheckJobStress
// (exactly-once, Seq permutation, conservation, trace reconciliation).
// The race job in CI runs this package, so the lane doubles as the
// -race certificate for the CAS/sharded/pooled/wake-one path.
func TestJobStressManySubmitters(t *testing.T) {
	const k, m, workers = 16, 25, 4
	for _, intake := range core.IntakeKinds() {
		intake := intake
		t.Run(intake.String(), func(t *testing.T) {
			e := RunJobStress(k, m, workers, intake)
			if err := CheckJobStress(k, m, e); err != nil {
				t.Fatal(err)
			}
		})
	}
}
