package check

import (
	"fibril/internal/core"
	"fibril/internal/trace"
)

// Trace reconciliation: the streaming event path (internal/trace rings →
// sink) and the counter path (per-slot shards → Stats) observe the same
// scheduler actions through different machinery, so at quiescence they
// must tell the same story. Every event site pairs with a counter
// increment, which gives exact flow equalities rather than bounds.

// TraceSummary condenses a recorded event stream to what reconciliation
// needs: per-kind counts and the page totals carried in event args.
type TraceSummary struct {
	Counts         []int64 // events by kind, indexed by trace.Kind
	UnmappedPages  int64   // sum of KindUnmap args
	ReclaimedPages int64   // sum of KindReclaim args
	Dropped        int64   // events the recorder discarded at its cap
}

// SummarizeTrace folds a recorder's events into a TraceSummary.
func SummarizeTrace(rec *trace.Recorder) TraceSummary {
	ts := TraceSummary{Counts: make([]int64, trace.NumKinds()), Dropped: rec.Dropped()}
	for _, e := range rec.Events() {
		ts.Counts[e.Kind]++
		switch e.Kind {
		case trace.KindUnmap:
			ts.UnmappedPages += e.Arg
		case trace.KindReclaim:
			ts.ReclaimedPages += e.Arg
		}
	}
	return ts
}

// reconcileTrace asserts the event stream ↔ Stats equalities on a
// violations collector. A lossy stream (Dropped > 0) cannot reconcile
// and is skipped — the recorder's cap, not the runtime, broke the count.
func (v *violations) reconcileTrace(ts TraceSummary, st core.Stats) {
	if ts.Counts == nil || ts.Dropped > 0 {
		return
	}
	count := func(k trace.Kind) int64 { return ts.Counts[k] }
	eq := func(k trace.Kind, got, want int64, counter string) {
		if got != want {
			v.failf("trace %v events=%d != Stats.%s=%d", k, got, counter, want)
		}
	}
	eq(trace.KindFork, count(trace.KindFork), st.Forks, "Forks")
	eq(trace.KindSteal, count(trace.KindSteal), st.Steals, "Steals")
	eq(trace.KindSuspend, count(trace.KindSuspend), st.Suspends, "Suspends")
	eq(trace.KindResume, count(trace.KindResume), st.Resumes, "Resumes")
	eq(trace.KindJoinWait, count(trace.KindJoinWait), st.Suspends, "Suspends")
	eq(trace.KindUnmap, count(trace.KindUnmap), st.Unmaps, "Unmaps")
	eq(trace.KindUnmapBatch, count(trace.KindUnmapBatch), st.UnmapBatches, "UnmapBatches")
	eq(trace.KindDupSteal, count(trace.KindDupSteal), st.DuplicateExtractions, "DuplicateExtractions")
	// Start/end pairs exist exactly for base-thief steals; inline steals
	// (TBB/leapfrog joins) run on the joiner's own stack without them.
	base := st.Steals - st.RestrictedSteals
	eq(trace.KindTaskStart, count(trace.KindTaskStart), base, "Steals-RestrictedSteals")
	eq(trace.KindTaskEnd, count(trace.KindTaskEnd), base, "Steals-RestrictedSteals")
	// Job lifecycle: every admitted root emits exactly one start and one
	// done event (roots never emit task start/end — that is what keeps the
	// base-steal equality above alive under concurrent submission), and
	// admitted == completed at quiescence.
	eq(trace.KindJobStart, count(trace.KindJobStart), st.JobsCompleted, "JobsCompleted")
	eq(trace.KindJobDone, count(trace.KindJobDone), st.JobsCompleted, "JobsCompleted")
	if ts.UnmappedPages != st.UnmappedPages {
		v.failf("trace unmap args sum=%d != Stats.UnmappedPages=%d", ts.UnmappedPages, st.UnmappedPages)
	}
	if ts.ReclaimedPages != st.ReclaimedPages {
		v.failf("trace reclaim args sum=%d != Stats.ReclaimedPages=%d", ts.ReclaimedPages, st.ReclaimedPages)
	}
	if count(trace.KindReclaim) > st.CeilingHits {
		v.failf("trace reclaim events=%d > Stats.CeilingHits=%d", count(trace.KindReclaim), st.CeilingHits)
	}
}

// ReconcileTrace is the standalone form of the oracle for callers outside
// the harness (cmd tests reconcile exported traces with it).
func ReconcileTrace(ts TraceSummary, st core.Stats) error {
	v := &violations{label: "trace-reconcile"}
	v.reconcileTrace(ts, st)
	return v.err()
}
