package check

import (
	"testing"

	"fibril/internal/core"
)

// FuzzScheduler feeds fuzz-chosen (seed, shape-parameter) pairs through
// the full differential harness: the fuzzer explores the generator's
// parameter space while the oracles judge every execution. Run with
//
//	go test -fuzz=FuzzScheduler -fuzztime=30s ./internal/check/
//
// A crasher's corpus file pins (seed, params); the failure message also
// names the seed for replay via `go run ./cmd/fibril-check -seed N`.
func FuzzScheduler(f *testing.F) {
	f.Add(uint64(0), uint8(0), uint8(0), uint8(0), uint8(0), false, false, uint8(0), uint8(0), uint8(0), uint8(0))
	f.Add(uint64(7), uint8(3), uint8(2), uint8(50), uint8(10), false, false, uint8(0), uint8(0), uint8(0), uint8(1))
	f.Add(uint64(42), uint8(9), uint8(7), uint8(100), uint8(0), false, false, uint8(4), uint8(0), uint8(30), uint8(2))
	f.Add(uint64(0xdeadbeef), uint8(5), uint8(1), uint8(0), uint8(40), true, true, uint8(0), uint8(0), uint8(0), uint8(3))
	f.Add(uint64(1<<63), uint8(11), uint8(4), uint8(20), uint8(1), false, false, uint8(8), uint8(2), uint8(0), uint8(0))
	f.Add(uint64(99), uint8(7), uint8(3), uint8(30), uint8(8), false, true, uint8(3), uint8(1), uint8(60), uint8(3))
	f.Add(uint64(31337), uint8(6), uint8(5), uint8(40), uint8(4), false, false, uint8(0), uint8(0), uint8(100), uint8(1))
	f.Fuzz(func(t *testing.T, seed uint64, depth, fanout, loopPct, maxWork uint8,
		panics, globalPool bool, batch, ceiling, lazyPct, policy uint8) {
		params := Params{
			// Small node budget keeps one iteration well under a
			// millisecond so the fuzzer gets real throughput.
			MaxNodes:  60,
			MaxDepth:  int(depth%12) + 1,
			MaxFanout: int(fanout%8) + 1,
			LoopPct:   int(loopPct) % 101,
			MaxWork:   int64(maxWork%64) + 1,
			// Ignored (forced to 0) when panics are injected: lazy edges
			// that degrade to calls would reorder panic propagation.
			LazyPct: int(lazyPct) % 101,
		}
		if panics {
			params.PanicPct = 25
		}
		mem := MemParams{
			// batch 0/1 is the eager path; 2..8 exercises coalescing.
			UnmapBatch: int(batch % 9),
			// A nonzero ceiling this low (up to ~2k pages against 4 MB
			// stacks) keeps the pressure valve firing constantly.
			MaxResidentPages: int64(ceiling%8) * 256,
		}
		if globalPool {
			mem.Pool = core.PoolGlobal
		}
		p := Generate(seed, params)
		opts := Options{
			Workers: []int{2},
			Deques:  core.DequeKinds(),
			Mem:     []MemParams{mem},
			// One policy per iteration; the fuzzer explores the whole
			// enum (0 is the random default).
			Policies:   []core.StealPolicy{core.StealPolicies()[int(policy)%len(core.StealPolicies())]},
			SimWorkers: []int{2},
		}
		if err := Differential(p, opts); err != nil {
			t.Fatal(err)
		}
	})
}
