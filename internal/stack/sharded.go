package stack

import (
	"sync"
	"sync/atomic"

	"fibril/internal/vm"
)

// shardCache is one worker slot's private free cache: two lock-free slots
// (Take swaps out, Put CASes in). Two slots absorb the common
// suspend/resume churn — a thief retiring its stack while the slot's next
// thief takes one — without spilling to the global list. Padded to 128
// bytes (two x86-64 cache lines, covering the adjacent-line prefetcher) so
// neighbouring shards never false-share.
type shardCache struct {
	slots  [2]atomic.Pointer[Stack]
	hits   atomic.Int64 // fast-path Takes served locally
	misses atomic.Int64 // Takes that fell through to the global list
	spills atomic.Int64 // Puts that found both local slots full
	_      [88]byte
}

// ShardedPool is the lock-free-fast-path stack pool: Take and Put hit the
// caller's shardCache with a single atomic swap/CAS; the global mutex is
// taken only on a cache miss (sweep the other shards, pop the overflow
// list, or map a fresh stack) and on a cache spill. Counter discipline
// makes the aggregate counters exact where possible and conservative
// where not:
//
//   - created is mutated only under the global lock, pre-incremented
//     before the map call (so a bounded limit cannot over-create) and
//     repaired on failure, exactly like Pool;
//   - inUse is incremented only AFTER a stack is acquired and decremented
//     BEFORE one is released, so inUse never exceeds the stacks actually
//     held and maxInUse ≤ created always holds;
//   - maxInUse is a sampled high-water of that counter. Unlike the
//     single-lock pool it may UNDER-report the true peak by the width of
//     a Take/Put race (a taker can sweep every cache empty while a
//     concurrent Put is in flight and create a fresh stack the strict
//     accounting would not need), so the conformance oracle for this pool
//     is maxInUse ≤ created, not equality.
//
// Blocking discipline (bounded pools): a slow-path taker registers in
// waiters before it concludes emptiness; Put checks waiters after caching
// locally and, if anyone registered, pulls the stack back out of the cache
// and publishes it on the global list with a signal. Under sequentially
// consistent atomics one of the two must see the other, so no stack can
// sit in a cache while a taker sleeps forever.
type ShardedPool struct {
	as    *vm.AddressSpace
	pages int
	limit int // 0 = unbounded

	newStack func(as *vm.AddressSpace, pages, id int) (*Stack, error)

	caches []shardCache // one per worker slot, plus a spare for shard -1

	closed  atomic.Bool
	waiters atomic.Int32

	inUse    atomic.Int64
	maxInUse atomic.Int64
	stalls   atomic.Int64

	mu       sync.Mutex
	cond     *sync.Cond
	overflow []*Stack
	created  int
	ids      int
}

var _ Pooler = (*ShardedPool)(nil)

// NewShardedPool creates a sharded pool with one cache per worker slot
// (ids 0..shards-1) plus a spare shared by slotless callers (shard -1 or
// out of range). limit == 0 means unbounded.
func NewShardedPool(as *vm.AddressSpace, pages, limit, shards int) *ShardedPool {
	if pages <= 0 {
		pages = DefaultStackPages
	}
	if shards < 1 {
		shards = 1
	}
	p := &ShardedPool{
		as:       as,
		pages:    pages,
		limit:    limit,
		newStack: New,
		caches:   make([]shardCache, shards+1),
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// cache maps a shard id to its cache; out-of-range ids (notably -1, the
// slotless goroutine-baseline workers) share the spare cache.
func (p *ShardedPool) cache(shard int) *shardCache {
	if shard < 0 || shard >= len(p.caches)-1 {
		return &p.caches[len(p.caches)-1]
	}
	return &p.caches[shard]
}

// checkout records a successful stack acquisition. Called only after the
// stack is in hand, so inUse ≤ stacks actually held ≤ created.
func (p *ShardedPool) checkout() {
	v := p.inUse.Add(1)
	for {
		cur := p.maxInUse.Load()
		if v <= cur || p.maxInUse.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Take returns a stack: the local cache with one atomic swap when it can,
// the global slow path when it must. Returns (nil, nil) when closed.
func (p *ShardedPool) Take(shard int) (*Stack, error) {
	if !p.closed.Load() {
		c := p.cache(shard)
		for i := range c.slots {
			if s := c.slots[i].Swap(nil); s != nil {
				c.hits.Add(1)
				p.checkout()
				return s, nil
			}
		}
		c.misses.Add(1)
	}
	return p.takeSlow(shard)
}

// TryTake is Take without blocking; ok is false when a bounded pool is
// exhausted. Like Pool.TryTake it does not check closed.
func (p *ShardedPool) TryTake(shard int) (*Stack, bool, error) {
	c := p.cache(shard)
	for i := range c.slots {
		if s := c.slots[i].Swap(nil); s != nil {
			c.hits.Add(1)
			p.checkout()
			return s, true, nil
		}
	}
	c.misses.Add(1)
	p.mu.Lock()
	if s := p.popOverflowLocked(); s != nil {
		p.mu.Unlock()
		p.checkout()
		return s, true, nil
	}
	if s := p.sweepLocked(); s != nil {
		p.mu.Unlock()
		p.checkout()
		return s, true, nil
	}
	if p.limit == 0 || p.created < p.limit {
		s, err := p.createLocked() // unlocks around the map call
		p.mu.Unlock()
		if err != nil {
			return nil, false, err
		}
		p.checkout()
		return s, true, nil
	}
	p.mu.Unlock()
	return nil, false, nil
}

// takeSlow is the global path: pop the overflow list, sweep the other
// shards' caches, map a fresh stack, or — bounded pool — wait. The caller
// stays registered in waiters for the whole slow path so every concurrent
// Put routes its stack to the global list (see ShardedPool doc).
func (p *ShardedPool) takeSlow(shard int) (*Stack, error) {
	_ = shard
	p.waiters.Add(1)
	p.mu.Lock()
	for {
		if p.closed.Load() {
			p.mu.Unlock()
			p.waiters.Add(-1)
			return nil, nil
		}
		if s := p.popOverflowLocked(); s != nil {
			p.mu.Unlock()
			p.waiters.Add(-1)
			p.checkout()
			return s, nil
		}
		if s := p.sweepLocked(); s != nil {
			p.mu.Unlock()
			p.waiters.Add(-1)
			p.checkout()
			return s, nil
		}
		if p.limit == 0 || p.created < p.limit {
			s, err := p.createLocked()
			p.mu.Unlock()
			p.waiters.Add(-1)
			if err != nil {
				return nil, err
			}
			p.checkout()
			return s, nil
		}
		p.stalls.Add(1)
		p.cond.Wait()
	}
}

func (p *ShardedPool) popOverflowLocked() *Stack {
	n := len(p.overflow)
	if n == 0 {
		return nil
	}
	s := p.overflow[n-1]
	p.overflow[n-1] = nil
	p.overflow = p.overflow[:n-1]
	return s
}

// sweepLocked steals a cached stack from any shard. Called with the global
// lock held, but the slots themselves are swapped atomically because
// owners CAS into them without the lock.
func (p *ShardedPool) sweepLocked() *Stack {
	for i := range p.caches {
		c := &p.caches[i]
		for j := range c.slots {
			if s := c.slots[j].Swap(nil); s != nil {
				return s
			}
		}
	}
	return nil
}

// createLocked maps a fresh stack, dropping the global lock around the map
// call; the lock is re-held on return. Counter repair mirrors Pool: the
// pre-incremented created slot is released on failure and one waiter woken
// to retry it. inUse/maxInUse need no repair — checkout happens only after
// a successful map.
func (p *ShardedPool) createLocked() (*Stack, error) {
	p.created++
	p.ids++
	id := p.ids
	p.mu.Unlock()
	s, err := p.newStack(p.as, p.pages, id)
	p.mu.Lock()
	if err != nil {
		p.created--
		p.cond.Signal()
		return nil, &MapError{Pages: p.pages, Err: err}
	}
	return s, nil
}

// Put returns a quiescent stack: one CAS into the local cache when nobody
// is waiting, the global list (plus a signal) when someone is. The
// post-CAS waiters re-check closes the register/sweep race — if a waiter
// registered after our pre-check, pull the stack back out and publish it
// globally so the waiter cannot sleep through it.
func (p *ShardedPool) Put(shard int, s *Stack) {
	s.SetWatermark(0)
	s.ClearBranch()
	p.inUse.Add(-1) // before release: inUse never exceeds stacks held
	if p.waiters.Load() == 0 {
		c := p.cache(shard)
		for i := range c.slots {
			if c.slots[i].CompareAndSwap(nil, s) {
				if p.waiters.Load() > 0 {
					// A waiter registered between the pre-check and the
					// CAS and may already have swept this cache. Rescue:
					// whatever still sits in the slot (our stack, or a
					// later Put's — any stack serves) goes global.
					if got := c.slots[i].Swap(nil); got != nil {
						p.putGlobal(got)
					}
				}
				return
			}
		}
		c.spills.Add(1)
	}
	p.putGlobal(s)
}

func (p *ShardedPool) putGlobal(s *Stack) {
	p.mu.Lock()
	p.overflow = append(p.overflow, s)
	p.mu.Unlock()
	p.cond.Signal()
}

// Close wakes every blocked Take with a nil result.
func (p *ShardedPool) Close() {
	p.mu.Lock()
	p.closed.Store(true)
	p.mu.Unlock()
	p.cond.Broadcast()
}

// Reopen re-enables a closed pool for the next run.
func (p *ShardedPool) Reopen() {
	p.mu.Lock()
	p.closed.Store(false)
	p.mu.Unlock()
	p.cond.Broadcast()
}

// Created returns how many stacks the pool has ever mapped.
func (p *ShardedPool) Created() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.created
}

// MaxInUse returns the sampled high-water of simultaneous checkouts (see
// the type comment for why it is a lower bound under races).
func (p *ShardedPool) MaxInUse() int { return int(p.maxInUse.Load()) }

// InUse returns the stacks currently checked out.
func (p *ShardedPool) InUse() int { return int(p.inUse.Load()) }

// Stalls returns how many times Take had to wait on a bounded pool.
func (p *ShardedPool) Stalls() int64 { return p.stalls.Load() }

// ForEachFree visits every free stack: the overflow list and every shard
// cache. Cache slots are read without swapping them out, so this is only
// exact at quiescence — which is when the conformance oracles call it.
func (p *ShardedPool) ForEachFree(fn func(*Stack)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, s := range p.overflow {
		fn(s)
	}
	for i := range p.caches {
		c := &p.caches[i]
		for j := range c.slots {
			if s := c.slots[j].Load(); s != nil {
				fn(s)
			}
		}
	}
}

// ReclaimFree returns the resident residue of free stacks to the OS until
// stop() reports enough has been freed. Cached stacks are swapped out of
// their slots before the madvise (a concurrent Take must never receive a
// stack mid-reclaim) and retired to the overflow list.
func (p *ShardedPool) ReclaimFree(stop func() bool) (calls, pages int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, s := range p.overflow {
		if stop != nil && stop() {
			return calls, pages
		}
		if freed, called := s.ReclaimResidue(); called {
			calls++
			pages += int64(freed)
		}
	}
	for i := range p.caches {
		c := &p.caches[i]
		for j := range c.slots {
			if stop != nil && stop() {
				return calls, pages
			}
			s := c.slots[j].Swap(nil)
			if s == nil {
				continue
			}
			if freed, called := s.ReclaimResidue(); called {
				calls++
				pages += int64(freed)
			}
			p.overflow = append(p.overflow, s)
		}
	}
	return calls, pages
}

// Drain releases every pooled stack's mapping. Only for teardown.
func (p *ShardedPool) Drain() {
	p.mu.Lock()
	free := p.overflow
	p.overflow = nil
	for i := range p.caches {
		c := &p.caches[i]
		for j := range c.slots {
			if s := c.slots[j].Swap(nil); s != nil {
				free = append(free, s)
			}
		}
	}
	p.mu.Unlock()
	for _, s := range free {
		s.Release()
	}
}
