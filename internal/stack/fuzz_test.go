package stack

import (
	"testing"

	"fibril/internal/vm"
)

// shadowStack is an independent re-statement of the Stack/Region paging
// contract: a watermark, a per-page state machine (anon / resident /
// dummy), and fault/dummy-touch counters. FuzzStackUnmap drives a real
// Stack and the shadow through the same op sequence and requires them to
// agree after every step.
type shadowStack struct {
	pages      []int // 0 = anon (not resident), 1 = resident, 2 = dummy
	top        int   // watermark, bytes
	high       int
	faults     int64
	dummyTouch int64
	frames     []int // pushed frame bases
	capacityB  int
}

func newShadow(pages int) *shadowStack {
	return &shadowStack{pages: make([]int, pages), capacityB: pages * vm.PageSize}
}

func (m *shadowStack) touch(i int) {
	switch m.pages[i] {
	case 1:
		return
	case 2:
		m.dummyTouch++
	}
	m.pages[i] = 1
	m.faults++
}

func (m *shadowStack) push(bytes int) bool {
	newTop := m.top + bytes
	if newTop > m.capacityB {
		return false
	}
	if bytes > 0 {
		for i := m.top / vm.PageSize; i < vm.PageAlign(newTop); i++ {
			m.touch(i)
		}
	}
	m.frames = append(m.frames, m.top)
	m.top = newTop
	if newTop > m.high {
		m.high = newTop
	}
	return true
}

func (m *shadowStack) pop() bool {
	if len(m.frames) == 0 {
		return false
	}
	m.top = m.frames[len(m.frames)-1]
	m.frames = m.frames[:len(m.frames)-1]
	return true
}

func (m *shadowStack) unmapAbove() {
	for i := vm.PageAlign(m.top); i < len(m.pages); i++ {
		if m.pages[i] == 1 {
			m.pages[i] = 0
		}
	}
}

func (m *shadowStack) mapDummyAbove() {
	for i := vm.PageAlign(m.top); i < len(m.pages); i++ {
		m.pages[i] = 2
	}
}

func (m *shadowStack) remapAbove() {
	for i := vm.PageAlign(m.top); i < len(m.pages); i++ {
		if m.pages[i] == 2 {
			m.pages[i] = 0
		}
	}
}

func (m *shadowStack) resident() int {
	n := 0
	for _, s := range m.pages {
		if s == 1 {
			n++
		}
	}
	return n
}

// FuzzStackUnmap decodes fuzz bytes into Push/Pop/UnmapAbove/
// MapDummyAbove/RemapAbove sequences and checks the real page-granular
// stack against the shadow model after every operation: watermark,
// residency, fault count, dummy-touch count, and high-water mark must all
// agree, and the address-space totals must be conserved. Run with
//
//	go test -fuzz=FuzzStackUnmap -fuzztime=30s ./internal/stack/
func FuzzStackUnmap(f *testing.F) {
	f.Add([]byte{0, 10, 0, 200, 2, 1, 0, 30})
	f.Add([]byte{0, 255, 3, 0, 20, 4, 0, 5, 1, 1})
	f.Add([]byte{0, 100, 0, 100, 0, 100, 1, 2, 1, 3, 4})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const pages = 16
		as := vm.NewAddressSpace()
		s, err := New(as, pages, 1)
		if err != nil {
			t.Fatal(err)
		}
		m := newShadow(pages)
		var bases []int

		check := func(i int, op string) {
			t.Helper()
			if s.Bytes() != m.top {
				t.Fatalf("op %d %s: watermark %d, shadow %d", i, op, s.Bytes(), m.top)
			}
			if s.ResidentPages() != m.resident() {
				t.Fatalf("op %d %s: resident %d, shadow %d", i, op, s.ResidentPages(), m.resident())
			}
			if s.Faults() != m.faults {
				t.Fatalf("op %d %s: faults %d, shadow %d", i, op, s.Faults(), m.faults)
			}
			if vm.PageAlign(m.high) != s.HighWaterPages() {
				t.Fatalf("op %d %s: high-water %d pages, shadow %d", i, op, s.HighWaterPages(), vm.PageAlign(m.high))
			}
			snap := as.Snapshot()
			if snap.DummyTouches != m.dummyTouch {
				t.Fatalf("op %d %s: dummy touches %d, shadow %d", i, op, snap.DummyTouches, m.dummyTouch)
			}
			if snap.RSSPages != int64(m.resident()) {
				t.Fatalf("op %d %s: RSS %d, shadow %d", i, op, snap.RSSPages, m.resident())
			}
			if snap.RSSPages < 0 || snap.MaxRSSPages < snap.RSSPages {
				t.Fatalf("op %d %s: inconsistent RSS accounting: %+v", i, op, snap)
			}
			if snap.PageFaults < snap.MaxRSSPages {
				t.Fatalf("op %d %s: faults %d < max RSS %d", i, op, snap.PageFaults, snap.MaxRSSPages)
			}
		}

		for i := 0; i < len(ops); i++ {
			switch ops[i] % 5 {
			case 0: // push a frame sized by the next byte (0..2 pages)
				i++
				if i >= len(ops) {
					break
				}
				bytes := int(ops[i]) * 33 // 0..8415: sub-page to multi-page
				base, err := s.Push(bytes)
				if m.push(bytes) {
					if err != nil {
						t.Fatalf("op %d: Push(%d) failed: %v", i, bytes, err)
					}
					bases = append(bases, base)
				} else if err == nil {
					t.Fatalf("op %d: Push(%d) succeeded past capacity", i, bytes)
				}
			case 1: // pop the newest frame
				if len(bases) == 0 {
					continue
				}
				s.Pop(bases[len(bases)-1])
				bases = bases[:len(bases)-1]
				if !m.pop() {
					t.Fatalf("op %d: shadow underflow", i)
				}
			case 2: // madvise the pages above the watermark
				s.UnmapAbove()
				m.unmapAbove()
			case 3: // dummy-map above, as FibrilMMap suspension does
				s.MapDummyAbove()
				m.mapDummyAbove()
			case 4: // remap after a dummy-map, as resume does
				s.RemapAbove()
				m.remapAbove()
			}
			check(i, "")
		}

		// Final conservation: the one region owns every counted page.
		if got, want := s.ResidentPages(), int(as.Snapshot().RSSPages); got != want {
			t.Fatalf("final: region resident %d != address space RSS %d", got, want)
		}
	})
}
