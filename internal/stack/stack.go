// Package stack provides the page-granular linear stacks from which the
// Fibril runtime builds its cactus stack (SPAA 2016, §2 and §4.2).
//
// A Stack is a linear stack carved out of a simulated address space
// (internal/vm): frames are pushed and popped by moving a byte watermark,
// pages are faulted in on first use, and — the heart of the paper's space
// management — the pages above the live watermark of a *suspended* stack
// can be returned to the OS with UnmapAbove (madvise) or MapDummyAbove
// (serialized mmap), then reused when the stack is resumed.
//
// A cactus stack is a tree of these linear stacks: each Stack optionally
// records the parent stack (and byte depth within it) it branched from when
// a stolen frame was resumed on a fresh stack. CactusPath walks the branch
// back to the root, which is how the paper's per-path space bounds
// (Theorems 4.1 and 4.2) are measured.
package stack

import (
	"fmt"

	"fibril/internal/vm"
)

// DefaultStackPages is the default size of one linear stack, in simulated
// pages. The paper uses 1 MB stacks with 4 KB pages = 256 pages.
const DefaultStackPages = 256

// Stack is one linear stack. It is owned by at most one worker at a time;
// suspended stacks are not touched until resumed (the runtime enforces
// this), so methods need no internal locking.
type Stack struct {
	region *vm.Region
	top    int // current watermark: bytes in use
	high   int // high-water bytes ever used (serial S1 measurement aid)

	// cleanFrom is the hysteresis watermark of the coalesced-unmap engine:
	// every page at index >= cleanFrom is known non-resident (never touched
	// since it was last returned to the OS). Push raises it as pages are
	// faulted in; the unmap paths lower it as pages are returned. A stack
	// that re-suspends at the same depth it was last unmapped at therefore
	// reports zero ReclaimablePages and skips the madvise entirely.
	cleanFrom int

	// Cactus linkage: the stack this one branched from, if any.
	parent      *Stack
	parentDepth int // byte watermark of parent at the branch point

	id int // small unique id for diagnostics and stats
}

// New maps a fresh stack of n pages in the given address space.
func New(as *vm.AddressSpace, pages, id int) (*Stack, error) {
	if pages <= 0 {
		pages = DefaultStackPages
	}
	r, err := as.MMap(pages)
	if err != nil {
		return nil, err
	}
	return &Stack{region: r, id: id}, nil
}

// ID returns the stack's identifier.
func (s *Stack) ID() int { return s.id }

// Bytes returns the current watermark in bytes.
func (s *Stack) Bytes() int { return s.top }

// Pages returns the watermark rounded up to whole pages — PAGE_ALIGN(rsp)
// in the paper's Listing 3.
func (s *Stack) Pages() int { return vm.PageAlign(s.top) }

// HighWaterPages returns the most pages this stack ever had live at once.
func (s *Stack) HighWaterPages() int { return vm.PageAlign(s.high) }

// Capacity returns the stack's total size in pages.
func (s *Stack) Capacity() int { return s.region.Len() }

// CapacityBytes returns the stack's total size in bytes.
func (s *Stack) CapacityBytes() int { return s.region.Len() * vm.PageSize }

// ResidentPages returns how many of the stack's pages are physically
// resident right now.
func (s *Stack) ResidentPages() int { return s.region.ResidentPages() }

// Faults returns the demand-paging faults this stack has taken, used by the
// simulator to charge per-fault latency to the owning worker.
func (s *Stack) Faults() int64 { return s.region.Faults() }

// Push allocates a frame of the given byte size, touching (faulting in)
// any new pages it spans, and returns the frame's base offset. It fails if
// the stack would overflow, the analogue of running off a real 1 MB stack.
func (s *Stack) Push(bytes int) (base int, err error) {
	if bytes < 0 {
		return 0, fmt.Errorf("stack: negative frame size %d", bytes)
	}
	newTop := s.top + bytes
	if newTop > s.CapacityBytes() {
		return 0, fmt.Errorf("stack %d: overflow: %d + %d > %d bytes",
			s.id, s.top, bytes, s.CapacityBytes())
	}
	base = s.top
	if bytes > 0 {
		s.region.TouchRange(base/vm.PageSize, vm.PageAlign(newTop))
		if p := vm.PageAlign(newTop); p > s.cleanFrom {
			s.cleanFrom = p
		}
	}
	s.top = newTop
	if newTop > s.high {
		s.high = newTop
	}
	return base, nil
}

// Pop frees the most recent frame by restoring the watermark to base, as a
// function epilogue restores the stack pointer.
func (s *Stack) Pop(base int) {
	if base < 0 || base > s.top {
		panic(fmt.Sprintf("stack %d: Pop to %d with top %d", s.id, base, s.top))
	}
	s.top = base
}

// SetWatermark forces the watermark, used when resuming a suspended frame
// whose saved state records the stack depth at suspension.
func (s *Stack) SetWatermark(bytes int) {
	if bytes < 0 || bytes > s.CapacityBytes() {
		panic(fmt.Sprintf("stack %d: SetWatermark(%d)", s.id, bytes))
	}
	s.top = bytes
	if bytes > s.high {
		s.high = bytes
	}
}

// UnmapAbove returns the unused pages above the live watermark to the OS
// via madvise(DONTNEED) — Listing 3's unmap(f->stack, PAGE_ALIGN(rsp)).
// Only whole pages strictly above the watermark page are freed; the
// partially used top page stays resident (the "+D" term of Theorem 4.2).
// It returns the number of physical pages freed.
func (s *Stack) UnmapAbove() int {
	freed := s.region.Madvise(s.Pages(), s.Capacity())
	s.cleanFrom = s.Pages()
	return freed
}

// MapDummyAbove is the serialized-mmap alternative to UnmapAbove: it remaps
// the unused pages to a dummy file, taking the address-space lock.
func (s *Stack) MapDummyAbove() int {
	freed := s.region.MapDummy(s.Pages(), s.Capacity())
	s.cleanFrom = s.Pages()
	return freed
}

// ReclaimablePages returns how many pages above the live watermark may
// still be resident — the span a deferred unmap of this suspended stack
// would cover. Zero means a flush would be a guaranteed no-op (the
// hysteresis test: the stack never grew past its last unmap point).
func (s *Stack) ReclaimablePages() int {
	if r := s.cleanFrom - s.Pages(); r > 0 {
		return r
	}
	return 0
}

// UnmapFrom is the deferred form of UnmapAbove used by the coalesced-unmap
// engine: it returns the pages in [from, cleanFrom) to the OS, where from
// is the page watermark captured when the stack suspended. The caller must
// guarantee the stack has not been touched since that capture (the
// reclaim-ticket protocol does). It reports the pages freed and whether a
// madvise call was actually issued.
func (s *Stack) UnmapFrom(from int) (freed int, called bool) {
	if from < 0 || from >= s.cleanFrom {
		return 0, false
	}
	freed = s.region.Madvise(from, s.cleanFrom)
	s.cleanFrom = from
	return freed, true
}

// ReclaimResidue returns every possibly-resident page of a quiescent
// (pooled, watermark-zero) stack to the OS — the RSS-ceiling fallback that
// reclaims from free stacks before new ones are mapped. It reports the
// pages freed and whether a madvise call was issued (none when the stack
// is already clean).
func (s *Stack) ReclaimResidue() (freed int, called bool) {
	if s.cleanFrom <= 0 {
		return 0, false
	}
	freed = s.region.Madvise(0, s.cleanFrom)
	s.cleanFrom = 0
	return freed, true
}

// RemapAbove undoes MapDummyAbove before the stack is reused. After a
// madvise-based unmap this is unnecessary (remap is a no-op in that mode).
func (s *Stack) RemapAbove() {
	s.region.RemapAnonymous(s.Pages(), s.Capacity())
}

// HasDummyPages reports whether any page is still dummy-file mapped — a
// MapDummyAbove not yet undone by RemapAbove. Such a stack must not be
// reused: touching a dummy page reads the dummy file, not stack memory.
func (s *Stack) HasDummyPages() bool {
	return s.region.DummyPages() > 0
}

// Branch records that child branched off this stack at its current
// watermark — a new node in the cactus stack, created when a thief resumes
// a stolen frame on a fresh stack. Branch may only be used when the caller
// owns this stack; a thief branching off a stack another worker is still
// executing on must use BranchAt with a previously captured depth.
func (s *Stack) Branch(child *Stack) {
	child.parent = s
	child.parentDepth = s.top
}

// BranchAt is Branch with an explicit branch depth in bytes, for callers
// that captured the depth earlier (e.g. at frame initialization) and must
// not read the live watermark of a stack they do not own.
func (s *Stack) BranchAt(child *Stack, depth int) {
	child.parent = s
	child.parentDepth = depth
}

// ClearBranch detaches the stack from its parent, used when the stack is
// recycled through the pool.
func (s *Stack) ClearBranch() {
	s.parent = nil
	s.parentDepth = 0
}

// Parent returns the stack this one branched from, or nil at a root.
func (s *Stack) Parent() *Stack { return s.parent }

// CactusPath returns the stacks from this one back to the root of its
// cactus-stack branch, with the byte depth contributed by each: the current
// stack contributes its watermark, each ancestor contributes its watermark
// at the branch point. The path length bounds the paper's D, and the byte
// sum bounds the per-path space of Theorem 4.1.
func (s *Stack) CactusPath() (stacks []*Stack, bytes []int) {
	cur, depth := s, s.top
	for cur != nil {
		stacks = append(stacks, cur)
		bytes = append(bytes, depth)
		depth = cur.parentDepth
		cur = cur.parent
	}
	return stacks, bytes
}

// Release unmaps the stack's region entirely. Only for teardown.
func (s *Stack) Release() { s.region.MUnmap() }
