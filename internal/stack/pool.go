package stack

import (
	"sync"
	"sync/atomic"

	"fibril/internal/vm"
)

// Pool is the runtime's stack pool (Listing 3's take_stack_from_pool /
// put_stack_into_pool). In Fibril mode the pool is unbounded: a thief that
// needs a stack always gets one, preserving the time bound. With a positive
// limit it models Intel Cilk Plus, which caps the number of stacks (2400 by
// default) and makes thieves refrain from stealing — block here — until a
// stack is returned, sacrificing the time bound for a space bound (§3).
type Pool struct {
	as    *vm.AddressSpace
	pages int
	limit int // 0 = unbounded

	mu      sync.Mutex
	cond    *sync.Cond
	free    []*Stack
	created int
	closed  bool

	inUse    int
	maxInUse int

	stalls atomic.Int64 // times a thief had to wait for a stack
}

// CilkPlusDefaultLimit is Cilk Plus's default cap on worker stacks.
const CilkPlusDefaultLimit = 2400

// NewPool creates a pool of stacks of the given page size. limit == 0 means
// unbounded (Fibril); limit > 0 bounds the total number of stacks ever
// created (Cilk Plus).
func NewPool(as *vm.AddressSpace, pages, limit int) *Pool {
	if pages <= 0 {
		pages = DefaultStackPages
	}
	p := &Pool{as: as, pages: pages, limit: limit}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Take returns a stack, creating one if the free list is empty. With a
// bounded pool it blocks — the thief "refrains from stealing" — until a
// stack is available. Take returns nil once the pool has been closed, so
// that blocked thieves can unwind at shutdown.
func (p *Pool) Take() *Stack {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.closed {
			return nil
		}
		if n := len(p.free); n > 0 {
			s := p.free[n-1]
			p.free = p.free[:n-1]
			p.takeLocked()
			return s
		}
		if p.limit == 0 || p.created < p.limit {
			p.created++
			id := p.created
			p.takeLocked()
			p.mu.Unlock()
			s, err := New(p.as, p.pages, id)
			p.mu.Lock()
			if err != nil {
				// Address-space exhaustion is unrecoverable in the model.
				panic("stack: pool cannot map a new stack: " + err.Error())
			}
			return s
		}
		p.stalls.Add(1)
		p.cond.Wait()
	}
}

// TryTake is Take without blocking; ok is false when a bounded pool is
// exhausted.
func (p *Pool) TryTake() (*Stack, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free = p.free[:n-1]
		p.takeLocked()
		return s, true
	}
	if p.limit == 0 || p.created < p.limit {
		p.created++
		id := p.created
		p.takeLocked()
		p.mu.Unlock()
		s, err := New(p.as, p.pages, id)
		p.mu.Lock()
		if err != nil {
			panic("stack: pool cannot map a new stack: " + err.Error())
		}
		return s, true
	}
	return nil, false
}

func (p *Pool) takeLocked() {
	p.inUse++
	if p.inUse > p.maxInUse {
		p.maxInUse = p.inUse
	}
}

// Put returns a stack to the pool. The stack must be quiescent (its frames
// all popped); its watermark is reset and its cactus linkage cleared.
func (p *Pool) Put(s *Stack) {
	s.SetWatermark(0)
	s.ClearBranch()
	p.mu.Lock()
	p.free = append(p.free, s)
	p.inUse--
	p.mu.Unlock()
	p.cond.Signal()
}

// ForEachFree visits every stack currently in the pool's free list, under
// the pool lock. Intended for post-run inspection (conformance oracles):
// once a runtime is quiescent, every stack it ever used is free, so this
// enumerates the run's full stack population.
func (p *Pool) ForEachFree(fn func(*Stack)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, s := range p.free {
		fn(s)
	}
}

// Close wakes every blocked Take with a nil result. Reopen re-enables the
// pool for the next run.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
}

// Reopen re-enables a closed pool.
func (p *Pool) Reopen() {
	p.mu.Lock()
	p.closed = false
	p.mu.Unlock()
}

// Created returns how many stacks the pool has ever mapped — the paper's
// "# of stacks" column in Table 4.
func (p *Pool) Created() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.created
}

// MaxInUse returns the most stacks simultaneously checked out.
func (p *Pool) MaxInUse() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.maxInUse
}

// Stalls returns how many times Take had to wait on a bounded pool.
func (p *Pool) Stalls() int64 { return p.stalls.Load() }

// Drain releases every pooled stack's mapping. Only for teardown; stacks
// still checked out are the caller's responsibility.
func (p *Pool) Drain() {
	p.mu.Lock()
	free := p.free
	p.free = nil
	p.mu.Unlock()
	for _, s := range free {
		s.Release()
	}
}
