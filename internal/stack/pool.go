package stack

import (
	"fmt"
	"sync"
	"sync/atomic"

	"fibril/internal/vm"
)

// Pooler is the stack-pool contract the runtime schedules against
// (Listing 3's take_stack_from_pool / put_stack_into_pool). Two
// implementations exist: the single-lock Pool below (the paper's baseline,
// kept both as the reference for differential testing and for the strict
// counter equalities only a serialized pool can promise) and the
// ShardedPool (per-worker lock-free caches, the default).
//
// The shard argument of Take/TryTake/Put is the caller's worker-slot id —
// a locality hint, not a partition: any shard value (including -1 for
// slotless workers) is valid on either implementation, and stacks may
// migrate freely between shards.
type Pooler interface {
	// Take returns a stack, creating one if none is free. With a bounded
	// pool it blocks until a stack is available. It returns (nil, nil)
	// once the pool has been closed, so blocked thieves can unwind at
	// shutdown, and (nil, *MapError) if a fresh stack could not be mapped.
	Take(shard int) (*Stack, error)
	// TryTake is Take without blocking; ok is false when a bounded pool
	// is exhausted. A closed pool is not checked (matching the historical
	// Pool behaviour): TryTake may hand out a free stack after Close.
	TryTake(shard int) (s *Stack, ok bool, err error)
	// Put returns a quiescent stack (frames all popped) to the pool.
	Put(shard int, s *Stack)
	// Close wakes every blocked Take with a nil result; Reopen re-enables
	// the pool for the next run.
	Close()
	Reopen()
	// Created returns how many stacks the pool has ever mapped; MaxInUse
	// the most simultaneously checked out; InUse the current checkout
	// count; Stalls how many times Take had to wait on a bounded pool.
	Created() int
	MaxInUse() int
	InUse() int
	Stalls() int64
	// ForEachFree visits every free stack. Intended for post-run
	// inspection at quiescence, when every stack the runtime used is free.
	ForEachFree(fn func(*Stack))
	// ReclaimFree madvises the resident residue off free stacks until
	// stop() reports the pressure has passed, returning the madvise calls
	// issued and pages freed — the RSS-ceiling fallback.
	ReclaimFree(stop func() bool) (calls, pages int64)
	// Drain releases every pooled stack's mapping. Only for teardown.
	Drain()
}

// MapError reports that the pool could not map a fresh stack. The pool's
// counters are already repaired when a Take returns it: no slot is leaked
// under a bounded limit and MaxInUse does not count the failed checkout.
type MapError struct {
	Pages int // requested stack size
	Err   error
}

func (e *MapError) Error() string {
	return fmt.Sprintf("stack: pool cannot map a new %d-page stack: %v", e.Pages, e.Err)
}

func (e *MapError) Unwrap() error { return e.Err }

// Pool is the single-lock stack pool (Listing 3's take_stack_from_pool /
// put_stack_into_pool). In Fibril mode the pool is unbounded: a thief that
// needs a stack always gets one, preserving the time bound. With a positive
// limit it models Intel Cilk Plus, which caps the number of stacks (2400 by
// default) and makes thieves refrain from stealing — block here — until a
// stack is returned, sacrificing the time bound for a space bound (§3).
type Pool struct {
	as    *vm.AddressSpace
	pages int
	limit int // 0 = unbounded

	// newStack maps a fresh stack; tests swap it to inject map failures.
	newStack func(as *vm.AddressSpace, pages, id int) (*Stack, error)

	mu      sync.Mutex
	cond    *sync.Cond
	free    []*Stack
	created int
	ids     int // monotone id source: never decremented, unlike created
	closed  bool

	inUse    int
	maxInUse int

	stalls atomic.Int64 // times a thief had to wait for a stack
}

var _ Pooler = (*Pool)(nil)

// CilkPlusDefaultLimit is Cilk Plus's default cap on worker stacks.
const CilkPlusDefaultLimit = 2400

// NewPool creates a pool of stacks of the given page size. limit == 0 means
// unbounded (Fibril); limit > 0 bounds the total number of stacks ever
// created (Cilk Plus).
func NewPool(as *vm.AddressSpace, pages, limit int) *Pool {
	if pages <= 0 {
		pages = DefaultStackPages
	}
	p := &Pool{as: as, pages: pages, limit: limit, newStack: New}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Take returns a stack, creating one if the free list is empty. With a
// bounded pool it blocks — the thief "refrains from stealing" — until a
// stack is available. Take returns (nil, nil) once the pool has been
// closed, so that blocked thieves can unwind at shutdown.
func (p *Pool) Take(shard int) (*Stack, error) {
	_ = shard // single-lock pool: no locality to exploit
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.closed {
			return nil, nil
		}
		if n := len(p.free); n > 0 {
			s := p.free[n-1]
			p.free = p.free[:n-1]
			p.takeLocked()
			return s, nil
		}
		if p.limit == 0 || p.created < p.limit {
			s, err := p.createLocked()
			if err != nil {
				return nil, err
			}
			return s, nil
		}
		p.stalls.Add(1)
		p.cond.Wait()
	}
}

// TryTake is Take without blocking; ok is false when a bounded pool is
// exhausted.
func (p *Pool) TryTake(shard int) (*Stack, bool, error) {
	_ = shard
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free = p.free[:n-1]
		p.takeLocked()
		return s, true, nil
	}
	if p.limit == 0 || p.created < p.limit {
		s, err := p.createLocked()
		if err != nil {
			return nil, false, err
		}
		return s, true, nil
	}
	return nil, false, nil
}

// createLocked maps a fresh stack with the pool lock held, dropping it
// around the map call. The counters are bumped optimistically (so a
// concurrent Take under a bounded limit cannot over-create) and repaired
// if the map fails: the created slot is released, the phantom checkout is
// removed from inUse and from any MaxInUse high-water it inflated, and one
// waiter is woken to retry the now-available slot. The id source is
// monotone so a repaired slot never reissues an id.
func (p *Pool) createLocked() (*Stack, error) {
	p.created++
	p.ids++
	id := p.ids
	maxBefore := p.maxInUse
	p.takeLocked()
	p.mu.Unlock()
	s, err := p.newStack(p.as, p.pages, id)
	p.mu.Lock()
	if err != nil {
		p.created--
		p.inUse--
		// Our phantom checkout was counted in inUse for the whole map
		// window, so any high-water recorded in it overstates the real
		// concurrent holding by exactly one (per concurrently failing
		// create); peel our contribution off, never below the prior mark.
		if p.maxInUse > maxBefore {
			p.maxInUse--
		}
		p.cond.Signal()
		return nil, &MapError{Pages: p.pages, Err: err}
	}
	return s, nil
}

func (p *Pool) takeLocked() {
	p.inUse++
	if p.inUse > p.maxInUse {
		p.maxInUse = p.inUse
	}
}

// Put returns a stack to the pool. The stack must be quiescent (its frames
// all popped); its watermark is reset and its cactus linkage cleared.
func (p *Pool) Put(shard int, s *Stack) {
	_ = shard
	s.SetWatermark(0)
	s.ClearBranch()
	p.mu.Lock()
	p.free = append(p.free, s)
	p.inUse--
	p.mu.Unlock()
	p.cond.Signal()
}

// ForEachFree visits every stack currently in the pool's free list, under
// the pool lock. Intended for post-run inspection (conformance oracles):
// once a runtime is quiescent, every stack it ever used is free, so this
// enumerates the run's full stack population.
func (p *Pool) ForEachFree(fn func(*Stack)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, s := range p.free {
		fn(s)
	}
}

// ReclaimFree returns the resident residue of free stacks to the OS,
// oldest pooled first, until stop() reports enough has been freed. Only
// stacks with possibly-resident pages cost a madvise call.
func (p *Pool) ReclaimFree(stop func() bool) (calls, pages int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, s := range p.free {
		if stop != nil && stop() {
			break
		}
		if freed, called := s.ReclaimResidue(); called {
			calls++
			pages += int64(freed)
		}
	}
	return calls, pages
}

// Close wakes every blocked Take with a nil result. Reopen re-enables the
// pool for the next run.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
}

// Reopen re-enables a closed pool. It broadcasts so that any Take which
// raced past the closed check before Close's broadcast — and is now
// waiting although the free list may be non-empty — re-sweeps.
func (p *Pool) Reopen() {
	p.mu.Lock()
	p.closed = false
	p.mu.Unlock()
	p.cond.Broadcast()
}

// Created returns how many stacks the pool has ever mapped — the paper's
// "# of stacks" column in Table 4.
func (p *Pool) Created() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.created
}

// MaxInUse returns the most stacks simultaneously checked out.
func (p *Pool) MaxInUse() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.maxInUse
}

// InUse returns the stacks currently checked out.
func (p *Pool) InUse() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.inUse
}

// Stalls returns how many times Take had to wait on a bounded pool.
func (p *Pool) Stalls() int64 { return p.stalls.Load() }

// Drain releases every pooled stack's mapping. Only for teardown; stacks
// still checked out are the caller's responsibility.
func (p *Pool) Drain() {
	p.mu.Lock()
	free := p.free
	p.free = nil
	p.mu.Unlock()
	for _, s := range free {
		s.Release()
	}
}
