package stack

import (
	"testing"
	"testing/quick"
	"time"

	"fibril/internal/vm"
)

func newStack(t *testing.T, pages int) (*vm.AddressSpace, *Stack) {
	t.Helper()
	as := vm.NewAddressSpace()
	s, err := New(as, pages, 1)
	if err != nil {
		t.Fatal(err)
	}
	return as, s
}

func TestPushPopWatermark(t *testing.T) {
	_, s := newStack(t, 4)
	b1, err := s.Push(100)
	if err != nil || b1 != 0 {
		t.Fatalf("Push(100) = %d,%v", b1, err)
	}
	b2, _ := s.Push(200)
	if b2 != 100 {
		t.Fatalf("second frame base = %d, want 100", b2)
	}
	if s.Bytes() != 300 || s.Pages() != 1 {
		t.Fatalf("watermark = %d bytes / %d pages, want 300/1", s.Bytes(), s.Pages())
	}
	s.Pop(b2)
	s.Pop(b1)
	if s.Bytes() != 0 {
		t.Fatalf("watermark = %d after pops, want 0", s.Bytes())
	}
	if s.HighWaterPages() != 1 {
		t.Fatalf("high water = %d pages, want 1", s.HighWaterPages())
	}
}

func TestPushTouchesPages(t *testing.T) {
	as, s := newStack(t, 8)
	s.Push(3 * vm.PageSize)
	if got := as.Snapshot().PageFaults; got != 3 {
		t.Errorf("faults = %d after 3-page frame, want 3", got)
	}
	s.Push(vm.PageSize / 2)
	if got := as.Snapshot().PageFaults; got != 4 {
		t.Errorf("faults = %d, want 4", got)
	}
	// A tiny frame within the already-resident page is free.
	s.Push(16)
	if got := as.Snapshot().PageFaults; got != 4 {
		t.Errorf("faults = %d after sub-page push, want still 4", got)
	}
}

func TestPushZeroBytes(t *testing.T) {
	as, s := newStack(t, 2)
	if _, err := s.Push(0); err != nil {
		t.Fatal(err)
	}
	if got := as.Snapshot().PageFaults; got != 0 {
		t.Errorf("zero-size frame faulted %d pages", got)
	}
}

func TestOverflow(t *testing.T) {
	_, s := newStack(t, 2)
	if _, err := s.Push(2*vm.PageSize + 1); err == nil {
		t.Error("expected overflow error")
	}
	if _, err := s.Push(2 * vm.PageSize); err != nil {
		t.Errorf("exact-fit push failed: %v", err)
	}
	if _, err := s.Push(1); err == nil {
		t.Error("expected overflow on full stack")
	}
	if _, err := s.Push(-1); err == nil {
		t.Error("expected error on negative size")
	}
}

func TestUnmapAboveKeepsLivePages(t *testing.T) {
	as, s := newStack(t, 16)
	base, _ := s.Push(10 * vm.PageSize)
	s.Push(5 * vm.PageSize)
	s.Pop(base + 10*vm.PageSize) // back to 10 pages live, 15 resident
	if got := s.ResidentPages(); got != 15 {
		t.Fatalf("resident = %d, want 15", got)
	}
	freed := s.UnmapAbove()
	if freed != 5 {
		t.Errorf("UnmapAbove freed %d, want 5", freed)
	}
	if got := s.ResidentPages(); got != 10 {
		t.Errorf("resident = %d after unmap, want 10 live pages kept", got)
	}
	// Pushing again refaults.
	before := as.Snapshot().PageFaults
	s.Push(2 * vm.PageSize)
	if got := as.Snapshot().PageFaults - before; got != 2 {
		t.Errorf("refaults = %d, want 2", got)
	}
}

func TestUnmapAbovePartialPage(t *testing.T) {
	_, s := newStack(t, 4)
	s.Push(vm.PageSize + 100) // 1 full page + partial second page
	s.Push(2*vm.PageSize - 200)
	s.Pop(vm.PageSize + 100)
	// Watermark page (page 1, partially used) must survive the unmap —
	// this is the per-stack "+1" that becomes the +D of Theorem 4.2.
	s.UnmapAbove()
	if got := s.ResidentPages(); got != 2 {
		t.Errorf("resident = %d, want 2 (full page + partial watermark page)", got)
	}
}

func TestMapDummyAboveAndRemap(t *testing.T) {
	as, s := newStack(t, 8)
	s.Push(8 * vm.PageSize)
	s.Pop(2 * vm.PageSize)
	s.MapDummyAbove()
	if got := s.ResidentPages(); got != 2 {
		t.Errorf("resident = %d, want 2", got)
	}
	s.RemapAbove()
	s.Push(vm.PageSize)
	if got := as.Snapshot().DummyTouches; got != 0 {
		t.Errorf("dummy touches = %d, want 0 after remap", got)
	}
}

func TestCactusPath(t *testing.T) {
	as := vm.NewAddressSpace()
	root, _ := New(as, 8, 1)
	mid, _ := New(as, 8, 2)
	leaf, _ := New(as, 8, 3)
	root.Push(1000)
	root.Branch(mid)
	mid.Push(2000)
	mid.Branch(leaf)
	leaf.Push(3000)

	stacks, bytes := leaf.CactusPath()
	if len(stacks) != 3 {
		t.Fatalf("path length = %d, want 3", len(stacks))
	}
	wantIDs := []int{3, 2, 1}
	wantBytes := []int{3000, 2000, 1000}
	for i := range stacks {
		if stacks[i].ID() != wantIDs[i] || bytes[i] != wantBytes[i] {
			t.Errorf("path[%d] = stack %d / %d bytes, want %d / %d",
				i, stacks[i].ID(), bytes[i], wantIDs[i], wantBytes[i])
		}
	}
}

// mustTake unwraps a Take that the test expects to succeed.
func mustTake(t *testing.T, p Pooler, shard int) *Stack {
	t.Helper()
	s, err := p.Take(shard)
	if err != nil {
		t.Fatalf("Take: %v", err)
	}
	if s == nil {
		t.Fatal("Take returned nil from an open pool")
	}
	return s
}

func TestPoolReuse(t *testing.T) {
	as := vm.NewAddressSpace()
	p := NewPool(as, 4, 0)
	s1 := mustTake(t, p, 0)
	s1.Push(100)
	p.Put(0, s1)
	s2 := mustTake(t, p, 0)
	if s2 != s1 {
		t.Error("pool did not reuse the freed stack")
	}
	if s2.Bytes() != 0 {
		t.Errorf("recycled stack watermark = %d, want 0", s2.Bytes())
	}
	if p.Created() != 1 {
		t.Errorf("Created = %d, want 1", p.Created())
	}
}

func TestPoolCreatesWhenEmpty(t *testing.T) {
	as := vm.NewAddressSpace()
	p := NewPool(as, 4, 0)
	a := mustTake(t, p, 0)
	b := mustTake(t, p, 0)
	if a == b {
		t.Error("pool returned the same stack twice")
	}
	if p.Created() != 2 || p.MaxInUse() != 2 {
		t.Errorf("Created=%d MaxInUse=%d, want 2/2", p.Created(), p.MaxInUse())
	}
}

func TestBoundedPoolBlocksThenUnblocks(t *testing.T) {
	as := vm.NewAddressSpace()
	p := NewPool(as, 4, 2)
	a := mustTake(t, p, 0)
	b := mustTake(t, p, 0)
	if _, ok, _ := p.TryTake(0); ok {
		t.Fatal("TryTake succeeded past the limit")
	}
	done := make(chan *Stack)
	go func() { s, _ := p.Take(0); done <- s }()
	// Wait until the taker has actually stalled before returning a stack.
	deadline := time.Now().Add(5 * time.Second)
	for p.Stalls() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("taker never stalled")
		}
		time.Sleep(time.Millisecond)
	}
	p.Put(0, b)
	got := <-done
	if got != b {
		t.Error("blocked Take did not receive the returned stack")
	}
	if p.Stalls() != 1 {
		t.Errorf("Stalls = %d, want 1", p.Stalls())
	}
	p.Put(0, a)
	p.Put(0, got)
	p.Drain()
	if rss := as.Snapshot().VirtualPages; rss != 0 {
		t.Errorf("VirtualPages = %d after drain, want 0", rss)
	}
}

func TestReclaimablePagesHysteresis(t *testing.T) {
	_, s := newStack(t, 16)
	base, _ := s.Push(10 * vm.PageSize)
	s.Pop(base + 4*vm.PageSize) // 4 pages live, cleanFrom == 10
	if got := s.ReclaimablePages(); got != 6 {
		t.Fatalf("ReclaimablePages = %d, want 6", got)
	}
	if freed := s.UnmapAbove(); freed != 6 {
		t.Fatalf("UnmapAbove freed %d, want 6", freed)
	}
	// Re-suspend at the same depth: nothing above the watermark can be
	// resident, so the hysteresis gate reports a guaranteed no-op.
	if got := s.ReclaimablePages(); got != 0 {
		t.Errorf("ReclaimablePages = %d after unmap, want 0", got)
	}
	// Growing past the unmap point re-arms the gate.
	s.Push(2 * vm.PageSize)
	s.Pop(4 * vm.PageSize)
	if got := s.ReclaimablePages(); got != 2 {
		t.Errorf("ReclaimablePages = %d after regrow, want 2", got)
	}
}

func TestUnmapFromDeferred(t *testing.T) {
	as, s := newStack(t, 16)
	base, _ := s.Push(12 * vm.PageSize)
	s.Pop(base + 3*vm.PageSize) // suspend point: 3 pages live
	from := s.Pages()
	before := as.Snapshot().MadviseCalls
	freed, called := s.UnmapFrom(from)
	if !called || freed != 9 {
		t.Fatalf("UnmapFrom = %d,%v, want 9,true", freed, called)
	}
	if got := as.Snapshot().MadviseCalls - before; got != 1 {
		t.Fatalf("madvise calls = %d, want 1", got)
	}
	if got := s.ResidentPages(); got != 3 {
		t.Errorf("resident = %d, want 3", got)
	}
	// A second flush of the same range is refused without a syscall.
	if _, called := s.UnmapFrom(from); called {
		t.Error("UnmapFrom re-issued madvise on a clean range")
	}
	if _, called := s.UnmapFrom(-1); called {
		t.Error("UnmapFrom accepted a negative watermark")
	}
}

func TestReclaimResidue(t *testing.T) {
	as, s := newStack(t, 8)
	s.Push(5 * vm.PageSize)
	s.Pop(0)
	s.SetWatermark(0) // quiescent, as when pooled
	freed, called := s.ReclaimResidue()
	if !called || freed != 5 {
		t.Fatalf("ReclaimResidue = %d,%v, want 5,true", freed, called)
	}
	if got := s.ResidentPages(); got != 0 {
		t.Errorf("resident = %d, want 0", got)
	}
	before := as.Snapshot().MadviseCalls
	if _, called := s.ReclaimResidue(); called {
		t.Error("ReclaimResidue re-issued madvise on a clean stack")
	}
	if got := as.Snapshot().MadviseCalls - before; got != 0 {
		t.Errorf("clean reclaim cost %d madvise calls", got)
	}
}

// Property: push/pop algebra — after any valid sequence, watermark equals
// the sum of live frame sizes, and page residency is at least PAGE_ALIGN of
// the high-water mark until an unmap happens.
func TestQuickPushPopAlgebra(t *testing.T) {
	prop := func(sizes []uint16, popMask uint32) bool {
		as := vm.NewAddressSpace()
		s, err := New(as, 64, 1)
		if err != nil {
			return false
		}
		type frame struct{ base, size int }
		var live []frame
		total := 0
		for i, sz := range sizes {
			size := int(sz % 2048)
			if total+size <= s.CapacityBytes() {
				base, err := s.Push(size)
				if err != nil {
					return false
				}
				live = append(live, frame{base, size})
				total += size
			}
			if popMask&(1<<(uint(i)%32)) != 0 && len(live) > 0 {
				f := live[len(live)-1]
				live = live[:len(live)-1]
				s.Pop(f.base)
				total -= f.size
			}
			if s.Bytes() != total {
				return false
			}
			if s.ResidentPages() < s.Pages() {
				return false // live pages must always be resident
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: UnmapAbove never frees live pages and always leaves exactly the
// watermark pages resident when the whole stack was previously touched.
func TestQuickUnmapInvariant(t *testing.T) {
	prop := func(liveBytes uint16) bool {
		as := vm.NewAddressSpace()
		s, err := New(as, 16, 1)
		if err != nil {
			return false
		}
		s.Push(16 * vm.PageSize) // touch everything
		keep := int(liveBytes) % (16 * vm.PageSize)
		s.Pop(keep)
		s.UnmapAbove()
		return s.ResidentPages() == vm.PageAlign(keep)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
