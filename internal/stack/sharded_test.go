package stack

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"fibril/internal/vm"
)

// poolVariants returns both Pooler implementations over a fresh address
// space each, so every test in this file runs against the single-lock
// reference and the sharded pool alike.
func poolVariants(pages, limit int) []struct {
	name string
	pool Pooler
} {
	return []struct {
		name string
		pool Pooler
	}{
		{"global", NewPool(vm.NewAddressSpace(), pages, limit)},
		{"sharded", NewShardedPool(vm.NewAddressSpace(), pages, limit, 4)},
	}
}

// setNewStackHook swaps the pool's stack constructor, to inject map
// failures.
func setNewStackHook(p Pooler, hook func(*vm.AddressSpace, int, int) (*Stack, error)) {
	switch pp := p.(type) {
	case *Pool:
		pp.newStack = hook
	case *ShardedPool:
		pp.newStack = hook
	default:
		panic("unknown pool type")
	}
}

// splitmix64 is the same tiny seeded rng the conformance generator uses.
func splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D4DB3DF725CE8C
	return z ^ (z >> 31)
}

// poolModel is the reference the differential tests compare both pools
// against: a trivially correct sequential pool with the same counters.
type poolModel struct {
	limit    int
	created  int
	inUse    int
	maxInUse int
	free     int
	closed   bool
}

func (m *poolModel) checkout() {
	m.inUse++
	if m.inUse > m.maxInUse {
		m.maxInUse = m.inUse
	}
}

// driveSequential replays one seeded op sequence against a pool and the
// model, failing on the first counter divergence. All ops are sequential,
// so the sharded pool's sampled MaxInUse must be exact too.
func driveSequential(t *testing.T, name string, p Pooler, limit int, seed uint64, ops int) {
	t.Helper()
	m := &poolModel{limit: limit}
	var held []*Stack
	state := seed
	for i := 0; i < ops; i++ {
		r := splitmix64(&state)
		shard := int(r>>8%6) - 1 // -1 (slotless) through 4 (one past the shards)
		switch r % 5 {
		case 0, 1: // Take, skipped when it would block
			if m.closed {
				s, err := p.Take(shard)
				if s != nil || err != nil {
					t.Fatalf("%s seed=%#x op %d: Take on closed pool = %v,%v", name, seed, i, s, err)
				}
				continue
			}
			if m.free == 0 && m.limit > 0 && m.created == m.limit {
				continue
			}
			s, err := p.Take(shard)
			if err != nil || s == nil {
				t.Fatalf("%s seed=%#x op %d: Take = %v,%v", name, seed, i, s, err)
			}
			held = append(held, s)
			if m.free > 0 {
				m.free--
			} else {
				m.created++
			}
			m.checkout()
		case 2: // TryTake (does not check closed, matching the contract)
			s, ok, err := p.TryTake(shard)
			if err != nil {
				t.Fatalf("%s seed=%#x op %d: TryTake err = %v", name, seed, i, err)
			}
			wantOK := m.free > 0 || m.limit == 0 || m.created < m.limit
			if ok != wantOK {
				t.Fatalf("%s seed=%#x op %d: TryTake ok = %v, want %v", name, seed, i, ok, wantOK)
			}
			if ok {
				held = append(held, s)
				if m.free > 0 {
					m.free--
				} else {
					m.created++
				}
				m.checkout()
			}
		case 3: // Put
			if len(held) == 0 {
				continue
			}
			pick := int(r>>16) % len(held)
			s := held[pick]
			held = append(held[:pick], held[pick+1:]...)
			p.Put(shard, s)
			m.inUse--
			m.free++
		case 4: // Close / Reopen
			if m.closed {
				p.Reopen()
				m.closed = false
			} else {
				p.Close()
				m.closed = true
			}
		}
		if got := p.InUse(); got != m.inUse {
			t.Fatalf("%s seed=%#x op %d: InUse = %d, want %d", name, seed, i, got, m.inUse)
		}
	}
	if got := p.Created(); got != m.created {
		t.Errorf("%s seed=%#x: Created = %d, want %d", name, seed, got, m.created)
	}
	if got := p.MaxInUse(); got != m.maxInUse {
		t.Errorf("%s seed=%#x: MaxInUse = %d, want %d", name, seed, got, m.maxInUse)
	}
	if got := p.Stalls(); got != 0 {
		t.Errorf("%s seed=%#x: Stalls = %d on a never-blocking sequence", name, seed, got)
	}
	// Quiescence conservation: everything ever created is either still
	// held or visible to ForEachFree.
	freeCount := 0
	p.ForEachFree(func(*Stack) { freeCount++ })
	if freeCount+len(held) != m.created {
		t.Errorf("%s seed=%#x: free %d + held %d != created %d",
			name, seed, freeCount, len(held), m.created)
	}
}

// TestShardedVsGlobalCounters pins the sharded pool's counter totals to the
// single-lock reference on identical seeded op programs (satellite: the
// differential pool test).
func TestShardedVsGlobalCounters(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		limit := 0
		if seed%3 == 0 {
			limit = int(seed%5) + 1
		}
		for _, v := range poolVariants(4, limit) {
			driveSequential(t, v.name, v.pool, limit, seed, 200)
			v.pool.Drain()
		}
	}
}

// FuzzPool exercises Take/TryTake/Put/Close/Reopen interleavings against
// the model pool, on both implementations (satellite: pool fuzz target).
func FuzzPool(f *testing.F) {
	f.Add(uint64(1), uint16(50), uint8(0))
	f.Add(uint64(42), uint16(200), uint8(2))
	f.Add(uint64(0xDEADBEEF), uint16(120), uint8(5))
	f.Fuzz(func(t *testing.T, seed uint64, ops uint16, limitByte uint8) {
		limit := int(limitByte % 8)
		n := int(ops%512) + 1
		for _, v := range poolVariants(2, limit) {
			driveSequential(t, v.name, v.pool, limit, seed, n)
			v.pool.Drain()
		}
	})
}

// TestPoolTakeMapFailure is the satellite bugfix regression: a failing map
// must repair created/inUse/maxInUse, return a typed *MapError instead of
// panicking, and leave the pool fully usable.
func TestPoolTakeMapFailure(t *testing.T) {
	for _, v := range poolVariants(4, 1) {
		t.Run(v.name, func(t *testing.T) {
			fail := true
			setNewStackHook(v.pool, func(as *vm.AddressSpace, pages, id int) (*Stack, error) {
				if fail {
					fail = false
					return nil, errors.New("injected map failure")
				}
				return New(as, pages, id)
			})
			_, err := v.pool.Take(0)
			var me *MapError
			if !errors.As(err, &me) {
				t.Fatalf("Take = %v, want *MapError", err)
			}
			if me.Pages != 4 {
				t.Errorf("MapError.Pages = %d, want 4", me.Pages)
			}
			if c, u, m := v.pool.Created(), v.pool.InUse(), v.pool.MaxInUse(); c != 0 || u != 0 || m != 0 {
				t.Errorf("after failed map: Created=%d InUse=%d MaxInUse=%d, want 0/0/0", c, u, m)
			}
			// The repaired slot is available again: the bounded limit of 1
			// still admits a (now succeeding) create.
			s := mustTake(t, v.pool, 0)
			if v.pool.Created() != 1 || v.pool.MaxInUse() != 1 {
				t.Errorf("after retry: Created=%d MaxInUse=%d, want 1/1",
					v.pool.Created(), v.pool.MaxInUse())
			}
			v.pool.Put(0, s)
			v.pool.Drain()
		})
	}
}

// TestPoolMapFailureWakesWaiter pins the repair protocol's liveness: a
// blocked taker on a bounded pool must be woken when a concurrent create
// fails, so it can retry the released slot itself.
func TestPoolMapFailureWakesWaiter(t *testing.T) {
	for _, v := range poolVariants(4, 1) {
		t.Run(v.name, func(t *testing.T) {
			entered := make(chan struct{})
			release := make(chan struct{})
			first := true
			setNewStackHook(v.pool, func(as *vm.AddressSpace, pages, id int) (*Stack, error) {
				if first {
					first = false
					close(entered)
					<-release
					return nil, errors.New("injected map failure")
				}
				return New(as, pages, id)
			})
			failErr := make(chan error)
			go func() { _, err := v.pool.Take(0); failErr <- err }()
			<-entered // the failing create holds the pool's only slot
			got := make(chan *Stack)
			go func() { s, _ := v.pool.Take(1); got <- s }()
			deadline := time.Now().Add(5 * time.Second)
			for v.pool.Stalls() == 0 {
				if time.Now().After(deadline) {
					t.Fatal("second taker never stalled on the bounded pool")
				}
				time.Sleep(time.Millisecond)
			}
			close(release)
			var me *MapError
			if err := <-failErr; !errors.As(err, &me) {
				t.Fatalf("first Take = %v, want *MapError", err)
			}
			s := <-got
			if s == nil {
				t.Fatal("woken taker did not get a stack")
			}
			if v.pool.Created() != 1 {
				t.Errorf("Created = %d, want 1", v.pool.Created())
			}
			v.pool.Put(1, s)
			v.pool.Drain()
		})
	}
}

// TestPoolCloseUnblocksTakers is the satellite -race regression: closing a
// bounded pool with blocked thieves, racing a Put, must let every taker
// unwind (nil from the close, or the returned stack).
func TestPoolCloseUnblocksTakers(t *testing.T) {
	const takers = 4
	for _, v := range poolVariants(4, 2) {
		t.Run(v.name, func(t *testing.T) {
			a := mustTake(t, v.pool, 0)
			b := mustTake(t, v.pool, 1)
			results := make(chan *Stack, takers)
			for i := 0; i < takers; i++ {
				go func(shard int) {
					s, err := v.pool.Take(shard)
					if err != nil {
						t.Errorf("blocked Take: %v", err)
					}
					results <- s
				}(i)
			}
			deadline := time.Now().Add(5 * time.Second)
			for v.pool.Stalls() < takers {
				if time.Now().After(deadline) {
					t.Fatalf("only %d/%d takers stalled", v.pool.Stalls(), takers)
				}
				time.Sleep(time.Millisecond)
			}
			// Race a Put against Close: at most one taker may receive b,
			// everyone else must unwind with nil.
			var wg sync.WaitGroup
			wg.Add(2)
			go func() { defer wg.Done(); v.pool.Put(1, b) }()
			go func() { defer wg.Done(); v.pool.Close() }()
			wg.Wait()
			handedOut := 0
			for i := 0; i < takers; i++ {
				select {
				case s := <-results:
					if s != nil {
						handedOut++
						v.pool.Put(0, s)
					}
				case <-time.After(10 * time.Second):
					t.Fatal("a taker never unwound after Close")
				}
			}
			if handedOut > 1 {
				t.Errorf("%d takers got a stack, at most 1 possible", handedOut)
			}
			// Reopen: the pool must serve again, from the freed stack.
			v.pool.Reopen()
			s := mustTake(t, v.pool, 2)
			if v.pool.Created() != 2 {
				t.Errorf("Created = %d after reopen, want still 2", v.pool.Created())
			}
			v.pool.Put(2, s)
			v.pool.Put(0, a)
			v.pool.Drain()
		})
	}
}

// TestShardedConcurrentStress hammers the lock-free fast path from many
// goroutines and checks the quiescence invariants the conformance oracles
// rely on: InUse drains to zero, MaxInUse never exceeds Created, and every
// stack ever created is findable in the free set.
func TestShardedConcurrentStress(t *testing.T) {
	const workers = 8
	const rounds = 300
	p := NewShardedPool(vm.NewAddressSpace(), 2, 0, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				s, err := p.Take(shard)
				if err != nil || s == nil {
					t.Errorf("shard %d: Take = %v,%v", shard, s, err)
					return
				}
				if i%3 == 0 {
					s.Push(vm.PageSize)
					s.Pop(0)
				}
				p.Put(shard, s)
			}
		}(w)
	}
	wg.Wait()
	if got := p.InUse(); got != 0 {
		t.Errorf("InUse = %d at quiescence, want 0", got)
	}
	if p.MaxInUse() > p.Created() {
		t.Errorf("MaxInUse %d > Created %d", p.MaxInUse(), p.Created())
	}
	if p.MaxInUse() > workers {
		t.Errorf("MaxInUse = %d with %d single-stack workers", p.MaxInUse(), workers)
	}
	free := 0
	seen := map[*Stack]bool{}
	p.ForEachFree(func(s *Stack) {
		if seen[s] {
			t.Errorf("stack %d enumerated twice", s.ID())
		}
		seen[s] = true
		free++
	})
	if free != p.Created() {
		t.Errorf("free %d != created %d at quiescence", free, p.Created())
	}
	// ReclaimFree drains every touched page off the free stacks.
	calls, pages := p.ReclaimFree(nil)
	if pages > 0 && calls == 0 {
		t.Errorf("ReclaimFree freed %d pages in 0 calls", pages)
	}
	p.ForEachFree(func(s *Stack) {
		if r := s.ResidentPages(); r != 0 {
			t.Errorf("stack %d: %d resident pages after ReclaimFree", s.ID(), r)
		}
	})
	p.Drain()
}

// TestShardedBoundedBlocksThenUnblocks mirrors the single-lock pool's
// bounded-blocking test on the sharded implementation.
func TestShardedBoundedBlocksThenUnblocks(t *testing.T) {
	p := NewShardedPool(vm.NewAddressSpace(), 4, 2, 2)
	a := mustTake(t, p, 0)
	b := mustTake(t, p, 1)
	if _, ok, _ := p.TryTake(0); ok {
		t.Fatal("TryTake succeeded past the limit")
	}
	done := make(chan *Stack)
	go func() { s, _ := p.Take(0); done <- s }()
	deadline := time.Now().Add(5 * time.Second)
	for p.Stalls() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("taker never stalled")
		}
		time.Sleep(time.Millisecond)
	}
	p.Put(1, b)
	got := <-done
	if got == nil {
		t.Fatal("blocked Take returned nil from an open pool")
	}
	if p.Created() != 2 {
		t.Errorf("Created = %d, want 2", p.Created())
	}
	p.Put(0, a)
	p.Put(0, got)
	p.Drain()
}

// TestMapErrorFormat pins the error string and unwrapping.
func TestMapErrorFormat(t *testing.T) {
	inner := errors.New("out of address space")
	err := &MapError{Pages: 256, Err: inner}
	want := "stack: pool cannot map a new 256-page stack: out of address space"
	if err.Error() != want {
		t.Errorf("Error() = %q, want %q", err.Error(), want)
	}
	if !errors.Is(err, inner) {
		t.Error("MapError does not unwrap to its cause")
	}
	var check error = fmt.Errorf("wrapped: %w", err)
	var me *MapError
	if !errors.As(check, &me) || me.Pages != 256 {
		t.Error("MapError not recoverable through errors.As")
	}
}
