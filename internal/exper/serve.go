package exper

import (
	"fmt"
	"strings"

	"fibril/internal/core"
	"fibril/internal/serve"
	"fibril/internal/table"
)

// ServeRow is one measurement of the serving experiment, shaped for
// machine consumption (-json, results/BENCH_serve.json). Rates are
// expressed both absolutely and as a fraction of the calibrated capacity
// so the committed file documents saturation behaviour independent of
// the host that produced it; latencies are histogram-bucket upper bounds
// (power-of-two buckets from the runtime's MetricsSink), in microseconds.
type ServeRow struct {
	Mode           string  `json:"mode"`   // light | overload-queue | overload-shed
	Policy         string  `json:"policy"` // admission policy: queue | shed
	Workers        int     `json:"p"`
	MaxInflight    int     `json:"max_inflight"` // 0 = unlimited
	Mix            string  `json:"mix"`
	CapacityPerSec float64 `json:"capacity_per_sec"` // calibrated closed-loop throughput
	RatePerSec     float64 `json:"rate_per_sec"`     // offered open-loop rate
	RateFraction   float64 `json:"rate_fraction"`    // RatePerSec / CapacityPerSec
	Saturating     bool    `json:"saturating"`       // RatePerSec > CapacityPerSec
	Requests       int     `json:"requests"`
	Completed      int64   `json:"completed"`
	Shed           int64   `json:"shed"`
	Drained        int64   `json:"drained"`
	P50us          int64   `json:"p50_us"`
	P99us          int64   `json:"p99_us"`
	P999us         int64   `json:"p999_us"`
	MeanUs         int64   `json:"mean_us"`
	DrainQueued    int     `json:"drain_queued_tasks"`
	DrainPending   int     `json:"drain_pending_reclaims"`
}

// serveLeg is one mode of the serving experiment: an offered rate as a
// fraction of calibrated capacity, plus the admission posture.
type serveLeg struct {
	mode     string
	fraction float64 // offered rate = fraction × capacity
	policy   core.AdmissionPolicy
	bounded  bool // MaxInflight = Workers (admission control engaged)
}

// Serve runs the serving experiment: calibrate the runtime's capacity
// for the mixed request shapes (closed loop), then drive three open-loop
// legs — light load with unbounded admission, and the same saturating
// overload under both admission postures (queue vs shed). The light leg
// shows baseline request latency; the overload pair shows the policy
// trade: queueing preserves completion at the cost of unbounded waiting,
// shedding preserves the latency of admitted work at the cost of
// availability.
func Serve(o Options) ([]ServeRow, *table.Table) {
	o = o.withDefaults()
	workers := o.Workers
	if workers == 0 {
		workers = 4
	}
	calN, reqLight, reqOver := 80, 240, 160
	if o.Full {
		calN, reqLight, reqOver = 400, 1200, 800
	}
	base := serve.Config{
		Runtime: core.Config{Workers: workers},
		Seed:    1,
	}
	capacity, err := serve.Capacity(base, calN)
	if err != nil {
		panic("exper: serve calibration: " + err.Error())
	}

	legs := []serveLeg{
		{mode: "light", fraction: 0.25, policy: core.AdmitQueue, bounded: false},
		{mode: "overload-queue", fraction: 2.5, policy: core.AdmitQueue, bounded: true},
		{mode: "overload-shed", fraction: 2.5, policy: core.AdmitShed, bounded: true},
	}
	mix := strings.Join(base.SortedShapes(), ",")
	t := &table.Table{
		Title: fmt.Sprintf("Serving: open-loop request latency at P=%d (capacity %.0f req/s, mix %s)",
			workers, capacity, mix),
		Header: []string{"mode", "policy", "rate/s", "×cap", "requests",
			"completed", "shed", "p50", "p99", "p999"},
	}
	var rows []ServeRow
	for _, leg := range legs {
		cfg := base
		cfg.Rate = leg.fraction * capacity
		cfg.Requests = reqLight
		if leg.fraction > 1 {
			cfg.Requests = reqOver
		}
		cfg.Runtime.Admission = leg.policy
		if leg.bounded {
			cfg.Runtime.MaxInflight = workers
		}
		res, err := serve.Run(cfg)
		if err != nil {
			panic("exper: serve leg " + leg.mode + ": " + err.Error())
		}
		row := ServeRow{
			Mode:           leg.mode,
			Policy:         leg.policy.String(),
			Workers:        workers,
			MaxInflight:    cfg.Runtime.MaxInflight,
			Mix:            mix,
			CapacityPerSec: capacity,
			RatePerSec:     cfg.Rate,
			RateFraction:   leg.fraction,
			Saturating:     cfg.Rate > capacity,
			Requests:       res.Offered,
			Completed:      res.Completed,
			Shed:           res.Shed,
			Drained:        res.Drained,
			P50us:          res.P50.Microseconds(),
			P99us:          res.P99.Microseconds(),
			P999us:         res.P999.Microseconds(),
			MeanUs:         res.Mean.Microseconds(),
			DrainQueued:    res.DrainQueuedTasks,
			DrainPending:   res.DrainPendingReclaims,
		}
		rows = append(rows, row)
		t.Add(row.Mode, row.Policy, fmt.Sprintf("%.0f", row.RatePerSec),
			fmt.Sprintf("%.2f", row.RateFraction), row.Requests,
			row.Completed, row.Shed,
			fmt.Sprintf("%dµs", row.P50us), fmt.Sprintf("%dµs", row.P99us),
			fmt.Sprintf("%dµs", row.P999us))
	}
	return rows, t
}
