package exper

import (
	"fmt"
	"runtime"

	"fibril/internal/bench"
	"fibril/internal/core"
	"fibril/internal/table"
)

// ForkPathRow is one measurement of the fork-path experiment, shaped for
// machine consumption (-json): per-fork (or, for the loop legs,
// per-iteration) wall cost and heap allocations on the real runtime.
type ForkPathRow struct {
	Benchmark   string  `json:"benchmark"`
	Mode        string  `json:"mode"` // closure | forkarg | eager | lazy
	Workers     int     `json:"p"`
	NsPerOp     float64 `json:"ns_op"`
	AllocsPerOp float64 `json:"allocs_op"`
	Forks       int64   `json:"forks"`
	// SpeedupVsClosure is closure-ns/this-ns, set on forkarg rows (and
	// lazy rows, against the eager baseline); > 1 means faster.
	SpeedupVsClosure float64 `json:"speedup_vs_closure,omitempty"`
}

// forkPathBenches are the fine-grained benchmarks that keep both fork
// implementations: almost no work per task, so the fork path dominates.
var forkPathBenches = []string{"fib", "integrate", "knapsack", "nqueens"}

// ForkPath measures the fork fast path on one worker (the Figure 3
// setting, where overhead is undiluted by stealing): for each
// fine-grained benchmark, the closure-fork baseline (ParallelClosure)
// against the zero-allocation ForkArg implementation (Parallel); then the
// loop engine, eager recursive splitting against steal-driven lazy
// splitting. ns/op is per fork for the benchmarks and per iteration for
// the loop legs; allocs/op comes from the Mallocs delta across the
// timed repetitions, first run excluded so arenas and stacks are warm.
func ForkPath(o Options) ([]ForkPathRow, *table.Table) {
	o = o.withDefaults()
	t := &table.Table{
		Title: "Fork path: cost and allocations, closure vs forkarg and eager vs lazy loops (real runtime, P=1)",
		Header: []string{"benchmark", "mode", "P", "ns/op", "allocs/op",
			"forks", "vs-baseline"},
	}
	var rows []ForkPathRow
	add := func(r ForkPathRow) {
		rows = append(rows, r)
		vs := ""
		if r.SpeedupVsClosure > 0 {
			vs = fmt.Sprintf("%.2f", r.SpeedupVsClosure)
		}
		t.Add(r.Benchmark, r.Mode, r.Workers, int64(r.NsPerOp),
			fmt.Sprintf("%.2f", r.AllocsPerOp), r.Forks, vs)
	}
	for _, name := range forkPathBenches {
		if len(o.Benches) > 0 && !benchListed(o.Benches, name) {
			continue
		}
		s := bench.Get(name)
		if s.ParallelClosure == nil {
			continue
		}
		a := s.Default
		closure := o.measureForkPath(name, "closure", a, s.ParallelClosure)
		forkarg := o.measureForkPath(name, "forkarg", a, s.Parallel)
		if closure.NsPerOp > 0 && forkarg.NsPerOp > 0 {
			forkarg.SpeedupVsClosure = closure.NsPerOp / forkarg.NsPerOp
		}
		add(closure)
		add(forkarg)
	}
	if len(o.Benches) == 0 || benchListed(o.Benches, "for-loop") {
		eager := o.measureLoop("eager", eagerLoop)
		lazy := o.measureLoop("lazy", lazyLoop)
		if eager.NsPerOp > 0 && lazy.NsPerOp > 0 {
			lazy.SpeedupVsClosure = eager.NsPerOp / lazy.NsPerOp
		}
		add(eager)
		add(lazy)
	}
	return rows, t
}

// measureForkPath times reps runs of one benchmark implementation on a
// single worker and attributes wall time and heap allocations per fork.
func (o Options) measureForkPath(name, mode string, a bench.Arg,
	run func(*core.W, bench.Arg) uint64) ForkPathRow {
	rt := o.newRuntime(core.Config{Workers: 1, StackPages: 4096})
	var sink uint64
	// Warm run: stacks mapped, deque rings grown, arena hoards filled.
	rt.Run(func(w *core.W) { sink += run(w, a) })
	forks0 := rt.Stats().Forks
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	summary := timeIt(o.Reps, func() {
		rt.Run(func(w *core.W) { sink += run(w, a) })
	})
	runtime.ReadMemStats(&m1)
	_ = sink
	forksPerRun := (rt.Stats().Forks - forks0) / int64(o.Reps)
	if forksPerRun == 0 {
		forksPerRun = 1
	}
	ops := float64(o.Reps) * float64(forksPerRun)
	return ForkPathRow{
		Benchmark:   name,
		Mode:        mode,
		Workers:     1,
		NsPerOp:     summary.Mean * 1e9 / float64(forksPerRun),
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / ops,
		Forks:       forksPerRun,
	}
}

// Loop-leg workload: enough iterations that splitting cost is visible,
// grain small enough that the eager splitter's closure traffic shows.
const (
	loopN     = 1 << 18
	loopGrain = 64
)

func lazyLoop(w *core.W, sum *uint64) {
	core.LazyFor(w, 0, loopN, loopGrain, func(_ *core.W, i int) {
		*sum += uint64(i)
	})
}

// eagerLoop is the pre-lazy-splitting For: recursively fork one half
// down to the grain, unconditionally — the loop baseline.
func eagerLoop(w *core.W, sum *uint64) {
	var eager func(w *core.W, lo, hi int, out *uint64)
	eager = func(w *core.W, lo, hi int, out *uint64) {
		if hi-lo <= loopGrain {
			var s uint64
			for i := lo; i < hi; i++ {
				s += uint64(i)
			}
			*out = s
			return
		}
		mid := lo + (hi-lo)/2
		var fr core.Frame
		w.Init(&fr)
		var l, r uint64
		w.Fork(&fr, func(w *core.W) { eager(w, lo, mid, &l) })
		w.Call(func(w *core.W) { eager(w, mid, hi, &r) })
		w.Join(&fr)
		*out = l + r
	}
	var out uint64
	eager(w, 0, loopN, &out)
	*sum += out
}

// measureLoop is measureForkPath for the loop legs; ops are iterations,
// not forks, so eager and lazy rows are directly comparable even though
// the lazy engine forks far less.
func (o Options) measureLoop(mode string, loop func(*core.W, *uint64)) ForkPathRow {
	rt := o.newRuntime(core.Config{Workers: 1, StackPages: 4096})
	var sum uint64
	rt.Run(func(w *core.W) { loop(w, &sum) })
	forks0 := rt.Stats().Forks
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	summary := timeIt(o.Reps, func() {
		rt.Run(func(w *core.W) { loop(w, &sum) })
	})
	runtime.ReadMemStats(&m1)
	_ = sum
	ops := float64(o.Reps) * float64(loopN)
	return ForkPathRow{
		Benchmark:   "for-loop",
		Mode:        mode,
		Workers:     1,
		NsPerOp:     summary.Mean * 1e9 / loopN,
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / ops,
		Forks:       (rt.Stats().Forks - forks0) / int64(o.Reps),
	}
}
