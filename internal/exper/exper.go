// Package exper regenerates every table and figure of the Fibril paper's
// evaluation (SPAA 2016, §5) from this reproduction's two measurement
// vehicles:
//
//   - Figure 3 (single-thread relative performance) runs the REAL
//     goroutine-based runtime against the serial implementations —
//     single-thread overhead is measurable even on a 1-CPU host;
//   - Figure 4 (speedup on 1–72 threads) and Tables 2–4 (steals/unmaps/
//     page faults, stack space, RSS) come from the deterministic
//     discrete-event simulator, which can sweep P to 72 regardless of the
//     host's core count;
//   - three ablations cover the paper's §4.3 design arguments: mmap vs
//     madvise unmap, the depth-restricted-stealing lower bound, and the
//     bounded stack pool of Cilk Plus.
//
// Each experiment returns printable tables; cmd/fibril-bench is a thin
// front-end, and the repository-root benchmarks invoke the same code.
package exper

import (
	"fmt"
	"time"

	"fibril/internal/bench"
	"fibril/internal/core"
	"fibril/internal/invoke"
	"fibril/internal/sim"
	"fibril/internal/stats"
	"fibril/internal/table"
	"fibril/internal/vm"
)

// Options selects experiment scale.
type Options struct {
	// Full selects the Sim input sizes and the paper's P grid (up to 72);
	// otherwise the Default inputs and a small grid keep runs quick.
	Full bool
	// Reps is the number of timing repetitions for real-runtime
	// measurements (the paper uses ten).
	Reps int
	// Benches restricts the benchmark set; empty means all of Table 1.
	Benches []string
	// Workers is the real-runtime worker count for Figure 3 (always 1
	// there) and the counter smoke runs; 0 = GOMAXPROCS.
	Workers int
	// HelpFirst switches the simulator experiments to the help-first
	// child-stealing engine (the Go runtime's substitution). The default
	// is the paper's own discipline: work-first continuation stealing.
	HelpFirst bool
	// Observe, when non-nil, is handed every real runtime an experiment
	// creates, before its first Run. cmd/fibril-bench's -serve flag uses
	// it to point the live /debug/vars metrics at the current runtime.
	Observe func(*core.Runtime)
}

// newRuntime creates a real runtime for an experiment leg, routing it
// through the Observe hook.
func (o Options) newRuntime(cfg core.Config) *core.Runtime {
	rt := core.NewRuntime(cfg)
	if o.Observe != nil {
		o.Observe(rt)
	}
	return rt
}

func (o Options) withDefaults() Options {
	if o.Reps <= 0 {
		o.Reps = 3
	}
	return o
}

func (o Options) arg(s *bench.Spec) bench.Arg {
	if o.Full {
		return s.Sim
	}
	return s.Default
}

func (o Options) pGrid() []int {
	if o.Full {
		return []int{1, 2, 4, 8, 12, 18, 24, 36, 48, 60, 72}
	}
	return []int{1, 2, 4, 8, 16}
}

func (o Options) specs() []*bench.Spec {
	if len(o.Benches) == 0 {
		all := bench.All()
		specs := make([]*bench.Spec, 0, len(all))
		for _, s := range all {
			if s.Name != "adversarial" { // ablation-only workload
				specs = append(specs, s)
			}
		}
		return specs
	}
	specs := make([]*bench.Spec, 0, len(o.Benches))
	for _, n := range o.Benches {
		s := bench.Get(n)
		if s == nil {
			panic("exper: unknown benchmark " + n)
		}
		specs = append(specs, s)
	}
	return specs
}

// timeIt returns the mean seconds of reps runs of f.
func timeIt(reps int, f func()) stats.Summary {
	xs := make([]float64, 0, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		f()
		xs = append(xs, time.Since(start).Seconds())
	}
	return stats.Of(xs)
}

// Fig3 reproduces Figure 3: performance of each runtime on ONE worker
// relative to the serial implementation (Tserial/T1; higher is better,
// 1.0 means no overhead).
func Fig3(o Options) *table.Table {
	o = o.withDefaults()
	strategies := []core.Strategy{
		core.StrategyFibril, core.StrategyCilkPlus, core.StrategyTBB,
		core.StrategyGoroutine,
	}
	t := &table.Table{
		Title: "Figure 3: relative performance on one worker (Tserial/T1)",
		Header: []string{"benchmark", "input", "Tserial(ms)",
			"fibril", "cilkplus", "tbb", "goroutine"},
	}
	for _, s := range o.specs() {
		a := o.arg(s)
		var sink uint64
		serial := timeIt(o.Reps, func() { sink += s.Serial(a) })
		row := []any{s.Name, a.String(), fmt.Sprintf("%.1f", serial.Mean*1e3)}
		for _, strat := range strategies {
			rt := o.newRuntime(core.Config{
				Workers: 1, Strategy: strat, StackPages: 4096,
			})
			par := timeIt(o.Reps, func() {
				rt.Run(func(w *core.W) { sink += s.Parallel(w, a) })
			})
			row = append(row, fmt.Sprintf("%.2f", serial.Mean/par.Mean))
		}
		t.Add(row...)
		_ = sink
	}
	return t
}

// fig4Strategies are the runtimes Figure 4 compares.
func fig4Strategies() []core.Strategy {
	return []core.Strategy{
		core.StrategyFibril, core.StrategyFibrilNoUnmap,
		core.StrategyCilkPlus, core.StrategyCilkM, core.StrategyTBB,
	}
}

// Fig4 reproduces Figure 4 for one benchmark: simulated speedup
// (T1work/Tp) for each runtime across the worker grid. One table per
// benchmark keeps the series readable.
func Fig4(o Options, s *bench.Spec) *table.Table {
	o = o.withDefaults()
	a := o.arg(s)
	m := invoke.Analyze(s.Tree(a))
	t := &table.Table{
		Title: fmt.Sprintf("Figure 4 [%s %v]: simulated speedup vs workers (T1=%d T∞=%d parallelism=%.1f)",
			s.Name, a, m.Work, m.Span, m.Parallelism()),
		Header: []string{"P", "fibril", "fibril-nounmap", "cilkplus", "cilkm", "tbb"},
	}
	for _, p := range o.pGrid() {
		row := []any{p}
		for _, strat := range fig4Strategies() {
			if strat == core.StrategyCilkM && o.HelpFirst {
				// The TLMM model exists in the work-first engine only.
				row = append(row, "n/a")
				continue
			}
			r := sim.Run(o.simConfig(strat, p), s.Tree(a))
			row = append(row, fmt.Sprintf("%.2f", float64(m.Work)/float64(r.Makespan)))
		}
		t.Add(row...)
	}
	return t
}

// simConfig builds the per-strategy simulator config: the inline-stealing
// strategies grow one stack per worker, so they get OS-thread-sized (8 MB)
// stacks, as real TBB workers have.
func (o Options) simConfig(strat core.Strategy, p int) sim.Config {
	cfg := sim.Config{Workers: p, Strategy: strat, WorkFirst: !o.HelpFirst}
	if strat == core.StrategyTBB || strat == core.StrategyLeapfrog {
		cfg.StackPages = 2048
	}
	return cfg
}

// Table2 reproduces Table 2: steals and unmaps (Fibril) and page faults
// (Fibril / Cilk Plus / TBB) at P workers (the paper uses 72).
func Table2(o Options) *table.Table {
	o = o.withDefaults()
	p := 72
	if !o.Full {
		p = 16
	}
	t := &table.Table{
		Title: fmt.Sprintf("Table 2: profile of key operations on %d workers (simulated)", p),
		Header: []string{"benchmark", "steals", "unmaps",
			"faults-fibril", "faults-cilkplus", "faults-tbb"},
	}
	for _, s := range o.specs() {
		a := o.arg(s)
		fib := sim.Run(o.simConfig(core.StrategyFibril, p), s.Tree(a))
		cp := sim.Run(o.simConfig(core.StrategyCilkPlus, p), s.Tree(a))
		tbb := sim.Run(o.simConfig(core.StrategyTBB, p), s.Tree(a))
		t.Add(s.Name, fib.Steals, fib.Unmaps,
			fib.VM.PageFaults, cp.VM.PageFaults, tbb.VM.PageFaults)
	}
	return t
}

// Table3 reproduces Table 3: the Fibril depth D, serial stack depth S1,
// the per-worker bound S1+D, and the measured per-worker stack pages
// S_P/P under the Fibril strategy.
func Table3(o Options) *table.Table {
	o = o.withDefaults()
	p := 72
	if !o.Full {
		p = 16
	}
	t := &table.Table{
		Title: fmt.Sprintf("Table 3: stack space usage at P=%d (pages; simulated)", p),
		Header: []string{"benchmark", "D", "S1", "S1+D",
			fmt.Sprintf("S%d/%d", p, p), "within-bound"},
	}
	for _, s := range o.specs() {
		a := o.arg(s)
		m := invoke.Analyze(s.Tree(a))
		s1 := vm.PageAlign(int(m.MaxStackBytes))
		r := sim.Run(o.simConfig(core.StrategyFibril, p), s.Tree(a))
		perWorker := r.MaxStackPagesPerWorker()
		t.Add(s.Name, m.FibrilDepth, s1, s1+m.FibrilDepth,
			fmt.Sprintf("%.2f", perWorker),
			perWorker <= float64(s1+m.FibrilDepth))
	}
	return t
}

// Table4 reproduces Table 4: stack memory high-water (the simulator's RSS
// covers stacks only — the workload data of the real benchmarks is outside
// the simulated address space) and the number of stacks created.
func Table4(o Options) *table.Table {
	o = o.withDefaults()
	p := 72
	if !o.Full {
		p = 16
	}
	t := &table.Table{
		Title: fmt.Sprintf("Table 4: stack RSS and stack counts at P=%d (simulated)", p),
		Header: []string{"benchmark", "rssKB-fibril", "rssKB-nounmap",
			"rssKB-cilkplus", "rssKB-tbb", "stacks-fibril", "stacks-cilkplus"},
	}
	kb := func(pages int64) int64 { return pages * vm.PageSize / 1024 }
	for _, s := range o.specs() {
		a := o.arg(s)
		fib := sim.Run(o.simConfig(core.StrategyFibril, p), s.Tree(a))
		nun := sim.Run(o.simConfig(core.StrategyFibrilNoUnmap, p), s.Tree(a))
		cp := sim.Run(o.simConfig(core.StrategyCilkPlus, p), s.Tree(a))
		tbb := sim.Run(o.simConfig(core.StrategyTBB, p), s.Tree(a))
		t.Add(s.Name,
			kb(fib.VM.MaxRSSPages), kb(nun.VM.MaxRSSPages),
			kb(cp.VM.MaxRSSPages), kb(tbb.VM.MaxRSSPages),
			fib.StacksCreated, cp.StacksCreated)
	}
	return t
}

// AblationMMap reproduces the §4.3 design argument: unmap through the
// serialized mmap path versus lock-free madvise, on the steal-heavy fib
// tree, across the worker grid.
func AblationMMap(o Options) *table.Table {
	o = o.withDefaults()
	s := bench.Get("fib")
	a := o.arg(s)
	t := &table.Table{
		Title:  fmt.Sprintf("Ablation A [fib %v]: madvise vs serialized-mmap unmap (simulated)", a),
		Header: []string{"P", "Tp-madvise", "Tp-mmap", "slowdown", "unmaps"},
	}
	for _, p := range o.pGrid() {
		madv := sim.Run(o.simConfig(core.StrategyFibril, p), s.Tree(a))
		mm := sim.Run(o.simConfig(core.StrategyFibrilMMap, p), s.Tree(a))
		t.Add(p, madv.Makespan, mm.Makespan,
			fmt.Sprintf("%.3f", float64(mm.Makespan)/float64(madv.Makespan)),
			mm.Unmaps)
	}
	return t
}

// AblationDepthRestricted reproduces the Sukha lower-bound direction on
// the adversarial workload: restricted stealing loses speedup that
// unrestricted (suspending) stealing keeps.
func AblationDepthRestricted(o Options) *table.Table {
	o = o.withDefaults()
	s := bench.Adversarial
	a := o.arg(s)
	m := invoke.Analyze(s.Tree(a))
	t := &table.Table{
		Title:  fmt.Sprintf("Ablation B [adversarial %v]: restricted stealing (simulated speedup)", a),
		Header: []string{"P", "fibril", "tbb", "leapfrog"},
	}
	for _, p := range o.pGrid() {
		row := []any{p}
		for _, strat := range []core.Strategy{
			core.StrategyFibril, core.StrategyTBB, core.StrategyLeapfrog,
		} {
			r := sim.Run(o.simConfig(strat, p), s.Tree(a))
			row = append(row, fmt.Sprintf("%.2f", float64(m.Work)/float64(r.Makespan)))
		}
		t.Add(row...)
	}
	return t
}

// AblationStackPool reproduces Cilk Plus's bounded-pool stalls: shrinking
// the stack limit makes thieves refrain from stealing.
func AblationStackPool(o Options) *table.Table {
	o = o.withDefaults()
	s := bench.Get("fib")
	a := o.arg(s)
	p := 72
	if !o.Full {
		p = 16
	}
	t := &table.Table{
		Title:  fmt.Sprintf("Ablation C [fib %v]: Cilk Plus stack-pool limits at P=%d (simulated)", a, p),
		Header: []string{"limit", "Tp", "stalls", "stacks"},
	}
	for _, limit := range []int{p + 1, 2 * p, 4 * p, 2400} {
		cfg := o.simConfig(core.StrategyCilkPlus, p)
		cfg.StackLimit = limit
		r := sim.Run(cfg, s.Tree(a))
		t.Add(limit, r.Makespan, r.PoolStalls, r.StacksCreated)
	}
	return t
}

// AblationDiscipline compares the two stealing disciplines the simulator
// implements — help-first child stealing (the Go runtime's substitution)
// and work-first continuation stealing (the paper's actual Fibril) — on
// fib, including how hard the depth restriction (TBB) bites under each.
// Under work-first, deques hold *ancestor continuations*, so a blocked
// depth-restricted joiner finds almost nothing eligible: Sukha's pathology
// appears on ordinary trees.
func AblationDiscipline(o Options) *table.Table {
	o = o.withDefaults()
	s := bench.Get("fib")
	a := o.arg(s)
	m := invoke.Analyze(s.Tree(a))
	t := &table.Table{
		Title: fmt.Sprintf("Ablation D [fib %v]: stealing discipline (simulated speedup)", a),
		Header: []string{"P", "helpfirst-fibril", "workfirst-fibril",
			"helpfirst-tbb", "workfirst-tbb"},
	}
	run := func(strat core.Strategy, p int, wf bool) float64 {
		cfg := o.simConfig(strat, p)
		cfg.WorkFirst = wf
		r := sim.Run(cfg, s.Tree(a))
		return float64(m.Work) / float64(r.Makespan)
	}
	for _, p := range o.pGrid() {
		t.Add(p,
			fmt.Sprintf("%.2f", run(core.StrategyFibril, p, false)),
			fmt.Sprintf("%.2f", run(core.StrategyFibril, p, true)),
			fmt.Sprintf("%.2f", run(core.StrategyTBB, p, false)),
			fmt.Sprintf("%.2f", run(core.StrategyTBB, p, true)))
	}
	return t
}

// Predict compares the Cilkview-style burdened-analysis speedup
// prediction (internal/invoke.AnalyzeBurdened, closed form) against the
// discrete-event simulator, per benchmark across the worker grid. Close
// agreement means the simulator's behaviour follows from the work/span
// structure plus the calibrated burdens — evidence it is not overfit.
func Predict(o Options, s *bench.Spec) *table.Table {
	o = o.withDefaults()
	a := o.arg(s)
	burden := invoke.Burden{
		Fork:  8,
		Task:  8,
		Steal: 128,
	}
	bm := invoke.AnalyzeBurdened(s.Tree(a), burden)
	t := &table.Table{
		Title: fmt.Sprintf("Prediction vs simulation [%s %v]: burdened parallelism %.1f",
			s.Name, a, bm.BurdenedParallelism()),
		Header: []string{"P", "predicted", "simulated", "ratio"},
	}
	for _, p := range o.pGrid() {
		pred := bm.PredictSpeedup(p)
		r := sim.Run(o.simConfig(core.StrategyFibril, p), s.Tree(a))
		simSp := float64(bm.Work) / float64(r.Makespan)
		ratio := 0.0
		if simSp > 0 {
			ratio = pred / simSp
		}
		t.Add(p, fmt.Sprintf("%.2f", pred), fmt.Sprintf("%.2f", simSp),
			fmt.Sprintf("%.2f", ratio))
	}
	return t
}

// CountersSmoke runs every benchmark on the REAL runtime at the host's
// worker count and reports the live scheduler counters — the cross-check
// that the real runtime and the simulator tell the same story.
func CountersSmoke(o Options) *table.Table {
	o = o.withDefaults()
	workers := o.Workers
	if workers == 0 {
		// Force real concurrency even on a 1-CPU host: goroutine
		// interleaving still produces steals and suspensions.
		workers = 8
	}
	t := &table.Table{
		Title: "Real-runtime scheduler counters (Fibril strategy)",
		Header: []string{"benchmark", "workers", "forks", "steals",
			"suspends", "unmaps", "stacks", "faults"},
	}
	for _, s := range o.specs() {
		a := s.Default
		rt := o.newRuntime(core.Config{
			Workers: workers, Strategy: core.StrategyFibril, StackPages: 4096,
		})
		rt.Run(func(w *core.W) { s.Parallel(w, a) })
		st := rt.Stats()
		t.Add(s.Name, st.Workers, st.Forks, st.Steals, st.Suspends,
			st.Unmaps, st.StacksCreated, st.VM.PageFaults)
	}
	return t
}
