package exper

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"fibril/internal/core"
	"fibril/internal/table"
)

// The submitpath experiment: serving-intake throughput as the submitter
// count grows, sharded CAS pipeline vs the single-mutex PR 8 baseline.
// Two lanes isolate the two costs that matter:
//
//   - the SHED lane saturates MaxInflight with blocker jobs under
//     AdmitShed, so every measured Submit resolves on the submitter's own
//     goroutine — no scheduling, no completion machinery, just the intake
//     path itself (admission decision, Job acquisition, result publish).
//     This is the lane the ≥3× CI gate reads: it measures per-op submit
//     work, so the ratio is host- and core-count-independent.
//   - the QUEUE lane is the end-to-end closed loop (Submit, wait,
//     Release) under unbounded admission, with both a noop root and a
//     small fork-join root (fib 10), showing what the intake win is worth
//     once real scheduling sits behind it.
//
// Allocations per Submit come from the process-wide malloc counter over
// the measured region, so they include everything the path touches —
// the pooled fast lane must keep the shed figure at zero.

// SubmitPathRow is one measurement, shaped for -json and the committed
// results/BENCH_submitpath.json.
type SubmitPathRow struct {
	Intake      string  `json:"intake"` // sharded | mutex
	Lane        string  `json:"lane"`   // shed | queue
	Root        string  `json:"root"`   // noop | fib10
	Submitters  int     `json:"submitters"`
	Workers     int     `json:"p"`
	Requests    int     `json:"requests"` // measured submissions
	JobsPerSec  float64 `json:"jobs_per_sec"`
	NsPerSubmit float64 `json:"ns_per_submit"`
	AllocsPerOp float64 `json:"allocs_per_submit"`
	Submitted   int64   `json:"submitted"`
	Admitted    int64   `json:"admitted"`
	Completed   int64   `json:"completed"`
	Shed        int64   `json:"shed"`
	Drained     int64   `json:"drained"`
}

// submitFibExper is the queue lane's fork-join root (~170 tasks).
func submitFibExper(w *core.W, n int, out *int64) {
	if n < 2 {
		*out = int64(n)
		return
	}
	var fr core.Frame
	w.Init(&fr)
	var a, b int64
	w.Fork(&fr, func(w *core.W) { submitFibExper(w, n-1, &a) })
	w.Call(func(w *core.W) { submitFibExper(w, n-2, &b) })
	w.Join(&fr)
	*out = a + b
}

func submitNoop(*core.W) {}

func submitFib10(w *core.W) {
	var out int64
	submitFibExper(w, 10, &out)
}

// submitPathLeg runs one (intake, lane, root, submitters) cell: reps
// timed passes of total submissions split over k submitter goroutines,
// keeping the best pass for the rate (the usual best-of-N discipline for
// microbenchmarks) and the malloc delta of the LAST pass for allocs/op
// (pools are warmest there).
func submitPathLeg(o Options, intake core.IntakeKind, lane string, rootName string,
	k, workers, total, reps int) SubmitPathRow {

	root := submitNoop
	if rootName == "fib10" {
		root = submitFib10
	}
	m := total / k
	cfg := core.Config{Workers: workers, Intake: intake}
	shed := lane == "shed"
	if shed {
		cfg.MaxInflight = workers
		cfg.Admission = core.AdmitShed
	}
	rt := o.newRuntime(cfg)
	rt.Start()
	var gate chan struct{}
	var blockers []*core.Job
	if shed {
		// Saturate admission so every measured Submit sheds
		// deterministically on the caller's goroutine.
		gate = make(chan struct{})
		for i := 0; i < workers; i++ {
			blockers = append(blockers, rt.Submit(func(*core.W) { <-gate }))
		}
		if err := rt.Submit(submitNoop).Err(); err != core.ErrShed {
			panic(fmt.Sprintf("exper: submitpath shed probe: got %v, want ErrShed", err))
		}
	}

	pass := func() (time.Duration, uint64) {
		var wg sync.WaitGroup
		start := make(chan struct{})
		for s := 0; s < k; s++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < m; i++ {
					j := rt.Submit(root)
					if err := j.Err(); shed && err != core.ErrShed {
						panic(fmt.Sprintf("exper: submitpath shed lane: got %v", err))
					} else if !shed && err != nil {
						panic(fmt.Sprintf("exper: submitpath queue lane: %v", err))
					}
					j.Release()
				}
			}()
		}
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		t0 := time.Now()
		close(start)
		wg.Wait()
		el := time.Since(t0)
		runtime.ReadMemStats(&ms1)
		return el, ms1.Mallocs - ms0.Mallocs
	}

	// Warm the Job pools and the worker set outside the measurement.
	warm := total / 4
	if warm > 512 {
		warm = 512
	}
	for i := 0; i < warm; i++ {
		j := rt.Submit(root)
		j.Err()
		j.Release()
	}

	best := time.Duration(0)
	var mallocs uint64
	for r := 0; r < reps; r++ {
		el, ma := pass()
		if best == 0 || el < best {
			best = el
		}
		mallocs = ma
	}

	if shed {
		close(gate)
		for _, b := range blockers {
			if err := b.Err(); err != nil {
				panic(fmt.Sprintf("exper: submitpath blocker: %v", err))
			}
		}
	}
	if err := rt.Close(context.Background()); err != nil {
		panic(fmt.Sprintf("exper: submitpath close: %v", err))
	}
	st := rt.Stats()
	ops := k * m
	return SubmitPathRow{
		Intake:      intake.String(),
		Lane:        lane,
		Root:        rootName,
		Submitters:  k,
		Workers:     workers,
		Requests:    ops,
		JobsPerSec:  float64(ops) / best.Seconds(),
		NsPerSubmit: float64(best.Nanoseconds()) / float64(ops),
		AllocsPerOp: float64(mallocs) / float64(ops),
		Submitted:   st.JobsSubmitted,
		Admitted:    st.JobsAdmitted,
		Completed:   st.JobsCompleted,
		Shed:        st.JobsShed,
		Drained:     st.JobsDrained,
	}
}

// SubmitPath runs the full sweep and renders the table. Row order is the
// sweep order: lane, then intake, then root, then submitter count.
func SubmitPath(o Options) ([]SubmitPathRow, *table.Table) {
	o = o.withDefaults()
	workers := o.Workers
	if workers == 0 {
		workers = 4
	}
	total, reps := 16384, 3
	if o.Full {
		total, reps = 65536, 5
	}
	submitters := []int{1, 2, 4, 8, 16}

	t := &table.Table{
		Title: fmt.Sprintf("Submit path: intake throughput at P=%d (%d submissions/pass, best of %d)",
			workers, total, reps),
		Header: []string{"lane", "intake", "root", "submitters", "jobs/s", "ns/submit", "allocs/submit"},
	}
	var rows []SubmitPathRow
	for _, lane := range []string{"shed", "queue"} {
		for _, intake := range core.IntakeKinds() {
			for _, rootName := range []string{"noop", "fib10"} {
				if lane == "shed" && rootName == "fib10" {
					// Shed roots never run; the root shape is irrelevant.
					continue
				}
				for _, k := range submitters {
					row := submitPathLeg(o, intake, lane, rootName, k, workers, total, reps)
					rows = append(rows, row)
					t.Rows = append(t.Rows, []string{
						row.Lane, row.Intake, row.Root, fmt.Sprint(row.Submitters),
						fmt.Sprintf("%.0f", row.JobsPerSec),
						fmt.Sprintf("%.0f", row.NsPerSubmit),
						fmt.Sprintf("%.2f", row.AllocsPerOp),
					})
				}
			}
		}
	}
	return rows, t
}
