package exper

import (
	"fmt"
	"runtime"

	"fibril/internal/bench"
	"fibril/internal/core"
	"fibril/internal/sim"
	"fibril/internal/table"
)

// StealPolicyRow is one measurement of the steal-policy experiment, shaped
// for machine consumption (-json). Real rows (Kind "real", P=4 on the
// relaxed deque) carry the per-fork wall cost and the arena's remote-free
// counters — the policies must not regress the zero-allocation fork path.
// Sim rows (Kind "sim", P=72 under the cache-complexity cost model) carry
// the makespan and the warm/cold steal split that the locality policies
// exist to improve: an affinity policy earns its keep by re-hitting warm
// victims (WarmSteals up, ColdSteals down), not by shortening fib's
// critical path, where steals are off the critical path and random is
// already near-optimal.
type StealPolicyRow struct {
	Kind            string  `json:"kind"` // "real" or "sim"
	Benchmark       string  `json:"benchmark"`
	Policy          string  `json:"policy"`
	Workers         int     `json:"p"`
	NsPerFork       float64 `json:"ns_op,omitempty"`
	Makespan        int64   `json:"makespan,omitempty"`
	SpeedupVsRandom float64 `json:"speedup_vs_random,omitempty"`
	Steals          int64   `json:"steals"`
	WarmSteals      int64   `json:"warm_steals"`
	ColdSteals      int64   `json:"cold_steals"`
	RemoteFrees     int64   `json:"remote_frees"`
	RemoteDrains    int64   `json:"remote_drains"`
	ArenaDrops      int64   `json:"arena_drops"`
}

// stealPolicyBenches are the steal-heavy workloads of the policy
// comparison: fine-grained fib and the irregular nqueens tree.
var stealPolicyBenches = []string{"fib", "nqueens"}

// StealPolicy measures every steal policy on both vehicles: the real
// runtime at P=4 on the relaxed deque (per-fork cost plus arena traffic),
// and the deterministic simulator at P=72 under the cache-complexity cost
// model (StealCold/StealWarm/NearHop), where the policy differences are
// demonstrable regardless of the host's core count. Policies are modelled
// in the help-first engine, so the sim legs always run help-first.
func StealPolicy(o Options) ([]StealPolicyRow, *table.Table) {
	o = o.withDefaults()
	workers := o.Workers
	if workers == 0 {
		workers = 4
	}
	const simP = 72
	t := &table.Table{
		Title: "Steal policies: real fork path (P=4, relaxed deque) and simulated cache behaviour (P=72)",
		Header: []string{"kind", "benchmark", "policy", "P", "ns/fork", "makespan",
			"vs-random", "steals", "warm", "cold", "remoteFrees", "drops"},
	}
	var rows []StealPolicyRow
	for _, name := range stealPolicyBenches {
		if len(o.Benches) > 0 && !benchListed(o.Benches, name) {
			continue
		}
		s := bench.Get(name)
		a := s.Default
		for _, pol := range core.StealPolicies() {
			rt := o.newRuntime(core.Config{
				Workers: workers, Deque: core.DequeRelaxed, StealPolicy: pol,
				StackPages: 4096,
			})
			rt.Run(func(w *core.W) { s.Parallel(w, a) }) // warm
			st0 := rt.Stats()
			runtime.GC()
			summary := timeIt(o.Reps, func() {
				rt.Run(func(w *core.W) { s.Parallel(w, a) })
			})
			st := rt.Stats()
			reps := int64(o.Reps)
			forksPerRun := (st.Forks - st0.Forks) / reps
			if forksPerRun == 0 {
				forksPerRun = 1
			}
			row := StealPolicyRow{
				Kind:         "real",
				Benchmark:    name,
				Policy:       pol.String(),
				Workers:      workers,
				NsPerFork:    summary.Mean * 1e9 / float64(forksPerRun),
				Steals:       (st.Steals - st0.Steals) / reps,
				RemoteFrees:  (st.RemoteFrees - st0.RemoteFrees) / reps,
				RemoteDrains: (st.RemoteDrains - st0.RemoteDrains) / reps,
				ArenaDrops:   (st.ArenaDrops - st0.ArenaDrops) / reps,
			}
			rows = append(rows, row)
			t.Add(row.Kind, row.Benchmark, row.Policy, row.Workers,
				int64(row.NsPerFork), "", "", row.Steals, "", "",
				row.RemoteFrees, row.ArenaDrops)
		}
		var randomMakespan int64
		for _, pol := range core.StealPolicies() {
			r := sim.Run(sim.Config{
				Workers: simP, Strategy: core.StrategyFibril,
				StealPolicy: pol, // help-first engine: WorkFirst stays false
			}, s.Tree(a))
			if pol == core.StealRandom {
				randomMakespan = r.Makespan
			}
			speedup := 0.0
			if r.Makespan > 0 {
				speedup = float64(randomMakespan) / float64(r.Makespan)
			}
			row := StealPolicyRow{
				Kind:            "sim",
				Benchmark:       name,
				Policy:          pol.String(),
				Workers:         simP,
				Makespan:        r.Makespan,
				SpeedupVsRandom: speedup,
				Steals:          r.Steals,
				WarmSteals:      r.WarmSteals,
				ColdSteals:      r.ColdSteals,
			}
			rows = append(rows, row)
			t.Add(row.Kind, row.Benchmark, row.Policy, row.Workers, "",
				row.Makespan, floatCell(row.SpeedupVsRandom), row.Steals,
				row.WarmSteals, row.ColdSteals, "", "")
		}
	}
	return rows, t
}

func floatCell(x float64) string {
	if x == 0 {
		return ""
	}
	return fmt.Sprintf("%.2f", x)
}
