package exper

import (
	"fmt"
	"strings"
	"testing"

	"fibril/internal/bench"
	"fibril/internal/table"
)

// fastOpts restricts experiments to one small benchmark and one timing rep
// so the full driver stack is exercised quickly.
func fastOpts() Options {
	return Options{Reps: 1, Benches: []string{"cholesky"}}
}

func rowCount(t *table.Table) int { return len(t.Rows) }

func TestFig3ProducesRatios(t *testing.T) {
	tb := Fig3(fastOpts())
	if rowCount(tb) != 1 {
		t.Fatalf("rows = %d, want 1", rowCount(tb))
	}
	if len(tb.Rows[0]) != 7 {
		t.Fatalf("columns = %d, want 7", len(tb.Rows[0]))
	}
	if tb.Rows[0][0] != "cholesky" {
		t.Errorf("row names %v", tb.Rows[0])
	}
}

func TestFig4GridMatchesOptions(t *testing.T) {
	o := fastOpts()
	tb := Fig4(o, specOf(t, "cholesky"))
	if rowCount(tb) != len(o.pGrid()) {
		t.Fatalf("rows = %d, want %d", rowCount(tb), len(o.pGrid()))
	}
	if !strings.Contains(tb.Title, "cholesky") {
		t.Errorf("title %q", tb.Title)
	}
}

func TestTablesProduceOneRowPerBench(t *testing.T) {
	o := fastOpts()
	for name, tb := range map[string]*table.Table{
		"table2": Table2(o), "table3": Table3(o), "table4": Table4(o),
	} {
		if rowCount(tb) != 1 {
			t.Errorf("%s rows = %d, want 1", name, rowCount(tb))
		}
	}
}

func TestTable3BoundHolds(t *testing.T) {
	tb := Table3(fastOpts())
	last := tb.Rows[0][len(tb.Rows[0])-1]
	if last != "true" {
		t.Errorf("Theorem 4.2 bound column = %q, want true", last)
	}
}

func TestAblationsRun(t *testing.T) {
	o := fastOpts()
	if rowCount(AblationMMap(o)) == 0 {
		t.Error("mmap ablation empty")
	}
	if rowCount(AblationDepthRestricted(o)) == 0 {
		t.Error("depth ablation empty")
	}
	if rowCount(AblationStackPool(o)) != 4 {
		t.Error("pool ablation should sweep four limits")
	}
}

func TestCountersSmokeForcesConcurrency(t *testing.T) {
	tb := CountersSmoke(fastOpts())
	if rowCount(tb) != 1 {
		t.Fatalf("rows = %d", rowCount(tb))
	}
	if tb.Rows[0][1] == "1" {
		t.Errorf("counters smoke ran with 1 worker; want forced concurrency")
	}
}

func TestUnknownBenchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unknown benchmark")
		}
	}()
	Fig3(Options{Benches: []string{"nope"}, Reps: 1})
}

func specOf(t *testing.T, name string) *bench.Spec {
	t.Helper()
	for _, s := range (Options{Benches: []string{name}}).specs() {
		return s
	}
	t.Fatal("missing spec")
	return nil
}

func TestPredictAgreesWithSimulatorWithinFactor(t *testing.T) {
	// The closed-form prediction and the simulation should agree within a
	// small factor on a well-behaved tree at moderate P.
	o := Options{Reps: 1}
	tb := Predict(o, specOf(t, "fft"))
	for _, row := range tb.Rows {
		pred, sim := row[1], row[2]
		var p, s float64
		fmt.Sscanf(pred, "%f", &p)
		fmt.Sscanf(sim, "%f", &s)
		if s == 0 {
			t.Fatalf("zero simulated speedup in row %v", row)
		}
		if r := p / s; r < 0.3 || r > 3.0 {
			t.Errorf("P=%s: prediction %.2f vs simulation %.2f (ratio %.2f) outside [0.3,3]",
				row[0], p, s, r)
		}
	}
}

func TestForkPathRowsAndSpeedups(t *testing.T) {
	// Small subset: fib's two fork paths plus the loop legs, one rep.
	rows, tb := ForkPath(Options{Reps: 1, Benches: []string{"fib", "for-loop"}})
	if rowCount(tb) != 4 || len(rows) != 4 {
		t.Fatalf("rows = %d/%d, want 4 (fib closure+forkarg, loop eager+lazy)", len(rows), rowCount(tb))
	}
	byMode := map[string]ForkPathRow{}
	for _, r := range rows {
		byMode[r.Benchmark+"/"+r.Mode] = r
		if r.NsPerOp <= 0 {
			t.Errorf("%s/%s: ns_op = %v", r.Benchmark, r.Mode, r.NsPerOp)
		}
	}
	// The forkarg path must not allocate once the arena is warm; closures
	// allocate several times per fork.
	fa := byMode["fib/forkarg"]
	if fa.AllocsPerOp > 0.5 {
		t.Errorf("fib/forkarg allocs_op = %.2f, want ~0", fa.AllocsPerOp)
	}
	if cl := byMode["fib/closure"]; cl.AllocsPerOp < 1 {
		t.Errorf("fib/closure allocs_op = %.2f, want >= 1 (did the baseline change?)", cl.AllocsPerOp)
	}
	if fa.SpeedupVsClosure <= 0 {
		t.Errorf("fib/forkarg speedup_vs_closure unset")
	}
	// Lazy splitting must fork dramatically less than the eager baseline
	// when nobody is stealing.
	eager, lazy := byMode["for-loop/eager"], byMode["for-loop/lazy"]
	if eager.Forks == 0 || lazy.Forks*16 > eager.Forks {
		t.Errorf("lazy forks %d vs eager %d: want lazy << eager", lazy.Forks, eager.Forks)
	}
}
