package exper

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"fibril/internal/bench"
	"fibril/internal/core"
	"fibril/internal/table"
)

// fastOpts restricts experiments to one small benchmark and one timing rep
// so the full driver stack is exercised quickly.
func fastOpts() Options {
	return Options{Reps: 1, Benches: []string{"cholesky"}}
}

func rowCount(t *table.Table) int { return len(t.Rows) }

func TestFig3ProducesRatios(t *testing.T) {
	tb := Fig3(fastOpts())
	if rowCount(tb) != 1 {
		t.Fatalf("rows = %d, want 1", rowCount(tb))
	}
	if len(tb.Rows[0]) != 7 {
		t.Fatalf("columns = %d, want 7", len(tb.Rows[0]))
	}
	if tb.Rows[0][0] != "cholesky" {
		t.Errorf("row names %v", tb.Rows[0])
	}
}

func TestFig4GridMatchesOptions(t *testing.T) {
	o := fastOpts()
	tb := Fig4(o, specOf(t, "cholesky"))
	if rowCount(tb) != len(o.pGrid()) {
		t.Fatalf("rows = %d, want %d", rowCount(tb), len(o.pGrid()))
	}
	if !strings.Contains(tb.Title, "cholesky") {
		t.Errorf("title %q", tb.Title)
	}
}

func TestTablesProduceOneRowPerBench(t *testing.T) {
	o := fastOpts()
	for name, tb := range map[string]*table.Table{
		"table2": Table2(o), "table3": Table3(o), "table4": Table4(o),
	} {
		if rowCount(tb) != 1 {
			t.Errorf("%s rows = %d, want 1", name, rowCount(tb))
		}
	}
}

func TestTable3BoundHolds(t *testing.T) {
	tb := Table3(fastOpts())
	last := tb.Rows[0][len(tb.Rows[0])-1]
	if last != "true" {
		t.Errorf("Theorem 4.2 bound column = %q, want true", last)
	}
}

func TestAblationsRun(t *testing.T) {
	o := fastOpts()
	if rowCount(AblationMMap(o)) == 0 {
		t.Error("mmap ablation empty")
	}
	if rowCount(AblationDepthRestricted(o)) == 0 {
		t.Error("depth ablation empty")
	}
	if rowCount(AblationStackPool(o)) != 4 {
		t.Error("pool ablation should sweep four limits")
	}
}

func TestCountersSmokeForcesConcurrency(t *testing.T) {
	tb := CountersSmoke(fastOpts())
	if rowCount(tb) != 1 {
		t.Fatalf("rows = %d", rowCount(tb))
	}
	if tb.Rows[0][1] == "1" {
		t.Errorf("counters smoke ran with 1 worker; want forced concurrency")
	}
}

func TestUnknownBenchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unknown benchmark")
		}
	}()
	Fig3(Options{Benches: []string{"nope"}, Reps: 1})
}

func specOf(t *testing.T, name string) *bench.Spec {
	t.Helper()
	for _, s := range (Options{Benches: []string{name}}).specs() {
		return s
	}
	t.Fatal("missing spec")
	return nil
}

// TestStealPathThreeWay pins the steal-path experiment's shape after the
// relaxed deque joined the matrix: two strategies × every deque kind ×
// two worker counts (the P=1 owner-path rows and the contended default),
// with duplicate extractions possible only on the relaxed kind and never
// at P=1. With FIBRIL_STEALPATH_SMOKE=1 (the CI perf smoke) it
// additionally asserts the headline property: the fence-free relaxed
// owner path is not slower than THE's at P=1.
func TestStealPathThreeWay(t *testing.T) {
	smoke := os.Getenv("FIBRIL_STEALPATH_SMOKE") != ""
	reps := 1
	if smoke {
		reps = 5 // timing comparison needs averaging; shape checks don't
	}
	rows, tb := StealPath(Options{Reps: reps, Benches: []string{"fib"}})
	wantRows := 2 * len(core.DequeKinds()) * 2 // strategies × kinds × {1, P}
	if len(rows) != wantRows || rowCount(tb) != wantRows {
		t.Fatalf("rows = %d (table %d), want %d", len(rows), rowCount(tb), wantRows)
	}
	owner := map[string]float64{} // deque → P=1 ns/fork under the fibril strategy
	for _, r := range rows {
		if r.NsPerFork <= 0 {
			t.Errorf("%s/%s/P=%d: ns_op = %v", r.Strategy, r.Deque, r.Workers, r.NsPerFork)
		}
		if r.Workers == 1 && (r.Steals != 0 || r.DupExtractions != 0) {
			t.Errorf("%s/%s at P=1: steals=%d dups=%d, want 0 (no thieves exist)",
				r.Strategy, r.Deque, r.Steals, r.DupExtractions)
		}
		if r.Deque != core.DequeRelaxed.String() && r.DupExtractions != 0 {
			t.Errorf("%s/%s: dup_extractions=%d on a linearizable deque",
				r.Strategy, r.Deque, r.DupExtractions)
		}
		if r.Workers == 1 && r.Strategy == core.StrategyFibril.String() {
			owner[r.Deque] = r.NsPerFork
		}
	}
	if !smoke {
		return
	}
	the := owner[core.DequeTHE.String()]
	relaxed := owner[core.DequeRelaxed.String()]
	if the == 0 || relaxed == 0 {
		t.Fatalf("missing owner-path rows: the=%v relaxed=%v", the, relaxed)
	}
	// 5% slack absorbs shared-CI timer noise; the steady-state gap measured
	// in results/BENCH_stealpath.json is far wider than that.
	if relaxed > the*1.05 {
		t.Errorf("relaxed owner path %.0f ns/fork slower than THE %.0f ns/fork", relaxed, the)
	}
	t.Logf("owner path ns/fork: the=%.0f chaselev=%.0f relaxed=%.0f",
		the, owner[core.DequeChaseLev.String()], relaxed)
}

func TestStealPolicyRowsAndLocalityGate(t *testing.T) {
	rows, tb := StealPolicy(Options{Reps: 1, Benches: []string{"fib"}})
	wantRows := 2 * len(core.StealPolicies()) // real + sim per policy
	if len(rows) != wantRows || rowCount(tb) != wantRows {
		t.Fatalf("rows = %d (table %d), want %d", len(rows), rowCount(tb), wantRows)
	}
	var random, lastVictim StealPolicyRow
	for _, r := range rows {
		switch r.Kind {
		case "real":
			if r.NsPerFork <= 0 {
				t.Errorf("real/%s: ns_op = %v", r.Policy, r.NsPerFork)
			}
		case "sim":
			if r.Workers != 72 || r.Makespan <= 0 {
				t.Errorf("sim/%s: P=%d makespan=%d", r.Policy, r.Workers, r.Makespan)
			}
			switch r.Policy {
			case core.StealRandom.String():
				random = r
			case core.StealLastVictim.String():
				lastVictim = r
			}
		default:
			t.Errorf("row has unknown kind %q", r.Kind)
		}
	}
	// The deterministic locality gate on the canonical affinity policy:
	// fewer cold raids, a higher warm fraction, makespan within 10% of
	// random. The simulator is seeded, so these are exact reruns of the
	// committed BENCH_stealpolicy.json legs.
	if lastVictim.ColdSteals > random.ColdSteals {
		t.Errorf("lastvictim cold raids %d > random's %d", lastVictim.ColdSteals, random.ColdSteals)
	}
	if lastVictim.WarmSteals <= random.WarmSteals {
		t.Errorf("lastvictim warm raids %d not above random's %d", lastVictim.WarmSteals, random.WarmSteals)
	}
	if float64(lastVictim.Makespan) > 1.10*float64(random.Makespan) {
		t.Errorf("lastvictim makespan %d exceeds 110%% of random's %d", lastVictim.Makespan, random.Makespan)
	}
}

func TestPredictAgreesWithSimulatorWithinFactor(t *testing.T) {
	// The closed-form prediction and the simulation should agree within a
	// small factor on a well-behaved tree at moderate P.
	o := Options{Reps: 1}
	tb := Predict(o, specOf(t, "fft"))
	for _, row := range tb.Rows {
		pred, sim := row[1], row[2]
		var p, s float64
		fmt.Sscanf(pred, "%f", &p)
		fmt.Sscanf(sim, "%f", &s)
		if s == 0 {
			t.Fatalf("zero simulated speedup in row %v", row)
		}
		if r := p / s; r < 0.3 || r > 3.0 {
			t.Errorf("P=%s: prediction %.2f vs simulation %.2f (ratio %.2f) outside [0.3,3]",
				row[0], p, s, r)
		}
	}
}

func TestForkPathRowsAndSpeedups(t *testing.T) {
	// Small subset: fib's two fork paths plus the loop legs, one rep.
	rows, tb := ForkPath(Options{Reps: 1, Benches: []string{"fib", "for-loop"}})
	if rowCount(tb) != 4 || len(rows) != 4 {
		t.Fatalf("rows = %d/%d, want 4 (fib closure+forkarg, loop eager+lazy)", len(rows), rowCount(tb))
	}
	byMode := map[string]ForkPathRow{}
	for _, r := range rows {
		byMode[r.Benchmark+"/"+r.Mode] = r
		if r.NsPerOp <= 0 {
			t.Errorf("%s/%s: ns_op = %v", r.Benchmark, r.Mode, r.NsPerOp)
		}
	}
	// The forkarg path must not allocate once the arena is warm; closures
	// allocate several times per fork.
	fa := byMode["fib/forkarg"]
	if fa.AllocsPerOp > 0.5 {
		t.Errorf("fib/forkarg allocs_op = %.2f, want ~0", fa.AllocsPerOp)
	}
	if cl := byMode["fib/closure"]; cl.AllocsPerOp < 1 {
		t.Errorf("fib/closure allocs_op = %.2f, want >= 1 (did the baseline change?)", cl.AllocsPerOp)
	}
	if fa.SpeedupVsClosure <= 0 {
		t.Errorf("fib/forkarg speedup_vs_closure unset")
	}
	// Lazy splitting must fork dramatically less than the eager baseline
	// when nobody is stealing.
	eager, lazy := byMode["for-loop/eager"], byMode["for-loop/lazy"]
	if eager.Forks == 0 || lazy.Forks*16 > eager.Forks {
		t.Errorf("lazy forks %d vs eager %d: want lazy << eager", lazy.Forks, eager.Forks)
	}
}

// TestSubmitPathShedLane runs the submitpath experiment's gate lane at
// unit-test scale on both intake pipelines: the shed lane must be
// deterministic (every measured submission shed), conservation must hold
// on the row's own counters, and the sharded pipeline must stay within
// its ≤2 allocs/Submit budget. The timing ratio itself is gated by the
// CI smoke over the full-scale JSON, not here.
func TestSubmitPathShedLane(t *testing.T) {
	for _, intake := range core.IntakeKinds() {
		intake := intake
		t.Run(intake.String(), func(t *testing.T) {
			row := submitPathLeg(Options{}.withDefaults(), intake, "shed", "noop", 8, 4, 2048, 2)
			if row.Shed < int64(row.Requests) {
				t.Fatalf("shed=%d < requests=%d: lane not deterministic", row.Shed, row.Requests)
			}
			if row.Submitted != row.Shed+row.Drained+row.Completed {
				t.Fatalf("conservation: submitted=%d != shed=%d + drained=%d + completed=%d",
					row.Submitted, row.Shed, row.Drained, row.Completed)
			}
			if row.Admitted != row.Completed {
				t.Fatalf("admitted=%d != completed=%d", row.Admitted, row.Completed)
			}
			if intake == core.IntakeSharded && row.AllocsPerOp > 2 {
				t.Fatalf("sharded shed lane allocates %.2f/submit, want <= 2", row.AllocsPerOp)
			}
			if row.JobsPerSec <= 0 {
				t.Fatalf("JobsPerSec=%f", row.JobsPerSec)
			}
		})
	}
}
