package exper

import (
	"runtime"

	"fibril/internal/bench"
	"fibril/internal/core"
	"fibril/internal/table"
)

// StealPathRow is one measurement of the steal-path experiment, shaped for
// machine consumption (-json): per-fork wall cost on the real runtime plus
// the steal counters that expose thief contention and idle burn.
type StealPathRow struct {
	Benchmark      string  `json:"benchmark"`
	Strategy       string  `json:"strategy"`
	Deque          string  `json:"deque"`
	Workers        int     `json:"p"`
	NsPerFork      float64 `json:"ns_op"`
	Steals         int64   `json:"steals"`
	StealAttempts  int64   `json:"steal_attempts"`
	DupExtractions int64   `json:"dup_extractions"`
}

// stealPathBenches are steal-heavy workloads: fine-grained fib and the
// irregular nqueens tree keep every thief busy probing.
var stealPathBenches = []string{"fib", "nqueens"}

// StealPath measures the fork/steal hot path of the real runtime across
// strategy × deque-kind combinations: a suspending strategy (Fibril, the
// plain Steal path) and an inline-stealing one (TBB, the StealIf path),
// each on every deque kind (THE, Chase–Lev, and the fence-free relaxed
// deque). Two worker counts are measured per combination: P=1 isolates
// the owner's fork+pop fast path — the quantity the relaxed deque's
// fence-free protocol targets — and P=workers layers thief contention on
// top. The per-fork nanosecond cost is the Figure 3 quantity; steals,
// stealAttempts and dupExtractions make contention, idle-thief burn and
// the relaxed deque's multiplicity visible run over run.
func StealPath(o Options) ([]StealPathRow, *table.Table) {
	o = o.withDefaults()
	workers := o.Workers
	if workers == 0 {
		// The steal path only contends with P >= 4 thieves; goroutine
		// interleaving exercises it even on small hosts.
		workers = 4
	}
	pSet := []int{1, workers}
	if workers == 1 {
		pSet = []int{1}
	}
	t := &table.Table{
		Title: "Steal path: per-fork cost and steal counters (real runtime)",
		Header: []string{"benchmark", "strategy", "deque", "P", "ns/fork",
			"steals", "stealAttempts", "dupExtractions"},
	}
	var rows []StealPathRow
	for _, name := range stealPathBenches {
		if len(o.Benches) > 0 && !benchListed(o.Benches, name) {
			continue
		}
		s := bench.Get(name)
		a := s.Default
		for _, strat := range []core.Strategy{core.StrategyFibril, core.StrategyTBB} {
			for _, kind := range core.DequeKinds() {
				for _, p := range pSet {
					rt := o.newRuntime(core.Config{
						Workers: p, Strategy: strat, Deque: kind,
						StackPages: 4096,
					})
					// One untimed run warms the stack pool and the code
					// paths, and a GC barrier stops the previous leg's
					// garbage from being collected on this leg's clock —
					// the sub-10% gaps between deque kinds drown without
					// both.
					rt.Run(func(w *core.W) { s.Parallel(w, a) })
					st0 := rt.Stats()
					runtime.GC()
					summary := timeIt(o.Reps, func() {
						rt.Run(func(w *core.W) { s.Parallel(w, a) })
					})
					// Counters accumulate across all runs on one Runtime;
					// report per-timed-run values, warm-up excluded.
					st := rt.Stats()
					reps := int64(o.Reps)
					forksPerRun := (st.Forks - st0.Forks) / reps
					if forksPerRun == 0 {
						forksPerRun = 1
					}
					row := StealPathRow{
						Benchmark:      name,
						Strategy:       strat.String(),
						Deque:          kind.String(),
						Workers:        p,
						NsPerFork:      summary.Mean * 1e9 / float64(forksPerRun),
						Steals:         (st.Steals - st0.Steals) / reps,
						StealAttempts:  (st.StealAttempts - st0.StealAttempts) / reps,
						DupExtractions: (st.DuplicateExtractions - st0.DuplicateExtractions) / reps,
					}
					rows = append(rows, row)
					t.Add(row.Benchmark, row.Strategy, row.Deque, row.Workers,
						int64(row.NsPerFork), row.Steals, row.StealAttempts,
						row.DupExtractions)
				}
			}
		}
	}
	return rows, t
}

func benchListed(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
