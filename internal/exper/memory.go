package exper

import (
	"fibril/internal/bench"
	"fibril/internal/core"
	"fibril/internal/invoke"
	"fibril/internal/table"
	"fibril/internal/vm"
)

// MemoryRow is one measurement of the memory-pressure-engine experiment,
// shaped for machine consumption (-json): eager vs coalesced unmap on
// RSS, madvise traffic and wall time, plus the engine counters that make
// the batching and ceiling behaviour auditable run over run.
type MemoryRow struct {
	Benchmark      string  `json:"benchmark"`
	Mode           string  `json:"mode"` // eager | coalesced | ceiling
	Workers        int     `json:"p"`
	UnmapBatch     int     `json:"unmap_batch"`
	CeilingPages   int64   `json:"ceiling_pages"`
	NsPerOp        float64 `json:"ns_op"`
	MaxRSSPages    int64   `json:"max_rss_pages"`
	MadviseCalls   int64   `json:"madvise_calls"`
	Unmaps         int64   `json:"unmaps"`
	Suspends       int64   `json:"suspends"`
	UnmapBatches   int64   `json:"unmap_batches"`
	ReclaimCancels int64   `json:"reclaim_cancels"`
	ReclaimSkips   int64   `json:"reclaim_skips"`
	CeilingHits    int64   `json:"ceiling_hits"`
	ReclaimedPages int64   `json:"reclaimed_pages"`
	StacksCreated  int     `json:"stacks_created"`
	EnvelopePages  int64   `json:"envelope_pages"`
	WithinEnvelope bool    `json:"within_envelope"`
}

// memoryBenches is the workload set. The unmap path only runs on
// join-side suspensions, which need live steals; on a 1-CPU host (where
// workers are interleaved goroutines) fib's pure fork/join grain is the
// one Table-1 workload whose steal rate survives — the others suspend
// zero-to-twice per run there, which would only add noise rows.
var memoryBenches = []string{"fib"}

// memoryIters runs the workload several times inside each timed rep so
// the per-rep suspend (and hence madvise) counts are large enough that
// the eager-vs-coalesced ratio is signal, not scheduling luck.
const memoryIters = 5

// memoryMode is one engine configuration of the experiment matrix.
type memoryMode struct {
	name    string
	batch   int
	ceiling int64
}

// Memory measures the memory-pressure engine on the real runtime: for
// each benchmark it runs the Fibril strategy with eager per-suspend
// unmap, with coalesced unmap (UnmapBatch=8), and with coalescing plus a
// soft RSS ceiling, reporting max RSS, madvise-call counts and wall
// time. The (D+1)(S1p+1) per-stack envelope from the paper's space bound
// is checked on every row: StacksCreated stacks, each within its
// envelope, bound total stack RSS regardless of when madvise runs.
func Memory(o Options) ([]MemoryRow, *table.Table) {
	o = o.withDefaults()
	workers := o.Workers
	if workers == 0 {
		// The acceptance measurement is the 4-worker point: enough
		// thieves that suspensions (and hence unmaps) are plentiful.
		workers = 4
	}
	t := &table.Table{
		Title: "Memory engine: eager vs coalesced unmap (real runtime)",
		Header: []string{"benchmark", "mode", "P", "batch", "ns/op",
			"maxRSS", "madvise", "unmaps", "batches", "cancels", "skips",
			"ceilHits", "reclaimed", "stacks", "envelope", "ok"},
	}
	modes := []memoryMode{
		{name: "eager"},
		{name: "coalesced", batch: 8},
		{name: "ceiling", batch: 8, ceiling: 2048},
	}
	var rows []MemoryRow
	for _, name := range memoryBenches {
		if len(o.Benches) > 0 && !benchListed(o.Benches, name) {
			continue
		}
		s := bench.Get(name)
		a := s.Default
		// The per-stack envelope (D+1)(S1p+1) comes from the program's
		// serial stack depth S1 (pages) and Fibril depth D, both exact
		// properties of the invocation tree.
		m := invoke.Analyze(s.Tree(a))
		s1p := int64(vm.PageAlign(int(m.MaxStackBytes)))
		perStack := int64(m.FibrilDepth+1) * (s1p + 1)
		for _, mode := range modes {
			rt := o.newRuntime(core.Config{
				Workers: workers, Strategy: core.StrategyFibril,
				StackPages: 4096, UnmapBatch: mode.batch,
				MaxResidentPages: mode.ceiling,
			})
			summary := timeIt(o.Reps, func() {
				for i := 0; i < memoryIters; i++ {
					rt.Run(func(w *core.W) { s.Parallel(w, a) })
				}
			})
			// Counters accumulate across the reps timed runs on one
			// Runtime; report per-rep values (each covering memoryIters
			// workload iterations). MaxRSS and StacksCreated are
			// high-water marks, valid as-is.
			st := rt.Stats()
			reps := int64(o.Reps)
			envelope := int64(st.StacksCreated) * perStack
			row := MemoryRow{
				Benchmark:      name,
				Mode:           mode.name,
				Workers:        workers,
				UnmapBatch:     mode.batch,
				CeilingPages:   mode.ceiling,
				NsPerOp:        summary.Mean * 1e9 / memoryIters,
				MaxRSSPages:    st.VM.MaxRSSPages,
				MadviseCalls:   st.VM.MadviseCalls / reps,
				Unmaps:         st.Unmaps / reps,
				Suspends:       st.Suspends / reps,
				UnmapBatches:   st.UnmapBatches / reps,
				ReclaimCancels: st.ReclaimCancels / reps,
				ReclaimSkips:   st.ReclaimSkips / reps,
				CeilingHits:    st.CeilingHits / reps,
				ReclaimedPages: st.ReclaimedPages / reps,
				StacksCreated:  st.StacksCreated,
				EnvelopePages:  envelope,
				WithinEnvelope: st.VM.MaxRSSPages <= envelope,
			}
			rows = append(rows, row)
			t.Add(row.Benchmark, row.Mode, row.Workers, row.UnmapBatch,
				int64(row.NsPerOp), row.MaxRSSPages, row.MadviseCalls,
				row.Unmaps, row.UnmapBatches, row.ReclaimCancels,
				row.ReclaimSkips, row.CeilingHits, row.ReclaimedPages,
				row.StacksCreated, row.EnvelopePages, row.WithinEnvelope)
		}
	}
	return rows, t
}
