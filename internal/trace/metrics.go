package trace

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// maxBuckets bounds a histogram's bucket count (bounds plus overflow).
const maxBuckets = 32

// Histogram is a fixed-boundary histogram safe for concurrent Observe and
// Snapshot: bucket counters are atomics, boundaries are immutable after
// construction. Values land in the first bucket whose upper bound is >=
// the value; values beyond the last bound land in the overflow bucket.
type Histogram struct {
	unit   string
	bounds []int64
	counts [maxBuckets]atomic.Int64
	sum    atomic.Int64
	n      atomic.Int64
}

// newHistogram builds a histogram over the given inclusive upper bounds
// (must be ascending, at most maxBuckets-1 of them).
func newHistogram(unit string, bounds []int64) *Histogram {
	if len(bounds) >= maxBuckets {
		panic(fmt.Sprintf("trace: %d histogram bounds, max %d", len(bounds), maxBuckets-1))
	}
	return &Histogram{unit: unit, bounds: bounds}
}

// durationBounds covers 512 ns to ~8.6 s in powers of four — wide enough
// for a single steal sweep and for a join that waits out a whole phase,
// at 12 buckets so a snapshot stays table-sized.
func durationBounds() []int64 {
	bounds := make([]int64, 0, 12)
	for ns := int64(512); ns <= 1<<33; ns <<= 2 {
		bounds = append(bounds, ns)
	}
	return bounds
}

// latencyBounds covers request (Job submission-to-completion) latencies
// from 1 µs to ~2.1 s in powers of two — finer-grained than the
// powers-of-four durationBounds, because serving workloads read p50/p99/
// p999 off this histogram and a 4× bucket would smear the tail.
func latencyBounds() []int64 {
	bounds := make([]int64, 0, 22)
	for ns := int64(1 << 10); ns <= 1<<31; ns <<= 1 {
		bounds = append(bounds, ns)
	}
	return bounds
}

// sizeBounds covers small integer sizes (batch sizes, page counts) in
// powers of two from 1 to 1024.
func sizeBounds() []int64 {
	bounds := make([]int64, 0, 11)
	for v := int64(1); v <= 1024; v <<= 1 {
		bounds = append(bounds, v)
	}
	return bounds
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Snapshot captures the histogram's current state. Safe concurrently with
// Observe; the per-bucket counts are individually exact and collectively
// a near-point-in-time view.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Unit:   h.unit,
		Bounds: h.bounds,
		Counts: make([]int64, len(h.bounds)+1),
		Sum:    h.sum.Load(),
		Count:  h.n.Load(),
	}
	for i := range s.Counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is an immutable copy of a Histogram's state.
type HistogramSnapshot struct {
	Unit   string  // "ns" for latencies, "" for dimensionless sizes
	Bounds []int64 // inclusive upper bounds; Counts has one extra overflow bucket
	Counts []int64
	Sum    int64
	Count  int64
}

// Mean returns the average observed value (0 for an empty histogram).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper-bound estimate of the q-quantile (0 < q <= 1):
// the upper bound of the bucket holding the q-th observation, or the last
// bound for the overflow bucket. 0 for an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := int64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range s.Counts {
		seen += c
		if seen >= rank {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			break
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// String renders a compact one-line summary.
func (s HistogramSnapshot) String() string {
	unit := s.Unit
	if unit == "ns" {
		return fmt.Sprintf("n=%d mean=%v p50<=%v p99<=%v",
			s.Count, time.Duration(s.Mean()), time.Duration(s.Quantile(0.5)), time.Duration(s.Quantile(0.99)))
	}
	return fmt.Sprintf("n=%d mean=%.1f p50<=%d p99<=%d",
		s.Count, s.Mean(), s.Quantile(0.5), s.Quantile(0.99))
}

// MetricsSink aggregates the event stream into latency histograms and
// per-kind counters, cheap enough to leave attached on production-shaped
// runs and to read mid-execution (Runtime.Snapshot). It masks the event
// stream down to the kinds it consumes — the fork hot path never pays for
// it — and declines timestamps, so the sites it does observe cost a ring
// append and an atomic add.
type MetricsSink struct {
	stealLatency *Histogram // KindSteal.Dur: winning steal-sweep time
	joinWait     *Histogram // KindJoinWait.Dur: time a joiner stayed parked
	taskRun      *Histogram // KindTaskEnd.Dur: stolen-task run time
	unmapBatch   *Histogram // KindUnmapBatch.Arg: unmaps per batch flush
	jobLatency   *Histogram // KindJobDone.Dur: Job submit-to-completion time
	events       [numKinds]atomic.Int64
}

// NewMetricsSink returns an empty metrics aggregator.
func NewMetricsSink() *MetricsSink {
	return &MetricsSink{
		stealLatency: newHistogram("ns", durationBounds()),
		joinWait:     newHistogram("ns", durationBounds()),
		taskRun:      newHistogram("ns", durationBounds()),
		unmapBatch:   newHistogram("", sizeBounds()),
		jobLatency:   newHistogram("ns", latencyBounds()),
	}
}

// EventMask narrows the stream to the kinds the histograms consume.
func (m *MetricsSink) EventMask() uint64 {
	return MaskOf(KindSteal, KindJoinWait, KindTaskEnd, KindUnmap, KindUnmapBatch, KindReclaim, KindJobDone)
}

// TimestampFree declines per-event clock reads; the histograms only use
// duration payloads, which the event sites measure themselves.
func (m *MetricsSink) TimestampFree() bool { return true }

// Consume implements Sink.
func (m *MetricsSink) Consume(batch []Event) {
	for _, e := range batch {
		m.events[e.Kind].Add(1)
		switch e.Kind {
		case KindSteal:
			m.stealLatency.Observe(int64(e.Dur))
		case KindJoinWait:
			m.joinWait.Observe(int64(e.Dur))
		case KindTaskEnd:
			m.taskRun.Observe(int64(e.Dur))
		case KindUnmapBatch:
			m.unmapBatch.Observe(e.Arg)
		case KindJobDone:
			m.jobLatency.Observe(int64(e.Dur))
		}
	}
}

// MetricsSnapshot is a point-in-time copy of a MetricsSink's aggregates.
type MetricsSnapshot struct {
	StealLatency HistogramSnapshot // winning steal-sweep time (ns)
	JoinWait     HistogramSnapshot // time joiners stayed parked (ns)
	TaskRun      HistogramSnapshot // stolen-task run time (ns)
	UnmapBatch   HistogramSnapshot // unmaps issued per coalesced batch flush
	JobLatency   HistogramSnapshot // Job submit-to-completion latency (ns)
	Events       map[string]int64  // observed event counts by kind name
}

// Snapshot captures the sink's aggregates. Safe to call while the runtime
// is executing.
func (m *MetricsSink) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		StealLatency: m.stealLatency.Snapshot(),
		JoinWait:     m.joinWait.Snapshot(),
		TaskRun:      m.taskRun.Snapshot(),
		UnmapBatch:   m.unmapBatch.Snapshot(),
		JobLatency:   m.jobLatency.Snapshot(),
		Events:       map[string]int64{},
	}
	for k := 0; k < numKinds; k++ {
		if n := m.events[k].Load(); n > 0 {
			s.Events[Kind(k).String()] = n
		}
	}
	return s
}

// String renders a multi-line summary of the snapshot.
func (s MetricsSnapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "steal-latency: %v\n", s.StealLatency)
	fmt.Fprintf(&b, "join-wait:     %v\n", s.JoinWait)
	fmt.Fprintf(&b, "task-run:      %v\n", s.TaskRun)
	fmt.Fprintf(&b, "unmap-batch:   %v\n", s.UnmapBatch)
	fmt.Fprintf(&b, "job-latency:   %v", s.JobLatency)
	return b.String()
}
