// Package trace records scheduler events from the real runtime
// (internal/core) for post-mortem inspection: when work was stolen, when
// frames suspended and resumed, when stacks were unmapped. The paper's
// Table 2 aggregates exactly these events; the tracer exposes them
// individually, with timestamps and worker attribution, plus a text
// timeline renderer for eyeballing load balance.
//
// Tracing is opt-in (core.Config.Tracer); a nil recorder costs one
// pointer test per event site.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Kind classifies a scheduler event.
type Kind uint8

const (
	// KindFork: a child task was pushed (arg: frame depth).
	KindFork Kind = iota
	// KindSteal: a task was stolen (arg: victim worker).
	KindSteal
	// KindSuspend: a frame suspended at a join (arg: stack id).
	KindSuspend
	// KindResume: a suspended frame resumed (arg: stack id).
	KindResume
	// KindUnmap: a suspended stack's pages were returned (arg: pages freed).
	KindUnmap
	// KindTaskStart: a worker began executing a stolen task (arg: depth).
	KindTaskStart
	// KindTaskEnd: a stolen task completed (arg: depth).
	KindTaskEnd
	// KindReclaim: the RSS ceiling forced a reclaim pass (arg: pages freed).
	KindReclaim
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindFork:
		return "fork"
	case KindSteal:
		return "steal"
	case KindSuspend:
		return "suspend"
	case KindResume:
		return "resume"
	case KindUnmap:
		return "unmap"
	case KindTaskStart:
		return "start"
	case KindTaskEnd:
		return "end"
	case KindReclaim:
		return "reclaim"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one recorded scheduler event.
type Event struct {
	At     time.Duration // since the recorder's start
	Worker int           // worker slot id (-1 if unknown)
	Kind   Kind
	Arg    int64
}

// Recorder accumulates events. Safe for concurrent use; Record is a short
// critical section (tracing trades some perturbation for visibility, as
// any tracer does).
type Recorder struct {
	start time.Time

	mu     sync.Mutex
	events []Event
	limit  int
}

// NewRecorder creates a recorder capped at limit events (0 = 1<<20).
// Events past the cap are dropped and counted.
func NewRecorder(limit int) *Recorder {
	if limit <= 0 {
		limit = 1 << 20
	}
	return &Recorder{start: time.Now(), limit: limit}
}

// Record appends an event. Nil-safe: a nil recorder ignores the call.
func (r *Recorder) Record(worker int, kind Kind, arg int64) {
	if r == nil {
		return
	}
	at := time.Since(r.start)
	r.mu.Lock()
	if len(r.events) < r.limit {
		r.events = append(r.events, Event{At: at, Worker: worker, Kind: kind, Arg: arg})
	}
	r.mu.Unlock()
}

// Events returns a copy of the recorded events in time order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Reset drops all events and restarts the clock.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = r.events[:0]
	r.start = time.Now()
	r.mu.Unlock()
}

// Counts aggregates events by kind — the tracer-side view of Table 2.
func (r *Recorder) Counts() map[Kind]int {
	counts := map[Kind]int{}
	r.mu.Lock()
	for _, e := range r.events {
		counts[e.Kind]++
	}
	r.mu.Unlock()
	return counts
}

// Timeline renders a per-worker text timeline of the recorded events with
// the given bucket width: one lane per worker, one column per bucket, the
// densest event kind's initial in each cell.
func (r *Recorder) Timeline(w io.Writer, bucket time.Duration) error {
	events := r.Events()
	if len(events) == 0 {
		_, err := fmt.Fprintln(w, "(no events)")
		return err
	}
	if bucket <= 0 {
		bucket = time.Millisecond
	}
	maxWorker := 0
	span := events[len(events)-1].At
	for _, e := range events {
		if e.Worker > maxWorker {
			maxWorker = e.Worker
		}
	}
	cols := int(span/bucket) + 1
	if cols > 120 {
		cols = 120
		bucket = span/119 + 1
	}
	glyph := map[Kind]byte{
		KindFork: 'f', KindSteal: 'S', KindSuspend: 'z',
		KindResume: 'R', KindUnmap: 'u', KindTaskStart: '>', KindTaskEnd: '<',
		KindReclaim: 'r',
	}
	// Rank kinds so rarer, more interesting events win a contested cell.
	rank := map[Kind]int{
		KindFork: 0, KindTaskEnd: 1, KindTaskStart: 2, KindUnmap: 3,
		KindSteal: 4, KindResume: 5, KindSuspend: 6, KindReclaim: 7,
	}
	lanes := make([][]byte, maxWorker+1)
	laneRank := make([][]int, maxWorker+1)
	for i := range lanes {
		lanes[i] = []byte(strings.Repeat(".", cols))
		laneRank[i] = make([]int, cols)
		for j := range laneRank[i] {
			laneRank[i][j] = -1
		}
	}
	for _, e := range events {
		if e.Worker < 0 {
			continue
		}
		c := int(e.At / bucket)
		if c >= cols {
			c = cols - 1
		}
		if rk := rank[e.Kind]; rk > laneRank[e.Worker][c] {
			lanes[e.Worker][c] = glyph[e.Kind]
			laneRank[e.Worker][c] = rk
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "timeline: %v total, %v/column; f=fork S=steal z=suspend R=resume u=unmap r=reclaim >=start <=end\n",
		span.Round(time.Microsecond), bucket)
	for i, lane := range lanes {
		fmt.Fprintf(&b, "w%-3d %s\n", i, lane)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
