// Package trace is the runtime's observability layer: scheduler events
// from the real runtime (internal/core) — when work was stolen, when
// frames suspended and resumed, when stacks were unmapped — flow through
// per-worker ring buffers (Tracer) into a pluggable Sink. The paper's
// Table 2 aggregates exactly these events; the sinks expose them three
// ways:
//
//   - Recorder buffers them for post-mortem inspection, with a text
//     timeline renderer for eyeballing load balance;
//   - ChromeSink streams them as Chrome trace_event JSON that loads in
//     Perfetto / about:tracing;
//   - MetricsSink folds them into fixed-bucket latency histograms and
//     counters cheap enough to read while the runtime is executing.
//
// Tracing is opt-in (core.Config.Sink); with no sink attached every event
// site costs one pointer test.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Kind classifies a scheduler event.
type Kind uint8

const (
	// KindFork: a child task was pushed (arg: frame depth).
	KindFork Kind = iota
	// KindSteal: a task was stolen (arg: victim worker; dur: how long the
	// winning steal sweep took).
	KindSteal
	// KindSuspend: a frame suspended at a join (arg: stack id).
	KindSuspend
	// KindResume: a suspended frame resumed (arg: stack id).
	KindResume
	// KindUnmap: a suspended stack's pages were returned (arg: pages freed).
	KindUnmap
	// KindTaskStart: a worker began executing a stolen task (arg: depth).
	KindTaskStart
	// KindTaskEnd: a stolen task completed (arg: depth; dur: how long the
	// stolen task ran).
	KindTaskEnd
	// KindReclaim: the RSS ceiling forced a reclaim pass (arg: pages freed).
	KindReclaim
	// KindJoinWait: a suspended joiner resumed (arg: stack id; dur: how
	// long it was parked). Emitted by the resumed owner, where KindResume
	// is emitted by the finishing worker that woke it.
	KindJoinWait
	// KindUnmapBatch: a coalesced-unmap batch flushed (arg: unmaps issued).
	KindUnmapBatch
	// KindDupSteal: a task extracted more than once from a relaxed deque
	// lost its execution claim (arg: task depth). Only the fence-free
	// DequeRelaxed emits these; the claim layer turns the duplicate into a
	// no-op, so the event is observability, not an error.
	KindDupSteal
	// KindJobStart: a worker began executing a submitted root Job
	// (arg: job id). Submitted roots deliberately do not emit
	// KindTaskStart/KindTaskEnd — those remain reserved for stolen tasks,
	// so the trace-reconciliation law (task events == base steals) holds
	// under concurrent submission.
	KindJobStart
	// KindJobDone: a submitted root Job completed (arg: job id; dur:
	// submission-to-completion latency — the request latency a serving
	// workload reports).
	KindJobDone

	// numKinds bounds the Kind space for mask and counter arrays.
	numKinds = 13
)

// NumKinds returns the number of defined event kinds.
func NumKinds() int { return numKinds }

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindFork:
		return "fork"
	case KindSteal:
		return "steal"
	case KindSuspend:
		return "suspend"
	case KindResume:
		return "resume"
	case KindUnmap:
		return "unmap"
	case KindTaskStart:
		return "start"
	case KindTaskEnd:
		return "end"
	case KindReclaim:
		return "reclaim"
	case KindJoinWait:
		return "joinwait"
	case KindUnmapBatch:
		return "unmapbatch"
	case KindDupSteal:
		return "dupsteal"
	case KindJobStart:
		return "jobstart"
	case KindJobDone:
		return "jobdone"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one recorded scheduler event.
type Event struct {
	At     time.Duration // since the tracer's (or recorder's) start
	Worker int           // worker slot id (-1 if unknown)
	Kind   Kind
	Arg    int64
	Dur    time.Duration // duration payload for latency kinds (0 otherwise)
	Seq    uint64        // per-worker emission order (1-based, monotonic)
}

// Recorder accumulates events in memory — the buffered post-mortem sink.
// It implements Sink, so it can terminate a Tracer's ring buffers, and it
// keeps the standalone Record method for direct use. Safe for concurrent
// use; Record/Consume are short critical sections (tracing trades some
// perturbation for visibility, as any tracer does).
type Recorder struct {
	start time.Time

	mu      sync.Mutex
	events  []Event
	limit   int
	dropped int64
	seq     uint64 // sequence source for direct Record calls
}

// NewRecorder creates a recorder capped at limit events (0 = 1<<20).
// Events past the cap are dropped and counted (see Dropped).
func NewRecorder(limit int) *Recorder {
	if limit <= 0 {
		limit = 1 << 20
	}
	return &Recorder{start: time.Now(), limit: limit}
}

// Record appends an event, stamping it against the recorder's own clock.
// Nil-safe: a nil recorder ignores the call.
func (r *Recorder) Record(worker int, kind Kind, arg int64) {
	if r == nil {
		return
	}
	at := time.Since(r.start)
	r.mu.Lock()
	if len(r.events) < r.limit {
		r.seq++
		r.events = append(r.events, Event{At: at, Worker: worker, Kind: kind, Arg: arg, Seq: r.seq})
	} else {
		r.dropped++
	}
	r.mu.Unlock()
}

// Consume implements Sink: the batch's events (already stamped and
// sequenced by the tracer) are appended verbatim, dropping past the cap.
func (r *Recorder) Consume(batch []Event) {
	r.mu.Lock()
	if room := r.limit - len(r.events); room < len(batch) {
		r.dropped += int64(len(batch) - room)
		batch = batch[:room]
	}
	r.events = append(r.events, batch...)
	r.mu.Unlock()
}

// Events returns a copy of the recorded events, stably ordered by
// (time, worker, per-worker sequence). The worker and sequence tiebreaks
// keep the order deterministic when a coarse clock stamps concurrent
// events with equal timestamps.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		if out[i].Worker != out[j].Worker {
			return out[i].Worker < out[j].Worker
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Dropped returns how many events were discarded at the cap.
func (r *Recorder) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Reset drops all events and restarts the clock.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = r.events[:0]
	r.dropped = 0
	r.seq = 0
	r.start = time.Now()
	r.mu.Unlock()
}

// Counts aggregates events by kind — the tracer-side view of Table 2.
func (r *Recorder) Counts() map[Kind]int {
	counts := map[Kind]int{}
	r.mu.Lock()
	for _, e := range r.events {
		counts[e.Kind]++
	}
	r.mu.Unlock()
	return counts
}

// Timeline renders a per-worker text timeline of the recorded events with
// the given bucket width: one lane per worker, one column per bucket, the
// densest event kind's initial in each cell.
func (r *Recorder) Timeline(w io.Writer, bucket time.Duration) error {
	events := r.Events()
	if len(events) == 0 {
		_, err := fmt.Fprintln(w, "(no events)")
		return err
	}
	if bucket <= 0 {
		bucket = time.Millisecond
	}
	maxWorker := 0
	span := events[len(events)-1].At
	for _, e := range events {
		if e.Worker > maxWorker {
			maxWorker = e.Worker
		}
	}
	cols := int(span/bucket) + 1
	if cols > 120 {
		cols = 120
		bucket = span/119 + 1
	}
	glyph := map[Kind]byte{
		KindFork: 'f', KindSteal: 'S', KindSuspend: 'z',
		KindResume: 'R', KindUnmap: 'u', KindTaskStart: '>', KindTaskEnd: '<',
		KindReclaim: 'r', KindJoinWait: 'j', KindUnmapBatch: 'b',
		KindDupSteal: 'D', KindJobStart: 'J', KindJobDone: 'E',
	}
	// Rank kinds so rarer, more interesting events win a contested cell.
	rank := map[Kind]int{
		KindFork: 0, KindTaskEnd: 1, KindTaskStart: 2, KindJoinWait: 3,
		KindUnmap: 4, KindUnmapBatch: 5, KindSteal: 6, KindResume: 7,
		KindSuspend: 8, KindReclaim: 9, KindDupSteal: 10, KindJobStart: 11,
		KindJobDone: 12,
	}
	lanes := make([][]byte, maxWorker+1)
	laneRank := make([][]int, maxWorker+1)
	for i := range lanes {
		lanes[i] = []byte(strings.Repeat(".", cols))
		laneRank[i] = make([]int, cols)
		for j := range laneRank[i] {
			laneRank[i][j] = -1
		}
	}
	for _, e := range events {
		if e.Worker < 0 {
			continue
		}
		c := int(e.At / bucket)
		if c >= cols {
			c = cols - 1
		}
		if rk := rank[e.Kind]; rk > laneRank[e.Worker][c] {
			lanes[e.Worker][c] = glyph[e.Kind]
			laneRank[e.Worker][c] = rk
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "timeline: %v total, %v/column; f=fork S=steal z=suspend R=resume u=unmap r=reclaim j=joinwait b=batch D=dupsteal J=jobstart E=jobdone >=start <=end\n",
		span.Round(time.Microsecond), bucket)
	for i, lane := range lanes {
		fmt.Fprintf(&b, "w%-3d %s\n", i, lane)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
