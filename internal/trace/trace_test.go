package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(0, KindFork, 1) // must not panic
}

func TestRecordAndCounts(t *testing.T) {
	r := NewRecorder(0)
	r.Record(0, KindFork, 1)
	r.Record(1, KindSteal, 0)
	r.Record(0, KindFork, 2)
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	c := r.Counts()
	if c[KindFork] != 2 || c[KindSteal] != 1 {
		t.Errorf("counts = %v", c)
	}
}

func TestLimitDropsOverflow(t *testing.T) {
	r := NewRecorder(5)
	for i := 0; i < 20; i++ {
		r.Record(0, KindFork, int64(i))
	}
	if r.Len() != 5 {
		t.Errorf("Len = %d, want capped 5", r.Len())
	}
}

func TestEventsSortedByTime(t *testing.T) {
	r := NewRecorder(0)
	for i := 0; i < 100; i++ {
		r.Record(i%4, KindFork, int64(i))
	}
	events := r.Events()
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatalf("events out of order at %d", i)
		}
	}
}

func TestReset(t *testing.T) {
	r := NewRecorder(0)
	r.Record(0, KindFork, 0)
	r.Reset()
	if r.Len() != 0 {
		t.Errorf("Len after Reset = %d", r.Len())
	}
}

func TestConcurrentRecord(t *testing.T) {
	r := NewRecorder(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Record(g, KindSteal, int64(i))
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 8000 {
		t.Errorf("Len = %d, want 8000", r.Len())
	}
}

func TestTimelineRendersLanes(t *testing.T) {
	r := NewRecorder(0)
	r.Record(0, KindFork, 0)
	r.Record(2, KindSteal, 0)
	r.Record(1, KindSuspend, 0)
	var b strings.Builder
	if err := r.Timeline(&b, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, lane := range []string{"w0", "w1", "w2"} {
		if !strings.Contains(out, lane) {
			t.Errorf("timeline missing lane %s:\n%s", lane, out)
		}
	}
	if !strings.Contains(out, "S") {
		t.Errorf("timeline missing steal glyph:\n%s", out)
	}
}

func TestTimelineEmpty(t *testing.T) {
	r := NewRecorder(0)
	var b strings.Builder
	if err := r.Timeline(&b, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no events") {
		t.Errorf("empty timeline output: %q", b.String())
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{KindFork, KindSteal, KindSuspend, KindResume, KindUnmap, KindTaskStart, KindTaskEnd}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has bad name %q", k, s)
		}
		seen[s] = true
	}
}
