package trace

import (
	"sync"
	"time"
)

// Sink consumes the runtime's event stream. The tracer delivers events in
// per-worker batches: within one Consume call the events share a worker
// and appear in that worker's program order, but batches from different
// workers arrive concurrently — a Sink must be safe for concurrent
// Consume calls. The batch slice is reused after Consume returns; a sink
// that retains events must copy them.
type Sink interface {
	Consume(batch []Event)
}

// EventMasker is an optional Sink refinement: a sink that only cares
// about some kinds returns a bitmask (bit i set = wants Kind(i)) and the
// tracer drops the rest before they ever touch a ring buffer, keeping
// masked-out event sites at near-nil-sink cost. Sinks without the method
// receive everything.
type EventMasker interface {
	EventMask() uint64
}

// TimestampFree is an optional Sink refinement: a sink that does not read
// Event.At (histograms, counters) declares so and the tracer skips the
// per-event clock read, the dominant cost of a hot event site.
type TimestampFree interface {
	TimestampFree() bool
}

// MaskAll is the event mask that accepts every kind.
const MaskAll = uint64(1<<numKinds) - 1

// MaskOf builds an event mask from a kind list.
func MaskOf(kinds ...Kind) uint64 {
	var m uint64
	for _, k := range kinds {
		m |= 1 << k
	}
	return m
}

// ringCap is the per-worker ring size; a full ring flushes its batch to
// the sink and wraps. 256 events keep the flush amortization around one
// sink call per 256 events while bounding the staleness a live reader
// (MetricsSink during a run) can observe.
const ringCap = 256

// ring is one worker slot's event buffer. The mutex is effectively
// uncontended — a slot's events are emitted by the goroutine occupying
// the slot — except on the spare ring shared by the slotless goroutine
// baseline; it exists so slot handoffs and that sharing stay safe.
type ring struct {
	mu  sync.Mutex
	seq uint64
	n   int
	buf [ringCap]Event
	_   [64]byte // keep neighbouring rings' headers off one cache line
}

// Tracer fans the runtime's event sites into a Sink through per-worker
// rings: no global lock anywhere on the event path, one clock read per
// event at most (none if the sink is TimestampFree), and a nil *Tracer —
// the disabled state — costs exactly one pointer test per site.
type Tracer struct {
	sink  Sink
	start time.Time
	mask  uint64
	stamp bool
	rings []ring // one per worker slot, plus a spare for slot -1
}

// NewTracer builds a tracer feeding sink from workers slots (plus the
// spare). A nil sink yields a nil tracer, the disabled state.
func NewTracer(sink Sink, workers int) *Tracer {
	if sink == nil {
		return nil
	}
	t := &Tracer{
		sink:  sink,
		start: time.Now(),
		mask:  MaskAll,
		stamp: true,
		rings: make([]ring, workers+1),
	}
	if m, ok := sink.(EventMasker); ok {
		t.mask = m.EventMask() & MaskAll
	}
	if f, ok := sink.(TimestampFree); ok && f.TimestampFree() {
		t.stamp = false
	}
	return t
}

// ring maps a worker slot to its ring; slotless workers (-1) share the
// spare, like counter shards.
func (t *Tracer) ring(worker int) *ring {
	if worker < 0 || worker >= len(t.rings)-1 {
		return &t.rings[len(t.rings)-1]
	}
	return &t.rings[worker]
}

// Wants reports whether the sink consumes events of kind k — event sites
// use it to skip the clock reads that compute duration payloads. Nil-safe.
func (t *Tracer) Wants(k Kind) bool {
	return t != nil && t.mask&(1<<k) != 0
}

// Emit records one event on the worker's ring, flushing the ring to the
// sink when it wraps. Nil-safe: a nil tracer ignores the call. The split
// from emit keeps this guard within the inlining budget, so disabled and
// masked-out event sites cost a pointer test and a bit test in place, not
// a function call.
func (t *Tracer) Emit(worker int, kind Kind, arg int64, dur time.Duration) {
	if t == nil || t.mask&(1<<kind) == 0 {
		return
	}
	t.emit(worker, kind, arg, dur)
}

func (t *Tracer) emit(worker int, kind Kind, arg int64, dur time.Duration) {
	var at time.Duration
	if t.stamp {
		at = time.Since(t.start)
	}
	r := t.ring(worker)
	r.mu.Lock()
	r.seq++
	r.buf[r.n] = Event{At: at, Worker: worker, Kind: kind, Arg: arg, Dur: dur, Seq: r.seq}
	r.n++
	if r.n == ringCap {
		t.sink.Consume(r.buf[:r.n])
		r.n = 0
	}
	r.mu.Unlock()
}

// Flush drains every ring's partial batch into the sink. The runtime
// calls it at the end of each Run, after the last event site has fired.
// Nil-safe.
func (t *Tracer) Flush() {
	if t == nil {
		return
	}
	for i := range t.rings {
		r := &t.rings[i]
		r.mu.Lock()
		if r.n > 0 {
			t.sink.Consume(r.buf[:r.n])
			r.n = 0
		}
		r.mu.Unlock()
	}
}
