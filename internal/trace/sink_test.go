package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// captureSink retains every batch it is handed (copied — the tracer
// reuses the batch slice).
type captureSink struct {
	mu      sync.Mutex
	batches [][]Event
}

func (c *captureSink) Consume(batch []Event) {
	cp := make([]Event, len(batch))
	copy(cp, batch)
	c.mu.Lock()
	c.batches = append(c.batches, cp)
	c.mu.Unlock()
}

func (c *captureSink) all() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Event
	for _, b := range c.batches {
		out = append(out, b...)
	}
	return out
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	if tr != NewTracer(nil, 4) {
		t.Fatal("NewTracer(nil sink) should be the nil tracer")
	}
	tr.Emit(0, KindFork, 1, 0) // must not panic
	tr.Flush()
	if tr.Wants(KindFork) {
		t.Fatal("nil tracer Wants anything")
	}
}

func TestTracerBuffersAndFlushes(t *testing.T) {
	sink := &captureSink{}
	tr := NewTracer(sink, 2)
	tr.Emit(0, KindFork, 7, 0)
	tr.Emit(1, KindSteal, 0, time.Microsecond)
	if got := sink.all(); len(got) != 0 {
		t.Fatalf("sink saw %d events before flush or wrap", len(got))
	}
	tr.Flush()
	got := sink.all()
	if len(got) != 2 {
		t.Fatalf("flushed %d events, want 2", len(got))
	}
	for _, e := range got {
		if e.Seq == 0 {
			t.Errorf("event %+v has no sequence number", e)
		}
		if e.At == 0 {
			t.Errorf("event %+v has no timestamp (sink is not TimestampFree)", e)
		}
	}
	// Filling a ring past capacity must deliver without an explicit flush.
	for i := 0; i < ringCap; i++ {
		tr.Emit(0, KindFork, int64(i), 0)
	}
	if got := sink.all(); len(got) != 2+ringCap {
		t.Fatalf("after ring wrap sink has %d events, want %d", len(got), 2+ringCap)
	}
	// Within a worker the stream is in emission order.
	var prev uint64
	for _, e := range sink.all() {
		if e.Worker != 0 {
			continue
		}
		if e.Seq <= prev {
			t.Fatalf("worker 0 sequence went %d -> %d", prev, e.Seq)
		}
		prev = e.Seq
	}
}

func TestTracerSpareRing(t *testing.T) {
	sink := &captureSink{}
	tr := NewTracer(sink, 2)
	tr.Emit(-1, KindFork, 0, 0) // slotless goroutine
	tr.Emit(99, KindFork, 0, 0) // out-of-range slot
	tr.Flush()
	if got := sink.all(); len(got) != 2 {
		t.Fatalf("spare ring delivered %d events, want 2", len(got))
	}
}

// maskedSink wants only steals and declines timestamps.
type maskedSink struct{ captureSink }

func (m *maskedSink) EventMask() uint64   { return MaskOf(KindSteal) }
func (m *maskedSink) TimestampFree() bool { return true }

func TestTracerMaskAndTimestampFree(t *testing.T) {
	sink := &maskedSink{}
	tr := NewTracer(sink, 1)
	if tr.Wants(KindFork) || !tr.Wants(KindSteal) {
		t.Fatalf("mask not honoured: wants fork=%v steal=%v", tr.Wants(KindFork), tr.Wants(KindSteal))
	}
	tr.Emit(0, KindFork, 0, 0)
	tr.Emit(0, KindSteal, 3, time.Millisecond)
	tr.Flush()
	got := sink.all()
	if len(got) != 1 || got[0].Kind != KindSteal {
		t.Fatalf("masked tracer delivered %+v, want one steal", got)
	}
	if got[0].At != 0 {
		t.Fatalf("TimestampFree sink got stamped event: %+v", got[0])
	}
	if got[0].Dur != time.Millisecond {
		t.Fatalf("duration payload lost: %+v", got[0])
	}
}

func TestChromeSinkJSON(t *testing.T) {
	var buf bytes.Buffer
	cs := NewChromeSink(&buf)
	cs.Consume([]Event{
		{At: 1500, Worker: 0, Kind: KindFork, Arg: 2},
		{At: 3 * time.Microsecond, Worker: 1, Kind: KindTaskEnd, Arg: 1, Dur: 2 * time.Microsecond},
	})
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cs.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	if events[0]["ph"] != "i" || events[0]["name"] != "fork" || events[0]["ts"] != 1.5 {
		t.Errorf("instant event wrong: %v", events[0])
	}
	if events[1]["ph"] != "X" || events[1]["ts"] != 1.0 || events[1]["dur"] != 2.0 {
		t.Errorf("complete slice wrong (ts should be At-Dur): %v", events[1])
	}
}

func TestChromeSinkEmpty(t *testing.T) {
	var buf bytes.Buffer
	cs := NewChromeSink(&buf)
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil || len(events) != 0 {
		t.Fatalf("empty trace should be a valid empty array, got %q (%v)", buf.String(), err)
	}
}

func TestHistogram(t *testing.T) {
	h := newHistogram("", []int64{1, 2, 4, 8})
	for _, v := range []int64{1, 2, 2, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 || s.Sum != 108 {
		t.Fatalf("Count=%d Sum=%d, want 5/108", s.Count, s.Sum)
	}
	// 1 -> bucket0; 2,2 -> bucket1; 3 -> bucket2(<=4); 100 -> overflow.
	want := []int64{1, 2, 1, 0, 1}
	for i, c := range s.Counts {
		if c != want[i] {
			t.Fatalf("Counts=%v, want %v", s.Counts, want)
		}
	}
	if m := s.Mean(); m != 108.0/5 {
		t.Errorf("Mean=%v", m)
	}
	if q := s.Quantile(0.5); q != 2 {
		t.Errorf("p50=%d, want 2", q)
	}
	if q := s.Quantile(1.0); q != 8 {
		t.Errorf("p100=%d, want last bound 8 for overflow", q)
	}
	var zero HistogramSnapshot
	if zero.Mean() != 0 || zero.Quantile(0.5) != 0 {
		t.Error("zero snapshot should report 0s")
	}
}

func TestMetricsSinkAggregates(t *testing.T) {
	m := NewMetricsSink()
	m.Consume([]Event{
		{Kind: KindSteal, Dur: 600},
		{Kind: KindSteal, Dur: 100},
		{Kind: KindJoinWait, Dur: 1000},
		{Kind: KindTaskEnd, Dur: 2000},
		{Kind: KindUnmapBatch, Arg: 4},
		{Kind: KindUnmap, Arg: 32},
	})
	s := m.Snapshot()
	if s.StealLatency.Count != 2 || s.StealLatency.Sum != 700 {
		t.Errorf("steal latency %+v", s.StealLatency)
	}
	if s.JoinWait.Count != 1 || s.TaskRun.Count != 1 {
		t.Errorf("joinwait=%d taskrun=%d, want 1/1", s.JoinWait.Count, s.TaskRun.Count)
	}
	if s.UnmapBatch.Count != 1 || s.UnmapBatch.Sum != 4 {
		t.Errorf("unmap batch %+v", s.UnmapBatch)
	}
	if s.Events["steal"] != 2 || s.Events["unmap"] != 1 {
		t.Errorf("event counts %v", s.Events)
	}
	if !strings.Contains(s.String(), "steal-latency") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestRecorderStableOrder(t *testing.T) {
	r := NewRecorder(0)
	// Same timestamp everywhere: order must fall back to (worker, seq).
	r.Consume([]Event{
		{At: 10, Worker: 1, Kind: KindFork, Seq: 2},
		{At: 10, Worker: 1, Kind: KindFork, Seq: 1},
		{At: 10, Worker: 0, Kind: KindFork, Seq: 5},
	})
	got := r.Events()
	if got[0].Worker != 0 || got[1].Seq != 1 || got[2].Seq != 2 {
		t.Fatalf("order not (time, worker, seq): %+v", got)
	}
}

func TestRecorderDropsAtCap(t *testing.T) {
	r := NewRecorder(2)
	r.Consume(make([]Event, 5))
	r.Consume(make([]Event, 3))
	if r.Len() != 2 || r.Dropped() != 6 {
		t.Fatalf("Len=%d Dropped=%d, want 2/6", r.Len(), r.Dropped())
	}
	r.Reset()
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Fatal("Reset did not clear")
	}
}
