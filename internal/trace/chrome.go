package trace

import (
	"bufio"
	"fmt"
	"io"
	"sync"
)

// ChromeSink streams events as Chrome trace_event JSON — the array form,
// which chrome://tracing, about:tracing, and Perfetto's legacy importer
// all load directly. Instant scheduler events (forks, steals, suspends…)
// become phase-"i" instants on the emitting worker's thread lane;
// duration-carrying events (stolen-task runs, join waits) become
// phase-"X" complete slices, so stolen tasks render as blocks and the
// gaps between them as idleness.
//
// Events are written as they arrive (buffered through a bufio.Writer), so
// a long run streams to disk instead of accumulating; Close writes the
// closing bracket and flushes. Write errors are sticky — the first one is
// remembered, later Consume calls become no-ops, and Close reports it.
type ChromeSink struct {
	mu     sync.Mutex
	bw     *bufio.Writer
	err    error
	wrote  bool
	closed bool
}

// NewChromeSink starts a trace_event stream on w. The caller owns w and
// must call Close to finish the JSON document.
func NewChromeSink(w io.Writer) *ChromeSink {
	s := &ChromeSink{bw: bufio.NewWriterSize(w, 1<<16)}
	_, s.err = s.bw.WriteString("[")
	return s
}

// usec renders a duration as integer microseconds with three decimals of
// sub-microsecond precision, the unit of the trace_event "ts"/"dur"
// fields.
func usec(ns int64) string {
	return fmt.Sprintf("%d.%03d", ns/1e3, ns%1e3)
}

// Consume implements Sink.
func (s *ChromeSink) Consume(batch []Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil || s.closed {
		return
	}
	for _, e := range batch {
		sep := ","
		if !s.wrote {
			sep = ""
			s.wrote = true
		}
		var err error
		if e.Dur > 0 {
			// Complete slice: ts is the start, so subtract the duration
			// from the completion stamp (clamping at the trace origin).
			start := int64(e.At - e.Dur)
			if start < 0 {
				start = 0
			}
			_, err = fmt.Fprintf(s.bw,
				"%s\n{\"name\":%q,\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":1,\"tid\":%d,\"args\":{\"arg\":%d}}",
				sep, e.Kind, usec(start), usec(int64(e.Dur)), e.Worker, e.Arg)
		} else {
			_, err = fmt.Fprintf(s.bw,
				"%s\n{\"name\":%q,\"ph\":\"i\",\"ts\":%s,\"pid\":1,\"tid\":%d,\"s\":\"t\",\"args\":{\"arg\":%d}}",
				sep, e.Kind, usec(int64(e.At)), e.Worker, e.Arg)
		}
		if err != nil {
			s.err = err
			return
		}
	}
}

// Close terminates the JSON array and flushes. It reports the first write
// error encountered anywhere in the stream. Further Consume calls are
// ignored.
func (s *ChromeSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.err
	}
	s.closed = true
	if s.err == nil {
		_, s.err = s.bw.WriteString("\n]\n")
	}
	if err := s.bw.Flush(); s.err == nil {
		s.err = err
	}
	return s.err
}

// Err returns the sticky write error, if any.
func (s *ChromeSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}
