package core

import (
	"sync"
	"sync/atomic"
)

// parkLot is the quiet end of the thief backoff ladder: a thief that has
// spun and yielded through repeated empty sweeps parks here, and the next
// Fork wakes every parked thief. This replaces the unbounded Gosched spin
// that burned a full core per idle thief, while preserving busy-leaves:
// whenever work exists (every unit of queued work was published by a Fork,
// and every Fork calls wake), no thief stays parked.
//
// The lost-wakeup argument is a Dekker pair. A parking thief registers
// itself (nparked++) and only then runs one final steal sweep; a forker
// publishes the task (deque push) and only then reads nparked. Under Go's
// sequentially-consistent atomics it is impossible for the final sweep to
// miss the push AND the forker to miss the registration, so either the
// thief leaves with the task or the forker broadcasts — and the broadcast
// serializes with the thief's mutex section, so it cannot fall between the
// final sweep and the sleep.
type parkLot struct {
	mu     sync.Mutex
	cond   *sync.Cond
	seq    uint64 // wake generation; guarded by mu
	closed bool   // guarded by mu

	// nparked mirrors the number of sleepers for wake's lock-free fast
	// check; it is only written with mu held.
	nparked atomic.Int32
}

func newParkLot() *parkLot {
	p := &parkLot{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// open readies the lot for a new Run after a close.
func (p *parkLot) open() {
	p.mu.Lock()
	p.closed = false
	p.mu.Unlock()
}

// park puts the calling thief to sleep until the next wake or close.
// finalSweep runs after the caller is registered as parked; if it finds a
// task the caller does not sleep and the task is returned. park returns
// (zero, false) on any wake-up — the caller re-enters its steal loop.
func (p *parkLot) park(finalSweep func() (task, bool)) (task, bool) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return task{}, false
	}
	p.nparked.Add(1)
	if t, ok := finalSweep(); ok {
		p.nparked.Add(-1)
		p.mu.Unlock()
		return t, true
	}
	seq := p.seq
	for p.seq == seq && !p.closed {
		p.cond.Wait()
	}
	p.nparked.Add(-1)
	p.mu.Unlock()
	return task{}, false
}

// wake unparks every parked thief. The fast path — nobody parked — is a
// single atomic load, so Fork stays cheap while the system is busy.
func (p *parkLot) wake() {
	if p.nparked.Load() == 0 {
		return
	}
	p.mu.Lock()
	p.seq++
	p.cond.Broadcast()
	p.mu.Unlock()
}

// close wakes everyone and keeps the lot closed until the next open, so
// thieves parked around the end of a Run cannot sleep through shutdown.
func (p *parkLot) close() {
	p.mu.Lock()
	p.closed = true
	p.seq++
	p.cond.Broadcast()
	p.mu.Unlock()
}

// parked reports how many thieves are currently parked (racy snapshot).
func (p *parkLot) parked() int { return int(p.nparked.Load()) }
