package core

import (
	"sync"
	"sync/atomic"
)

// parkLot is the quiet end of the thief backoff ladder: a thief that has
// spun and yielded through repeated empty sweeps parks here, and every
// publication of new work (a Fork, a dispatched root, shared StealHalf
// loot) wakes parked thieves. This replaces the unbounded Gosched spin
// that burned a full core per idle thief, while preserving busy-leaves:
// whenever work exists (every unit of queued work was published by a Fork
// or a Submit, and every publish calls wake), no thief stays parked.
//
// Wake-one. wake(n) deposits up to n wake tokens — never more than there
// are sleepers without one — and Signals once per token, so publishing a
// single task wakes a single thief instead of stampeding every idle
// worker through one cond.Broadcast (the thundering herd a serving
// runtime pays on every Submit). wakeAll keeps the broadcast for the
// cases that really do make everyone runnable: close/teardown and
// StealHalf loot bursts that publish several tasks at once.
//
// The lost-wakeup argument is still a Dekker pair. A parking thief
// registers itself (nparked++) and only then runs one final steal sweep;
// a publisher makes the work visible (deque push, intake-shard link) and
// only then reads nparked. Under Go's sequentially-consistent atomics it
// is impossible for the final sweep to miss the publish AND the publisher
// to miss the registration, so either the thief leaves with the task or
// the publisher enters wake — and wake serializes with the thief's mutex
// section, so a deposited token cannot fall between the final sweep and
// the sleep. Wake-one adds one case to the argument: wake may find every
// sleeper already holding a pending token (avail == 0) and deposit
// nothing. That is safe because a token holder is committed to waking and
// sweeping, and a thief can only re-park through another registered-then-
// swept park call — whose final sweep runs after this publish and
// therefore sees the task (or sees it already taken). Work is never
// stranded behind a dropped wake; at worst a token is spent on a sweep
// that finds the task already claimed.
type parkLot struct {
	mu     sync.Mutex
	cond   *sync.Cond
	tokens int  // pending wakes, <= nparked; guarded by mu
	closed bool // guarded by mu

	// nparked mirrors the number of sleepers for wake's lock-free fast
	// check; it is only written with mu held.
	nparked atomic.Int32
}

func newParkLot() *parkLot {
	p := &parkLot{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// open readies the lot for a new Run after a close.
func (p *parkLot) open() {
	p.mu.Lock()
	p.closed = false
	p.tokens = 0
	p.mu.Unlock()
}

// park puts the calling thief to sleep until the next wake or close.
// finalSweep runs after the caller is registered as parked; if it finds a
// task the caller does not sleep and the task is returned. park returns
// (zero, false) on any wake-up — the caller re-enters its steal loop.
func (p *parkLot) park(finalSweep func() (task, bool)) (task, bool) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return task{}, false
	}
	p.nparked.Add(1)
	if t, ok := finalSweep(); ok {
		p.nparked.Add(-1)
		p.mu.Unlock()
		return t, true
	}
	for p.tokens == 0 && !p.closed {
		p.cond.Wait()
	}
	if p.tokens > 0 {
		p.tokens--
	}
	p.nparked.Add(-1)
	p.mu.Unlock()
	return task{}, false
}

// wake unparks up to n thieves — one per newly published task. The fast
// path — nobody parked — is a single atomic load, so Fork and Submit stay
// cheap while the system is busy. Tokens are capped at the number of
// sleepers without one: a Signal beyond that has nobody new to reach, and
// the uncapped count would make later sleepers burn through stale tokens.
func (p *parkLot) wake(n int) {
	if p.nparked.Load() == 0 {
		return
	}
	p.mu.Lock()
	if avail := int(p.nparked.Load()) - p.tokens; avail > 0 {
		if n > avail {
			n = avail
		}
		p.tokens += n
		for i := 0; i < n; i++ {
			p.cond.Signal()
		}
	}
	p.mu.Unlock()
}

// wakeAll unparks every parked thief — the broadcast retained for
// multi-task publications (StealHalf loot bursts) where waking thieves
// one Signal at a time would serialize the fan-out.
func (p *parkLot) wakeAll() {
	if p.nparked.Load() == 0 {
		return
	}
	p.mu.Lock()
	p.tokens = int(p.nparked.Load())
	p.cond.Broadcast()
	p.mu.Unlock()
}

// close wakes everyone and keeps the lot closed until the next open, so
// thieves parked around the end of a Run cannot sleep through shutdown.
func (p *parkLot) close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

// parked reports how many thieves are currently parked (racy snapshot).
func (p *parkLot) parked() int { return int(p.nparked.Load()) }
