package core

import (
	"sync/atomic"
	"testing"
)

// dequeStrategies are the strategies that actually use worker deques (the
// goroutine baseline has none, so Config.Deque is irrelevant there).
func dequeStrategies() []Strategy {
	ss := make([]Strategy, 0, len(Strategies()))
	for _, s := range Strategies() {
		if s != StrategyGoroutine {
			ss = append(ss, s)
		}
	}
	return ss
}

func TestDequeKindStrings(t *testing.T) {
	if DequeTHE.String() != "the" || DequeChaseLev.String() != "chaselev" ||
		DequeRelaxed.String() != "relaxed" {
		t.Errorf("deque kind names = %q, %q, %q", DequeTHE, DequeChaseLev, DequeRelaxed)
	}
	if got := DequeKind(99).String(); got != "DequeKind(99)" {
		t.Errorf("unknown kind = %q", got)
	}
}

// TestRandomProgramsBothDeques runs the random fork-join programs under
// every strategy with both deque implementations: results must match the
// serial simulation regardless of Config.Deque.
func TestRandomProgramsBothDeques(t *testing.T) {
	for _, kind := range DequeKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			for _, strat := range dequeStrategies() {
				for seed := uint64(1); seed <= 6; seed++ {
					p := newRandomProgram(seed * 0x2B5AD4F7)
					rt := NewRuntime(Config{
						Workers: 4, Strategy: strat, Deque: kind, StackPages: 4096,
					})
					var acc atomic.Int64
					rt.Run(func(w *W) { p.run(w, p.seed, 0, &acc) })
					if got := acc.Load(); got != p.expected {
						t.Errorf("%s/%s seed %d: total %d, want %d",
							strat, kind, seed, got, p.expected)
					}
				}
			}
		})
	}
}

// TestDequeKindsScheduleIdentically is the differential property test of
// the deque abstraction: on a single worker the schedule is a pure
// function of the deque's Push/Pop order, so running the same random
// program under every deque kind and comparing the exact leaf execution
// ORDER (not just the sum) proves the kinds are semantically
// interchangeable under every strategy. This includes the relaxed deque:
// with no thieves its private/published split must preserve the exact
// LIFO pop order, and no duplicate extraction may occur at P=1.
func TestDequeKindsScheduleIdentically(t *testing.T) {
	kinds := DequeKinds()
	for _, strat := range dequeStrategies() {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			for seed := uint64(1); seed <= 8; seed++ {
				p := newRandomProgram(seed * 0x9D2C5681)
				orders := make([][]int64, len(kinds))
				counters := make([]Stats, len(kinds))
				for i, kind := range kinds {
					rt := NewRuntime(Config{
						Workers: 1, Strategy: strat, Deque: kind, StackPages: 4096,
					})
					order := make([]int64, 0, 64)
					var mu atomic.Int64 // appender token; single worker, but keep it honest
					rt.Run(func(w *W) {
						p.runOrdered(w, p.seed, 0, &order, &mu)
					})
					orders[i] = order
					counters[i] = rt.Stats()
				}
				for i := 1; i < len(kinds); i++ {
					if len(orders[0]) != len(orders[i]) {
						t.Fatalf("seed %d: leaf counts differ: %s %d vs %s %d",
							seed, kinds[0], len(orders[0]), kinds[i], len(orders[i]))
					}
					for j := range orders[0] {
						if orders[0][j] != orders[i][j] {
							t.Fatalf("seed %d: %s execution order diverges from %s at leaf %d: %d vs %d",
								seed, kinds[i], kinds[0], j, orders[i][j], orders[0][j])
						}
					}
					a, b := counters[0], counters[i]
					if a.Forks != b.Forks || a.Calls != b.Calls ||
						a.Steals != b.Steals || a.Suspends != b.Suspends ||
						a.Resumes != b.Resumes || a.Unmaps != b.Unmaps {
						t.Fatalf("seed %d: scheduler counters diverge:\n %s: %+v\n %s: %+v",
							seed, kinds[0], a, kinds[i], b)
					}
				}
				for i, kind := range kinds {
					if d := counters[i].DuplicateExtractions; d != 0 {
						t.Fatalf("seed %d: %s at P=1 reported %d duplicate extractions",
							seed, kind, d)
					}
				}
			}
		})
	}
}

// runOrdered is randomProgram.run with the leaf tokens appended in
// execution order instead of summed.
func (p *randomProgram) runOrdered(w *W, seed uint64, depth int, order *[]int64, mu *atomic.Int64) {
	phases, children, call, leaf := shape(seed, depth)
	if phases == 0 {
		for !mu.CompareAndSwap(0, 1) {
		}
		*order = append(*order, leaf)
		mu.Store(0)
		return
	}
	s := seed
	var fr Frame
	w.Init(&fr)
	for ph := 0; ph < phases; ph++ {
		for c := 0; c < children; c++ {
			childSeed := next(&s)
			w.Fork(&fr, func(w *W) { p.runOrdered(w, childSeed, depth+1, order, mu) })
		}
		w.Join(&fr)
	}
	if call {
		callSeed := next(&s)
		w.Call(func(w *W) { p.runOrdered(w, callSeed, depth+1, order, mu) })
	}
}

// TestChaseLevMultiWorkerCountersBalance sanity-checks the lock-free steal
// path under real concurrency: every fork is consumed exactly once, so
// forks = steals + locally-executed tasks, and steals never exceed forks.
func TestChaseLevMultiWorkerCountersBalance(t *testing.T) {
	rt := NewRuntime(Config{Workers: 4, Deque: DequeChaseLev, StackPages: 4096})
	var leaves atomic.Int64
	var fib func(w *W, n int)
	fib = func(w *W, n int) {
		if n < 2 {
			leaves.Add(1)
			return
		}
		var fr Frame
		w.Init(&fr)
		w.Fork(&fr, func(w *W) { fib(w, n-1) })
		w.Call(func(w *W) { fib(w, n-2) })
		w.Join(&fr)
	}
	rt.Run(func(w *W) { fib(w, 16) })
	st := rt.Stats()
	if st.Steals > st.Forks {
		t.Errorf("steals %d exceed forks %d", st.Steals, st.Forks)
	}
	if st.Suspends != st.Resumes {
		t.Errorf("suspends %d != resumes %d", st.Suspends, st.Resumes)
	}
	want := int64(1597) // leaf invocations of fib(16): L(n)=L(n-1)+L(n-2), L(0)=L(1)=1
	if got := leaves.Load(); got != want {
		t.Errorf("leaves = %d, want %d", got, want)
	}
}

// TestRelaxedMultiWorkerExactlyOnce drives the fence-free deque with real
// thief contention: despite at-least-once extraction, the claim layer
// must keep execution exactly-once (the leaf count proves it — a
// double-executed fork would overshoot, a lost one undershoot), with
// Steals counting claim winners only so the counter laws still hold.
// DuplicateExtractions is reported for visibility; any non-negative count
// is legal.
func TestRelaxedMultiWorkerExactlyOnce(t *testing.T) {
	rt := NewRuntime(Config{Workers: 4, Deque: DequeRelaxed, StackPages: 4096})
	var leaves atomic.Int64
	var fib func(w *W, n int)
	fib = func(w *W, n int) {
		if n < 2 {
			leaves.Add(1)
			return
		}
		var fr Frame
		w.Init(&fr)
		w.Fork(&fr, func(w *W) { fib(w, n-1) })
		w.Call(func(w *W) { fib(w, n-2) })
		w.Join(&fr)
	}
	rt.Run(func(w *W) { fib(w, 18) })
	st := rt.Stats()
	if want := int64(4181); leaves.Load() != want {
		t.Errorf("leaves = %d, want %d — a fork executed twice or was lost", leaves.Load(), want)
	}
	if st.Steals > st.Forks {
		t.Errorf("steals %d exceed forks %d", st.Steals, st.Forks)
	}
	if st.Suspends != st.Resumes {
		t.Errorf("suspends %d != resumes %d", st.Suspends, st.Resumes)
	}
	if st.DuplicateExtractions < 0 {
		t.Errorf("DuplicateExtractions = %d underflowed", st.DuplicateExtractions)
	}
	t.Logf("relaxed P=4: forks=%d steals=%d dupExtractions=%d",
		st.Forks, st.Steals, st.DuplicateExtractions)
}
