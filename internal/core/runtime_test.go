package core

import (
	"sync/atomic"
	"testing"
)

// parfib is Listing 1's parallel Fibonacci on the core API: fork n-1, call
// n-2, join. It stresses fork/join density more than any real workload.
func parfib(w *W, n int, out *int64) {
	if n < 2 {
		*out = int64(n)
		return
	}
	var fr Frame
	w.Init(&fr)
	var x, y int64
	w.Fork(&fr, func(cw *W) { parfib(cw, n-1, &x) })
	w.Call(func(cw *W) { parfib(cw, n-2, &y) })
	w.Join(&fr)
	*out = x + y
}

func fibSerial(n int) int64 {
	if n < 2 {
		return int64(n)
	}
	return fibSerial(n-1) + fibSerial(n-2)
}

func runParfib(t *testing.T, cfg Config, n int) (int64, Stats) {
	t.Helper()
	rt := NewRuntime(cfg)
	var result int64
	stats := rt.Run(func(w *W) { parfib(w, n, &result) })
	return result, stats
}

func TestParfibAllStrategies(t *testing.T) {
	const n = 18
	want := fibSerial(n)
	for _, s := range Strategies() {
		for _, workers := range []int{1, 2, 4, 8} {
			if s == StrategyGoroutine && workers > 1 {
				continue // the baseline ignores worker count
			}
			cfg := Config{Workers: workers, Strategy: s}
			got, stats := runParfib(t, cfg, n)
			if got != want {
				t.Errorf("%s P=%d: parfib(%d) = %d, want %d", s, workers, n, got, want)
			}
			if stats.Forks == 0 {
				t.Errorf("%s P=%d: no forks recorded", s, workers)
			}
		}
	}
}

func TestSingleWorkerNeverSteals(t *testing.T) {
	_, stats := runParfib(t, Config{Workers: 1, Strategy: StrategyFibril}, 15)
	if stats.Steals != 0 {
		t.Errorf("steals = %d with one worker, want 0", stats.Steals)
	}
	if stats.Suspends != 0 {
		t.Errorf("suspends = %d with one worker, want 0", stats.Suspends)
	}
	if stats.StacksCreated != 1 {
		t.Errorf("stacks = %d with one worker, want 1", stats.StacksCreated)
	}
}

func TestSuspensionsBalanceResumes(t *testing.T) {
	for _, s := range []Strategy{StrategyFibril, StrategyFibrilNoUnmap, StrategyFibrilMMap, StrategyCilkPlus} {
		_, stats := runParfib(t, Config{Workers: 8, Strategy: s}, 20)
		if stats.Suspends != stats.Resumes {
			t.Errorf("%s: suspends=%d resumes=%d, want equal", s, stats.Suspends, stats.Resumes)
		}
	}
}

func TestFibrilUnmapsOnlyOnSuspension(t *testing.T) {
	_, stats := runParfib(t, Config{Workers: 8, Strategy: StrategyFibril}, 20)
	if stats.Unmaps != stats.Suspends {
		t.Errorf("unmaps=%d suspends=%d, want equal in Fibril mode", stats.Unmaps, stats.Suspends)
	}
	if stats.Unmaps > stats.Steals {
		t.Errorf("unmaps=%d exceeds steals=%d — paper: not every steal unmaps, never the reverse",
			stats.Unmaps, stats.Steals)
	}
}

func TestNoUnmapStrategiesDoNotUnmap(t *testing.T) {
	for _, s := range []Strategy{StrategyFibrilNoUnmap, StrategyCilkPlus, StrategyTBB, StrategyLeapfrog} {
		_, stats := runParfib(t, Config{Workers: 8, Strategy: s}, 20)
		if stats.Unmaps != 0 {
			t.Errorf("%s: unmaps = %d, want 0", s, stats.Unmaps)
		}
		if stats.VM.MadviseCalls != 0 {
			t.Errorf("%s: madvise calls = %d, want 0", s, stats.VM.MadviseCalls)
		}
	}
}

func TestInlineStealingUsesOneStackPerWorker(t *testing.T) {
	// TBB and leapfrogging never suspend, so they need at most P stacks.
	for _, s := range []Strategy{StrategyTBB, StrategyLeapfrog} {
		const workers = 8
		_, stats := runParfib(t, Config{Workers: workers, Strategy: s, StackPages: 4096}, 20)
		if stats.StacksCreated > workers {
			t.Errorf("%s: created %d stacks for %d workers", s, stats.StacksCreated, workers)
		}
		if stats.Suspends != 0 {
			t.Errorf("%s: suspends = %d, want 0", s, stats.Suspends)
		}
	}
}

func TestMMapModeTakesAddressSpaceLock(t *testing.T) {
	_, mm := runParfib(t, Config{Workers: 8, Strategy: StrategyFibrilMMap}, 20)
	if mm.Suspends > 0 && mm.VM.RemapCalls == 0 {
		t.Error("mmap mode suspended but never remapped")
	}
	if mm.VM.DummyTouches != 0 {
		t.Errorf("dummy touches = %d — a stack was used without remap", mm.VM.DummyTouches)
	}
	_, mv := runParfib(t, Config{Workers: 8, Strategy: StrategyFibril}, 20)
	if mv.VM.RemapCalls != 0 {
		t.Errorf("madvise mode recorded %d remaps, want 0 (remap is a no-op)", mv.VM.RemapCalls)
	}
}

func TestFrameReuseAcrossPhases(t *testing.T) {
	// One frame, several fork/join phases — the heat benchmark's pattern.
	rt := NewRuntime(Config{Workers: 4, Strategy: StrategyFibril})
	var total atomic.Int64
	rt.Run(func(w *W) {
		var fr Frame
		w.Init(&fr)
		for phase := 0; phase < 10; phase++ {
			for i := 0; i < 8; i++ {
				w.Fork(&fr, func(cw *W) { total.Add(1) })
			}
			w.Join(&fr)
		}
	})
	if got := total.Load(); got != 80 {
		t.Errorf("completed %d children, want 80", got)
	}
}

func TestNestedFramesInOneTask(t *testing.T) {
	rt := NewRuntime(Config{Workers: 4, Strategy: StrategyFibril})
	var sum atomic.Int64
	rt.Run(func(w *W) {
		var outer, inner Frame
		w.Init(&outer)
		w.Fork(&outer, func(cw *W) { sum.Add(1) })
		w.Init(&inner)
		w.Fork(&inner, func(cw *W) { sum.Add(10) })
		w.Join(&inner)
		w.Fork(&outer, func(cw *W) { sum.Add(100) })
		w.Join(&outer)
	})
	if got := sum.Load(); got != 111 {
		t.Errorf("sum = %d, want 111", got)
	}
}

func TestSerialParallelReciprocity(t *testing.T) {
	// A "serial" helper (plain Call) invokes a callback that forks — the
	// pattern Cilk forbids and Fibril exists to allow (§1).
	rt := NewRuntime(Config{Workers: 4, Strategy: StrategyFibril})
	serialVisitor := func(w *W, visit func(*W, int)) {
		for i := 0; i < 5; i++ {
			i := i
			w.Call(func(cw *W) { visit(cw, i) })
		}
	}
	var sum atomic.Int64
	rt.Run(func(w *W) {
		serialVisitor(w, func(cw *W, item int) {
			var fr Frame
			cw.Init(&fr)
			cw.Fork(&fr, func(gw *W) { sum.Add(int64(item)) })
			cw.Fork(&fr, func(gw *W) { sum.Add(int64(item * 10)) })
			cw.Join(&fr)
		})
	})
	if got := sum.Load(); got != 110 {
		t.Errorf("sum = %d, want 110", got)
	}
}

func TestJoinWithoutForkIsFree(t *testing.T) {
	rt := NewRuntime(Config{Workers: 2, Strategy: StrategyFibril})
	stats := rt.Run(func(w *W) {
		var fr Frame
		w.Init(&fr)
		w.Join(&fr)
	})
	if stats.Suspends != 0 {
		t.Errorf("suspends = %d for an empty join, want 0", stats.Suspends)
	}
}

func TestAllocaAccountsPages(t *testing.T) {
	rt := NewRuntime(Config{Workers: 1, Strategy: StrategyFibril})
	var resident int64
	rt.Run(func(w *W) {
		release := w.Alloca(10 * 4096)
		resident = rt.AddressSpace().Snapshot().RSSPages
		release()
	})
	if resident < 10 {
		t.Errorf("resident = %d pages during Alloca(10 pages), want >= 10", resident)
	}
}

func TestStatsAccumulateAcrossRuns(t *testing.T) {
	rt := NewRuntime(Config{Workers: 2, Strategy: StrategyFibril})
	var out int64
	rt.Run(func(w *W) { parfib(w, 10, &out) })
	first := rt.Stats().Forks
	rt.Run(func(w *W) { parfib(w, 10, &out) })
	if got := rt.Stats().Forks; got != 2*first {
		t.Errorf("forks after two runs = %d, want %d", got, 2*first)
	}
}

func TestRSSReturnsToZeroAfterDrain(t *testing.T) {
	rt := NewRuntime(Config{Workers: 4, Strategy: StrategyFibril})
	var out int64
	rt.Run(func(w *W) { parfib(w, 16, &out) })
	// All stacks are back in the pool with frames popped; resident pages
	// are only what pooled stacks still cache.
	s := rt.AddressSpace().Snapshot()
	if s.RSSPages < 0 {
		t.Errorf("negative RSS %d", s.RSSPages)
	}
	if rt.Stats().MaxStacksUsed > rt.Stats().StacksCreated {
		t.Error("more stacks in use than created")
	}
}

func TestDeepSpawnChainDoesNotOverflowThiefStacks(t *testing.T) {
	// A right-leaning spawn chain: each task forks one child and joins.
	// Under Fibril every suspension moves to a pool stack, so no stack
	// should ever hold more than a few frames.
	rt := NewRuntime(Config{Workers: 4, Strategy: StrategyFibril, FrameBytes: 1024})
	var depthReached atomic.Int64
	var spawn func(w *W, d int)
	spawn = func(w *W, d int) {
		if d == 0 {
			return
		}
		var fr Frame
		w.Init(&fr)
		w.Fork(&fr, func(cw *W) { spawn(cw, d-1) })
		w.Join(&fr)
		depthReached.Add(1)
	}
	rt.Run(func(w *W) { spawn(w, 500) })
	if got := depthReached.Load(); got != 500 {
		t.Errorf("chain completed %d levels, want 500", got)
	}
}

func TestWorkerCountDefaults(t *testing.T) {
	rt := NewRuntime(Config{})
	if rt.Config().Workers <= 0 {
		t.Error("defaulted worker count not positive")
	}
	if rt.Config().FrameBytes != 192 {
		t.Errorf("default frame bytes = %d, want 192", rt.Config().FrameBytes)
	}
	if rt.Config().Strategy != StrategyFibril {
		t.Errorf("default strategy = %v, want fibril", rt.Config().Strategy)
	}
}

func TestStrategyStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Strategies() {
		name := s.String()
		if name == "" || seen[name] {
			t.Errorf("strategy %d has bad/duplicate name %q", int(s), name)
		}
		seen[name] = true
	}
	if got := Strategy(99).String(); got != "Strategy(99)" {
		t.Errorf("unknown strategy string = %q", got)
	}
}
