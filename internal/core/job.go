package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fibril/internal/trace"
)

// This file is the serving lifecycle: a Runtime can be started once
// (Start), accept many concurrent root computations (Submit → *Job), and
// drain gracefully (Close). The one-shot Run/RunErr entry points are thin
// wrappers over this machinery — see runtime.go — so batch and serving
// execution share a single code path.
//
// A submitted root is injected into the scheduler through a dedicated
// root intake (see intake.go) rather than a worker deque: idle thieves
// take roots only after a full steal sweep fails, so in-flight
// computations keep their workers until there is genuinely idle capacity,
// and restricted (TBB/leapfrog) inline steals can never pick up an
// unrelated root. Admission control in front of the intake bounds the
// number of live roots (Config.MaxInflight) and the per-tenant stack-page
// budget (Config.TenantQuotaPages), shedding or queueing per
// Config.Admission.
//
// Under the default IntakeSharded pipeline the admission decision itself
// is lock-free whenever no tenant quotas are configured and the admission
// queue is empty: Submit reserves an inflight slot with one CAS against
// MaxInflight (one uncontended Add when unlimited) and only falls back to
// the admission mutex for queue promotion, tenant budgets, and lifecycle
// transitions. See DESIGN.md §14 for the full pipeline and its Dekker
// arguments.

// Submission errors, surfaced through Job.Err.
var (
	// ErrShed marks a Job rejected at admission under AdmitShed (or any
	// submission that arrived while the Runtime was closing).
	ErrShed = errors.New("core: job shed by admission control")
	// ErrDrained marks a queued Job abandoned by a Close whose context
	// expired before the job could be admitted.
	ErrDrained = errors.New("core: job drained at close")
	// ErrClosed marks a submission that arrived during or after Close.
	ErrClosed = errors.New("core: runtime is closed to new jobs")
)

// AdmissionPolicy selects what Submit does with a job that does not fit —
// MaxInflight reached, or the tenant's page budget exhausted.
type AdmissionPolicy int

const (
	// AdmitQueue (the default) parks the job in an admission queue; it is
	// admitted FIFO (per tenant-fit) as running jobs complete. Queued jobs
	// consume no scheduler resources.
	AdmitQueue AdmissionPolicy = iota
	// AdmitShed rejects the job immediately with ErrShed — the overload
	// posture that keeps latency of admitted work flat at the cost of
	// availability.
	AdmitShed
)

// String returns the policy's display name as used in the experiments.
func (p AdmissionPolicy) String() string {
	switch p {
	case AdmitQueue:
		return "queue"
	case AdmitShed:
		return "shed"
	default:
		return fmt.Sprintf("AdmissionPolicy(%d)", int(p))
	}
}

// AdmissionPolicies lists every policy, in presentation order.
func AdmissionPolicies() []AdmissionPolicy {
	return []AdmissionPolicy{AdmitQueue, AdmitShed}
}

// Job completion states (Job.state).
const (
	jobPending uint32 = iota
	jobDone
)

// closedChan is the shared, permanently closed channel Done hands out for
// already-completed jobs, so polling a finished Job allocates nothing.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// Job is one submitted root computation on a serving Runtime. A Job is
// created by Submit and completes exactly once: executed to completion
// (possibly with a captured panic), shed at admission, or drained by a
// forced Close. All methods are safe from any goroutine.
//
// Jobs are pooled (IntakeSharded): a caller that is done with a handle
// may call Release to recycle it. The wait channel is allocated lazily —
// only when a caller actually blocks in Done/Wait/Err/Seq before the job
// has completed — so the submit → complete fast path never allocates one.
type Job struct {
	id        uint64
	tenant    string
	root      func(*W)
	rt        *Runtime
	submitted time.Time // zero unless a sink consumes KindJobDone (or IntakeMutex)

	// qnext is the intrusive link threading the Job through an intake
	// shard's inbox, its FIFO out list, or its free list (a Job is in at
	// most one of the three at a time).
	qnext atomic.Pointer[Job]

	// Completion handshake. state flips to jobDone exactly once per
	// generation, after the result fields below are written; donep holds
	// the lazily published wait channel; sealed makes the close
	// exactly-once when completer and waiter race (see Done/finish).
	state  atomic.Uint32
	donep  atomic.Pointer[chan struct{}]
	sealed atomic.Bool

	// The fields below are written exactly once, before state flips, and
	// read only after observing jobDone.
	tp  *TaskPanic
	err error
	seq uint64

	// Lazily computed Stats snapshot (first Wait), so completion does not
	// pay the O(P×fields) counter aggregation when nobody reads it. A
	// plain mutex+bool rather than sync.Once because pooled Jobs must be
	// resettable.
	statsMu sync.Mutex
	statsOK bool
	stats   Stats
}

// ID returns the job's submission-order identifier (1-based; assigned by
// Submit, so it orders jobs by arrival).
func (j *Job) ID() uint64 { return j.id }

// Tenant returns the tenant the job was submitted under ("" for the
// default tenant).
func (j *Job) Tenant() string { return j.tenant }

// Done returns a channel closed when the job completes (including shed
// and drained jobs), for select-based composition. The channel is
// allocated on first use; for an already-completed job Done returns a
// shared closed channel without allocating.
func (j *Job) Done() <-chan struct{} {
	if j.state.Load() == jobDone {
		return closedChan
	}
	if p := j.donep.Load(); p != nil {
		return *p
	}
	ch := make(chan struct{})
	if !j.donep.CompareAndSwap(nil, &ch) {
		return *j.donep.Load()
	}
	// Dekker with finish: this waiter published the channel and re-checks
	// the state; the completer stores the state and re-checks the channel.
	// Under sequentially-consistent atomics one side must see the other,
	// and the seal keeps the close exactly-once when both do.
	if j.state.Load() == jobDone {
		j.seal(&ch)
	}
	return ch
}

// seal closes the published wait channel exactly once.
func (j *Job) seal(p *chan struct{}) {
	if j.sealed.CompareAndSwap(false, true) {
		close(*p)
	}
}

// finish publishes the job's completion: flip the state (the result
// fields are already written) and close the wait channel if any waiter
// published one. The state store before the donep load is the completer's
// half of the Dekker pair in Done.
func (j *Job) finish() {
	j.state.Store(jobDone)
	if p := j.donep.Load(); p != nil {
		j.seal(p)
	}
}

// wait blocks until the job completes, allocating the wait channel only
// if the job is still running.
func (j *Job) wait() {
	if j.state.Load() == jobDone {
		return
	}
	<-j.Done()
}

// Wait blocks until the job completes and returns a runtime Stats
// snapshot. The snapshot is computed lazily on the first Wait after
// completion (and cached on the Job), so jobs whose stats nobody reads —
// the common serving case — never pay the sharded-counter aggregation.
// Unlike the old one-shot Run it never panics; inspect Err for a captured
// root panic.
func (j *Job) Wait() Stats {
	j.wait()
	j.statsMu.Lock()
	if !j.statsOK {
		j.stats = j.rt.Stats()
		j.statsOK = true
	}
	s := j.stats
	j.statsMu.Unlock()
	return s
}

// Err blocks until the job completes and reports how it ended: nil for a
// clean run, the *TaskPanic that escaped the root (errors.As-compatible
// with the panic value it wraps), or ErrShed/ErrDrained/ErrClosed for jobs
// admission never ran.
func (j *Job) Err() error {
	j.wait()
	return j.err
}

// Seq blocks until the job completes and returns its completion rank
// (1-based): jobs are numbered in the order they finish, which under
// concurrent submission is generally not submission order.
func (j *Job) Seq() uint64 {
	j.wait()
	return j.seq
}

// Release recycles a completed Job into its runtime's intake pool, where
// the next Submit picks it up without allocating. Release panics if the
// job has not completed. Handoff rules: the caller must be the handle's
// last user — after Release no Job method may be called and no previously
// returned Done channel consulted, and Release must not race any other
// method on the same handle (completion itself does not count: Release
// after Wait/Err is always safe). Release is optional; an unreleased Job
// is simply garbage-collected. Under IntakeMutex (no pooling) Release
// validates and drops the handle.
func (j *Job) Release() {
	if j.state.Load() != jobDone {
		panic("core: Release of an incomplete Job")
	}
	rt, id := j.rt, j.id
	j.rt = nil
	j.id = 0
	j.tenant = ""
	j.root = nil
	j.submitted = time.Time{}
	j.tp = nil
	j.err = nil
	j.seq = 0
	j.statsOK = false
	j.stats = Stats{}
	j.qnext.Store(nil)
	j.donep.Store(nil)
	j.sealed.Store(false)
	j.state.Store(jobPending)
	rt.subq.putJob(id, j)
}

// lifeState is the Runtime's serving lifecycle state. It is stored in
// admitState.life: written only under admitState.mu, loaded lock-free by
// the submit fast path.
type lifeState int32

const (
	lifeIdle    lifeState = iota // no workers up; Submit panics
	lifeServing                  // Start ran; Submit accepted
	lifeClosing                  // Close running; Submit rejected
)

// admitState is the admission-control half of the serving lifecycle: the
// lifecycle state, the inflight count, the per-tenant page reservations,
// and the not-yet-admitted queue. The mutex guards the queue, the tenant
// map, and every lifecycle transition; the atomic fields mirror the state
// the lock-free submit fast path needs (life and qlen are written only
// under mu, inflight is also CASed directly by the fast path — see
// SubmitTenant for the interleaving arguments).
type admitState struct {
	mu       sync.Mutex
	life     atomic.Int32 // lifeState; stores under mu only
	inflight atomic.Int64 // admitted, not yet completed
	qlen     atomic.Int64 // len(queue) mirror; stores under mu only

	max       int   // Config.MaxInflight (0 = unlimited)
	policy    AdmissionPolicy
	quota     int64 // Config.TenantQuotaPages (0 = unlimited)
	reserve   int64 // pages one inflight job reserves (Config.StackPages)
	tenants   map[string]int64
	queue     []*Job // submitted, awaiting admission (AdmitQueue)
	drained   chan struct{}
	drainDone bool
}

// fitsLocked reports whether one more job from tenant fits the inflight
// bound and the tenant's page budget.
func (a *admitState) fitsLocked(tenant string) bool {
	if a.max > 0 && a.inflight.Load() >= int64(a.max) {
		return false
	}
	if a.quota > 0 && a.tenants[tenant]+a.reserve > a.quota {
		return false
	}
	return true
}

// admitLocked reserves capacity for j.
func (a *admitState) admitLocked(j *Job) {
	a.inflight.Add(1)
	if a.quota > 0 {
		if a.tenants == nil {
			a.tenants = make(map[string]int64)
		}
		a.tenants[j.tenant] += a.reserve
	}
}

// releaseLocked returns j's reservation.
func (a *admitState) releaseLocked(j *Job) {
	a.inflight.Add(-1)
	if a.quota > 0 {
		if r := a.tenants[j.tenant] - a.reserve; r > 0 {
			a.tenants[j.tenant] = r
		} else {
			delete(a.tenants, j.tenant)
		}
	}
}

// promoteLocked admits every queued job that now fits, preserving FIFO
// order within the queue but skipping past tenant-blocked entries so one
// over-quota tenant cannot head-of-line-block the others.
func (a *admitState) promoteLocked() []*Job {
	if len(a.queue) == 0 {
		return nil
	}
	var admitted, rest []*Job
	for _, j := range a.queue {
		if a.fitsLocked(j.tenant) {
			a.admitLocked(j)
			admitted = append(admitted, j)
		} else {
			rest = append(rest, j)
		}
	}
	if len(admitted) == 0 {
		return nil
	}
	a.queue = rest
	a.qlen.Store(int64(len(a.queue)))
	return admitted
}

// checkDrainedLocked closes the drain gate once a closing runtime has no
// inflight or queued jobs left.
func (a *admitState) checkDrainedLocked() {
	if lifeState(a.life.Load()) == lifeClosing && a.inflight.Load() == 0 &&
		len(a.queue) == 0 && a.drained != nil && !a.drainDone {
		a.drainDone = true
		close(a.drained)
	}
}

// Start transitions the runtime from idle to serving: the park lot opens
// and every worker slot spins up a persistent thief goroutine that parks
// when idle. Workers stay up — across any number of Submits — until Close.
// Start panics if the runtime is already serving or closing; use Run for
// self-managing one-shot execution.
func (rt *Runtime) Start() {
	if !rt.ensureStarted() {
		panic("core: Start on an already-started Runtime")
	}
}

// ensureStarted starts the runtime if it is idle, reporting whether this
// call performed the start (false when already serving). It panics during
// Close: the caller raced a shutdown.
func (rt *Runtime) ensureStarted() bool {
	a := &rt.admit
	a.mu.Lock()
	switch lifeState(a.life.Load()) {
	case lifeServing:
		a.mu.Unlock()
		return false
	case lifeClosing:
		a.mu.Unlock()
		panic("core: Start while the Runtime is closing")
	}
	a.life.Store(int32(lifeServing))
	a.mu.Unlock()

	rt.done.Store(false)
	rt.park.open()
	if rt.cfg.Strategy == StrategyGoroutine {
		return true // slotless: every root gets its own goroutine at dispatch
	}
	for _, slot := range rt.workers {
		rt.goroutineWG.Add(1)
		go rt.thiefLoop(slot)
	}
	return true
}

// newJob builds (or recycles) the Job for one submission. Under
// IntakeSharded the submit-time clock read exists only when a sink
// consumes KindJobDone — untraced serving pays no time.Now per job — and
// the wait channel stays unallocated until someone blocks on the handle.
// The IntakeMutex baseline keeps the PR 8 costs exactly: unconditional
// timestamp and an eager done channel per submission.
func (rt *Runtime) newJob(tenant string, root func(*W)) *Job {
	id := uint64(rt.jobsSubmitted.Add(1))
	j := rt.subq.getJob(id)
	if j == nil {
		j = &Job{}
	}
	j.rt = rt
	j.id = id
	j.tenant = tenant
	j.root = root
	if rt.fastIntake {
		if rt.stampJobs {
			j.submitted = time.Now()
		}
	} else {
		j.submitted = time.Now()
		ch := make(chan struct{})
		j.donep.Store(&ch)
	}
	return j
}

// Submit injects root as an independent top-level computation under the
// default tenant. See SubmitTenant.
func (rt *Runtime) Submit(root func(*W)) *Job {
	return rt.SubmitTenant("", root)
}

// SubmitTenant injects root as an independent top-level computation
// accounted to tenant, returning a Job handle immediately — Submit never
// blocks. The root is picked up by the first worker whose steal sweep
// comes up empty, so running computations are not preempted. If admission
// control rejects the job (AdmitShed, or a Close in progress) the returned
// Job is already complete with Err set; under AdmitQueue it waits in the
// admission queue. Submit panics on an idle runtime — call Start first (or
// use Run, which manages the lifecycle itself).
//
// With IntakeSharded (default), no tenant quotas, and an empty admission
// queue, the whole admission decision is lock-free: one CAS reserves an
// inflight slot (one plain Add when MaxInflight is 0), and a full
// AdmitShed rejection touches no admission state at all. The admission
// mutex is taken only for queueing, promotion, tenant budgets, and
// submissions racing a lifecycle transition.
func (rt *Runtime) SubmitTenant(tenant string, root func(*W)) *Job {
	j := rt.newJob(tenant, root)
	if rt.fastIntake && rt.admit.quota == 0 && rt.submitFast(j) {
		return j
	}
	return rt.submitSlow(j)
}

// submitFast is the lock-free admission attempt, reporting whether the
// submission was fully resolved (admitted or shed). The interleavings:
//
//   - Against Close: the slot reservation (Add/CAS) is published before
//     the lifecycle re-check below; Close stores lifeClosing before
//     reading inflight (both under SC atomics). If the re-check still
//     reads lifeServing, Close's read is ordered after the reservation
//     and waits for this job; if it reads lifeClosing, the reservation is
//     rolled back under the mutex, where checkDrainedLocked releases a
//     Close that observed the transient slot.
//   - Against queued jobs: the qlen check keeps FIFO fairness — the fast
//     path stands down whenever the admission queue is visibly non-empty,
//     and the enqueue path publishes qlen before re-running promotion, so
//     a freed slot is never hidden from a queued job (see submitSlow).
//   - The lock-free shed (policy AdmitShed, inflight full) mutates no
//     admission state: it reads inflight once and rejects, exactly as the
//     mutex path would have, and a race with a concurrent completion at
//     worst sheds a job that would have fit a microsecond later — the
//     same nondeterminism the locked path already had.
func (rt *Runtime) submitFast(j *Job) bool {
	a := &rt.admit
	if lifeState(a.life.Load()) != lifeServing || a.qlen.Load() != 0 {
		return false
	}
	if a.max > 0 {
		for {
			n := a.inflight.Load()
			if n >= int64(a.max) {
				if a.policy == AdmitShed {
					rt.jobsShed.Add(1)
					rt.finishRejected(j, ErrShed)
					return true
				}
				return false // AdmitQueue: the mutex path enqueues
			}
			if a.inflight.CompareAndSwap(n, n+1) {
				break
			}
		}
	} else {
		a.inflight.Add(1)
	}
	if lifeState(a.life.Load()) != lifeServing {
		// Raced a lifecycle transition: undo the reservation and let the
		// mutex path resolve the submission against the settled state.
		a.mu.Lock()
		a.inflight.Add(-1)
		a.checkDrainedLocked()
		a.mu.Unlock()
		return false
	}
	rt.dispatch(j)
	return true
}

// submitSlow is the mutex admission path: lifecycle checks, tenant
// budgets, queueing and shedding — everything the fast path cannot decide
// with a CAS.
func (rt *Runtime) submitSlow(j *Job) *Job {
	a := &rt.admit
	a.mu.Lock()
	switch lifeState(a.life.Load()) {
	case lifeIdle:
		a.mu.Unlock()
		panic("core: Submit on an idle Runtime (call Start first)")
	case lifeClosing:
		a.mu.Unlock()
		rt.jobsShed.Add(1)
		rt.finishRejected(j, ErrClosed)
		return j
	}
	if !a.fitsLocked(j.tenant) {
		if a.policy == AdmitShed {
			a.mu.Unlock()
			rt.jobsShed.Add(1)
			rt.finishRejected(j, ErrShed)
			return j
		}
		a.queue = append(a.queue, j)
		a.qlen.Store(int64(len(a.queue)))
		// A lock-free completion may have freed capacity between the fits
		// check and this enqueue (its release takes no mutex). Re-running
		// promotion here closes that Dekker pair: the completer either
		// read qlen != 0 and will promote under the mutex, or its
		// decrement is ordered before this promotion's inflight read.
		promoted := a.promoteLocked()
		a.mu.Unlock()
		for _, q := range promoted {
			rt.dispatch(q)
		}
		return j
	}
	a.admitLocked(j)
	a.mu.Unlock()
	rt.dispatch(j)
	return j
}

// dispatch hands an admitted job to the scheduler: push on the root
// intake and wake a single parked thief — publish-then-wake, the same
// lost-wakeup-free Dekker pair Fork uses, and one root wakes one thief
// (the IntakeMutex baseline keeps PR 8's broadcast). The goroutine
// baseline is slotless, so each root gets a goroutine with its own pooled
// stack instead.
func (rt *Runtime) dispatch(j *Job) {
	rt.jobsAdmitted.Add(1)
	if rt.cfg.Strategy == StrategyGoroutine {
		rt.goroutineWG.Add(1)
		go func() {
			defer rt.goroutineWG.Done()
			st := rt.takeStack(-1)
			w := rt.newW(nil, st, rt.shard(-1))
			w.runRoot(task{fn: j.root, bytes: int32(rt.cfg.FrameBytes), job: j})
			rt.pool.Put(-1, st)
		}()
		return
	}
	rt.subq.push(j)
	if rt.fastIntake {
		rt.park.wake(1)
	} else {
		rt.park.wakeAll()
	}
}

// nextRoot claims the oldest submitted root (oldest in the shard the
// sweep reaches first) as a task, if any. Called by thieves only after a
// full steal sweep failed: stolen work (continuing an in-flight
// computation, draining its suspended stacks) takes priority over opening
// a new root, which keeps the live-root set — and with it the space
// bound's P multiplier — as small as the load allows. self spreads
// concurrent drains across intake shards (each thief starts at its own
// slot's shard).
func (rt *Runtime) nextRoot(self int) (task, bool) {
	j, ok := rt.subq.pop(self)
	if !ok {
		return task{}, false
	}
	return task{fn: j.root, bytes: int32(rt.cfg.FrameBytes), job: j}, true
}

// completeJob finishes j after its root returned (or panicked): stamp the
// completion rank, surface a captured panic as the job error, emit the
// request-latency event, release the admission reservation (promoting
// queued jobs that now fit), and only then publish completion. On the
// lock-free path the release is one atomic decrement; the mutex is taken
// only when a queued job may be waiting on the freed slot or a Close may
// be waiting on the drain gate. The Stats snapshot PR 8 took here is gone
// — it is computed lazily on first Wait (the IntakeMutex baseline keeps
// the eager snapshot).
func (rt *Runtime) completeJob(slot int, j *Job) {
	if j.tp != nil {
		j.err = j.tp
	}
	j.seq = uint64(rt.jobSeq.Add(1))
	rt.jobsCompleted.Add(1)
	if rt.trc.Wants(trace.KindJobDone) {
		rt.trc.Emit(slot, trace.KindJobDone, int64(j.id), time.Since(j.submitted))
	}

	a := &rt.admit
	if rt.fastIntake && a.quota == 0 {
		a.inflight.Add(-1)
		// The decrement above is published before these loads; the
		// enqueue path stores qlen (and Close stores lifeClosing) before
		// re-reading inflight. Whichever side loses the race sees the
		// other, so a freed slot is never hidden from a queued job and a
		// drain gate never misses its last completion.
		if a.qlen.Load() != 0 || lifeState(a.life.Load()) == lifeClosing {
			rt.releaseSlow(nil)
		}
	} else {
		rt.releaseSlow(j)
	}

	if !rt.fastIntake {
		j.stats = rt.Stats() // PR 8 parity: eager snapshot at completion
		j.statsOK = true
	}
	j.finish()
}

// releaseSlow is the mutex half of completion: return j's reservation
// (nil when the lock-free path already dropped it), promote queued jobs
// that now fit, and check the drain gate.
func (rt *Runtime) releaseSlow(j *Job) {
	a := &rt.admit
	a.mu.Lock()
	if j != nil {
		a.releaseLocked(j)
	}
	promoted := a.promoteLocked()
	a.checkDrainedLocked()
	a.mu.Unlock()
	for _, q := range promoted {
		rt.dispatch(q)
	}
}

// finishRejected completes a job that admission never ran (shed, drained,
// or submitted while closing).
func (rt *Runtime) finishRejected(j *Job, err error) {
	j.err = err
	j.seq = uint64(rt.jobSeq.Add(1))
	if !rt.fastIntake {
		j.stats = rt.Stats()
		j.statsOK = true
	}
	j.finish()
}

// Close drains the runtime and returns it to idle: no new submissions are
// accepted, every admitted job (running or queued for a worker) runs to
// completion, and — while ctx lasts — jobs still waiting in the admission
// queue are admitted as capacity frees up. If ctx expires first, the
// not-yet-admitted queue is abandoned (each such Job completes with
// ErrDrained, counted in Stats.JobsDrained) and Close still waits for the
// admitted jobs, which always finish. Teardown then parks nothing: thieves
// unwind, stacks return to the pool, reclaim tickets flush, the trace
// flushes, and the runtime may be started (or Run) again. A nil ctx means
// wait indefinitely. Close returns ctx's error if the drain was forced,
// nil otherwise; calling Close on an idle runtime is a no-op. Close must
// not be called concurrently with itself.
func (rt *Runtime) Close(ctx context.Context) error {
	a := &rt.admit
	a.mu.Lock()
	switch lifeState(a.life.Load()) {
	case lifeIdle:
		a.mu.Unlock()
		return nil
	case lifeClosing:
		a.mu.Unlock()
		panic("core: concurrent Close calls on one Runtime")
	}
	// Dekker with submitFast: the closing store is published before the
	// inflight read below. A fast submission that reserved its slot
	// before this store is visible here — Close waits for it; one that
	// re-checks the lifecycle after it rolls the reservation back and
	// rings the drain gate.
	a.life.Store(int32(lifeClosing))
	var drained chan struct{}
	if a.inflight.Load() > 0 || len(a.queue) > 0 {
		drained = make(chan struct{})
		a.drained = drained
		a.drainDone = false
	}
	a.mu.Unlock()

	var err error
	if drained != nil {
		if ctx == nil {
			<-drained
		} else {
			select {
			case <-drained:
			case <-ctx.Done():
				err = ctx.Err()
				rt.abandonQueued()
				<-drained
			}
		}
	}

	// Quiesced: no admitted work remains anywhere. Tear down exactly as
	// the old per-Run epilogue did — wake every parked thief so it
	// observes done, release any thief blocked in a bounded pool's Take,
	// wait for every worker goroutine to unwind, flush reclaim tickets the
	// resumes did not cancel, then reopen the pool for the next Start.
	rt.done.Store(true)
	rt.park.close()
	rt.pool.Close()
	rt.goroutineWG.Wait()
	rt.reclaim.drainAll(0, rt.shard(0))
	rt.trc.Flush()
	rt.pool.Reopen()

	a.mu.Lock()
	a.life.Store(int32(lifeIdle))
	a.drained = nil
	a.mu.Unlock()
	return err
}

// abandonQueued fails every job still waiting in the admission queue with
// ErrDrained — the forced half of Close. Admitted jobs are untouched;
// they always run to completion, so JobsAdmitted == JobsCompleted holds
// at quiescence even after a forced drain.
func (rt *Runtime) abandonQueued() {
	a := &rt.admit
	a.mu.Lock()
	dropped := a.queue
	a.queue = nil
	a.qlen.Store(0)
	a.checkDrainedLocked()
	a.mu.Unlock()
	for _, j := range dropped {
		rt.jobsDrained.Add(1)
		rt.finishRejected(j, ErrDrained)
	}
}

// InflightJobs returns the number of admitted, not-yet-completed Jobs
// (racy snapshot; 0 at quiescence).
func (rt *Runtime) InflightJobs() int {
	return int(rt.admit.inflight.Load())
}

// QueuedJobs returns the number of Jobs waiting for admission plus
// admitted roots not yet picked up by a worker (racy snapshot; 0 at
// quiescence).
func (rt *Runtime) QueuedJobs() int {
	return int(rt.admit.qlen.Load()) + rt.subq.len()
}
