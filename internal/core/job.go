package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fibril/internal/trace"
)

// This file is the serving lifecycle: a Runtime can be started once
// (Start), accept many concurrent root computations (Submit → *Job), and
// drain gracefully (Close). The one-shot Run/RunErr entry points are thin
// wrappers over this machinery — see runtime.go — so batch and serving
// execution share a single code path.
//
// A submitted root is injected into the scheduler through a dedicated FIFO
// (rootQueue) rather than a worker deque: idle thieves take roots only
// after a full steal sweep fails, so in-flight computations keep their
// workers until there is genuinely idle capacity, and restricted
// (TBB/leapfrog) inline steals can never pick up an unrelated root.
// Admission control in front of the queue bounds the number of live roots
// (Config.MaxInflight) and the per-tenant stack-page budget
// (Config.TenantQuotaPages), shedding or queueing per Config.Admission.

// Submission errors, surfaced through Job.Err.
var (
	// ErrShed marks a Job rejected at admission under AdmitShed (or any
	// submission that arrived while the Runtime was closing).
	ErrShed = errors.New("core: job shed by admission control")
	// ErrDrained marks a queued Job abandoned by a Close whose context
	// expired before the job could be admitted.
	ErrDrained = errors.New("core: job drained at close")
	// ErrClosed marks a submission that arrived during or after Close.
	ErrClosed = errors.New("core: runtime is closed to new jobs")
)

// AdmissionPolicy selects what Submit does with a job that does not fit —
// MaxInflight reached, or the tenant's page budget exhausted.
type AdmissionPolicy int

const (
	// AdmitQueue (the default) parks the job in an admission queue; it is
	// admitted FIFO (per tenant-fit) as running jobs complete. Queued jobs
	// consume no scheduler resources.
	AdmitQueue AdmissionPolicy = iota
	// AdmitShed rejects the job immediately with ErrShed — the overload
	// posture that keeps latency of admitted work flat at the cost of
	// availability.
	AdmitShed
)

// String returns the policy's display name as used in the experiments.
func (p AdmissionPolicy) String() string {
	switch p {
	case AdmitQueue:
		return "queue"
	case AdmitShed:
		return "shed"
	default:
		return fmt.Sprintf("AdmissionPolicy(%d)", int(p))
	}
}

// AdmissionPolicies lists every policy, in presentation order.
func AdmissionPolicies() []AdmissionPolicy {
	return []AdmissionPolicy{AdmitQueue, AdmitShed}
}

// Job is one submitted root computation on a serving Runtime. A Job is
// created by Submit and completes exactly once: executed to completion
// (possibly with a captured panic), shed at admission, or drained by a
// forced Close. All methods are safe from any goroutine.
type Job struct {
	id        uint64
	tenant    string
	root      func(*W)
	submitted time.Time

	done chan struct{}
	// The fields below are written exactly once, before done is closed,
	// and read only after <-done.
	tp    *TaskPanic
	err   error
	stats Stats
	seq   uint64
}

// ID returns the job's submission-order identifier (1-based; assigned by
// Submit, so it orders jobs by arrival).
func (j *Job) ID() uint64 { return j.id }

// Tenant returns the tenant the job was submitted under ("" for the
// default tenant).
func (j *Job) Tenant() string { return j.tenant }

// Done returns a channel closed when the job completes (including shed and
// drained jobs), for select-based composition.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job completes and returns the runtime's
// accumulated Stats snapshot taken at that completion. Unlike the old
// one-shot Run it never panics; inspect Err for a captured root panic.
func (j *Job) Wait() Stats {
	<-j.done
	return j.stats
}

// Err blocks until the job completes and reports how it ended: nil for a
// clean run, the *TaskPanic that escaped the root (errors.As-compatible
// with the panic value it wraps), or ErrShed/ErrDrained/ErrClosed for jobs
// admission never ran.
func (j *Job) Err() error {
	<-j.done
	return j.err
}

// Seq blocks until the job completes and returns its completion rank
// (1-based): jobs are numbered in the order they finish, which under
// concurrent submission is generally not submission order.
func (j *Job) Seq() uint64 {
	<-j.done
	return j.seq
}

// lifeState is the Runtime's serving lifecycle state, guarded by
// admitState.mu.
type lifeState int

const (
	lifeIdle    lifeState = iota // no workers up; Submit panics
	lifeServing                  // Start ran; Submit accepted
	lifeClosing                  // Close running; Submit rejected
)

// admitState is the admission-control half of the serving lifecycle: the
// lifecycle state, the inflight count, the per-tenant page reservations,
// and the not-yet-admitted queue. One mutex guards it all — admission is
// per-request work, not per-fork work, so a lock here never touches the
// scheduler hot path.
type admitState struct {
	mu        sync.Mutex
	state     lifeState
	inflight  int // admitted, not yet completed
	max       int // Config.MaxInflight (0 = unlimited)
	policy    AdmissionPolicy
	quota     int64 // Config.TenantQuotaPages (0 = unlimited)
	reserve   int64 // pages one inflight job reserves (Config.StackPages)
	tenants   map[string]int64
	queue     []*Job // submitted, awaiting admission (AdmitQueue)
	drained   chan struct{}
	drainDone bool
}

// fitsLocked reports whether one more job from tenant fits the inflight
// bound and the tenant's page budget.
func (a *admitState) fitsLocked(tenant string) bool {
	if a.max > 0 && a.inflight >= a.max {
		return false
	}
	if a.quota > 0 && a.tenants[tenant]+a.reserve > a.quota {
		return false
	}
	return true
}

// admitLocked reserves capacity for j.
func (a *admitState) admitLocked(j *Job) {
	a.inflight++
	if a.quota > 0 {
		if a.tenants == nil {
			a.tenants = make(map[string]int64)
		}
		a.tenants[j.tenant] += a.reserve
	}
}

// releaseLocked returns j's reservation.
func (a *admitState) releaseLocked(j *Job) {
	a.inflight--
	if a.quota > 0 {
		if r := a.tenants[j.tenant] - a.reserve; r > 0 {
			a.tenants[j.tenant] = r
		} else {
			delete(a.tenants, j.tenant)
		}
	}
}

// promoteLocked admits every queued job that now fits, preserving FIFO
// order within the queue but skipping past tenant-blocked entries so one
// over-quota tenant cannot head-of-line-block the others.
func (a *admitState) promoteLocked() []*Job {
	if len(a.queue) == 0 {
		return nil
	}
	var admitted, rest []*Job
	for _, j := range a.queue {
		if a.fitsLocked(j.tenant) {
			a.admitLocked(j)
			admitted = append(admitted, j)
		} else {
			rest = append(rest, j)
		}
	}
	if len(admitted) == 0 {
		return nil
	}
	a.queue = rest
	return admitted
}

// checkDrainedLocked closes the drain gate once a closing runtime has no
// inflight or queued jobs left.
func (a *admitState) checkDrainedLocked() {
	if a.state == lifeClosing && a.inflight == 0 && len(a.queue) == 0 &&
		a.drained != nil && !a.drainDone {
		a.drainDone = true
		close(a.drained)
	}
}

// rootQueue is the FIFO of admitted roots awaiting a worker. It is
// deliberately separate from looseQueue: loose tasks are already-claimed,
// already-counted *steals*, while roots are new computations that must not
// perturb the steal counters or the trace-reconciliation laws.
type rootQueue struct {
	mu sync.Mutex
	n  atomic.Int64
	js []*Job
}

// push appends j. Callers wake the park lot afterwards, mirroring Fork's
// publish-then-wake Dekker pair, so a parked thief cannot miss the root.
func (q *rootQueue) push(j *Job) {
	q.mu.Lock()
	q.js = append(q.js, j)
	q.n.Store(int64(len(q.js)))
	q.mu.Unlock()
}

// pop removes the oldest root. The n.Load fast path keeps the empty case
// (every failed steal sweep ends here) at one atomic read.
func (q *rootQueue) pop() (*Job, bool) {
	if q.n.Load() == 0 {
		return nil, false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.js) == 0 {
		return nil, false
	}
	j := q.js[0]
	q.js[0] = nil
	q.js = q.js[1:]
	q.n.Store(int64(len(q.js)))
	return j, true
}

// len reports the queue length (racy snapshot, exact at quiescence).
func (q *rootQueue) len() int { return int(q.n.Load()) }

// Start transitions the runtime from idle to serving: the park lot opens
// and every worker slot spins up a persistent thief goroutine that parks
// when idle. Workers stay up — across any number of Submits — until Close.
// Start panics if the runtime is already serving or closing; use Run for
// self-managing one-shot execution.
func (rt *Runtime) Start() {
	if !rt.ensureStarted() {
		panic("core: Start on an already-started Runtime")
	}
}

// ensureStarted starts the runtime if it is idle, reporting whether this
// call performed the start (false when already serving). It panics during
// Close: the caller raced a shutdown.
func (rt *Runtime) ensureStarted() bool {
	a := &rt.admit
	a.mu.Lock()
	switch a.state {
	case lifeServing:
		a.mu.Unlock()
		return false
	case lifeClosing:
		a.mu.Unlock()
		panic("core: Start while the Runtime is closing")
	}
	a.state = lifeServing
	a.mu.Unlock()

	rt.done.Store(false)
	rt.park.open()
	if rt.cfg.Strategy == StrategyGoroutine {
		return true // slotless: every root gets its own goroutine at dispatch
	}
	for _, slot := range rt.workers {
		rt.goroutineWG.Add(1)
		go rt.thiefLoop(slot)
	}
	return true
}

// Submit injects root as an independent top-level computation under the
// default tenant. See SubmitTenant.
func (rt *Runtime) Submit(root func(*W)) *Job {
	return rt.SubmitTenant("", root)
}

// SubmitTenant injects root as an independent top-level computation
// accounted to tenant, returning a Job handle immediately — Submit never
// blocks. The root is picked up by the first worker whose steal sweep
// comes up empty, so running computations are not preempted. If admission
// control rejects the job (AdmitShed, or a Close in progress) the returned
// Job is already complete with Err set; under AdmitQueue it waits in the
// admission queue. Submit panics on an idle runtime — call Start first (or
// use Run, which manages the lifecycle itself).
func (rt *Runtime) SubmitTenant(tenant string, root func(*W)) *Job {
	j := &Job{
		id:        uint64(rt.jobsSubmitted.Add(1)),
		tenant:    tenant,
		root:      root,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	a := &rt.admit
	a.mu.Lock()
	switch a.state {
	case lifeIdle:
		a.mu.Unlock()
		panic("core: Submit on an idle Runtime (call Start first)")
	case lifeClosing:
		a.mu.Unlock()
		rt.jobsShed.Add(1)
		rt.finishRejected(j, ErrClosed)
		return j
	}
	if !a.fitsLocked(tenant) {
		if a.policy == AdmitShed {
			a.mu.Unlock()
			rt.jobsShed.Add(1)
			rt.finishRejected(j, ErrShed)
			return j
		}
		a.queue = append(a.queue, j)
		a.mu.Unlock()
		return j
	}
	a.admitLocked(j)
	a.mu.Unlock()
	rt.dispatch(j)
	return j
}

// dispatch hands an admitted job to the scheduler: push on the root FIFO
// and wake a parked thief (publish-then-wake, the same lost-wakeup-free
// Dekker pair Fork uses). The goroutine baseline is slotless, so each root
// gets a goroutine with its own pooled stack instead.
func (rt *Runtime) dispatch(j *Job) {
	rt.jobsAdmitted.Add(1)
	if rt.cfg.Strategy == StrategyGoroutine {
		rt.goroutineWG.Add(1)
		go func() {
			defer rt.goroutineWG.Done()
			st := rt.takeStack(-1)
			w := rt.newW(nil, st, rt.shard(-1))
			w.runRoot(task{fn: j.root, bytes: int32(rt.cfg.FrameBytes), job: j})
			rt.pool.Put(-1, st)
		}()
		return
	}
	rt.subq.push(j)
	rt.park.wake()
}

// nextRoot claims the oldest submitted root as a task, if any. Called by
// thieves only after a full steal sweep failed: stolen work (continuing an
// in-flight computation, draining its suspended stacks) takes priority
// over opening a new root, which keeps the live-root set — and with it the
// space bound's P multiplier — as small as the load allows.
func (rt *Runtime) nextRoot() (task, bool) {
	j, ok := rt.subq.pop()
	if !ok {
		return task{}, false
	}
	return task{fn: j.root, bytes: int32(rt.cfg.FrameBytes), job: j}, true
}

// completeJob finishes j after its root returned (or panicked): stamp the
// completion rank, surface a captured panic as the job error, emit the
// request-latency event, release the admission reservation (promoting
// queued jobs that now fit), and only then publish the stats snapshot and
// close the done channel.
func (rt *Runtime) completeJob(slot int, j *Job) {
	if j.tp != nil {
		j.err = j.tp
	}
	j.seq = uint64(rt.jobSeq.Add(1))
	rt.jobsCompleted.Add(1)
	if rt.trc.Wants(trace.KindJobDone) {
		rt.trc.Emit(slot, trace.KindJobDone, int64(j.id), time.Since(j.submitted))
	}

	a := &rt.admit
	a.mu.Lock()
	a.releaseLocked(j)
	promoted := a.promoteLocked()
	a.checkDrainedLocked()
	a.mu.Unlock()
	for _, q := range promoted {
		rt.dispatch(q)
	}

	j.stats = rt.Stats()
	close(j.done)
}

// finishRejected completes a job that admission never ran (shed, drained,
// or submitted while closing).
func (rt *Runtime) finishRejected(j *Job, err error) {
	j.err = err
	j.seq = uint64(rt.jobSeq.Add(1))
	j.stats = rt.Stats()
	close(j.done)
}

// Close drains the runtime and returns it to idle: no new submissions are
// accepted, every admitted job (running or queued for a worker) runs to
// completion, and — while ctx lasts — jobs still waiting in the admission
// queue are admitted as capacity frees up. If ctx expires first, the
// not-yet-admitted queue is abandoned (each such Job completes with
// ErrDrained, counted in Stats.JobsDrained) and Close still waits for the
// admitted jobs, which always finish. Teardown then parks nothing: thieves
// unwind, stacks return to the pool, reclaim tickets flush, the trace
// flushes, and the runtime may be started (or Run) again. A nil ctx means
// wait indefinitely. Close returns ctx's error if the drain was forced,
// nil otherwise; calling Close on an idle runtime is a no-op. Close must
// not be called concurrently with itself.
func (rt *Runtime) Close(ctx context.Context) error {
	a := &rt.admit
	a.mu.Lock()
	switch a.state {
	case lifeIdle:
		a.mu.Unlock()
		return nil
	case lifeClosing:
		a.mu.Unlock()
		panic("core: concurrent Close calls on one Runtime")
	}
	a.state = lifeClosing
	var drained chan struct{}
	if a.inflight > 0 || len(a.queue) > 0 {
		drained = make(chan struct{})
		a.drained = drained
		a.drainDone = false
	}
	a.mu.Unlock()

	var err error
	if drained != nil {
		if ctx == nil {
			<-drained
		} else {
			select {
			case <-drained:
			case <-ctx.Done():
				err = ctx.Err()
				rt.abandonQueued()
				<-drained
			}
		}
	}

	// Quiesced: no admitted work remains anywhere. Tear down exactly as
	// the old per-Run epilogue did — wake every parked thief so it
	// observes done, release any thief blocked in a bounded pool's Take,
	// wait for every worker goroutine to unwind, flush reclaim tickets the
	// resumes did not cancel, then reopen the pool for the next Start.
	rt.done.Store(true)
	rt.park.close()
	rt.pool.Close()
	rt.goroutineWG.Wait()
	rt.reclaim.drainAll(0, rt.shard(0))
	rt.trc.Flush()
	rt.pool.Reopen()

	a.mu.Lock()
	a.state = lifeIdle
	a.drained = nil
	a.mu.Unlock()
	return err
}

// abandonQueued fails every job still waiting in the admission queue with
// ErrDrained — the forced half of Close. Admitted jobs are untouched;
// they always run to completion, so JobsAdmitted == JobsCompleted holds
// at quiescence even after a forced drain.
func (rt *Runtime) abandonQueued() {
	a := &rt.admit
	a.mu.Lock()
	dropped := a.queue
	a.queue = nil
	a.checkDrainedLocked()
	a.mu.Unlock()
	for _, j := range dropped {
		rt.jobsDrained.Add(1)
		rt.finishRejected(j, ErrDrained)
	}
}

// InflightJobs returns the number of admitted, not-yet-completed Jobs
// (racy snapshot; 0 at quiescence).
func (rt *Runtime) InflightJobs() int {
	rt.admit.mu.Lock()
	defer rt.admit.mu.Unlock()
	return rt.admit.inflight
}

// QueuedJobs returns the number of Jobs waiting for admission plus
// admitted roots not yet picked up by a worker (racy snapshot; 0 at
// quiescence).
func (rt *Runtime) QueuedJobs() int {
	rt.admit.mu.Lock()
	n := len(rt.admit.queue)
	rt.admit.mu.Unlock()
	return n + rt.subq.len()
}
