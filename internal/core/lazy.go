package core

import (
	"runtime"
	"unsafe"
)

// This file implements steal-driven lazy loop splitting (in the spirit of
// Tzannes et al.'s lazy binary splitting): instead of eagerly forking a
// closure per half-range down to the grain — O(n/grain) allocations and
// deque operations whether or not anyone is idle — the owner runs the
// range as tight serial chunks and probes ShouldSplit between chunks,
// forking the far half only when the probe says a thief could use it.
// Each split is a ForkArg of a loopDesc stored in an arena Scratch block,
// so a split costs no heap allocation either.

// loopDesc is the argument record of a lazily-split loop task, stored in
// a Scratch payload (32 bytes, well under ScratchBytes).
type loopDesc struct {
	lo, hi, grain int
	body          func(*W, int)
}

// AutoGrain picks a serial grain from the range size alone. It is
// deliberately independent of the worker count: loop results that depend
// on the grain (Reduce's combine-tree shape) stay identical at every P,
// and a range's chunking is reproducible run to run. The divisor leaves
// a few hundred potential chunks for load balancing; the cap keeps
// per-chunk probe latency bounded on huge ranges.
func AutoGrain(n int) int {
	g := n / 256
	if g < 1 {
		g = 1
	}
	if g > 2048 {
		g = 2048
	}
	return g
}

// LazyFor runs body(i) for every i in [lo, hi) with steal-driven lazy
// splitting. grain is the largest range executed as one serial chunk;
// grain <= 0 selects AutoGrain. Iterations must be independent; a panic
// in any iteration surfaces at the caller (first panic wins).
func LazyFor(w *W, lo, hi, grain int, body func(*W, int)) {
	if hi <= lo {
		return
	}
	if grain <= 0 {
		grain = AutoGrain(hi - lo)
	}
	if hi-lo <= grain {
		for i := lo; i < hi; i++ {
			body(w, i)
		}
		return
	}
	w.lazyRun(w.AcquireScratch(), lo, hi, grain, body)
	// Loop descriptors live in unscanned Scratch payloads, so they keep
	// nothing alive; this pins the body closure (the one object every
	// descriptor points at) until the last chunk has run.
	runtime.KeepAlive(body)
}

// loopTramp is the task body of a lazily-split loop half: recover the
// descriptor from the Scratch payload and keep splitting. Being a
// package-level function, its func value is static — no allocation.
func loopTramp(w *W, p unsafe.Pointer) {
	s := (*Scratch)(p)
	d := (*loopDesc)(s.Ptr())
	w.lazyRun(s, d.lo, d.hi, d.grain, d.body)
}

// lazyRun executes [lo, hi) with lazy splitting, forking on own's frame
// and releasing own on normal completion. On a panic unwind the release
// is skipped deliberately: the block leaks to the GC, because recycling a
// frame that pending siblings may still reference would corrupt it (see
// ReleaseScratch).
func (w *W) lazyRun(own *Scratch, lo, hi, grain int, body func(*W, int)) {
	fr := own.Frame()
	forked := false
	for hi-lo > grain {
		if w.ShouldSplit() {
			// Somebody is hungry: hand off the far half, keep the near
			// half. Splitting at the midpoint (rather than peeling one
			// grain) keeps the handed-off piece large, so span stays
			// O(log n) splits deep like the eager divide-and-conquer.
			mid := lo + (hi-lo)/2
			child := w.AcquireScratch()
			d := (*loopDesc)(child.Ptr())
			d.lo, d.hi, d.grain, d.body = mid, hi, grain, body
			if !forked {
				w.Init(fr)
				forked = true
			}
			w.ForkArg(fr, loopTramp, unsafe.Pointer(child))
			hi = mid
			continue
		}
		// Saturated: run one grain serially, then re-probe.
		end := lo + grain
		for ; lo < end; lo++ {
			body(w, lo)
		}
	}
	for ; lo < hi; lo++ {
		body(w, lo)
	}
	if forked {
		w.Join(fr)
	}
	w.ReleaseScratch(own)
}
