package core

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

func expectTaskPanic(t *testing.T, want any, f func()) *TaskPanic {
	t.Helper()
	defer func() {
		t.Helper()
		v := recover()
		if v == nil {
			t.Fatal("expected a panic")
		}
		tp, ok := v.(*TaskPanic)
		if !ok {
			t.Fatalf("panic value is %T, want *TaskPanic", v)
		}
		if want != nil && tp.Value != want {
			t.Fatalf("panic value = %v, want %v", tp.Value, want)
		}
	}()
	f()
	return nil
}

func TestForkPanicSurfacesAtJoin(t *testing.T) {
	for _, s := range Strategies() {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			rt := NewRuntime(Config{Workers: 4, Strategy: s})
			expectTaskPanic(t, "boom", func() {
				rt.Run(func(w *W) {
					var fr Frame
					w.Init(&fr)
					w.Fork(&fr, func(*W) { panic("boom") })
					w.Join(&fr)
				})
			})
		})
	}
}

func TestRootPanicSurfacesFromRun(t *testing.T) {
	rt := NewRuntime(Config{Workers: 2})
	expectTaskPanic(t, "root-boom", func() {
		rt.Run(func(w *W) { panic("root-boom") })
	})
}

func TestPanicPropagatesThroughNestedJoins(t *testing.T) {
	rt := NewRuntime(Config{Workers: 4})
	expectTaskPanic(t, "deep", func() {
		rt.Run(func(w *W) {
			var outer Frame
			w.Init(&outer)
			w.Fork(&outer, func(w *W) {
				var inner Frame
				w.Init(&inner)
				w.Fork(&inner, func(*W) { panic("deep") })
				w.Join(&inner) // re-raises; escapes this task; recorded on outer
			})
			w.Join(&outer) // re-raises again, same TaskPanic
		})
	})
}

func TestPanicThroughCallPropagatesDirectly(t *testing.T) {
	rt := NewRuntime(Config{Workers: 1})
	expectTaskPanic(t, "called", func() {
		rt.Run(func(w *W) {
			w.Call(func(*W) { panic("called") })
		})
	})
}

func TestFirstPanicWins(t *testing.T) {
	rt := NewRuntime(Config{Workers: 4})
	caught := expectCatch(t, func() {
		rt.Run(func(w *W) {
			var fr Frame
			w.Init(&fr)
			for i := 0; i < 8; i++ {
				w.Fork(&fr, func(*W) { panic("worker-panic") })
			}
			w.Join(&fr)
		})
	})
	if caught.Value != "worker-panic" {
		t.Errorf("caught %v", caught.Value)
	}
}

func expectCatch(t *testing.T, f func()) (tp *TaskPanic) {
	t.Helper()
	func() {
		defer func() {
			if v := recover(); v != nil {
				tp = v.(*TaskPanic)
			}
		}()
		f()
	}()
	if tp == nil {
		t.Fatal("expected a panic")
	}
	return tp
}

func TestRuntimeSurvivesPanicAndRunsAgain(t *testing.T) {
	rt := NewRuntime(Config{Workers: 4})
	expectCatch(t, func() {
		rt.Run(func(w *W) {
			var fr Frame
			w.Init(&fr)
			w.Fork(&fr, func(*W) { panic("once") })
			w.Join(&fr)
		})
	})
	// The same runtime must execute a clean computation afterwards.
	var out int64
	rt.Run(func(w *W) { parfib(w, 12, &out) })
	if out != 144 {
		t.Errorf("post-panic parfib(12) = %d, want 144", out)
	}
}

func TestSiblingsCompleteDespitePanic(t *testing.T) {
	// Other children of the frame still run to completion; the panic is
	// delivered only at the join.
	rt := NewRuntime(Config{Workers: 4})
	var completed atomic.Int64
	expectCatch(t, func() {
		rt.Run(func(w *W) {
			var fr Frame
			w.Init(&fr)
			w.Fork(&fr, func(*W) { panic("one bad apple") })
			for i := 0; i < 8; i++ {
				w.Fork(&fr, func(*W) { completed.Add(1) })
			}
			w.Join(&fr)
		})
	})
	if got := completed.Load(); got != 8 {
		t.Errorf("healthy siblings completed %d of 8", got)
	}
}

func TestTaskPanicUnwrapsErrors(t *testing.T) {
	sentinel := errors.New("sentinel failure")
	rt := NewRuntime(Config{Workers: 2})
	tp := expectCatch(t, func() {
		rt.Run(func(w *W) {
			var fr Frame
			w.Init(&fr)
			w.Fork(&fr, func(*W) { panic(sentinel) })
			w.Join(&fr)
		})
	})
	if !errors.Is(tp, sentinel) {
		t.Error("errors.Is does not reach the wrapped error")
	}
	if !strings.Contains(tp.Error(), "sentinel failure") {
		t.Errorf("Error() = %q", tp.Error())
	}
	if len(tp.Stack) == 0 {
		t.Error("no stack captured")
	}
}
