package core

import (
	"runtime"
	"testing"
)

// TestStealPoliciesParfib is the core-level correctness smoke for every
// policy × deque pair: the victim-selection order and the StealHalf loot
// protocol must not change the computed value, and the loot accounting
// must keep the Steals/TaskStart identity the trace oracle relies on
// (each loose task counts exactly one steal when claimed).
func TestStealPoliciesParfib(t *testing.T) {
	const n = 18
	want := fibSerial(n)
	for _, pol := range StealPolicies() {
		for _, dk := range DequeKinds() {
			got, stats := runParfib(t, Config{Workers: 4, Deque: dk, StealPolicy: pol}, n)
			if got != want {
				t.Errorf("%s/%s: parfib(%d) = %d, want %d", pol, dk, n, got, want)
			}
			if stats.Forks == 0 {
				t.Errorf("%s/%s: no forks recorded", pol, dk)
			}
		}
	}
}

// TestLastVictimDecay pins the affinity-decay contract: a stale anchor
// survives exactly victimPatience-1 consecutive empty sweeps and is cleared
// on the next, rather than being dropped on the first failed probe. The
// test drives rt.steal directly from the root worker against an otherwise
// idle runtime, so every sweep fails by construction.
func TestLastVictimDecay(t *testing.T) {
	rt := NewRuntime(Config{Workers: 2, StealPolicy: StealLastVictim})
	rt.Run(func(w *W) {
		w.slot.lastVictim = 1 // pretend slot 1 just fed us
		w.slot.victimMisses = 0
		for i := 1; i < victimPatience; i++ {
			if _, ok := rt.steal(w, nil); ok {
				t.Fatal("stole from an idle runtime")
			}
			if w.slot.lastVictim != 1 {
				t.Fatalf("affinity dropped after %d empty sweep(s); patience is %d", i, victimPatience)
			}
		}
		if _, ok := rt.steal(w, nil); ok {
			t.Fatal("stole from an idle runtime")
		}
		if w.slot.lastVictim != -1 {
			t.Errorf("affinity retained after %d empty sweeps; want cleared", victimPatience)
		}
		if w.slot.victimMisses != 0 {
			t.Errorf("victimMisses = %d after decay, want 0", w.slot.victimMisses)
		}
	})
}

// TestLeapfrogArenaRecycling is the regression fence for the blanket
// arena exclusion StrategyLeapfrog used to carry: Scratch blocks must
// recycle under the leapfrog join discipline exactly as they do under
// Fibril — acquires balance releases, and a warmed runtime's second run
// stays below one allocation per fork on every deque kind (leapfrog never
// suspends, so Chase-Lev owner recycling stays off and StealIf remains
// safe; the arena must carry the zero-alloc load alone).
func TestLeapfrogArenaRecycling(t *testing.T) {
	const n = 22
	want := fibSerial(n)
	for _, dk := range DequeKinds() {
		t.Run(dk.String(), func(t *testing.T) {
			rt := NewRuntime(Config{Workers: 4, Strategy: StrategyLeapfrog, Deque: dk})
			var out int64
			rt.Run(func(w *W) { out = gateFib(w, n) }) // warm
			st0 := rt.Stats()
			runtime.GC()
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			rt.Run(func(w *W) { out = gateFib(w, n) })
			runtime.ReadMemStats(&m1)
			st := rt.Stats()
			if out != want {
				t.Fatalf("gateFib(%d) = %d, want %d", n, out, want)
			}
			ops := st.Forks - st0.Forks
			got := int64(m1.Mallocs - m0.Mallocs)
			// Chase-Lev owner recycling is deliberately off under leapfrog
			// (StealIf dereferences nodes before the CAS), so it pays one
			// boxed node per push; the other kinds must stay sub-1/fork.
			budget := ops
			if dk == DequeChaseLev {
				budget = 2 * ops
			}
			t.Logf("%s: %d allocs over %d forks", dk, got, ops)
			if got >= budget {
				t.Errorf("%d allocs >= budget %d over %d forks: leapfrog is not recycling Scratch blocks", got, budget, ops)
			}
			if st.ArenaAcquires == 0 {
				t.Fatal("no arena acquires recorded")
			}
			if st.ArenaAcquires != st.ArenaReleases {
				t.Errorf("ArenaAcquires=%d != ArenaReleases=%d", st.ArenaAcquires, st.ArenaReleases)
			}
		})
	}
}
