package core

import "fibril/internal/trace"

// The idempotence layer over relaxed deques.
//
// DequeRelaxed guarantees no task is ever lost but allows a task to be
// *extracted* more than once (multiplicity, Castañeda–Piña). The runtime
// restores exactly-once *execution* with a per-task claim: the deque
// stamps a fresh claim word into each task it publishes (task.WithClaim),
// and every extraction — owner pop or thief steal — must win that claim
// before executing. The claim lives in the deque's own per-publication
// node, which is immutable and GC-reclaimed, never recycled through the
// Scratch arenas, so a stale duplicate can never observe a reset claim.
//
// Tasks from the linearizable deques (THE, Chase-Lev) and tasks the
// relaxed deque never published carry a nil claim, which Acquire treats
// as trivially won — the whole layer costs those paths one nil test.

// claimTask attempts to win t's execution claim. It returns false when
// another extraction already owns the task, counting the duplicate and
// emitting a KindDupSteal event; the caller must then discard t without
// executing it or touching its parent frame's counters.
func (w *W) claimTask(t task) bool {
	if t.claim.Acquire() {
		return true
	}
	w.stats.dupExtractions.Add(1)
	w.rt.trc.Emit(w.slotID(), trace.KindDupSteal, int64(t.depth), 0)
	return false
}
