package core

import "testing"

// Tests for the memory-pressure engine: coalesced unmap, the hysteresis
// gate, the RSS ceiling, and the pool-kind selection.

func TestEagerModeKeepsNewCountersZero(t *testing.T) {
	for _, batch := range []int{0, 1, -3} {
		_, stats := runParfib(t, Config{Workers: 4, Strategy: StrategyFibril, UnmapBatch: batch}, 20)
		if stats.Unmaps != stats.Suspends {
			t.Errorf("batch=%d: unmaps=%d suspends=%d, want equal in eager mode",
				batch, stats.Unmaps, stats.Suspends)
		}
		if stats.UnmapBatches != 0 || stats.ReclaimCancels != 0 || stats.ReclaimSkips != 0 {
			t.Errorf("batch=%d: batches=%d cancels=%d skips=%d, want all 0 in eager mode",
				batch, stats.UnmapBatches, stats.ReclaimCancels, stats.ReclaimSkips)
		}
		if stats.CeilingHits != 0 || stats.PoolReclaims != 0 || stats.ReclaimedPages != 0 {
			t.Errorf("batch=%d: ceiling counters non-zero with no ceiling configured", batch)
		}
	}
}

func TestCoalescedUnmapConservation(t *testing.T) {
	for _, batch := range []int{2, 4, 16} {
		for _, pool := range PoolKinds() {
			cfg := Config{Workers: 8, Strategy: StrategyFibril, UnmapBatch: batch, Pool: pool}
			rt := NewRuntime(cfg)
			var result int64
			stats := rt.Run(func(w *W) { parfib(w, 21, &result) })
			if result != fibSerial(21) {
				t.Fatalf("batch=%d pool=%s: wrong result %d", batch, pool, result)
			}
			// Every suspend resolves exactly once: flushed, cancelled by
			// its resume, or skipped by the hysteresis gate.
			if got := stats.Unmaps + stats.ReclaimCancels + stats.ReclaimSkips; got != stats.Suspends {
				t.Errorf("batch=%d pool=%s: unmaps %d + cancels %d + skips %d = %d != suspends %d",
					batch, pool, stats.Unmaps, stats.ReclaimCancels, stats.ReclaimSkips,
					got, stats.Suspends)
			}
			if stats.UnmapBatches > stats.Unmaps {
				t.Errorf("batch=%d pool=%s: batches %d > unmaps %d",
					batch, pool, stats.UnmapBatches, stats.Unmaps)
			}
			// Every madvise call is a deferred/eager unmap or a pool
			// reclaim; every madvised page is accounted to one of them.
			if got := stats.Unmaps + stats.PoolReclaims; got != stats.VM.MadviseCalls {
				t.Errorf("batch=%d pool=%s: unmaps %d + pool reclaims %d != madvise calls %d",
					batch, pool, stats.Unmaps, stats.PoolReclaims, stats.VM.MadviseCalls)
			}
			if got := stats.UnmappedPages + stats.ReclaimedPages; got != stats.VM.MadvisedPages {
				t.Errorf("batch=%d pool=%s: unmapped %d + reclaimed %d != madvised %d",
					batch, pool, stats.UnmappedPages, stats.ReclaimedPages, stats.VM.MadvisedPages)
			}
			if pending := rt.PendingReclaims(); pending != 0 {
				t.Errorf("batch=%d pool=%s: %d tickets pending after Run", batch, pool, pending)
			}
			if stats.Suspends != stats.Resumes {
				t.Errorf("batch=%d pool=%s: suspends %d != resumes %d",
					batch, pool, stats.Suspends, stats.Resumes)
			}
		}
	}
}

func TestCoalescedUnmapReducesMadvise(t *testing.T) {
	// Identical program and seed; batching must strictly cut madvise
	// traffic (cancelled tickets) whenever the eager run issued any.
	cfgEager := Config{Workers: 4, Strategy: StrategyFibril}
	cfgBatch := Config{Workers: 4, Strategy: StrategyFibril, UnmapBatch: 8}
	_, eager := runParfib(t, cfgEager, 22)
	_, batched := runParfib(t, cfgBatch, 22)
	if eager.VM.MadviseCalls == 0 {
		t.Skip("eager run produced no madvise traffic (no steals at P=4?)")
	}
	if batched.VM.MadviseCalls >= eager.VM.MadviseCalls {
		t.Errorf("coalesced madvise calls = %d, eager = %d; batching did not help",
			batched.VM.MadviseCalls, eager.VM.MadviseCalls)
	}
	if batched.ReclaimCancels+batched.ReclaimSkips == 0 {
		t.Error("no tickets cancelled or gated — the savings mechanism never fired")
	}
}

func TestRSSCeilingTriggersReclaim(t *testing.T) {
	// A ceiling far below the working set forces pressure on every stack
	// take; pool reclaims fire once free stacks carry residue.
	cfg := Config{
		Workers:          4,
		Strategy:         StrategyFibrilNoUnmap, // no suspend-time unmap: residue builds up
		StackPages:       64,
		FrameBytes:       4096, // page-sized frames so RSS dwarfs the ceiling
		MaxResidentPages: 16,
	}
	// Reclaims need a stack freed with residue and then re-taken, which in
	// turn needs a steal to have created a second stack — a scheduling
	// event a small host can miss in any one run. Retry a few times and
	// check the flow equalities on every attempt.
	var stats Stats
	for attempt := 0; attempt < 10; attempt++ {
		rt := NewRuntime(cfg)
		var result int64
		stats = rt.Run(func(w *W) { parfib(w, 20, &result) })
		if result != fibSerial(20) {
			t.Fatalf("wrong result %d", result)
		}
		if got := stats.Unmaps + stats.PoolReclaims; got != stats.VM.MadviseCalls {
			t.Errorf("unmaps %d + pool reclaims %d != madvise calls %d",
				stats.Unmaps, stats.PoolReclaims, stats.VM.MadviseCalls)
		}
		if stats.PoolReclaims > 0 {
			break
		}
	}
	if stats.CeilingHits == 0 {
		t.Error("RSS stayed over a 16-page ceiling but CeilingHits = 0")
	}
	if stats.PoolReclaims == 0 || stats.ReclaimedPages == 0 {
		if stats.Steals == 0 {
			t.Skip("no run produced a steal at P=4; reclaim pressure unreachable")
		}
		t.Errorf("pool reclaims = %d / %d pages under heavy pressure, want > 0",
			stats.PoolReclaims, stats.ReclaimedPages)
	}
	if got := stats.Unmaps + stats.PoolReclaims; got != stats.VM.MadviseCalls {
		t.Errorf("unmaps %d + pool reclaims %d != madvise calls %d",
			stats.Unmaps, stats.PoolReclaims, stats.VM.MadviseCalls)
	}
	if got := stats.UnmappedPages + stats.ReclaimedPages; got != stats.VM.MadvisedPages {
		t.Errorf("unmapped %d + reclaimed %d != madvised pages %d",
			stats.UnmappedPages, stats.ReclaimedPages, stats.VM.MadvisedPages)
	}
}

func TestPoolKindsProduceSameResults(t *testing.T) {
	want := fibSerial(20)
	for _, pool := range PoolKinds() {
		for _, strat := range []Strategy{StrategyFibril, StrategyCilkPlus, StrategyGoroutine} {
			cfg := Config{Workers: 4, Strategy: strat, Pool: pool}
			got, stats := runParfib(t, cfg, 20)
			if got != want {
				t.Errorf("%s/%s: parfib = %d, want %d", pool, strat, got, want)
			}
			if stats.MaxStacksUsed > stats.StacksCreated {
				t.Errorf("%s/%s: MaxStacksUsed %d > StacksCreated %d",
					pool, strat, stats.MaxStacksUsed, stats.StacksCreated)
			}
		}
	}
}

func TestCeilingKeepsEnvelope(t *testing.T) {
	// The ceiling is soft: correctness and the per-stack envelope hold
	// regardless, but MaxRSS must never exceed what the stacks could hold.
	cfg := Config{
		Workers:          8,
		Strategy:         StrategyFibril,
		UnmapBatch:       4,
		StackPages:       64,
		MaxResidentPages: 32,
	}
	rt := NewRuntime(cfg)
	var result int64
	stats := rt.Run(func(w *W) { parfib(w, 20, &result) })
	if result != fibSerial(20) {
		t.Fatalf("wrong result %d", result)
	}
	bound := int64(stats.StacksCreated) * int64(cfg.StackPages)
	if stats.VM.MaxRSSPages > bound {
		t.Errorf("MaxRSS %d pages exceeds %d stacks x %d pages",
			stats.VM.MaxRSSPages, stats.StacksCreated, cfg.StackPages)
	}
	if rt.PendingReclaims() != 0 {
		t.Error("pending tickets after ceiling run")
	}
}
