package core

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// waitParked blocks until n thieves are parked or the deadline passes.
func waitParked(t *testing.T, rt *Runtime, n int, deadline time.Duration) {
	t.Helper()
	start := time.Now()
	for rt.park.parked() < n {
		if time.Since(start) > deadline {
			t.Fatalf("only %d/%d thieves parked after %v", rt.park.parked(), n, deadline)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestForkAfterAllThievesParked is the lost-wakeup stress test: once every
// thief is parked, the root forks a pair of tasks where the one it would
// run inline blocks until a THIEF runs the other. If a Fork could slip
// past a parking thief (a lost wakeup), the blocked task would never be
// released and the test would hang.
func TestForkAfterAllThievesParked(t *testing.T) {
	const workers = 4
	for _, kind := range DequeKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			rt := NewRuntime(Config{Workers: workers, Deque: kind, StackPages: 4096})
			rt.Run(func(w *W) {
				for round := 0; round < 25; round++ {
					waitParked(t, rt, workers-1, 10*time.Second)
					release := make(chan struct{})
					var fr Frame
					w.Init(&fr)
					// Forked first, so it sits at the TOP of the deque:
					// only a woken thief can take it while the owner is
					// stuck inside the blocker below.
					w.Fork(&fr, func(*W) { close(release) })
					w.Fork(&fr, func(*W) { <-release })
					w.Join(&fr)
				}
			})
		})
	}
}

// TestParkWakeStressBursts alternates idle phases (letting thieves walk
// the whole backoff ladder and park) with fork bursts, across GOMAXPROCS
// settings — the interleavings the wake protocol must survive.
func TestParkWakeStressBursts(t *testing.T) {
	for _, procs := range []int{2, 4} {
		procs := procs
		t.Run(map[int]string{2: "gomaxprocs2", 4: "gomaxprocs4"}[procs], func(t *testing.T) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
			rt := NewRuntime(Config{Workers: 4, StackPages: 4096})
			var leaves atomic.Int64
			rt.Run(func(w *W) {
				for round := 0; round < 40; round++ {
					if round%4 == 0 {
						// Idle long enough for thieves to park.
						deadline := time.Now().Add(time.Second)
						for rt.park.parked() == 0 && time.Now().Before(deadline) {
							time.Sleep(50 * time.Microsecond)
						}
					}
					var fr Frame
					w.Init(&fr)
					for i := 0; i < 16; i++ {
						w.Fork(&fr, func(*W) { leaves.Add(1) })
					}
					w.Join(&fr)
				}
			})
			if got := leaves.Load(); got != 40*16 {
				t.Fatalf("leaves = %d, want %d", got, 40*16)
			}
		})
	}
}

// TestSerialWorkloadThievesGoQuiet pins the CPU-burn win: on a workload
// whose bottom is serial (no forks at all), thieves must park rather than
// spin, so the steal-attempt counter stays at zero — the seed runtime
// accumulated thousands of attempts per idle millisecond here.
func TestSerialWorkloadThievesGoQuiet(t *testing.T) {
	rt := NewRuntime(Config{Workers: 4, StackPages: 4096})
	var parkedSeen bool
	rt.Run(func(w *W) {
		// Serial bottom: plain Calls and real elapsed time, no forks.
		for i := 0; i < 20; i++ {
			w.Call(func(*W) { time.Sleep(2 * time.Millisecond) })
			if rt.park.parked() == len(rt.workers)-1 {
				parkedSeen = true
			}
		}
	})
	if !parkedSeen {
		t.Error("thieves never all parked during a serial workload")
	}
	if st := rt.Stats(); st.StealAttempts != 0 {
		t.Errorf("StealAttempts = %d on a forkless workload, want 0 "+
			"(every deque stays visibly empty)", st.StealAttempts)
	}
}

// TestParkedThievesWakeForLateWork verifies a thief parked early in a run
// still participates later: after the parked phase, a burst of
// slow tasks must see at least one steal (a thief resumed work).
func TestParkedThievesWakeForLateWork(t *testing.T) {
	rt := NewRuntime(Config{Workers: 4, StackPages: 4096})
	rt.Run(func(w *W) {
		waitParked(t, rt, 3, 10*time.Second)
		var fr Frame
		w.Init(&fr)
		for i := 0; i < 8; i++ {
			w.Fork(&fr, func(*W) { time.Sleep(time.Millisecond) })
		}
		w.Join(&fr)
	})
	if st := rt.Stats(); st.Steals == 0 {
		t.Error("no steals after wake: parked thieves never rejoined the computation")
	}
}
