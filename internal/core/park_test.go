package core

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// waitParked blocks until n thieves are parked or the deadline passes.
func waitParked(t *testing.T, rt *Runtime, n int, deadline time.Duration) {
	t.Helper()
	start := time.Now()
	for rt.park.parked() < n {
		if time.Since(start) > deadline {
			t.Fatalf("only %d/%d thieves parked after %v", rt.park.parked(), n, deadline)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestForkAfterAllThievesParked is the lost-wakeup stress test: once every
// thief is parked, the root forks a pair of tasks where the one it would
// run inline blocks until a THIEF runs the other. If a Fork could slip
// past a parking thief (a lost wakeup), the blocked task would never be
// released and the test would hang.
func TestForkAfterAllThievesParked(t *testing.T) {
	const workers = 4
	for _, kind := range DequeKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			rt := NewRuntime(Config{Workers: workers, Deque: kind, StackPages: 4096})
			rt.Run(func(w *W) {
				for round := 0; round < 25; round++ {
					waitParked(t, rt, workers-1, 10*time.Second)
					release := make(chan struct{})
					var fr Frame
					w.Init(&fr)
					// Forked first, so it sits at the TOP of the deque:
					// only a woken thief can take it while the owner is
					// stuck inside the blocker below.
					w.Fork(&fr, func(*W) { close(release) })
					w.Fork(&fr, func(*W) { <-release })
					w.Join(&fr)
				}
			})
		})
	}
}

// TestParkWakeStressBursts alternates idle phases (letting thieves walk
// the whole backoff ladder and park) with fork bursts, across GOMAXPROCS
// settings — the interleavings the wake protocol must survive.
func TestParkWakeStressBursts(t *testing.T) {
	for _, procs := range []int{2, 4} {
		procs := procs
		t.Run(map[int]string{2: "gomaxprocs2", 4: "gomaxprocs4"}[procs], func(t *testing.T) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
			rt := NewRuntime(Config{Workers: 4, StackPages: 4096})
			var leaves atomic.Int64
			rt.Run(func(w *W) {
				for round := 0; round < 40; round++ {
					if round%4 == 0 {
						// Idle long enough for thieves to park.
						deadline := time.Now().Add(time.Second)
						for rt.park.parked() == 0 && time.Now().Before(deadline) {
							time.Sleep(50 * time.Microsecond)
						}
					}
					var fr Frame
					w.Init(&fr)
					for i := 0; i < 16; i++ {
						w.Fork(&fr, func(*W) { leaves.Add(1) })
					}
					w.Join(&fr)
				}
			})
			if got := leaves.Load(); got != 40*16 {
				t.Fatalf("leaves = %d, want %d", got, 40*16)
			}
		})
	}
}

// TestSerialWorkloadThievesGoQuiet pins the CPU-burn win: on a workload
// whose bottom is serial (no forks at all), thieves must park rather than
// spin, so the steal-attempt counter stays at zero — the seed runtime
// accumulated thousands of attempts per idle millisecond here.
func TestSerialWorkloadThievesGoQuiet(t *testing.T) {
	rt := NewRuntime(Config{Workers: 4, StackPages: 4096})
	var parkedSeen bool
	rt.Run(func(w *W) {
		// Serial bottom: plain Calls and real elapsed time, no forks.
		for i := 0; i < 20; i++ {
			w.Call(func(*W) { time.Sleep(2 * time.Millisecond) })
			if rt.park.parked() == len(rt.workers)-1 {
				parkedSeen = true
			}
		}
	})
	if !parkedSeen {
		t.Error("thieves never all parked during a serial workload")
	}
	if st := rt.Stats(); st.StealAttempts != 0 {
		t.Errorf("StealAttempts = %d on a forkless workload, want 0 "+
			"(every deque stays visibly empty)", st.StealAttempts)
	}
}

// TestParkedThievesWakeForLateWork verifies a thief parked early in a run
// still participates later: after the parked phase, a burst of
// slow tasks must see at least one steal (a thief resumed work).
func TestParkedThievesWakeForLateWork(t *testing.T) {
	rt := NewRuntime(Config{Workers: 4, StackPages: 4096})
	rt.Run(func(w *W) {
		waitParked(t, rt, 3, 10*time.Second)
		var fr Frame
		w.Init(&fr)
		for i := 0; i < 8; i++ {
			w.Fork(&fr, func(*W) { time.Sleep(time.Millisecond) })
		}
		w.Join(&fr)
	})
	if st := rt.Stats(); st.Steals == 0 {
		t.Error("no steals after wake: parked thieves never rejoined the computation")
	}
}

// TestSubmitAfterAllThievesParked is the wake-one lost-wakeup regression
// on the dispatch path: with every thief parked, each Submit must wake
// enough thieves to run the root AND the task it forks. The root blocks
// inside the task it would run inline until a second thief runs the
// other, so a dropped dispatch wake (or a fork wake swallowed by the
// token cap) hangs the test. Both intake kinds run the same rounds — the
// sharded push/wake(1) pair and the mutex baseline must be equally
// lost-wakeup-free.
func TestSubmitAfterAllThievesParked(t *testing.T) {
	const workers = 4
	for _, intake := range IntakeKinds() {
		intake := intake
		t.Run(intake.String(), func(t *testing.T) {
			rt := NewRuntime(Config{Workers: workers, StackPages: 4096, Intake: intake})
			rt.Start()
			for round := 0; round < 25; round++ {
				waitParked(t, rt, workers, 10*time.Second)
				release := make(chan struct{})
				j := rt.Submit(func(w *W) {
					var fr Frame
					w.Init(&fr)
					// Forked first, so it sits at the TOP of the deque:
					// only a woken thief can take it while the root's
					// worker is stuck inside the blocker below.
					w.Fork(&fr, func(*W) { close(release) })
					w.Fork(&fr, func(*W) { <-release })
					w.Join(&fr)
				})
				if err := j.Err(); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				j.Release()
			}
			if err := rt.Close(context.Background()); err != nil {
				t.Fatalf("Close: %v", err)
			}
		})
	}
}

// TestWakeTokenCapNoStaleTokens unit-tests the token accounting that
// makes wake-one safe: a wake burst larger than the sleeper population
// must not bank surplus tokens, or a thief parking later would sail
// straight through its sleep and busy-loop on an empty system.
func TestWakeTokenCapNoStaleTokens(t *testing.T) {
	p := newParkLot()
	noSweep := func() (task, bool) { return task{}, false }
	parkOne := func() chan struct{} {
		ch := make(chan struct{})
		go func() {
			p.park(noSweep)
			close(ch)
		}()
		return ch
	}
	waitSleepers := func(n int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for p.parked() != n {
			if time.Now().After(deadline) {
				t.Fatalf("parked() = %d, want %d", p.parked(), n)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	awaits := func(ch chan struct{}, what string) {
		t.Helper()
		select {
		case <-ch:
		case <-time.After(5 * time.Second):
			t.Fatalf("%s never woke", what)
		}
	}

	// Phase 1: one sleeper, wake(8). The cap must clamp the burst to one
	// token — the sleeper wakes, and no token survives it.
	first := parkOne()
	waitSleepers(1)
	p.wake(8)
	awaits(first, "first sleeper after wake(8)")
	waitSleepers(0)

	// Phase 2: a fresh parker must actually sleep. If phase 1 banked
	// surplus tokens this parker would return immediately.
	second := parkOne()
	waitSleepers(1)
	select {
	case <-second:
		t.Fatal("second parker woke on a stale token from the wake(8) burst")
	case <-time.After(50 * time.Millisecond):
	}
	p.wake(1)
	awaits(second, "second sleeper after wake(1)")
	waitSleepers(0)

	// Phase 3: wakeAll releases every sleeper and, like the capped wake,
	// leaves no residue behind.
	a, b := parkOne(), parkOne()
	waitSleepers(2)
	p.wakeAll()
	awaits(a, "sleeper a after wakeAll")
	awaits(b, "sleeper b after wakeAll")
	waitSleepers(0)
	late := parkOne()
	waitSleepers(1)
	select {
	case <-late:
		t.Fatal("late parker woke on a stale token from wakeAll")
	case <-time.After(50 * time.Millisecond):
	}
	p.close()
	awaits(late, "late sleeper after close")
}
