package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fibril/internal/trace"
)

// StealPolicy selects the victim-selection (and extraction-width) policy a
// thief uses when its own deque is empty. The policies follow the
// cache-complexity analysis of work stealing (Gu, Napier & Sun, arXiv
// 2111.04994): a steal's true cost is dominated by the cache misses of
// pulling the stolen task's working set, so re-stealing from a recent
// victim (whose data the thief may still cache) or from a topologically
// near one is cheaper than a uniformly random steal, and taking several
// tasks per synchronization amortizes the protocol cost under heavy
// contention. Random remains the default: its load-balancing guarantees
// are the ones the time bound is proved for.
type StealPolicy int

const (
	// StealRandom is the paper's policy and the default: a uniformly
	// random-start round-robin sweep. Its load distribution is what the
	// Blumofe–Leiserson time bound is proved for.
	StealRandom StealPolicy = iota
	// StealLastVictim is last-victim affinity: probe the last successful
	// victim first — a productive victim keeps being drained by the same
	// thief while its tasks' data is still warm in that thief's cache —
	// then fall back to the random sweep. The pre-probe only fires while
	// the anchor has at least two visible tasks, leaving a victim's last
	// task to the random sweep (politeness: draining it forces the
	// victim's next blocked join to suspend). Sweeping onward from the
	// anchor instead of falling back to random would herd every thief
	// sharing a victim into the same probe order.
	StealLastVictim
	// StealNearVictim keeps StealLastVictim's affinity pre-probe, then
	// probes victims in increasing ring distance from the thief itself
	// (self+1, self-1, self+2, ...), modelling a topology where
	// neighbouring slots share cache: the cheap (near) victims are tried
	// first, and every thief has a distinct probe order, so thieves that
	// share a hot victim do not herd into identical sweeps.
	StealNearVictim
	// StealHalf sweeps like StealLastVictim but extracts a batch — up to
	// half the victim's visible queue, capped at lootCap — per successful
	// probe, amortizing the steal protocol under contention. The thief
	// runs the first task and shares the rest through the runtime's
	// overflow queue, where any idle worker picks them up before probing
	// deques, so busy-leaves is preserved. Restricted (inline) stealing
	// always takes a single task regardless of policy.
	StealHalf
)

// String returns the policy's display name as used in the experiments.
func (p StealPolicy) String() string {
	switch p {
	case StealRandom:
		return "random"
	case StealLastVictim:
		return "lastvictim"
	case StealNearVictim:
		return "nearvictim"
	case StealHalf:
		return "stealhalf"
	default:
		return fmt.Sprintf("StealPolicy(%d)", int(p))
	}
}

// StealPolicies lists every implemented policy, in presentation order.
func StealPolicies() []StealPolicy {
	return []StealPolicy{StealRandom, StealLastVictim, StealNearVictim, StealHalf}
}

const (
	// lootCap bounds one StealHalf batch extraction.
	lootCap = 8
	// victimPatience is how many consecutive failed sweeps a slot tolerates
	// before dropping its last-victim affinity. One empty sweep is usually
	// a transient race (the victim is between pushes), so affinity decays
	// rather than resetting on first miss.
	victimPatience = 2
)

// looseQueue is the runtime's overflow queue for batch-stolen tasks: a
// StealHalf thief deposits all but one task of its loot here, and every
// unrestricted steal drains it before probing deques. Tasks in it are
// already claimed and already counted as steals; they must never be pushed
// into a worker's own deque (a locally-popped foreign task could trigger a
// slot handoff inside runInline, which is a protocol violation).
type looseQueue struct {
	mu sync.Mutex
	n  atomic.Int64
	ts []task
}

// put deposits ts. Callers wake the park lot afterwards so idle workers
// collect the tasks.
func (q *looseQueue) put(ts []task) {
	q.mu.Lock()
	q.ts = append(q.ts, ts...)
	q.n.Store(int64(len(q.ts)))
	q.mu.Unlock()
}

// take removes one task, LIFO.
func (q *looseQueue) take() (task, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.ts) == 0 {
		return task{}, false
	}
	t := q.ts[len(q.ts)-1]
	q.ts[len(q.ts)-1] = task{}
	q.ts = q.ts[:len(q.ts)-1]
	q.n.Store(int64(len(q.ts)))
	return t, true
}

// len reports the queue length (racy snapshot, exact at quiescence).
func (q *looseQueue) len() int { return int(q.n.Load()) }

// steal attempts one round of stealing over the other worker slots under
// the configured StealPolicy; a thief never probes its own deque. Every
// policy skips deques whose Len snapshot is visibly empty and charges the
// probe count to the stealAttempts shard once per sweep instead of once
// per victim. If restrict is non-nil only tasks it accepts are taken
// (depth-restricted and leapfrog disciplines) and extraction is always
// single-task. It returns false after a full unsuccessful sweep so callers
// can decide to back off or re-check their join condition.
func (rt *Runtime) steal(w *W, restrict func(task) bool) (task, bool) {
	// Batch-stolen overflow first: these tasks are already claimed, so any
	// further delay only serializes them. Restricted stealers must not
	// take them — loot is unrestricted base-level work.
	if restrict == nil && rt.loose.n.Load() > 0 {
		if t, ok := rt.loose.take(); ok {
			return t, true // claimed and counted at batch extraction
		}
	}
	self := w.slot.id
	n := len(rt.workers)
	pol := rt.cfg.StealPolicy
	probes := int64(0)
	// Steal latency: how long the winning sweep took from entry to
	// acquisition. The clock reads exist only when a sink consumes steal
	// events, so the disabled path stays untimed.
	var sweepStart time.Time
	if rt.trc.Wants(trace.KindSteal) {
		sweepStart = time.Now()
	}
	won := func(victim *worker, t task) (task, bool) {
		w.slot.lastVictim = victim.id
		w.slot.victimMisses = 0
		w.stats.stealAttempts.Add(probes)
		w.stats.steals.Add(1)
		var lat time.Duration
		if !sweepStart.IsZero() {
			lat = time.Since(sweepStart)
		}
		rt.trc.Emit(self, trace.KindSteal, int64(victim.id), lat)
		return t, true
	}
	take := func(victim *worker) (task, bool) {
		probes++
		if pol == StealHalf && restrict == nil {
			return rt.takeBatch(w, victim)
		}
		var t task
		var ok bool
		if restrict == nil {
			t, ok = victim.deque.Steal()
		} else {
			t, ok = victim.deque.StealIf(restrict)
		}
		if ok && !w.claimTask(t) {
			// A duplicate extraction from a relaxed deque: someone else
			// already owns the execution. Treat it as a failed probe so
			// Steals counts claim winners only.
			return task{}, false
		}
		return t, ok
	}

	// The affinity policies probe the last successful victim first, then
	// fall back to a full sweep. The pre-probe only fires while the victim
	// is rich (>= 2 visible tasks): draining a victim's last task forces
	// its next blocked join to suspend, so anchored thieves leave it to
	// the sweep.
	lv := w.slot.lastVictim
	if pol != StealRandom && lv >= 0 && lv != self {
		if victim := rt.workers[lv]; victim.deque.Len() >= 2 {
			if t, ok := take(victim); ok {
				return won(victim, t)
			}
		}
	}
	switch pol {
	case StealNearVictim:
		// Distance-ordered sweep outward from the thief's own slot:
		// self+1, self-1, self+2, ... Near (cheap) victims first, and a
		// probe order unique to this thief — no herding.
		for i := 1; i < n; i++ {
			step := (i + 1) / 2
			if i%2 == 0 {
				step = -step
			}
			victim := rt.workers[((self+step)%n+n)%n]
			if victim.id == self || victim.deque.Len() == 0 {
				continue
			}
			if t, ok := take(victim); ok {
				return won(victim, t)
			}
		}
	default: // StealRandom, StealLastVictim, StealHalf
		start := int(w.slot.rng.next() % uint64(n))
		for i := 0; i < n; i++ {
			victim := rt.workers[(start+i)%n]
			if victim.id == self || victim.deque.Len() == 0 {
				continue
			}
			if t, ok := take(victim); ok {
				return won(victim, t)
			}
		}
	}
	// Full sweep failed: decay the affinity rather than resetting it — one
	// empty sweep is usually a transient race, and discarding the hint
	// permanently forfeits the locality the policies above exist for.
	w.slot.victimMisses++
	if w.slot.victimMisses >= victimPatience {
		w.slot.lastVictim = -1
		w.slot.victimMisses = 0
	}
	w.stats.stealAttempts.Add(probes)
	return task{}, false
}

// takeBatch is the StealHalf extraction: take up to half the victim's
// visible queue (at most lootCap) in one StealBatch, claim each task, run
// the first winner and deposit the rest in the overflow queue for other
// idle workers. Every claim winner counts as one steal, so the trace and
// counter identities (TaskStart == Steals - RestrictedSteals, Suspends <=
// Steals) are unchanged by batching.
func (rt *Runtime) takeBatch(w *W, victim *worker) (task, bool) {
	want := victim.deque.Len() / 2
	if want < 1 {
		want = 1
	}
	if want > lootCap {
		want = lootCap
	}
	var buf [lootCap]task
	m := victim.deque.StealBatch(buf[:want])
	kept := 0
	for i := 0; i < m; i++ {
		if w.claimTask(buf[i]) {
			buf[kept] = buf[i]
			kept++
		}
	}
	if kept == 0 {
		return task{}, false
	}
	// The caller's won() accounts for the first task; account for the
	// extras here, then share them before running anything so parked
	// workers can start on them immediately.
	for i := 1; i < kept; i++ {
		w.stats.steals.Add(1)
		rt.trc.Emit(w.slot.id, trace.KindSteal, int64(victim.id), 0)
	}
	if kept > 1 {
		// A loot burst publishes several tasks at once — the one case
		// (besides close) that keeps the broadcast wake.
		rt.loose.put(buf[1:kept])
		rt.park.wakeAll()
	}
	return buf[0], true
}
