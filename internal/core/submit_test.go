package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"fibril/internal/trace"
)

// submitFib is a small fork-join request body: enough structure to
// exercise stealing and suspension, small enough to run thousands of
// times per test.
func submitFib(n int) func(*W) {
	return func(w *W) {
		var out int64
		fibSubmit(w, n, &out)
	}
}

func fibSubmit(w *W, n int, out *int64) {
	if n < 2 {
		*out = int64(n)
		return
	}
	var fr Frame
	w.Init(&fr)
	var a, b int64
	w.Fork(&fr, func(w *W) { fibSubmit(w, n-1, &a) })
	w.Call(func(w *W) { fibSubmit(w, n-2, &b) })
	w.Join(&fr)
	*out = a + b
}

// TestConcurrentSubmit is the acceptance-criteria race test: >= 8
// goroutines submitting concurrently to one serving Runtime, a mix of
// clean and panicking roots, with per-Job panic isolation — a panicking
// root must fail its own Job and no sibling.
func TestConcurrentSubmit(t *testing.T) {
	for _, strat := range []Strategy{StrategyFibril, StrategyTBB, StrategyGoroutine} {
		t.Run(strat.String(), func(t *testing.T) {
			rt := NewRuntime(Config{Workers: 4, Strategy: strat})
			rt.Start()
			const submitters = 8
			const perSubmitter = 4
			type result struct {
				job    *Job
				panics bool
				sub    int
			}
			results := make([]result, submitters*perSubmitter)
			var wg sync.WaitGroup
			for s := 0; s < submitters; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					for k := 0; k < perSubmitter; k++ {
						i := s*perSubmitter + k
						panics := i%3 == 0
						var j *Job
						if panics {
							j = rt.Submit(func(w *W) {
								var fr Frame
								w.Init(&fr)
								w.Fork(&fr, func(w *W) { submitFib(10)(w) })
								w.Join(&fr)
								panic(fmt.Sprintf("boom-%d", i))
							})
						} else {
							j = rt.Submit(submitFib(12))
						}
						results[i] = result{job: j, panics: panics, sub: s}
					}
				}(s)
			}
			wg.Wait()
			seen := map[uint64]bool{}
			for i, r := range results {
				err := r.job.Err()
				if r.panics {
					var tp *TaskPanic
					if !errors.As(err, &tp) {
						t.Fatalf("job %d: want TaskPanic, got %v", i, err)
					}
					if want := fmt.Sprintf("boom-%d", i); tp.Value != want {
						t.Errorf("job %d: panic value %v, want %q — a sibling's panic leaked", i, tp.Value, want)
					}
				} else if err != nil {
					t.Errorf("clean job %d failed: %v — disturbed by a sibling's panic?", i, err)
				}
				if seq := r.job.Seq(); seq == 0 || seen[seq] {
					t.Errorf("job %d: completion seq %d not unique and 1-based", i, seq)
				} else {
					seen[seq] = true
				}
			}
			if err := rt.Close(context.Background()); err != nil {
				t.Fatalf("Close: %v", err)
			}
			st := rt.Stats()
			n := int64(submitters * perSubmitter)
			if st.JobsSubmitted != n || st.JobsAdmitted != n || st.JobsCompleted != n {
				t.Errorf("job conservation: submitted=%d admitted=%d completed=%d, want all %d",
					st.JobsSubmitted, st.JobsAdmitted, st.JobsCompleted, n)
			}
			if st.JobsShed != 0 || st.JobsDrained != 0 {
				t.Errorf("unexpected shed=%d drained=%d", st.JobsShed, st.JobsDrained)
			}
			if q := rt.QueuedTasks(); q != 0 {
				t.Errorf("QueuedTasks=%d after Close, want 0", q)
			}
			if p := rt.PendingReclaims(); p != 0 {
				t.Errorf("PendingReclaims=%d after Close, want 0", p)
			}
			if inf := rt.InflightJobs(); inf != 0 {
				t.Errorf("InflightJobs=%d after Close, want 0", inf)
			}
			if qj := rt.QueuedJobs(); qj != 0 {
				t.Errorf("QueuedJobs=%d after Close, want 0", qj)
			}
		})
	}
}

// TestCloseDrainsInflight: Close must wait for running jobs, and the
// runtime must be reusable (Start/Run again) afterwards.
func TestCloseDrainsInflight(t *testing.T) {
	rt := NewRuntime(Config{Workers: 2})
	rt.Start()
	release := make(chan struct{})
	var jobs []*Job
	for i := 0; i < 4; i++ {
		jobs = append(jobs, rt.Submit(func(w *W) {
			<-release
			submitFib(8)(w)
		}))
	}
	closed := make(chan error, 1)
	go func() { closed <- rt.Close(context.Background()) }()
	select {
	case err := <-closed:
		t.Fatalf("Close returned %v with jobs still blocked", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
	for i, j := range jobs {
		if err := j.Err(); err != nil {
			t.Errorf("job %d: %v", i, err)
		}
	}
	// Runtime is idle again: one-shot Run must work and accumulate.
	st := rt.Run(submitFib(10))
	if st.JobsCompleted != 5 {
		t.Errorf("JobsCompleted=%d after reuse, want 5", st.JobsCompleted)
	}
}

// TestCloseContextAbandonsQueue: a forced drain fails exactly the
// not-yet-admitted queue with ErrDrained and still completes admitted
// jobs.
func TestCloseContextAbandonsQueue(t *testing.T) {
	rt := NewRuntime(Config{Workers: 2, MaxInflight: 1})
	rt.Start()
	release := make(chan struct{})
	started := make(chan struct{})
	blocker := rt.Submit(func(*W) { close(started); <-release })
	<-started // the blocker is running, not sitting in the root FIFO
	var queued []*Job
	for i := 0; i < 3; i++ {
		queued = append(queued, rt.Submit(submitFib(5)))
	}
	if got := rt.QueuedJobs(); got != 3 {
		t.Fatalf("QueuedJobs=%d before Close, want 3", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	closed := make(chan error, 1)
	go func() { closed <- rt.Close(ctx) }()
	// The forced drain abandons the queue once ctx expires; the blocker is
	// admitted, so Close keeps waiting for it.
	for _, j := range queued {
		if err := j.Err(); !errors.Is(err, ErrDrained) {
			t.Errorf("queued job: err=%v, want ErrDrained", err)
		}
	}
	select {
	case err := <-closed:
		t.Fatalf("Close returned %v with the admitted blocker still running", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	if err := <-closed; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Close err=%v, want DeadlineExceeded", err)
	}
	if err := blocker.Err(); err != nil {
		t.Errorf("admitted blocker err=%v, want nil (admitted jobs always run)", err)
	}
	st := rt.Stats()
	if st.JobsDrained != 3 || st.JobsAdmitted != 1 || st.JobsCompleted != 1 {
		t.Errorf("drained=%d admitted=%d completed=%d, want 3/1/1",
			st.JobsDrained, st.JobsAdmitted, st.JobsCompleted)
	}
}

// TestQuotaShedDeterminism: with MaxInflight pinned by blocked jobs and
// AdmitShed, over-capacity submissions shed deterministically.
func TestQuotaShedDeterminism(t *testing.T) {
	rt := NewRuntime(Config{Workers: 4, MaxInflight: 2, Admission: AdmitShed})
	rt.Start()
	release := make(chan struct{})
	b1 := rt.Submit(func(*W) { <-release })
	b2 := rt.Submit(func(*W) { <-release })
	var shed []*Job
	for i := 0; i < 3; i++ {
		shed = append(shed, rt.Submit(submitFib(5)))
	}
	for i, j := range shed {
		if err := j.Err(); !errors.Is(err, ErrShed) {
			t.Errorf("submit %d: err=%v, want ErrShed", i, err)
		}
	}
	close(release)
	if b1.Err() != nil || b2.Err() != nil {
		t.Errorf("blockers failed: %v %v", b1.Err(), b2.Err())
	}
	if err := rt.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st := rt.Stats()
	if st.JobsSubmitted != 5 || st.JobsAdmitted != 2 || st.JobsShed != 3 || st.JobsCompleted != 2 {
		t.Errorf("submitted=%d admitted=%d shed=%d completed=%d, want 5/2/3/2",
			st.JobsSubmitted, st.JobsAdmitted, st.JobsShed, st.JobsCompleted)
	}
}

// TestTenantQuota: one tenant's page budget sheds its burst without
// touching another tenant's admissions.
func TestTenantQuota(t *testing.T) {
	// Each inflight job reserves StackPages = 16 pages; quota 32 admits
	// exactly two jobs per tenant at once.
	rt := NewRuntime(Config{
		Workers: 2, StackPages: 16, TenantQuotaPages: 32, Admission: AdmitShed,
	})
	rt.Start()
	release := make(chan struct{})
	hog := func(*W) { <-release }
	a1, a2 := rt.SubmitTenant("a", hog), rt.SubmitTenant("a", hog)
	a3 := rt.SubmitTenant("a", hog) // over tenant a's budget: shed
	b1 := rt.SubmitTenant("b", hog) // tenant b unaffected
	if err := a3.Err(); !errors.Is(err, ErrShed) {
		t.Errorf("tenant a's 3rd job: err=%v, want ErrShed", err)
	}
	select {
	case <-b1.Done():
		t.Errorf("tenant b's job completed early: err=%v", b1.Err())
	default:
	}
	close(release)
	for i, j := range []*Job{a1, a2, b1} {
		if err := j.Err(); err != nil {
			t.Errorf("job %d: %v", i, err)
		}
	}
	if err := rt.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if st := rt.Stats(); st.JobsShed != 1 || st.JobsCompleted != 3 {
		t.Errorf("shed=%d completed=%d, want 1/3", st.JobsShed, st.JobsCompleted)
	}
}

// TestQueuePolicyPromotes: under AdmitQueue an over-capacity submission
// waits and is admitted when capacity frees — nothing is lost.
func TestQueuePolicyPromotes(t *testing.T) {
	rt := NewRuntime(Config{Workers: 2, MaxInflight: 1})
	rt.Start()
	release := make(chan struct{})
	blocker := rt.Submit(func(*W) { <-release })
	queued := rt.Submit(submitFib(8))
	select {
	case <-queued.Done():
		t.Fatal("queued job ran while the blocker held MaxInflight")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	if err := queued.Err(); err != nil {
		t.Fatalf("queued job: %v", err)
	}
	if err := blocker.Err(); err != nil {
		t.Fatalf("blocker: %v", err)
	}
	if err := rt.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if st := rt.Stats(); st.JobsAdmitted != 2 || st.JobsShed != 0 {
		t.Errorf("admitted=%d shed=%d, want 2/0", st.JobsAdmitted, st.JobsShed)
	}
}

// TestLifecycleMisuse: the state machine rejects out-of-order calls.
func TestLifecycleMisuse(t *testing.T) {
	rt := NewRuntime(Config{Workers: 1})
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Submit on idle runtime", func() { rt.Submit(func(*W) {}) })
	if err := rt.Close(context.Background()); err != nil {
		t.Fatalf("Close on idle runtime: %v (want nil no-op)", err)
	}
	rt.Start()
	mustPanic("double Start", rt.Start)
	if err := rt.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// After a full cycle the runtime is idle and restartable.
	rt.Start()
	if err := rt.Submit(submitFib(5)).Err(); err != nil {
		t.Fatalf("Submit after restart: %v", err)
	}
	if err := rt.Close(context.Background()); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestSubmitWhileClosing: submissions racing Close complete with ErrClosed
// instead of hanging or panicking.
func TestSubmitWhileClosing(t *testing.T) {
	rt := NewRuntime(Config{Workers: 2})
	rt.Start()
	release := make(chan struct{})
	rt.Submit(func(*W) { <-release })
	closed := make(chan error, 1)
	go func() { closed <- rt.Close(context.Background()) }()
	// Wait until Close has flipped the state to closing.
	deadline := time.Now().Add(time.Second)
	var late *Job
	for {
		late = rt.Submit(func(*W) {})
		if err := late.Err(); errors.Is(err, ErrClosed) {
			break
		} else if err != nil {
			t.Fatalf("unexpected err: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("Close never reached the closing state")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
	if st := rt.Stats(); st.JobsShed == 0 {
		t.Errorf("JobsShed=0, want the ErrClosed submissions counted")
	}
}

// TestRunSemanticsPreserved: the Run wrapper still re-raises root panics
// as *TaskPanic and returns accumulated stats, byte-identical semantics to
// the pre-Submit API.
func TestRunSemanticsPreserved(t *testing.T) {
	rt := NewRuntime(Config{Workers: 2})
	st := rt.Run(submitFib(10))
	if st.JobsCompleted != 1 || st.JobsSubmitted != 1 {
		t.Errorf("one Run: submitted=%d completed=%d, want 1/1", st.JobsSubmitted, st.JobsCompleted)
	}
	forks := st.Forks
	if forks == 0 {
		t.Error("fib(10) forked nothing")
	}
	// Counters accumulate across Runs on one Runtime.
	if st2 := rt.Run(submitFib(10)); st2.Forks != 2*forks {
		t.Errorf("accumulated Forks=%d, want %d", st2.Forks, 2*forks)
	}
	defer func() {
		v := recover()
		tp, ok := v.(*TaskPanic)
		if !ok {
			t.Fatalf("Run panicked with %T(%v), want *TaskPanic", v, v)
		}
		if tp.Value != "root boom" {
			t.Errorf("panic value %v", tp.Value)
		}
	}()
	rt.Run(func(*W) { panic("root boom") })
}

// TestRunOnServingRuntime: Run on an already-Started runtime submits into
// the live worker pool and leaves it serving.
func TestRunOnServingRuntime(t *testing.T) {
	rt := NewRuntime(Config{Workers: 2})
	rt.Start()
	st := rt.Run(submitFib(10))
	if st.JobsCompleted != 1 {
		t.Errorf("JobsCompleted=%d, want 1", st.JobsCompleted)
	}
	// Still serving: Submit must not panic.
	if err := rt.Submit(submitFib(5)).Err(); err != nil {
		t.Errorf("Submit after Run-on-serving: %v", err)
	}
	if err := rt.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestJobLatencyHistogram: a serving run with a MetricsSink attached must
// fold per-Job submit-to-completion latencies into the job-latency
// histogram (the serve experiment's p50/p99/p999 source).
func TestJobLatencyHistogram(t *testing.T) {
	sink := trace.NewMetricsSink()
	rt := NewRuntime(Config{Workers: 2, Sink: sink})
	rt.Start()
	const n = 20
	jobs := make([]*Job, 0, n)
	for i := 0; i < n; i++ {
		jobs = append(jobs, rt.Submit(submitFib(8)))
	}
	for _, j := range jobs {
		j.Wait()
	}
	if err := rt.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
	snap := sink.Snapshot()
	if snap.JobLatency.Count != n {
		t.Errorf("JobLatency.Count=%d, want %d", snap.JobLatency.Count, n)
	}
	if p50 := snap.JobLatency.Quantile(0.5); p50 <= 0 {
		t.Errorf("p50=%d, want > 0", p50)
	}
}

// TestConcurrentSubmitIntakeDifferential runs the concurrent-submission
// acceptance shape on BOTH intake pipelines: real fork-join roots with a
// panicking minority, eight submitters, full conservation at Close. The
// sharded lane and the PR 8 mutex baseline must be observationally
// identical here — only throughput may differ.
func TestConcurrentSubmitIntakeDifferential(t *testing.T) {
	for _, intake := range IntakeKinds() {
		intake := intake
		t.Run(intake.String(), func(t *testing.T) {
			rt := NewRuntime(Config{Workers: 4, Intake: intake})
			rt.Start()
			const submitters, perSubmitter = 8, 3
			jobs := make([]*Job, submitters*perSubmitter)
			var wg sync.WaitGroup
			for s := 0; s < submitters; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					for k := 0; k < perSubmitter; k++ {
						i := s*perSubmitter + k
						if i%5 == 0 {
							jobs[i] = rt.Submit(func(*W) { panic(fmt.Sprintf("boom-%d", i)) })
						} else {
							jobs[i] = rt.Submit(submitFib(10))
						}
					}
				}(s)
			}
			wg.Wait()
			seen := map[uint64]bool{}
			for i, j := range jobs {
				err := j.Err()
				if i%5 == 0 {
					var tp *TaskPanic
					if !errors.As(err, &tp) || tp.Value != fmt.Sprintf("boom-%d", i) {
						t.Fatalf("job %d: err=%v, want own panic", i, err)
					}
				} else if err != nil {
					t.Fatalf("clean job %d: %v", i, err)
				}
				if seq := j.Seq(); seq == 0 || seen[seq] {
					t.Errorf("job %d: seq %d not unique and 1-based", i, seq)
				} else {
					seen[seq] = true
				}
				j.Release()
			}
			if err := rt.Close(context.Background()); err != nil {
				t.Fatalf("Close: %v", err)
			}
			st := rt.Stats()
			n := int64(submitters * perSubmitter)
			if st.JobsSubmitted != n || st.JobsAdmitted != n || st.JobsCompleted != n {
				t.Errorf("conservation: submitted=%d admitted=%d completed=%d, want %d each",
					st.JobsSubmitted, st.JobsAdmitted, st.JobsCompleted, n)
			}
			if st.JobsShed != 0 || st.JobsDrained != 0 {
				t.Errorf("shed=%d drained=%d, want 0/0", st.JobsShed, st.JobsDrained)
			}
		})
	}
}

// TestJobPoolRecycles pins the Release → Submit recycling loop: on the
// sharded intake, sequentially submitting and releasing must start
// handing back previously released handles (pointer reuse), and a reused
// handle must behave like a fresh one — new ID, clean Err, fresh Seq.
func TestJobPoolRecycles(t *testing.T) {
	rt := NewRuntime(Config{Workers: 4})
	rt.Start()
	defer rt.Close(context.Background())

	const rounds = 64
	seenPtr := make(map[*Job]int, rounds)
	reused := 0
	var lastID uint64
	for i := 0; i < rounds; i++ {
		j := rt.Submit(func(*W) {})
		if prev, ok := seenPtr[j]; ok {
			reused++
			_ = prev
		}
		seenPtr[j] = i
		if err := j.Err(); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if id := j.ID(); id <= lastID {
			t.Fatalf("round %d: ID %d not fresh (last %d) — stale pool reset", i, id, lastID)
		} else {
			lastID = id
		}
		j.Release()
	}
	if reused == 0 {
		t.Errorf("no Job handle was recycled across %d sequential submit/release rounds", rounds)
	}
}

// TestLazyStatsOnWait pins satellite (a): on the fast intake the
// completion path must NOT aggregate a Stats snapshot — it is computed on
// the first Wait and cached — while the mutex baseline keeps PR 8's eager
// capture. White-box: statsOK is only ever set by the completer (legacy)
// or under statsMu (lazy), so reading it after Err is race-free.
func TestLazyStatsOnWait(t *testing.T) {
	for _, intake := range IntakeKinds() {
		intake := intake
		t.Run(intake.String(), func(t *testing.T) {
			rt := NewRuntime(Config{Workers: 2, Intake: intake})
			rt.Start()
			defer rt.Close(context.Background())
			j := rt.Submit(func(*W) {})
			if err := j.Err(); err != nil {
				t.Fatal(err)
			}
			if eager := intake == IntakeMutex; j.statsOK != eager {
				t.Fatalf("statsOK=%v after completion, want %v for %v intake", j.statsOK, eager, intake)
			}
			s1 := j.Wait()
			if !j.statsOK {
				t.Fatal("statsOK still false after Wait")
			}
			if s1.JobsCompleted < 1 {
				t.Fatalf("Wait snapshot JobsCompleted=%d, want >=1", s1.JobsCompleted)
			}
			if s2 := j.Wait(); s2 != s1 {
				t.Fatalf("second Wait returned a different snapshot: %+v vs %+v", s2, s1)
			}
		})
	}
}

// TestCloseRacesFastSubmit hammers the submitFast ↔ Close Dekker pair:
// eight goroutines submit tiny roots while Close lands mid-stream. Every
// job must resolve (nil, ErrClosed, or ErrDrained), and the conservation
// law Submitted == Shed + Drained + Completed must hold exactly — a
// submission slipping past the closing life state would break it.
func TestCloseRacesFastSubmit(t *testing.T) {
	for _, intake := range IntakeKinds() {
		intake := intake
		t.Run(intake.String(), func(t *testing.T) {
			rt := NewRuntime(Config{Workers: 4, Intake: intake})
			rt.Start()
			const submitters, per = 8, 100
			jobs := make([]*Job, submitters*per)
			var wg sync.WaitGroup
			start := make(chan struct{})
			for s := 0; s < submitters; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					<-start
					for k := 0; k < per; k++ {
						jobs[s*per+k] = rt.Submit(func(*W) {})
					}
				}(s)
			}
			close(start)
			time.Sleep(200 * time.Microsecond)
			if err := rt.Close(context.Background()); err != nil {
				t.Fatalf("Close: %v", err)
			}
			wg.Wait()
			for i, j := range jobs {
				switch err := j.Err(); err {
				case nil, ErrClosed, ErrDrained:
				default:
					t.Fatalf("job %d: unexpected err %v", i, err)
				}
			}
			st := rt.Stats()
			total := int64(submitters * per)
			if st.JobsSubmitted != total {
				t.Fatalf("JobsSubmitted=%d, want %d", st.JobsSubmitted, total)
			}
			if st.JobsSubmitted != st.JobsShed+st.JobsDrained+st.JobsCompleted {
				t.Fatalf("conservation broken: submitted=%d != shed=%d + drained=%d + completed=%d",
					st.JobsSubmitted, st.JobsShed, st.JobsDrained, st.JobsCompleted)
			}
			if st.JobsAdmitted != st.JobsCompleted {
				t.Fatalf("JobsAdmitted=%d != JobsCompleted=%d after Close", st.JobsAdmitted, st.JobsCompleted)
			}
			if inf := rt.InflightJobs(); inf != 0 {
				t.Fatalf("InflightJobs=%d after Close", inf)
			}
		})
	}
}

// TestDoneLazyChannel pins the lazy wait-channel protocol: a completed
// job's Done returns the shared pre-closed channel with zero allocations,
// and a channel obtained BEFORE completion is still closed by it.
func TestDoneLazyChannel(t *testing.T) {
	rt := NewRuntime(Config{Workers: 2})
	rt.Start()
	defer rt.Close(context.Background())

	// Early Done: channel allocated by the waiter, closed by completion.
	gate := make(chan struct{})
	j := rt.Submit(func(*W) { <-gate })
	early := j.Done()
	select {
	case <-early:
		t.Fatal("Done closed before the root finished")
	default:
	}
	close(gate)
	select {
	case <-early:
	case <-time.After(5 * time.Second):
		t.Fatal("pre-completion Done channel never closed")
	}

	// Late Done: already complete — the shared closed channel, no allocs.
	if allocs := testing.AllocsPerRun(100, func() {
		<-j.Done()
	}); allocs != 0 {
		t.Errorf("Done on a completed job allocates %.1f/op, want 0", allocs)
	}
	j.Release()
}

// TestReleaseIncompletePanics pins the Release contract: recycling a
// handle whose job is still running must panic rather than hand a live
// Job to the pool.
func TestReleaseIncompletePanics(t *testing.T) {
	rt := NewRuntime(Config{Workers: 2})
	rt.Start()
	gate := make(chan struct{})
	j := rt.Submit(func(*W) { <-gate })
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Release of an incomplete Job did not panic")
			}
		}()
		j.Release()
	}()
	close(gate)
	if err := j.Err(); err != nil {
		t.Fatalf("Err after failed Release: %v", err)
	}
	j.Release()
	if err := rt.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
