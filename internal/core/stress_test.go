package core

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

// randomProgram builds a deterministic random fork-join program from a
// seed: a nest of forks, calls, joins, and frame reuses whose leaves each
// add a distinct token to an accumulator. The expected total depends only
// on the seed, so any loss, duplication, or ordering bug in the scheduler
// shows up as a wrong sum under some strategy or worker count.
type randomProgram struct {
	seed     uint64
	expected int64
}

func newRandomProgram(seed uint64) *randomProgram {
	p := &randomProgram{seed: seed | 1}
	p.expected = p.simulate(p.seed, 0)
	return p
}

// next is a splitmix64 step shared by the serial simulation and the
// parallel execution so both derive the identical program shape.
func next(s *uint64) uint64 {
	*s += 0x9E3779B97F4A7C15
	z := *s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// shape decodes a node's branching from its seed: how many fork phases,
// children per phase, and whether to recurse via call as well.
func shape(seed uint64, depth int) (phases, children int, call bool, leaf int64) {
	s := seed
	r := next(&s)
	if depth >= 6 || r%4 == 0 {
		return 0, 0, false, int64(r%1000) + 1
	}
	return int(r%2) + 1, int(r>>8%3) + 1, r>>16%2 == 0, 0
}

// simulate computes the expected accumulator total serially.
func (p *randomProgram) simulate(seed uint64, depth int) int64 {
	phases, children, call, leaf := shape(seed, depth)
	if phases == 0 {
		return leaf
	}
	var total int64
	s := seed
	for ph := 0; ph < phases; ph++ {
		for c := 0; c < children; c++ {
			total += p.simulate(next(&s), depth+1)
		}
	}
	if call {
		total += p.simulate(next(&s), depth+1)
	}
	return total
}

// run executes the same program on the runtime.
func (p *randomProgram) run(w *W, seed uint64, depth int, acc *atomic.Int64) {
	phases, children, call, leaf := shape(seed, depth)
	if phases == 0 {
		acc.Add(leaf)
		return
	}
	s := seed
	var fr Frame
	w.Init(&fr)
	for ph := 0; ph < phases; ph++ {
		for c := 0; c < children; c++ {
			childSeed := next(&s)
			w.Fork(&fr, func(w *W) { p.run(w, childSeed, depth+1, acc) })
		}
		w.Join(&fr) // frame reuse across phases
	}
	if call {
		callSeed := next(&s)
		w.Call(func(w *W) { p.run(w, callSeed, depth+1, acc) })
	}
}

func TestStressRandomProgramsAllStrategies(t *testing.T) {
	for _, strat := range Strategies() {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			for seed := uint64(1); seed <= 12; seed++ {
				p := newRandomProgram(seed * 0x1F3D5B79)
				rt := NewRuntime(Config{Workers: 6, Strategy: strat, StackPages: 4096})
				var acc atomic.Int64
				rt.Run(func(w *W) { p.run(w, p.seed, 0, &acc) })
				if got := acc.Load(); got != p.expected {
					t.Errorf("seed %d: total %d, want %d", seed, got, p.expected)
				}
			}
		})
	}
}

// Property: arbitrary seeds, arbitrary worker counts, Fibril strategy.
func TestQuickRandomPrograms(t *testing.T) {
	prop := func(seedRaw uint32, wRaw uint8) bool {
		p := newRandomProgram(uint64(seedRaw))
		workers := int(wRaw%8) + 1
		rt := NewRuntime(Config{Workers: workers, StackPages: 4096})
		var acc atomic.Int64
		rt.Run(func(w *W) { p.run(w, p.seed, 0, &acc) })
		return acc.Load() == p.expected
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestStressRepeatedRunsReuseRuntime hammers one runtime with many
// back-to-back computations, checking counter monotonicity and result
// stability — the pattern of a long-lived server embedding the runtime.
func TestStressRepeatedRunsReuseRuntime(t *testing.T) {
	rt := NewRuntime(Config{Workers: 8})
	// Pick a seed whose root actually forks, so the counter check is
	// meaningful.
	var p *randomProgram
	for seed := uint64(0xFEEDFACE); ; seed += 2 {
		p = newRandomProgram(seed)
		if phases, _, _, _ := shape(p.seed, 0); phases > 0 {
			break
		}
	}
	prevForks := int64(0)
	for i := 0; i < 30; i++ {
		var acc atomic.Int64
		rt.Run(func(w *W) { p.run(w, p.seed, 0, &acc) })
		if acc.Load() != p.expected {
			t.Fatalf("iteration %d: total %d, want %d", i, acc.Load(), p.expected)
		}
		forks := rt.Stats().Forks
		if forks <= prevForks {
			t.Fatalf("iteration %d: fork counter did not advance (%d -> %d)", i, prevForks, forks)
		}
		prevForks = forks
	}
}

// TestStressDeepAndWide combines a deep spawn chain with wide fan-out at
// the bottom — suspension-heavy and steal-heavy at once.
func TestStressDeepAndWide(t *testing.T) {
	rt := NewRuntime(Config{Workers: 8, FrameBytes: 512})
	var leaves atomic.Int64
	var dive func(w *W, d int)
	dive = func(w *W, d int) {
		var fr Frame
		w.Init(&fr)
		if d == 0 {
			for i := 0; i < 32; i++ {
				w.Fork(&fr, func(*W) { leaves.Add(1) })
			}
			w.Join(&fr)
			return
		}
		w.Fork(&fr, func(w *W) { dive(w, d-1) })
		w.Join(&fr)
	}
	rt.Run(func(w *W) { dive(w, 200) })
	if got := leaves.Load(); got != 32 {
		t.Errorf("leaves = %d, want 32", got)
	}
	s := rt.Stats()
	if s.Suspends != s.Resumes {
		t.Errorf("suspends %d != resumes %d", s.Suspends, s.Resumes)
	}
}
