package core

import (
	"sync/atomic"
	"testing"
)

// Temporary review stress: after Run completes under the relaxed deque,
// no tasks (not even claimed duplicates) may remain visible in any deque.
func TestReviewRelaxedQueuedAtQuiescence(t *testing.T) {
	var sink atomic.Int64
	var tree func(w *W, depth int)
	tree = func(w *W, depth int) {
		if depth == 0 {
			sink.Add(1)
			return
		}
		var fr Frame
		w.Init(&fr)
		for k := 0; k < 12; k++ {
			w.Fork(&fr, func(w *W) { tree(w, depth-1) })
		}
		w.Join(&fr)
	}
	for round := 0; round < 3000; round++ {
		rt := NewRuntime(Config{Workers: 4, Deque: DequeRelaxed, StackPages: 4096})
		rt.Run(func(w *W) { tree(w, 3) })
		if q := rt.QueuedTasks(); q != 0 {
			st := rt.Stats()
			t.Fatalf("round %d: QueuedTasks=%d after Run (dupExtractions=%d steals=%d)",
				round, q, st.DuplicateExtractions, st.Steals)
		}
	}
}
