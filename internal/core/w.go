package core

import (
	"fmt"
	"runtime"
	"time"
	"unsafe"

	"fibril/internal/stack"
	"fibril/internal/trace"
)

// W is a worker context: the handle through which application code forks,
// calls, and joins. One W belongs to one goroutine for that goroutine's
// lifetime; the worker *slot* behind it migrates across suspensions, which
// is why tasks receive a *W rather than a worker id.
type W struct {
	rt    *Runtime
	slot  *worker       // current worker slot; nil in the goroutine baseline
	stack *stack.Stack  // this goroutine's simulated stack
	stats *counterShard // this goroutine's counter shard (uncontended)

	depth    int32  // current invocation depth
	frame    *Frame // frame of the task currently executing (nil at root)
	released bool   // slot handed to a resumed parent; owner must retire

	// Hot Config fields cached at W creation (see Runtime.newW), so the
	// fork fast path touches only this cache line: the default frame size,
	// the strategy, whether its fork path needs the slow prologue
	// (Cilk Plus / TBB / goroutine baselines), and whether any sink
	// consumes KindFork (so the untraced path skips the Emit call
	// entirely).
	frameBytes int
	strategy   Strategy
	slowFork   bool
	wantsFork  bool

	scratch [8]uint64 // Cilk Plus spawn-prologue simulation target
}

// Runtime returns the runtime this context executes on.
func (w *W) Runtime() *Runtime { return w.rt }

// Depth returns the current invocation depth.
func (w *W) Depth() int { return int(w.depth) }

// StackID identifies the simulated stack the goroutine runs on.
func (w *W) StackID() int { return w.stack.ID() }

// Fork logically starts fn as a child task of frame f, running in parallel
// with the caller (fibril_fork). The child is pushed on the worker's deque
// where thieves can steal it; unstolen children execute during Join in the
// order work-first execution would have run them. The child's simulated
// activation frame uses the configured default size; use ForkSized to
// model a specific frame size.
func (w *W) Fork(f *Frame, fn func(*W)) {
	w.ForkSized(f, w.frameBytes, fn)
}

// ForkSized is Fork with an explicit simulated activation-frame size in
// bytes for the child.
func (w *W) ForkSized(f *Frame, bytes int, fn func(*W)) {
	f.count.Add(1)
	w.stats.forks.Add(1)
	if w.wantsFork {
		w.rt.trc.Emit(w.slotID(), trace.KindFork, int64(w.depth), 0)
	}
	t := task{fn: fn, frame: f, bytes: int32(bytes), depth: w.depth + 1}
	if w.slowFork {
		w.forkSlow(f, t)
		return
	}
	w.slot.deque.Push(t)
	// A parked thief must be woken by any Fork so exactly P slots stay
	// runnable whenever work exists (busy leaves). One atomic load when
	// nobody is parked.
	w.rt.park.wake(1)
}

// ForkArg forks fn with an argument pointer instead of a closure — the
// zero-allocation fork: the (code pointer, argument pointer) pair travels
// through the deque by value, so the steady-state fast path performs no
// heap allocation at all. arg must stay valid (and, if it holds the only
// reference to a heap object, reachable) until the child completes; frames
// and argument blocks recycled through AcquireScratch/ReleaseScratch
// satisfy this by construction. The type-safe wrapper is fibril.ForkOf.
func (w *W) ForkArg(f *Frame, fn func(*W, unsafe.Pointer), arg unsafe.Pointer) {
	w.ForkArgSized(f, w.frameBytes, fn, arg)
}

// ForkArgSized is ForkArg with an explicit simulated activation-frame size
// in bytes for the child.
func (w *W) ForkArgSized(f *Frame, bytes int, fn func(*W, unsafe.Pointer), arg unsafe.Pointer) {
	f.count.Add(1)
	w.stats.forks.Add(1)
	if w.wantsFork {
		w.rt.trc.Emit(w.slotID(), trace.KindFork, int64(w.depth), 0)
	}
	t := task{argfn: fn, arg: arg, frame: f, bytes: int32(bytes), depth: w.depth + 1}
	if w.slowFork {
		w.forkSlow(f, t)
		return
	}
	w.slot.deque.Push(t)
	w.rt.park.wake(1)
}

// forkSlow is the out-of-line tail of the fork path for the strategies
// whose spawn prologue is deliberately expensive (that expense being what
// Figure 3 measures) or structurally different: Cilk Plus's full stack
// frame, TBB's heap-allocated task object, and the goroutine-per-task
// baseline. Keeping it out of ForkSized/ForkArgSized keeps the Fibril-family
// fast path small enough to stay inlinable.
func (w *W) forkSlow(f *Frame, t task) {
	switch w.strategy {
	case StrategyCilkPlus:
		// Cilk Plus's spawn prologue maintains a full __cilkrts_stack_frame
		// (flags, parent links, pedigree) beyond what Fibril's three saved
		// registers need. Model it as extra stores the compiler cannot
		// remove plus one extra synchronizing operation.
		for i := range w.scratch {
			w.scratch[i] = uint64(t.bytes) + uint64(i)
		}
		w.stats.spawnOverhead.Add(1)
	case StrategyTBB:
		// TBB allocates a task object per spawn and manipulates its
		// reference count through the scheduler — the heaviest fork path
		// in the comparison (Figure 3).
		h := &tbbTask{parent: f, depth: t.depth}
		h.refcount.Store(1)
		h.refcount.Add(1)
		t.heavy = h
		w.stats.spawnOverhead.Add(1)
	case StrategyGoroutine:
		// Go-native baseline: a goroutine per task with its own pooled
		// stack; no deques, nothing to steal.
		go func() {
			st := w.rt.takeStack(-1)
			child := w.rt.newW(nil, st, w.rt.shard(-1))
			child.exec(t)
			w.rt.pool.Put(-1, st)
			child.childDone(f)
		}()
		return
	}
	w.slot.deque.Push(t)
	w.rt.park.wake(1)
}

// ShouldSplit reports whether publishing more parallelism right now could
// feed an otherwise-idle worker: the slot's deque looks empty (any probing
// thief leaves hungry) or at least one thief is parked for lack of work.
// It is the steal-driven probe behind lazy loop splitting — a loop body
// checks it between serial chunks and forks only on true, so a saturated
// system runs tight serial loops while an idle one splits eagerly. The
// answer is a racy hint, never a correctness condition.
func (w *W) ShouldSplit() bool {
	if w.slot == nil {
		return true // goroutine baseline: forking is the only way to share
	}
	return w.slot.deque.LazyHint() || w.rt.park.parked() > 0
}

// Call runs fn synchronously as a plain function call with a simulated
// activation frame of the configured default size — the serial-parallel
// reciprocity path: any code, including "serial" callbacks, may call into
// or out of parallel code freely (§1, §4.1).
func (w *W) Call(fn func(*W)) {
	w.CallSized(w.frameBytes, fn)
}

// CallSized is Call with an explicit frame size in bytes. Panics propagate
// to the caller, as in a plain function call, with the simulated frame
// popped on the way out.
func (w *W) CallSized(bytes int, fn func(*W)) {
	w.stats.calls.Add(1)
	base, err := w.stack.Push(bytes)
	if err != nil {
		panic(fmt.Sprintf("core: stack overflow in Call: %v", err))
	}
	w.depth++
	defer func() {
		w.depth--
		w.stack.Pop(base)
	}()
	fn(w)
}

// CallArg is Call for a (code pointer, argument pointer) pair — the serial
// spine of ForkArg-based code, allocation-free like its fork counterpart.
func (w *W) CallArg(fn func(*W, unsafe.Pointer), arg unsafe.Pointer) {
	w.CallArgSized(w.frameBytes, fn, arg)
}

// CallArgSized is CallArg with an explicit frame size in bytes.
func (w *W) CallArgSized(bytes int, fn func(*W, unsafe.Pointer), arg unsafe.Pointer) {
	w.stats.calls.Add(1)
	base, err := w.stack.Push(bytes)
	if err != nil {
		panic(fmt.Sprintf("core: stack overflow in Call: %v", err))
	}
	w.depth++
	defer func() {
		w.depth--
		w.stack.Pop(base)
	}()
	fn(w, arg)
}

// Alloca grows the current simulated frame by n bytes (touching any new
// pages) and returns a release function, modelling variable-size frames.
func (w *W) Alloca(n int) (release func()) {
	base, err := w.stack.Push(n)
	if err != nil {
		panic(fmt.Sprintf("core: stack overflow in Alloca: %v", err))
	}
	return func() { w.stack.Pop(base) }
}

// Join waits until every child forked on f has completed (fibril_join).
// If any child panicked, Join re-raises the first such panic as a
// *TaskPanic — the C-elision point where the panic would have surfaced.
// See the package comment for the per-strategy blocked-join behaviour.
func (w *W) Join(f *Frame) {
	if f.count.Load() != 0 {
		switch w.strategy {
		// For the inline-stealing joins the eligibility closure captures f
		// and escapes into rt.steal, so it heap-allocates at creation; the
		// local drain runs first so the common join — children still in our
		// own deque — never materializes it and stays on the 0-alloc path.
		case StrategyTBB:
			if !w.joinDrainLocal(f) {
				w.joinInlineStealing(f, func(t task) bool { return t.depth > f.depth })
			}
		case StrategyLeapfrog:
			// The walk bound is the candidate's own trusted depth: a live
			// candidate's ancestry is at most t.depth links, and a stale
			// one (whose frame may be arena-recycled mid-walk) is rejected
			// by the deque CAS whatever the walk answers.
			if !w.joinDrainLocal(f) {
				w.joinInlineStealing(f, func(t task) bool {
					return t.frame.isDescendantWithin(f, t.depth)
				})
			}
		case StrategyGoroutine:
			w.joinBlocking(f)
		default:
			w.joinSuspending(f)
		}
	}
	if tp := f.takePanic(); tp != nil {
		panic(tp)
	}
}

// joinSuspending is the Fibril / Cilk Plus join: drain the local deque,
// then suspend.
func (w *W) joinSuspending(f *Frame) {
	for {
		if f.count.Load() == 0 {
			return
		}
		if t, ok := w.slot.deque.Pop(); ok {
			if w.claimTask(t) {
				w.runInline(t)
			}
			continue
		}
		// All remaining children were stolen; park until the last thief
		// finishes and hands us a slot. suspend reports false when the
		// children finished in the race window, in which case the count
		// is already zero.
		if w.suspend(f) {
			return
		}
	}
}

// joinInlineStealing is the TBB / leapfrog join: never park, steal eligible
// deeper work and run it inline on our own stack. This keeps the worker on
// one stack (no suspension, no extra stacks) at the cost of the time bound
// (§3, Sukha's lower bound).
func (w *W) joinInlineStealing(f *Frame, eligible func(task) bool) {
	for !w.joinDrainLocal(f) {
		if t, ok := w.rt.steal(w, eligible); ok {
			w.stats.restrictedSteals.Add(1)
			w.runInline(t)
			continue
		}
		runtime.Gosched()
	}
}

// joinDrainLocal pops and runs local work while children of f remain,
// reporting true when the join count drained without needing to steal.
func (w *W) joinDrainLocal(f *Frame) bool {
	for {
		if f.count.Load() == 0 {
			return true
		}
		t, ok := w.slot.deque.Pop()
		if !ok {
			return false
		}
		if w.claimTask(t) {
			w.runInline(t)
		}
	}
}

// joinBlocking is the goroutine baseline's join: park until count drains.
func (w *W) joinBlocking(f *Frame) {
	for f.count.Load() != 0 {
		if w.suspend(f) {
			return
		}
	}
}

// exec pushes the task's simulated frame, runs its body with depth/frame
// context switched, and pops the frame. A panic escaping the task body is
// captured on the parent frame (re-raised at its Join); for a root task
// (no parent frame) it is captured on the task's Job, surfacing through
// Job.Err without disturbing sibling jobs. Bookkeeping is restored either
// way, so the worker survives.
func (w *W) exec(t task) {
	base, err := w.stack.Push(int(t.bytes))
	if err != nil {
		panic(fmt.Sprintf("core: stack overflow executing task: %v", err))
	}
	prevDepth, prevFrame := w.depth, w.frame
	w.depth, w.frame = t.depth, t.frame
	defer func() {
		w.depth, w.frame = prevDepth, prevFrame
		w.stack.Pop(base)
		if v := recover(); v != nil {
			tp := capture(v)
			if t.frame != nil {
				t.frame.recordPanic(tp)
			} else if t.job != nil {
				t.job.tp = tp
			}
		}
	}()
	if t.argfn != nil {
		t.argfn(w, t.arg)
	} else {
		t.fn(w)
	}
}

// runInline executes a task popped (or inline-stolen) during a Join, on
// top of the worker's current stack. Its completion can never resume a
// suspended frame: local tasks' parent frames live on this goroutine's own
// active call chain, and the inline-stealing strategies never suspend.
func (w *W) runInline(t task) {
	w.exec(t)
	if w.childDone(t.frame) {
		panic("core: inline task completion triggered a slot handoff")
	}
}

// runRoot executes an admitted root task — a submitted Job. A root has no
// parent frame and no cactus link: its frames grow from the base of the
// executing worker's own stack. Roots emit job-lifecycle events rather
// than KindTaskStart/KindTaskEnd, which stay reserved for stolen tasks so
// the trace-reconciliation law (task events == base steals) survives
// concurrent submission. The root may itself suspend at a Join — the slot
// migrates exactly as for any other task — and when exec returns, this
// goroutine (on whatever slot it now holds) completes the Job.
func (w *W) runRoot(t task) {
	w.rt.trc.Emit(w.slotID(), trace.KindJobStart, int64(t.job.id), 0)
	w.exec(t)
	w.rt.completeJob(w.slotID(), t.job)
}

// runStolen executes a task taken by a base-level thief: a submitted root
// (dispatched through runRoot), or a stolen child — link the thief's
// stack into the cactus (the stolen child's frames grow on a stack
// branching from the parent's), execute, and notify the parent. A handoff
// here marks the slot released so the thief loop retires.
func (w *W) runStolen(t task) {
	if t.job != nil {
		w.runRoot(t)
		return
	}
	if ps := t.frame.stack; ps != nil && ps != w.stack {
		// The branch depth is the parent stack's watermark when the frame
		// was initialized — captured then because the victim may still be
		// pushing and popping on its stack right now.
		ps.BranchAt(w.stack, t.frame.initMark)
	}
	w.rt.trc.Emit(w.slotID(), trace.KindTaskStart, int64(t.depth), 0)
	// Stolen-task run time: measured only when a sink consumes task-end
	// events, so untraced runs skip both clock reads.
	var t0 time.Time
	if w.rt.trc.Wants(trace.KindTaskEnd) {
		t0 = time.Now()
	}
	w.exec(t)
	var ran time.Duration
	if !t0.IsZero() {
		ran = time.Since(t0)
	}
	w.rt.trc.Emit(w.slotID(), trace.KindTaskEnd, int64(t.depth), ran)
	if w.childDone(t.frame) {
		w.released = true
	}
}

// slotID returns the current worker slot id, -1 when slotless (the
// goroutine baseline).
func (w *W) slotID() int {
	if w.slot == nil {
		return -1
	}
	return w.slot.id
}
