package core

import (
	"strings"
	"testing"
	"time"

	"fibril/internal/trace"
)

func TestTracerRecordsSchedulerEvents(t *testing.T) {
	rec := trace.NewRecorder(0)
	rt := NewRuntime(Config{Workers: 8, Strategy: StrategyFibril, Tracer: rec})
	var out int64
	rt.Run(func(w *W) { parfib(w, 20, &out) })
	stats := rt.Stats()

	counts := rec.Counts()
	if int64(counts[trace.KindFork]) != stats.Forks {
		t.Errorf("traced forks %d != counted %d", counts[trace.KindFork], stats.Forks)
	}
	if int64(counts[trace.KindSteal]) != stats.Steals {
		t.Errorf("traced steals %d != counted %d", counts[trace.KindSteal], stats.Steals)
	}
	if int64(counts[trace.KindSuspend]) != stats.Suspends {
		t.Errorf("traced suspends %d != counted %d", counts[trace.KindSuspend], stats.Suspends)
	}
	if int64(counts[trace.KindResume]) != stats.Resumes {
		t.Errorf("traced resumes %d != counted %d", counts[trace.KindResume], stats.Resumes)
	}
	if int64(counts[trace.KindUnmap]) != stats.Unmaps {
		t.Errorf("traced unmaps %d != counted %d", counts[trace.KindUnmap], stats.Unmaps)
	}
	// Every stolen task produces a start/end pair.
	if counts[trace.KindTaskStart] != counts[trace.KindTaskEnd] {
		t.Errorf("start %d != end %d", counts[trace.KindTaskStart], counts[trace.KindTaskEnd])
	}
	if int64(counts[trace.KindTaskStart]) != stats.Steals {
		t.Errorf("task starts %d != steals %d", counts[trace.KindTaskStart], stats.Steals)
	}

	var b strings.Builder
	if err := rec.Timeline(&b, time.Microsecond); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "w0") {
		t.Error("timeline missing worker 0 lane")
	}
}

func TestNoTracerNoOverheadPath(t *testing.T) {
	// Without a tracer the runtime must work identically (nil-safe sites).
	rt := NewRuntime(Config{Workers: 4})
	var out int64
	rt.Run(func(w *W) { parfib(w, 15, &out) })
	if out != 610 {
		t.Errorf("parfib(15) = %d", out)
	}
}
