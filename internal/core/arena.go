package core

import "unsafe"

// This file implements the per-worker-slot free-list arena behind the
// zero-allocation fork path, after Blelloch & Wei's per-processor
// fixed-size constant-time allocation: every block is the same size, each
// worker slot owns a private free list, and allocation/free are a pointer
// pop/push with no atomics — slot occupancy is exclusive, and slot
// handoffs (suspend/resume, thief retirement) already establish
// happens-before edges. Blocks migrate freely between slots: a block
// acquired on one slot may be released on whichever slot its releaser
// occupies by then, which is exactly how Blelloch–Wei keeps per-processor
// pools balanced without a global structure.

// ScratchBytes is the size of a Scratch block's payload area.
const ScratchBytes = 16 * 8

// arenaHoardCap bounds a slot's free list. Beyond it a released block is
// simply dropped for the GC to collect — the "heap under pressure"
// fallback, which also keeps a burst of deep recursion from pinning an
// unbounded hoard on one slot forever.
const arenaHoardCap = 64

// Scratch is one fixed-size arena block: a Frame plus ScratchBytes of
// payload for the fork's argument record, so one block carries everything
// a ForkArg spawn needs. Acquire with W.AcquireScratch, release with
// W.ReleaseScratch after the frame's Join has returned.
//
// The payload area is untyped and NOT scanned by the garbage collector
// (it is pointer-free memory). A pointer stored in it keeps nothing
// alive: callers must guarantee every object referenced from the payload
// is independently reachable — e.g. from a live local, a parameter kept
// alive with runtime.KeepAlive, or another scanned structure — for as
// long as the block is in flight. The loop engine and the benchmarks
// satisfy this by keeping the user's closures and result slots alive in
// the root caller's frame for the duration.
type Scratch struct {
	next  *Scratch // free-list link; nil while the block is in flight
	frame Frame
	buf   [ScratchBytes / 8]uint64
}

// Frame returns the block's embedded Frame, ready for W.Init.
func (s *Scratch) Frame() *Frame { return &s.frame }

// Ptr returns the payload area, to be cast to the caller's argument
// record type (at most ScratchBytes large; see the type comment for the
// reachability contract).
func (s *Scratch) Ptr() unsafe.Pointer { return unsafe.Pointer(&s.buf[0]) }

// frameArena is one slot's private free list of Scratch blocks.
type frameArena struct {
	free *Scratch
	n    int
}

// AcquireScratch returns a Scratch block: from the current slot's free
// list when one is hoarded (the steady-state, allocation-free path), from
// the heap otherwise. Slotless workers (goroutine baseline) always take
// the heap path.
func (w *W) AcquireScratch() *Scratch {
	if w.slot != nil {
		if s := w.slot.arena.free; s != nil {
			w.slot.arena.free = s.next
			w.slot.arena.n--
			s.next = nil
			return s
		}
	}
	return new(Scratch)
}

// ReleaseScratch returns s to the current slot's free list. It must only
// be called once the block is quiescent: the Join on its frame has
// returned and no task still holds the payload pointer. It must NOT be
// called on a panic unwind — an in-flight child may still reference the
// block, so leaking it to the GC is the only safe disposal; the callers'
// release sites are skipped by unwinding naturally, never deferred.
//
// The frame's references are dropped so a hoarded block pins nothing; the
// resume channel is deliberately kept, making repeat suspensions on
// recycled frames allocation-free.
func (w *W) ReleaseScratch(s *Scratch) {
	if w.slot == nil || !w.arenaOK || w.slot.arena.n >= arenaHoardCap {
		return // heap fallback: the GC takes it
	}
	f := &s.frame
	f.count.Store(0)
	f.stack = nil
	f.parent = nil
	f.pendingReclaim = nil
	f.panicked = nil
	s.next = w.slot.arena.free
	w.slot.arena.free = s
	w.slot.arena.n++
}
