package core

import (
	"sync/atomic"
	"unsafe"
)

// This file implements the per-worker-slot free-list arena behind the
// zero-allocation fork path, after Blelloch & Wei's per-processor
// fixed-size constant-time allocation: every block is the same size, each
// worker slot owns a private free list, and allocation/free are a pointer
// pop/push with no atomics — slot occupancy is exclusive, and slot
// handoffs (suspend/resume, thief retirement) already establish
// happens-before edges. Blocks migrate freely between slots: a block
// acquired on one slot may be released on whichever slot its releaser
// occupies by then, which is exactly how Blelloch–Wei keeps per-processor
// pools balanced without a global structure.
//
// Under heavy stealing the local lists alone are not enough: steal-heavy
// workloads systematically acquire on one slot and release on another, so
// the releaser's hoard fills to its cap and overflows while the acquirer's
// empties and falls back to the heap — precisely the GC churn the arena
// exists to avoid. Each slot therefore also owns a *remote-free* list (the
// weave-allocator shape): a lock-free MPSC Treiber stack any worker may
// push a block onto when it cannot keep it locally, drained wholesale by
// the home slot on its next local miss. Push is a single CAS (ABA-safe:
// only the drain removes, and it removes the whole list with one Swap);
// drain is one Swap plus a plain-walk adoption.

// ScratchBytes is the size of a Scratch block's payload area.
const ScratchBytes = 16 * 8

// arenaHoardCap bounds a slot's local free list; a release beyond it is
// handed to the block's home slot's remote-free list instead.
const arenaHoardCap = 64

// remoteHoardCap bounds a slot's remote-free list (approximately — the
// gate reads a racy counter). A block that fits on neither list is dropped
// for the GC to collect, counted in Stats.ArenaDrops.
const remoteHoardCap = 64

// Scratch is one fixed-size arena block: a Frame plus ScratchBytes of
// payload for the fork's argument record, so one block carries everything
// a ForkArg spawn needs. Acquire with W.AcquireScratch, release with
// W.ReleaseScratch after the frame's Join has returned.
//
// The payload area is untyped and NOT scanned by the garbage collector
// (it is pointer-free memory). A pointer stored in it keeps nothing
// alive: callers must guarantee every object referenced from the payload
// is independently reachable — e.g. from a live local, a parameter kept
// alive with runtime.KeepAlive, or another scanned structure — for as
// long as the block is in flight. The loop engine and the benchmarks
// satisfy this by keeping the user's closures and result slots alive in
// the root caller's frame for the duration.
type Scratch struct {
	next *Scratch // free-list link; nil while the block is in flight
	// home is the slot whose arena the block belongs to: the slot it was
	// last acquired from or hoarded on. -1 for heap-born blocks of
	// slotless (goroutine-baseline) workers, which have no home to return
	// to. Only the block's exclusive owner writes it.
	home  int32
	frame Frame
	buf   [ScratchBytes / 8]uint64
}

// Frame returns the block's embedded Frame, ready for W.Init.
func (s *Scratch) Frame() *Frame { return &s.frame }

// Ptr returns the payload area, to be cast to the caller's argument
// record type (at most ScratchBytes large; see the type comment for the
// reachability contract).
func (s *Scratch) Ptr() unsafe.Pointer { return unsafe.Pointer(&s.buf[0]) }

// frameArena is one slot's Scratch free lists: the owner-private local
// list plus the any-worker remote-free hand-back list.
type frameArena struct {
	free *Scratch // local list; owner-only plain memory
	n    int
	// remote is the MPSC hand-back list: pushed with a CAS by any worker
	// releasing one of this slot's blocks, emptied with one Swap by the
	// slot owner on a local miss. remoteN is the racy length gate for
	// remoteHoardCap; it is advisory only — exact accounting comes from
	// the RemoteFrees/RemoteDrains counters.
	remote  atomic.Pointer[Scratch]
	remoteN atomic.Int32
}

// pushRemote hands s back to this arena's home slot. Any worker may call
// it; the Treiber push is ABA-safe because the only removal is the drain's
// whole-list Swap.
func (a *frameArena) pushRemote(s *Scratch) {
	for {
		old := a.remote.Load()
		s.next = old
		if a.remote.CompareAndSwap(old, s) {
			a.remoteN.Add(1)
			return
		}
	}
}

// AcquireScratch returns a Scratch block: from the current slot's local
// free list when one is hoarded (the steady-state, allocation-free path),
// from the slot's remote-free list on a local miss (adopting every block
// foreign releasers handed back), and from the heap only when both are
// empty. Slotless workers (goroutine baseline) always take the heap path.
func (w *W) AcquireScratch() *Scratch {
	w.stats.arenaAcquires.Add(1)
	if w.slot != nil {
		a := &w.slot.arena
		if s := a.free; s != nil {
			a.free = s.next
			a.n--
			s.next = nil
			return s
		}
		if a.remoteN.Load() > 0 {
			if s := w.drainRemote(a); s != nil {
				return s
			}
		}
		s := new(Scratch)
		s.home = int32(w.slot.id)
		return s
	}
	s := new(Scratch)
	s.home = -1
	return s
}

// drainRemote empties the slot's remote-free list, adopting every block
// into the local list (re-stamping home — they are this slot's blocks
// again) and returning one of them; nil if the list was empty. The local
// list may transiently exceed arenaHoardCap after a large drain; later
// releases shed the excess through the remote path or the GC.
func (w *W) drainRemote(a *frameArena) *Scratch {
	s := a.remote.Swap(nil)
	if s == nil {
		return nil
	}
	home := int32(w.slot.id)
	n := 1
	tail := s
	s.home = home
	for tail.next != nil {
		tail = tail.next
		tail.home = home
		n++
	}
	a.remoteN.Add(int32(-n))
	w.stats.remoteDrains.Add(int64(n))
	rest := s.next
	s.next = nil
	if rest != nil {
		tail.next = a.free
		a.free = rest
		a.n += n - 1
	}
	return s
}

// ReleaseScratch returns s to the current slot's free list — or, when the
// local hoard is full or the releaser is slotless, hands it back to its
// home slot's remote-free list so steal-heavy acquire-here/release-there
// traffic recirculates instead of churning the GC. A block that fits
// nowhere is dropped (Stats.ArenaDrops).
//
// It must only be called once the block is quiescent: the Join on its
// frame has returned and no task still holds the payload pointer. It must
// NOT be called on a panic unwind — an in-flight child may still reference
// the block, so leaking it to the GC is the only safe disposal; the
// callers' release sites are skipped by unwinding naturally, never
// deferred.
//
// The frame's references are dropped so a hoarded block pins nothing; the
// resume channel is deliberately kept, making repeat suspensions on
// recycled frames allocation-free.
func (w *W) ReleaseScratch(s *Scratch) {
	w.stats.arenaReleases.Add(1)
	f := &s.frame
	f.count.Store(0)
	f.stack = nil
	f.parent.Store(nil)
	f.pendingReclaim = nil
	f.panicked = nil
	if w.slot != nil {
		a := &w.slot.arena
		if a.n < arenaHoardCap {
			s.home = int32(w.slot.id) // adopted: the block lives here now
			s.next = a.free
			a.free = s
			a.n++
			return
		}
	}
	if h := s.home; h >= 0 && int(h) < len(w.rt.workers) {
		ra := &w.rt.workers[h].arena
		if ra.remoteN.Load() < remoteHoardCap {
			ra.pushRemote(s)
			w.stats.remoteFrees.Add(1)
			return
		}
	}
	w.stats.arenaDrops.Add(1) // heap fallback: the GC takes it
}
