package core

import (
	"fmt"
	"runtime/debug"
)

// TaskPanic wraps a panic that escaped a forked task. The runtime captures
// it on the worker that ran the task and re-raises it from the Join (or
// from Run, for the root task), so parallel code gets the same
// panic-at-the-synchronization-point semantics a serial program would: in
// the C elision, the fork is a call and the panic would surface there.
type TaskPanic struct {
	// Value is the original panic value.
	Value any
	// Stack is the goroutine stack captured where the panic happened.
	Stack []byte
}

// Error makes TaskPanic usable as an error value too.
func (p *TaskPanic) Error() string { return p.String() }

func (p *TaskPanic) String() string {
	return fmt.Sprintf("fibril: panic in forked task: %v\n--- task stack ---\n%s", p.Value, p.Stack)
}

// Unwrap exposes a wrapped error panic value to errors.Is/As.
func (p *TaskPanic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// capture wraps a recovered value, preserving an existing TaskPanic (a
// panic that already crossed one join and is propagating further up).
func capture(v any) *TaskPanic {
	if tp, ok := v.(*TaskPanic); ok {
		return tp
	}
	return &TaskPanic{Value: v, Stack: debug.Stack()}
}

// recordPanic stores the first panic among a frame's children; later ones
// are dropped (like errgroup, the first failure wins).
func (f *Frame) recordPanic(tp *TaskPanic) {
	f.mu.Lock()
	if f.panicked == nil {
		f.panicked = tp
	}
	f.mu.Unlock()
}

// takePanic returns and clears the frame's recorded panic.
func (f *Frame) takePanic() *TaskPanic {
	f.mu.Lock()
	tp := f.panicked
	f.panicked = nil
	f.mu.Unlock()
	return tp
}
