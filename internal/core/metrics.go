package core

import "fibril/internal/trace"

// Gauges are instantaneous runtime readings — unlike the monotonic Stats
// counters, each is a racy-but-coherent point sample of live scheduler
// and memory state, meaningful mid-execution (and all zero, except
// StacksInUse on the goroutine baseline, at quiescence).
type Gauges struct {
	// ResidentPages is the simulated resident set right now, in pages.
	ResidentPages int64
	// QueuedTasks is the number of forked tasks sitting in worker deques,
	// waiting to be stolen or inline-drained.
	QueuedTasks int
	// ParkedThieves is the number of thief goroutines asleep on the park
	// lot (idle capacity).
	ParkedThieves int
	// PendingReclaims is the number of live deferred-unmap tickets
	// (coalesced-unmap mode's promised-but-unissued madvises).
	PendingReclaims int
	// StacksInUse is the number of simulated stacks currently checked out
	// of the pool.
	StacksInUse int
	// InflightJobs is the number of admitted, not-yet-completed Jobs on
	// the serving lifecycle.
	InflightJobs int
	// QueuedJobs is the number of Jobs awaiting admission plus admitted
	// roots not yet picked up by a worker.
	QueuedJobs int
}

// Metrics is the live introspection snapshot returned by
// Runtime.Snapshot: the cumulative counters, the instantaneous gauges,
// and — when a trace.MetricsSink is attached — its latency histograms.
type Metrics struct {
	Stats  Stats
	Gauges Gauges
	// Trace holds the attached MetricsSink's histogram aggregates; nil
	// when the runtime's sink is not a *trace.MetricsSink.
	Trace *trace.MetricsSnapshot
}

// Snapshot captures the runtime's live metrics. Unlike the quiescence
// accessors in inspect.go it is safe to call at any time, including
// concurrently with Run: every source it reads — counter shards, pool
// and address-space counters, deque length estimates, the park lot, the
// reclaim lists, the metrics sink's histogram buckets — is individually
// synchronized, so the snapshot is a coherent point sample of each,
// though not a single atomic cut across all of them.
func (rt *Runtime) Snapshot() Metrics {
	m := Metrics{
		Stats: rt.Stats(),
		Gauges: Gauges{
			ResidentPages:   rt.as.RSSPages(),
			QueuedTasks:     rt.QueuedTasks(),
			ParkedThieves:   rt.ParkedThieves(),
			PendingReclaims: rt.PendingReclaims(),
			StacksInUse:     rt.pool.InUse(),
			InflightJobs:    rt.InflightJobs(),
			QueuedJobs:      rt.QueuedJobs(),
		},
	}
	if rt.metrics != nil {
		snap := rt.metrics.Snapshot()
		m.Trace = &snap
	}
	return m
}
