package core

import (
	"sync"

	"fibril/internal/stack"
	"fibril/internal/trace"
)

// This file implements the coalesced-unmap / RSS-ceiling half of the
// memory-pressure engine. With Config.UnmapBatch > 1 a Fibril suspend no
// longer madvises its stack eagerly (Listing 3 line 63); it posts a
// reclaimTicket — "pages [watermark, cleanFrom) of this stack are
// reclaimable" — on its worker's reclaim list. Tickets are resolved in one
// of two ways:
//
//   - the frame resumes first: childDone CANCELS the ticket before waking
//     the owner, and the madvise (plus the refaults re-touching those
//     pages would have cost) never happens — the common case for
//     short-lived suspensions, and where the batching wins;
//   - the list reaches UnmapBatch tickets (or the RSS ceiling forces a
//     drain, or the run ends): the tickets are FLUSHED, each live one
//     issuing its deferred madvise.
//
// A per-ticket mutex makes cancel and flush mutually exclusive, and
// childDone cancels strictly before it sends the resume signal, so a
// flush can never madvise a stack whose owner is running again.
//
// The space envelope survives the deferred timing: a stack's resident
// pages never exceed its own high-water mark, so MaxRSS stays within
// StacksCreated × (D+1)(S1p+1) pages no matter how long a flush is
// delayed — the oracle checked in internal/check is unchanged.

// reclaimTicket is one suspended stack's deferred unmap: the pages in
// [from, cleanFrom) of s may be returned to the OS while the ticket is
// live. Exactly one of cancel (the resume won) or a flush (the batch won)
// resolves it.
type reclaimTicket struct {
	mu   sync.Mutex
	done bool
	s    *stack.Stack
	from int // page watermark captured at suspension
}

// cancel marks the ticket dead, reporting whether it was still live (the
// caller counts it as a saved madvise). It blocks while a flush holds the
// ticket, so on return no madvise of the stack is in flight.
func (t *reclaimTicket) cancel() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return false
	}
	t.done = true
	return true
}

// reclaimList is one worker slot's pending tickets. Its lock is taken only
// on the suspend path and by drains — never on fork/steal hot paths.
type reclaimList struct {
	mu      sync.Mutex
	pending []*reclaimTicket
}

// reclaimer owns the per-worker reclaim lists and the RSS-ceiling policy.
type reclaimer struct {
	rt      *Runtime
	batch   int   // Config.UnmapBatch
	ceiling int64 // Config.MaxResidentPages; 0 = no ceiling
	lists   []reclaimList
}

func newReclaimer(rt *Runtime) *reclaimer {
	return &reclaimer{
		rt:      rt,
		batch:   rt.cfg.UnmapBatch,
		ceiling: rt.cfg.MaxResidentPages,
		lists:   make([]reclaimList, rt.cfg.Workers+1),
	}
}

// batched reports whether suspends defer their unmaps (UnmapBatch > 1);
// otherwise the eager per-suspend behaviour is kept bit-for-bit.
func (r *reclaimer) batched() bool { return r.batch > 1 }

// list maps a worker slot to its reclaim list; slotless workers (-1) share
// the spare, like counter shards.
func (r *reclaimer) list(slot int) *reclaimList {
	if slot < 0 || slot >= len(r.lists)-1 {
		return &r.lists[len(r.lists)-1]
	}
	return &r.lists[slot]
}

// enqueue posts a ticket on the slot's list, flushing the list if it
// reached the batch size. The ticket may already be cancelled (its frame
// resumed while the suspend path was still publishing it); it is appended
// anyway and skipped at flush time, having been counted by the cancel.
func (r *reclaimer) enqueue(slot int, sh *counterShard, t *reclaimTicket) {
	l := r.list(slot)
	l.mu.Lock()
	l.pending = append(l.pending, t)
	var batch []*reclaimTicket
	if len(l.pending) >= r.batch {
		batch = l.pending
		l.pending = nil
	}
	l.mu.Unlock()
	if batch != nil {
		r.flush(slot, sh, batch)
	}
}

// flush resolves a batch of tickets, issuing the deferred madvise for each
// one still live. Tickets the resume already cancelled cost nothing and
// count nothing (the cancel counted them); live tickets whose range turns
// out clean (defensive — the hysteresis gate should have skipped them at
// suspend time) count as skips so the suspend conservation equality
// Suspends == Unmaps + ReclaimCancels + ReclaimSkips stays exact.
func (r *reclaimer) flush(slot int, sh *counterShard, batch []*reclaimTicket) {
	flushed := 0
	for _, t := range batch {
		t.mu.Lock()
		if t.done {
			t.mu.Unlock()
			continue
		}
		freed, called := t.s.UnmapFrom(t.from)
		t.done = true
		t.mu.Unlock()
		if called {
			flushed++
			sh.unmaps.Add(1)
			sh.unmappedPages.Add(int64(freed))
			r.rt.trc.Emit(slot, trace.KindUnmap, int64(freed), 0)
		} else {
			sh.reclaimSkips.Add(1)
		}
	}
	if flushed > 0 {
		sh.unmapBatches.Add(1)
		r.rt.trc.Emit(slot, trace.KindUnmapBatch, int64(flushed), 0)
	}
}

// drainAll flushes every list — the ceiling's first resort, and the
// end-of-run cleanup that leaves no ticket pending.
func (r *reclaimer) drainAll(slot int, sh *counterShard) {
	for i := range r.lists {
		l := &r.lists[i]
		l.mu.Lock()
		batch := l.pending
		l.pending = nil
		l.mu.Unlock()
		if len(batch) > 0 {
			r.flush(slot, sh, batch)
		}
	}
}

// pressure applies the soft RSS ceiling: when simulated RSS is over
// Config.MaxResidentPages, first drain the deferred-unmap queue (pages
// already promised back to the OS), then — if still over — reclaim the
// resident residue of free pooled stacks, stopping as soon as RSS drops
// under the ceiling. Called before a worker maps fresh stack pages and on
// the suspend path, so sustained pressure degrades throughput gracefully
// instead of growing RSS.
func (r *reclaimer) pressure(slot int, sh *counterShard) {
	if r.ceiling <= 0 || r.rt.as.RSSPages() <= r.ceiling {
		return
	}
	sh.ceilingHits.Add(1)
	r.drainAll(slot, sh)
	if r.rt.as.RSSPages() > r.ceiling {
		calls, pages := r.rt.pool.ReclaimFree(func() bool {
			return r.rt.as.RSSPages() <= r.ceiling
		})
		sh.poolReclaims.Add(calls)
		sh.reclaimedPages.Add(pages)
		r.rt.trc.Emit(slot, trace.KindReclaim, pages, 0)
	}
}

// pendingCount returns the number of live tickets across all lists. Zero
// at quiescence: the end-of-run drain resolves everything.
func (r *reclaimer) pendingCount() int {
	n := 0
	for i := range r.lists {
		l := &r.lists[i]
		l.mu.Lock()
		for _, t := range l.pending {
			t.mu.Lock()
			if !t.done {
				n++
			}
			t.mu.Unlock()
		}
		l.mu.Unlock()
	}
	return n
}
