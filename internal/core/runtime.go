// Package core implements the Fibril work-stealing runtime — the paper's
// primary contribution (SPAA 2016, §4) — together with the baseline
// schedulers it is evaluated against (§3, §5).
//
// # Execution model
//
// The paper's Fibril steals continuations: a thief resumes the parent
// function mid-body on a fresh machine stack, using the x86-64 calling
// convention to keep the original frame addressable. Go forbids that
// mechanism outright (the Go runtime owns goroutine stacks), so this
// implementation performs the equivalent *child-stealing with suspension*
// transformation, keeping the paper's scheduler state machine (Listing 3)
// intact:
//
//   - a runtime "stack" is a (goroutine, simulated page-granular
//     stack.Stack) pair; the goroutine's lifetime is the stack's lifetime;
//   - Fork pushes the child task on the worker slot's deque and the parent
//     keeps running (the child is what thieves steal);
//   - Join first drains the slot's own deque (executing local tasks inline,
//     which is the order work-first Cilk would have executed them in), and
//     if children remain outstanding the parent SUSPENDS: its goroutine
//     records the frame's stack watermark, unmaps the unused pages above it
//     (Listing 3 line 63), hands its worker slot to a replacement thief
//     running on a pool stack (line 93), and parks;
//   - when the LAST child of a suspended frame completes, the finishing
//     worker puts its own stack into the pool, "remaps" the suspended
//     stack, and transfers its worker slot to the parked parent (lines
//     68–75), which resumes on its original stack.
//
// Exactly P worker slots are occupied by runnable goroutines at all times,
// so the busy-leaves property — the basis of the paper's space bounds —
// holds by construction.
//
// # Strategies
//
// The Strategy selects the policy the paper compares (§3, §5): Fibril with
// madvise-based unmap, Fibril without unmap, Cilk Plus (bounded stack pool,
// no unmap), TBB (depth-restricted stealing executed inline on the
// joiner's own stack, which is why TBB needs no suspension and no extra
// stacks but forfeits the time bound), leapfrogging (descendant-restricted
// inline stealing), and a Go-native goroutine-per-task baseline.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"

	"fibril/internal/deque"
	"fibril/internal/stack"
	"fibril/internal/trace"
	"fibril/internal/vm"
)

// Strategy selects the scheduling/stack-management policy.
type Strategy int

const (
	// StrategyFibril is the paper's contribution: suspension with
	// madvise-based unmap of the suspended stack's unused pages.
	StrategyFibril Strategy = iota
	// StrategyFibrilNoUnmap is the paper's ablation: identical scheduling,
	// but suspended stacks keep their pages (unmap is a no-op).
	StrategyFibrilNoUnmap
	// StrategyFibrilMMap is the unmap-via-serialized-mmap ablation from
	// §4.3: unused pages are remapped to a dummy file under the
	// address-space lock and must be remapped anonymous before reuse.
	StrategyFibrilMMap
	// StrategyCilkPlus models Intel Cilk Plus: suspension like Fibril, no
	// unmap, a *bounded* stack pool (thieves refrain from stealing when it
	// is empty), and a heavier spawn path.
	StrategyCilkPlus
	// StrategyTBB models Intel TBB: a blocked join never suspends; the
	// worker steals only tasks strictly deeper than the joining frame and
	// executes them inline on its own stack. Heap-allocated task objects
	// make the spawn path the heaviest of all.
	StrategyTBB
	// StrategyLeapfrog restricts inline stealing further, to descendants
	// of the joining frame (Wagner & Calder's leapfrogging).
	StrategyLeapfrog
	// StrategyGoroutine is the Go-native baseline: every fork is a `go`
	// statement with its own pooled stack, joined by counter.
	StrategyGoroutine
	// StrategyCilkM models Lee et al.'s Cilk-M (§3): thread-local memory
	// mapping moves the stolen stack prefix into the thief's TLMM region,
	// so no suspension-time unmap is needed — but every steal pays a cost
	// linear in the prefix pages. The real runtime schedules it like
	// FibrilNoUnmap (the mapping cost is only modelled in the simulator);
	// the simulator charges the per-steal prefix-mapping latency.
	StrategyCilkM
)

// String returns the strategy's display name as used in the experiments.
func (s Strategy) String() string {
	switch s {
	case StrategyFibril:
		return "fibril"
	case StrategyFibrilNoUnmap:
		return "fibril-nounmap"
	case StrategyFibrilMMap:
		return "fibril-mmap"
	case StrategyCilkPlus:
		return "cilkplus"
	case StrategyTBB:
		return "tbb"
	case StrategyLeapfrog:
		return "leapfrog"
	case StrategyGoroutine:
		return "goroutine"
	case StrategyCilkM:
		return "cilkm"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Strategies lists every implemented strategy, in presentation order.
func Strategies() []Strategy {
	return []Strategy{
		StrategyFibril, StrategyFibrilNoUnmap, StrategyFibrilMMap,
		StrategyCilkPlus, StrategyCilkM, StrategyTBB, StrategyLeapfrog,
		StrategyGoroutine,
	}
}

// suspends reports whether the strategy parks blocked joiners (Fibril
// family and Cilk Plus) rather than stealing inline (TBB, leapfrog).
func (s Strategy) suspends() bool {
	switch s {
	case StrategyTBB, StrategyLeapfrog, StrategyGoroutine:
		return false
	}
	return true
}

// DequeKind selects the work-stealing deque implementation behind each
// worker slot.
type DequeKind int

const (
	// DequeTHE is the Cilk-5 THE protocol deque (lock-free owner fast
	// path, mutex-serialized thieves) — the deque the paper's runtime
	// uses, and the default.
	DequeTHE DequeKind = iota
	// DequeChaseLev is the lock-free Chase–Lev deque: thieves synchronize
	// with a single CAS instead of a mutex, so the steal path scales under
	// thief contention, at the cost of one allocation per Fork (entries
	// are boxed; see deque.ChaseLev).
	DequeChaseLev
	// DequeRelaxed is the Castañeda–Piña fence-free deque with
	// multiplicity: the owner's Push/Pop path performs no atomic
	// read-modify-write and no store-load fence, at the price of a task
	// occasionally being *extracted* twice. The runtime's per-task
	// execution claim (see claimTask) filters duplicates so execution
	// stays exactly-once; discarded duplicates are counted in
	// Stats.DuplicateExtractions and emitted as trace.KindDupSteal.
	DequeRelaxed
)

// String returns the deque kind's display name as used in benchmarks.
func (k DequeKind) String() string {
	switch k {
	case DequeTHE:
		return "the"
	case DequeChaseLev:
		return "chaselev"
	case DequeRelaxed:
		return "relaxed"
	default:
		return fmt.Sprintf("DequeKind(%d)", int(k))
	}
}

// DequeKinds lists every implemented deque kind, in presentation order.
func DequeKinds() []DequeKind {
	return []DequeKind{DequeTHE, DequeChaseLev, DequeRelaxed}
}

// PoolKind selects the stack-pool implementation behind take/put.
type PoolKind int

const (
	// PoolSharded is the default: per-worker lock-free free caches with a
	// global overflow list, so the stack Take/Put fast path costs one
	// atomic swap/CAS instead of a mutex round trip.
	PoolSharded PoolKind = iota
	// PoolGlobal is the single-lock reference pool — the paper's Listing 3
	// verbatim, kept for differential testing and for its strictly exact
	// MaxStacksUsed counter.
	PoolGlobal
)

// String returns the pool kind's display name as used in benchmarks.
func (k PoolKind) String() string {
	switch k {
	case PoolSharded:
		return "sharded"
	case PoolGlobal:
		return "global"
	default:
		return fmt.Sprintf("PoolKind(%d)", int(k))
	}
}

// PoolKinds lists every implemented pool kind, in presentation order.
func PoolKinds() []PoolKind { return []PoolKind{PoolSharded, PoolGlobal} }

// IntakeKind selects the serving-intake implementation behind
// Submit/dispatch — see intake.go and job.go.
type IntakeKind int

const (
	// IntakeSharded is the default: lock-free CAS admission on the
	// quota-free path, per-shard MPSC root lists drained round-robin by
	// thieves, pooled Job objects with lazily allocated wait channels,
	// and wake-one parking. Submit is ≤2 allocations (0 steady-state).
	IntakeSharded IntakeKind = iota
	// IntakeMutex is the single-mutex PR 8 reference intake — one
	// admission mutex, one mutex FIFO, a fresh Job + done channel and an
	// unconditional clock read per Submit, an eager Stats snapshot per
	// completion, and broadcast wakeups — kept for differential testing
	// and as the submitpath experiment's baseline lane.
	IntakeMutex
)

// String returns the intake kind's display name as used in benchmarks.
func (k IntakeKind) String() string {
	switch k {
	case IntakeSharded:
		return "sharded"
	case IntakeMutex:
		return "mutex"
	default:
		return fmt.Sprintf("IntakeKind(%d)", int(k))
	}
}

// IntakeKinds lists every implemented intake kind, in presentation order.
func IntakeKinds() []IntakeKind { return []IntakeKind{IntakeSharded, IntakeMutex} }

// taskDeque abstracts over the deque implementations so every strategy —
// including the restricted-stealing ones, which need StealIf — runs
// unchanged on either. Push, Pop and LazyHint are owner-only; Steal,
// StealIf, StealBatch and Len may be called from any goroutine.
type taskDeque interface {
	Push(task)
	Pop() (task, bool)
	Steal() (task, bool)
	StealIf(func(task) bool) (task, bool)
	StealBatch([]task) int
	Len() int
	LazyHint() bool
}

// newTaskDeque builds one worker slot's deque. recycle enables the
// Chase-Lev owner-side node free list, which is safe only for strategies
// whose thieves never use StealIf (see deque.ChaseLev.EnableRecycling);
// the other kinds ignore it.
func newTaskDeque(k DequeKind, recycle bool) taskDeque {
	switch k {
	case DequeChaseLev:
		d := &deque.ChaseLev[task]{}
		if recycle {
			d.EnableRecycling()
		}
		return d
	case DequeRelaxed:
		return &deque.Relaxed[task]{}
	default:
		return &deque.Deque[task]{}
	}
}

// Config parameterizes a Runtime.
type Config struct {
	// Workers is the number of worker slots P. Defaults to GOMAXPROCS.
	Workers int
	// Strategy selects the scheduling policy. Default StrategyFibril.
	Strategy Strategy
	// Deque selects the work-stealing deque implementation. DequeTHE (the
	// default) matches the paper's runtime; DequeChaseLev makes the steal
	// path lock-free.
	Deque DequeKind
	// StealPolicy selects the thief victim-selection policy. StealRandom
	// (the default) is the paper's uniformly random sweep; the locality
	// policies (StealLastVictim, StealNearVictim, StealHalf) trade its
	// load-balancing guarantees for cache affinity — see StealPolicy.
	StealPolicy StealPolicy
	// StackPages is the size of each simulated stack. Default
	// stack.DefaultStackPages (1 MB of 4 KB pages, as in the paper).
	StackPages int
	// StackLimit bounds the stack pool (Cilk Plus). 0 means the strategy
	// default: unbounded for everything except StrategyCilkPlus, which
	// uses stack.CilkPlusDefaultLimit (2400).
	StackLimit int
	// FrameBytes is the simulated activation-frame size charged for a task
	// whose fork/call site does not specify one. Default 192 bytes.
	FrameBytes int
	// Seed seeds the per-worker steal RNGs. 0 means a fixed default, so
	// runs are reproducible by default.
	Seed uint64
	// Pool selects the stack-pool implementation. PoolSharded (the
	// default) gives Take/Put a lock-free fast path; PoolGlobal is the
	// single-lock reference.
	Pool PoolKind
	// UnmapBatch > 1 turns on coalesced unmap for StrategyFibril: a
	// suspend posts a reclaim ticket instead of madvising eagerly, and
	// tickets are flushed UnmapBatch at a time — unless the frame resumes
	// first, which cancels the ticket and saves both the madvise and the
	// refaults. 0 or 1 keeps the paper's eager per-suspend unmap exactly.
	UnmapBatch int
	// MaxResidentPages > 0 is a soft ceiling on simulated RSS: a worker
	// about to map fresh stack pages (or suspending) while over the
	// ceiling first drains the deferred-unmap queue, then reclaims the
	// resident residue of free pooled stacks. 0 disables the ceiling.
	MaxResidentPages int64
	// MaxInflight > 0 bounds the number of admitted-but-incomplete Jobs a
	// serving runtime carries at once; Submit calls beyond it queue or
	// shed per Admission. 0 means unlimited.
	MaxInflight int
	// Admission selects the overload posture when a Submit does not fit
	// MaxInflight or a tenant quota: AdmitQueue (default) parks it in an
	// admission queue, AdmitShed rejects it with ErrShed.
	Admission AdmissionPolicy
	// Intake selects the serving-intake implementation. IntakeSharded
	// (the default) gives Submit a lock-free, allocation-light fast path;
	// IntakeMutex is the single-mutex reference kept for differential
	// testing and benchmarking.
	Intake IntakeKind
	// TenantQuotaPages > 0 gives every tenant a budget of simulated stack
	// pages, layered under MaxResidentPages: each inflight Job reserves
	// StackPages (one worker stack's worth) against its tenant's budget at
	// admission, so one tenant's burst queues or sheds before it can crowd
	// the shared page ceiling. 0 disables per-tenant quotas.
	TenantQuotaPages int64
	// Sink, when non-nil, receives the scheduler event stream (forks,
	// steals, suspensions, resumptions, unmaps, reclaims, job lifecycle)
	// through per-worker ring buffers: a trace.Recorder for post-mortem
	// inspection, a trace.ChromeSink for Perfetto-loadable streaming, a
	// trace.MetricsSink for live histograms, or any custom Sink. A nil
	// sink costs one pointer test per event site.
	Sink trace.Sink
	// Tracer is the legacy buffered-recorder knob from the pre-Sink API,
	// kept so existing callers work unchanged: when Sink is nil and Tracer
	// is not, the recorder is attached as the sink.
	//
	// Deprecated: set Sink (a *trace.Recorder is a Sink).
	Tracer *trace.Recorder
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.StackPages <= 0 {
		c.StackPages = stack.DefaultStackPages
	}
	if c.StackLimit <= 0 {
		if c.Strategy == StrategyCilkPlus {
			c.StackLimit = stack.CilkPlusDefaultLimit
		} else {
			c.StackLimit = 0
		}
	}
	if c.FrameBytes <= 0 {
		c.FrameBytes = 192
	}
	if c.UnmapBatch < 0 {
		c.UnmapBatch = 0
	}
	if c.Seed == 0 {
		c.Seed = 0x9E3779B97F4A7C15
	}
	return c
}

// worker is one worker slot: Listing 3's worker_t, a (deque, stack) pair.
// The stack half lives on the goroutine currently occupying the slot (see
// package comment); the slot itself carries the deque, the steal RNG, and
// the slot's victim-locality hints. Only the occupying goroutine touches
// rng, lastVictim and victimMisses.
type worker struct {
	id           int
	deque        taskDeque
	rng          rng
	lastVictim   int // most recent successful victim slot; -1 when none
	victimMisses int // consecutive failed sweeps since the last success

	// arena is the slot's Blelloch–Wei-style free list of fixed-size
	// Scratch blocks (frame + fork payload); the local half is touched
	// only by the goroutine currently occupying the slot (no atomics), the
	// remote half is an MPSC hand-back list any worker may push to.
	arena frameArena
}

// task is a forked child waiting in a deque. A child is either a closure
// (fn) or a code-pointer/argument pair (argfn, arg) — the latter is the
// zero-allocation fork representation: both words are plain pointers that
// travel through the deque by value, so nothing escapes per fork.
type task struct {
	fn    func(*W)
	argfn func(*W, unsafe.Pointer)
	arg   unsafe.Pointer
	frame *Frame // parent frame to notify on completion; nil for a root
	job   *Job   // the submitted Job this task is the root of (roots only)
	bytes int32  // simulated activation-frame size
	depth int32  // invocation-tree depth of the child
	heavy *tbbTask
	// claim is the execution claim stamped by the relaxed deque at
	// publication: the relaxed protocol may hand the same task out more
	// than once, and the first claimTask winner executes it. It lives in
	// the deque's per-publication node — never in a recycled Scratch
	// block — so a recycled payload can never masquerade as a fresh
	// claim. nil (THE, Chase-Lev, unpublished relaxed tasks) means the
	// extraction is already unique.
	claim *deque.Claim
}

// WithClaim satisfies deque.Stampable: the relaxed deque stamps its
// per-publication claim into the copy of the task it publishes.
func (t task) WithClaim(c *deque.Claim) task {
	t.claim = c
	return t
}

// tbbTask models TBB's heap-allocated task object with its reference count;
// allocating and touching one per spawn is what makes the TBB baseline's
// fork path expensive (Figure 3).
type tbbTask struct {
	refcount atomic.Int32
	parent   *Frame
	depth    int32
	_        [4]int64 // payload padding to a realistic object size
}

// Runtime is one parallel execution context.
type Runtime struct {
	cfg     Config
	as      *vm.AddressSpace
	pool    stack.Pooler
	reclaim *reclaimer

	// trc fans scheduler events into the configured sink through
	// per-worker rings; nil when observability is disabled. metrics is
	// the attached sink downcast to *trace.MetricsSink (nil otherwise),
	// so Snapshot can fold its histograms in.
	trc     *trace.Tracer
	metrics *trace.MetricsSink

	workers []*worker
	done    atomic.Bool
	park    *parkLot

	// loose is the overflow queue for StealHalf loot — batch-stolen tasks
	// awaiting a worker; see looseQueue.
	loose looseQueue

	goroutineWG sync.WaitGroup // live worker goroutines (for Wait)

	// Serving lifecycle (job.go, intake.go): admission control + the
	// intake of admitted roots awaiting a worker, plus runtime-wide job
	// counters. The counters are plain atomics rather than shard members
	// because submission is per-request, never per-fork, work — and the
	// request path's serialization points are the counters' single cache
	// lines, not locks. fastIntake caches Intake == IntakeSharded for the
	// submit/complete hot paths; stampJobs caches whether any sink
	// consumes KindJobDone, gating the per-job clock reads.
	admit         admitState
	subq          rootIntake
	fastIntake    bool
	stampJobs     bool
	jobsSubmitted atomic.Int64
	jobsAdmitted  atomic.Int64
	jobsShed      atomic.Int64
	jobsDrained   atomic.Int64
	jobsCompleted atomic.Int64
	jobSeq        atomic.Int64

	// stats holds one counter shard per worker slot plus a spare shard for
	// slotless workers; see counterShard for the de-contention rationale.
	stats []counterShard
}

// NewRuntime creates a runtime with the given configuration. The runtime
// owns a fresh simulated address space and stack pool.
func NewRuntime(cfg Config) *Runtime {
	cfg = cfg.withDefaults()
	as := vm.NewAddressSpace()
	var pool stack.Pooler
	if cfg.Pool == PoolGlobal {
		pool = stack.NewPool(as, cfg.StackPages, cfg.StackLimit)
	} else {
		pool = stack.NewShardedPool(as, cfg.StackPages, cfg.StackLimit, cfg.Workers)
	}
	sink := cfg.Sink
	if sink == nil && cfg.Tracer != nil {
		sink = cfg.Tracer
	}
	rt := &Runtime{
		cfg:  cfg,
		as:   as,
		pool: pool,
		park: newParkLot(),
		trc:  trace.NewTracer(sink, cfg.Workers),
	}
	if ms, ok := sink.(*trace.MetricsSink); ok {
		rt.metrics = ms
	}
	rt.reclaim = newReclaimer(rt)
	rt.admit.max = cfg.MaxInflight
	rt.admit.policy = cfg.Admission
	rt.admit.quota = cfg.TenantQuotaPages
	rt.admit.reserve = int64(cfg.StackPages)
	rt.fastIntake = cfg.Intake == IntakeSharded
	rt.stampJobs = rt.trc.Wants(trace.KindJobDone)
	if rt.fastIntake {
		rt.subq = newShardedIntake(cfg.Workers)
	} else {
		rt.subq = &mutexIntake{}
	}
	rt.workers = make([]*worker, cfg.Workers)
	for i := range rt.workers {
		rt.workers[i] = &worker{
			id:         i,
			deque:      newTaskDeque(cfg.Deque, cfg.Strategy.suspends()),
			rng:        newRNG(cfg.Seed + uint64(i)*0x1234567),
			lastVictim: -1,
		}
	}
	rt.stats = make([]counterShard, cfg.Workers+1)
	return rt
}

// Config returns the effective (defaulted) configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

// newW builds a worker context with the hot Config fields cached on it, so
// the fork fast path reads no runtime state beyond the W itself: the
// default frame size, the strategy (plus whether its fork path needs the
// slow prologue), and whether any sink consumes fork events. The tracer's
// want-mask and the configuration are both fixed for the runtime's
// lifetime, so caching at W creation is sound. slot is nil for slotless
// (goroutine-baseline) workers.
func (rt *Runtime) newW(slot *worker, st *stack.Stack, sh *counterShard) *W {
	return &W{
		rt:         rt,
		slot:       slot,
		stack:      st,
		stats:      sh,
		frameBytes: rt.cfg.FrameBytes,
		strategy:   rt.cfg.Strategy,
		slowFork: rt.cfg.Strategy == StrategyCilkPlus ||
			rt.cfg.Strategy == StrategyTBB ||
			rt.cfg.Strategy == StrategyGoroutine,
		wantsFork: rt.trc.Wants(trace.KindFork),
	}
}

// AddressSpace exposes the simulated address space for inspection.
func (rt *Runtime) AddressSpace() *vm.AddressSpace { return rt.as }

// Run executes root to completion and returns the runtime's accumulated
// statistics — the one-shot batch entry point, now a thin wrapper over the
// serving lifecycle: Start (if the runtime is idle) + Submit + Wait +
// Close, one code path with Submit. Run may be called repeatedly; counters
// accumulate across calls on the same Runtime. Called on a runtime the
// caller already Started, Run leaves the workers up (it only Closes what
// it Started). A panic that escaped the root is re-raised as a *TaskPanic
// after the orderly shutdown, exactly as before the Submit redesign.
func (rt *Runtime) Run(root func(*W)) Stats {
	stats, err := rt.RunErr(root)
	if err != nil {
		var tp *TaskPanic
		if errors.As(err, &tp) {
			panic(tp) // the root task panicked: surface it from Run
		}
		panic(err) // shed/drained: Run's caller raced admission or Close
	}
	return stats
}

// RunErr executes root like Run but returns a panic that escaped the root
// task as an error instead of re-panicking — for callers that treat a
// failed computation as a value. For the long-lived-server shape — many
// concurrent computations on one worker pool, each failing independently —
// use Start/Submit and check Job.Err per submission; RunErr is the
// single-root convenience over exactly that path. The returned error is
// the *TaskPanic Run would have thrown (errors.As-compatible with the
// panic value it wraps); the accompanying Stats snapshot is valid either
// way, taken after the run's orderly shutdown. Panics from the runtime
// itself (stack overflow, pool misuse) still propagate out of the worker
// machinery.
func (rt *Runtime) RunErr(root func(*W)) (Stats, error) {
	started := rt.ensureStarted()
	j := rt.Submit(root)
	j.Wait()
	if started {
		rt.Close(context.Background())
	}
	return rt.Stats(), j.Err()
}

// Thief backoff ladder: a thief that fails a full sweep retries
// immediately for spinSweeps sweeps (a miss is often a transient race),
// yields the processor for the next yieldSweeps sweeps, and then parks on
// the runtime's park lot until the next Fork publishes work.
const (
	spinSweeps  = 2
	yieldSweeps = 8
)

// thiefLoop is the body of a worker-slot goroutine that starts with no
// work: take a stack from the pool (blocking if the pool is bounded and
// exhausted — the Cilk Plus stall), then steal until the runtime closes
// or the slot is handed to a resumed parent. A sweep looks for stolen
// work first and for a submitted root only when the whole steal sweep
// fails, so new roots open only on genuinely idle capacity. Failed sweeps
// escalate through the backoff ladder instead of spinning in Gosched, so
// idle thieves stop burning CPU while work is scarce — a serving runtime
// between requests is P parked goroutines.
func (rt *Runtime) thiefLoop(slot *worker) {
	defer rt.goroutineWG.Done()
	st := rt.takeStack(slot.id)
	if st == nil {
		return // pool closed: the computation is over
	}
	w := rt.newW(slot, st, rt.shard(slot.id))
	sweep := func() (task, bool) {
		if t, ok := rt.steal(w, nil); ok {
			return t, true
		}
		return rt.nextRoot(slot.id)
	}
	fails := 0
	for !rt.done.Load() {
		t, ok := sweep()
		if !ok {
			fails++
			switch {
			case fails <= spinSweeps:
				// Re-sweep immediately.
			case fails <= spinSweeps+yieldSweeps:
				runtime.Gosched()
			default:
				// park re-sweeps after registering as parked, so a Fork
				// or Submit racing this sleep either is seen by that
				// sweep or sees the registration and broadcasts (no
				// lost wakeup — see parkLot).
				t, ok = rt.park.park(sweep)
				fails = 0
			}
			if !ok {
				continue
			}
		}
		fails = 0
		w.runStolen(t)
		if w.released {
			// The slot was transferred to a resumed parent; this
			// goroutine's stack goes back to the pool and it exits —
			// put_stack_into_pool (Listing 3 line 71).
			rt.pool.Put(slot.id, w.stack)
			return
		}
	}
	rt.pool.Put(slot.id, w.stack)
}

// takeStack takes a stack from the pool for the given worker slot,
// applying the RSS-ceiling pressure valve first so that — when over the
// ceiling — already-promised pages are reclaimed before fresh ones are
// mapped. Returns nil when the pool has been closed; a map failure in the
// simulated address space is a programming error and panics.
func (rt *Runtime) takeStack(slot int) *stack.Stack {
	rt.reclaim.pressure(slot, rt.shard(slot))
	s, err := rt.pool.Take(slot)
	if err != nil {
		panic(fmt.Sprintf("core: %v", err))
	}
	return s
}
