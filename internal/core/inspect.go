package core

import "fibril/internal/stack"

// Quiescence introspection for the conformance harness (internal/check).
// These accessors read state that is only stable when the runtime is idle —
// between Run calls — which is exactly when the harness's oracles fire:
// after a Run returns, every thief goroutine has unwound, every stack is
// back in the pool, and the busy-leaves property demands that no work was
// left behind.

// QueuedTasks returns the total number of tasks sitting in the worker
// deques plus the StealHalf overflow queue. After a completed Run this
// must be zero: a leftover task is a fork that was never executed, a
// direct violation of the exactly-once guarantee (and of busy-leaves —
// the run ended while work existed).
func (rt *Runtime) QueuedTasks() int {
	n := rt.loose.len()
	for _, w := range rt.workers {
		n += w.deque.Len()
		// The relaxed deque's Len covers only its published window; tasks
		// still private to the owner count too — at quiescence both must
		// be empty.
		if u, ok := w.deque.(interface{ Unpublished() int }); ok {
			n += u.Unpublished()
		}
	}
	return n
}

// RemoteFreeBacklog returns the number of Scratch blocks parked on the
// slots' remote-free lists (exact only at quiescence, when no drain races
// the walk). At quiescence it must equal Stats.RemoteFrees -
// Stats.RemoteDrains: a hand-back is either adopted by a later drain or
// still on a list — never lost.
func (rt *Runtime) RemoteFreeBacklog() int {
	n := 0
	for _, w := range rt.workers {
		for s := w.arena.remote.Load(); s != nil; s = s.next {
			n++
		}
	}
	return n
}

// ParkedThieves returns how many thief goroutines are parked on the
// runtime's park lot (racy snapshot; exact at quiescence). After a
// completed Run this must be zero — Run closes the lot and waits for every
// thief to unwind.
func (rt *Runtime) ParkedThieves() int { return rt.park.parked() }

// PendingReclaims returns the number of live deferred-unmap tickets still
// sitting on the reclaim lists. After a completed Run this must be zero:
// every suspension's ticket was either cancelled by its resume or flushed
// by a batch (the end-of-run drain resolves any stragglers).
func (rt *Runtime) PendingReclaims() int { return rt.reclaim.pendingCount() }

// MaxStackHighWaterPages returns the largest page high-water mark over the
// stacks currently in the runtime's pool. At quiescence every stack the
// runtime ever used is in the pool (suspended and active goroutines have
// all retired), so this is the per-linear-stack space high-water of the
// whole run — the quantity the paper's S1-based bounds constrain.
func (rt *Runtime) MaxStackHighWaterPages() int {
	max := 0
	rt.pool.ForEachFree(func(s *stack.Stack) {
		if h := s.HighWaterPages(); h > max {
			max = h
		}
	})
	return max
}
