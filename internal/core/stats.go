package core

import (
	"fmt"
	"sync/atomic"

	"fibril/internal/vm"
)

// runtimeCounters are the live atomic counters of a Runtime.
type runtimeCounters struct {
	forks            atomic.Int64
	calls            atomic.Int64
	steals           atomic.Int64
	stealAttempts    atomic.Int64
	restrictedSteals atomic.Int64
	suspends         atomic.Int64
	resumes          atomic.Int64
	unmaps           atomic.Int64
	unmappedPages    atomic.Int64
	spawnOverhead    atomic.Int64
}

// Stats is a snapshot of a Runtime's scheduler and memory counters — the
// raw material of the paper's Tables 2–4.
type Stats struct {
	Strategy Strategy
	Workers  int

	Forks            int64 // fibril_fork executions
	Calls            int64 // synchronous Call executions
	Steals           int64 // successful steals (Table 2 "steals")
	StealAttempts    int64 // steal probes, successful or not
	RestrictedSteals int64 // inline steals by TBB/leapfrog joins
	Suspends         int64 // frame suspensions
	Resumes          int64 // frame resumptions
	Unmaps           int64 // unmap operations (Table 2 "unmaps")
	UnmappedPages    int64 // physical pages returned by those unmaps

	StacksCreated int   // stacks ever mapped (Table 4 "# of stacks")
	MaxStacksUsed int   // stacks simultaneously checked out
	PoolStalls    int64 // thieves that waited on a bounded pool (Cilk Plus)

	VM vm.Stats // page faults, RSS, mmap/madvise counters (Tables 2 and 4)
}

// Stats snapshots the runtime's counters.
func (rt *Runtime) Stats() Stats {
	return Stats{
		Strategy:         rt.cfg.Strategy,
		Workers:          rt.cfg.Workers,
		Forks:            rt.stats.forks.Load(),
		Calls:            rt.stats.calls.Load(),
		Steals:           rt.stats.steals.Load(),
		StealAttempts:    rt.stats.stealAttempts.Load(),
		RestrictedSteals: rt.stats.restrictedSteals.Load(),
		Suspends:         rt.stats.suspends.Load(),
		Resumes:          rt.stats.resumes.Load(),
		Unmaps:           rt.stats.unmaps.Load(),
		UnmappedPages:    rt.stats.unmappedPages.Load(),
		StacksCreated:    rt.pool.Created(),
		MaxStacksUsed:    rt.pool.MaxInUse(),
		PoolStalls:       rt.pool.Stalls(),
		VM:               rt.as.Snapshot(),
	}
}

// String renders a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf(
		"%s P=%d forks=%d steals=%d suspends=%d unmaps=%d stacks=%d faults=%d maxRSS=%dMB",
		s.Strategy, s.Workers, s.Forks, s.Steals, s.Suspends, s.Unmaps,
		s.StacksCreated, s.VM.PageFaults, s.VM.MaxRSSPages*vm.PageSize/(1<<20))
}
