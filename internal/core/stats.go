package core

import (
	"fmt"
	"sync/atomic"

	"fibril/internal/vm"
)

// counterShard holds one worker slot's scheduler counters. The runtime
// keeps one shard per slot (plus a spare for slotless goroutine-baseline
// workers), so the fork/steal hot paths increment an uncontended counter
// instead of ping-ponging a shared cache line across P cores; Stats
// aggregates the shards. Each shard is padded to 256 bytes — cache-line
// multiples covering the adjacent-line prefetcher — so neighbouring slots
// never false-share.
type counterShard struct {
	forks            atomic.Int64
	calls            atomic.Int64
	steals           atomic.Int64
	stealAttempts    atomic.Int64
	restrictedSteals atomic.Int64
	suspends         atomic.Int64
	resumes          atomic.Int64
	unmaps           atomic.Int64
	unmappedPages    atomic.Int64
	spawnOverhead    atomic.Int64
	unmapBatches     atomic.Int64
	reclaimCancels   atomic.Int64
	reclaimSkips     atomic.Int64
	ceilingHits      atomic.Int64
	reclaimedPages   atomic.Int64
	poolReclaims     atomic.Int64
	dupExtractions   atomic.Int64
	arenaAcquires    atomic.Int64
	arenaReleases    atomic.Int64
	remoteFrees      atomic.Int64
	remoteDrains     atomic.Int64
	arenaDrops       atomic.Int64
	_                [10]int64 // pad 22 words up to 256 bytes
}

// shard returns the counter shard for worker slot id; id -1 (slotless
// goroutine-baseline workers) maps to the shared spare shard.
func (rt *Runtime) shard(id int) *counterShard {
	if id < 0 {
		id = len(rt.stats) - 1
	}
	return &rt.stats[id]
}

// Stats is a snapshot of a Runtime's scheduler and memory counters — the
// raw material of the paper's Tables 2–4.
type Stats struct {
	Strategy Strategy
	Workers  int

	Forks  int64 // fibril_fork executions
	Calls  int64 // synchronous Call executions
	Steals int64 // successful steals (Table 2 "steals")
	// DuplicateExtractions counts tasks extracted a second (or later) time
	// from a relaxed deque and discarded by the execution claim. Always
	// zero for the linearizable deque kinds (THE, Chase-Lev) and at P=1;
	// under DequeRelaxed it is the price of the fence-free owner path, and
	// each one is also emitted as a trace.KindDupSteal event.
	DuplicateExtractions int64
	StealAttempts        int64 // steal probes of a visibly non-empty deque
	RestrictedSteals     int64 // inline steals by TBB/leapfrog joins
	Suspends             int64 // frame suspensions
	Resumes              int64 // frame resumptions
	Unmaps               int64 // unmap operations (Table 2 "unmaps")
	UnmappedPages        int64 // physical pages returned by those unmaps
	SpawnOverhead        int64 // modelled spawn-prologue events (Cilk Plus, TBB)

	// Memory-pressure engine counters (coalesced unmap + RSS ceiling).
	// Every suspend resolves exactly one way, so in coalesced mode
	// Suspends == Unmaps + ReclaimCancels + ReclaimSkips; with eager
	// unmap the three new counters stay zero and Unmaps == Suspends.
	UnmapBatches   int64 // batch flushes that issued at least one madvise
	ReclaimCancels int64 // deferred unmaps cancelled by the frame resuming
	ReclaimSkips   int64 // suspends skipped by the hysteresis gate
	CeilingHits    int64 // RSS-ceiling crossings observed by workers
	ReclaimedPages int64 // pages reclaimed from free pooled stacks
	PoolReclaims   int64 // madvise calls issued by those pool reclaims

	// Scratch-arena counters (the zero-allocation fork path). At
	// quiescence RemoteFrees - RemoteDrains equals the blocks parked on
	// remote-free lists (Runtime.RemoteFreeBacklog), and for a program
	// whose acquire/release pairs all ran (no panic unwinds skipping
	// release sites) ArenaAcquires == ArenaReleases.
	ArenaAcquires int64 // AcquireScratch calls (any source)
	ArenaReleases int64 // ReleaseScratch calls (any destination)
	RemoteFrees   int64 // releases handed back via a remote-free list
	RemoteDrains  int64 // blocks adopted from a remote-free list
	ArenaDrops    int64 // releases dropped to the GC (both hoards full)

	// Job-submission counters (the Start/Submit serving lifecycle; Run
	// counts too — it is one Submit). Every submitted Job resolves exactly
	// one way, so at quiescence
	// JobsSubmitted == JobsShed + JobsDrained + JobsCompleted and
	// JobsAdmitted == JobsCompleted (admitted jobs always run, even under
	// a forced drain; only never-admitted queue entries can be drained).
	JobsSubmitted int64 // Submit calls
	JobsAdmitted  int64 // jobs handed to the scheduler
	JobsShed      int64 // jobs rejected at admission (AdmitShed or closing)
	JobsDrained   int64 // queued jobs abandoned by a forced Close
	JobsCompleted int64 // admitted jobs that ran to completion

	StacksCreated int   // stacks ever mapped (Table 4 "# of stacks")
	MaxStacksUsed int   // stacks simultaneously checked out
	PoolStalls    int64 // thieves that waited on a bounded pool (Cilk Plus)

	VM vm.Stats // page faults, RSS, mmap/madvise counters (Tables 2 and 4)
}

// Stats snapshots the runtime's counters, aggregating the per-slot shards.
func (rt *Runtime) Stats() Stats {
	s := Stats{
		Strategy:      rt.cfg.Strategy,
		Workers:       rt.cfg.Workers,
		JobsSubmitted: rt.jobsSubmitted.Load(),
		JobsAdmitted:  rt.jobsAdmitted.Load(),
		JobsShed:      rt.jobsShed.Load(),
		JobsDrained:   rt.jobsDrained.Load(),
		JobsCompleted: rt.jobsCompleted.Load(),
		StacksCreated: rt.pool.Created(),
		MaxStacksUsed: rt.pool.MaxInUse(),
		PoolStalls:    rt.pool.Stalls(),
		VM:            rt.as.Snapshot(),
	}
	for i := range rt.stats {
		sh := &rt.stats[i]
		s.Forks += sh.forks.Load()
		s.Calls += sh.calls.Load()
		s.Steals += sh.steals.Load()
		s.StealAttempts += sh.stealAttempts.Load()
		s.RestrictedSteals += sh.restrictedSteals.Load()
		s.Suspends += sh.suspends.Load()
		s.Resumes += sh.resumes.Load()
		s.Unmaps += sh.unmaps.Load()
		s.UnmappedPages += sh.unmappedPages.Load()
		s.SpawnOverhead += sh.spawnOverhead.Load()
		s.UnmapBatches += sh.unmapBatches.Load()
		s.ReclaimCancels += sh.reclaimCancels.Load()
		s.ReclaimSkips += sh.reclaimSkips.Load()
		s.CeilingHits += sh.ceilingHits.Load()
		s.ReclaimedPages += sh.reclaimedPages.Load()
		s.PoolReclaims += sh.poolReclaims.Load()
		s.DuplicateExtractions += sh.dupExtractions.Load()
		s.ArenaAcquires += sh.arenaAcquires.Load()
		s.ArenaReleases += sh.arenaReleases.Load()
		s.RemoteFrees += sh.remoteFrees.Load()
		s.RemoteDrains += sh.remoteDrains.Load()
		s.ArenaDrops += sh.arenaDrops.Load()
	}
	return s
}

// String renders a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf(
		"%s P=%d forks=%d steals=%d suspends=%d unmaps=%d stacks=%d faults=%d maxRSS=%dMB",
		s.Strategy, s.Workers, s.Forks, s.Steals, s.Suspends, s.Unmaps,
		s.StacksCreated, s.VM.PageFaults, s.VM.MaxRSSPages*vm.PageSize/(1<<20))
}
