package core

// rng is a per-worker xorshift64* generator for victim selection. Each
// worker slot owns one, so randomized stealing never contends on a shared
// RNG. The slot's occupant goroutine is the only user at any time.
type rng struct{ state uint64 }

func newRNG(seed uint64) rng {
	if seed == 0 {
		seed = 0x853C49E6748FEA9B
	}
	return rng{state: seed}
}

func (r *rng) next() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}
