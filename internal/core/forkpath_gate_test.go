package core

import (
	"runtime"
	"testing"
	"unsafe"
)

// This file is the steal-heavy zero-allocation gate for the ForkArg fork
// path: at P=4, with thieves constantly raiding the arena-backed fib
// workload, a warm runtime must stay at (amortized) zero heap allocations
// per fork for every deque kind. Before the remote-free lists, heavy
// stealing systematically acquired Scratch blocks on one slot and released
// them on another, overflowing the releaser's hoard and starving the
// acquirer into the heap — this gate is the regression fence for that.

// gateCtx is the argument record of one gate-fib child; two of them plus
// the join frame fit in a single arena block.
type gateCtx struct {
	n   int
	res int64
}

const _ = uint(ScratchBytes - unsafe.Sizeof([2]gateCtx{}))

const gateFrameBytes = 128

// gateTask is the package-level trampoline carried by the fork: a static
// code pointer plus a *gateCtx, no closure.
func gateTask(w *W, p unsafe.Pointer) {
	c := (*gateCtx)(p)
	c.res = gateFib(w, c.n)
}

// gateFib is parfib on the ForkArg fast path: frame and both argument
// records live in one Scratch block (mirroring the bench package's fib).
func gateFib(w *W, n int) int64 {
	if n < 2 {
		return int64(n)
	}
	s := w.AcquireScratch()
	pay := (*[2]gateCtx)(s.Ptr())
	pay[0].n = n - 1
	pay[1].n = n - 2
	fr := s.Frame()
	w.Init(fr)
	w.ForkArgSized(fr, gateFrameBytes, gateTask, unsafe.Pointer(&pay[0]))
	w.CallArgSized(gateFrameBytes, gateTask, unsafe.Pointer(&pay[1]))
	w.Join(fr)
	res := pay[0].res + pay[1].res
	w.ReleaseScratch(s)
	return res
}

// TestForkPathGate asserts the steal-heavy zero-allocation contract: after
// a warm-up run, a P=4 gate-fib run performs strictly fewer heap
// allocations than forks (0 allocs/op amortized) on every deque kind, and
// stays under a per-kind budget that charges a constant per steal (thief
// goroutine + stack machinery) plus a small warm-path base:
//
//   - THE: nothing on the fork path allocates — 64 base + 32/steal.
//   - Chase-Lev: thieves permanently consume boxed nodes; the owner's
//     recycling free list caps the steady-state cost at roughly one node
//     per steal — 256 base + 48/steal.
//   - Relaxed: published nodes are never recycled, but the publication
//     backoff bounds steady-state stray boxing to ~1 per relWasteDecay
//     pushes — 256 base + 48/steal + forks/128.
//
// StealHalf runs the same budgets: loot batching must not add per-fork
// allocations (the loot buffer is stack-allocated; the loose queue's
// backing array amortizes into the per-steal constant).
func TestForkPathGate(t *testing.T) {
	const n = 24
	want := fibSerial(n)
	// On a 1-CPU host the thief goroutines barely get scheduled and the
	// gate degenerates to a steal-free run; oversubscribe the Go scheduler
	// so the P=4 workers genuinely interleave and steal.
	if runtime.GOMAXPROCS(0) < 4 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	}
	for _, dk := range DequeKinds() {
		for _, pol := range []StealPolicy{StealRandom, StealHalf} {
			t.Run(dk.String()+"/"+pol.String(), func(t *testing.T) {
				rt := NewRuntime(Config{Workers: 4, Deque: dk, StealPolicy: pol})
				var out int64
				rt.Run(func(w *W) { out = gateFib(w, n) }) // warm arenas, stacks, thieves
				st0 := rt.Stats()
				runtime.GC()
				var m0, m1 runtime.MemStats
				runtime.ReadMemStats(&m0)
				rt.Run(func(w *W) { out = gateFib(w, n) })
				runtime.ReadMemStats(&m1)
				st1 := rt.Stats()
				if out != want {
					t.Fatalf("gateFib(%d) = %d, want %d", n, out, want)
				}
				ops := st1.Forks - st0.Forks
				steals := st1.Steals - st0.Steals
				got := int64(m1.Mallocs - m0.Mallocs)
				var budget int64
				switch dk {
				case DequeTHE:
					budget = 64 + 32*steals
				case DequeChaseLev:
					budget = 256 + 48*steals
				default: // DequeRelaxed
					budget = 256 + 48*steals + ops/128
				}
				t.Logf("%s/%s: %d allocs over %d forks (%d steals), budget %d",
					dk, pol, got, ops, steals, budget)
				if got >= ops {
					t.Errorf("%d allocs >= %d forks: fork path is allocating per op", got, ops)
				}
				if got > budget {
					t.Errorf("%d allocs > budget %d (%d steals)", got, budget, steals)
				}
			})
		}
	}
}

// TestScratchRecyclingUnderStealing asserts the arena's conservation laws
// under real concurrent stealing: acquires and releases balance, remote
// hand-backs are all adopted or still parked, and the hoards (local +
// remote-free) absorb enough of the acquire-here/release-there traffic
// that drops to the GC stay a small fraction of the release flow.
func TestScratchRecyclingUnderStealing(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 4 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	}
	rt := NewRuntime(Config{Workers: 4})
	var out int64
	rt.Run(func(w *W) { out = gateFib(w, 24) })
	rt.Run(func(w *W) { out = gateFib(w, 24) })
	st := rt.Stats()
	if want := fibSerial(24); out != want {
		t.Fatalf("gateFib(24) = %d, want %d", out, want)
	}
	if st.ArenaAcquires == 0 {
		t.Fatal("gate workload performed no arena acquires")
	}
	if st.ArenaAcquires != st.ArenaReleases {
		t.Errorf("ArenaAcquires=%d != ArenaReleases=%d", st.ArenaAcquires, st.ArenaReleases)
	}
	if st.RemoteDrains > st.RemoteFrees {
		t.Errorf("RemoteDrains=%d > RemoteFrees=%d", st.RemoteDrains, st.RemoteFrees)
	}
	if got, backlog := st.RemoteFrees-st.RemoteDrains, int64(rt.RemoteFreeBacklog()); got != backlog {
		t.Errorf("RemoteFrees-RemoteDrains=%d != RemoteFreeBacklog=%d", got, backlog)
	}
	if st.ArenaDrops > st.ArenaReleases/4 {
		t.Errorf("ArenaDrops=%d > releases/4 (%d): hoards are not absorbing steal traffic",
			st.ArenaDrops, st.ArenaReleases/4)
	}
	t.Logf("acquires=%d releases=%d remoteFrees=%d remoteDrains=%d drops=%d",
		st.ArenaAcquires, st.ArenaReleases, st.RemoteFrees, st.RemoteDrains, st.ArenaDrops)
}

// TestArenaRemoteFreePaths drives every ReleaseScratch disposition
// deterministically from a single worker (a full local hoard sheds to the
// block's home remote list, a full remote list drops to the GC, and a
// local miss drains the remote list wholesale), checking the exact counter
// values the conservation oracles reason about. A slot's own blocks
// recirculate through its own remote list when the hoard is full, so no
// cross-slot scheduling is needed to reach the remote paths.
func TestArenaRemoteFreePaths(t *testing.T) {
	const total = arenaHoardCap + remoteHoardCap + 2
	rt := NewRuntime(Config{Workers: 2})
	rt.Run(func(w *W) {
		blocks := make([]*Scratch, total)
		for round := 0; round < 2; round++ {
			for i := range blocks {
				blocks[i] = w.AcquireScratch()
			}
			for _, s := range blocks {
				w.ReleaseScratch(s)
			}
		}
	})
	st := rt.Stats()
	// Per round: arenaHoardCap releases adopt locally, remoteHoardCap go
	// remote, 2 drop. Round 2's acquires drain round 1's remote list.
	if want := int64(2 * total); st.ArenaAcquires != want || st.ArenaReleases != want {
		t.Errorf("acquires=%d releases=%d, want both %d", st.ArenaAcquires, st.ArenaReleases, want)
	}
	if want := int64(2 * remoteHoardCap); st.RemoteFrees != want {
		t.Errorf("RemoteFrees=%d, want %d", st.RemoteFrees, want)
	}
	if want := int64(remoteHoardCap); st.RemoteDrains != want {
		t.Errorf("RemoteDrains=%d, want %d", st.RemoteDrains, want)
	}
	if want := int64(4); st.ArenaDrops != want {
		t.Errorf("ArenaDrops=%d, want %d", st.ArenaDrops, want)
	}
	if got, want := rt.RemoteFreeBacklog(), remoteHoardCap; got != want {
		t.Errorf("RemoteFreeBacklog=%d, want %d", got, want)
	}
}
