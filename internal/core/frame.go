package core

import (
	"sync"
	"sync/atomic"
	"time"

	"fibril/internal/stack"
	"fibril/internal/trace"
)

// Frame is the analogue of the paper's fibril_t (Listing 2): it
// synchronizes the child tasks forked on it and holds the execution state
// needed to resume its owner after a suspension. Declare one per fork-join
// region, initialize it with W.Init, fork children with W.Fork, and wait
// with W.Join — the same protocol as fibril_init / fibril_fork /
// fibril_join. A Frame may be reused for several fork...join phases, but
// never concurrently.
//
// The zero Frame is not ready; W.Init must run before the first Fork, just
// as fibril_init must precede the first fibril_fork.
type Frame struct {
	// count is the number of pending child tasks, with the owner's
	// suspension state folded into bit 30 (frameSuspended). The paper's
	// count fills the same role with work-first bookkeeping (incremented on
	// first steal); with child stealing the low bits are simply forks minus
	// completions. Folding the flag into the same word makes the last
	// child's decrement atomically reveal whether it must resume a parked
	// owner — and, crucially for arena-recycled frames, makes that
	// decrement the child's *final* touch of the frame when the owner never
	// suspended, so the owner may reuse the memory the moment it observes
	// zero.
	count atomic.Int32

	mu     sync.Mutex   // guards panicked only
	resume chan *worker // carries the finisher's slot to the parked owner

	// Saved execution state, the analogue of fibril_t.state{rbp,rsp,rip}
	// plus fibril_t.stack: which simulated stack the frame lives on and
	// the watermark to resume at.
	stack     *stack.Stack
	watermark int

	depth int32 // invocation depth of the owning task
	// parent is the frame of the task that declared this one (ancestry).
	// Atomic because leapfrog StealIf predicates walk the ancestry of
	// candidates read from lock-free deques *before* the claiming CAS: the
	// candidate may be stale and its frame arena-recycled mid-walk, so the
	// walk must be race-clean (stale answers are harmless — the deque CAS
	// rejects stale candidates; see isDescendantWithin).
	parent   atomic.Pointer[Frame]
	initMark int // owning stack's watermark at Init (cactus branch point)

	// pendingReclaim is the live deferred-unmap ticket of the current
	// suspension, if any (coalesced-unmap mode only). Guarded by mu; the
	// resume path cancels it before waking the owner.
	pendingReclaim *reclaimTicket

	panicked *TaskPanic // first panic among the frame's children
}

// frameSuspended is the bit the owner sets in Frame.count when it commits
// a suspension: well above any real fork count, well below the sign bit.
const frameSuspended = int32(1) << 30

// Depth returns the invocation-tree depth recorded at Init.
func (f *Frame) Depth() int { return int(f.depth) }

// Pending returns the number of outstanding children (racy snapshot).
func (f *Frame) Pending() int { return int(f.count.Load() &^ frameSuspended) }

// isDescendantWithin reports whether f is a descendant of ancestor within
// limit ancestry links — the eligibility test of leapfrogging. The bound
// makes the walk safe on a *stale* steal candidate (one whose frame was
// arena-recycled after the candidate was read but before its claiming
// CAS): a recycled frame's parent links may point anywhere, including into
// a transient cycle, so an unbounded walk could spin forever. For a live
// candidate the limit never truncates the walk — callers pass the task's
// trusted depth, which bounds its true ancestry length — and for a stale
// one any answer is acceptable because the deque CAS rejects it.
func (f *Frame) isDescendantWithin(ancestor *Frame, limit int32) bool {
	for cur := f; cur != nil && limit >= 0; cur, limit = cur.parent.Load(), limit-1 {
		if cur == ancestor {
			return true
		}
	}
	return false
}

// Init prepares the frame for forking: records the owning stack, the
// current invocation depth, and the enclosing frame for ancestry tracking.
func (w *W) Init(f *Frame) {
	f.count.Store(0)
	f.stack = w.stack
	f.watermark = 0
	f.depth = w.depth
	f.parent.Store(w.frame)
	f.initMark = w.stack.Bytes()
	f.pendingReclaim = nil
}

// childDone is called by the worker that just completed a child of f. When
// it completes the last pending child of a *suspended* frame it resumes the
// parked owner, transferring the caller's worker slot to it (Listing 3
// lines 68–75); the caller must then stop using the slot and, if it reports
// a handoff, retire its stack to the pool.
//
// The decrement is the caller's LAST touch of the frame unless it observes
// the suspend bit alone — the owner relies on that to recycle arena-backed
// frames immediately after Join observes a zero count. When the bit is
// observed the owner is parked on f.resume and nobody else can reach the
// frame, so the resume fields are read without a lock (the owner's
// commit CAS published them; this Add on the same word acquired them).
func (w *W) childDone(f *Frame) (handoff bool) {
	if f.count.Add(-1) != frameSuspended {
		return false // siblings remain, or the owner never suspended
	}
	// Last child of a suspended frame: take over the resume state, clear
	// the flag, and wake the owner.
	ch := f.resume
	t := f.pendingReclaim
	f.pendingReclaim = nil
	f.count.Store(0)

	// Cancel the suspension's deferred unmap, if a batch flush has not
	// resolved it yet — strictly before the resume signal below, so no
	// flush can madvise the stack once the owner is running again. A won
	// cancel is a saved madvise plus the saved refaults.
	if t != nil && t.cancel() {
		w.stats.reclaimCancels.Add(1)
	}

	w.stats.resumes.Add(1)
	w.rt.trc.Emit(w.slotID(), trace.KindResume, int64(f.stack.ID()), 0)
	if w.slot == nil {
		// Goroutine baseline: just wake the waiter, no slot to transfer.
		ch <- nil
		return false
	}
	ch <- w.slot
	return true
}

// suspend parks the calling goroutine until f's children complete,
// unmapping the unused pages of its stack first and handing its worker
// slot to a fresh thief. It returns false if the children finished before
// the suspension could be committed.
func (w *W) suspend(f *Frame) bool {
	// Prepare the resume state BEFORE committing the suspension: the child
	// that observes the suspend bit reads these fields without a lock, so
	// they must be published by the commit CAS below. The channel is
	// allocated once and survives both frame reuse (Init leaves it) and
	// arena recycling, so repeat suspensions are allocation-free.
	if f.resume == nil {
		f.resume = make(chan *worker, 1)
	}
	f.watermark = w.stack.Bytes()
	rt := w.rt
	// Coalesced-unmap mode: decide the suspension's unmap fate before the
	// commit, so a racing childDone — which can run the instant the CAS
	// lands — always sees the ticket and cancels it before resuming us.
	var ticket *reclaimTicket
	gated := false
	if rt.cfg.Strategy == StrategyFibril && rt.reclaim.batched() {
		if w.stack.ReclaimablePages() > 0 {
			ticket = &reclaimTicket{s: w.stack, from: w.stack.Pages()}
			f.pendingReclaim = ticket
		} else {
			gated = true
		}
	}
	// Commit: set the suspend bit while children remain. Failing with a
	// zero count means they all finished during the preparation above —
	// nobody saw the bit, so nobody read the staged state; back out.
	for {
		c := f.count.Load()
		if c == 0 {
			f.pendingReclaim = nil
			return false
		}
		if f.count.CompareAndSwap(c, c|frameSuspended) {
			break
		}
	}

	w.stats.suspends.Add(1)
	rt.trc.Emit(w.slotID(), trace.KindSuspend, int64(w.stack.ID()), 0)

	switch {
	case ticket != nil:
		// Defer the unmap: post the ticket for a batched flush. The
		// ticket may already be cancelled (the children finished during
		// the lines above); enqueue regardless — flush skips dead tickets.
		rt.reclaim.enqueue(w.slotID(), w.stats, ticket)
	case gated:
		// Hysteresis gate: the stack never grew past its last unmap
		// point, so every page above the watermark is already gone and
		// the madvise is saved outright — the re-suspend-at-same-depth
		// thrash the eager path pays for.
		w.stats.reclaimSkips.Add(1)
	default:
		// Return the unused portion of the suspended stack to the OS
		// (Listing 3 line 63). It is safe after publishing the
		// suspension: nobody touches this stack until the resume channel
		// fires, and the pages below the watermark stay mapped.
		switch rt.cfg.Strategy {
		case StrategyFibril:
			freed := w.stack.UnmapAbove()
			w.stats.unmaps.Add(1)
			w.stats.unmappedPages.Add(int64(freed))
			rt.trc.Emit(w.slotID(), trace.KindUnmap, int64(freed), 0)
		case StrategyFibrilMMap:
			freed := w.stack.MapDummyAbove()
			w.stats.unmaps.Add(1)
			w.stats.unmappedPages.Add(int64(freed))
			rt.trc.Emit(w.slotID(), trace.KindUnmap, int64(freed), 0)
		}
	}
	rt.reclaim.pressure(w.slotID(), w.stats)

	// Join-wait time: how long this goroutine stays parked before the
	// last child's completion hands it a slot back. Timed only when a
	// sink consumes join-wait events.
	var parkedAt time.Time
	if rt.trc.Wants(trace.KindJoinWait) {
		parkedAt = time.Now()
	}
	if w.slot != nil {
		// Hand the worker slot to a replacement thief so exactly P slots
		// stay busy (busy leaves). The replacement takes its stack from
		// the pool, blocking there if a bounded (Cilk Plus) pool is empty.
		rt.goroutineWG.Add(1)
		go rt.thiefLoop(w.slot)
		w.slot = <-f.resume
	} else {
		<-f.resume // goroutine baseline: plain blocking join
	}
	if !parkedAt.IsZero() {
		rt.trc.Emit(w.slotID(), trace.KindJoinWait, int64(w.stack.ID()), time.Since(parkedAt))
	}
	// Remap before execution returns to the stack. The woken owner does it
	// (not the finisher) because only the owner may touch the stack; with
	// madvise-based unmap remap is a no-op and pages fault back lazily.
	if rt.cfg.Strategy == StrategyFibrilMMap {
		w.stack.RemapAbove()
	}
	return true
}
