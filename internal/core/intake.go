package core

import (
	"sync"
	"sync/atomic"
)

// This file is the root-intake layer of the serving lifecycle: the queue
// of admitted roots awaiting a worker, behind a small interface so the
// lock-minimized sharded pipeline (IntakeSharded, the default) and the
// single-mutex PR 8 baseline (IntakeMutex) stay differentially testable
// against each other. Either way the intake is deliberately separate from
// looseQueue: loose tasks are already-claimed, already-counted *steals*,
// while roots are new computations that must not perturb the steal
// counters or the trace-reconciliation laws — and thieves take roots only
// after a full steal sweep fails, so in-flight computations keep their
// workers until there is genuinely idle capacity.

// rootIntake is the queue of admitted roots awaiting a worker, plus the
// Job recycling pool (a no-op for the baseline). push may be called from
// any goroutine; pop is called by thieves (self is the thief's slot, used
// by the sharded intake to spread drains; -1 for slotless callers).
type rootIntake interface {
	push(j *Job)
	pop(self int) (*Job, bool)
	len() int

	// getJob returns a recycled Job for the given submission id (nil when
	// the pool is empty or pooling is off); putJob recycles a completed,
	// already-reset Job. See Job.Release for the handoff rules.
	getJob(id uint64) *Job
	putJob(id uint64, j *Job)
}

// intakeHash spreads submission ids over n shards. Fibonacci hashing on
// the id: consecutive ids land on well-spread shards, so concurrent
// submitters do not convoy on one shard even though ids are sequential.
func intakeHash(id uint64, n int) int {
	return int((id * 0x9E3779B97F4A7C15 >> 33) % uint64(n))
}

// jobFreeCap bounds one shard's free list so a submission burst cannot
// hoard an unbounded Job graveyard.
const jobFreeCap = 256

// intakeShard is one lane of the sharded intake. Producers (submitters)
// are lock-free: push links the Job into a Treiber-style LIFO inbox with
// one CAS, using the Job's intrusive qnext field — no allocation, no
// lock, no shared line beyond the shard's own. Consumers (thieves) are
// serialized per shard by cmu: a pop adopts the whole inbox with one
// atomic Swap, reverses it into the FIFO out list, and serves from that —
// the classic MPSC inbox-reversal queue, multi-consumer-safe because the
// consumer side is the locked side. FIFO order per shard is exact: the
// out list is consumed before a newer inbox batch is adopted, and a
// reversed LIFO batch is oldest-first.
//
// The shard also carries its slice of the Job pool: a Treiber free list
// whose push is a single CAS and whose pop is guarded by a try-lock
// (popBusy). Serializing poppers is what makes the Treiber pop ABA-safe
// without tagged pointers: a node's qnext cannot be rewritten while it is
// in the list, and only one popper at a time traverses the head. A
// contended popper simply misses — the caller heap-allocates, which is
// the safety valve, not a correctness event.
type intakeShard struct {
	inbox atomic.Pointer[Job] // lock-free producer side (LIFO)
	n     atomic.Int64        // visible roots in this shard (inbox + out)

	cmu  sync.Mutex // consumer side: adopt/reverse/pop
	head *Job       // FIFO out list, oldest first; guarded by cmu
	tail *Job       // guarded by cmu

	free    atomic.Pointer[Job] // recycled Jobs (Treiber LIFO)
	freeN   atomic.Int32
	popBusy atomic.Bool

	_ [4]int64 // pad the hot producer lines away from the next shard
}

// push publishes j to this shard. Callers wake the park lot afterwards,
// mirroring Fork's publish-then-wake Dekker pair, so a parked thief
// cannot miss the root.
func (s *intakeShard) push(j *Job) {
	s.n.Add(1)
	for {
		h := s.inbox.Load()
		j.qnext.Store(h)
		if s.inbox.CompareAndSwap(h, j) {
			return
		}
	}
}

// pop removes the oldest root in this shard. The n.Load fast path keeps
// the empty case (every failed steal sweep ends here) at one atomic read
// of a line that is clean while no submits target the shard.
func (s *intakeShard) pop() (*Job, bool) {
	if s.n.Load() <= 0 {
		return nil, false
	}
	s.cmu.Lock()
	if s.head == nil {
		// Out list dry: adopt the inbox in one Swap and reverse the LIFO
		// batch into FIFO order. Everything in the inbox is newer than
		// anything the out list held, so draining out-first preserves
		// per-shard FIFO exactly.
		var rev *Job
		for in := s.inbox.Swap(nil); in != nil; {
			next := in.qnext.Load()
			in.qnext.Store(rev)
			rev = in
			in = next
		}
		s.head = rev
	}
	j := s.head
	if j == nil {
		s.cmu.Unlock()
		return nil, false // racing pop won the batch; transient n overshoot
	}
	s.head = j.qnext.Load()
	j.qnext.Store(nil)
	s.n.Add(-1)
	s.cmu.Unlock()
	return j, true
}

// getFree pops a recycled Job, or nil. Pops are serialized by popBusy —
// see the type comment for the ABA argument; a contended caller
// allocates instead of spinning.
func (s *intakeShard) getFree() *Job {
	if s.free.Load() == nil || !s.popBusy.CompareAndSwap(false, true) {
		return nil
	}
	var j *Job
	for {
		j = s.free.Load()
		if j == nil {
			break
		}
		if s.free.CompareAndSwap(j, j.qnext.Load()) {
			j.qnext.Store(nil)
			s.freeN.Add(-1)
			break
		}
	}
	s.popBusy.Store(false)
	return j
}

// putFree recycles j (already reset by the caller); over the cap the Job
// is dropped to the GC.
func (s *intakeShard) putFree(j *Job) {
	if s.freeN.Load() >= jobFreeCap {
		return
	}
	s.freeN.Add(1)
	for {
		h := s.free.Load()
		j.qnext.Store(h)
		if s.free.CompareAndSwap(h, j) {
			return
		}
	}
}

// shardedIntake is the default root intake: one intakeShard per worker
// slot. Submitters pick a shard by hashing the submission id; thieves
// drain shards round-robin starting at their own slot, so concurrent
// drains start on distinct shards and the "roots only after a failed
// steal sweep" priority is preserved per thief.
type shardedIntake struct {
	shards []intakeShard
}

func newShardedIntake(n int) *shardedIntake {
	if n < 1 {
		n = 1
	}
	return &shardedIntake{shards: make([]intakeShard, n)}
}

func (q *shardedIntake) push(j *Job) {
	q.shards[intakeHash(j.id, len(q.shards))].push(j)
}

func (q *shardedIntake) pop(self int) (*Job, bool) {
	ns := len(q.shards)
	if self < 0 {
		self = 0
	}
	for i := 0; i < ns; i++ {
		if j, ok := q.shards[(self+i)%ns].pop(); ok {
			return j, true
		}
	}
	return nil, false
}

func (q *shardedIntake) len() int {
	n := 0
	for i := range q.shards {
		if v := int(q.shards[i].n.Load()); v > 0 {
			n += v
		}
	}
	return n
}

func (q *shardedIntake) getJob(id uint64) *Job {
	return q.shards[intakeHash(id, len(q.shards))].getFree()
}

func (q *shardedIntake) putJob(id uint64, j *Job) {
	q.shards[intakeHash(id, len(q.shards))].putFree(j)
}

// mutexIntake is the PR 8 baseline: one mutex-guarded FIFO slice, no Job
// recycling. It is kept selectable (Config.Intake = IntakeMutex) as the
// differential and benchmark baseline for the sharded pipeline — the
// submitpath experiment's ≥3× gate is measured against exactly this.
type mutexIntake struct {
	mu sync.Mutex
	n  atomic.Int64
	js []*Job
}

func (q *mutexIntake) push(j *Job) {
	q.mu.Lock()
	q.js = append(q.js, j)
	q.n.Store(int64(len(q.js)))
	q.mu.Unlock()
}

// pop removes the oldest root. The n.Load fast path keeps the empty case
// at one atomic read.
func (q *mutexIntake) pop(self int) (*Job, bool) {
	if q.n.Load() == 0 {
		return nil, false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.js) == 0 {
		return nil, false
	}
	j := q.js[0]
	q.js[0] = nil
	q.js = q.js[1:]
	q.n.Store(int64(len(q.js)))
	return j, true
}

func (q *mutexIntake) len() int { return int(q.n.Load()) }

func (q *mutexIntake) getJob(id uint64) *Job  { return nil }
func (q *mutexIntake) putJob(id uint64, j *Job) {}
