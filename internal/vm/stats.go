package vm

// Stats is a point-in-time snapshot of an AddressSpace's counters. All page
// quantities use the simulated 4 KB page.
type Stats struct {
	RSSPages      int64 // current resident pages
	MaxRSSPages   int64 // high-water resident pages
	VirtualPages  int64 // currently reserved virtual pages
	MaxVirtual    int64 // high-water virtual reservation
	PageFaults    int64 // demand-paging faults taken
	MMapCalls     int64 // serialized address-space mutations (mmap/dummy/remap)
	MUnmapCalls   int64
	MadviseCalls  int64 // lock-free DONTNEED calls
	MadvisedPages int64 // pages freed via madvise
	RemapCalls    int64 // anonymous remaps after dummy-file unmaps
	LockContended int64 // address-space lock acquisitions that waited
	DummyTouches  int64 // accesses to dummy-mapped pages (bug indicator)
}

// Snapshot returns the current counter values.
func (as *AddressSpace) Snapshot() Stats {
	return Stats{
		RSSPages:      as.rss.Load(),
		MaxRSSPages:   as.maxRSS.Load(),
		VirtualPages:  as.virtualPages.Load(),
		MaxVirtual:    as.maxVirtual.Load(),
		PageFaults:    as.faults.Load(),
		MMapCalls:     as.mmapCalls.Load(),
		MUnmapCalls:   as.munmapCalls.Load(),
		MadviseCalls:  as.madviseCalls.Load(),
		MadvisedPages: as.madvisedPages.Load(),
		RemapCalls:    as.remapCalls.Load(),
		LockContended: as.lockContended.Load(),
		DummyTouches:  as.dummyTouches.Load(),
	}
}

// MaxRSSBytes converts the high-water RSS to bytes.
func (s Stats) MaxRSSBytes() int64 { return s.MaxRSSPages * PageSize }

// Sub returns the counter deltas from an earlier snapshot, the analogue of
// the paper's ΔRSS measurement (Table 4) generalized to every counter.
// High-water fields keep the later snapshot's value.
func (s Stats) Sub(earlier Stats) Stats {
	return Stats{
		RSSPages:      s.RSSPages - earlier.RSSPages,
		MaxRSSPages:   s.MaxRSSPages,
		VirtualPages:  s.VirtualPages - earlier.VirtualPages,
		MaxVirtual:    s.MaxVirtual,
		PageFaults:    s.PageFaults - earlier.PageFaults,
		MMapCalls:     s.MMapCalls - earlier.MMapCalls,
		MUnmapCalls:   s.MUnmapCalls - earlier.MUnmapCalls,
		MadviseCalls:  s.MadviseCalls - earlier.MadviseCalls,
		MadvisedPages: s.MadvisedPages - earlier.MadvisedPages,
		RemapCalls:    s.RemapCalls - earlier.RemapCalls,
		LockContended: s.LockContended - earlier.LockContended,
		DummyTouches:  s.DummyTouches - earlier.DummyTouches,
	}
}
