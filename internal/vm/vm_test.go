package vm

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestPageAlign(t *testing.T) {
	cases := []struct {
		bytes, pages int
	}{
		{0, 0}, {-5, 0}, {1, 1}, {PageSize - 1, 1}, {PageSize, 1},
		{PageSize + 1, 2}, {10 * PageSize, 10}, {10*PageSize + 7, 11},
	}
	for _, c := range cases {
		if got := PageAlign(c.bytes); got != c.pages {
			t.Errorf("PageAlign(%d) = %d, want %d", c.bytes, got, c.pages)
		}
	}
}

func TestMMapReservesVirtualOnly(t *testing.T) {
	as := NewAddressSpace()
	r, err := as.MMap(16)
	if err != nil {
		t.Fatal(err)
	}
	s := as.Snapshot()
	if s.VirtualPages != 16 {
		t.Errorf("VirtualPages = %d, want 16", s.VirtualPages)
	}
	if s.RSSPages != 0 {
		t.Errorf("RSSPages = %d, want 0 before any touch", s.RSSPages)
	}
	if r.ResidentPages() != 0 {
		t.Errorf("ResidentPages = %d, want 0", r.ResidentPages())
	}
}

func TestMMapRejectsNonPositive(t *testing.T) {
	as := NewAddressSpace()
	for _, n := range []int{0, -1} {
		if _, err := as.MMap(n); err == nil {
			t.Errorf("MMap(%d) succeeded, want error", n)
		}
	}
}

func TestTouchFaultsOnce(t *testing.T) {
	as := NewAddressSpace()
	r, _ := as.MMap(4)
	r.Touch(2)
	r.Touch(2)
	r.Touch(2)
	s := as.Snapshot()
	if s.PageFaults != 1 {
		t.Errorf("PageFaults = %d, want 1 (repeat touches are free)", s.PageFaults)
	}
	if s.RSSPages != 1 {
		t.Errorf("RSSPages = %d, want 1", s.RSSPages)
	}
	if !r.Resident(2) || r.Resident(1) {
		t.Error("residency bits wrong after Touch(2)")
	}
}

func TestMadviseFreesAndRefaults(t *testing.T) {
	as := NewAddressSpace()
	r, _ := as.MMap(8)
	r.TouchRange(0, 8)
	if got := as.Snapshot().RSSPages; got != 8 {
		t.Fatalf("RSS = %d, want 8", got)
	}
	freed := r.Madvise(2, 8)
	if freed != 6 {
		t.Errorf("Madvise freed %d, want 6", freed)
	}
	s := as.Snapshot()
	if s.RSSPages != 2 {
		t.Errorf("RSS = %d after madvise, want 2", s.RSSPages)
	}
	if s.MaxRSSPages != 8 {
		t.Errorf("MaxRSS = %d, want high-water 8", s.MaxRSSPages)
	}
	// Touching madvised pages faults them back in — the paper's Table 2
	// observation that unmap increases page faults.
	r.Touch(5)
	s = as.Snapshot()
	if s.PageFaults != 9 {
		t.Errorf("PageFaults = %d, want 9 (8 initial + 1 refault)", s.PageFaults)
	}
	if s.DummyTouches != 0 {
		t.Errorf("DummyTouches = %d, want 0 for the madvise path", s.DummyTouches)
	}
}

func TestMadviseIdempotentOnFreePages(t *testing.T) {
	as := NewAddressSpace()
	r, _ := as.MMap(4)
	if freed := r.Madvise(0, 4); freed != 0 {
		t.Errorf("Madvise on never-touched pages freed %d, want 0", freed)
	}
	if got := as.Snapshot().RSSPages; got != 0 {
		t.Errorf("RSS went negative-ish: %d", got)
	}
}

func TestMapDummyPreservesVirtualAndFreesPhysical(t *testing.T) {
	as := NewAddressSpace()
	r, _ := as.MMap(8)
	r.TouchRange(0, 8)
	freed := r.MapDummy(0, 8)
	if freed != 8 {
		t.Errorf("MapDummy freed %d, want 8", freed)
	}
	s := as.Snapshot()
	if s.RSSPages != 0 {
		t.Errorf("RSS = %d, want 0", s.RSSPages)
	}
	if s.VirtualPages != 8 {
		t.Errorf("VirtualPages = %d, want 8 (dummy mapping preserves VA)", s.VirtualPages)
	}
	// Remap then touch: no dummy-touch bug recorded.
	r.RemapAnonymous(0, 8)
	r.Touch(3)
	s = as.Snapshot()
	if s.DummyTouches != 0 {
		t.Errorf("DummyTouches = %d, want 0 after proper remap", s.DummyTouches)
	}
	if !r.Resident(3) {
		t.Error("page 3 should be resident after remap+touch")
	}
}

func TestDummyTouchWithoutRemapIsCounted(t *testing.T) {
	as := NewAddressSpace()
	r, _ := as.MMap(2)
	r.TouchRange(0, 2)
	r.MapDummy(0, 2)
	r.Touch(0) // remap discipline violated
	if got := as.Snapshot().DummyTouches; got != 1 {
		t.Errorf("DummyTouches = %d, want 1", got)
	}
}

func TestMUnmapReleasesEverything(t *testing.T) {
	as := NewAddressSpace()
	r, _ := as.MMap(8)
	r.TouchRange(0, 5)
	r.MUnmap()
	s := as.Snapshot()
	if s.RSSPages != 0 || s.VirtualPages != 0 {
		t.Errorf("after MUnmap RSS=%d virtual=%d, want 0/0", s.RSSPages, s.VirtualPages)
	}
	defer func() {
		if recover() == nil {
			t.Error("Touch after MUnmap should panic")
		}
	}()
	r.Touch(0)
}

func TestDoubleMUnmapPanics(t *testing.T) {
	as := NewAddressSpace()
	r, _ := as.MMap(1)
	r.MUnmap()
	defer func() {
		if recover() == nil {
			t.Error("double MUnmap should panic")
		}
	}()
	r.MUnmap()
}

func TestRegionsDoNotOverlap(t *testing.T) {
	as := NewAddressSpace()
	var regions []*Region
	for i := 0; i < 50; i++ {
		r, _ := as.MMap(1 + i%7)
		regions = append(regions, r)
	}
	for i, a := range regions {
		for j, b := range regions {
			if i == j {
				continue
			}
			aEnd := a.Base() + uint64(a.Len())
			bEnd := b.Base() + uint64(b.Len())
			if a.Base() < bEnd && b.Base() < aEnd {
				t.Fatalf("regions %d and %d overlap", i, j)
			}
		}
	}
}

func TestMaxVirtualHighWater(t *testing.T) {
	as := NewAddressSpace()
	r1, _ := as.MMap(10)
	r2, _ := as.MMap(10)
	r1.MUnmap()
	r2.MUnmap()
	s := as.Snapshot()
	if s.MaxVirtual != 20 {
		t.Errorf("MaxVirtual = %d, want 20", s.MaxVirtual)
	}
	if s.VirtualPages != 0 {
		t.Errorf("VirtualPages = %d, want 0", s.VirtualPages)
	}
}

func TestStatsSub(t *testing.T) {
	as := NewAddressSpace()
	r, _ := as.MMap(4)
	r.TouchRange(0, 2)
	before := as.Snapshot()
	r.TouchRange(2, 4)
	delta := as.Snapshot().Sub(before)
	if delta.PageFaults != 2 {
		t.Errorf("delta faults = %d, want 2", delta.PageFaults)
	}
	if delta.RSSPages != 2 {
		t.Errorf("delta RSS = %d, want 2", delta.RSSPages)
	}
}

// TestConcurrentMadviseNoLock verifies that concurrent Madvise calls on
// different regions never record address-space lock contention — the
// design property (§4.3) that motivates madvise-based unmap.
func TestConcurrentMadviseNoLock(t *testing.T) {
	as := NewAddressSpace()
	const workers = 8
	regions := make([]*Region, workers)
	for i := range regions {
		regions[i], _ = as.MMap(64)
		regions[i].TouchRange(0, 64)
	}
	base := as.Snapshot().LockContended
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(r *Region) {
			defer wg.Done()
			for k := 0; k < 100; k++ {
				r.TouchRange(0, 64)
				r.Madvise(0, 64)
			}
		}(regions[i])
	}
	wg.Wait()
	if got := as.Snapshot().LockContended - base; got != 0 {
		t.Errorf("madvise recorded %d lock contentions, want 0", got)
	}
	if got := as.Snapshot().RSSPages; got != 0 {
		t.Errorf("RSS = %d after final madvise round, want 0", got)
	}
}

// TestConcurrentMMapCountsAccurately checks counter integrity under
// concurrent serialized mutations.
func TestConcurrentMMapCountsAccurately(t *testing.T) {
	as := NewAddressSpace()
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < per; k++ {
				r, err := as.MMap(2)
				if err != nil {
					t.Error(err)
					return
				}
				r.TouchRange(0, 2)
				r.MUnmap()
			}
		}()
	}
	wg.Wait()
	s := as.Snapshot()
	if s.MMapCalls != workers*per {
		t.Errorf("MMapCalls = %d, want %d", s.MMapCalls, workers*per)
	}
	if s.RSSPages != 0 || s.VirtualPages != 0 {
		t.Errorf("leaked: RSS=%d virtual=%d", s.RSSPages, s.VirtualPages)
	}
	if s.PageFaults != workers*per*2 {
		t.Errorf("PageFaults = %d, want %d", s.PageFaults, workers*per*2)
	}
}

// Property: for any sequence of touch/madvise operations, RSS equals the sum
// of per-region resident pages, never goes negative, and MaxRSS is a true
// high-water mark.
func TestQuickRSSConservation(t *testing.T) {
	prop := func(ops []uint16) bool {
		as := NewAddressSpace()
		var regions []*Region
		maxSeen := int64(0)
		for _, op := range ops {
			kind := op % 4
			switch {
			case kind == 0 || len(regions) == 0:
				n := int(op%13) + 1
				r, err := as.MMap(n)
				if err != nil {
					return false
				}
				regions = append(regions, r)
			case kind == 1:
				r := regions[int(op/4)%len(regions)]
				r.Touch(int(op/16) % r.Len())
			case kind == 2:
				r := regions[int(op/4)%len(regions)]
				lo := int(op/16) % (r.Len() + 1)
				hi := lo + int(op/64)%(r.Len()-lo+1)
				r.Madvise(lo, hi)
			case kind == 3:
				r := regions[int(op/4)%len(regions)]
				lo := int(op/16) % (r.Len() + 1)
				hi := lo + int(op/64)%(r.Len()-lo+1)
				r.TouchRange(lo, hi)
			}
			sum := int64(0)
			for _, r := range regions {
				sum += int64(r.ResidentPages())
			}
			s := as.Snapshot()
			if s.RSSPages != sum || s.RSSPages < 0 {
				return false
			}
			if s.RSSPages > maxSeen {
				maxSeen = s.RSSPages
			}
			if s.MaxRSSPages < maxSeen {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: faults == pages that transitioned to resident, i.e. touching an
// already-resident page never faults, and madvise+retouch faults again.
func TestQuickFaultAccounting(t *testing.T) {
	prop := func(touches []uint8, advises []uint8) bool {
		as := NewAddressSpace()
		r, err := as.MMap(16)
		if err != nil {
			return false
		}
		expected := int64(0)
		resident := make([]bool, 16)
		step := 0
		for i := 0; i < len(touches) || i < len(advises); i++ {
			if i < len(touches) {
				p := int(touches[i]) % 16
				if !resident[p] {
					expected++
					resident[p] = true
				}
				r.Touch(p)
			}
			if i < len(advises) && step%3 == 2 {
				p := int(advises[i]) % 16
				r.Madvise(p, p+1)
				resident[p] = false
			}
			step++
		}
		return as.Snapshot().PageFaults == expected
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestConcurrentConservationSampled is the harness-grade conservation
// property: per-region owners hammer Touch/Madvise (the lock-free hot
// path) while a sampler thread snapshots the global counters. Every
// snapshot — not just the final one — must satisfy the conservation laws:
// RSS within [0, total mapped pages], high-water and fault counters
// monotone, faults never below resident pages. At quiescence the global
// RSS must equal the sum of per-region residency exactly.
func TestConcurrentConservationSampled(t *testing.T) {
	as := NewAddressSpace()
	const (
		workers = 8
		pages   = 32
		rounds  = 400
	)
	regions := make([]*Region, workers)
	for i := range regions {
		regions[i], _ = as.MMap(pages)
	}
	total := int64(workers * pages)

	var workersWG, samplerWG sync.WaitGroup
	stop := make(chan struct{})
	samplerWG.Add(1)
	go func() { // sampler
		defer samplerWG.Done()
		var lastFaults, lastMax int64
		for {
			s := as.Snapshot()
			if s.RSSPages < 0 || s.RSSPages > total {
				t.Errorf("sampled RSS %d outside [0,%d]", s.RSSPages, total)
			}
			if s.PageFaults < lastFaults {
				t.Errorf("faults went backwards: %d < %d", s.PageFaults, lastFaults)
			}
			if s.MaxRSSPages < lastMax {
				t.Errorf("max RSS went backwards: %d < %d", s.MaxRSSPages, lastMax)
			}
			if s.PageFaults < s.MaxRSSPages {
				t.Errorf("faults %d < max RSS %d", s.PageFaults, s.MaxRSSPages)
			}
			lastFaults, lastMax = s.PageFaults, s.MaxRSSPages
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	for i := 0; i < workers; i++ {
		workersWG.Add(1)
		go func(id int, r *Region) {
			defer workersWG.Done()
			for k := 0; k < rounds; k++ {
				lo := (id + k) % pages
				r.TouchRange(lo, pages)
				if k%3 != 0 {
					r.Madvise(lo, pages)
				}
			}
		}(i, regions[i])
	}
	workersWG.Wait()
	close(stop)
	samplerWG.Wait()

	s := as.Snapshot()
	var resident int64
	for _, r := range regions {
		resident += int64(r.ResidentPages())
	}
	if s.RSSPages != resident {
		t.Errorf("final RSS %d != sum of region residency %d", s.RSSPages, resident)
	}
	if s.MaxRSSPages > total {
		t.Errorf("max RSS %d > total mapped %d", s.MaxRSSPages, total)
	}
}
