// Package vm simulates the virtual-memory subsystem that the Fibril paper's
// stack-management scheme relies on (SPAA 2016, §4.3 "Implementation of
// unmap/remap" and §4.4).
//
// The Go runtime owns real goroutine stacks, so page-level control of the
// kind Fibril exercises with mmap/madvise on thread stacks is impossible in
// pure Go. This package therefore models the relevant kernel behaviour at
// page granularity:
//
//   - an AddressSpace with a single lock that serializes address-space
//     mutations (MMap, MUnmap, RemapAnonymous, MapDummy), as Linux's
//     mmap_sem did on the paper's kernel (3.16);
//   - Madvise(DONTNEED) that frees resident pages WITHOUT taking the
//     address-space lock, which is exactly why Fibril implements unmap
//     with madvise;
//   - demand paging: anonymous pages become resident on first Touch,
//     counting a page fault and incrementing the resident-set size (RSS).
//
// All quantities the paper reports — page faults, unmaps, ΔRSS/MaxRSS,
// stack pages S1, S1+D, S72/72 — are defined on these counters.
//
// Concurrency contract: an AddressSpace and its counters are safe for
// concurrent use. An individual Region's page state is owned by at most one
// worker at a time (a stack is used by exactly one worker; suspended stacks
// are not touched until resumed), mirroring Fibril's ownership discipline.
// Counter updates remain atomic so cross-region aggregates are exact.
package vm

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// PageSize is the simulated page size in bytes. The paper's experiments all
// use 4 KB pages.
const PageSize = 4096

// PageAlign rounds a byte count up to a whole number of pages, the analogue
// of the paper's PAGE_ALIGN applied to a stack watermark.
func PageAlign(bytes int) int {
	if bytes <= 0 {
		return 0
	}
	return (bytes + PageSize - 1) / PageSize
}

// AddressSpace models one process's virtual address space. The zero value is
// not usable; construct with NewAddressSpace.
type AddressSpace struct {
	mu sync.Mutex // serializes address-space mutations, like mmap_sem

	nextBase uint64 // bump allocator for region placement (page units)

	// All counters are in pages unless otherwise noted.
	rss           atomic.Int64 // current resident set
	maxRSS        atomic.Int64 // high-water resident set
	virtualPages  atomic.Int64 // currently reserved virtual pages
	maxVirtual    atomic.Int64 // high-water virtual reservation
	faults        atomic.Int64 // demand-paging faults; each fault maps exactly one page, so the count is also a page count
	mmapCalls     atomic.Int64
	munmapCalls   atomic.Int64
	madviseCalls  atomic.Int64
	remapCalls    atomic.Int64
	lockContended atomic.Int64 // address-space lock acquisitions that had to wait
	dummyTouches  atomic.Int64 // touches of dummy-file pages (should stay 0)
	madvisedPages atomic.Int64 // pages freed via Madvise(DONTNEED)
}

// NewAddressSpace returns an empty simulated address space.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{nextBase: 1} // keep 0 unmapped, like a real null page
}

// lock acquires the address-space lock, recording whether it was contended.
func (as *AddressSpace) lock() {
	if as.mu.TryLock() {
		return
	}
	as.lockContended.Add(1)
	as.mu.Lock()
}

// RSSPages returns the current resident set in pages without building a
// full Snapshot — the memory-pressure ceiling reads it on hot paths.
func (as *AddressSpace) RSSPages() int64 { return as.rss.Load() }

// subRSS returns freed pages from the resident set. The per-page state
// machine guarantees a page is only freed while resident, so the counter
// can never underflow; if it does, some caller double-freed and every
// RSS-derived quantity is garbage — fail loudly rather than report it.
func (as *AddressSpace) subRSS(freed int64) {
	if freed == 0 {
		return
	}
	if v := as.rss.Add(-freed); v < 0 {
		panic(fmt.Sprintf("vm: RSS underflow: freed %d pages with %d resident", freed, v+freed))
	}
}

// pageState is the per-page mapping state within a Region.
type pageState uint8

const (
	pageAnon     pageState = iota // anonymous mapping, not resident (faults on touch)
	pageResident                  // anonymous mapping, resident in physical memory
	pageDummy                     // mapped to the dummy file: VA preserved, no physical page
)

// Region is a contiguous page-aligned mapping inside an AddressSpace, e.g.
// one worker stack. Page state is externally synchronized by region
// ownership (see package comment); counters on the parent AddressSpace are
// atomic.
type Region struct {
	as     *AddressSpace
	base   uint64 // first page number in the address space
	pages  []pageState
	faults int64 // demand-paging faults taken by this region
	freed  bool
}

// Faults returns how many demand-paging faults this region has taken. Like
// the page state, it is owner-synchronized.
func (r *Region) Faults() int64 { return r.faults }

// MMap reserves a new anonymous region of n pages. Pages are not resident
// until touched. It takes the address-space lock (serialized, like mmap).
func (as *AddressSpace) MMap(n int) (*Region, error) {
	if n <= 0 {
		return nil, fmt.Errorf("vm: MMap of %d pages", n)
	}
	as.lock()
	base := as.nextBase
	as.nextBase += uint64(n) + 1 // one guard page between regions
	as.mu.Unlock()

	as.mmapCalls.Add(1)
	v := as.virtualPages.Add(int64(n))
	atomicMax(&as.maxVirtual, v)
	return &Region{as: as, base: base, pages: make([]pageState, n)}, nil
}

// MUnmap releases the region: resident pages are freed and the virtual
// reservation is returned. Takes the address-space lock.
func (r *Region) MUnmap() {
	if r.freed {
		panic("vm: double MUnmap")
	}
	r.as.lock()
	r.as.mu.Unlock()
	r.as.munmapCalls.Add(1)
	freedRes := 0
	for i, s := range r.pages {
		if s == pageResident {
			freedRes++
		}
		r.pages[i] = pageAnon
	}
	r.as.subRSS(int64(freedRes))
	r.as.virtualPages.Add(int64(-len(r.pages)))
	r.freed = true
}

// Len returns the region's size in pages.
func (r *Region) Len() int { return len(r.pages) }

// Base returns the region's first simulated page number (its "address" in
// page units), useful for tests asserting distinct placement.
func (r *Region) Base() uint64 { return r.base }

// Touch simulates an access to page i. If the page is not resident it takes
// a demand-paging fault and becomes resident. Touching a dummy-file page is
// a bug in the caller's remap discipline; it is counted separately and also
// faults the page in so execution can continue.
func (r *Region) Touch(i int) {
	r.checkLive(i)
	switch r.pages[i] {
	case pageResident:
		return
	case pageDummy:
		r.as.dummyTouches.Add(1)
		fallthrough
	case pageAnon:
		r.pages[i] = pageResident
		r.faults++
		r.as.faults.Add(1)
		v := r.as.rss.Add(1)
		atomicMax(&r.as.maxRSS, v)
	}
}

// TouchRange touches pages [lo, hi).
func (r *Region) TouchRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		r.Touch(i)
	}
}

// Resident reports whether page i is resident.
func (r *Region) Resident(i int) bool {
	r.checkLive(i)
	return r.pages[i] == pageResident
}

// ResidentPages returns how many of the region's pages are resident.
func (r *Region) ResidentPages() int {
	n := 0
	for _, s := range r.pages {
		if s == pageResident {
			n++
		}
	}
	return n
}

// Madvise models madvise(MADV_DONTNEED) over pages [lo, hi): resident pages
// are freed immediately (the paper notes Linux frees eagerly) and will fault
// back in on the next Touch. Crucially it does NOT take the address-space
// lock, so concurrent Madvise calls on different stacks do not serialize —
// the property that makes it Fibril's unmap of choice.
func (r *Region) Madvise(lo, hi int) int {
	r.checkRange(lo, hi)
	r.as.madviseCalls.Add(1)
	freed := 0
	for i := lo; i < hi; i++ {
		if r.pages[i] == pageResident {
			r.pages[i] = pageAnon
			freed++
		}
	}
	if freed > 0 {
		r.as.subRSS(int64(freed))
		r.as.madvisedPages.Add(int64(freed))
	}
	return freed
}

// MapDummy models the alternative unmap: remapping [lo, hi) to an empty
// dummy file with mmap(MAP_FIXED). The virtual range is preserved, physical
// pages are freed, and the address-space lock is taken (serialized).
func (r *Region) MapDummy(lo, hi int) int {
	r.checkRange(lo, hi)
	r.as.lock()
	r.as.mu.Unlock()
	r.as.mmapCalls.Add(1)
	freed := 0
	for i := lo; i < hi; i++ {
		if r.pages[i] == pageResident {
			freed++
		}
		r.pages[i] = pageDummy
	}
	if freed > 0 {
		r.as.subRSS(int64(freed))
	}
	return freed
}

// RemapAnonymous models the remap needed after MapDummy: mmap the range
// anonymous again so it can be touched. Takes the address-space lock. After
// a Madvise-based unmap, remap is a no-op and this should not be called.
func (r *Region) RemapAnonymous(lo, hi int) {
	r.checkRange(lo, hi)
	r.as.lock()
	r.as.mu.Unlock()
	r.as.mmapCalls.Add(1)
	r.as.remapCalls.Add(1)
	for i := lo; i < hi; i++ {
		if r.pages[i] == pageDummy {
			r.pages[i] = pageAnon
		}
	}
}

// DummyPages returns how many of the region's pages are currently mapped
// to the dummy file (MapDummy without a matching RemapAnonymous).
func (r *Region) DummyPages() int {
	n := 0
	for _, p := range r.pages {
		if p == pageDummy {
			n++
		}
	}
	return n
}

func (r *Region) checkLive(i int) {
	if r.freed {
		panic("vm: use of unmapped region")
	}
	if i < 0 || i >= len(r.pages) {
		panic(fmt.Sprintf("vm: page %d out of range [0,%d)", i, len(r.pages)))
	}
}

func (r *Region) checkRange(lo, hi int) {
	if r.freed {
		panic("vm: use of unmapped region")
	}
	if lo < 0 || hi > len(r.pages) || lo > hi {
		panic(fmt.Sprintf("vm: range [%d,%d) out of [0,%d)", lo, hi, len(r.pages)))
	}
}

// atomicMax raises *a to at least v.
func atomicMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}
