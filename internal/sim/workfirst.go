// Work-first (continuation-stealing) engine — the discipline the paper's
// Fibril actually implements (§2, §4.3), as opposed to the help-first
// child-stealing engine in engine.go that mirrors the Go runtime's
// substitution.
//
// In work-first stealing:
//
//   - a fork pushes the PARENT'S CONTINUATION on the deque and the worker
//     descends into the child;
//   - a thief steals the oldest continuation — always the victim context's
//     bottom record, because steals remove continuations oldest-first —
//     and resumes the parent on its own stack while the parent's frame
//     stays put (the cactus stack: a context's records span stacks);
//   - when a worker finishes a fork child it pops its own deque: success
//     means the parent was never stolen (continue inline, the fast path);
//     an emptied context means this strand was severed — Listing 3's
//     schedule(): decrement the frame's strand count, and if strands
//     remain and we own the frame's stack, UNMAP the pages above the
//     frame and abandon the stack to it (the victim-side unmap);
//   - a join with outstanding strands suspends its context; the joiner is
//     usually a thief whose own stack holds none of the frame's pages, so
//     it keeps stealing without an unmap — why Table 2's unmaps < steals;
//   - the last strand to finish resumes the parked context on the frame's
//     home stack (remapped in the mmap ablation).
//
// Useful invariants (asserted below): steal order guarantees that a
// context is a single record when it suspends, and that a fork child with
// records below it always finds its parent's continuation in its own
// worker's deque.
package sim

import (
	"fmt"

	"fibril/internal/core"
	"fibril/internal/invoke"
	"fibril/internal/stack"
)

// wfFrame is the work-first fibril_t: it counts severed strands (the
// paper's count, kept as outstanding-children-of-steals).
type wfFrame struct {
	outstanding int        // severed strands still running
	suspended   bool       // a context is parked at this frame's join
	parked      *wfContext // the parked context
	depth       int32
	parent      *wfFrame
	home        *stack.Stack // stack holding the frame itself
	homeMark    int          // watermark of home at the frame's top
}

func (f *wfFrame) isDescendantOf(a *wfFrame) bool {
	for cur := f; cur != nil; cur = cur.parent {
		if cur == a {
			return true
		}
	}
	return false
}

// wfRecord is one activation record.
type wfRecord struct {
	task  invoke.Task
	seg   int
	sub   int
	depth int32

	frame  *wfFrame // the task's own frame
	notify *wfFrame // frame of the task that forked us (nil for calls/roots)

	viaFork bool // created by a fork

	// boundary marks a record whose completion ends a strand: the bottom
	// of every context (and, after inline adoption, the bottom of an
	// adopted group mid-context). boundTarget is the frame to notify —
	// nil only for the root strand, whose end is the whole computation's.
	boundary    bool
	boundTarget *wfFrame

	stk  *stack.Stack // stack holding this record's frame
	base int
}

// wfContext is an execution context: records (possibly spanning stacks)
// plus the current allocation stack. A context's records form call-chain
// segments: below any incomplete fork child sits its forking parent (whose
// continuation is live in a deque) — so a steal of that continuation takes
// the parent AND its call-ancestor prefix, down to the previous boundary.
type wfContext struct {
	recs       []*wfRecord
	cur        *stack.Stack // allocation stack; nil while parked
	lastFaults int64
	// pinned marks a context that has inline-adopted foreign work on top
	// of its stack (the leapfrog blocked join). Its continuations are no
	// longer stealable by other workers: the inline work's frames live
	// above a blocked frame on this very stack and must unwind strictly
	// nested — migration would fragment the stack. The owner still pops
	// its own continuations normally. Pinning is sound for leapfrogging
	// because an adopted frame must be a DESCENDANT of the blocked join,
	// so no context can ever bury (or transitively pin away) a strand its
	// own join awaits; for plain depth-restricted (TBB) stealing the same
	// construction admits cross-worker wait cycles, which is why the
	// work-first TBB join spins instead (see blockJoin).
	pinned bool
}

// wfCont is a deque entry: a continuation reference.
type wfCont struct {
	ctx   *wfContext
	rec   *wfRecord
	frame *wfFrame
	depth int32
}

// wfWorker is one work-first worker slot.
type wfWorker struct {
	id     int
	ctx    *wfContext
	deque  []*wfCont
	rng    uint64
	parked bool
	over   int64
}

func (w *wfWorker) nextRand() uint64 {
	x := w.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	w.rng = x
	return x * 0x2545F4914F6CDD1D
}

func (w *wfWorker) pushCont(c *wfCont) { w.deque = append(w.deque, c) }

func (w *wfWorker) popCont() (*wfCont, bool) {
	n := len(w.deque)
	if n == 0 {
		return nil, false
	}
	c := w.deque[n-1]
	w.deque[n-1] = nil
	w.deque = w.deque[:n-1]
	return c, true
}

func (w *wfWorker) stealCont(eligible func(*wfCont) bool) (*wfCont, bool) {
	if len(w.deque) == 0 {
		return nil, false
	}
	c := w.deque[0]
	if c.ctx.pinned {
		return nil, false // inline-stacked work must unwind in place
	}
	if eligible != nil && !eligible(c) {
		return nil, false
	}
	w.deque[0] = nil
	w.deque = w.deque[1:]
	return c, true
}

// wfDebugAdopt, when non-nil, observes every adoption (tests only).
var wfDebugAdopt func(into *wfContext, rec *wfRecord, prefix []*wfRecord)

// wfSim is the work-first engine, sharing the base simulator's config,
// address space, pool, event queue, and counters.
type wfSim struct {
	*sim
	wfWorkers []*wfWorker
	// curOwner maps each stack to the context currently allocating on it.
	// A stack may be retired to the pool only when it holds no frames AND
	// no context owns it as its allocation target — a context can own a
	// stack with zero bytes on it (its frames live on earlier stacks).
	curOwner map[*stack.Stack]*wfContext
}

// assignCur transfers the context's allocation stack.
func (ws *wfSim) assignCur(ctx *wfContext, stk *stack.Stack) {
	if ctx.cur != nil {
		delete(ws.curOwner, ctx.cur)
	}
	ctx.cur = stk
	if stk != nil {
		ws.curOwner[stk] = ctx
		ctx.lastFaults = stk.Faults()
	}
}

// dropCur detaches the context's allocation stack, retiring it to the pool
// if it holds no frames; otherwise it stays orphaned, pinned by the frames
// of records now living in other contexts, and is retired by whoever pops
// its last frame.
func (ws *wfSim) dropCur(now int64, ctx *wfContext) {
	stk := ctx.cur
	ws.assignCur(ctx, nil)
	if stk != nil && stk.Bytes() == 0 {
		ws.retireStack(now, stk)
	}
}

func (s *sim) runWorkFirst(tree invoke.Task) Result {
	ws := &wfSim{sim: s, curOwner: map[*stack.Stack]*wfContext{}}
	ws.wfWorkers = make([]*wfWorker, s.cfg.Workers)
	for i := range ws.wfWorkers {
		ws.wfWorkers[i] = &wfWorker{id: i, rng: s.cfg.Seed + uint64(i)*0x9E3779B9}
	}
	w0 := ws.wfWorkers[0]
	ctx := &wfContext{}
	ws.assignCur(ctx, s.takeStack())
	w0.ctx = ctx
	root := ws.pushWF(ctx, tree, nil, nil, 0, false)
	root.boundary = true // the root strand; boundTarget nil = computation end
	for i := range ws.wfWorkers {
		s.schedule(0, i)
	}
	for !s.done && len(s.eq) > 0 {
		e := popEvent(&s.eq)
		ws.step(e.w, e.t)
	}
	if !s.done {
		panic(fmt.Sprintf("sim(work-first): deadlock with %d workers (%d parked)",
			s.cfg.Workers, len(s.waiters)))
	}
	s.res.Strategy = s.cfg.Strategy
	s.res.Workers = s.cfg.Workers
	s.res.Makespan = s.makespan
	s.res.StacksCreated = s.created
	s.res.MaxStacksUsed = s.maxInUse
	s.res.VM = s.as.Snapshot()
	return s.res
}

func (ws *wfSim) step(wid int, now int64) {
	w := ws.wfWorkers[wid]
	if w.parked {
		return
	}
	if w.ctx == nil {
		ws.thieve(w, now)
		return
	}
	ws.advance(w, now)
}

// pushWF begins a task on the context's current stack.
func (ws *wfSim) pushWF(ctx *wfContext, t invoke.Task,
	notify, parent *wfFrame, depth int32, viaFork bool) *wfRecord {
	base, err := ctx.cur.Push(t.Frame)
	if err != nil {
		panic(fmt.Sprintf("sim(work-first): %s overflowed a %d-page stack: %v",
			ws.cfg.Strategy, ctx.cur.Capacity(), err))
	}
	r := &wfRecord{
		task: t, depth: depth, notify: notify, viaFork: viaFork,
		stk: ctx.cur, base: base,
		frame: &wfFrame{depth: depth, parent: parent,
			home: ctx.cur, homeMark: base + t.Frame},
	}
	ctx.recs = append(ctx.recs, r)
	ws.res.Tasks++
	if ws.cfg.OnTask != nil {
		ws.cfg.OnTask(t)
	}
	return r
}

func (ws *wfSim) chargeFaults(ctx *wfContext) int64 {
	if ctx.cur == nil {
		return 0
	}
	cur := ctx.cur.Faults()
	d := cur - ctx.lastFaults
	ctx.lastFaults = cur
	return d * ws.cfg.Cost.PageFault
}

// advance interprets the worker's context.
func (ws *wfSim) advance(w *wfWorker, now int64) {
	for {
		ctx := w.ctx
		r := ctx.recs[len(ctx.recs)-1]
		if r.seg >= len(r.task.Segs) {
			if r.frame.outstanding > 0 {
				if !ws.blockJoin(w, now, ctx, r) {
					return
				}
				continue
			}
			if !ws.complete(w, now, ctx, r) {
				return
			}
			continue
		}
		seg := &r.task.Segs[r.seg]
		switch r.sub {
		case 0:
			r.sub = 1
			dur := seg.Work + w.over + ws.chargeFaults(ctx)
			w.over = 0
			if dur > 0 {
				ws.schedule(now+dur, w.id)
				return
			}
		case 1: // synchronous call: same strand, new record
			r.sub = 2
			if seg.Call != nil {
				child := seg.Call()
				w.over += ws.cfg.Cost.TaskStart
				ws.pushWF(ctx, child, nil, r.frame, r.depth+1, false)
				continue
			}
		case 2: // fork: expose OUR continuation, descend into the child
			r.sub = 3
			if seg.Fork != nil {
				child := seg.Fork()
				ws.res.Forks++
				w.over += ws.cfg.Cost.forkCost(ws.cfg.Strategy)
				w.pushCont(&wfCont{ctx: ctx, rec: r, frame: r.frame, depth: r.depth})
				ws.pushWF(ctx, child, r.frame, r.frame, r.depth+1, true)
				continue
			}
		case 3:
			if seg.Join && r.frame.outstanding > 0 {
				if !ws.blockJoin(w, now, ctx, r) {
					return
				}
				continue
			}
			r.seg++
			r.sub = 0
		}
	}
}

// complete retires the context's finished top record. True = keep
// advancing on w.ctx (which may have changed); false = event scheduled.
func (ws *wfSim) complete(w *wfWorker, now int64, ctx *wfContext, r *wfRecord) bool {
	if r.stk.Bytes() < r.base {
		// A frame below live frames was popped earlier: the strict nesting
		// that pinning enforces has been violated somewhere.
		panic(fmt.Sprintf("sim(work-first): pop inversion: %s@%d base %d on stack %d with top %d",
			r.task.Name, r.depth, r.base, r.stk.ID(), r.stk.Bytes()))
	}
	r.stk.Pop(r.base)
	if r.stk != ctx.cur && r.stk.Bytes() == 0 && ws.curOwner[r.stk] == nil {
		// The record's frame was the last occupant of an abandoned stack
		// that no context allocates on: it can rejoin the pool.
		ws.retireStack(now, r.stk)
	}
	ctx.recs = ctx.recs[:len(ctx.recs)-1]

	if r.boundary {
		// A strand ends here.
		if r.boundTarget == nil {
			// The root strand: computation complete.
			if len(ctx.recs) == 0 {
				ws.dropCur(now, ctx)
				w.ctx = nil
			}
			ws.done = true
			ws.makespan = now
			return false
		}
		if len(ctx.recs) > 0 {
			// Inline-adopted strand (TBB/leapfrog) finished on top of our
			// records: those strategies never suspend, so just decrement.
			ws.inlineStrandEnd(r.boundTarget)
			return true
		}
		return ws.strandEndAsWorker(w, now, ctx, r.boundTarget)
	}

	if len(ctx.recs) == 0 {
		panic("sim(work-first): non-boundary record at context bottom")
	}
	if !r.viaFork {
		return true // plain call return: the caller below continues
	}
	// Fork-child return: the parent's continuation must be ours to pop
	// (if it had been stolen, the parent would not be below us).
	c, ok := w.popCont()
	if !ok || c.rec != ctx.recs[len(ctx.recs)-1] || c.ctx != ctx {
		panic("sim(work-first): continuation LIFO invariant violated")
	}
	return true
}

// inlineStrandEnd handles an adopted record's completion under the
// never-suspending strategies.
func (ws *wfSim) inlineStrandEnd(f *wfFrame) {
	f.outstanding--
	if f.outstanding == 0 && f.suspended {
		panic("sim(work-first): inline strand end hit a suspended frame")
	}
}

// strandEndAsWorker is Listing 3's schedule() on the worker whose context
// just emptied. Returns false (an event is always scheduled).
func (ws *wfSim) strandEndAsWorker(w *wfWorker, now int64, ctx *wfContext, f *wfFrame) bool {
	f.outstanding--
	if f.outstanding == 0 && f.suspended {
		// Resume the parked context (Listing 3 lines 68–75).
		f.suspended = false
		parked := f.parked
		f.parked = nil
		ws.res.Resumes++
		cost := ws.cfg.Cost.Resume
		switching := ctx.cur != f.home
		ws.dropCur(now, ctx)
		if switching && ws.cfg.Strategy == core.StrategyFibrilMMap {
			f.home.RemapAbove()
			cost += ws.serializedMMap(now+cost, int64(f.home.Capacity()-f.home.Pages()))
		}
		ws.assignCur(parked, f.home)
		w.ctx = parked
		ws.schedule(now+cost, w.id)
		return false
	}
	// Strands remain. If the frame lives on our stack, return its unused
	// pages and abandon the stack to the frame (lines 62–64); otherwise
	// our stack is empty and reusable.
	cost := int64(0)
	if ctx.cur == f.home {
		cost += ws.unmapAbandoned(now, ctx.cur)
	}
	ws.dropCur(now, ctx)
	w.ctx = nil
	ws.schedule(now+cost, w.id)
	return false
}

// unmapAbandoned returns a suspended stack's unused pages per the
// strategy and leaves the stack pinned to its live frames.
func (ws *wfSim) unmapAbandoned(now int64, stk *stack.Stack) int64 {
	switch ws.cfg.Strategy {
	case core.StrategyFibril:
		freed := stk.UnmapAbove()
		ws.res.Unmaps++
		ws.res.UnmappedPages += int64(freed)
		return ws.cfg.Cost.MadviseBase + int64(freed)*ws.cfg.Cost.UnmapPerPage
	case core.StrategyFibrilMMap:
		freed := stk.MapDummyAbove()
		ws.res.Unmaps++
		ws.res.UnmappedPages += int64(freed)
		return ws.serializedMMap(now, int64(freed))
	}
	return 0
}

// retireStack returns a stack to the pool; it must hold no live frames.
func (ws *wfSim) retireStack(now int64, stk *stack.Stack) {
	if stk == nil {
		return
	}
	if stk.Bytes() != 0 {
		panic(fmt.Sprintf("sim(work-first): retiring stack %d with %d live bytes",
			stk.ID(), stk.Bytes()))
	}
	// An abandoned stack can reach here with its pages still dummy-mapped:
	// its frames were popped by other contexts, so the resume-time remap
	// never ran. Remap before pooling — reusing a dummy-mapped stack would
	// read the dummy file instead of stack memory. (Watermark is zero here,
	// so RemapAbove covers the whole stack.)
	if ws.cfg.Strategy == core.StrategyFibrilMMap && stk.HasDummyPages() {
		stk.RemapAbove()
		ws.serializedMMap(now, int64(stk.Capacity()))
	}
	ws.releaseStack(now, stk)
}

// blockJoin handles a join with outstanding strands.
func (ws *wfSim) blockJoin(w *wfWorker, now int64, ctx *wfContext, r *wfRecord) bool {
	f := r.frame
	if f.outstanding == 0 {
		return true
	}
	switch ws.cfg.Strategy {
	case core.StrategyTBB:
		// Under work-first there is no sound way for a depth-restricted
		// blocked joiner to help inline: continuations are not
		// self-contained subtrees, so stacking them above the blocked
		// frame either fragments stacks (if they migrate) or — with the
		// strict-nesting pinning leapfrog uses — creates cross-worker
		// wait cycles that the depth-ordering argument no longer
		// excludes. The joiner therefore waits while base thieves make
		// progress: Sukha's lost utilization, measured directly.
		ws.schedule(now+ws.cfg.Cost.StealProbe*int64(len(ws.wfWorkers)), w.id)
		return false
	case core.StrategyLeapfrog:
		return ws.inlineSteal(w, now, ctx, func(c *wfCont) bool {
			return c.frame.isDescendantOf(f)
		})
	default:
		// Suspend. The joining record must be the context's top; records
		// below it (if any) are its call-ancestor glue.
		f.suspended = true
		f.parked = ctx
		ws.res.Suspends++
		cost := ws.cfg.Cost.Suspend
		if ctx.cur == f.home {
			// Second-phase joins of a resumed frame suspend on the
			// frame's own stack: victim-style unmap and abandon.
			cost += ws.unmapAbandoned(now+cost, ctx.cur)
		} else {
			// Thief-side join: our stack holds nothing of f.
			ws.retireStack(now, ctx.cur)
		}
		ctx.cur = nil
		w.ctx = nil
		ws.schedule(now+cost, w.id)
		return false
	}
}

// inlineSteal is the TBB/leapfrog blocked join: adopt an eligible
// continuation on top of the CURRENT stack.
func (ws *wfSim) inlineSteal(w *wfWorker, now int64, ctx *wfContext, eligible func(*wfCont) bool) bool {
	cost, c, ok := ws.stealSweep(w, eligible)
	if !ok {
		ws.schedule(now+cost, w.id)
		return false
	}
	w.over += cost + ws.cfg.Cost.TaskStart
	ws.adopt(ctx, c)
	ctx.pinned = true
	return true
}

// stealSweep probes every other worker once in random order for a
// continuation. A worker never steals from itself: in work-first, its own
// deque's entries are continuations of records in its own live context,
// and adopting one would alias the context with itself.
func (ws *wfSim) stealSweep(w *wfWorker, eligible func(*wfCont) bool) (int64, *wfCont, bool) {
	n := len(ws.wfWorkers)
	start := int(w.nextRand() % uint64(n))
	var cost int64
	for i := 0; i < n; i++ {
		victim := ws.wfWorkers[(start+i)%n]
		if victim == w {
			continue
		}
		ws.res.StealAttempts++
		if c, ok := victim.stealCont(eligible); ok {
			ws.res.Steals++
			return cost + ws.cfg.Cost.Steal, c, true
		}
		cost += ws.cfg.Cost.StealProbe
	}
	if cost == 0 {
		cost = ws.cfg.Cost.StealProbe
	}
	return cost, nil, false
}

// adopt splits the victim context at the stolen record: the adopter takes
// the stolen record together with its call-ancestor glue down to the
// record's strand boundary (those callers belong to the stolen strand —
// the continuation eventually returns into them). The victim keeps
// everything below the boundary (blocked lower groups, in inline-stacked
// contexts) and everything above the stolen record — the fork child
// subtree, which becomes a severed strand of the stolen frame.
//
// Live continuations always belong to the context's TOP group: lower
// groups are call-glue plus joins that resolved their forks before
// blocking. So the extracted slice is the top group's lower part.
func (ws *wfSim) adopt(into *wfContext, c *wfCont) {
	victim := c.ctx
	rec := c.rec
	idx := -1
	for i := len(victim.recs) - 1; i >= 0; i-- {
		if victim.recs[i] == rec {
			idx = i
			break
		}
	}
	if idx < 0 || idx == len(victim.recs)-1 {
		panic(fmt.Sprintf("sim(work-first): stolen continuation %s@%d at index %d of %d victim records",
			rec.task.Name, rec.depth, idx, len(victim.recs)))
	}
	// Walk down to the strand boundary that starts rec's group.
	b := idx
	for b > 0 && !victim.recs[b].boundary {
		b--
	}
	if !victim.recs[b].boundary {
		panic("sim(work-first): context bottom is not a strand boundary")
	}
	prefix := make([]*wfRecord, idx+1-b)
	copy(prefix, victim.recs[b:idx+1])
	rest := append(victim.recs[:b], victim.recs[idx+1:]...)
	victim.recs = rest
	// The fork child (now at position b) heads a severed strand whose
	// completion must notify the stolen frame.
	nb := victim.recs[b]
	nb.boundary = true
	nb.boundTarget = rec.frame
	rec.frame.outstanding++
	if wfDebugAdopt != nil {
		wfDebugAdopt(into, rec, prefix)
	}
	into.recs = append(into.recs, prefix...)
	// The resumed parent allocates on the adopter's stack from here on;
	// its frame stays on its home stack — a cactus branch.
	if rec.frame.home != nil && into.cur != nil && rec.frame.home != into.cur {
		rec.frame.home.BranchAt(into.cur, rec.frame.homeMark)
	}
}

// thieve: idle worker — acquire a stack, steal a continuation, adopt it
// as a fresh context.
func (ws *wfSim) thieve(w *wfWorker, now int64) {
	if ws.done {
		return
	}
	if !ws.stackAvailable() {
		w.parked = true
		ws.waiters = append(ws.waiters, w.id)
		ws.res.PoolStalls++
		return
	}
	cost, c, ok := ws.stealSweep(w, nil)
	if !ok {
		ws.schedule(now+cost, w.id)
		return
	}
	ctx := &wfContext{}
	ws.assignCur(ctx, ws.takeStack())
	w.over += ws.cfg.Cost.TaskStart
	if ws.cfg.Strategy == core.StrategyCilkM {
		// Cilk-M maps the stolen frame's stack prefix into the thief's
		// TLMM region: a per-steal cost linear in the prefix pages — the
		// trade the paper's §3 contrasts with Fibril's O(1) steal.
		pages := int64(c.rec.frame.homeMark+4095) / 4096
		w.over += ws.cfg.Cost.TLMMBase + pages*ws.cfg.Cost.TLMMPerPage
	}
	ws.adopt(ctx, c)
	w.ctx = ctx
	ws.schedule(now+cost, w.id)
}
