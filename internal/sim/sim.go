// Package sim is a deterministic discrete-event simulator of the Fibril
// work-stealing runtime and its baselines, executing invocation trees
// (internal/invoke) on P simulated workers.
//
// The evaluation machine of the paper is a 72-hardware-thread Haswell; the
// reproduction host cannot measure real speedup curves at that scale, so
// the simulator regenerates Figure 4 and Tables 2–4 mechanistically: the
// same scheduler state machine as internal/core (deques, randomized
// stealing, suspension with unmap, bounded pools, depth-restricted and
// leapfrog joins) driven by a cost model of the per-operation overheads,
// with stack pages accounted through the same internal/stack + internal/vm
// machinery as the real runtime. Simulated time is in abstract units of
// roughly a nanosecond.
//
// The simulator is single-threaded and fully deterministic for a given
// (tree, config) pair.
package sim

import (
	"container/heap"
	"fmt"

	"fibril/internal/core"
	"fibril/internal/invoke"
	"fibril/internal/stack"
	"fibril/internal/vm"
)

// CostModel gives the simulated duration of each scheduler operation, in
// time units (≈ns). Zero fields take the listed defaults.
//
// The fork-path defaults are calibrated against the paper's Figure 3: on
// fib — whose ~20ns nodes make overhead ratios visible — the measured
// single-thread ratios (Fibril 0.55, Cilk Plus 0.29, TBB 0.09 of serial)
// imply per-spawn overheads of roughly 0.8×, 2.5×, and 10× the node work.
type CostModel struct {
	Fork         int64 // Fibril fork: deque push + counter + 3 reg saves (default 8)
	ForkCilkPlus int64 // Cilk Plus full spawn-frame prologue surcharge (default 33)
	ForkTBB      int64 // TBB task allocation + refcount surcharge (default 186)
	TaskStart    int64 // dequeue + frame setup when a task begins (default 8)
	StealProbe   int64 // one failed steal probe (default 30)
	Steal        int64 // successful steal handshake (default 120)
	// Cache-complexity surcharges on a successful steal, after the
	// parallel cache-complexity analyses of work stealing (Gu et al.,
	// arXiv 2111.04994): a stolen task starts with a cold cache, so it
	// re-faults the working set its victim already paid for — unless the
	// thief keeps returning to the same victim, whose lines it has been
	// pulling all along. The ring-distance term models topology (adjacent
	// slots share L2/L3; far slots cross the interconnect).
	StealCold int64 // steal from a new victim: cold-cache refill (default 400)
	StealWarm int64 // repeat steal from the last victim (default 80)
	NearHop   int64 // per ring-distance hop between thief and victim (default 6)
	Suspend      int64 // suspension bookkeeping (default 150)
	Resume       int64 // resumption bookkeeping (default 150)
	MadviseBase  int64 // madvise(DONTNEED) syscall (default 800)
	MMapBase     int64 // serialized mmap/dummy-remap syscall (default 2000)
	UnmapPerPage int64 // per-page cost of returning memory (default 3)
	PageFault    int64 // one demand-paging soft fault (default 1200)
	TLMMBase     int64 // Cilk-M: per-steal prefix-mapping syscall (default 1500)
	TLMMPerPage  int64 // Cilk-M: per prefix page mapped at a steal (default 120)
}

func (c CostModel) withDefaults() CostModel {
	def := func(v *int64, d int64) {
		if *v == 0 {
			*v = d
		}
	}
	def(&c.Fork, 8)
	def(&c.ForkCilkPlus, 33)
	def(&c.ForkTBB, 186)
	def(&c.TaskStart, 8)
	def(&c.StealProbe, 30)
	def(&c.Steal, 120)
	def(&c.StealCold, 400)
	def(&c.StealWarm, 80)
	def(&c.NearHop, 6)
	def(&c.Suspend, 150)
	def(&c.Resume, 150)
	def(&c.MadviseBase, 800)
	def(&c.MMapBase, 2000)
	def(&c.UnmapPerPage, 3)
	def(&c.PageFault, 1200)
	def(&c.TLMMBase, 1500)
	def(&c.TLMMPerPage, 120)
	return c
}

// forkCost returns the per-fork cost under the given strategy.
func (c CostModel) forkCost(s core.Strategy) int64 {
	switch s {
	case core.StrategyCilkPlus:
		return c.Fork + c.ForkCilkPlus
	case core.StrategyTBB:
		return c.Fork + c.ForkTBB
	default:
		return c.Fork
	}
}

// Config parameterizes a simulation.
type Config struct {
	Workers    int           // P (default 1)
	Strategy   core.Strategy // scheduling policy (Goroutine is not simulable)
	StackPages int           // stack size (default stack.DefaultStackPages)
	StackLimit int           // bounded pool; 0 = strategy default
	Cost       CostModel
	Seed       uint64
	// StealPolicy selects the victim-choice discipline of internal/core's
	// pluggable steal policies: random (default, the pre-policy baseline
	// sweep), last-victim affinity, near-victim ring expansion, or
	// steal-half batching. Modelled in the help-first engine only.
	StealPolicy core.StealPolicy
	// WorkFirst selects the continuation-stealing engine — the paper's
	// actual Fibril discipline, where thieves steal the parent's
	// continuation and victims perform the unmaps. The default help-first
	// engine mirrors the Go runtime's child-stealing substitution.
	WorkFirst bool
	// OnTask, when non-nil, is called once per task instance at the moment
	// its activation record is pushed (i.e. the task starts executing), in
	// both engines. The simulator is single-threaded, so the callback needs
	// no synchronization. The conformance harness (internal/check) uses it
	// to collect the executed-task multiset for differential comparison
	// against the real runtime.
	OnTask func(t invoke.Task)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.StackPages <= 0 {
		c.StackPages = stack.DefaultStackPages
	}
	if c.StackLimit <= 0 && c.Strategy == core.StrategyCilkPlus {
		c.StackLimit = stack.CilkPlusDefaultLimit
	}
	if c.Seed == 0 {
		c.Seed = 0x9E3779B97F4A7C15
	}
	c.Cost = c.Cost.withDefaults()
	return c
}

// Result is the outcome of one simulated execution.
type Result struct {
	Strategy core.Strategy
	Workers  int

	Makespan int64 // simulated completion time Tp

	Tasks         int64 // task instances that began execution
	Forks         int64
	Steals        int64
	WarmSteals    int64 // raids whose victim repeated (charged StealWarm, not StealCold)
	ColdSteals    int64 // raids on a new victim (charged StealCold); StealHalf loot extras ride a raid and count as neither
	StealAttempts int64
	Suspends      int64
	Resumes       int64
	Unmaps        int64
	UnmappedPages int64
	PoolStalls    int64 // bounded-pool waits (Cilk Plus thieves stalling)

	StacksCreated int
	MaxStacksUsed int

	VM vm.Stats // page faults, RSS high-water, mmap/madvise counts
}

// MaxStackPagesPerWorker is S_P/P of Table 3: high-water resident stack
// pages divided by the worker count.
func (r Result) MaxStackPagesPerWorker() float64 {
	return float64(r.VM.MaxRSSPages) / float64(r.Workers)
}

// Speedup returns t1.Makespan / r.Makespan given the single-worker result.
func (r Result) Speedup(t1 Result) float64 {
	if r.Makespan == 0 {
		return 0
	}
	return float64(t1.Makespan) / float64(r.Makespan)
}

func (r Result) String() string {
	return fmt.Sprintf("%s P=%d Tp=%d steals=%d unmaps=%d faults=%d maxRSS=%dp stacks=%d",
		r.Strategy, r.Workers, r.Makespan, r.Steals, r.Unmaps,
		r.VM.PageFaults, r.VM.MaxRSSPages, r.StacksCreated)
}

// Run simulates the tree under the config and returns the result.
func Run(cfg Config, tree invoke.Task) Result {
	cfg = cfg.withDefaults()
	if cfg.Strategy == core.StrategyGoroutine {
		panic("sim: the goroutine baseline is a real-runtime-only strategy")
	}
	if cfg.Strategy == core.StrategyCilkM && !cfg.WorkFirst {
		panic("sim: the cilkm strategy is modelled in the work-first engine only")
	}
	if cfg.WorkFirst && cfg.StealPolicy != core.StealRandom {
		panic("sim: steal policies are modelled in the help-first engine only")
	}
	s := newSim(cfg)
	if cfg.WorkFirst {
		return s.runWorkFirst(tree)
	}
	return s.run(tree)
}

// popEvent removes the earliest event.
func popEvent(q *eventQueue) event { return heap.Pop(q).(event) }

// event is one scheduler event: worker w becomes actionable at time t.
type event struct {
	t   int64
	seq int64 // FIFO tie-break for determinism
	w   int
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any     { old := *q; n := len(old); v := old[n-1]; *q = old[:n-1]; return v }
func (q eventQueue) top() event    { return q[0] }

var _ heap.Interface = (*eventQueue)(nil)
