package sim

import (
	"testing"

	"fibril/internal/core"
)

// TestWFStacksFullyRetired checks the work-first engine's stack hygiene:
// when a run completes, every stack the pool created must be back in the
// free list (none orphaned forever) and hold zero live bytes — the
// cur-ownership bookkeeping that was the source of a double-allocation
// bug during development.
func TestWFStacksFullyRetired(t *testing.T) {
	for _, strat := range []core.Strategy{
		core.StrategyFibril, core.StrategyFibrilNoUnmap,
		core.StrategyCilkPlus, core.StrategyCilkM, core.StrategyLeapfrog,
	} {
		cfg := wfConfig(strat, 12)
		cfg = cfg.withDefaults()
		s := newSim(cfg)
		s.runWorkFirst(fibTree(20))
		if s.inUse != 0 {
			t.Errorf("%v: %d stacks still checked out after completion", strat, s.inUse)
		}
		if len(s.freeStacks) != s.created {
			t.Errorf("%v: created %d stacks but only %d returned to the pool",
				strat, s.created, len(s.freeStacks))
		}
		for _, st := range s.freeStacks {
			if st.Bytes() != 0 {
				t.Errorf("%v: pooled stack %d holds %d live bytes", strat, st.ID(), st.Bytes())
			}
		}
	}
}

// TestHelpFirstStacksFullyRetired is the same check for the help-first
// engine.
func TestHelpFirstStacksFullyRetired(t *testing.T) {
	cfg := Config{Workers: 12, Strategy: core.StrategyFibril}.withDefaults()
	s := newSim(cfg)
	s.run(fibTree(20))
	if s.inUse != 0 {
		t.Errorf("%d stacks still checked out after completion", s.inUse)
	}
	if len(s.freeStacks) != s.created {
		t.Errorf("created %d stacks but only %d returned", s.created, len(s.freeStacks))
	}
}
