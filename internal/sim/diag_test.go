package sim

import (
	"testing"

	"fibril/internal/bench"
	"fibril/internal/core"
)

// TestAdversarialDiagnostic logs the strategy separation on the
// adversarial workload; kept verbose-only for calibration.
func TestAdversarialDiagnostic(t *testing.T) {
	for _, arg := range []bench.Arg{bench.Adversarial.Default, bench.Adversarial.Paper} {
		t1 := Run(Config{Workers: 1, Strategy: core.StrategyFibril},
			bench.Adversarial.Tree(arg))
		for _, p := range []int{8, 16, 32} {
			for _, strat := range []core.Strategy{
				core.StrategyFibril, core.StrategyTBB, core.StrategyLeapfrog,
			} {
				r := Run(Config{Workers: p, Strategy: strat, StackPages: 4096},
					bench.Adversarial.Tree(arg))
				t.Logf("arg=%v P=%2d %-16v Tp=%9d speedup=%.2f steals=%d suspends=%d",
					arg, p, strat, r.Makespan, r.Speedup(t1), r.Steals, r.Suspends)
			}
		}
	}
}
