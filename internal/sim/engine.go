package sim

import (
	"container/heap"
	"fmt"

	"fibril/internal/core"
	"fibril/internal/invoke"
	"fibril/internal/stack"
	"fibril/internal/vm"
)

// pendingTask is a deque entry: a forked child awaiting execution.
type pendingTask struct {
	task   invoke.Task
	notify *frameSim // parent frame to decrement on completion
	depth  int32
}

// frameSim is the simulator's fibril_t: the per-task frame synchronizing
// forked children.
type frameSim struct {
	pending   int
	suspended bool
	fiber     *fiber // fiber to resume when the last child completes
	depth     int32
	parent    *frameSim // ancestry, for leapfrog eligibility
}

func (f *frameSim) isDescendantOf(a *frameSim) bool {
	for cur := f; cur != nil; cur = cur.parent {
		if cur == a {
			return true
		}
	}
	return false
}

// record is one activation record on a fiber: a task mid-execution.
type record struct {
	task   invoke.Task
	seg    int // current segment
	sub    int // 0 work, 1 call, 2 fork, 3 join / advance
	base   int // stack offset of this record's frame
	depth  int32
	frame  *frameSim // this task's own frame (children forked on it)
	notify *frameSim // frame to decrement when this task completes (nil = call)
}

// fiber is an execution context: a simulated stack plus its live records.
// It corresponds to a (goroutine, stack) pair of the real runtime.
type fiber struct {
	stack      *stack.Stack
	recs       []record
	lastFaults int64 // fault counter watermark for latency charging
}

// worker is one simulated worker slot.
type worker struct {
	id     int
	fiber  *fiber
	deque  []pendingTask
	rng    uint64
	parked bool  // waiting for a bounded pool's stack
	over   int64 // accrued overhead charged with the next work event
	// lastVictim is the slot of the last successful steal (-1 none); the
	// affinity policies anchor their probe orders on it and repeat steals
	// from it are charged the warm rather than the cold cache surcharge.
	// misses counts consecutive failed full sweeps; after victimPatience
	// of them the anchor is dropped — the same decay rule as the real
	// runtime's worker.victimMisses.
	lastVictim int
	misses     int
}

func (w *worker) nextRand() uint64 {
	x := w.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	w.rng = x
	return x * 0x2545F4914F6CDD1D
}

// deque operations: owner end is the back, thief end is the front.
func (w *worker) pushBottom(t pendingTask) { w.deque = append(w.deque, t) }

func (w *worker) popBottom() (pendingTask, bool) {
	n := len(w.deque)
	if n == 0 {
		return pendingTask{}, false
	}
	t := w.deque[n-1]
	w.deque[n-1] = pendingTask{}
	w.deque = w.deque[:n-1]
	return t, true
}

func (w *worker) stealTop(eligible func(pendingTask) bool) (pendingTask, bool) {
	if len(w.deque) == 0 {
		return pendingTask{}, false
	}
	t := w.deque[0]
	if eligible != nil && !eligible(t) {
		return pendingTask{}, false
	}
	w.deque[0] = pendingTask{}
	w.deque = w.deque[1:]
	return t, true
}

type sim struct {
	cfg Config
	as  *vm.AddressSpace

	workers []*worker
	eq      eventQueue
	seq     int64

	// stack pool
	freeStacks []*stack.Stack
	created    int
	inUse      int
	maxInUse   int
	waiters    []int

	mmapLockFree int64 // time the serialized address-space lock frees up

	// loose is the StealHalf overflow list: a batch steal deposits its
	// extra loot here (never into the thief's own deque — exactly the real
	// runtime's loot protocol), and any idle worker drains it before
	// sweeping. LIFO, like core's looseQueue.
	loose []pendingTask

	done     bool
	makespan int64
	res      Result
}

func newSim(cfg Config) *sim {
	s := &sim{cfg: cfg, as: vm.NewAddressSpace()}
	s.workers = make([]*worker, cfg.Workers)
	for i := range s.workers {
		s.workers[i] = &worker{id: i, rng: cfg.Seed + uint64(i)*0x9E3779B9, lastVictim: -1}
	}
	return s
}

func (s *sim) schedule(t int64, wid int) {
	s.seq++
	heap.Push(&s.eq, event{t: t, seq: s.seq, w: wid})
}

func (s *sim) run(tree invoke.Task) Result {
	w0 := s.workers[0]
	f := &fiber{stack: s.takeStack()}
	w0.fiber = f
	s.pushRecord(w0, f, tree, nil, nil, 0)
	for i := range s.workers {
		s.schedule(0, i)
	}
	for !s.done && len(s.eq) > 0 {
		e := popEvent(&s.eq)
		s.step(e.w, e.t)
	}
	if !s.done {
		panic(fmt.Sprintf("sim: deadlock with %d workers (%d parked)",
			s.cfg.Workers, len(s.waiters)))
	}
	s.res.Strategy = s.cfg.Strategy
	s.res.Workers = s.cfg.Workers
	s.res.Makespan = s.makespan
	s.res.StacksCreated = s.created
	s.res.MaxStacksUsed = s.maxInUse
	s.res.VM = s.as.Snapshot()
	return s.res
}

func (s *sim) step(wid int, now int64) {
	w := s.workers[wid]
	if w.parked {
		return // stale event; the worker is waiting on the stack pool
	}
	if w.fiber == nil {
		s.thieve(w, now)
		return
	}
	s.advance(w, now)
}

// advance interprets the worker's fiber until it schedules a timed event,
// blocks, or completes.
func (s *sim) advance(w *worker, now int64) {
	f := w.fiber
	for {
		r := &f.recs[len(f.recs)-1]
		if r.seg >= len(r.task.Segs) {
			// Implicit terminal join, then epilogue.
			if r.frame.pending > 0 {
				if !s.blockJoin(w, now, f, r.frame) {
					return
				}
				continue
			}
			notify := r.notify
			f.stack.Pop(r.base)
			f.recs = f.recs[:len(f.recs)-1]
			if len(f.recs) == 0 {
				s.fiberDone(w, now, f, notify)
				return
			}
			if notify != nil {
				s.inlineChildDone(notify)
			}
			continue
		}
		seg := &r.task.Segs[r.seg]
		switch r.sub {
		case 0: // serial work plus accrued overheads and fault latency
			r.sub = 1
			dur := seg.Work + w.over + s.takeFaultCost(f)
			w.over = 0
			if dur > 0 {
				s.schedule(now+dur, w.id)
				return
			}
		case 1: // synchronous call
			r.sub = 2
			if seg.Call != nil {
				child := seg.Call()
				w.over += s.cfg.Cost.TaskStart
				s.pushRecord(w, f, child, nil, r.frame, r.depth+1)
				continue
			}
		case 2: // fork
			r.sub = 3
			if seg.Fork != nil {
				child := seg.Fork()
				r.frame.pending++
				w.pushBottom(pendingTask{task: child, notify: r.frame, depth: r.depth + 1})
				w.over += s.cfg.Cost.forkCost(s.cfg.Strategy)
				s.res.Forks++
			}
		case 3: // join, then next segment
			if seg.Join && r.frame.pending > 0 {
				if !s.blockJoin(w, now, f, r.frame) {
					return
				}
				continue
			}
			r.seg++
			r.sub = 0
		}
	}
}

// pushRecord begins executing task on the fiber: push its simulated frame
// and activation record.
func (s *sim) pushRecord(w *worker, f *fiber, t invoke.Task, notify, parent *frameSim, depth int32) {
	base, err := f.stack.Push(t.Frame)
	if err != nil {
		panic(fmt.Sprintf("sim: %s strategy overflowed a %d-page stack at depth %d: %v",
			s.cfg.Strategy, f.stack.Capacity(), len(f.recs), err))
	}
	f.recs = append(f.recs, record{
		task:   t,
		base:   base,
		depth:  depth,
		frame:  &frameSim{depth: depth, parent: parent},
		notify: notify,
	})
	s.res.Tasks++
	if s.cfg.OnTask != nil {
		s.cfg.OnTask(t)
	}
}

// takeFaultCost charges the latency of page faults taken since the last
// check on this fiber's stack.
func (s *sim) takeFaultCost(f *fiber) int64 {
	cur := f.stack.Faults()
	d := cur - f.lastFaults
	f.lastFaults = cur
	return d * s.cfg.Cost.PageFault
}

// inlineChildDone handles completion of a task executed inline (popped
// from the own deque or inline-stolen). Its parent frame can never be
// suspended: locally popped tasks' parents live on this fiber's own active
// chain, and the inline-stealing strategies never suspend.
func (s *sim) inlineChildDone(fr *frameSim) {
	fr.pending--
	if fr.pending == 0 && fr.suspended {
		panic("sim: inline completion of a suspended frame's child")
	}
}

// blockJoin handles a join that cannot proceed. It returns true if the
// caller should keep advancing the fiber (a local or stolen task was
// pushed inline, or the join became satisfied), false if the fiber
// suspended or a retry was scheduled.
func (s *sim) blockJoin(w *worker, now int64, f *fiber, fr *frameSim) bool {
	if fr.pending == 0 {
		return true
	}
	// Drain the worker's own deque inline first — all strategies do.
	if pt, ok := w.popBottom(); ok {
		w.over += s.cfg.Cost.TaskStart
		s.pushRecord(w, f, pt.task, pt.notify, pt.notify, pt.depth)
		return true
	}
	switch s.cfg.Strategy {
	case core.StrategyTBB:
		return s.inlineSteal(w, now, f, func(pt pendingTask) bool {
			return pt.depth > fr.depth
		})
	case core.StrategyLeapfrog:
		return s.inlineSteal(w, now, f, func(pt pendingTask) bool {
			return pt.notify.isDescendantOf(fr)
		})
	default:
		s.suspendFiber(w, now, f, fr)
		return false
	}
}

// inlineSteal is the TBB/leapfrog blocked join: steal an eligible deeper
// task and run it on top of the current stack, or schedule a retry.
func (s *sim) inlineSteal(w *worker, now int64, f *fiber, eligible func(pendingTask) bool) bool {
	cost, pt, ok := s.stealSweep(w, eligible)
	if ok {
		w.over += cost + s.cfg.Cost.TaskStart
		s.pushRecord(w, f, pt.task, pt.notify, pt.notify, pt.depth)
		return true
	}
	s.schedule(now+cost, w.id)
	return false
}

// simLootCap bounds one batch steal's haul, mirroring core's lootCap.
const simLootCap = 8

// simVictimPatience is how many consecutive failed sweeps clear the
// affinity anchor, mirroring core's victimPatience.
const simVictimPatience = 2

// ringDist is the distance between worker slots i and j on the ring of n
// slots — the simulator's stand-in for topological distance (adjacent
// slots share cache; far slots cross the interconnect).
func ringDist(i, j, n int) int {
	d := i - j
	if d < 0 {
		d = -d
	}
	if n-d < d {
		d = n - d
	}
	return d
}

// stealCost is a successful steal's total charge for w robbing victim: the
// handshake, plus the warm surcharge when the victim repeats (its lines
// are still flowing to this thief) or the cold-cache refill when it does
// not, plus the topological distance term.
func (s *sim) stealCost(w, victim *worker) int64 {
	c := s.cfg.Cost.Steal
	if victim.id == w.lastVictim {
		c += s.cfg.Cost.StealWarm
	} else {
		c += s.cfg.Cost.StealCold
	}
	return c + int64(ringDist(w.id, victim.id, len(s.workers)))*s.cfg.Cost.NearHop
}

// batchSteal is the StealHalf extraction: take up to half the victim's
// deque (front first, bounded by simLootCap). The first task goes to the
// thief; the extras go to the global loose list for any idle worker to
// drain — never into the thief's own deque, exactly the real runtime's
// loot protocol (a blocked join popping foreign loot whose parent later
// suspends would violate the slot-handoff discipline). Each extra counts
// as a steal of its own, matching core's per-claim accounting.
func (s *sim) batchSteal(w, victim *worker) (pendingTask, bool) {
	if len(victim.deque) == 0 {
		return pendingTask{}, false
	}
	k := len(victim.deque) / 2
	if k < 1 {
		k = 1
	}
	if k > simLootCap {
		k = simLootCap
	}
	first := victim.deque[0]
	s.loose = append(s.loose, victim.deque[1:k]...)
	s.res.Steals += int64(k - 1)
	for i := 0; i < k; i++ {
		victim.deque[i] = pendingTask{}
	}
	victim.deque = victim.deque[k:]
	return first, true
}

// stealSweep probes every worker once, in the probe order of the
// configured StealPolicy (mirroring internal/core): every affinity policy
// pre-probes the last successful victim while it looks rich; random (and
// the affinity fallbacks) then run the plain random-start sweep, while
// near-victim expands outward from the thief's own slot by ring distance —
// near (cheap) victims first, and a probe order unique to each thief, so
// thieves sharing a hot victim do not herd. It returns the accumulated
// probe cost, and the stolen task if any probe succeeded. StealHalf
// batch-extracts only on unrestricted sweeps — restricted inline steals
// always take a single task, like the real runtime.
func (s *sim) stealSweep(w *worker, eligible func(pendingTask) bool) (int64, pendingTask, bool) {
	n := len(s.workers)
	pol := s.cfg.StealPolicy
	var cost int64
	probe := func(victim *worker) (pendingTask, bool) {
		s.res.StealAttempts++
		if pol == core.StealHalf && eligible == nil {
			return s.batchSteal(w, victim)
		}
		return victim.stealTop(eligible)
	}
	hit := func(victim *worker, pt pendingTask) (int64, pendingTask, bool) {
		s.res.Steals++
		if victim.id == w.lastVictim {
			s.res.WarmSteals++
		} else {
			s.res.ColdSteals++
		}
		cost += s.stealCost(w, victim)
		w.lastVictim = victim.id
		w.misses = 0
		return cost, pt, true
	}
	// The affinity policies probe the anchor first — but only while it is
	// rich (>= 2 tasks; draining a victim's last task forces its next
	// blocked join to suspend) — then fall back to their sweep, all
	// mirroring core's probe order.
	if pol != core.StealRandom && w.lastVictim >= 0 {
		victim := s.workers[w.lastVictim]
		if len(victim.deque) >= 2 {
			if pt, ok := probe(victim); ok {
				return hit(victim, pt)
			}
			cost += s.cfg.Cost.StealProbe
		}
	}
	switch pol {
	case core.StealNearVictim:
		for i := 1; i < n; i++ {
			step := (i + 1) / 2
			if i%2 == 0 {
				step = -step
			}
			victim := s.workers[((w.id+step)%n+n)%n]
			if victim.id == w.id {
				continue
			}
			if pt, ok := probe(victim); ok {
				return hit(victim, pt)
			}
			cost += s.cfg.Cost.StealProbe
		}
	default:
		start := int(w.nextRand() % uint64(n))
		for i := 0; i < n; i++ {
			victim := s.workers[(start+i)%n]
			if pt, ok := probe(victim); ok {
				return hit(victim, pt)
			}
			cost += s.cfg.Cost.StealProbe
		}
	}
	if cost == 0 {
		cost = s.cfg.Cost.StealProbe
	}
	w.misses++
	if w.misses >= simVictimPatience {
		w.lastVictim = -1
		w.misses = 0
	}
	return cost, pendingTask{}, false
}

// suspendFiber is Listing 3's suspension path: publish the suspension,
// return the unused pages of the stack per the strategy, and turn the
// worker into a thief.
func (s *sim) suspendFiber(w *worker, now int64, f *fiber, fr *frameSim) {
	fr.suspended = true
	fr.fiber = f
	s.res.Suspends++
	cost := s.cfg.Cost.Suspend
	switch s.cfg.Strategy {
	case core.StrategyFibril:
		freed := f.stack.UnmapAbove()
		s.res.Unmaps++
		s.res.UnmappedPages += int64(freed)
		cost += s.cfg.Cost.MadviseBase + int64(freed)*s.cfg.Cost.UnmapPerPage
	case core.StrategyFibrilMMap:
		freed := f.stack.MapDummyAbove()
		s.res.Unmaps++
		s.res.UnmappedPages += int64(freed)
		cost += s.serializedMMap(now+cost, int64(freed))
	}
	w.fiber = nil
	s.schedule(now+cost, w.id)
}

// serializedMMap models an address-space mutation that must hold the
// per-process lock: the caller waits for the lock, then holds it for the
// syscall's duration. It returns the caller's total extra latency.
func (s *sim) serializedMMap(ready int64, pages int64) int64 {
	start := ready
	if s.mmapLockFree > start {
		start = s.mmapLockFree
	}
	hold := s.cfg.Cost.MMapBase + pages*s.cfg.Cost.UnmapPerPage
	s.mmapLockFree = start + hold
	return (start + hold) - ready
}

// fiberDone retires a completed fiber: its stack returns to the pool and
// its root task's parent frame is notified, possibly resuming a suspended
// fiber on this worker (the slot handoff of the real runtime).
func (s *sim) fiberDone(w *worker, now int64, f *fiber, notify *frameSim) {
	s.releaseStack(now, f.stack)
	w.fiber = nil
	if notify == nil {
		s.done = true
		s.makespan = now
		return
	}
	notify.pending--
	if notify.pending == 0 && notify.suspended {
		notify.suspended = false
		rf := notify.fiber
		notify.fiber = nil
		w.fiber = rf
		s.res.Resumes++
		cost := s.cfg.Cost.Resume
		if s.cfg.Strategy == core.StrategyFibrilMMap {
			rf.stack.RemapAbove()
			cost += s.serializedMMap(now+cost, int64(rf.stack.Capacity()-rf.stack.Pages()))
		}
		s.schedule(now+cost, w.id)
		return
	}
	s.schedule(now, w.id) // become a thief immediately
}

// thieve is an idle worker's turn: acquire a stack (bounded pools may park
// the worker — the Cilk Plus stall), then sweep for a steal.
func (s *sim) thieve(w *worker, now int64) {
	if s.done {
		return
	}
	if !s.stackAvailable() {
		w.parked = true
		s.waiters = append(s.waiters, w.id)
		s.res.PoolStalls++
		return
	}
	// Drain the StealHalf loose list before sweeping: the extraction
	// handshake was already paid by the batch thief, so loot costs only
	// the task start.
	if n := len(s.loose); n > 0 {
		pt := s.loose[n-1]
		s.loose[n-1] = pendingTask{}
		s.loose = s.loose[:n-1]
		f := &fiber{stack: s.takeStack()}
		w.fiber = f
		w.over += s.cfg.Cost.TaskStart
		s.pushRecord(w, f, pt.task, pt.notify, pt.notify, pt.depth)
		s.schedule(now, w.id)
		return
	}
	cost, pt, ok := s.stealSweep(w, nil)
	if !ok {
		s.schedule(now+cost, w.id)
		return
	}
	f := &fiber{stack: s.takeStack()}
	w.fiber = f
	w.over += s.cfg.Cost.TaskStart
	s.pushRecord(w, f, pt.task, pt.notify, pt.notify, pt.depth)
	s.schedule(now+cost, w.id)
}

// --- stack pool ---

func (s *sim) stackAvailable() bool {
	return len(s.freeStacks) > 0 || s.cfg.StackLimit == 0 || s.created < s.cfg.StackLimit
}

func (s *sim) takeStack() *stack.Stack {
	var st *stack.Stack
	if n := len(s.freeStacks); n > 0 {
		st = s.freeStacks[n-1]
		s.freeStacks = s.freeStacks[:n-1]
	} else {
		s.created++
		var err error
		st, err = stack.New(s.as, s.cfg.StackPages, s.created)
		if err != nil {
			panic("sim: cannot map stack: " + err.Error())
		}
	}
	s.inUse++
	if s.inUse > s.maxInUse {
		s.maxInUse = s.inUse
	}
	return st
}

func (s *sim) releaseStack(now int64, st *stack.Stack) {
	st.SetWatermark(0)
	st.ClearBranch()
	s.freeStacks = append(s.freeStacks, st)
	s.inUse--
	if len(s.waiters) > 0 {
		wid := s.waiters[0]
		s.waiters = s.waiters[1:]
		s.workers[wid].parked = false
		s.schedule(now, wid)
	}
}
