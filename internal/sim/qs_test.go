package sim

import (
	"testing"
	"time"

	"fibril/internal/bench"
	"fibril/internal/core"
)

// TestQSWFTBBCompletes pins the former livelock: quicksort under
// work-first depth-restricted (TBB) stealing at P=24 must terminate.
func TestQSWFTBBCompletes(t *testing.T) {
	s := bench.Get("quicksort")
	done := make(chan Result, 1)
	go func() {
		done <- Run(Config{Workers: 24, Strategy: core.StrategyTBB,
			StackPages: 2048, WorkFirst: true}, s.Tree(s.Sim))
	}()
	select {
	case r := <-done:
		if r.Forks == 0 {
			t.Error("no forks executed")
		}
	case <-time.After(60 * time.Second):
		t.Fatal("work-first TBB quicksort livelocked")
	}
}
