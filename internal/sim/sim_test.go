package sim

import (
	"testing"

	"fibril/internal/bench"
	"fibril/internal/core"
	"fibril/internal/invoke"
	"fibril/internal/vm"
)

func fibTree(n int) invoke.Task { return bench.Fib.Tree(bench.Arg{N: n}) }

func TestSingleWorkerExecutesAllWork(t *testing.T) {
	tree := fibTree(15)
	m := invoke.Analyze(fibTree(15))
	r := Run(Config{Workers: 1, Strategy: core.StrategyFibril}, tree)
	if r.Makespan < m.Work {
		t.Errorf("makespan %d < work %d", r.Makespan, m.Work)
	}
	if r.Steals != 0 || r.Suspends != 0 {
		t.Errorf("P=1 run stole %d / suspended %d", r.Steals, r.Suspends)
	}
	if r.Forks != m.Forks {
		t.Errorf("simulated forks %d != tree forks %d", r.Forks, m.Forks)
	}
	if r.StacksCreated != 1 {
		t.Errorf("P=1 created %d stacks", r.StacksCreated)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Workers: 8, Strategy: core.StrategyFibril}
	a := Run(cfg, fibTree(16))
	b := Run(cfg, fibTree(16))
	if a != b {
		t.Errorf("two identical runs differ:\n%+v\n%+v", a, b)
	}
}

func TestSpeedupGrowsWithWorkers(t *testing.T) {
	tree := func() invoke.Task { return fibTree(22) }
	t1 := Run(Config{Workers: 1, Strategy: core.StrategyFibril}, tree())
	t4 := Run(Config{Workers: 4, Strategy: core.StrategyFibril}, tree())
	t16 := Run(Config{Workers: 16, Strategy: core.StrategyFibril}, tree())
	s4, s16 := t4.Speedup(t1), t16.Speedup(t1)
	if s4 < 2.0 {
		t.Errorf("P=4 speedup %.2f < 2", s4)
	}
	if s16 < s4 {
		t.Errorf("P=16 speedup %.2f < P=4 speedup %.2f", s16, s4)
	}
	if s16 > 16.01 {
		t.Errorf("P=16 speedup %.2f is superlinear — accounting bug", s16)
	}
}

func TestGreedyLowerBounds(t *testing.T) {
	// Tp ≥ max(T1/P, T∞) must hold for any scheduler.
	m := invoke.Analyze(fibTree(18))
	for _, p := range []int{2, 8, 32} {
		r := Run(Config{Workers: p, Strategy: core.StrategyFibril}, fibTree(18))
		if r.Makespan < m.Work/int64(p) {
			t.Errorf("P=%d: Tp=%d < T1/P=%d", p, r.Makespan, m.Work/int64(p))
		}
		if r.Makespan < m.Span {
			t.Errorf("P=%d: Tp=%d < T∞=%d", p, r.Makespan, m.Span)
		}
	}
}

func TestBlumofeLeisersonTimeBound(t *testing.T) {
	// Tp ≤ T1'/P + c∞·T∞' — the bound of Theorem 4.3 stated against
	// overhead-inclusive work and span: T1' adds the per-task and per-fork
	// scheduler costs that the simulator charges (they parallelize like
	// work), and T∞' adds per-level scheduling costs along the critical
	// path. c∞ is generous; the point is the SHAPE (no blow-up at high P).
	cost := CostModel{}.withDefaults()
	const cInf = 16
	for _, name := range []string{"fib", "nqueens", "quicksort", "heat"} {
		s := bench.Get(name)
		m := invoke.Analyze(s.Tree(s.Default))
		perLevel := cost.TaskStart + cost.Fork + cost.Steal + cost.StealCold +
			36*cost.NearHop + cost.Suspend +
			cost.MadviseBase + cost.Resume + 4*cost.PageFault
		work := m.Work + m.Tasks*cost.TaskStart + m.Forks*cost.Fork
		span := m.Span + int64(m.CallDepth)*perLevel
		for _, p := range []int{4, 16, 72} {
			r := Run(Config{Workers: p, Strategy: core.StrategyFibril}, s.Tree(s.Default))
			bound := work/int64(p) + cInf*span
			if r.Makespan > bound {
				t.Errorf("%s P=%d: Tp=%d > T1'/P + %d·T∞' = %d",
					name, p, r.Makespan, cInf, bound)
			}
		}
	}
}

func TestSuspendResumeBalance(t *testing.T) {
	for _, strat := range []core.Strategy{
		core.StrategyFibril, core.StrategyFibrilNoUnmap,
		core.StrategyFibrilMMap, core.StrategyCilkPlus,
	} {
		r := Run(Config{Workers: 8, Strategy: strat}, fibTree(20))
		if r.Suspends != r.Resumes {
			t.Errorf("%v: suspends %d != resumes %d", strat, r.Suspends, r.Resumes)
		}
	}
}

func TestUnmapAccounting(t *testing.T) {
	r := Run(Config{Workers: 8, Strategy: core.StrategyFibril}, fibTree(20))
	if r.Unmaps != r.Suspends {
		t.Errorf("fibril: unmaps %d != suspends %d", r.Unmaps, r.Suspends)
	}
	if r.Unmaps > r.Steals {
		t.Errorf("unmaps %d > steals %d — violates the paper's Table 2 relation", r.Unmaps, r.Steals)
	}
	nr := Run(Config{Workers: 8, Strategy: core.StrategyFibrilNoUnmap}, fibTree(20))
	if nr.Unmaps != 0 || nr.VM.MadviseCalls != 0 {
		t.Errorf("no-unmap variant unmapped: %d/%d", nr.Unmaps, nr.VM.MadviseCalls)
	}
}

func TestUnmapReducesResidency(t *testing.T) {
	// The whole point of the paper: with unmap, high-water RSS stays near
	// the P(S1+D) bound; without it, pooled and suspended stacks keep
	// their pages. Use a deep spawn chain to magnify the difference.
	tree := func() invoke.Task { return bench.Get("quicksort").Tree(bench.Arg{N: 200_000}) }
	with := Run(Config{Workers: 16, Strategy: core.StrategyFibril}, tree())
	without := Run(Config{Workers: 16, Strategy: core.StrategyFibrilNoUnmap}, tree())
	if with.VM.MaxRSSPages >= without.VM.MaxRSSPages {
		t.Errorf("unmap did not reduce max RSS: with=%d without=%d pages",
			with.VM.MaxRSSPages, without.VM.MaxRSSPages)
	}
}

func TestTheorem42PhysicalBound(t *testing.T) {
	// Sp ≤ P(S1+D) pages for the Fibril strategy, every benchmark.
	for _, s := range bench.All() {
		m := invoke.Analyze(s.Tree(s.Default))
		s1 := vm.PageAlign(int(m.MaxStackBytes))
		d := m.FibrilDepth
		for _, p := range []int{8, 72} {
			r := Run(Config{Workers: p, Strategy: core.StrategyFibril}, s.Tree(s.Default))
			bound := int64(p) * int64(s1+d)
			if r.VM.MaxRSSPages > bound {
				t.Errorf("%s P=%d: maxRSS %d pages > P(S1+D) = %d (S1=%d D=%d)",
					s.Name, p, r.VM.MaxRSSPages, bound, s1, d)
			}
		}
	}
}

func TestTheorem41VirtualBound(t *testing.T) {
	// Each root-to-leaf path spans ≤ D stacks and there are ≤ P busy
	// leaves, so at most P·(D+1) stacks are ever simultaneously in use.
	for _, s := range bench.All() {
		m := invoke.Analyze(s.Tree(s.Default))
		for _, p := range []int{8, 72} {
			r := Run(Config{Workers: p, Strategy: core.StrategyFibril}, s.Tree(s.Default))
			if max := p * (m.FibrilDepth + 1); r.MaxStacksUsed > max {
				t.Errorf("%s P=%d: %d stacks in use > P(D+1) = %d",
					s.Name, p, r.MaxStacksUsed, max)
			}
		}
	}
}

func TestDepthRestrictedPathology(t *testing.T) {
	// On the adversarial workload, unrestricted stealing (Fibril) must
	// clearly beat depth-restricted (TBB) — the direction of Sukha's lower
	// bound. Note the bound's full serialization applies to *work-first*
	// schedulers; this engine's help-first joins drain local work before
	// blocking, which softens (but does not remove) the pathology — see
	// EXPERIMENTS.md.
	tree := func() invoke.Task { return bench.Adversarial.Tree(bench.Adversarial.Default) }
	p := 16
	fib1 := Run(Config{Workers: 1, Strategy: core.StrategyFibril}, tree())
	fibP := Run(Config{Workers: p, Strategy: core.StrategyFibril}, tree())
	tbbP := Run(Config{Workers: p, Strategy: core.StrategyTBB, StackPages: 4096}, tree())
	sFib, sTBB := fibP.Speedup(fib1), tbbP.Speedup(fib1)
	if sFib < 1.2*sTBB {
		t.Errorf("adversarial P=%d: fibril speedup %.2f not > 1.2× tbb %.2f", p, sFib, sTBB)
	}
}

func TestInlineStealersUseOneStackPerWorker(t *testing.T) {
	for _, strat := range []core.Strategy{core.StrategyTBB, core.StrategyLeapfrog} {
		r := Run(Config{Workers: 8, Strategy: strat, StackPages: 4096}, fibTree(20))
		if r.StacksCreated > 8 {
			t.Errorf("%v created %d stacks for 8 workers", strat, r.StacksCreated)
		}
		if r.Suspends != 0 {
			t.Errorf("%v suspended %d times", strat, r.Suspends)
		}
	}
}

func TestMMapSerializationCostsMore(t *testing.T) {
	// Steal-heavy workload at high P: the serialized-mmap unmap must be
	// slower than lock-free madvise — the design argument of §4.3.
	tree := func() invoke.Task { return fibTree(22) }
	madv := Run(Config{Workers: 32, Strategy: core.StrategyFibril}, tree())
	mm := Run(Config{Workers: 32, Strategy: core.StrategyFibrilMMap}, tree())
	if mm.Makespan <= madv.Makespan {
		t.Errorf("mmap-based unmap (%d) not slower than madvise (%d)",
			mm.Makespan, madv.Makespan)
	}
}

func TestCilkPlusBoundedPoolStalls(t *testing.T) {
	// A tight stack limit forces thieves to refrain from stealing.
	tree := func() invoke.Task { return fibTree(20) }
	tight := Run(Config{Workers: 8, Strategy: core.StrategyCilkPlus, StackLimit: 9}, tree())
	roomy := Run(Config{Workers: 8, Strategy: core.StrategyCilkPlus, StackLimit: 2400}, tree())
	if tight.PoolStalls == 0 {
		t.Error("tight pool recorded no stalls")
	}
	if tight.Makespan < roomy.Makespan {
		t.Errorf("tight pool (%d) faster than roomy pool (%d)", tight.Makespan, roomy.Makespan)
	}
	if tight.StacksCreated > 9 {
		t.Errorf("bounded pool created %d stacks, limit 9", tight.StacksCreated)
	}
}

// deepFrameTree builds a spawn chain with page-sized frames where every
// task first CALLS a deep serial arm (touching many pages that then pop,
// leaving resident pages above the watermark) and then forks and joins —
// so a suspension has real pages to unmap and a resumption refaults them.
func deepFrameTree(depth int) invoke.Task {
	if depth == 0 {
		return invoke.Task{Frame: 8192, Segs: []invoke.Seg{{Work: 400}}}
	}
	return invoke.Task{Frame: 8192, Segs: []invoke.Seg{
		{Work: 5, Call: func() invoke.Task { return serialArm(24) }},
		{Fork: func() invoke.Task { return deepFrameTree(depth - 1) }},
		{Work: 120, Join: true},
		{Work: 5, Call: func() invoke.Task { return serialArm(24) }},
	}}
}

func serialArm(depth int) invoke.Task {
	if depth == 0 {
		return invoke.Task{Frame: 8192, Segs: []invoke.Seg{{Work: 4}}}
	}
	return invoke.Task{Frame: 8192, Segs: []invoke.Seg{
		{Work: 1, Call: func() invoke.Task { return serialArm(depth - 1) }},
	}}
}

func TestPageFaultsIncreaseWithUnmap(t *testing.T) {
	// Table 2: Fibril's unmap increases page faults relative to no-unmap,
	// because pages returned to the OS fault back in when the suspended
	// frame resumes and pushes new frames.
	with := Run(Config{Workers: 8, Strategy: core.StrategyFibril}, deepFrameTree(60))
	without := Run(Config{Workers: 8, Strategy: core.StrategyFibrilNoUnmap}, deepFrameTree(60))
	if with.UnmappedPages == 0 {
		t.Fatal("workload produced no unmapped pages; test is vacuous")
	}
	if with.VM.PageFaults <= without.VM.PageFaults {
		t.Errorf("faults with unmap (%d) not above without (%d)",
			with.VM.PageFaults, without.VM.PageFaults)
	}
}

func TestAllStrategiesCompleteAllBenchmarks(t *testing.T) {
	strategies := []core.Strategy{
		core.StrategyFibril, core.StrategyFibrilNoUnmap, core.StrategyFibrilMMap,
		core.StrategyCilkPlus, core.StrategyTBB, core.StrategyLeapfrog,
	}
	for _, s := range bench.All() {
		want := invoke.Analyze(s.Tree(s.Default)).Forks
		for _, strat := range strategies {
			r := Run(Config{Workers: 6, Strategy: strat, StackPages: 8192}, s.Tree(s.Default))
			if s.Name == "knapsack" {
				// B&B speculation is schedule-dependent (shared incumbent):
				// the fork count varies by strategy, but never below the
				// serial certificate and never absurdly above it.
				if r.Forks == 0 || r.Forks > 50*want {
					t.Errorf("knapsack/%v: %d forks vs serial %d", strat, r.Forks, want)
				}
				continue
			}
			if r.Forks != want {
				t.Errorf("%s/%v: executed %d forks, tree has %d", s.Name, strat, r.Forks, want)
			}
		}
	}
}
