package sim

import (
	"testing"

	"fibril/internal/bench"
	"fibril/internal/core"
	"fibril/internal/invoke"
	"fibril/internal/vm"
)

func wfConfig(strat core.Strategy, p int) Config {
	cfg := Config{Workers: p, Strategy: strat, WorkFirst: true}
	if strat == core.StrategyTBB || strat == core.StrategyLeapfrog {
		cfg.StackPages = 2048
	}
	return cfg
}

func TestWFSingleWorkerExecutesAllWork(t *testing.T) {
	m := invoke.Analyze(fibTree(15))
	r := Run(wfConfig(core.StrategyFibril, 1), fibTree(15))
	if r.Makespan < m.Work {
		t.Errorf("makespan %d < work %d", r.Makespan, m.Work)
	}
	if r.Steals != 0 || r.Suspends != 0 || r.Unmaps != 0 {
		t.Errorf("P=1 stole %d / suspended %d / unmapped %d", r.Steals, r.Suspends, r.Unmaps)
	}
	if r.Forks != m.Forks {
		t.Errorf("forks %d != %d", r.Forks, m.Forks)
	}
	if r.StacksCreated != 1 {
		t.Errorf("stacks = %d", r.StacksCreated)
	}
}

func TestWFDeterminism(t *testing.T) {
	a := Run(wfConfig(core.StrategyFibril, 8), fibTree(16))
	b := Run(wfConfig(core.StrategyFibril, 8), fibTree(16))
	if a != b {
		t.Errorf("two identical runs differ:\n%+v\n%+v", a, b)
	}
}

func TestWFAllBenchmarksAllStrategies(t *testing.T) {
	strategies := []core.Strategy{
		core.StrategyFibril, core.StrategyFibrilNoUnmap, core.StrategyFibrilMMap,
		core.StrategyCilkPlus, core.StrategyCilkM, core.StrategyTBB,
		core.StrategyLeapfrog,
	}
	for _, s := range bench.All() {
		want := invoke.Analyze(s.Tree(s.Default)).Forks
		for _, strat := range strategies {
			cfg := wfConfig(strat, 6)
			cfg.StackPages = 8192
			r := Run(cfg, s.Tree(s.Default))
			if s.Name == "knapsack" {
				if r.Forks == 0 {
					t.Errorf("knapsack/%v: no forks", strat)
				}
				continue
			}
			if r.Forks != want {
				t.Errorf("%s/%v: %d forks, tree has %d", s.Name, strat, r.Forks, want)
			}
		}
	}
}

func TestWFSpeedupGrows(t *testing.T) {
	t1 := Run(wfConfig(core.StrategyFibril, 1), fibTree(22))
	t4 := Run(wfConfig(core.StrategyFibril, 4), fibTree(22))
	t16 := Run(wfConfig(core.StrategyFibril, 16), fibTree(22))
	s4, s16 := t4.Speedup(t1), t16.Speedup(t1)
	if s4 < 2.0 {
		t.Errorf("P=4 speedup %.2f", s4)
	}
	if s16 < s4 || s16 > 16.01 {
		t.Errorf("P=16 speedup %.2f (P=4: %.2f)", s16, s4)
	}
}

func TestWFUnmapsAtMostSteals(t *testing.T) {
	// In work-first the victim unmaps only when the finisher loses the
	// race — the paper's Table 2 observation that unmaps < steals.
	r := Run(wfConfig(core.StrategyFibril, 16), fibTree(20))
	if r.Unmaps > r.Steals {
		t.Errorf("unmaps %d > steals %d", r.Unmaps, r.Steals)
	}
	if r.Suspends != r.Resumes {
		t.Errorf("suspends %d != resumes %d", r.Suspends, r.Resumes)
	}
}

func TestWFTheorem42PhysicalBound(t *testing.T) {
	for _, s := range bench.All() {
		m := invoke.Analyze(s.Tree(s.Default))
		s1 := vm.PageAlign(int(m.MaxStackBytes))
		d := m.FibrilDepth
		for _, p := range []int{8, 72} {
			r := Run(wfConfig(core.StrategyFibril, p), s.Tree(s.Default))
			bound := int64(p) * int64(s1+d)
			if r.VM.MaxRSSPages > bound {
				t.Errorf("%s P=%d: maxRSS %d > P(S1+D)=%d", s.Name, p, r.VM.MaxRSSPages, bound)
			}
		}
	}
}

func TestWFGreedyLowerBounds(t *testing.T) {
	m := invoke.Analyze(fibTree(18))
	for _, p := range []int{2, 8, 32} {
		r := Run(wfConfig(core.StrategyFibril, p), fibTree(18))
		if r.Makespan < m.Work/int64(p) || r.Makespan < m.Span {
			t.Errorf("P=%d: Tp=%d below greedy bounds (T1=%d T∞=%d)",
				p, r.Makespan, m.Work, m.Span)
		}
	}
}

// TestWFDepthRestrictionBitesHarder verifies the semantic claim of
// DESIGN.md: under work-first stealing, deques hold *ancestor
// continuations* (shallow), so a deep blocked TBB joiner finds almost
// nothing eligible — Sukha's pathology appears on ordinary trees like
// fib, not just the engineered adversarial workload.
func TestWFDepthRestrictionBitesHarder(t *testing.T) {
	p := 16
	t1 := Run(wfConfig(core.StrategyFibril, 1), fibTree(22))
	fib := Run(wfConfig(core.StrategyFibril, p), fibTree(22))
	tbb := Run(wfConfig(core.StrategyTBB, p), fibTree(22))
	sFib, sTBB := fib.Speedup(t1), tbb.Speedup(t1)
	if sFib < 1.5*sTBB {
		t.Errorf("work-first fib P=%d: fibril %.2f not ≥ 1.5× tbb %.2f", p, sFib, sTBB)
	}
	// The same comparison under help-first is much closer (the drain-first
	// join hides the restriction); see the help-first suite.
}

func TestWFVictimSideUnmapAccounting(t *testing.T) {
	// All unmap calls must come with a suspension or a severed strand —
	// never exceed steals + suspends.
	r := Run(wfConfig(core.StrategyFibril, 16), fibTree(22))
	if r.Unmaps > r.Steals+r.Suspends {
		t.Errorf("unmaps %d > steals %d + suspends %d", r.Unmaps, r.Steals, r.Suspends)
	}
	if r.Steals == 0 {
		t.Error("no steals at P=16; test vacuous")
	}
}

func TestWFMMapSlowerThanMadvise(t *testing.T) {
	madv := Run(wfConfig(core.StrategyFibril, 32), fibTree(22))
	mm := Run(wfConfig(core.StrategyFibrilMMap, 32), fibTree(22))
	if mm.Unmaps > 0 && mm.Makespan <= madv.Makespan {
		t.Errorf("mmap unmap (%d) not slower than madvise (%d)", mm.Makespan, madv.Makespan)
	}
}

func TestWFCilkPlusTightPoolStalls(t *testing.T) {
	tight := Run(Config{Workers: 8, Strategy: core.StrategyCilkPlus,
		StackLimit: 9, WorkFirst: true}, fibTree(20))
	if tight.PoolStalls == 0 {
		t.Error("tight pool recorded no stalls under work-first")
	}
	if tight.StacksCreated > 9 {
		t.Errorf("created %d stacks with limit 9", tight.StacksCreated)
	}
}

func TestWFCilkMPaysPerStealPrefixCost(t *testing.T) {
	// Cilk-M schedules like Fibril-without-unmap but charges a TLMM
	// prefix-mapping latency on every steal; with steals present it must
	// be measurably slower, and it never unmaps.
	fib := Run(wfConfig(core.StrategyFibrilNoUnmap, 16), fibTree(22))
	cm := Run(wfConfig(core.StrategyCilkM, 16), fibTree(22))
	if cm.Unmaps != 0 || cm.VM.MadviseCalls != 0 {
		t.Errorf("cilkm unmapped: %d/%d", cm.Unmaps, cm.VM.MadviseCalls)
	}
	if cm.Steals == 0 {
		t.Fatal("no steals; test vacuous")
	}
	if cm.Makespan <= fib.Makespan {
		t.Errorf("cilkm (%d) not slower than fibril-nounmap (%d) despite %d prefix mappings",
			cm.Makespan, fib.Makespan, cm.Steals)
	}
}
