package invoke

import (
	"testing"
	"testing/quick"
)

func TestBurdenedReducesToRawWithZeroBurden(t *testing.T) {
	// Burden{−1?} — zero values take defaults, so build an explicit
	// near-zero burden by using 1s and checking dominance instead: the
	// burdened quantities always dominate the raw ones.
	task := fibTree(14, 64)
	raw := Analyze(fibTree(14, 64))
	bm := AnalyzeBurdened(task, Burden{Fork: 1, Task: 1, Steal: 1})
	if bm.Metrics != raw {
		t.Errorf("embedded raw metrics differ: %+v vs %+v", bm.Metrics, raw)
	}
	if bm.BurdenedWork < raw.Work || bm.BurdenedSpan < raw.Span {
		t.Errorf("burdened quantities below raw: %+v", bm)
	}
	// Exact accounting: work burden = forks·Fork + tasks·Task.
	wantWork := raw.Work + raw.Forks*1 + raw.Tasks*1
	if bm.BurdenedWork != wantWork {
		t.Errorf("burdened work = %d, want %d", bm.BurdenedWork, wantWork)
	}
}

func TestBurdenedSpanChargesStealsPerForkDepth(t *testing.T) {
	// A chain of d forks has every fork on the critical path: burdened
	// span grows by d·Steal (+ per-task start along the path).
	var chain func(d int) Task
	chain = func(d int) Task {
		if d == 0 {
			return Leaf(10, 32)
		}
		return Task{Frame: 32, Segs: []Seg{
			{Work: 1, Fork: func() Task { return chain(d - 1) }},
			{Join: true},
		}}
	}
	b := Burden{Fork: 1, Task: 1, Steal: 100}
	m5 := AnalyzeBurdened(chain(5), b)
	m10 := AnalyzeBurdened(chain(10), b)
	dSpan := m10.BurdenedSpan - m5.BurdenedSpan
	// 5 extra fork edges at 100 each, plus 5 extra work+task units each ~2.
	if dSpan < 500 || dSpan > 520 {
		t.Errorf("span delta = %d, want ≈ 5·Steal", dSpan)
	}
}

func TestPredictSpeedupShape(t *testing.T) {
	bm := AnalyzeBurdened(fibTree(20, 64), Burden{})
	s1 := bm.PredictSpeedup(1)
	s8 := bm.PredictSpeedup(8)
	s72 := bm.PredictSpeedup(72)
	if s1 > 1.0 {
		t.Errorf("P=1 prediction %.2f exceeds 1 (burden must cost something)", s1)
	}
	if !(s1 < s8 && s8 < s72) {
		t.Errorf("prediction not monotone: %.2f %.2f %.2f", s1, s8, s72)
	}
	if s72 > 72 {
		t.Errorf("P=72 prediction %.2f superlinear", s72)
	}
}

func TestBurdenedMemoizationAtPaperScale(t *testing.T) {
	bm := AnalyzeBurdened(fibTree(42, 96), Burden{})
	if bm.FibrilDepth != 41 || bm.BurdenedWork <= bm.Work {
		t.Errorf("paper-scale burdened analysis wrong: %v", bm)
	}
}

// Property: burdened work ≥ raw work, burdened span ≥ raw span, and
// speedup predictions never exceed P. (Burdened span may exceed burdened
// work: the span charges worst-case steal latency per fork edge, which is
// pessimism about placement, not work that every execution performs.)
func TestQuickBurdenDominance(t *testing.T) {
	prop := func(n uint8) bool {
		depth := int(n%12) + 2
		task := fibTree(depth, 48)
		raw := Analyze(fibTree(depth, 48))
		bm := AnalyzeBurdened(task, Burden{})
		if bm.BurdenedWork < raw.Work || bm.BurdenedSpan < raw.Span {
			return false
		}
		for _, p := range []int{1, 4, 16} {
			s := bm.PredictSpeedup(p)
			if s > float64(p)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
