// Package invoke models invocation trees of fork-join computations and
// computes the quantities the Fibril paper's theory is stated in (SPAA
// 2016, §1 and §4.4): work T1, span T∞, average parallelism T1/T∞, the
// serial stack depth S1, and the Fibril depth D.
//
// A computation is represented as a lazily expanded tree of Tasks. Each
// Task is one function instance with an activation frame of Frame bytes and
// a body made of Segments executed in order. A segment performs Work units
// of serial computation and may then fork a child (asynchronous, runs in
// parallel with the rest of the body), call a child (synchronous, inline,
// like a plain C call — this is what serial-parallel reciprocity is about),
// and/or join (wait for all children forked so far). A join of all
// outstanding children is implicit at the end of the body, per the fork-join
// model of §2.
//
// Children are produced by generator closures so that trees with millions
// of nodes need never be materialized. Tasks that are structurally
// identical may carry the same nonzero Key, letting Analyze memoize — the
// full fib(42) tree (~866M nodes) is analyzed in 42 steps.
package invoke

import "fmt"

// Gen lazily produces a child task.
type Gen func() Task

// Seg is one segment of a task body: serial work, then an optional
// synchronous call, then an optional fork, then an optional join barrier.
type Seg struct {
	Work int64 // serial computation units before the events below
	Call Gen   // synchronous inline call (nil = none)
	Fork Gen   // asynchronous fork (nil = none)
	Join bool  // join all outstanding forked children after this segment
}

// Task is one function instance in the invocation tree.
type Task struct {
	Frame int    // activation-frame size in bytes
	Segs  []Seg  // body
	Key   uint64 // nonzero: memoization key; equal keys ⇒ identical subtree
	Name  string // optional label for diagnostics
}

// IsFibril reports whether the task is a Fibril function — one that forks
// (and therefore declares a fibril_t). Only Fibril frames count toward the
// paper's Fibril depth D.
func (t Task) IsFibril() bool {
	for _, s := range t.Segs {
		if s.Fork != nil {
			return true
		}
	}
	return false
}

// Metrics are the analysis results for a task subtree.
type Metrics struct {
	Work          int64 // T1: total computation units
	Span          int64 // T∞: critical-path length
	MaxStackBytes int64 // deepest serial-execution stack, in bytes (→ S1)
	FibrilDepth   int   // D: max Fibril frames on any root-to-leaf path
	CallDepth     int   // max frames of any kind on a root-to-leaf path
	Tasks         int64 // number of function instances
	Forks         int64 // number of fork edges
	Calls         int64 // number of synchronous call edges
	Leaves        int64 // function instances with no call or fork edges
}

// Parallelism returns T1/T∞.
func (m Metrics) Parallelism() float64 {
	if m.Span == 0 {
		return 0
	}
	return float64(m.Work) / float64(m.Span)
}

// String summarizes the metrics.
func (m Metrics) String() string {
	return fmt.Sprintf("T1=%d T∞=%d T1/T∞=%.1f S1=%dB D=%d tasks=%d forks=%d",
		m.Work, m.Span, m.Parallelism(), m.MaxStackBytes, m.FibrilDepth, m.Tasks, m.Forks)
}

// Analyze computes Metrics for the tree rooted at t. Subtrees sharing a
// nonzero Key are analyzed once.
func Analyze(t Task) Metrics {
	return analyze(t, map[uint64]Metrics{})
}

func analyze(t Task, memo map[uint64]Metrics) Metrics {
	if t.Key != 0 {
		if m, ok := memo[t.Key]; ok {
			return m
		}
	}
	m := Metrics{Tasks: 1}
	var (
		spine    int64 // span along the serial spine since the last join
		openMax  int64 // max over open forked children of forkPoint + childSpan
		maxChild int64 // deepest child stack (serial execution runs all inline)
		depthF   int   // max child Fibril depth
		depthC   int   // max child call depth
	)
	for _, s := range t.Segs {
		if s.Work < 0 {
			panic("invoke: negative segment work")
		}
		m.Work += s.Work
		spine += s.Work
		if s.Call != nil {
			cm := analyze(s.Call(), memo)
			m.Work += cm.Work
			spine += cm.Span // inline: the call's span lies on the spine
			m.Tasks += cm.Tasks
			m.Forks += cm.Forks
			m.Calls += cm.Calls + 1
			m.Leaves += cm.Leaves
			maxChild = max64(maxChild, cm.MaxStackBytes)
			depthF = maxInt(depthF, cm.FibrilDepth)
			depthC = maxInt(depthC, cm.CallDepth)
		}
		if s.Fork != nil {
			cm := analyze(s.Fork(), memo)
			m.Work += cm.Work
			openMax = max64(openMax, spine+cm.Span)
			m.Tasks += cm.Tasks
			m.Forks += cm.Forks + 1
			m.Calls += cm.Calls
			m.Leaves += cm.Leaves
			maxChild = max64(maxChild, cm.MaxStackBytes)
			depthF = maxInt(depthF, cm.FibrilDepth)
			depthC = maxInt(depthC, cm.CallDepth)
		}
		if s.Join {
			spine = max64(spine, openMax)
			openMax = 0
		}
	}
	spine = max64(spine, openMax) // implicit terminal join
	m.Span = spine
	m.MaxStackBytes = int64(t.Frame) + maxChild
	self := 0
	if t.IsFibril() {
		self = 1
	}
	m.FibrilDepth = self + depthF
	m.CallDepth = 1 + depthC
	if m.Tasks == 1 { // no call or fork edges anywhere below: a leaf
		m.Leaves = 1
	}
	if t.Key != 0 {
		memo[t.Key] = m
	}
	return m
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Leaf builds a task with only serial work — a leaf of the invocation tree.
func Leaf(work int64, frame int) Task {
	return Task{Frame: frame, Segs: []Seg{{Work: work}}}
}

// Walk traverses the tree depth-first in serial-execution order, calling
// visit with each task and its call depth. Forked children are visited at
// their fork point (C elision). Memoized subtrees are still fully walked;
// use only on trees of tractable size.
func Walk(t Task, visit func(t Task, depth int)) {
	walk(t, 1, visit)
}

func walk(t Task, depth int, visit func(Task, int)) {
	visit(t, depth)
	for _, s := range t.Segs {
		if s.Call != nil {
			walk(s.Call(), depth+1, visit)
		}
		if s.Fork != nil {
			walk(s.Fork(), depth+1, visit)
		}
	}
}
