package invoke

import (
	"testing"
	"testing/quick"
)

// fibTree builds the parfib invocation tree from the paper's Listing 1:
// fork parfib(n-1), call parfib(n-2), join. Grain g makes n < g serial leaves.
func fibTree(n int, frame int) Task {
	if n < 2 {
		return Task{Frame: frame, Segs: []Seg{{Work: 1}}, Key: uint64(n) + 1}
	}
	return Task{
		Frame: frame,
		Key:   uint64(n) + 1,
		Segs: []Seg{
			{Work: 1, Fork: func() Task { return fibTree(n-1, frame) }},
			{Work: 0, Call: func() Task { return fibTree(n-2, frame) }},
			{Work: 1, Join: true},
		},
		Name: "parfib",
	}
}

func fibValue(n int) int64 {
	a, b := int64(0), int64(1)
	for i := 0; i < n; i++ {
		a, b = b, a+b
	}
	return a
}

func TestLeafMetrics(t *testing.T) {
	m := Analyze(Leaf(7, 128))
	if m.Work != 7 || m.Span != 7 {
		t.Errorf("leaf work/span = %d/%d, want 7/7", m.Work, m.Span)
	}
	if m.MaxStackBytes != 128 || m.FibrilDepth != 0 || m.CallDepth != 1 {
		t.Errorf("leaf stack/D/depth = %d/%d/%d", m.MaxStackBytes, m.FibrilDepth, m.CallDepth)
	}
	if m.Tasks != 1 || m.Forks != 0 {
		t.Errorf("leaf tasks/forks = %d/%d", m.Tasks, m.Forks)
	}
}

func TestForkJoinSpan(t *testing.T) {
	// Parent: 10 work, fork child of 100 work, then 10 more work, join.
	// T1 = 120, T∞ = 10 + max(100, 10) = 110.
	task := Task{Frame: 64, Segs: []Seg{
		{Work: 10, Fork: func() Task { return Leaf(100, 64) }},
		{Work: 10, Join: true},
	}}
	m := Analyze(task)
	if m.Work != 120 {
		t.Errorf("T1 = %d, want 120", m.Work)
	}
	if m.Span != 110 {
		t.Errorf("T∞ = %d, want 110", m.Span)
	}
	if m.FibrilDepth != 1 {
		t.Errorf("D = %d, want 1", m.FibrilDepth)
	}
}

func TestCallLiesOnSpine(t *testing.T) {
	// A synchronous call's span extends the spine: fork(100) ∥ call(60)+work(10).
	// T∞ = max(100, 60+10) = 100; with call span 120 it becomes 130.
	mk := func(callWork int64) Metrics {
		return Analyze(Task{Frame: 0, Segs: []Seg{
			{Work: 0, Fork: func() Task { return Leaf(100, 0) }},
			{Work: 0, Call: func() Task { return Leaf(callWork, 0) }},
			{Work: 10, Join: true},
		}})
	}
	if m := mk(60); m.Span != 100 {
		t.Errorf("span = %d, want 100", m.Span)
	}
	if m := mk(120); m.Span != 130 {
		t.Errorf("span = %d, want 130", m.Span)
	}
}

func TestMultipleJoinPhases(t *testing.T) {
	// Two fork-join phases in one frame (like heat's timesteps). Segment
	// work precedes the segment's fork, so:
	// phase 1: fork(50) at spine 0, join → spine 50
	// phase 2: fork(30) at spine 50 ∥ 5 more spine work, join →
	//          max(50+5, 50+30) = 80.
	task := Task{Frame: 32, Segs: []Seg{
		{Work: 0, Fork: func() Task { return Leaf(50, 32) }, Join: true},
		{Work: 0, Fork: func() Task { return Leaf(30, 32) }},
		{Work: 5, Join: true},
	}}
	m := Analyze(task)
	if m.Work != 85 {
		t.Errorf("T1 = %d, want 85", m.Work)
	}
	if m.Span != 80 {
		t.Errorf("T∞ = %d, want 80", m.Span)
	}
}

func TestFibTreeCounts(t *testing.T) {
	// parfib(n) leaves return fib computed by counting unit work at leaves:
	// number of leaves of the fib recursion tree with base cases 0,1 is
	// fib(n+1); total tasks = 2*fib(n+1) - 1.
	m := Analyze(fibTree(10, 96))
	wantTasks := 2*fibValue(11) - 1
	if m.Tasks != wantTasks {
		t.Errorf("tasks = %d, want %d", m.Tasks, wantTasks)
	}
	// Every internal node forks exactly once.
	if m.Forks != (wantTasks-1)/2 {
		t.Errorf("forks = %d, want %d", m.Forks, (wantTasks-1)/2)
	}
	// D equals the longest chain of forking frames = n-1 (parfib(n)…parfib(2)).
	if m.FibrilDepth != 9 {
		t.Errorf("D = %d, want 9", m.FibrilDepth)
	}
	// Serial stack: the deepest path has n-1 frames of internal nodes plus a
	// leaf frame = n frames of 96 bytes... path parfib(10)→9→…→2→leaf(1 or 0):
	// depth = 10 frames.
	if m.MaxStackBytes != 10*96 {
		t.Errorf("S1 bytes = %d, want %d", m.MaxStackBytes, 10*96)
	}
}

func TestMemoizationMatchesUnmemoized(t *testing.T) {
	withKeys := fibTree(18, 64)
	noKeys := stripKeys(withKeys)
	a, b := Analyze(withKeys), Analyze(noKeys)
	if a != b {
		t.Errorf("memoized %+v != unmemoized %+v", a, b)
	}
}

func stripKeys(t Task) Task {
	t.Key = 0
	segs := make([]Seg, len(t.Segs))
	copy(segs, t.Segs)
	for i := range segs {
		if f := segs[i].Fork; f != nil {
			segs[i].Fork = func() Task { return stripKeys(f()) }
		}
		if c := segs[i].Call; c != nil {
			segs[i].Call = func() Task { return stripKeys(c()) }
		}
	}
	t.Segs = segs
	return t
}

func TestMemoizationScalesToPaperInput(t *testing.T) {
	// fib(42) has ~866M nodes; memoized analysis must be instant.
	m := Analyze(fibTree(42, 96))
	wantTasks := 2*fibValue(43) - 1
	if m.Tasks != wantTasks {
		t.Errorf("tasks = %d, want %d", m.Tasks, wantTasks)
	}
	if m.FibrilDepth != 41 {
		t.Errorf("D = %d, want 41 (paper Table 3 lists D=41 for fib)", m.FibrilDepth)
	}
}

func TestWalkOrder(t *testing.T) {
	var names []string
	task := Task{Name: "root", Segs: []Seg{
		{Work: 1, Fork: func() Task { return Task{Name: "a", Segs: []Seg{{Work: 1}}} }},
		{Work: 1, Call: func() Task { return Task{Name: "b", Segs: []Seg{{Work: 1}}} }},
		{Join: true},
	}}
	Walk(task, func(t Task, depth int) { names = append(names, t.Name) })
	if len(names) != 3 || names[0] != "root" || names[1] != "a" || names[2] != "b" {
		t.Errorf("walk order = %v", names)
	}
}

// Property: for any random series-parallel tree, Span ≤ Work, Work equals
// the sum of all segment work, and FibrilDepth ≤ CallDepth.
func TestQuickSpanWorkInvariants(t *testing.T) {
	// Seed values encode work in the low byte and tree shape in the high byte.
	var build func(seed []uint16) (Task, int64)
	build = func(seed []uint16) (Task, int64) {
		if len(seed) == 0 {
			return Leaf(1, 16), 1
		}
		n := seed[0]
		rest := seed[1:]
		half := len(rest) / 2
		var segs []Seg
		total := int64(n % 8)
		segs = append(segs, Seg{Work: int64(n % 8)})
		var sub int64
		switch (n >> 8) % 3 {
		case 0: // fork both halves, join
			l, lw := build(rest[:half])
			r, rw := build(rest[half:])
			sub = lw + rw
			segs = append(segs,
				Seg{Fork: func() Task { return l }},
				Seg{Fork: func() Task { return r }, Join: true})
		case 1: // fork one, call one
			l, lw := build(rest[:half])
			r, rw := build(rest[half:])
			sub = lw + rw
			segs = append(segs,
				Seg{Fork: func() Task { return l }},
				Seg{Call: func() Task { return r }, Join: true})
		case 2: // call only
			l, lw := build(rest)
			sub = lw
			segs = append(segs, Seg{Call: func() Task { return l }})
		}
		return Task{Frame: 32, Segs: segs}, total + sub
	}
	prop := func(seed []uint16) bool {
		if len(seed) > 40 {
			seed = seed[:40]
		}
		task, wantWork := build(seed)
		m := Analyze(task)
		if m.Work != wantWork {
			return false
		}
		if m.Span > m.Work || m.Span < 0 {
			return false
		}
		if m.FibrilDepth > m.CallDepth {
			return false
		}
		return m.MaxStackBytes >= int64(task.Frame)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCallsAndLeavesMetrics(t *testing.T) {
	if m := Analyze(Leaf(1, 64)); m.Leaves != 1 || m.Calls != 0 {
		t.Errorf("leaf: leaves/calls = %d/%d, want 1/0", m.Leaves, m.Calls)
	}
	// parfib without memoization: fib(n) called instances follow the
	// recursion exactly — tasks = calls + forks + 1, and the leaves are
	// the n<2 base cases: leaves(n) = fib(n+1) for the unmemoized tree.
	tree := func(n int) Task {
		var gen func(n int) Task
		gen = func(n int) Task {
			if n < 2 {
				return Task{Frame: 64, Segs: []Seg{{Work: 1}}}
			}
			return Task{Frame: 64, Segs: []Seg{
				{Work: 1, Fork: func() Task { return gen(n - 1) }},
				{Work: 0, Call: func() Task { return gen(n - 2) }},
				{Work: 1, Join: true},
			}}
		}
		return gen(n)
	}
	m := Analyze(tree(10))
	if m.Tasks != m.Calls+m.Forks+1 {
		t.Errorf("tasks %d != calls %d + forks %d + 1", m.Tasks, m.Calls, m.Forks)
	}
	if want := fibValue(11); m.Leaves != want {
		t.Errorf("leaves = %d, want fib(11) = %d", m.Leaves, want)
	}
	// Memoization must not change the metrics.
	mm := Analyze(fibTree(10, 64))
	if mm.Leaves != m.Leaves || mm.Calls != m.Calls {
		t.Errorf("memoized leaves/calls = %d/%d, want %d/%d",
			mm.Leaves, mm.Calls, m.Leaves, m.Calls)
	}
}
