package invoke

import "fmt"

// Burdened analysis, in the spirit of Cilkview (He, Leiserson, Leiserson):
// raw work/span metrics predict idealized speedup, but every fork, task
// start, and potential steal adds scheduling burden. Charging a burden to
// each fork edge on both the work and the span yields *burdened*
// parallelism, whose speedup predictions bracket what a real work-stealing
// runtime can deliver — the analytical counterpart of this repository's
// discrete-event simulator, useful for sanity-checking it and for granting
// quick what-if answers (e.g. "would a bigger grain help?") without a
// simulation.

// Burden parameterizes the per-edge scheduling costs, in the same ≈ns
// units as Task work. Zero fields take defaults matching the simulator's
// calibrated cost model.
type Burden struct {
	// Fork is charged per fork on the work (bookkeeping always happens).
	Fork int64
	// Task is charged per task start on the work (dequeue + frame setup).
	Task int64
	// Steal is charged per fork on the *span*: on the critical path, a
	// fork's continuation or child migrates in the worst case, costing a
	// steal handshake plus a task start.
	Steal int64
}

func (b Burden) withDefaults() Burden {
	if b.Fork == 0 {
		b.Fork = 8
	}
	if b.Task == 0 {
		b.Task = 8
	}
	if b.Steal == 0 {
		b.Steal = 128
	}
	return b
}

// BurdenedMetrics extends Metrics with burden-adjusted quantities.
type BurdenedMetrics struct {
	Metrics
	// BurdenedWork is T1 plus per-fork and per-task bookkeeping.
	BurdenedWork int64
	// BurdenedSpan is T∞ with every fork edge on the critical path charged
	// a steal burden.
	BurdenedSpan int64
}

// BurdenedParallelism is the burdened analogue of T1/T∞.
func (m BurdenedMetrics) BurdenedParallelism() float64 {
	if m.BurdenedSpan == 0 {
		return 0
	}
	return float64(m.BurdenedWork) / float64(m.BurdenedSpan)
}

// PredictSpeedup estimates the speedup of an ideal greedy work-stealing
// execution on p workers, relative to the raw work T1: the burdened
// work-span bound Tp ≈ T1'/p + T∞' gives speedup T1/(T1'/p + T∞').
func (m BurdenedMetrics) PredictSpeedup(p int) float64 {
	tp := float64(m.BurdenedWork)/float64(p) + float64(m.BurdenedSpan)
	if tp == 0 {
		return 0
	}
	return float64(m.Work) / tp
}

// String summarizes the burdened metrics.
func (m BurdenedMetrics) String() string {
	return fmt.Sprintf("%v burdenedT1=%d burdenedT∞=%d burdenedPar=%.1f",
		m.Metrics, m.BurdenedWork, m.BurdenedSpan, m.BurdenedParallelism())
}

// AnalyzeBurdened computes burdened metrics for the tree rooted at t,
// memoizing keyed subtrees like Analyze.
func AnalyzeBurdened(t Task, b Burden) BurdenedMetrics {
	b = b.withDefaults()
	return analyzeBurdened(t, b, map[uint64]BurdenedMetrics{})
}

func analyzeBurdened(t Task, b Burden, memo map[uint64]BurdenedMetrics) BurdenedMetrics {
	if t.Key != 0 {
		if m, ok := memo[t.Key]; ok {
			return m
		}
	}
	m := BurdenedMetrics{Metrics: Metrics{Tasks: 1}}
	m.BurdenedWork = b.Task
	var (
		spine, bSpine     int64
		openMax, bOpenMax int64
		maxChild          int64
		depthF, depthC    int
	)
	for _, s := range t.Segs {
		m.Work += s.Work
		m.BurdenedWork += s.Work
		spine += s.Work
		bSpine += s.Work
		if s.Call != nil {
			cm := analyzeBurdened(s.Call(), b, memo)
			m.Work += cm.Work
			m.BurdenedWork += cm.BurdenedWork
			spine += cm.Span
			bSpine += cm.BurdenedSpan
			m.Tasks += cm.Tasks
			m.Forks += cm.Forks
			m.Calls += cm.Calls + 1
			m.Leaves += cm.Leaves
			maxChild = max64(maxChild, cm.MaxStackBytes)
			depthF = maxInt(depthF, cm.FibrilDepth)
			depthC = maxInt(depthC, cm.CallDepth)
		}
		if s.Fork != nil {
			cm := analyzeBurdened(s.Fork(), b, memo)
			m.Work += cm.Work
			m.BurdenedWork += cm.BurdenedWork + b.Fork
			openMax = max64(openMax, spine+cm.Span)
			// On the burdened span, the fork edge pays a steal: either the
			// child or the continuation migrates in the worst case.
			bOpenMax = max64(bOpenMax, bSpine+cm.BurdenedSpan+b.Steal)
			m.Tasks += cm.Tasks
			m.Forks += cm.Forks + 1
			m.Calls += cm.Calls
			m.Leaves += cm.Leaves
			maxChild = max64(maxChild, cm.MaxStackBytes)
			depthF = maxInt(depthF, cm.FibrilDepth)
			depthC = maxInt(depthC, cm.CallDepth)
		}
		if s.Join {
			spine = max64(spine, openMax)
			bSpine = max64(bSpine, bOpenMax)
			openMax, bOpenMax = 0, 0
		}
	}
	spine = max64(spine, openMax)
	bSpine = max64(bSpine, bOpenMax)
	m.Span = spine
	m.BurdenedSpan = bSpine
	m.MaxStackBytes = int64(t.Frame) + maxChild
	self := 0
	if t.IsFibril() {
		self = 1
	}
	m.FibrilDepth = self + depthF
	m.CallDepth = 1 + depthC
	if m.Tasks == 1 { // no call or fork edges anywhere below: a leaf
		m.Leaves = 1
	}
	if t.Key != 0 {
		memo[t.Key] = m
	}
	return m
}
