// Package table renders the plain-text tables and series that the
// benchmark harness prints — the same rows the paper's tables and figure
// series report.
package table

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid with a header row.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Add appends a row; values are formatted with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint writes an aligned text rendering.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	rule := make([]string, len(t.Header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, row := range t.Rows {
		line(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes a comma-separated rendering (no quoting; the harness emits
// only numbers and identifiers).
func (t *Table) CSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteString("\n")
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteString("\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}
