package table

import (
	"strings"
	"testing"
)

func TestFprintAligns(t *testing.T) {
	tb := &Table{Title: "T", Header: []string{"name", "value"}}
	tb.Add("fib", 1.5)
	tb.Add("quicksort", 12)
	var b strings.Builder
	if err := tb.Fprint(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "T" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[3], "fib      ") {
		t.Errorf("row not padded: %q", lines[3])
	}
	if !strings.Contains(lines[3], "1.50") {
		t.Errorf("float not formatted: %q", lines[3])
	}
}

func TestCSV(t *testing.T) {
	tb := &Table{Header: []string{"a", "b"}}
	tb.Add(1, 2)
	tb.Add("x", 3.25)
	var b strings.Builder
	if err := tb.CSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,2\nx,3.25\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}
