package deque

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// relItem is the test element type for Relaxed: an int payload plus the
// claim stamped at publication, mirroring how the scheduler's task type
// satisfies Stampable.
type relItem struct {
	v     int
	claim *Claim
}

func (it relItem) WithClaim(c *Claim) relItem { it.claim = c; return it }

// take wins the item's claim; items never published carry a nil claim,
// which Acquire treats as trivially won.
func (it relItem) take() bool { return it.claim.Acquire() }

var _ interface {
	dequeAPI[relItem]
	StealIf(func(relItem) bool) (relItem, bool)
} = (*Relaxed[relItem])(nil)

// TestRelaxedOwnerLIFO pins the owner-only sequential semantics: with no
// thieves, Push/Pop must behave exactly like the THE deque's LIFO order
// across the private/published boundary — this is what keeps P=1
// scheduling identical across deque kinds.
func TestRelaxedOwnerLIFO(t *testing.T) {
	prop := func(ops []uint8) bool {
		a := &Deque[int]{}
		b := &Relaxed[relItem]{}
		next := 0
		for _, op := range ops {
			if op%3 != 0 { // bias toward pushes so the window populates
				a.Push(next)
				b.Push(relItem{v: next})
				next++
				continue
			}
			av, aok := a.Pop()
			bv, bok := b.Pop()
			if aok != bok || (aok && av != bv.v) {
				return false
			}
			if bok && !bv.take() {
				return false // no thieves: the owner must win every claim
			}
		}
		// Drain: orders must keep matching to the end.
		for {
			av, aok := a.Pop()
			bv, bok := b.Pop()
			if aok != bok || (aok && av != bv.v) {
				return false
			}
			if !aok {
				return true
			}
		}
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestRelaxedPublication pins the lazy-publication policy: a single
// pending task stays private (Len 0, no allocation-bearing publication),
// an empty window is refilled as soon as a surplus exists (the starvation
// rule), further publication happens oldest-first but only from backlog
// deeper than the private reserve (the hysteresis rule), and thieves
// draining the window makes the next push refill it.
func TestRelaxedPublication(t *testing.T) {
	d := &Relaxed[relItem]{}
	d.Push(relItem{v: 0})
	if d.Len() != 0 || d.Unpublished() != 1 {
		t.Fatalf("after one push: Len=%d Unpublished=%d, want 0,1", d.Len(), d.Unpublished())
	}
	if _, ok := d.Steal(); ok {
		t.Fatal("stole the owner's single private task")
	}
	d.Push(relItem{v: 1})
	if d.Len() != 1 {
		t.Fatalf("second push left an empty window: Len=%d, want 1 (starvation rule)", d.Len())
	}
	for i := 2; i < 10; i++ {
		d.Push(relItem{v: i})
	}
	// 10 pushes total: the window holds {0} from the starvation refill plus
	// one backlog publication once the private side exceeded its reserve.
	if d.Len() != 2 || d.Unpublished() != relPrivateReserve {
		t.Fatalf("after 10 pushes: Len=%d Unpublished=%d, want 2,%d",
			d.Len(), d.Unpublished(), relPrivateReserve)
	}
	// Oldest-first publication: thieves must see 0, 1, ...
	for i := 0; i < 2; i++ {
		v, ok := d.Steal()
		if !ok || v.v != i || !v.take() {
			t.Fatalf("steal %d = (%v,%v), want value %d and a fresh claim", i, v.v, ok, i)
		}
	}
	// The window is empty again; the next push refills it from the private
	// side even though the backlog is within the reserve.
	d.Push(relItem{v: 10})
	if d.Len() == 0 {
		t.Fatal("push onto a drained window did not republish")
	}
}

// TestRelaxedStealIf mirrors the THE/ChaseLev StealIf semantics: a
// rejected candidate leaves the deque untouched and only the top
// (oldest published) entry is ever offered.
func TestRelaxedStealIf(t *testing.T) {
	d := &Relaxed[relItem]{}
	if _, ok := d.StealIf(func(relItem) bool { return true }); ok {
		t.Fatal("StealIf on empty deque succeeded")
	}
	for i := 0; i < 10; i++ {
		d.Push(relItem{v: i})
	}
	if _, ok := d.StealIf(func(it relItem) bool { return it.v > 100 }); ok {
		t.Fatal("StealIf stole a rejected entry")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d after rejection, want 2 (starvation refill + one backlog publication)", d.Len())
	}
	v, ok := d.StealIf(func(it relItem) bool { return it.v == 0 })
	if !ok || v.v != 0 {
		t.Fatalf("StealIf = %d,%v, want 0,true", v.v, ok)
	}
	// The next top is 1; a predicate matching only 2 must not skip it.
	if _, ok := d.StealIf(func(it relItem) bool { return it.v == 2 }); ok {
		t.Fatal("StealIf skipped past the top entry")
	}
}

// TestRelaxedConcurrentExactlyOnce is the multiplicity contract under real
// concurrency: an owner running a push/pop mix against racing thieves,
// with every consumer filtering through the claim. Exactly-once
// consumption must hold even though raw extractions may exceed the push
// count; the duplicate count is reported and sanity-bounded.
func TestRelaxedConcurrentExactlyOnce(t *testing.T) {
	const total = 50000
	d := &Relaxed[relItem]{}
	seen := make([]atomic.Int32, total)
	var consumed, dups atomic.Int64
	record := func(it relItem) {
		if !it.take() {
			dups.Add(1)
			return
		}
		if seen[it.v].Add(1) != 1 {
			t.Errorf("value %d claimed twice", it.v)
		}
		consumed.Add(1)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if v, ok := d.Steal(); ok {
					record(v)
					continue
				}
				select {
				case <-stop:
					for {
						v, ok := d.Steal()
						if !ok {
							return
						}
						record(v)
					}
				default:
				}
			}
		}()
	}

	for v := 0; v < total; {
		for i := 0; i < 1+v%7 && v < total; i++ {
			d.Push(relItem{v: v})
			v++
		}
		if v%3 == 0 {
			if got, ok := d.Pop(); ok {
				record(got)
			}
		}
	}
	for {
		v, ok := d.Pop()
		if !ok {
			break
		}
		record(v)
	}
	close(stop)
	wg.Wait()
	for {
		v, ok := d.Steal()
		if !ok {
			break
		}
		record(v)
	}
	if got := consumed.Load(); got != total {
		t.Errorf("claimed %d values, want %d (no loss)", got, total)
	}
	// Duplicates are the price of the fence-free anchor; they must stay a
	// vanishing fraction of the traffic, not a livelock.
	if dd := dups.Load(); dd > total {
		t.Errorf("%d duplicate extractions over %d pushes — multiplicity unbounded?", dd, total)
	} else {
		t.Logf("relaxed deque: %d duplicate extractions over %d pushes", dd, total)
	}
}

// TestRelaxedAnchorPacking pins the (head, size, tag) bit layout and its
// wrap behaviour: fields round-trip below their widths and wrap cleanly
// at them, and the ring capacity divides the head modulus so slot
// indexing is wrap-consistent.
func TestRelaxedAnchorPacking(t *testing.T) {
	cases := []struct{ h, s, g uint64 }{
		{0, 0, 0},
		{1, 2, 3},
		{1<<relHeadBits - 1, 1<<relSizeBits - 1, 1<<relTagBits - 1},
		{12345, relPublishGoal, 998877},
	}
	for _, c := range cases {
		h, s, g := unpackAnchor(packAnchor(c.h, c.s, c.g))
		if h != c.h || s != c.s || g != c.g {
			t.Errorf("pack/unpack(%d,%d,%d) = (%d,%d,%d)", c.h, c.s, c.g, h, s, g)
		}
	}
	// Wrap: head and tag are modular counters.
	h, _, g := unpackAnchor(packAnchor(1<<relHeadBits, 0, 1<<relTagBits))
	if h != 0 || g != 0 {
		t.Errorf("wrapped head/tag = %d,%d, want 0,0", h, g)
	}
	if (1<<relHeadBits)%relRingCap != 0 {
		t.Errorf("ring capacity %d does not divide the head modulus", relRingCap)
	}
	if relPublishGoal >= relRingCap {
		t.Errorf("publish goal %d must stay below ring capacity %d", relPublishGoal, relRingCap)
	}
}

// TestClaimSemantics pins the claim contract: one winner, nil is
// trivially won.
func TestClaimSemantics(t *testing.T) {
	var c Claim
	if !c.Acquire() {
		t.Fatal("fresh claim not acquired")
	}
	if c.Acquire() {
		t.Fatal("claim acquired twice")
	}
	var nilClaim *Claim
	if !nilClaim.Acquire() {
		t.Fatal("nil claim must be trivially won")
	}
}

// BenchmarkRelaxedPushPop is the tight fork/join loop: the single pending
// entry stays private, so each iteration is plain loads and stores with
// zero atomic operations — the fence-free fast path.
func BenchmarkRelaxedPushPop(b *testing.B) {
	d := &Relaxed[relItem]{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Push(relItem{v: i})
		d.Pop()
	}
}

// BenchmarkRelaxedPushPopDeep models a deep fork tree: the deque carries a
// standing backlog, so every Push holds a surplus and pays the anchor poll
// in topUp (window already full → no publication).
func BenchmarkRelaxedPushPopDeep(b *testing.B) {
	d := &Relaxed[relItem]{}
	for i := 0; i < 32; i++ {
		d.Push(relItem{v: -i})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Push(relItem{v: i})
		d.Pop()
	}
}

// BenchmarkTHEPushPopDeep is the THE-deque comparison point for the deep
// variant above.
func BenchmarkTHEPushPopDeep(b *testing.B) {
	d := &Deque[int]{}
	for i := 0; i < 32; i++ {
		d.Push(-i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Push(i)
		d.Pop()
	}
}
