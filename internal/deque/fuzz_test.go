package deque

import (
	"sync"
	"sync/atomic"
	"testing"
)

// dequeModel is the trivially-correct reference: Push appends at the
// bottom, Pop takes the bottom (youngest), Steal/StealIf take the top
// (oldest).
type dequeModel struct{ s []int }

func (m *dequeModel) Push(v int) { m.s = append(m.s, v) }

func (m *dequeModel) Pop() (int, bool) {
	if len(m.s) == 0 {
		return 0, false
	}
	v := m.s[len(m.s)-1]
	m.s = m.s[:len(m.s)-1]
	return v, true
}

func (m *dequeModel) Steal() (int, bool) {
	if len(m.s) == 0 {
		return 0, false
	}
	v := m.s[0]
	m.s = m.s[1:]
	return v, true
}

func (m *dequeModel) StealIf(pred func(int) bool) (int, bool) {
	if len(m.s) == 0 || !pred(m.s[0]) {
		return 0, false
	}
	return m.Steal()
}

// FuzzDequeOps decodes fuzz bytes into a Push/Pop/Steal/StealIf sequence
// and checks both deque implementations against the slice model — every
// result value and ok flag must match exactly, and so must the drained
// remainder. Run with
//
//	go test -fuzz=FuzzDequeOps -fuzztime=30s ./internal/deque/
func FuzzDequeOps(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 1, 0, 2, 3, 1, 2})
	f.Add([]byte{0, 0, 0, 0, 0, 2, 2, 2, 2, 2})
	f.Add([]byte{0, 1, 0, 1, 0, 1, 3, 7, 11, 15})
	f.Fuzz(func(t *testing.T, ops []byte) {
		preds := []func(int) bool{
			func(int) bool { return true },
			func(int) bool { return false },
			func(v int) bool { return v%2 == 0 },
			func(v int) bool { return v%5 != 0 },
		}
		impls := []struct {
			name string
			d    stealIfAPI[int]
		}{
			{"THE", &Deque[int]{}},
			{"ChaseLev", &ChaseLev[int]{}},
		}
		for _, impl := range impls {
			model := &dequeModel{}
			next := 0
			for i, op := range ops {
				switch op % 4 {
				case 0:
					impl.d.Push(next)
					model.Push(next)
					next++
				case 1:
					gv, gok := impl.d.Pop()
					wv, wok := model.Pop()
					if gok != wok || (gok && gv != wv) {
						t.Fatalf("%s op %d: Pop = (%d,%v), model (%d,%v)", impl.name, i, gv, gok, wv, wok)
					}
				case 2:
					gv, gok := impl.d.Steal()
					wv, wok := model.Steal()
					if gok != wok || (gok && gv != wv) {
						t.Fatalf("%s op %d: Steal = (%d,%v), model (%d,%v)", impl.name, i, gv, gok, wv, wok)
					}
				case 3:
					pred := preds[int(op/4)%len(preds)]
					gv, gok := impl.d.StealIf(pred)
					wv, wok := model.StealIf(pred)
					if gok != wok || (gok && gv != wv) {
						t.Fatalf("%s op %d: StealIf = (%d,%v), model (%d,%v)", impl.name, i, gv, gok, wv, wok)
					}
				}
			}
			if impl.d.Len() != len(model.s) {
				t.Fatalf("%s: Len=%d, model has %d", impl.name, impl.d.Len(), len(model.s))
			}
			// Drain from the top: must replay the model front-to-back.
			for j := 0; len(model.s) > 0; j++ {
				gv, gok := impl.d.Steal()
				wv, _ := model.Steal()
				if !gok || gv != wv {
					t.Fatalf("%s drain %d: Steal = (%d,%v), want (%d,true)", impl.name, j, gv, gok, wv)
				}
			}
			if _, ok := impl.d.Steal(); ok {
				t.Fatalf("%s: deque non-empty after drain", impl.name)
			}
		}
	})
}

// FuzzDequeConcurrent replays the fuzz-chosen owner schedule against two
// concurrent thieves and checks conservation: every pushed value is
// consumed exactly once, across owner pops, steals, and the final drain.
func FuzzDequeConcurrent(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 1, 0, 0, 1, 1})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 256 {
			ops = ops[:256]
		}
		for _, impl := range []struct {
			name string
			d    stealIfAPI[int]
		}{
			{"THE", &Deque[int]{}},
			{"ChaseLev", &ChaseLev[int]{}},
		} {
			pushed := 0
			for _, op := range ops {
				if op%2 == 0 {
					pushed++
				}
			}
			seen := make([]int32, pushed)
			record := func(v int) { // called from owner and thieves: atomic
				if v < 0 || v >= pushed {
					t.Errorf("%s: consumed out-of-range value %d", impl.name, v)
					return
				}
				atomic.AddInt32(&seen[v], 1)
			}
			var wg sync.WaitGroup
			stop := make(chan struct{})
			for th := 0; th < 2; th++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						if v, ok := impl.d.Steal(); ok {
							record(v)
							continue
						}
						select {
						case <-stop:
							return
						default:
						}
					}
				}()
			}
			next := 0
			for _, op := range ops {
				if op%2 == 0 {
					impl.d.Push(next)
					next++
				} else if v, ok := impl.d.Pop(); ok {
					record(v)
				}
			}
			for {
				v, ok := impl.d.Pop()
				if !ok {
					break
				}
				record(v)
			}
			close(stop)
			wg.Wait()
			for v, n := range seen {
				if n != 1 {
					t.Fatalf("%s: value %d consumed %d times, want 1", impl.name, v, n)
				}
			}
		}

		// Relaxed lane: the fence-free deque promises at-least-once
		// extraction, so it is checked against a multiset model instead —
		// after filtering through the claim, consumption is exactly-once
		// (no loss), and the duplicate-extraction overhead stays bounded
		// by the owner-side traffic rather than growing without limit.
		relaxedConcurrentLane(t, ops)

		// Batch lanes: the extraction mix the StealHalf policy produces —
		// a StealBatch thief racing single-steal/StealIf thieves.
		batchConcurrentLane(t, ops)
	})
}

// batchConcurrentLane replays the owner schedule with a StealBatch thief
// racing a single-steal thief. The linearizable kinds must stay
// exactly-once across batch boundaries (the THE ring's one-slot-slack
// claim-then-read and the Chase-Lev per-entry CAS loop are both under
// test); the relaxed deque gets its own lane below.
func batchConcurrentLane(t *testing.T, ops []byte) {
	for _, impl := range []struct {
		name string
		d    interface {
			Push(int)
			Pop() (int, bool)
			Steal() (int, bool)
			StealBatch([]int) int
		}
	}{
		{"THE", &Deque[int]{}},
		{"ChaseLev", &ChaseLev[int]{}},
	} {
		pushed := 0
		for _, op := range ops {
			if op%2 == 0 {
				pushed++
			}
		}
		seen := make([]int32, pushed)
		record := func(v int) {
			if v < 0 || v >= pushed {
				t.Errorf("%s: batch lane consumed out-of-range value %d", impl.name, v)
				return
			}
			atomic.AddInt32(&seen[v], 1)
		}
		var wg sync.WaitGroup
		stop := make(chan struct{})
		wg.Add(2)
		go func() { // batch thief
			defer wg.Done()
			var buf [4]int
			for {
				if n := impl.d.StealBatch(buf[:]); n > 0 {
					for i := 0; i < n; i++ {
						record(buf[i])
					}
					continue
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
		go func() { // single-steal thief
			defer wg.Done()
			for {
				if v, ok := impl.d.Steal(); ok {
					record(v)
					continue
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
		next := 0
		for _, op := range ops {
			if op%2 == 0 {
				impl.d.Push(next)
				next++
			} else if v, ok := impl.d.Pop(); ok {
				record(v)
			}
		}
		for {
			v, ok := impl.d.Pop()
			if !ok {
				break
			}
			record(v)
		}
		close(stop)
		wg.Wait()
		for v, n := range seen {
			if n != 1 {
				t.Fatalf("%s: batch lane value %d consumed %d times, want 1", impl.name, v, n)
			}
		}
	}
	relaxedBatchLane(t, ops)
}

// relaxedBatchLane races a StealBatch thief against a StealIf thief over
// the relaxed deque's published window: the batch claims a window prefix
// with one anchor CAS while StealIf inspects nodes pre-CAS (safe — relaxed
// nodes are immutable and never recycled), and the claim layer must still
// filter consumption down to exactly-once with bounded duplicates.
func relaxedBatchLane(t *testing.T, ops []byte) {
	d := &Relaxed[relItem]{}
	pushed := 0
	for _, op := range ops {
		if op%2 == 0 {
			pushed++
		}
	}
	seen := make([]int32, pushed)
	var dups int32
	record := func(it relItem) {
		if !it.take() {
			atomic.AddInt32(&dups, 1)
			return
		}
		if it.v < 0 || it.v >= pushed {
			t.Errorf("Relaxed: batch lane claimed out-of-range value %d", it.v)
			return
		}
		atomic.AddInt32(&seen[it.v], 1)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(2)
	go func() { // StealHalf-style batch thief
		defer wg.Done()
		var buf [4]relItem
		for {
			if n := d.StealBatch(buf[:]); n > 0 {
				for i := 0; i < n; i++ {
					record(buf[i])
				}
				continue
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	go func() { // StealIf thief with a value predicate, plain Steal fallback
		defer wg.Done()
		for {
			if v, ok := d.StealIf(func(it relItem) bool { return it.v%2 == 0 }); ok {
				record(v)
				continue
			}
			if v, ok := d.Steal(); ok {
				record(v)
				continue
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	next := 0
	for _, op := range ops {
		if op%2 == 0 {
			d.Push(relItem{v: next})
			next++
		} else if v, ok := d.Pop(); ok {
			record(v)
		}
	}
	for {
		v, ok := d.Pop()
		if !ok {
			break
		}
		record(v)
	}
	close(stop)
	wg.Wait()
	for {
		v, ok := d.Steal()
		if !ok {
			break
		}
		record(v)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("Relaxed: batch lane value %d claimed %d times, want 1", v, n)
		}
	}
	if bound := int32(relPublishGoal * (pushed + 1)); dups > bound {
		t.Fatalf("Relaxed: batch lane %d duplicate extractions over %d pushes, bound %d", dups, pushed, bound)
	}
}

// relaxedConcurrentLane replays the fuzz-chosen owner schedule on the
// Relaxed deque with two racing thieves, enforcing claim-filtered
// exactly-once consumption and a multiplicity bound: each owner-side
// published reclaim can resurrect at most a window's worth of already
// claimed entries, so duplicates are bounded by a window factor of the
// push count.
func relaxedConcurrentLane(t *testing.T, ops []byte) {
	d := &Relaxed[relItem]{}
	pushed := 0
	for _, op := range ops {
		if op%2 == 0 {
			pushed++
		}
	}
	seen := make([]int32, pushed)
	var dups int32
	record := func(it relItem) {
		if !it.take() {
			atomic.AddInt32(&dups, 1)
			return
		}
		if it.v < 0 || it.v >= pushed {
			t.Errorf("Relaxed: claimed out-of-range value %d", it.v)
			return
		}
		atomic.AddInt32(&seen[it.v], 1)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for th := 0; th < 2; th++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if v, ok := d.Steal(); ok {
					record(v)
					continue
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}
	next := 0
	for _, op := range ops {
		if op%2 == 0 {
			d.Push(relItem{v: next})
			next++
		} else if v, ok := d.Pop(); ok {
			record(v)
		}
	}
	for {
		v, ok := d.Pop()
		if !ok {
			break
		}
		record(v)
	}
	close(stop)
	wg.Wait()
	for {
		v, ok := d.Steal()
		if !ok {
			break
		}
		record(v)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("Relaxed: value %d claimed %d times, want 1", v, n)
		}
	}
	if bound := int32(relPublishGoal * (pushed + 1)); dups > bound {
		t.Fatalf("Relaxed: %d duplicate extractions over %d pushes, bound %d", dups, pushed, bound)
	}
}
