// Package deque implements the work-stealing double-ended queue used by the
// Fibril scheduler (SPAA 2016, §2 and §4.3).
//
// Deque is the THE protocol of Cilk-5 (Frigo, Leiserson, Randall, PLDI '98),
// which the paper adopts unchanged: the owning worker pushes and pops at the
// bottom without locking on the fast path; thieves steal from the top while
// holding a per-deque lock (Dijkstra-style mutual exclusion between one
// owner and the lock-holding thief). Locked is a mutex-based reference
// implementation with identical semantics, used for differential testing
// and as a fallback.
package deque

import (
	"sync"
	"sync/atomic"
)

// initialCapacity is the starting ring size; the deque grows geometrically.
const initialCapacity = 64

// Deque is a THE-protocol work-stealing deque. The zero value is ready to
// use. Push and Pop may be called only by the owning worker; Steal may be
// called by any worker.
type Deque[T any] struct {
	head atomic.Int64 // next index to steal (top); only increases
	tail atomic.Int64 // next index to push (bottom); owner-managed
	lock sync.Mutex   // serializes thieves, and conflict resolution
	buf  []T          // ring buffer, len is a power of two; owner swaps under lock
}

// Push adds t at the bottom of the deque. Owner-only; never blocks on
// thieves except while growing the ring.
func (d *Deque[T]) Push(t T) {
	tail := d.tail.Load()
	head := d.head.Load()
	// One slot of slack is reserved: a lock-holding thief advances head
	// past an entry before it finishes reading it (claim first, inspect
	// second), so the head observed here may be one past an entry still
	// in use. Growing at len-1 keeps the ring from wrapping onto it.
	if d.buf == nil || int(tail-head) >= len(d.buf)-1 {
		d.grow(head, tail)
	}
	d.buf[tail&int64(len(d.buf)-1)] = t
	d.tail.Store(tail + 1)
}

// grow replaces the ring with a larger one. It holds the lock so no thief
// reads the buffer mid-swap; the owner is the only other reader.
func (d *Deque[T]) grow(head, tail int64) {
	d.lock.Lock()
	defer d.lock.Unlock()
	head = d.head.Load() // may have advanced before we got the lock
	n := initialCapacity
	for int64(n) < (tail-head)*2 {
		n *= 2
	}
	nbuf := make([]T, n)
	for i := head; i < tail; i++ {
		nbuf[i&int64(n-1)] = d.buf[i&int64(len(d.buf)-1)]
	}
	d.buf = nbuf
}

// Pop removes and returns the bottom entry. Owner-only. The fast path is
// lock-free; the lock is taken only when the deque might be down to its
// last entry and a thief may be racing for it (the THE protocol).
func (d *Deque[T]) Pop() (T, bool) {
	var zero T
	tail := d.tail.Load() - 1
	d.tail.Store(tail)
	head := d.head.Load()
	if head > tail {
		// Possible conflict with a thief: restore and retry under the lock.
		d.tail.Store(tail + 1)
		d.lock.Lock()
		head = d.head.Load()
		if head > tail {
			d.lock.Unlock()
			return zero, false // deque empty; thief won
		}
		d.tail.Store(tail)
		d.lock.Unlock()
	}
	v := d.buf[tail&int64(len(d.buf)-1)]
	d.buf[tail&int64(len(d.buf)-1)] = zero // release for GC
	return v, true
}

// Steal removes and returns the top entry. Any worker may call it; thieves
// serialize on the deque lock, as in Cilk.
func (d *Deque[T]) Steal() (T, bool) {
	var zero T
	d.lock.Lock()
	head := d.head.Load()
	d.head.Store(head + 1)
	tail := d.tail.Load()
	if head+1 > tail {
		d.head.Store(head) // lost to the owner's pop
		d.lock.Unlock()
		return zero, false
	}
	// The stolen slot is not cleared: once head has advanced the owner may
	// reuse it on the next ring lap, so a thief-side write would race the
	// owner's Push. The stale value is released when the slot is
	// overwritten or the ring is replaced by grow.
	v := d.buf[head&int64(len(d.buf)-1)]
	d.lock.Unlock()
	return v, true
}

// StealIf steals the top entry only if pred accepts it, leaving the deque
// untouched otherwise. Restricted stealing disciplines — TBB's
// depth-restricted stealing and leapfrogging (§3) — are expressed this way:
// the thief inspects the candidate under the deque lock and declines
// ineligible work.
func (d *Deque[T]) StealIf(pred func(T) bool) (T, bool) {
	var zero T
	d.lock.Lock()
	// Claim first, inspect second: after the claim succeeds, the Dekker
	// argument of the THE protocol guarantees the owner cannot pop this
	// entry (a conflicting Pop is forced into the locked path, which we
	// hold), so reading it and — on pred rejection — unclaiming is safe.
	head := d.head.Load()
	d.head.Store(head + 1)
	tail := d.tail.Load()
	if head+1 > tail {
		d.head.Store(head)
		d.lock.Unlock()
		return zero, false
	}
	v := d.buf[head&int64(len(d.buf)-1)]
	if !pred(v) {
		d.head.Store(head)
		d.lock.Unlock()
		return zero, false
	}
	// Not cleared for the same reason as Steal: the owner may already be
	// reusing this slot on the next ring lap.
	d.lock.Unlock()
	return v, true
}

// StealBatch steals up to len(dst) entries from the top into dst and
// reports how many were taken. It amortizes the thief-side lock over the
// whole batch but claims and reads entries one at a time, exactly as Steal
// does: the ring reserves a single slot of slack for a claimed-but-unread
// entry (see Push), so claiming the batch up front would let a concurrent
// Push wrap onto entries still being read. Any worker may call it.
func (d *Deque[T]) StealBatch(dst []T) int {
	if len(dst) == 0 {
		return 0
	}
	d.lock.Lock()
	m := 0
	for m < len(dst) {
		head := d.head.Load()
		d.head.Store(head + 1)
		tail := d.tail.Load()
		if head+1 > tail {
			d.head.Store(head) // lost the last entry to the owner's pop
			break
		}
		dst[m] = d.buf[head&int64(len(d.buf)-1)]
		m++
	}
	d.lock.Unlock()
	return m
}

// Len reports the current number of entries. It is a racy snapshot intended
// for stats and victim selection heuristics only.
func (d *Deque[T]) Len() int {
	n := int(d.tail.Load() - d.head.Load())
	if n < 0 {
		return 0
	}
	return n
}

// Empty reports whether the deque appears empty (racy snapshot).
func (d *Deque[T]) Empty() bool { return d.Len() == 0 }

// LazyHint reports whether the owner should publish more parallelism: true
// when the deque looks empty, meaning any thief probing this worker leaves
// hungry. It is the owner-side probe behind lazy loop splitting — two
// relaxed loads, no lock — and, like Len, is only a racy snapshot: a thief
// may empty the deque the instant after it returns false.
func (d *Deque[T]) LazyHint() bool { return d.tail.Load()-d.head.Load() <= 0 }

// Locked is a straightforward mutex-protected deque with the same owner /
// thief API, used as the semantic reference for differential tests.
type Locked[T any] struct {
	mu    sync.Mutex
	items []T
}

// Push adds t at the bottom.
func (d *Locked[T]) Push(t T) {
	d.mu.Lock()
	d.items = append(d.items, t)
	d.mu.Unlock()
}

// Pop removes from the bottom (LIFO end).
func (d *Locked[T]) Pop() (T, bool) {
	var zero T
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return zero, false
	}
	v := d.items[len(d.items)-1]
	d.items = d.items[:len(d.items)-1]
	return v, true
}

// Steal removes from the top (FIFO end).
func (d *Locked[T]) Steal() (T, bool) {
	var zero T
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return zero, false
	}
	v := d.items[0]
	d.items = d.items[1:]
	return v, true
}

// StealBatch steals up to len(dst) entries from the top into dst.
func (d *Locked[T]) StealBatch(dst []T) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	m := copy(dst, d.items)
	if m > 0 {
		rest := len(d.items) - m
		copy(d.items, d.items[m:])
		var zero T
		for i := rest; i < len(d.items); i++ {
			d.items[i] = zero
		}
		d.items = d.items[:rest]
	}
	return m
}

// Len reports the number of entries.
func (d *Locked[T]) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.items)
}

// Empty reports whether the deque is empty.
func (d *Locked[T]) Empty() bool { return d.Len() == 0 }

// LazyHint reports whether the deque looks empty (see Deque.LazyHint).
func (d *Locked[T]) LazyHint() bool { return d.Len() == 0 }
