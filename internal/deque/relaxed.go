package deque

import (
	"sync/atomic"
)

// Relaxed is a fence-free work-stealing deque with multiplicity, after
// Castañeda & Piña ("Fully read/write fence-free work-stealing with
// multiplicity", arXiv 2008.04424): the owner's operations use only plain
// reads and blind writes — no compare-and-swap, no read-modify-write of
// any kind — and the price is a *relaxed* extraction guarantee: a task may
// rarely be extracted more than once (bounded multiplicity), never zero
// times. Exactly-once execution is restored one layer up by a per-task
// claim word (Claim) that every extractor must win before running the
// task; see WithClaim and internal/core's idempotence layer.
//
// The implementation splits the deque in two:
//
//   - a private ring, touched only by the owner with plain loads and
//     stores. The steady-state Push/Pop path begins and usually ends here:
//     zero atomic operations, zero allocations, no fence of any kind. This
//     is what removes the THE/Chase-Lev owner-side synchronization (a
//     store-load fence or CAS on every Pop) from the fork hot path.
//   - a published window, visible to thieves: a small ring of immutable
//     boxed nodes and one packed anchor word (head | size | tag). Thieves
//     extract with a CAS on the anchor; the owner publishes and reclaims
//     with *blind stores* to it. The owner's store can overwrite a
//     concurrent thief CAS, regressing the window over indexes a thief
//     already extracted — that is the multiplicity window, and it is the
//     whole trick: the owner never waits on thieves and never performs an
//     atomic RMW, so no extraction is ever lost, but one may be repeated.
//
// Publication is lazy: the newest private task stays private and older
// tasks are topped up into the window only while it is below its goal
// size, so a fork/join running ahead of the thieves (the common case)
// never publishes, never allocates, and never touches the anchor with a
// store. A task is boxed exactly once, at publication, into a node that is
// immutable until the GC reclaims it — a thief holding a stale node
// pointer only ever reads immutable memory, and duplicate extractions are
// resolved by the node's claim, never by unpublishing.
//
// Memory-model note (Go): sync/atomic is sequentially consistent, so on
// amd64 every atomic *store* still compiles to an XCHG. "Fence-free" here
// therefore means the owner's steady-state path performs *no* atomic
// operations at all, not that the published-side blind stores are free;
// those run only while thieves are actively draining the window, so their
// cost scales with steal pressure rather than with forks.
//
// Push, Pop, LazyHint and Unpublished are owner-only; Steal, StealIf and
// Len may be called from any goroutine.
type Relaxed[T Stampable[T]] struct {
	// Owner-private ring: plain memory, owner-only. head is the oldest
	// entry (next to publish), tail the insertion point (newest popped
	// first). Never touched by thieves, so no atomics and no clearing
	// discipline beyond GC hygiene.
	priv     []T
	privHead int64
	privTail int64

	// Published window: anchor packs (head, size, tag) in one word; ring
	// holds the window's boxed nodes. The window [head, head+size) always
	// contains every published-unclaimed task (the no-loss invariant); the
	// tag increments on every publication so a stale thief CAS — taken
	// against a window the owner has since rebuilt — cannot succeed.
	anchor atomic.Uint64
	ring   [relRingCap]atomic.Pointer[relNode[T]]

	// Publication backoff (owner-only plain memory). A publication is
	// "wasted" when the owner itself reclaims the node via Pop: the box was
	// allocated for thieves that never came. wasted counts consecutive
	// wasted publications since the last observed thief consumption; once
	// it reaches relWasteCap the owner stops feeding the window until
	// thieves consume again (detected through the stolenSeen watermark) or
	// the per-push decay in Push releases one probe publication. This is
	// what keeps an undisturbed deep fork/join — the nqueens publication
	// burst — from boxing a node per oscillation.
	pubs       int64 // total publications
	reclaims   int64 // window entries the owner reclaimed via Pop
	wasted     int64 // consecutive owner-reclaimed publications
	stolenSeen int64 // thief-consumption watermark: pubs - reclaims - size
	sincePub   int64 // pushes since the last backoff decay
}

// relNode boxes one published task with its execution claim. Published
// nodes are immutable: a thief that extracted index i may dereference its
// node pointer arbitrarily late (it won the anchor CAS, but the owner's
// blind store may already have resurrected i into the window for a second
// extractor), so nodes are never reused and never unpublished — the GC
// reclaims them once the last extractor drops its reference.
type relNode[T any] struct {
	claim Claim
	val   T
}

// Stampable is the element constraint of Relaxed: the deque must be able
// to stamp the publication-time claim into the value it hands to
// extractors, so every copy of a multiply-extracted task carries the same
// claim word. Value types that cannot carry a claim cannot ride a
// multiplicity deque.
type Stampable[T any] interface {
	// WithClaim returns a copy of the value carrying c as its execution
	// claim. Called once per publication, before the node becomes visible.
	WithClaim(c *Claim) T
}

// Claim is a one-shot execution claim. Every extractor of a published
// task — a thief that won the anchor CAS, or the owner reclaiming from
// the window — must win Acquire before executing it; the losers observed
// a duplicate extraction and must drop the task on the floor. The zero
// value is unclaimed.
type Claim struct{ state atomic.Uint32 }

// Acquire attempts to win the claim; exactly one caller ever succeeds.
// Nil-safe: a nil claim (a task that was never published, so never
// duplicable) is trivially won.
func (c *Claim) Acquire() bool {
	return c == nil || c.state.CompareAndSwap(0, 1)
}

const (
	// relRingCap is the published ring capacity. The window never exceeds
	// relPublishGoal entries, so the ring never grows and — because
	// relPublishGoal < relRingCap — a publication can never overwrite a
	// slot inside the live window.
	relRingCap = 64
	// relPublishGoal is the lazy-publication target: the owner tops the
	// window up to this many stealable tasks whenever it holds a deep
	// private backlog. Small enough that the window's claim CASes stay rare
	// on the owner side, large enough to feed several simultaneous thieves.
	relPublishGoal = 8
	// relPrivateReserve is the publication hysteresis: with a non-empty
	// window, the owner publishes only entries buried deeper than this many
	// private tasks. A fork/join oscillation of smaller amplitude then stays
	// entirely on the private (zero-atomic, zero-alloc) side instead of
	// republishing — and re-boxing — a node on every cycle at the boundary.
	// Only an empty window (thieves starving) overrides the reserve.
	relPrivateReserve = 8

	// relWasteCap bounds consecutive wasted publications: after this many
	// owner-reclaimed boxes with no thief consumption in between, topUp
	// stops publishing until a steal is observed or the decay below fires.
	relWasteCap = 4
	// relWasteDecay is the backoff release interval, in pushes: every this
	// many pushes one unit of wasted credit is returned, so a worker that
	// went quiet for thieves (or never had any) still probes the window
	// with a publication once per interval and parallelism can restart
	// after a serial phase. Stray steady-state boxing is thus bounded by
	// one allocation per relWasteDecay forks.
	relWasteDecay = 256

	relHeadBits = 24 // published head, mod 2^24
	relSizeBits = 16 // window size; <= relPublishGoal in practice
	relTagBits  = 24 // publication tag, mod 2^24
)

// packAnchor packs (head, size, tag) into one word: head<<40|size<<24|tag.
// head and tag wrap at 2^24; relRingCap divides 2^24, so slot indexing
// stays consistent across the wrap. A thief CAS can be fooled only if the
// anchor returns bit-for-bit to its loaded value with activity in between,
// which requires an exact multiple of 2^24 publications inside one
// load-to-CAS window — not a reachable schedule.
func packAnchor(head, size, tag uint64) uint64 {
	return (head&(1<<relHeadBits-1))<<(relSizeBits+relTagBits) |
		(size&(1<<relSizeBits-1))<<relTagBits |
		tag&(1<<relTagBits-1)
}

func unpackAnchor(a uint64) (head, size, tag uint64) {
	return a >> (relSizeBits + relTagBits),
		a >> relTagBits & (1<<relSizeBits - 1),
		a & (1<<relTagBits - 1)
}

// Push adds t at the bottom of the deque (owner only). The fast path is a
// plain ring append: a push holding no surplus (the tight fork/join loop,
// where the single pending child is about to be popped back) performs
// zero atomic operations. With a surplus, the anchor poll is one atomic
// load, and publication work happens only when the window is empty or a
// deeper-than-reserve backlog feeds it — so thieves draining the window is
// what makes the owner publish, and an undisturbed owner almost never
// does.
func (d *Relaxed[T]) Push(t T) {
	if d.priv == nil || d.privTail-d.privHead == int64(len(d.priv)) {
		d.growPriv()
	}
	d.priv[d.privTail&int64(len(d.priv)-1)] = t
	d.privTail++
	d.sincePub++
	if d.sincePub >= relWasteDecay {
		d.sincePub = 0
		if d.wasted > 0 {
			d.wasted-- // release one probe publication (see relWasteDecay)
		}
	}
	if d.privTail-d.privHead >= 2 {
		d.topUp()
	}
}

// growPriv doubles the private ring. Owner-only plain memory, so this is
// an ordinary copy; it amortizes to nothing and in shallow fork/join
// patterns (private depth <= initial capacity) never runs at all.
func (d *Relaxed[T]) growPriv() {
	n := initialCapacity
	for int64(n) < (d.privTail-d.privHead)*2 {
		n *= 2
	}
	nbuf := make([]T, n)
	for i := d.privHead; i < d.privTail; i++ {
		nbuf[i&int64(n-1)] = d.priv[i&int64(len(d.priv)-1)]
	}
	d.priv = nbuf
}

// topUp publishes oldest private tasks, governed by two rules with
// hysteresis between them: an *empty* window is refilled as soon as any
// surplus exists (two or more private tasks — the newest always stays
// private), so thieves are never starved for long; a *non-empty* window is
// topped toward its goal only from private backlog deeper than
// relPrivateReserve. The reserve is what keeps publication off the hot
// path: a fork/join oscillation of amplitude below the reserve never
// crosses the private/published boundary, so the owner republishes only on
// deep depth excursions, not once per fork. Each publication boxes the
// task with a fresh claim, makes the node visible in the ring, then
// blind-stores the widened anchor with a bumped tag. The stores may
// overwrite concurrent thief CASes; that only regresses the window over
// already-extracted indexes (re-extraction, resolved by the claims), never
// over an unpublished slot.
func (d *Relaxed[T]) topUp() {
	head, size, tag := unpackAnchor(d.anchor.Load())
	// Thief-consumption watermark: every publication is eventually either
	// reclaimed by the owner or consumed by a thief, so pubs - reclaims -
	// size only grows past its recorded high-water mark when thieves have
	// taken something. Observing that resets the waste backoff.
	if stolen := d.pubs - d.reclaims - int64(size); stolen > d.stolenSeen {
		d.stolenSeen = stolen
		d.wasted = 0
	}
	if d.wasted >= relWasteCap {
		return // publications are going to waste; starve the window instead
	}
	for {
		surplus := d.privTail - d.privHead
		starving := size == 0 && surplus >= 2
		backlog := size < relPublishGoal && surplus > relPrivateReserve
		if !starving && !backlog {
			return
		}
		n := &relNode[T]{}
		n.val = d.priv[d.privHead&int64(len(d.priv)-1)].WithClaim(&n.claim)
		var zero T
		d.priv[d.privHead&int64(len(d.priv)-1)] = zero // release for GC
		d.privHead++
		d.ring[(head+size)&(relRingCap-1)].Store(n)
		size++
		tag++
		d.pubs++
		d.anchor.Store(packAnchor(head, size, tag))
	}
}

// Pop removes and returns the bottom entry (owner only). The fast path —
// any private task present — is plain loads and stores. When the private
// side is empty the owner reclaims the newest published entry with an
// anchor load, a node read, and a blind anchor store: still no RMW and no
// fence, at the price that a thief may have extracted (or may yet extract)
// the same node — the caller's claim arbitrates.
func (d *Relaxed[T]) Pop() (T, bool) {
	var zero T
	if d.privTail > d.privHead {
		d.privTail--
		i := d.privTail & int64(len(d.priv)-1)
		v := d.priv[i]
		d.priv[i] = zero
		return v, true
	}
	head, size, tag := unpackAnchor(d.anchor.Load())
	if size == 0 {
		return zero, false
	}
	n := d.ring[(head+size-1)&(relRingCap-1)].Load()
	d.anchor.Store(packAnchor(head, size-1, tag))
	d.reclaims++
	d.wasted++ // this box never fed a thief; charge the publication backoff
	return n.val, true
}

// Steal removes and returns the top (oldest published) entry; any
// goroutine may call it. Thieves serialize among themselves — and yield to
// the owner's blind stores — through the single CAS on the anchor. A
// winning CAS guarantees the node read belongs to the window observed
// (any intervening publication bumped the tag, any reclaim changed the
// size, any competing steal moved the head), but not that the task is
// unclaimed: the owner's store may have resurrected an extracted index.
// Callers must win the value's Claim before executing it.
func (d *Relaxed[T]) Steal() (T, bool) {
	var zero T
	a := d.anchor.Load()
	head, size, tag := unpackAnchor(a)
	if size == 0 {
		return zero, false
	}
	n := d.ring[head&(relRingCap-1)].Load()
	if n == nil {
		return zero, false // window not yet populated at this index
	}
	if !d.anchor.CompareAndSwap(a, packAnchor(head+1, size-1, tag)) {
		return zero, false
	}
	return n.val, true
}

// StealIf steals the top entry only if pred accepts it — the
// restricted-stealing hook shared with the other deque kinds. Like
// Chase-Lev, the candidate is inspected before the CAS: published nodes
// are immutable forever (they are never recycled, precisely so that
// late-dereferencing duplicate extractors stay safe), so the pre-CAS read
// is always of stable memory and a stale candidate is rejected by the CAS.
func (d *Relaxed[T]) StealIf(pred func(T) bool) (T, bool) {
	var zero T
	a := d.anchor.Load()
	head, size, tag := unpackAnchor(a)
	if size == 0 {
		return zero, false
	}
	n := d.ring[head&(relRingCap-1)].Load()
	if n == nil {
		return zero, false
	}
	if !pred(n.val) {
		return zero, false
	}
	if !d.anchor.CompareAndSwap(a, packAnchor(head+1, size-1, tag)) {
		return zero, false
	}
	return n.val, true
}

// StealBatch steals up to len(dst) of the oldest published entries into
// dst and reports how many were taken — the steal-half extraction for the
// published window. Unlike the other deque kinds it is a true multi-entry
// extraction: the nodes are read first (published nodes are immutable
// forever, so pre-CAS reads are always of stable memory) and a single CAS
// advances the anchor over all of them at once. As with Steal, a winning
// CAS does not guarantee the tasks are unclaimed — the owner's blind store
// may have resurrected extracted indexes for another extractor — so the
// caller must win each value's Claim before executing it.
func (d *Relaxed[T]) StealBatch(dst []T) int {
	var zero T
	a := d.anchor.Load()
	head, size, tag := unpackAnchor(a)
	if size == 0 || len(dst) == 0 {
		return 0
	}
	k := uint64(len(dst))
	if k > size {
		k = size
	}
	m := uint64(0)
	for ; m < k; m++ {
		n := d.ring[(head+m)&(relRingCap-1)].Load()
		if n == nil {
			break // window not yet populated at this index
		}
		dst[m] = n.val
	}
	if m == 0 {
		return 0
	}
	if !d.anchor.CompareAndSwap(a, packAnchor(head+m, size-m, tag)) {
		for i := uint64(0); i < m; i++ {
			dst[i] = zero // drop the copies; their claims were never won
		}
		return 0
	}
	return int(m)
}

// Len reports the published window size — the only portion thieves can
// see, which makes it the right victim-selection signal. Like the other
// deques' Len it is a racy snapshot. Private backlog is excluded (it
// lives in plain owner memory a concurrent reader must not touch); use
// Unpublished from the owner for quiescence accounting.
func (d *Relaxed[T]) Len() int {
	_, size, _ := unpackAnchor(d.anchor.Load())
	return int(size)
}

// Empty reports whether the published window appears empty.
func (d *Relaxed[T]) Empty() bool { return d.Len() == 0 }

// Unpublished reports the owner-private backlog (owner only — plain
// reads). At quiescence the harness adds it to Len to assert no forked
// task was left behind in either half.
func (d *Relaxed[T]) Unpublished() int { return int(d.privTail - d.privHead) }

// LazyHint reports whether the owner should publish more parallelism:
// true when thieves see an empty window and the private side holds no
// surplus that the next pushes would publish anyway. Owner-only, like
// Push; one atomic load.
func (d *Relaxed[T]) LazyHint() bool {
	if d.privTail-d.privHead >= 2 {
		return false // surplus exists; upcoming pushes will publish it
	}
	_, size, _ := unpackAnchor(d.anchor.Load())
	return size == 0
}
