package deque

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// stealIfAPI is the full restricted-stealing surface the scheduler's deque
// abstraction requires; both implementations must satisfy it.
type stealIfAPI[T any] interface {
	dequeAPI[T]
	StealIf(func(T) bool) (T, bool)
}

var (
	_ stealIfAPI[int] = (*Deque[int])(nil)
	_ stealIfAPI[int] = (*ChaseLev[int])(nil)
)

// TestQuickDifferentialTHEvsChaseLev pins the tentpole equivalence: any
// single-threaded interleaving of Push/Pop/Steal/StealIf — the exact
// operation set the scheduler issues — produces identical results and
// identical deque contents on the THE and Chase–Lev implementations, so
// swapping Config.Deque cannot change scheduling semantics.
func TestQuickDifferentialTHEvsChaseLev(t *testing.T) {
	preds := []func(int) bool{
		func(int) bool { return true },
		func(int) bool { return false },
		func(v int) bool { return v%2 == 0 },
		func(v int) bool { return v%5 != 0 },
	}
	prop := func(ops []uint8) bool {
		a := &Deque[int]{}
		b := &ChaseLev[int]{}
		next := 0
		for _, op := range ops {
			switch op % 4 {
			case 0:
				a.Push(next)
				b.Push(next)
				next++
			case 1:
				av, aok := a.Pop()
				bv, bok := b.Pop()
				if av != bv || aok != bok {
					return false
				}
			case 2:
				av, aok := a.Steal()
				bv, bok := b.Steal()
				if av != bv || aok != bok {
					return false
				}
			case 3:
				pred := preds[int(op/4)%len(preds)]
				av, aok := a.StealIf(pred)
				bv, bok := b.StealIf(pred)
				if av != bv || aok != bok {
					return false
				}
			}
			if a.Len() != b.Len() {
				return false
			}
		}
		// Drain both and compare remaining contents end to end.
		for {
			av, aok := a.Steal()
			bv, bok := b.Steal()
			if av != bv || aok != bok {
				return false
			}
			if !aok {
				return true
			}
		}
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestChaseLevStealIf mirrors the THE StealIf semantics tests: a rejected
// candidate leaves the deque untouched, and the predicate is only ever
// offered the top entry.
func TestChaseLevStealIf(t *testing.T) {
	d := &ChaseLev[int]{}
	if _, ok := d.StealIf(func(int) bool { return true }); ok {
		t.Fatal("StealIf on empty deque succeeded")
	}
	for i := 0; i < 5; i++ {
		d.Push(i)
	}
	if _, ok := d.StealIf(func(v int) bool { return v > 100 }); ok {
		t.Fatal("StealIf stole a rejected entry")
	}
	if d.Len() != 5 {
		t.Fatalf("Len = %d after rejection, want 5", d.Len())
	}
	v, ok := d.StealIf(func(v int) bool { return v == 0 })
	if !ok || v != 0 {
		t.Fatalf("StealIf = %d,%v, want 0,true", v, ok)
	}
	// The next top is 1; a predicate matching only 2 must not skip over it.
	if _, ok := d.StealIf(func(v int) bool { return v == 2 }); ok {
		t.Fatal("StealIf skipped past the top entry")
	}
	d.Push(5)
	d.Pop()
	d.Pop()
	d.Pop()
	d.Pop() // drained down to {1}
	if v, ok := d.StealIf(func(v int) bool { return v == 1 }); !ok || v != 1 {
		t.Fatalf("StealIf on last entry = %d,%v, want 1,true", v, ok)
	}
	if _, ok := d.StealIf(func(int) bool { return true }); ok {
		t.Fatal("StealIf on drained deque succeeded")
	}
}

// TestChaseLevStealIfConcurrentNoLossNoDup is the ChaseLev twin of the THE
// predicate-thief safety test: an owner popping and pushing against racing
// predicate thieves, exactly-once consumption.
func TestChaseLevStealIfConcurrentNoLossNoDup(t *testing.T) {
	const total = 20000
	d := &ChaseLev[int]{}
	seen := make([]atomic.Int32, total)
	var consumed atomic.Int64
	record := func(v int) {
		if seen[v].Add(1) != 1 {
			t.Errorf("value %d consumed twice", v)
		}
		consumed.Add(1)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(parity int) {
			defer wg.Done()
			pred := func(v int) bool { return v%2 == parity }
			for {
				if v, ok := d.StealIf(pred); ok {
					record(v)
					continue
				}
				select {
				case <-stop:
					for {
						v, ok := d.Steal()
						if !ok {
							return
						}
						record(v)
					}
				default:
				}
			}
		}(i % 2)
	}

	for v := 0; v < total; {
		for i := 0; i < 1+v%5 && v < total; i++ {
			d.Push(v)
			v++
		}
		if v%2 == 0 {
			if got, ok := d.Pop(); ok {
				record(got)
			}
		}
	}
	for {
		v, ok := d.Pop()
		if !ok {
			break
		}
		record(v)
	}
	close(stop)
	wg.Wait()
	for {
		v, ok := d.Steal()
		if !ok {
			break
		}
		record(v)
	}
	if got := consumed.Load(); got != total {
		t.Errorf("consumed %d, want %d", got, total)
	}
}
