package deque

import (
	"sync"
	"sync/atomic"
	"testing"
)

var _ dequeAPI[int] = (*ChaseLev[int])(nil)

func TestChaseLevBasics(t *testing.T) {
	d := &ChaseLev[int]{}
	if _, ok := d.Pop(); ok {
		t.Error("Pop on empty succeeded")
	}
	if _, ok := d.Steal(); ok {
		t.Error("Steal on empty succeeded")
	}
	for i := 0; i < 10; i++ {
		d.Push(i)
	}
	if v, _ := d.Steal(); v != 0 {
		t.Errorf("first steal = %d, want 0 (FIFO end)", v)
	}
	if v, _ := d.Pop(); v != 9 {
		t.Errorf("first pop = %d, want 9 (LIFO end)", v)
	}
	if d.Len() != 8 {
		t.Errorf("Len = %d, want 8", d.Len())
	}
}

func TestChaseLevGrowthPreservesOrder(t *testing.T) {
	d := &ChaseLev[int]{}
	const n = initialCapacity*4 + 9
	for i := 0; i < n; i++ {
		d.Push(i)
	}
	for i := 0; i < n; i++ {
		v, ok := d.Steal()
		if !ok || v != i {
			t.Fatalf("Steal = %d,%v, want %d", v, ok, i)
		}
	}
}

func TestChaseLevDifferentialSequential(t *testing.T) {
	a := &ChaseLev[int]{}
	b := &Locked[int]{}
	next := 0
	// A fixed pseudo-random op tape, same as the quick test's spirit but
	// deterministic so failures reproduce.
	state := uint64(42)
	for step := 0; step < 20000; step++ {
		state = state*6364136223846793005 + 1442695040888963407
		switch state % 3 {
		case 0:
			a.Push(next)
			b.Push(next)
			next++
		case 1:
			av, aok := a.Pop()
			bv, bok := b.Pop()
			if av != bv || aok != bok {
				t.Fatalf("step %d: Pop %d,%v vs %d,%v", step, av, aok, bv, bok)
			}
		case 2:
			av, aok := a.Steal()
			bv, bok := b.Steal()
			if av != bv || aok != bok {
				t.Fatalf("step %d: Steal %d,%v vs %d,%v", step, av, aok, bv, bok)
			}
		}
		if a.Len() != b.Len() {
			t.Fatalf("step %d: Len %d vs %d", step, a.Len(), b.Len())
		}
	}
}

// TestChaseLevConcurrentNoLossNoDup mirrors the THE deque's safety test:
// one owner against racing thieves, exactly-once consumption.
func TestChaseLevConcurrentNoLossNoDup(t *testing.T) {
	const (
		thieves = 4
		total   = 20000
	)
	d := &ChaseLev[int]{}
	seen := make([]atomic.Int32, total)
	var consumed atomic.Int64
	record := func(v int) {
		if seen[v].Add(1) != 1 {
			t.Errorf("value %d consumed more than once", v)
		}
		consumed.Add(1)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if v, ok := d.Steal(); ok {
					record(v)
					continue
				}
				select {
				case <-stop:
					for {
						v, ok := d.Steal()
						if !ok {
							return
						}
						record(v)
					}
				default:
				}
			}
		}()
	}

	for v := 0; v < total; {
		burst := 1 + v%5
		for i := 0; i < burst && v < total; i++ {
			d.Push(v)
			v++
		}
		if v%3 == 0 {
			if got, ok := d.Pop(); ok {
				record(got)
			}
		}
	}
	for {
		v, ok := d.Pop()
		if !ok {
			break
		}
		record(v)
	}
	close(stop)
	wg.Wait()
	for {
		v, ok := d.Steal()
		if !ok {
			break
		}
		record(v)
	}
	if got := consumed.Load(); got != total {
		t.Errorf("consumed %d, want %d", got, total)
	}
}

func BenchmarkChaseLevPushPop(b *testing.B) {
	d := &ChaseLev[int]{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Push(i)
		d.Pop()
	}
}

func BenchmarkChaseLevPushSteal(b *testing.B) {
	d := &ChaseLev[int]{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Push(i)
		d.Steal()
	}
}
