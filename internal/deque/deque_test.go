package deque

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// dequeAPI lets the same tests run against both implementations.
type dequeAPI[T any] interface {
	Push(T)
	Pop() (T, bool)
	Steal() (T, bool)
	Len() int
	Empty() bool
}

var (
	_ dequeAPI[int] = (*Deque[int])(nil)
	_ dequeAPI[int] = (*Locked[int])(nil)
)

func implementations() map[string]func() dequeAPI[int] {
	return map[string]func() dequeAPI[int]{
		"THE":      func() dequeAPI[int] { return &Deque[int]{} },
		"Locked":   func() dequeAPI[int] { return &Locked[int]{} },
		"ChaseLev": func() dequeAPI[int] { return &ChaseLev[int]{} },
	}
}

func TestEmptyPopSteal(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			d := mk()
			if _, ok := d.Pop(); ok {
				t.Error("Pop on empty succeeded")
			}
			if _, ok := d.Steal(); ok {
				t.Error("Steal on empty succeeded")
			}
			if !d.Empty() || d.Len() != 0 {
				t.Error("empty deque misreports size")
			}
		})
	}
}

func TestPopIsLIFO(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			d := mk()
			for i := 0; i < 10; i++ {
				d.Push(i)
			}
			for i := 9; i >= 0; i-- {
				v, ok := d.Pop()
				if !ok || v != i {
					t.Fatalf("Pop = %d,%v, want %d,true", v, ok, i)
				}
			}
		})
	}
}

func TestStealIsFIFO(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			d := mk()
			for i := 0; i < 10; i++ {
				d.Push(i)
			}
			for i := 0; i < 10; i++ {
				v, ok := d.Steal()
				if !ok || v != i {
					t.Fatalf("Steal = %d,%v, want %d,true", v, ok, i)
				}
			}
		})
	}
}

func TestMixedEnds(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			d := mk()
			for i := 0; i < 6; i++ {
				d.Push(i)
			}
			if v, _ := d.Steal(); v != 0 {
				t.Fatalf("first steal = %d, want 0", v)
			}
			if v, _ := d.Pop(); v != 5 {
				t.Fatalf("first pop = %d, want 5", v)
			}
			if v, _ := d.Steal(); v != 1 {
				t.Fatalf("second steal = %d, want 1", v)
			}
			if d.Len() != 3 {
				t.Fatalf("Len = %d, want 3", d.Len())
			}
		})
	}
}

func TestGrowthPreservesOrder(t *testing.T) {
	d := &Deque[int]{}
	const n = initialCapacity*4 + 13
	for i := 0; i < n; i++ {
		d.Push(i)
	}
	if d.Len() != n {
		t.Fatalf("Len = %d, want %d", d.Len(), n)
	}
	for i := 0; i < n/2; i++ {
		if v, ok := d.Steal(); !ok || v != i {
			t.Fatalf("Steal = %d,%v, want %d", v, ok, i)
		}
	}
	for i := n - 1; i >= n/2; i-- {
		if v, ok := d.Pop(); !ok || v != i {
			t.Fatalf("Pop = %d,%v, want %d", v, ok, i)
		}
	}
}

func TestGrowthAfterWrapAround(t *testing.T) {
	d := &Deque[int]{}
	// Advance head and tail far past the initial ring size so indices wrap,
	// then force growth and verify contents.
	for round := 0; round < 10; round++ {
		for i := 0; i < initialCapacity-1; i++ {
			d.Push(round*1000 + i)
		}
		for i := 0; i < initialCapacity-1; i++ {
			if _, ok := d.Steal(); !ok {
				t.Fatal("steal failed during warm-up")
			}
		}
	}
	const n = initialCapacity * 3
	for i := 0; i < n; i++ {
		d.Push(i)
	}
	for i := 0; i < n; i++ {
		if v, ok := d.Steal(); !ok || v != i {
			t.Fatalf("post-wrap Steal = %d,%v, want %d", v, ok, i)
		}
	}
}

// Property: any interleaved single-threaded sequence of push/pop/steal
// behaves identically on the THE deque and the locked reference.
func TestQuickDifferentialSequential(t *testing.T) {
	prop := func(ops []uint8) bool {
		a := &Deque[int]{}
		b := &Locked[int]{}
		next := 0
		for _, op := range ops {
			switch op % 3 {
			case 0:
				a.Push(next)
				b.Push(next)
				next++
			case 1:
				av, aok := a.Pop()
				bv, bok := b.Pop()
				if av != bv || aok != bok {
					return false
				}
			case 2:
				av, aok := a.Steal()
				bv, bok := b.Steal()
				if av != bv || aok != bok {
					return false
				}
			}
			if a.Len() != b.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestConcurrentNoLossNoDup runs one owner (push/pop) against several
// thieves and verifies every pushed value is consumed exactly once — the
// core safety property the THE protocol must provide.
func TestConcurrentNoLossNoDup(t *testing.T) {
	const (
		thieves = 4
		total   = 20000
	)
	d := &Deque[int]{}
	seen := make([]atomic.Int32, total)
	var consumed atomic.Int64

	record := func(v int) {
		if seen[v].Add(1) != 1 {
			t.Errorf("value %d consumed more than once", v)
		}
		consumed.Add(1)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if v, ok := d.Steal(); ok {
					record(v)
					continue
				}
				select {
				case <-stop:
					// Drain anything left after the owner finished.
					for {
						v, ok := d.Steal()
						if !ok {
							return
						}
						record(v)
					}
				default:
				}
			}
		}()
	}

	// Owner: pushes in bursts, pops some of its own.
	for v := 0; v < total; {
		burst := 1 + v%7
		for i := 0; i < burst && v < total; i++ {
			d.Push(v)
			v++
		}
		if v%3 == 0 {
			if got, ok := d.Pop(); ok {
				record(got)
			}
		}
	}
	// Owner drains its own remainder.
	for {
		v, ok := d.Pop()
		if !ok {
			break
		}
		record(v)
	}
	close(stop)
	wg.Wait()
	// One final drain in case a thief lost a race at the very end.
	for {
		v, ok := d.Steal()
		if !ok {
			break
		}
		record(v)
	}

	if got := consumed.Load(); got != total {
		t.Errorf("consumed %d values, want %d", got, total)
	}
}

// TestConcurrentStealersOnly floods the deque and lets thieves race each
// other with no owner pops in flight.
func TestConcurrentStealersOnly(t *testing.T) {
	const total = 10000
	d := &Deque[int]{}
	for i := 0; i < total; i++ {
		d.Push(i)
	}
	var sum atomic.Int64
	var count atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v, ok := d.Steal()
				if !ok {
					return
				}
				sum.Add(int64(v))
				count.Add(1)
			}
		}()
	}
	wg.Wait()
	if count.Load() != total {
		t.Errorf("stole %d, want %d", count.Load(), total)
	}
	want := int64(total) * (total - 1) / 2
	if sum.Load() != want {
		t.Errorf("sum = %d, want %d", sum.Load(), want)
	}
}

func BenchmarkPushPop(b *testing.B) {
	d := &Deque[int]{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Push(i)
		d.Pop()
	}
}

func BenchmarkPushSteal(b *testing.B) {
	d := &Deque[int]{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Push(i)
		d.Steal()
	}
}

func BenchmarkLockedPushPop(b *testing.B) {
	d := &Locked[int]{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Push(i)
		d.Pop()
	}
}
