package deque

import (
	"sync"
	"sync/atomic"
)

// ChaseLev is the Chase–Lev work-stealing deque ("Dynamic Circular
// Work-Stealing Deque", SPAA 2005), the other classic alternative to the
// Cilk THE protocol this runtime defaults to. Thieves are entirely
// lock-free (CAS on top); the owner synchronizes with thieves only when
// the deque may be down to its last element. Provided for comparison and
// as a drop-in alternative; the THE Deque matches the paper's runtime.
//
// Push and Pop are owner-only; Steal may be called from any goroutine.
type ChaseLev[T any] struct {
	top    atomic.Int64 // next index to steal; only increases
	bottom atomic.Int64 // next index to push; owner-managed

	buf atomic.Pointer[clRing[T]]

	// grow serializes ring replacement against concurrent thieves reading
	// the old ring: the classic algorithm leaks or hazard-protects old
	// rings; holding a lock only during growth and steal keeps the Go
	// version simple while leaving the owner's fast paths lock-free.
	grow sync.Mutex
}

// clRing is a power-of-two circular buffer.
type clRing[T any] struct {
	mask int64
	elts []T
}

func newCLRing[T any](capacity int64) *clRing[T] {
	return &clRing[T]{mask: capacity - 1, elts: make([]T, capacity)}
}

func (r *clRing[T]) get(i int64) T    { return r.elts[i&r.mask] }
func (r *clRing[T]) put(i int64, v T) { r.elts[i&r.mask] = v }
func (r *clRing[T]) size() int64      { return r.mask + 1 }

// Push adds v at the bottom (owner only).
func (d *ChaseLev[T]) Push(v T) {
	b := d.bottom.Load()
	t := d.top.Load()
	ring := d.buf.Load()
	if ring == nil || b-t >= ring.size() {
		d.growRing(t, b)
		ring = d.buf.Load()
	}
	ring.put(b, v)
	d.bottom.Store(b + 1)
}

func (d *ChaseLev[T]) growRing(t, b int64) {
	d.grow.Lock()
	defer d.grow.Unlock()
	old := d.buf.Load()
	var capacity int64 = initialCapacity
	if old != nil {
		capacity = old.size() * 2
	}
	next := newCLRing[T](capacity)
	if old != nil {
		for i := t; i < b; i++ {
			next.put(i, old.get(i))
		}
	}
	d.buf.Store(next)
}

// Pop removes from the bottom (owner only).
func (d *ChaseLev[T]) Pop() (T, bool) {
	var zero T
	b := d.bottom.Load() - 1
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: restore and fail.
		d.bottom.Store(b + 1)
		return zero, false
	}
	ring := d.buf.Load()
	v := ring.get(b)
	if t == b {
		// Last element: race a thief for it with the same CAS they use.
		if !d.top.CompareAndSwap(t, t+1) {
			v = zero // thief won
			d.bottom.Store(b + 1)
			return zero, false
		}
		d.bottom.Store(b + 1)
		return v, true
	}
	return v, true
}

// Steal removes from the top (any goroutine).
func (d *ChaseLev[T]) Steal() (T, bool) {
	var zero T
	d.grow.Lock() // protects the ring pointer; see type comment
	defer d.grow.Unlock()
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return zero, false
	}
	ring := d.buf.Load()
	v := ring.get(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return zero, false // lost to the owner's last-element pop or another thief
	}
	return v, true
}

// Len reports a racy size snapshot.
func (d *ChaseLev[T]) Len() int {
	n := int(d.bottom.Load() - d.top.Load())
	if n < 0 {
		return 0
	}
	return n
}

// Empty reports whether the deque appears empty.
func (d *ChaseLev[T]) Empty() bool { return d.Len() == 0 }
