package deque

import (
	"sync/atomic"
)

// ChaseLev is a lock-free Chase–Lev work-stealing deque ("Dynamic Circular
// Work-Stealing Deque", SPAA 2005), the classic alternative to the Cilk THE
// protocol this runtime defaults to. Thieves never take a lock: a steal is
// one CAS on top. The owner synchronizes with thieves only when the deque
// may be down to its last element, using the same CAS.
//
// Entries are boxed: Push allocates one node per element and the node is
// immutable from publication until the owner reclaims it. That is what
// makes the implementation safe (and race-detector-clean) without hazard
// pointers or per-slot atomics over arbitrary T: a thief holding a stale
// ring or a stale slot pointer only ever reads immutable memory, and the
// CAS on top decides ownership. With recycling disabled the cost is one
// small allocation per Push; EnableRecycling removes it from the
// steady-state fork/join path at the price of forbidding StealIf (see
// below), which is why the runtime enables it only for strategies that
// steal unconditionally.
//
// Ring slots consumed by thieves are not cleared (a thief must never write
// a slot the owner may be concurrently reusing), so up to one ring's worth
// of consumed nodes can stay reachable until the slot is overwritten or the
// ring is dropped. The owner's Pop does clear, as it is the slot's only
// writer.
//
// Push and Pop are owner-only; Steal and StealIf may be called from any
// goroutine.
type ChaseLev[T any] struct {
	top    atomic.Int64 // next index to steal; only increases
	bottom atomic.Int64 // next index to push; owner-managed

	buf atomic.Pointer[clRing[T]]

	// Owner-side node recycling (EnableRecycling). free holds nodes whose
	// entries the owner popped; Push reuses them instead of allocating.
	// Plain owner-only memory.
	recycle bool
	free    []*T
}

// clFreeCap bounds the owner's recycled-node hoard.
const clFreeCap = 64

// EnableRecycling turns on owner-side node reuse: nodes whose entries the
// owner pops are kept on a free list and rewritten by later Pushes, making
// the steady-state fork/join path allocation-free. Must be called before
// first use, and the deque must then never be offered to StealIf.
//
// Safety: recycling is compatible with Steal/StealBatch but NOT StealIf.
// A thief's Steal dereferences its node only after winning the CAS on top,
// and a winning CAS pins the node: the owner can no longer pop (and hence
// recycle) that index, and the SC ordering of (top, bottom, ring, slot)
// loads rules out reading a ring older than the one the index was pushed
// into. StealIf, by contrast, inspects the candidate *before* its CAS; a
// concurrent owner pop of that index may recycle the node mid-inspection
// and a later Push would rewrite it under the predicate — a torn read. The
// runtime therefore enables recycling only for strategies whose thieves
// never use StealIf (i.e. not TBB depth-restriction or leapfrogging).
func (d *ChaseLev[T]) EnableRecycling() { d.recycle = true }

// clRing is a power-of-two circular buffer of boxed entries. Old rings stay
// valid after growth — the GC reclaims them once the last stale thief drops
// its reference — so growth needs no synchronization beyond the atomic buf
// swap.
type clRing[T any] struct {
	mask int64
	elts []atomic.Pointer[T]
}

func newCLRing[T any](capacity int64) *clRing[T] {
	return &clRing[T]{mask: capacity - 1, elts: make([]atomic.Pointer[T], capacity)}
}

func (r *clRing[T]) slot(i int64) *atomic.Pointer[T] { return &r.elts[i&r.mask] }
func (r *clRing[T]) size() int64                     { return r.mask + 1 }

// Push adds v at the bottom (owner only).
func (d *ChaseLev[T]) Push(v T) {
	b := d.bottom.Load()
	t := d.top.Load()
	ring := d.buf.Load()
	if ring == nil || b-t >= ring.size() {
		ring = d.growRing(t, b)
	}
	var p *T
	if n := len(d.free); n > 0 {
		p = d.free[n-1]
		d.free[n-1] = nil
		d.free = d.free[:n-1]
	} else {
		p = new(T)
	}
	*p = v
	ring.slot(b).Store(p)
	d.bottom.Store(b + 1)
}

// reclaim retires a node the owner just popped. Only reachable when the
// owner holds exclusive ownership of the entry (a non-last pop, or a won
// last-element CAS), which is what makes rewriting the node in a later
// Push safe against every thief dereference path except StealIf — see
// EnableRecycling.
func (d *ChaseLev[T]) reclaim(p *T) {
	if d.recycle && len(d.free) < clFreeCap {
		d.free = append(d.free, p)
	}
}

// growRing replaces the ring with one twice as large. Only the owner grows,
// so no mutual exclusion is needed; concurrent thieves keep reading the old
// ring, whose entries remain valid (stale claims are rejected by their CAS
// on top).
func (d *ChaseLev[T]) growRing(t, b int64) *clRing[T] {
	old := d.buf.Load()
	var capacity int64 = initialCapacity
	if old != nil {
		capacity = old.size() * 2
	}
	next := newCLRing[T](capacity)
	if old != nil {
		for i := t; i < b; i++ {
			next.slot(i).Store(old.slot(i).Load())
		}
	}
	d.buf.Store(next)
	return next
}

// Pop removes from the bottom (owner only).
func (d *ChaseLev[T]) Pop() (T, bool) {
	var zero T
	b := d.bottom.Load() - 1
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: restore and fail.
		d.bottom.Store(b + 1)
		return zero, false
	}
	ring := d.buf.Load()
	slot := ring.slot(b)
	p := slot.Load()
	if t == b {
		// Last element: race a thief for it with the same CAS they use.
		if !d.top.CompareAndSwap(t, t+1) {
			// Thief won; it will read the slot itself.
			d.bottom.Store(b + 1)
			return zero, false
		}
		d.bottom.Store(b + 1)
		slot.Store(nil) // release; owner is the slot's only writer
		v := *p
		d.reclaim(p)
		return v, true
	}
	slot.Store(nil)
	v := *p
	d.reclaim(p)
	return v, true
}

// Steal removes from the top (any goroutine). Lock-free: one CAS decides.
func (d *ChaseLev[T]) Steal() (T, bool) {
	var zero T
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return zero, false
	}
	ring := d.buf.Load()
	p := ring.slot(t).Load()
	if p == nil {
		// The owner consumed index t (and cleared the slot) after our
		// bottom load; the CAS below would fail anyway.
		return zero, false
	}
	if !d.top.CompareAndSwap(t, t+1) {
		return zero, false // lost to the owner's last-element pop or another thief
	}
	// p may be stale only if the owner reused the slot for index t+size,
	// which requires it to have observed top > t — impossible before our
	// successful CAS. So a winning CAS guarantees p is index t's entry,
	// and entries are immutable after publication.
	return *p, true
}

// StealIf steals the top entry only if pred accepts it, leaving the deque
// untouched otherwise — the restricted-stealing hook (TBB depth restriction,
// leapfrogging) shared with the THE Deque. Unlike THE's claim-then-inspect,
// the lock-free version inspects first: entries are immutable once
// published, so reading the candidate before the CAS is safe, and a stale
// read is caught by the CAS failing. A rejection by pred on a lost race is
// indistinguishable from the entry being taken by someone else, which is
// the same observable behaviour as the THE implementation.
func (d *ChaseLev[T]) StealIf(pred func(T) bool) (T, bool) {
	if d.recycle {
		panic("deque: StealIf on a recycling ChaseLev (see EnableRecycling)")
	}
	var zero T
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return zero, false
	}
	ring := d.buf.Load()
	p := ring.slot(t).Load()
	if p == nil {
		return zero, false
	}
	if !pred(*p) {
		return zero, false
	}
	if !d.top.CompareAndSwap(t, t+1) {
		return zero, false
	}
	return *p, true
}

// StealBatch steals up to len(dst) entries from the top into dst and
// reports how many were taken. Lock-free: a loop of single-entry CASes
// (Chase-Lev's top CAS admits no multi-entry variant), stopping at the
// first lost race, so a batch is cheap when uncontended and degrades to
// one entry under contention. Any worker may call it.
func (d *ChaseLev[T]) StealBatch(dst []T) int {
	m := 0
	for m < len(dst) {
		v, ok := d.Steal()
		if !ok {
			break
		}
		dst[m] = v
		m++
	}
	return m
}

// Len reports a racy size snapshot.
func (d *ChaseLev[T]) Len() int {
	n := int(d.bottom.Load() - d.top.Load())
	if n < 0 {
		return 0
	}
	return n
}

// Empty reports whether the deque appears empty.
func (d *ChaseLev[T]) Empty() bool { return d.Len() == 0 }

// LazyHint reports whether the owner should publish more parallelism: true
// when the deque looks empty (see Deque.LazyHint). Two atomic loads, no CAS.
func (d *ChaseLev[T]) LazyHint() bool { return d.bottom.Load()-d.top.Load() <= 0 }
