package deque

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestStealIfAcceptReject(t *testing.T) {
	d := &Deque[int]{}
	for i := 0; i < 5; i++ {
		d.Push(i)
	}
	if _, ok := d.StealIf(func(v int) bool { return v > 100 }); ok {
		t.Fatal("StealIf stole a rejected entry")
	}
	if d.Len() != 5 {
		t.Fatalf("Len = %d after rejection, want 5", d.Len())
	}
	v, ok := d.StealIf(func(v int) bool { return v == 0 })
	if !ok || v != 0 {
		t.Fatalf("StealIf = %d,%v, want 0,true", v, ok)
	}
	// The next top is 1; a predicate matching only 2 must not skip over it.
	if _, ok := d.StealIf(func(v int) bool { return v == 2 }); ok {
		t.Fatal("StealIf skipped past the top entry")
	}
}

func TestStealIfEmpty(t *testing.T) {
	d := &Deque[int]{}
	if _, ok := d.StealIf(func(int) bool { return true }); ok {
		t.Fatal("StealIf on empty deque succeeded")
	}
	d.Push(1)
	d.Pop()
	if _, ok := d.StealIf(func(int) bool { return true }); ok {
		t.Fatal("StealIf on drained deque succeeded")
	}
}

// TestStealIfConcurrentNoLossNoDup races an owner that pops and re-pushes
// against predicate thieves, checking exactly-once consumption — the
// scenario that breaks a read-before-claim implementation.
func TestStealIfConcurrentNoLossNoDup(t *testing.T) {
	const total = 20000
	d := &Deque[int]{}
	seen := make([]atomic.Int32, total)
	var consumed atomic.Int64
	record := func(v int) {
		if seen[v].Add(1) != 1 {
			t.Errorf("value %d consumed twice", v)
		}
		consumed.Add(1)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(parity int) {
			defer wg.Done()
			pred := func(v int) bool { return v%2 == parity }
			for {
				if v, ok := d.StealIf(pred); ok {
					record(v)
					continue
				}
				select {
				case <-stop:
					for {
						v, ok := d.Steal()
						if !ok {
							return
						}
						record(v)
					}
				default:
				}
			}
		}(i % 2)
	}

	for v := 0; v < total; {
		for i := 0; i < 1+v%5 && v < total; i++ {
			d.Push(v)
			v++
		}
		if v%2 == 0 {
			if got, ok := d.Pop(); ok {
				record(got)
			}
		}
	}
	for {
		v, ok := d.Pop()
		if !ok {
			break
		}
		record(v)
	}
	close(stop)
	wg.Wait()
	for {
		v, ok := d.Steal()
		if !ok {
			break
		}
		record(v)
	}
	if got := consumed.Load(); got != total {
		t.Errorf("consumed %d, want %d", got, total)
	}
}
