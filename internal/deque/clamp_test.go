package deque

import "testing"

// TestSizeClampsDuringTransientPop pins the snapshot clamps: mid-Pop both
// ring deques store the decremented bottom index before checking for a
// conflict, so a concurrent Len/Empty/LazyHint reader can observe
// tail < head (THE) or bottom < top (Chase-Lev). The snapshots must clamp
// to empty, never report a negative size, and LazyHint must read the
// transient state as "publish more parallelism", not underflow.
func TestSizeClampsDuringTransientPop(t *testing.T) {
	t.Run("THE", func(t *testing.T) {
		d := &Deque[int]{}
		d.Push(1)
		d.Pop()
		h := d.head.Load()
		d.tail.Store(h - 1) // what a racing reader sees mid-Pop on empty
		if n := d.Len(); n != 0 {
			t.Errorf("Len = %d during transient tail < head, want 0", n)
		}
		if !d.Empty() {
			t.Error("Empty = false during transient tail < head")
		}
		if !d.LazyHint() {
			t.Error("LazyHint = false during transient tail < head")
		}
		d.tail.Store(h) // restore the invariant
		if _, ok := d.Pop(); ok {
			t.Error("Pop succeeded on an empty deque after restore")
		}
	})
	t.Run("ChaseLev", func(t *testing.T) {
		d := &ChaseLev[int]{}
		d.Push(1)
		d.Pop()
		top := d.top.Load()
		d.bottom.Store(top - 1) // transient bottom < top mid-Pop
		if n := d.Len(); n != 0 {
			t.Errorf("Len = %d during transient bottom < top, want 0", n)
		}
		if !d.Empty() {
			t.Error("Empty = false during transient bottom < top")
		}
		if !d.LazyHint() {
			t.Error("LazyHint = false during transient bottom < top")
		}
		d.bottom.Store(top)
		if _, ok := d.Pop(); ok {
			t.Error("Pop succeeded on an empty deque after restore")
		}
	})
}

// TestPushReservesSlackSlot pins the THE ring's one-slot reserve: a
// lock-holding thief advances head past the entry it is still inspecting,
// so Push growing only at a completely full ring could wrap onto that
// in-flight slot (observed as a lost value and a duplicated zero under
// the race detector). The ring must grow one slot early.
func TestPushReservesSlackSlot(t *testing.T) {
	d := &Deque[int]{}
	for i := 0; i < initialCapacity-1; i++ {
		d.Push(i)
	}
	if len(d.buf) != initialCapacity {
		t.Fatalf("ring grew at %d entries: len=%d, want %d",
			initialCapacity-1, len(d.buf), initialCapacity)
	}
	// The next push would leave zero slack; it must grow first.
	d.Push(initialCapacity - 1)
	if len(d.buf) <= initialCapacity {
		t.Fatalf("ring did not grow at the slack threshold: len=%d", len(d.buf))
	}
	for i := 0; i < initialCapacity; i++ {
		if v, ok := d.Steal(); !ok || v != i {
			t.Fatalf("post-grow Steal = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
}
