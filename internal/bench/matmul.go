package bench

import (
	"fibril/internal/core"
	"fibril/internal/invoke"
)

// Matmul multiplies two seeded N×N matrices (paper: N = 2048) by divide
// and conquer: split the largest dimension; row and column splits fork
// (their outputs are disjoint), k-splits run sequentially (both halves
// accumulate into the same C), so parallel and serial results are
// bit-identical.
// N is the matrix dimension.
var Matmul = register(&Spec{
	Name:        "matmul",
	Description: "Matrix multiply",
	ArgDoc:      "N = square matrix dimension",
	Default:     Arg{N: 192},
	Paper:       Arg{N: 2048},
	Sim:         Arg{N: 512},
	Serial: func(a Arg) uint64 {
		A, B := randMat(0xA0, a.N, a.N), randMat(0xB0, a.N, a.N)
		C := newMat(a.N, a.N)
		mulSerial(C, A, B)
		return C.checksum()
	},
	Parallel: func(w *core.W, a Arg) uint64 {
		A, B := randMat(0xA0, a.N, a.N), randMat(0xB0, a.N, a.N)
		C := newMat(a.N, a.N)
		mulParallel(w, C, A, B)
		return C.checksum()
	},
	Tree: func(a Arg) invoke.Task { return mulTree(a.N, a.N, a.N) },
})

// Rectmul is the rectangular variant (paper: 4096): C (N × N/2) =
// A (N × 2N) · B (2N × N/2), exercising the split rule on all three
// dimensions with different aspect ratios.
// N is the long dimension.
var Rectmul = register(&Spec{
	Name:        "rectmul",
	Description: "Rectangular matrix multiply",
	ArgDoc:      "N: computes (N × 2N)·(2N × N/2)",
	Default:     Arg{N: 160},
	Paper:       Arg{N: 4096},
	Sim:         Arg{N: 384},
	Serial: func(a Arg) uint64 {
		A, B := randMat(0xA1, a.N, 2*a.N), randMat(0xB1, 2*a.N, a.N/2)
		C := newMat(a.N, a.N/2)
		mulSerial(C, A, B)
		return C.checksum()
	},
	Parallel: func(w *core.W, a Arg) uint64 {
		A, B := randMat(0xA1, a.N, 2*a.N), randMat(0xB1, 2*a.N, a.N/2)
		C := newMat(a.N, a.N/2)
		mulParallel(w, C, A, B)
		return C.checksum()
	},
	Tree: func(a Arg) invoke.Task { return mulTree(a.N, 2*a.N, a.N/2) },
})

// mulSplit decides which dimension to halve: 0 = none (kernel),
// 1 = rows of A/C, 2 = cols of B/C, 3 = the shared k dimension.
func mulSplit(m, k, n int) int {
	if m <= matKernelBase && k <= matKernelBase && n <= matKernelBase {
		return 0
	}
	switch {
	case m >= k && m >= n:
		return 1
	case n >= k:
		return 2
	default:
		return 3
	}
}

func mulSerial(c, a, b mat) {
	switch mulSplit(a.rows, a.cols, b.cols) {
	case 0:
		mulKernel(c, a, b)
	case 1:
		h := a.rows / 2
		mulSerial(c.sub(0, 0, h, c.cols), a.sub(0, 0, h, a.cols), b)
		mulSerial(c.sub(h, 0, c.rows-h, c.cols), a.sub(h, 0, a.rows-h, a.cols), b)
	case 2:
		h := b.cols / 2
		mulSerial(c.sub(0, 0, c.rows, h), a, b.sub(0, 0, b.rows, h))
		mulSerial(c.sub(0, h, c.rows, c.cols-h), a, b.sub(0, h, b.rows, b.cols-h))
	case 3:
		h := a.cols / 2
		mulSerial(c, a.sub(0, 0, a.rows, h), b.sub(0, 0, h, b.cols))
		mulSerial(c, a.sub(0, h, a.rows, a.cols-h), b.sub(h, 0, b.rows-h, b.cols))
	}
}

func mulParallel(w *core.W, c, a, b mat) {
	switch mulSplit(a.rows, a.cols, b.cols) {
	case 0:
		mulKernel(c, a, b)
	case 1:
		h := a.rows / 2
		c0, a0 := c.sub(0, 0, h, c.cols), a.sub(0, 0, h, a.cols)
		c1, a1 := c.sub(h, 0, c.rows-h, c.cols), a.sub(h, 0, a.rows-h, a.cols)
		var fr core.Frame
		w.Init(&fr)
		w.ForkSized(&fr, frameLarge, func(w *core.W) { mulParallel(w, c0, a0, b) })
		w.CallSized(frameLarge, func(w *core.W) { mulParallel(w, c1, a1, b) })
		w.Join(&fr)
	case 2:
		h := b.cols / 2
		c0, b0 := c.sub(0, 0, c.rows, h), b.sub(0, 0, b.rows, h)
		c1, b1 := c.sub(0, h, c.rows, c.cols-h), b.sub(0, h, b.rows, b.cols-h)
		var fr core.Frame
		w.Init(&fr)
		w.ForkSized(&fr, frameLarge, func(w *core.W) { mulParallel(w, c0, a, b0) })
		w.CallSized(frameLarge, func(w *core.W) { mulParallel(w, c1, a, b1) })
		w.Join(&fr)
	case 3:
		// Both halves write all of C: sequential, like the Cilk version.
		h := a.cols / 2
		a0, b0 := a.sub(0, 0, a.rows, h), b.sub(0, 0, h, b.cols)
		a1, b1 := a.sub(0, h, a.rows, a.cols-h), b.sub(h, 0, b.rows-h, b.cols)
		w.CallSized(frameLarge, func(w *core.W) { mulParallel(w, c, a0, b0) })
		w.CallSized(frameLarge, func(w *core.W) { mulParallel(w, c, a1, b1) })
	}
}

// mulTree mirrors mulParallel; subtrees are keyed by (m, k, n) since the
// recursion depends only on the shape, so the paper-size trees analyze
// and simulate via memoization where possible.
func mulTree(m, k, n int) invoke.Task {
	key := uint64(m)<<42 | uint64(k)<<21 | uint64(n) | 1<<63
	switch mulSplit(m, k, n) {
	case 0:
		// Kernel work ≈ 2·m·k·n flops; one unit ≈ 16 flops.
		work := int64(m) * int64(k) * int64(n) / 8
		if work < 1 {
			work = 1
		}
		return invoke.Task{Name: "mul-kernel", Frame: frameLarge, Key: key,
			Segs: []invoke.Seg{{Work: work}}}
	case 1:
		h := m / 2
		return invoke.Task{Name: "matmul", Frame: frameLarge, Key: key,
			Segs: []invoke.Seg{
				{Work: 1, Fork: func() invoke.Task { return mulTree(h, k, n) }},
				{Call: func() invoke.Task { return mulTree(m-h, k, n) }, Join: true},
			}}
	case 2:
		h := n / 2
		return invoke.Task{Name: "matmul", Frame: frameLarge, Key: key,
			Segs: []invoke.Seg{
				{Work: 1, Fork: func() invoke.Task { return mulTree(m, k, h) }},
				{Call: func() invoke.Task { return mulTree(m, k, n-h) }, Join: true},
			}}
	default:
		h := k / 2
		return invoke.Task{Name: "matmul", Frame: frameLarge, Key: key,
			Segs: []invoke.Seg{
				{Work: 1, Call: func() invoke.Task { return mulTree(m, h, n) }},
				{Call: func() invoke.Task { return mulTree(m, k-h, n) }},
			}}
	}
}
