package bench

import (
	"math"
	"math/cmplx"

	"fibril/internal/core"
	"fibril/internal/invoke"
)

// fftSerialCutoff is the transform size below which the recursion stays
// serial in the parallel version.
const fftSerialCutoff = 2048

// FFT computes the radix-2 Cooley–Tukey transform of 2^N seeded complex
// samples (paper: 2^26): the even/odd half-transforms fork, and the
// butterfly combine splits its index range in parallel. Per-element
// arithmetic is identical in serial and parallel runs, so the checksums
// match exactly.
// N is the log2 of the transform size.
var FFT = register(&Spec{
	Name:        "fft",
	Description: "Fast Fourier transformation",
	ArgDoc:      "N = log2(transform size)",
	Default:     Arg{N: 15},
	Paper:       Arg{N: 26},
	Sim:         Arg{N: 18},
	Serial: func(a Arg) uint64 {
		data := fftInput(1 << a.N)
		out := make([]complex128, len(data))
		fftSerial(out, data, 1)
		return fftChecksum(out)
	},
	Parallel: func(w *core.W, a Arg) uint64 {
		data := fftInput(1 << a.N)
		out := make([]complex128, len(data))
		fftParallel(w, out, data, 1)
		return fftChecksum(out)
	},
	Tree: func(a Arg) invoke.Task { return fftTree(1 << a.N) },
})

func fftInput(n int) []complex128 {
	rng := splitmix64{state: 0xFF7}
	data := make([]complex128, n)
	for i := range data {
		re := float64(int64(rng.next()%2000))/1000.0 - 1.0
		im := float64(int64(rng.next()%2000))/1000.0 - 1.0
		data[i] = complex(re, im)
	}
	return data
}

func fftChecksum(x []complex128) uint64 {
	h := uint64(0xCBF29CE484222325)
	for i := 0; i < len(x); i += 257 {
		h = mix(h, f64bits(real(x[i])))
		h = mix(h, f64bits(imag(x[i])))
	}
	return h
}

// fftSerial writes the DFT of in (viewed with the given stride) into out.
func fftSerial(out, in []complex128, stride int) {
	n := len(out)
	if n == 1 {
		out[0] = in[0]
		return
	}
	half := n / 2
	fftSerial(out[:half], in, stride*2)
	fftSerial(out[half:], in[stride:], stride*2)
	combine(out, 0, half)
}

// combine applies the butterfly for indices [lo, hi) of the half-range.
func combine(out []complex128, lo, hi int) {
	n := len(out)
	half := n / 2
	for k := lo; k < hi; k++ {
		w := cmplx.Exp(complex(0, -2*math.Pi*float64(k)/float64(n)))
		e, o := out[k], out[k+half]
		t := w * o
		out[k] = e + t
		out[k+half] = e - t
	}
}

func fftParallel(w *core.W, out, in []complex128, stride int) {
	n := len(out)
	if n <= fftSerialCutoff {
		fftSerial(out, in, stride)
		return
	}
	half := n / 2
	var fr core.Frame
	w.Init(&fr)
	top, bot := out[:half], out[half:]
	odd := in[stride:]
	w.ForkSized(&fr, frameLarge, func(w *core.W) { fftParallel(w, top, in, stride*2) })
	w.CallSized(frameLarge, func(w *core.W) { fftParallel(w, bot, odd, stride*2) })
	w.Join(&fr)
	combineParallel(w, out, 0, half)
}

// combineParallel splits the butterfly range; each index is written by
// exactly one child, with the same arithmetic as the serial combine.
func combineParallel(w *core.W, out []complex128, lo, hi int) {
	if hi-lo <= fftSerialCutoff {
		combine(out, lo, hi)
		return
	}
	mid := (lo + hi) / 2
	var fr core.Frame
	w.Init(&fr)
	w.ForkSized(&fr, frameMedium, func(w *core.W) { combineParallel(w, out, lo, mid) })
	w.CallSized(frameMedium, func(w *core.W) { combineParallel(w, out, mid, hi) })
	w.Join(&fr)
}

// fftTree mirrors fftParallel, keyed by size (the recursion depends only
// on n), so the paper's 2^26 tree analyzes via memoization.
func fftTree(n int) invoke.Task {
	key := uint64(n)<<8 | 0xF7
	if n <= fftSerialCutoff {
		work := int64(n) * int64(log2(n)) / 4
		if work < 1 {
			work = 1
		}
		return invoke.Task{Name: "fft-leaf", Frame: frameLarge, Key: key,
			Segs: []invoke.Seg{{Work: work}}}
	}
	half := n / 2
	return invoke.Task{Name: "fft", Frame: frameLarge, Key: key,
		Segs: []invoke.Seg{
			{Work: 1, Fork: func() invoke.Task { return fftTree(half) }},
			{Call: func() invoke.Task { return fftTree(half) }, Join: true},
			{Call: func() invoke.Task { return combineTree(half) }},
		}}
}

func combineTree(span int) invoke.Task {
	key := uint64(span)<<8 | 0xCB
	if span <= fftSerialCutoff {
		work := int64(span) / 2
		if work < 1 {
			work = 1
		}
		return invoke.Task{Name: "combine-leaf", Frame: frameMedium, Key: key,
			Segs: []invoke.Seg{{Work: work}}}
	}
	h := span / 2
	return invoke.Task{Name: "combine", Frame: frameMedium, Key: key,
		Segs: []invoke.Seg{
			{Work: 1, Fork: func() invoke.Task { return combineTree(h) }},
			{Call: func() invoke.Task { return combineTree(span - h) }, Join: true},
		}}
}

func log2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}
