package bench

import (
	"fibril/internal/core"
	"fibril/internal/invoke"
)

// strassenBase is the dimension at which Strassen falls back to the
// standard divide-and-conquer multiply, as the Cilk version does.
const strassenBase = 64

// Strassen multiplies two seeded N×N matrices (paper: N = 4096) with
// Strassen's seven-product recursion. The seven products go to disjoint
// temporaries, so all seven fork in parallel; the quadrant combinations
// run in a fixed order, keeping results bit-identical to the serial run.
// N must be a power of two.
var Strassen = register(&Spec{
	Name:        "strassen",
	Description: "Strassen matrix multiply",
	ArgDoc:      "N = square matrix dimension (power of two)",
	Default:     Arg{N: 256},
	Paper:       Arg{N: 4096},
	Sim:         Arg{N: 1024},
	Serial: func(a Arg) uint64 {
		A, B := randMat(0xA2, a.N, a.N), randMat(0xB2, a.N, a.N)
		C := newMat(a.N, a.N)
		strassenSerial(C, A, B)
		return C.checksum()
	},
	Parallel: func(w *core.W, a Arg) uint64 {
		A, B := randMat(0xA2, a.N, a.N), randMat(0xB2, a.N, a.N)
		C := newMat(a.N, a.N)
		strassenParallel(w, C, A, B)
		return C.checksum()
	},
	Tree: func(a Arg) invoke.Task { return strassenTree(a.N) },
})

// strassenOperands prepares the 7 product inputs (S/T sums) and returns
// the product temporaries M1..M7. Shared between the serial and parallel
// versions so the arithmetic is identical.
type strassenOps struct {
	m        [7]mat // the products M1..M7
	lhs, rhs [7]mat // their operands
	a00, a01 mat
	a10, a11 mat
	b00, b01 mat
	b10, b11 mat
}

func strassenPrepare(a, b mat) *strassenOps {
	h := a.rows / 2
	o := &strassenOps{}
	o.a00, o.a01, o.a10, o.a11 = a.quad()
	o.b00, o.b01, o.b10, o.b11 = b.quad()

	tmp := func(src0 mat, add bool, src1 mat) mat {
		t := newMat(h, h)
		t.copyFrom(src0)
		if add {
			t.addFrom(src1)
		} else {
			t.subFrom(src1)
		}
		return t
	}
	for i := range o.m {
		o.m[i] = newMat(h, h)
	}
	// Winograd-free classical Strassen:
	// M1 = (A00+A11)(B00+B11), M2 = (A10+A11)B00, M3 = A00(B01−B11),
	// M4 = A11(B10−B00), M5 = (A00+A01)B11, M6 = (A10−A00)(B00+B01),
	// M7 = (A01−A11)(B10+B11).
	o.lhs[0], o.rhs[0] = tmp(o.a00, true, o.a11), tmp(o.b00, true, o.b11)
	o.lhs[1], o.rhs[1] = tmp(o.a10, true, o.a11), o.b00
	o.lhs[2], o.rhs[2] = o.a00, tmp(o.b01, false, o.b11)
	o.lhs[3], o.rhs[3] = o.a11, tmp(o.b10, false, o.b00)
	o.lhs[4], o.rhs[4] = tmp(o.a00, true, o.a01), o.b11
	o.lhs[5], o.rhs[5] = tmp(o.a10, false, o.a00), tmp(o.b00, true, o.b01)
	o.lhs[6], o.rhs[6] = tmp(o.a01, false, o.a11), tmp(o.b10, true, o.b11)
	return o
}

// strassenCombine assembles C's quadrants from the products:
// C00 = M1+M4−M5+M7, C01 = M3+M5, C10 = M2+M4, C11 = M1−M2+M3+M6.
func strassenCombine(c mat, o *strassenOps) {
	c00, c01, c10, c11 := c.quad()
	c00.copyFrom(o.m[0])
	c00.addFrom(o.m[3])
	c00.subFrom(o.m[4])
	c00.addFrom(o.m[6])
	c01.copyFrom(o.m[2])
	c01.addFrom(o.m[4])
	c10.copyFrom(o.m[1])
	c10.addFrom(o.m[3])
	c11.copyFrom(o.m[0])
	c11.subFrom(o.m[1])
	c11.addFrom(o.m[2])
	c11.addFrom(o.m[5])
}

func strassenSerial(c, a, b mat) {
	if a.rows <= strassenBase {
		mulSerial(c, a, b)
		return
	}
	o := strassenPrepare(a, b)
	for i := range o.m {
		strassenSerial(o.m[i], o.lhs[i], o.rhs[i])
	}
	strassenCombine(c, o)
}

func strassenParallel(w *core.W, c, a, b mat) {
	if a.rows <= strassenBase {
		mulSerial(c, a, b) // base products stay serial, as in Cilk strassen
		return
	}
	o := strassenPrepare(a, b)
	var fr core.Frame
	w.Init(&fr)
	for i := 0; i < 6; i++ {
		i := i
		w.ForkSized(&fr, frameLarge, func(w *core.W) {
			strassenParallel(w, o.m[i], o.lhs[i], o.rhs[i])
		})
	}
	w.CallSized(frameLarge, func(w *core.W) {
		strassenParallel(w, o.m[6], o.lhs[6], o.rhs[6])
	})
	w.Join(&fr)
	strassenCombine(c, o)
}

// strassenTree: seven children (six forked, one called), keyed by size.
func strassenTree(n int) invoke.Task {
	key := uint64(n)<<8 | 0x53
	if n <= strassenBase {
		work := int64(n) * int64(n) * int64(n) / 8
		if work < 1 {
			work = 1
		}
		return invoke.Task{Name: "strassen-base", Frame: frameLarge, Key: key,
			Segs: []invoke.Seg{{Work: work}}}
	}
	prep := int64(n) * int64(n) / 4 // quadrant additions
	segs := []invoke.Seg{{Work: prep}}
	for i := 0; i < 6; i++ {
		segs = append(segs, invoke.Seg{Fork: func() invoke.Task {
			return strassenTree(n / 2)
		}})
	}
	segs = append(segs,
		invoke.Seg{Call: func() invoke.Task { return strassenTree(n / 2) }, Join: true},
		invoke.Seg{Work: prep}, // combine
	)
	return invoke.Task{Name: "strassen", Frame: frameLarge, Key: key, Segs: segs}
}
