// Package bench implements the 12 benchmarks of the Fibril paper's
// evaluation (SPAA 2016, Table 1): cholesky, fft, fib, heat, integrate,
// knapsack, lu, matmul, nqueens, quicksort, rectmul, and strassen — the
// classic Cilk benchmark suite — plus an adversarial workload for the
// depth-restricted-stealing lower bound (§3, Sukha).
//
// Every benchmark provides three faces:
//
//   - Serial: a plain Go implementation, the Tserial of Figure 3;
//   - Parallel: the same algorithm on the Fibril core API (internal/core),
//     returning a checksum that must equal the serial one;
//   - Tree: an invocation-tree generator (internal/invoke) mirroring the
//     parallel version's fork/call/join structure with calibrated work
//     weights, which the discrete-event simulator executes at P = 1…72.
//
// Inputs are parameterized: Default sizes keep `go test` fast, Paper sizes
// are Table 1's. Workload data is generated from fixed seeds so runs are
// reproducible and parallel checksums are comparable across strategies.
package bench

import (
	"fmt"
	"sort"

	"fibril/internal/core"
	"fibril/internal/invoke"
)

// Arg parameterizes one benchmark run. The meaning of N and M is
// per-benchmark (documented on each Spec).
type Arg struct {
	N int
	M int
}

func (a Arg) String() string {
	if a.M != 0 {
		return fmt.Sprintf("%d/%d", a.N, a.M)
	}
	return fmt.Sprintf("%d", a.N)
}

// Spec describes one benchmark.
type Spec struct {
	// Name is the paper's benchmark name.
	Name string
	// Description matches Table 1.
	Description string
	// ArgDoc explains N (and M if used).
	ArgDoc string

	// Default is a CI-scale input; Paper is Table 1's input; Sim is the
	// input the discrete-event simulator sweeps for Figure 4 and Tables
	// 2–4 — large enough for meaningful parallelism at 72 workers, small
	// enough that trees stay in the low millions of nodes.
	Default Arg
	Paper   Arg
	Sim     Arg

	// Serial runs the plain Go implementation and returns a checksum.
	Serial func(Arg) uint64
	// Parallel runs the Fibril-API implementation on w and returns a
	// checksum equal to Serial's for the same Arg. The fine-grained
	// benchmarks implement this on the zero-allocation ForkArg path.
	Parallel func(w *core.W, a Arg) uint64
	// ParallelClosure, where non-nil, is the closure-fork implementation
	// Parallel had before moving to the ForkArg fast path — retained as
	// the baseline the forkpath experiment measures against. It satisfies
	// the same checksum contract as Parallel.
	ParallelClosure func(w *core.W, a Arg) uint64
	// Tree generates the invocation tree for the simulator.
	Tree func(Arg) invoke.Task
}

// registry holds all benchmarks keyed by name.
var registry = map[string]*Spec{}

func register(s *Spec) *Spec {
	if _, dup := registry[s.Name]; dup {
		panic("bench: duplicate benchmark " + s.Name)
	}
	registry[s.Name] = s
	return s
}

// Get returns the named benchmark, or nil.
func Get(name string) *Spec { return registry[name] }

// Names returns all benchmark names in alphabetical order (the paper's
// table order).
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// All returns all benchmarks in table order.
func All() []*Spec {
	specs := make([]*Spec, 0, len(registry))
	for _, n := range Names() {
		specs = append(specs, registry[n])
	}
	return specs
}

// splitmix64 is the deterministic workload generator used everywhere so
// serial and parallel runs see identical data.
type splitmix64 struct{ state uint64 }

func (s *splitmix64) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// mix folds a value into a running checksum (FNV-1a style over words).
func mix(h, v uint64) uint64 {
	h ^= v
	h *= 0x100000001B3
	return h
}

// f64sum folds a float64 into a checksum with a small tolerance: the value
// is rounded to 10 significant bits of fraction to absorb last-ulp
// differences (none are expected — both versions use identical operation
// order — but checksums should not be flakier than the math).
func f64bits(v float64) uint64 {
	const scale = 1 << 20
	return uint64(int64(v * scale))
}

// Standard simulated frame sizes (bytes) used by the parallel versions and
// tree generators, so S1/D measurements are consistent between the real
// runtime and the simulator. Values approximate the x86-64 frames of the
// corresponding Cilk functions.
const (
	frameSmall  = 96  // tiny leaf helpers
	frameMedium = 192 // typical recursive function
	frameLarge  = 320 // functions with several spilled locals
)
