package bench

import (
	"math"
	"testing"

	"fibril/internal/core"
	"fibril/internal/invoke"
)

// smallArg shrinks the default input further so the full strategy matrix
// stays fast under `go test`.
func smallArg(s *Spec) Arg {
	a := s.Default
	switch s.Name {
	case "fib":
		a.N = 16
	case "integrate":
		a = Arg{N: 30, M: 2}
	case "knapsack":
		a.N = 16
	case "nqueens":
		a.N = 8
	case "quicksort":
		a.N = 60_000
	case "matmul", "lu", "cholesky":
		a.N = 96
	case "rectmul":
		a.N = 96
	case "strassen":
		a.N = 128
	case "fft":
		a.N = 12
	case "heat":
		a = Arg{N: 64, M: 6}
	case "adversarial":
		a = Arg{N: 24, M: 16}
	}
	return a
}

func TestRegistryComplete(t *testing.T) {
	// The paper's 12 benchmarks plus the adversarial workload.
	want := []string{
		"adversarial", "cholesky", "fft", "fib", "heat", "integrate",
		"knapsack", "lu", "matmul", "nqueens", "quicksort", "rectmul",
		"strassen",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("registry has %d benchmarks %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	for _, s := range All() {
		if s.Serial == nil || s.Parallel == nil || s.Tree == nil {
			t.Errorf("%s: missing a face", s.Name)
		}
		if s.Paper.N <= s.Default.N && s.Name != "heat" {
			t.Errorf("%s: paper input %v not larger than default %v", s.Name, s.Paper, s.Default)
		}
	}
}

func TestSerialParallelChecksumsMatch(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			a := smallArg(s)
			want := s.Serial(a)
			if want == 0 {
				t.Fatalf("serial checksum is the poison value 0")
			}
			for _, workers := range []int{1, 4} {
				rt := core.NewRuntime(core.Config{Workers: workers, StackPages: 4096})
				var got uint64
				rt.Run(func(w *core.W) { got = s.Parallel(w, a) })
				if got != want {
					t.Errorf("P=%d: parallel checksum %#x != serial %#x", workers, got, want)
				}
				if s.ParallelClosure == nil {
					continue
				}
				// The retained closure baseline must satisfy the same
				// contract — it is still measured by the forkpath experiment.
				rt.Run(func(w *core.W) { got = s.ParallelClosure(w, a) })
				if got != want {
					t.Errorf("P=%d: closure-baseline checksum %#x != serial %#x", workers, got, want)
				}
			}
		})
	}
}

func TestParallelUnderEveryStrategy(t *testing.T) {
	// Strategy must never change results — only scheduling.
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			a := smallArg(s)
			want := s.Serial(a)
			for _, strat := range core.Strategies() {
				rt := core.NewRuntime(core.Config{
					Workers: 4, Strategy: strat, StackPages: 4096,
				})
				var got uint64
				rt.Run(func(w *core.W) { got = s.Parallel(w, a) })
				if got != want {
					t.Errorf("%v: checksum %#x != serial %#x", strat, got, want)
				}
			}
		})
	}
}

func TestTreesAreWellFormed(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			m := invoke.Analyze(s.Tree(smallArg(s)))
			if m.Work <= 0 {
				t.Errorf("tree work = %d", m.Work)
			}
			if m.Span <= 0 || m.Span > m.Work {
				t.Errorf("tree span = %d with work %d", m.Span, m.Work)
			}
			if m.Forks == 0 {
				t.Errorf("tree has no forks")
			}
			if m.FibrilDepth < 1 {
				t.Errorf("Fibril depth = %d", m.FibrilDepth)
			}
			if m.MaxStackBytes <= 0 {
				t.Errorf("S1 = %d bytes", m.MaxStackBytes)
			}
		})
	}
}

func TestSimInputsHaveParallelism(t *testing.T) {
	// The simulator sweeps P up to 72 on the Sim inputs, so they need real
	// parallelism — except the benchmarks whose parallelism is
	// intrinsically low and small at any scaled input: quicksort is
	// Θ(lg n) because the partition runs on the spine, and knapsack's and
	// adversarial's trees are deliberately skewed.
	minWant := map[string]float64{
		"quicksort": 4, "knapsack": 3, "adversarial": 4,
	}
	for _, s := range All() {
		m := invoke.Analyze(s.Tree(s.Sim))
		want := 20.0
		if v, ok := minWant[s.Name]; ok {
			want = v
		}
		if p := m.Parallelism(); p < want {
			t.Errorf("%s: sim-input parallelism %.1f < %.0f (T1=%d T∞=%d)",
				s.Name, p, want, m.Work, m.Span)
		}
		t.Logf("%-12s sim=%-12v T1=%-12d T∞=%-9d parallelism=%.1f tasks=%d D=%d",
			s.Name, s.Sim, m.Work, m.Span, m.Parallelism(), m.Tasks, m.FibrilDepth)
	}
}

func TestPaperTreeMetricsViaMemoization(t *testing.T) {
	// The structurally-keyed trees must analyze at full paper scale.
	for _, name := range []string{"fib", "matmul", "strassen", "lu", "cholesky", "fft"} {
		s := Get(name)
		m := invoke.Analyze(s.Tree(s.Paper))
		if m.Work <= 0 || m.Span <= 0 {
			t.Errorf("%s: paper-size analysis failed: %+v", name, m)
		}
		t.Logf("%s paper input %v: %v D=%d", name, s.Paper, m, m.FibrilDepth)
	}
}

func TestFibTreeDepthMatchesPaperTable3(t *testing.T) {
	m := invoke.Analyze(Fib.Tree(Arg{N: 42}))
	if m.FibrilDepth != 41 {
		t.Errorf("fib(42) D = %d, paper Table 3 lists 41", m.FibrilDepth)
	}
}

func TestIntegrateAgainstClosedForm(t *testing.T) {
	// ∫₀ᴺ (x²+1)x dx = N⁴/4 + N²/2; the adaptive refinement keeps the
	// total error near the requested absolute tolerance.
	a := Arg{N: 40, M: 3}
	x2 := float64(a.N)
	got := integrateSerial(0, x2, integrandAt(0), integrandAt(x2), epsFor(a))
	want := x2*x2*x2*x2/4 + x2*x2/2
	if d := math.Abs(got - want); d > 0.05 {
		t.Errorf("integrate(%v) = %.6f, closed form %.6f (|diff| %.2g)", a, got, want, d)
	}
}

func TestNQueensKnownCounts(t *testing.T) {
	known := map[int]uint64{4: 2, 5: 10, 6: 4, 7: 40, 8: 92, 9: 352, 10: 724}
	for n, want := range known {
		if got := NQueens.Serial(Arg{N: n}); got != want {
			t.Errorf("nqueens(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestKnapsackOptimumIsStable(t *testing.T) {
	// The parallel optimum must be independent of scheduling; run many
	// times with different worker counts.
	a := Arg{N: 18}
	want := Knapsack.Serial(a)
	for _, workers := range []int{1, 2, 4, 8} {
		rt := core.NewRuntime(core.Config{Workers: workers})
		var got uint64
		rt.Run(func(w *core.W) { got = Knapsack.Parallel(w, a) })
		if got != want {
			t.Errorf("P=%d: optimum %d != serial %d", workers, got, want)
		}
	}
}

func TestQuicksortActuallySorts(t *testing.T) {
	data := qsInput(10_000)
	qsSerial(data)
	for i := 1; i < len(data); i++ {
		if data[i-1] > data[i] {
			t.Fatalf("unsorted at %d", i)
		}
	}
}

func TestLUReconstructs(t *testing.T) {
	const n = 64
	A := spdMat(0x77, n)
	orig := newMat(n, n)
	orig.copyFrom(A)
	luSerial(A)
	// Reconstruct L·U and compare.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var v float64
			for k := 0; k <= min(i, j); k++ {
				l := A.at(i, k)
				if k == i {
					l = 1
				}
				if k > i {
					l = 0
				}
				u := A.at(k, j)
				if k > j {
					u = 0
				}
				v += l * u
			}
			if d := v - orig.at(i, j); d > 1e-6 || d < -1e-6 {
				t.Fatalf("LU reconstruction off at (%d,%d): %g vs %g", i, j, v, orig.at(i, j))
			}
		}
	}
}

func TestCholeskyReconstructs(t *testing.T) {
	const n = 64
	A := spdMat(0x88, n)
	orig := newMat(n, n)
	orig.copyFrom(A)
	cholSerial(A)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			var v float64
			for k := 0; k <= j; k++ {
				v += A.at(i, k) * A.at(j, k)
			}
			if d := v - orig.at(i, j); d > 1e-6 || d < -1e-6 {
				t.Fatalf("L·Lᵀ off at (%d,%d): %g vs %g", i, j, v, orig.at(i, j))
			}
		}
	}
}

func TestFFTMatchesDirectDFT(t *testing.T) {
	const logN = 6
	data := fftInput(1 << logN)
	out := make([]complex128, len(data))
	fftSerial(out, data, 1)
	// Direct O(n²) DFT comparison on a few bins.
	n := len(data)
	for _, k := range []int{0, 1, n / 3, n - 1} {
		var want complex128
		for t2 := 0; t2 < n; t2++ {
			angle := -2 * math.Pi * float64(k) * float64(t2) / float64(n)
			want += data[t2] * complex(math.Cos(angle), math.Sin(angle))
		}
		d := out[k] - want
		if real(d) > 1e-6 || real(d) < -1e-6 || imag(d) > 1e-6 || imag(d) < -1e-6 {
			t.Errorf("FFT bin %d = %v, DFT %v", k, out[k], want)
		}
	}
}

func TestHeatConservesBoundary(t *testing.T) {
	a := Arg{N: 32, M: 4}
	cur, next := heatInput(a.N)
	for t2 := 0; t2 < a.M; t2++ {
		heatRows(next, cur, 1, a.N-1)
		cur, next = next, cur
	}
	for i := 0; i < a.N; i++ {
		if cur.at(i, 0) != 100.0 {
			t.Fatalf("left wall changed at row %d: %g", i, cur.at(i, 0))
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
