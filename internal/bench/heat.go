package bench

import (
	"fibril/internal/core"
	"fibril/internal/invoke"
)

// heatRowCutoff is the row-block size updated serially per task.
const heatRowCutoff = 16

// Heat runs 5-point Jacobi heat diffusion on an N×N grid for M timesteps
// (paper: 2048×500): every step forks a recursive row-range split over a
// double-buffered grid. Forks are wide but shallow, and a full join
// barrier separates steps — the opposite DAG shape from fib, which is why
// the paper includes it.
// N is the grid edge; M is the timestep count.
var Heat = register(&Spec{
	Name:        "heat",
	Description: "Jacobi heat diffusion",
	ArgDoc:      "N = grid edge, M = timesteps",
	Default:     Arg{N: 192, M: 24},
	Paper:       Arg{N: 2048, M: 500},
	Sim:         Arg{N: 512, M: 50},
	Serial: func(a Arg) uint64 {
		cur, next := heatInput(a.N)
		for t := 0; t < a.M; t++ {
			heatRows(next, cur, 1, a.N-1)
			cur, next = next, cur
		}
		return cur.checksum()
	},
	Parallel: func(w *core.W, a Arg) uint64 {
		cur, next := heatInput(a.N)
		for t := 0; t < a.M; t++ {
			heatStepParallel(w, next, cur, 1, a.N-1)
			cur, next = next, cur
		}
		return cur.checksum()
	},
	Tree: func(a Arg) invoke.Task { return heatTree(a.N, a.M) },
})

// heatInput builds the initial grid (hot left wall, seeded interior noise)
// and a same-shape scratch buffer whose boundary matches.
func heatInput(n int) (cur, next mat) {
	cur, next = newMat(n, n), newMat(n, n)
	rng := splitmix64{state: 0x4EA7}
	for i := 0; i < n; i++ {
		cur.set(i, 0, 100.0)
		next.set(i, 0, 100.0)
		for j := 1; j < n; j++ {
			cur.set(i, j, float64(rng.next()%100)/100.0)
		}
	}
	// Static boundary rows/cols carry over every step.
	for j := 0; j < n; j++ {
		next.set(0, j, cur.at(0, j))
		next.set(n-1, j, cur.at(n-1, j))
	}
	for i := 0; i < n; i++ {
		next.set(i, n-1, cur.at(i, n-1))
	}
	return cur, next
}

// heatRows updates interior rows [lo, hi) with the 5-point stencil.
func heatRows(next, cur mat, lo, hi int) {
	n := cur.cols
	for i := lo; i < hi; i++ {
		for j := 1; j < n-1; j++ {
			v := cur.at(i, j) + 0.1*(cur.at(i-1, j)+cur.at(i+1, j)+
				cur.at(i, j-1)+cur.at(i, j+1)-4*cur.at(i, j))
			next.set(i, j, v)
		}
	}
}

// heatStepParallel recursively splits the row range; blocks write disjoint
// rows of next and only read cur, so every fork is independent.
func heatStepParallel(w *core.W, next, cur mat, lo, hi int) {
	if hi-lo <= heatRowCutoff {
		heatRows(next, cur, lo, hi)
		return
	}
	mid := (lo + hi) / 2
	var fr core.Frame
	w.Init(&fr)
	w.ForkSized(&fr, frameMedium, func(w *core.W) { heatStepParallel(w, next, cur, lo, mid) })
	w.CallSized(frameMedium, func(w *core.W) { heatStepParallel(w, next, cur, mid, hi) })
	w.Join(&fr)
}

// heatTree: M sequential timesteps, each a keyed row-split fork tree.
func heatTree(n, steps int) invoke.Task {
	segs := make([]invoke.Seg, 0, steps+1)
	for t := 0; t < steps; t++ {
		segs = append(segs, invoke.Seg{
			Work: 1,
			Call: func() invoke.Task { return heatStepTree(n, n-2) },
		})
	}
	return invoke.Task{Name: "heat", Frame: frameMedium, Segs: segs}
}

func heatStepTree(n, rows int) invoke.Task {
	key := uint64(n)<<24 | uint64(rows)<<4 | 0xE
	if rows <= heatRowCutoff {
		work := int64(rows) * int64(n) / 8
		if work < 1 {
			work = 1
		}
		return invoke.Task{Name: "heat-rows", Frame: frameMedium, Key: key,
			Segs: []invoke.Seg{{Work: work}}}
	}
	h := rows / 2
	return invoke.Task{Name: "heat-step", Frame: frameMedium, Key: key,
		Segs: []invoke.Seg{
			{Work: 1, Fork: func() invoke.Task { return heatStepTree(n, h) }},
			{Call: func() invoke.Task { return heatStepTree(n, rows-h) }, Join: true},
		}}
}
