package bench

import (
	"unsafe"

	"fibril/internal/core"
	"fibril/internal/invoke"
)

// Fib is the recursive Fibonacci benchmark: no real work, pure fork/join
// overhead — the paper's most extreme stress of calling-convention cost
// (Figure 3 shows the largest runtime-to-runtime gaps on fib).
// N is the Fibonacci index (paper: 42).
//
// Parallel runs on the zero-allocation ForkArg path; ParallelClosure is
// the original closure-fork version, kept as the forkpath experiment's
// baseline.
var Fib = register(&Spec{
	Name:        "fib",
	Description: "Recursive Fibonacci",
	ArgDoc:      "N = Fibonacci index",
	Default:     Arg{N: 27},
	Paper:       Arg{N: 42},
	Sim:         Arg{N: 28},
	Serial:      func(a Arg) uint64 { return uint64(fibSerial(a.N)) },
	Parallel: func(w *core.W, a Arg) uint64 {
		return uint64(fibArg(w, a.N))
	},
	ParallelClosure: func(w *core.W, a Arg) uint64 {
		var out int64
		fibParallel(w, a.N, &out)
		return uint64(out)
	},
	Tree: func(a Arg) invoke.Task { return fibTree(a.N) },
})

func fibSerial(n int) int64 {
	if n < 2 {
		return int64(n)
	}
	return fibSerial(n-1) + fibSerial(n-2)
}

// fibCtx is the argument record of one fib child; two of them plus the
// join frame fit in a single arena block.
type fibCtx struct {
	n   int
	res int64
}

// Both children's records must fit the block's payload.
const _ = uint(core.ScratchBytes - unsafe.Sizeof([2]fibCtx{}))

// fibArgTask is the package-level trampoline carried by the fork: a
// static code pointer plus a *fibCtx, no closure.
func fibArgTask(w *core.W, p unsafe.Pointer) {
	c := (*fibCtx)(p)
	c.res = fibArg(w, c.n)
}

// fibArg is Listing 1's parfib on the ForkArg fast path: the frame and
// both argument records live in one Scratch block, so the steady state
// performs no heap allocation at all. The payload holds no pointers, so
// the arena's unscanned-buffer contract is trivially satisfied; the
// block is released only after Join has quiesced it (fib cannot panic,
// so the no-release-on-unwind rule is moot).
func fibArg(w *core.W, n int) int64 {
	if n < 2 {
		return int64(n)
	}
	s := w.AcquireScratch()
	pay := (*[2]fibCtx)(s.Ptr())
	pay[0].n = n - 1
	pay[1].n = n - 2
	fr := s.Frame()
	w.Init(fr)
	w.ForkArgSized(fr, frameSmall, fibArgTask, unsafe.Pointer(&pay[0]))
	w.CallArgSized(frameSmall, fibArgTask, unsafe.Pointer(&pay[1]))
	w.Join(fr)
	res := pay[0].res + pay[1].res
	w.ReleaseScratch(s)
	return res
}

// fibParallel is Listing 1's parfib with closure forks — the pre-ForkArg
// implementation, the baseline of the forkpath experiment.
func fibParallel(w *core.W, n int, out *int64) {
	if n < 2 {
		*out = int64(n)
		return
	}
	var fr core.Frame
	w.Init(&fr)
	var x, y int64
	w.ForkSized(&fr, frameSmall, func(w *core.W) { fibParallel(w, n-1, &x) })
	w.CallSized(frameSmall, func(w *core.W) { fibParallel(w, n-2, &y) })
	w.Join(&fr)
	*out = x + y
}

// fibTree mirrors fibParallel. Every node carries ~20 units (≈ns) of real
// work — the call, branch, and add a serial fib invocation costs — which is
// what makes fork-path overhead ratios on fib match Figure 3. Keys enable
// memoized analysis up to the paper's fib(42).
func fibTree(n int) invoke.Task {
	if n < 2 {
		return invoke.Task{
			Name: "fib-leaf", Frame: frameSmall, Key: uint64(n) + 1,
			Segs: []invoke.Seg{{Work: 20}},
		}
	}
	return invoke.Task{
		Name: "fib", Frame: frameSmall, Key: uint64(n) + 1,
		Segs: []invoke.Seg{
			{Work: 10, Fork: func() invoke.Task { return fibTree(n - 1) }},
			{Work: 0, Call: func() invoke.Task { return fibTree(n - 2) }},
			{Work: 10, Join: true},
		},
	}
}
