package bench

import (
	"sort"
	"sync/atomic"
	"unsafe"

	"fibril/internal/core"
	"fibril/internal/invoke"
)

// Knapsack is branch-and-bound 0/1 knapsack (paper: 32 items): items
// sorted by value density; each node either takes or skips the next item,
// pruning with the fractional upper bound against the best value found so
// far. The instance is a parity-hard subset-sum (odd weights, even
// capacity, value = weight), so the density bound prunes weakly and the
// search tree is substantial. The parallel version shares the incumbent
// through an atomic maximum, so pruning with a stale bound only ever
// prunes less — the optimum is deterministic even though the work is not.
// N is the item count.
var Knapsack = register(&Spec{
	Name:        "knapsack",
	Description: "Recursive knapsack",
	ArgDoc:      "N = number of items; capacity = half the total weight",
	Default:     Arg{N: 26},
	Paper:       Arg{N: 32},
	Sim:         Arg{N: 32},
	Serial: func(a Arg) uint64 {
		items, cap := ksInput(a.N)
		best := int64(0)
		ksSerial(items, 0, cap, 0, &best)
		return uint64(best)
	},
	Parallel: func(w *core.W, a Arg) uint64 {
		items, cap := ksInput(a.N)
		var best atomic.Int64
		ksArg(w, items, 0, cap, 0, &best)
		return uint64(best.Load())
	},
	ParallelClosure: func(w *core.W, a Arg) uint64 {
		items, cap := ksInput(a.N)
		var best atomic.Int64
		ksParallel(w, items, 0, cap, 0, &best)
		return uint64(best.Load())
	},
	Tree: func(a Arg) invoke.Task {
		items, cap := ksInput(a.N)
		best := new(int64)
		return ksTree(items, 0, cap, 0, best)
	},
})

type ksItem struct{ weight, value int64 }

// ksInput generates the reproducible parity-hard instance sorted by
// decreasing value density, plus the capacity.
func ksInput(n int) ([]ksItem, int64) {
	rng := splitmix64{state: 0xC0FFEE}
	items := make([]ksItem, n)
	var total int64
	for i := range items {
		w := 2*int64(rng.next()%25+10) + 1 // odd, 21..69
		items[i] = ksItem{weight: w, value: w}
		total += w
	}
	sort.Slice(items, func(i, j int) bool {
		// density descending; ties by weight for determinism
		di := items[i].value * items[j].weight
		dj := items[j].value * items[i].weight
		if di != dj {
			return di > dj
		}
		return items[i].weight < items[j].weight
	})
	c := total / 2
	c -= c % 2 // even capacity, odd weights: parity frustrates the bound
	return items, c
}

// ksBound is the fractional relaxation: current value plus the best
// possible use of the remaining capacity.
func ksBound(items []ksItem, i int, cap, value int64) int64 {
	for ; i < len(items) && cap > 0; i++ {
		it := items[i]
		if it.weight <= cap {
			cap -= it.weight
			value += it.value
		} else {
			return value + it.value*cap/it.weight
		}
	}
	return value
}

func ksSerial(items []ksItem, i int, cap, value int64, best *int64) {
	if value > *best {
		*best = value
	}
	if i == len(items) || cap == 0 {
		return
	}
	if ksBound(items, i, cap, value) <= *best {
		return
	}
	if items[i].weight <= cap {
		ksSerial(items, i+1, cap-items[i].weight, value+items[i].value, best)
	}
	ksSerial(items, i+1, cap, value, best)
}

// atomicMax raises *a to at least v.
func atomicMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ksCtx is one branch's argument record. Unlike fib's, it carries
// pointers (the items slice header and the shared incumbent) through the
// arena's unscanned payload; both stay independently reachable the whole
// time a child is in flight — the forking ksArg's own items parameter
// and the root caller's best live across the Join — as the arena's
// contract requires.
type ksCtx struct {
	items []ksItem
	i     int
	cap   int64
	value int64
	best  *atomic.Int64
}

const _ = uint(core.ScratchBytes - unsafe.Sizeof([2]ksCtx{}))

func ksArgTask(w *core.W, p unsafe.Pointer) {
	c := (*ksCtx)(p)
	ksArg(w, c.items, c.i, c.cap, c.value, c.best)
}

// ksArg is branch-and-bound on the zero-allocation ForkArg path: take
// branch forked, skip branch called, both argument records and the join
// frame in one arena block.
func ksArg(w *core.W, items []ksItem, i int, cap, value int64, best *atomic.Int64) {
	atomicMax(best, value)
	if i == len(items) || cap == 0 {
		return
	}
	if ksBound(items, i, cap, value) <= best.Load() {
		return
	}
	s := w.AcquireScratch()
	pay := (*[2]ksCtx)(s.Ptr())
	fr := s.Frame()
	w.Init(fr)
	if items[i].weight <= cap {
		pay[0] = ksCtx{items: items, i: i + 1, cap: cap - items[i].weight,
			value: value + items[i].value, best: best}
		w.ForkArgSized(fr, frameMedium, ksArgTask, unsafe.Pointer(&pay[0]))
	}
	pay[1] = ksCtx{items: items, i: i + 1, cap: cap, value: value, best: best}
	w.CallArgSized(frameMedium, ksArgTask, unsafe.Pointer(&pay[1]))
	w.Join(fr)
	w.ReleaseScratch(s)
}

// ksParallel is the closure-fork implementation, retained as the
// forkpath experiment's baseline.
func ksParallel(w *core.W, items []ksItem, i int, cap, value int64, best *atomic.Int64) {
	atomicMax(best, value)
	if i == len(items) || cap == 0 {
		return
	}
	if ksBound(items, i, cap, value) <= best.Load() {
		return
	}
	var fr core.Frame
	w.Init(&fr)
	if items[i].weight <= cap {
		w.ForkSized(&fr, frameMedium, func(w *core.W) {
			ksParallel(w, items, i+1, cap-items[i].weight, value+items[i].value, best)
		})
	}
	w.CallSized(frameMedium, func(w *core.W) {
		ksParallel(w, items, i+1, cap, value, best)
	})
	w.Join(&fr)
}

// ksTree prunes against a shared incumbent, like any real B&B. The
// incumbent advances in whatever order the consumer expands nodes, so the
// tree's exact size depends on the schedule — faithful to parallel
// branch-and-bound, whose speculative work is schedule-dependent. Each
// Tree() call gets a fresh incumbent; a returned tree is single-use.
func ksTree(items []ksItem, i int, cap, value int64, best *int64) invoke.Task {
	if value > *best {
		*best = value
	}
	prune := i == len(items) || cap == 0 || ksBound(items, i, cap, value) <= *best
	if prune {
		return invoke.Task{Name: "ks-leaf", Frame: frameMedium,
			Segs: []invoke.Seg{{Work: 16}}}
	}
	segs := []invoke.Seg{{Work: 32}}
	if items[i].weight <= cap {
		segs = append(segs, invoke.Seg{Fork: func() invoke.Task {
			return ksTree(items, i+1, cap-items[i].weight, value+items[i].value, best)
		}})
	}
	segs = append(segs, invoke.Seg{
		Call: func() invoke.Task { return ksTree(items, i+1, cap, value, best) },
		Join: true,
	})
	return invoke.Task{Name: "knapsack", Frame: frameMedium, Segs: segs}
}
