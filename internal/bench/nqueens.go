package bench

import (
	"unsafe"

	"fibril/internal/core"
	"fibril/internal/invoke"
)

// NQueens counts the placements of N non-attacking queens (paper: N = 14)
// by row-by-row bitmask backtracking, forking one child per legal column —
// the classic irregular-parallelism benchmark: subtree sizes vary wildly,
// exercising the load balancer.
// N is the board size.
var NQueens = register(&Spec{
	Name:        "nqueens",
	Description: "Count ways to place N queens",
	ArgDoc:      "N = board size",
	Default:     Arg{N: 10},
	Paper:       Arg{N: 14},
	Sim:         Arg{N: 12},
	Serial:      func(a Arg) uint64 { return uint64(nqSerial(a.N, 0, 0, 0)) },
	Parallel: func(w *core.W, a Arg) uint64 {
		return uint64(nqArg(w, a.N, 0, 0, 0))
	},
	ParallelClosure: func(w *core.W, a Arg) uint64 {
		var out int64
		nqParallel(w, a.N, 0, 0, 0, &out)
		return uint64(out)
	},
	Tree: func(a Arg) invoke.Task { return nqTree(a.N, 0, 0, 0) },
})

// nqSerial counts completions given column/diagonal occupancy masks.
func nqSerial(n int, cols, diag1, diag2 uint32) int64 {
	row := popcount(cols)
	if int(row) == n {
		return 1
	}
	full := uint32(1<<n) - 1
	avail := full &^ (cols | diag1 | diag2)
	var count int64
	for avail != 0 {
		bit := avail & (-avail)
		avail &^= bit
		count += nqSerial(n, cols|bit, (diag1|bit)<<1&full, (diag2|bit)>>1)
	}
	return count
}

func popcount(x uint32) uint32 {
	var c uint32
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}

// nqCtx is one child subtree's argument record (pointer-free).
type nqCtx struct {
	n                  int
	cols, diag1, diag2 uint32
	res                int64
}

// nqPerBlock argument records pack into one arena block's payload.
const nqPerBlock = 4

const _ = uint(core.ScratchBytes - nqPerBlock*unsafe.Sizeof(nqCtx{}))

// nqBlockMax blocks cover the widest possible row: the column masks are
// uint32, so a board never has more than 32 candidate columns.
const nqBlockMax = 32 / nqPerBlock

func nqCtxAt(blocks *[nqBlockMax]*core.Scratch, k int) *nqCtx {
	return &(*[nqPerBlock]nqCtx)(blocks[k/nqPerBlock].Ptr())[k%nqPerBlock]
}

func nqArgTask(w *core.W, p unsafe.Pointer) {
	c := (*nqCtx)(p)
	c.res = nqArg(w, c.n, c.cols, c.diag1, c.diag2)
}

// nqArg forks one child per candidate column on the zero-allocation
// ForkArg path. A row's fan-out exceeds one block's payload, so argument
// records chain across up to nqBlockMax arena blocks — the first also
// carries the join frame — all released once the join quiesces them.
// Results are summed in fork order, matching the closure version's
// checksum exactly.
func nqArg(w *core.W, n int, cols, diag1, diag2 uint32) int64 {
	row := popcount(cols)
	if int(row) == n {
		return 1
	}
	full := uint32(1<<n) - 1
	avail := full &^ (cols | diag1 | diag2)
	if avail == 0 {
		return 0
	}
	// The last few rows run serially: forking single-row subtrees would be
	// all overhead, and the Cilk version bottoms out the same way.
	if int(row) >= n-3 {
		return nqSerial(n, cols, diag1, diag2)
	}
	var blocks [nqBlockMax]*core.Scratch
	blocks[0] = w.AcquireScratch()
	nb := 1
	fr := blocks[0].Frame()
	w.Init(fr)
	k := 0
	for avail != 0 {
		bit := avail & (-avail)
		avail &^= bit
		if k/nqPerBlock >= nb {
			blocks[nb] = w.AcquireScratch()
			nb++
		}
		c := nqCtxAt(&blocks, k)
		*c = nqCtx{n: n, cols: cols | bit,
			diag1: (diag1 | bit) << 1 & full, diag2: (diag2 | bit) >> 1}
		w.ForkArgSized(fr, frameLarge, nqArgTask, unsafe.Pointer(c))
		k++
	}
	w.Join(fr)
	var total int64
	for i := 0; i < k; i++ {
		total += nqCtxAt(&blocks, i).res
	}
	for i := nb - 1; i >= 0; i-- {
		w.ReleaseScratch(blocks[i])
	}
	return total
}

// nqParallel is the closure-fork implementation, retained as the
// forkpath experiment's baseline: one child per candidate column;
// results land in per-child slots, summed after the join — no shared
// counters on the hot path.
func nqParallel(w *core.W, n int, cols, diag1, diag2 uint32, out *int64) {
	row := popcount(cols)
	if int(row) == n {
		*out = 1
		return
	}
	full := uint32(1<<n) - 1
	avail := full &^ (cols | diag1 | diag2)
	if avail == 0 {
		*out = 0
		return
	}
	// The last few rows run serially: forking single-row subtrees would be
	// all overhead, and the Cilk version bottoms out the same way.
	if int(row) >= n-3 {
		*out = nqSerial(n, cols, diag1, diag2)
		return
	}
	var fr core.Frame
	w.Init(&fr)
	counts := make([]int64, 0, n)
	for avail != 0 {
		bit := avail & (-avail)
		avail &^= bit
		counts = append(counts, 0)
		slot := &counts[len(counts)-1]
		c, d1, d2 := cols|bit, (diag1|bit)<<1&full, (diag2|bit)>>1
		w.ForkSized(&fr, frameLarge, func(w *core.W) {
			nqParallel(w, n, c, d1, d2, slot)
		})
	}
	w.Join(&fr)
	var total int64
	for _, c := range counts {
		total += c
	}
	*out = total
}

// nqTree mirrors nqParallel: all children forked, one join.
func nqTree(n int, cols, diag1, diag2 uint32) invoke.Task {
	row := popcount(cols)
	full := uint32(1<<n) - 1
	avail := full &^ (cols | diag1 | diag2)
	if int(row) == n || avail == 0 || int(row) >= n-3 {
		// Serial tail: weight by the actual number of nodes it explores.
		work := 25 * nqSerialNodes(n, cols, diag1, diag2)
		return invoke.Task{Name: "nq-leaf", Frame: frameLarge,
			Segs: []invoke.Seg{{Work: work}}}
	}
	var segs []invoke.Seg
	for avail != 0 {
		bit := avail & (-avail)
		avail &^= bit
		c, d1, d2 := cols|bit, (diag1|bit)<<1&full, (diag2|bit)>>1
		segs = append(segs, invoke.Seg{Work: 12, Fork: func() invoke.Task {
			return nqTree(n, c, d1, d2)
		}})
	}
	segs = append(segs, invoke.Seg{Work: 12, Join: true})
	return invoke.Task{Name: "nqueens", Frame: frameLarge, Segs: segs}
}

// nqSerialNodes counts backtracking nodes, the serial tail's work proxy.
func nqSerialNodes(n int, cols, diag1, diag2 uint32) int64 {
	if int(popcount(cols)) == n {
		return 1
	}
	full := uint32(1<<n) - 1
	avail := full &^ (cols | diag1 | diag2)
	nodes := int64(1)
	for avail != 0 {
		bit := avail & (-avail)
		avail &^= bit
		nodes += nqSerialNodes(n, cols|bit, (diag1|bit)<<1&full, (diag2|bit)>>1)
	}
	return nodes
}
