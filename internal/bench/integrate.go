package bench

import (
	"math"
	"unsafe"

	"fibril/internal/core"
	"fibril/internal/invoke"
)

// Integrate is quadrature adaptive integration of f(x) = (x² + 1)·x over
// [0, N] with absolute tolerance 10⁻ᴹ (paper: N = 10⁴, ε = 10⁻⁹):
// recursive interval bisection forking one half and calling the other,
// exactly the Cilk-5 integrate benchmark. The exact integral N⁴/4 + N²/2
// verifies the numerics beyond the serial-vs-parallel checksum. The
// tolerance is an input because the tree size grows steeply as ε shrinks.
var Integrate = register(&Spec{
	Name:        "integrate",
	Description: "Quadrature adaptive integration",
	ArgDoc:      "N = upper limit of [0,N], M = -log10(tolerance)",
	Default:     Arg{N: 100, M: 2},
	Paper:       Arg{N: 10000, M: 9},
	Sim:         Arg{N: 120, M: 3},
	Serial: func(a Arg) uint64 {
		x2 := float64(a.N)
		v := integrateSerial(0, x2, integrandAt(0), integrandAt(x2), epsFor(a))
		return f64bits(v)
	},
	Parallel: func(w *core.W, a Arg) uint64 {
		x2 := float64(a.N)
		return f64bits(integrateArg(w, 0, x2, integrandAt(0), integrandAt(x2), epsFor(a)))
	},
	ParallelClosure: func(w *core.W, a Arg) uint64 {
		x2 := float64(a.N)
		var v float64
		integrateParallel(w, 0, x2, integrandAt(0), integrandAt(x2), epsFor(a), &v)
		return f64bits(v)
	},
	Tree: func(a Arg) invoke.Task {
		return integrateTree(0, float64(a.N), integrandAt(0), integrandAt(float64(a.N)), epsFor(a))
	},
})

// epsFor derives the tolerance from the argument; M = 0 means the paper's
// 10⁻⁹.
func epsFor(a Arg) float64 {
	m := a.M
	if m == 0 {
		m = 9
	}
	return math.Pow(10, -float64(m))
}

// integrandAt evaluates f(x) = (x² + 1)·x.
func integrandAt(x float64) float64 { return (x*x + 1.0) * x }

// integrateSerial is trapezoid refinement: split when the two-panel
// estimate differs from the one-panel estimate by more than the tolerance.
func integrateSerial(x1, x2, y1, y2, eps float64) float64 {
	xm := (x1 + x2) / 2
	ym := integrandAt(xm)
	whole := (y1 + y2) * (x2 - x1) / 2
	halves := (y1+ym)*(xm-x1)/2 + (ym+y2)*(x2-xm)/2
	if math.Abs(halves-whole) < eps {
		return halves
	}
	return integrateSerial(x1, xm, y1, ym, eps/2) +
		integrateSerial(xm, x2, ym, y2, eps/2)
}

// intgCtx is one half-interval's argument record; two of them plus the
// join frame fit in a single arena block (pointer-free payload, so the
// arena's unscanned-buffer contract is trivially satisfied).
type intgCtx struct {
	x1, x2, y1, y2, eps, res float64
}

const _ = uint(core.ScratchBytes - unsafe.Sizeof([2]intgCtx{}))

func intgArgTask(w *core.W, p unsafe.Pointer) {
	c := (*intgCtx)(p)
	c.res = integrateArg(w, c.x1, c.x2, c.y1, c.y2, c.eps)
}

// integrateArg is the bisection recursion on the zero-allocation ForkArg
// path. Combining pay[0].res + pay[1].res preserves the closure
// version's left + right operation order, so the checksum is identical.
func integrateArg(w *core.W, x1, x2, y1, y2, eps float64) float64 {
	xm := (x1 + x2) / 2
	ym := integrandAt(xm)
	whole := (y1 + y2) * (x2 - x1) / 2
	halves := (y1+ym)*(xm-x1)/2 + (ym+y2)*(x2-xm)/2
	if math.Abs(halves-whole) < eps {
		return halves
	}
	s := w.AcquireScratch()
	pay := (*[2]intgCtx)(s.Ptr())
	pay[0] = intgCtx{x1: x1, x2: xm, y1: y1, y2: ym, eps: eps / 2}
	pay[1] = intgCtx{x1: xm, x2: x2, y1: ym, y2: y2, eps: eps / 2}
	fr := s.Frame()
	w.Init(fr)
	w.ForkArgSized(fr, frameMedium, intgArgTask, unsafe.Pointer(&pay[0]))
	w.CallArgSized(frameMedium, intgArgTask, unsafe.Pointer(&pay[1]))
	w.Join(fr)
	v := pay[0].res + pay[1].res
	w.ReleaseScratch(s)
	return v
}

// integrateParallel is the closure-fork implementation, retained as the
// forkpath experiment's baseline.
func integrateParallel(w *core.W, x1, x2, y1, y2, eps float64, out *float64) {
	xm := (x1 + x2) / 2
	ym := integrandAt(xm)
	whole := (y1 + y2) * (x2 - x1) / 2
	halves := (y1+ym)*(xm-x1)/2 + (ym+y2)*(x2-xm)/2
	if math.Abs(halves-whole) < eps {
		*out = halves
		return
	}
	var fr core.Frame
	w.Init(&fr)
	var left, right float64
	w.ForkSized(&fr, frameMedium, func(w *core.W) {
		integrateParallel(w, x1, xm, y1, ym, eps/2, &left)
	})
	w.CallSized(frameMedium, func(w *core.W) {
		integrateParallel(w, xm, x2, ym, y2, eps/2, &right)
	})
	w.Join(&fr)
	*out = left + right
}

// integrateTree mirrors the parallel recursion. The adaptive split
// decision is recomputed, so the tree has the exact shape of the real run;
// nodes are keyed by interval only when intervals repeat (they do not), so
// no memoization — use scaled N for simulation.
func integrateTree(x1, x2, y1, y2, eps float64) invoke.Task {
	xm := (x1 + x2) / 2
	ym := integrandAt(xm)
	whole := (y1 + y2) * (x2 - x1) / 2
	halves := (y1+ym)*(xm-x1)/2 + (ym+y2)*(x2-xm)/2
	if math.Abs(halves-whole) < eps {
		return invoke.Task{Name: "integrate-leaf", Frame: frameMedium,
			Segs: []invoke.Seg{{Work: 48}}}
	}
	return invoke.Task{
		Name: "integrate", Frame: frameMedium,
		Segs: []invoke.Seg{
			{Work: 32, Fork: func() invoke.Task {
				return integrateTree(x1, xm, y1, ym, eps/2)
			}},
			{Work: 0, Call: func() invoke.Task {
				return integrateTree(xm, x2, ym, y2, eps/2)
			}},
			{Work: 16, Join: true},
		},
	}
}
