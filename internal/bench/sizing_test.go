package bench

import (
	"testing"

	"fibril/internal/invoke"
)

// TestSimTreeSizesStayTractable pins the Sim-input tree sizes: the Figure 4
// sweeps run dozens of simulations per benchmark, so every Sim tree must
// stay in the low millions of tasks.
func TestSimTreeSizesStayTractable(t *testing.T) {
	const limit = 3_000_000
	for _, s := range All() {
		m := invoke.Analyze(s.Tree(s.Sim))
		if m.Tasks > limit {
			t.Errorf("%s: sim tree has %d tasks (> %d)", s.Name, m.Tasks, limit)
		}
	}
}

func TestIntegrateSizing(t *testing.T) {
	for _, a := range []Arg{{N: 300, M: 4}, {N: 400, M: 4}, {N: 500, M: 4}, {N: 800, M: 4}} {
		m := invoke.Analyze(Integrate.Tree(a))
		t.Logf("integrate %v: tasks=%d T1=%d", a, m.Tasks, m.Work)
	}
}
