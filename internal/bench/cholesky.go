package bench

import (
	"math"

	"fibril/internal/core"
	"fibril/internal/invoke"
)

// Cholesky factors a seeded SPD N×N matrix in place into L·Lᵀ by quadrant
// recursion: factor A00; solve the panel A10 := A10·L00⁻ᵀ; update the
// trailing block A11 −= A10·A10ᵀ (its column blocks are independent and
// fork); recurse on A11.
//
// Substitution note: the paper's cholesky is the Cilk sparse quadtree
// benchmark (input 4000 with 40000 nonzeros). A faithful sparse quadtree
// needs the original matrix file; we substitute the dense recursive
// factorization of the same divide-and-conquer shape on a synthetic SPD
// matrix, which exercises the identical fork/join pattern (see DESIGN.md).
// N is the matrix dimension.
var Cholesky = register(&Spec{
	Name:        "cholesky",
	Description: "Cholesky decomposition",
	ArgDoc:      "N = square SPD matrix dimension",
	Default:     Arg{N: 192},
	Paper:       Arg{N: 4000},
	Sim:         Arg{N: 768},
	Serial: func(a Arg) uint64 {
		A := spdMat(0xC4, a.N)
		cholSerial(A)
		return cholChecksum(A)
	},
	Parallel: func(w *core.W, a Arg) uint64 {
		A := spdMat(0xC4, a.N)
		cholParallel(w, A)
		return cholChecksum(A)
	},
	Tree: func(a Arg) invoke.Task { return cholTree(a.N) },
})

// cholChecksum hashes the lower triangle (the upper is untouched input).
func cholChecksum(a mat) uint64 {
	h := uint64(0xCBF29CE484222325)
	for i := 0; i < a.rows; i++ {
		for j := 0; j <= i; j++ {
			h = mix(h, f64bits(a.at(i, j)))
		}
	}
	return h
}

// cholKernel is the serial in-place Cholesky–Crout base case.
func cholKernel(a mat) {
	n := a.rows
	for j := 0; j < n; j++ {
		d := a.at(j, j)
		for k := 0; k < j; k++ {
			d -= a.at(j, k) * a.at(j, k)
		}
		d = math.Sqrt(d)
		a.set(j, j, d)
		for i := j + 1; i < n; i++ {
			v := a.at(i, j)
			for k := 0; k < j; k++ {
				v -= a.at(i, k) * a.at(j, k)
			}
			a.set(i, j, v/d)
		}
	}
}

// rightLowerTSolveKernel solves X·Lᵀ = B in place on B (L lower
// triangular): column j of X depends on columns < j.
func rightLowerTSolveKernel(l, b mat) {
	for j := 0; j < l.rows; j++ {
		ljj := l.at(j, j)
		for i := 0; i < b.rows; i++ {
			v := b.at(i, j)
			for k := 0; k < j; k++ {
				v -= b.at(i, k) * l.at(j, k)
			}
			b.set(i, j, v/ljj)
		}
	}
}

// rightLowerTSolveSerial recursively solves X·Lᵀ = B in place.
func rightLowerTSolveSerial(l, b mat) {
	if l.rows <= luBase {
		rightLowerTSolveKernel(l, b)
		return
	}
	h := l.rows / 2
	l00 := l.sub(0, 0, h, h)
	l10 := l.sub(h, 0, l.rows-h, h)
	l11 := l.sub(h, h, l.rows-h, l.rows-h)
	bl := b.sub(0, 0, b.rows, h)
	br := b.sub(0, h, b.rows, b.cols-h)
	rightLowerTSolveSerial(l00, bl)
	// br −= bl·L10ᵀ
	mulNegTransposeSerial(br, bl, l10)
	rightLowerTSolveSerial(l11, br)
}

// rightLowerTSolveParallel forks row blocks of B (rows are independent).
func rightLowerTSolveParallel(w *core.W, l, b mat) {
	if b.rows > luBase {
		h := b.rows / 2
		b0, b1 := b.sub(0, 0, h, b.cols), b.sub(h, 0, b.rows-h, b.cols)
		var fr core.Frame
		w.Init(&fr)
		w.ForkSized(&fr, frameLarge, func(w *core.W) { rightLowerTSolveParallel(w, l, b0) })
		w.CallSized(frameLarge, func(w *core.W) { rightLowerTSolveParallel(w, l, b1) })
		w.Join(&fr)
		return
	}
	rightLowerTSolveSerial(l, b)
}

// mulNegTransposeSerial computes C −= A·Bᵀ serially.
func mulNegTransposeSerial(c, a, b mat) {
	for i := 0; i < c.rows; i++ {
		for j := 0; j < c.cols; j++ {
			v := c.at(i, j)
			for k := 0; k < a.cols; k++ {
				v -= a.at(i, k) * b.at(j, k)
			}
			c.set(i, j, v)
		}
	}
}

// syrkParallel computes the trailing update C −= A·Aᵀ restricted to C's
// lower triangle (C is symmetric; only the lower half is factored),
// forking disjoint row blocks. rowOff is the block's row offset within the
// full update, 0 at the top call. Per-element arithmetic matches the
// serial syrkRows, so results are bit-identical.
func syrkParallel(w *core.W, c, a mat, rowOff int) {
	if c.rows <= luBase {
		syrkRows(c, a, rowOff)
		return
	}
	h := c.rows / 2
	c0, c1 := c.sub(0, 0, h, c.cols), c.sub(h, 0, c.rows-h, c.cols)
	var fr core.Frame
	w.Init(&fr)
	w.ForkSized(&fr, frameLarge, func(w *core.W) { syrkParallel(w, c0, a, rowOff) })
	w.CallSized(frameLarge, func(w *core.W) { syrkParallel(w, c1, a, rowOff+h) })
	w.Join(&fr)
}

// syrkRows is the row-block kernel: C's rows are rows rowOff.. of the full
// block, so row i of this view pairs with A rows rowOff+i and j.
func syrkRows(c, a mat, rowOff int) {
	for i := 0; i < c.rows; i++ {
		gi := rowOff + i
		for j := 0; j <= gi; j++ {
			v := c.at(i, j)
			for k := 0; k < a.cols; k++ {
				v -= a.at(gi, k) * a.at(j, k)
			}
			c.set(i, j, v)
		}
	}
}

func cholSerial(a mat) {
	if a.rows <= luBase {
		cholKernel(a)
		return
	}
	h := a.rows / 2
	a00 := a.sub(0, 0, h, h)
	a10 := a.sub(h, 0, a.rows-h, h)
	a11 := a.sub(h, h, a.rows-h, a.cols-h)
	cholSerial(a00)
	rightLowerTSolveSerial(a00, a10) // A10 := A10·L00⁻ᵀ
	syrkRowsSerial(a11, a10)         // A11 −= A10·A10ᵀ (lower triangle)
	cholSerial(a11)
}

// syrkRowsSerial matches syrkParallel's per-element arithmetic.
func syrkRowsSerial(c, a mat) { syrkRows(c, a, 0) }

func cholParallel(w *core.W, a mat) {
	if a.rows <= luBase {
		cholKernel(a)
		return
	}
	h := a.rows / 2
	a00 := a.sub(0, 0, h, h)
	a10 := a.sub(h, 0, a.rows-h, h)
	a11 := a.sub(h, h, a.rows-h, a.cols-h)
	w.CallSized(frameLarge, func(w *core.W) { cholParallel(w, a00) })
	w.CallSized(frameLarge, func(w *core.W) { rightLowerTSolveParallel(w, a00, a10) })
	w.CallSized(frameLarge, func(w *core.W) { syrkParallel(w, a11, a10, 0) })
	w.CallSized(frameLarge, func(w *core.W) { cholParallel(w, a11) })
}

// cholTree mirrors cholParallel, keyed by dimension.
func cholTree(n int) invoke.Task {
	key := uint64(n)<<8 | 0xC5
	if n <= treeBase {
		work := int64(n) * int64(n) * int64(n) / 24
		if work < 1 {
			work = 1
		}
		return invoke.Task{Name: "chol-kernel", Frame: frameLarge, Key: key,
			Segs: []invoke.Seg{{Work: work}}}
	}
	h := n / 2
	return invoke.Task{Name: "cholesky", Frame: frameLarge, Key: key,
		Segs: []invoke.Seg{
			{Work: 1, Call: func() invoke.Task { return cholTree(h) }},
			{Call: func() invoke.Task { return solveTree(h, n-h, false) }},
			{Call: func() invoke.Task { return syrkTree(n-h, h) }},
			{Call: func() invoke.Task { return cholTree(n - h) }},
		}}
}

// syrkTree models the trailing update's parallel row-block recursion.
func syrkTree(rows, k int) invoke.Task {
	key := uint64(rows)<<24 | uint64(k)<<2 | 0x3
	if rows <= treeBase {
		work := int64(rows) * int64(rows) * int64(k) / 24
		if work < 1 {
			work = 1
		}
		return invoke.Task{Name: "syrk-kernel", Frame: frameLarge, Key: key,
			Segs: []invoke.Seg{{Work: work}}}
	}
	h := rows / 2
	return invoke.Task{Name: "syrk", Frame: frameLarge, Key: key,
		Segs: []invoke.Seg{
			{Work: 1, Fork: func() invoke.Task { return syrkTree(h, k) }},
			{Call: func() invoke.Task { return syrkTree(rows-h, k) }, Join: true},
		}}
}
