package bench

import (
	"fibril/internal/core"
	"fibril/internal/invoke"
)

// luBase is the dimension at which LU and the triangular solves switch to
// serial kernels.
const luBase = 32

// LU factors a seeded diagonally dominant N×N matrix (paper: N = 4096)
// in place into L·U without pivoting, by quadrant recursion: factor A00;
// solve the two off-diagonal panels (in parallel — they are independent);
// form the Schur complement A11 −= A10·A01 with the parallel multiply;
// recurse on A11.
// N is the matrix dimension.
var LU = register(&Spec{
	Name:        "lu",
	Description: "LU decomposition",
	ArgDoc:      "N = square matrix dimension",
	Default:     Arg{N: 192},
	Paper:       Arg{N: 4096},
	Sim:         Arg{N: 768},
	Serial: func(a Arg) uint64 {
		A := spdMat(0x10, a.N)
		luSerial(A)
		return A.checksum()
	},
	Parallel: func(w *core.W, a Arg) uint64 {
		A := spdMat(0x10, a.N)
		luParallel(w, A)
		return A.checksum()
	},
	Tree: func(a Arg) invoke.Task { return luTree(a.N) },
})

// luKernel is in-place Doolittle LU (unit lower) on a small block.
func luKernel(a mat) {
	n := a.rows
	for k := 0; k < n; k++ {
		pivot := a.at(k, k)
		for i := k + 1; i < n; i++ {
			l := a.at(i, k) / pivot
			a.set(i, k, l)
			for j := k + 1; j < n; j++ {
				a.add(i, j, -l*a.at(k, j))
			}
		}
	}
}

// lowerSolveKernel solves L·X = B in place on B, L unit lower triangular.
func lowerSolveKernel(l, b mat) {
	for i := 0; i < l.rows; i++ {
		for k := 0; k < i; k++ {
			lik := l.at(i, k)
			if lik == 0 {
				continue
			}
			for j := 0; j < b.cols; j++ {
				b.add(i, j, -lik*b.at(k, j))
			}
		}
	}
}

// upperSolveKernel solves X·U = B in place on B, U upper triangular.
func upperSolveKernel(u, b mat) {
	for j := 0; j < u.cols; j++ {
		ujj := u.at(j, j)
		for i := 0; i < b.rows; i++ {
			v := b.at(i, j)
			for k := 0; k < j; k++ {
				v -= b.at(i, k) * u.at(k, j)
			}
			b.set(i, j, v/ujj)
		}
	}
}

// lowerSolveSerial recursively solves L·X = B in place on B.
func lowerSolveSerial(l, b mat) {
	if l.rows <= luBase {
		lowerSolveKernel(l, b)
		return
	}
	h := l.rows / 2
	l00 := l.sub(0, 0, h, h)
	l10 := l.sub(h, 0, l.rows-h, h)
	l11 := l.sub(h, h, l.rows-h, l.rows-h)
	bt := b.sub(0, 0, h, b.cols)
	bb := b.sub(h, 0, b.rows-h, b.cols)
	lowerSolveSerial(l00, bt)
	mulNegSerial(bb, l10, bt)
	lowerSolveSerial(l11, bb)
}

// lowerSolveParallel splits B's columns in parallel, rows sequentially.
func lowerSolveParallel(w *core.W, l, b mat) {
	if b.cols > luBase {
		h := b.cols / 2
		b0, b1 := b.sub(0, 0, b.rows, h), b.sub(0, h, b.rows, b.cols-h)
		var fr core.Frame
		w.Init(&fr)
		w.ForkSized(&fr, frameLarge, func(w *core.W) { lowerSolveParallel(w, l, b0) })
		w.CallSized(frameLarge, func(w *core.W) { lowerSolveParallel(w, l, b1) })
		w.Join(&fr)
		return
	}
	lowerSolveSerial(l, b)
}

// upperSolveSerial recursively solves X·U = B in place on B.
func upperSolveSerial(u, b mat) {
	if u.rows <= luBase {
		upperSolveKernel(u, b)
		return
	}
	h := u.rows / 2
	u00 := u.sub(0, 0, h, h)
	u01 := u.sub(0, h, h, u.cols-h)
	u11 := u.sub(h, h, u.rows-h, u.cols-h)
	bl := b.sub(0, 0, b.rows, h)
	br := b.sub(0, h, b.rows, b.cols-h)
	upperSolveSerial(u00, bl)
	mulNegSerial(br, bl, u01)
	upperSolveSerial(u11, br)
}

// upperSolveParallel splits B's rows in parallel, columns sequentially.
func upperSolveParallel(w *core.W, u, b mat) {
	if b.rows > luBase {
		h := b.rows / 2
		b0, b1 := b.sub(0, 0, h, b.cols), b.sub(h, 0, b.rows-h, b.cols)
		var fr core.Frame
		w.Init(&fr)
		w.ForkSized(&fr, frameLarge, func(w *core.W) { upperSolveParallel(w, u, b0) })
		w.CallSized(frameLarge, func(w *core.W) { upperSolveParallel(w, u, b1) })
		w.Join(&fr)
		return
	}
	upperSolveSerial(u, b)
}

// mulNegSerial computes C −= A·B serially (for solve updates).
func mulNegSerial(c, a, b mat) {
	for i := 0; i < a.rows; i++ {
		crow := c.data[i*c.stride : i*c.stride+c.cols]
		for k := 0; k < a.cols; k++ {
			av := a.at(i, k)
			if av == 0 {
				continue
			}
			brow := b.data[k*b.stride : k*b.stride+b.cols]
			for j := range crow {
				crow[j] -= av * brow[j]
			}
		}
	}
}

// schurSerial computes C −= A·B with the divide-and-conquer split rule, so
// the parallel Schur update is bit-identical.
func schurSerial(c, a, b mat) {
	switch mulSplit(a.rows, a.cols, b.cols) {
	case 0:
		mulNegSerial(c, a, b)
	case 1:
		h := a.rows / 2
		schurSerial(c.sub(0, 0, h, c.cols), a.sub(0, 0, h, a.cols), b)
		schurSerial(c.sub(h, 0, c.rows-h, c.cols), a.sub(h, 0, a.rows-h, a.cols), b)
	case 2:
		h := b.cols / 2
		schurSerial(c.sub(0, 0, c.rows, h), a, b.sub(0, 0, b.rows, h))
		schurSerial(c.sub(0, h, c.rows, c.cols-h), a, b.sub(0, h, b.rows, b.cols-h))
	case 3:
		h := a.cols / 2
		schurSerial(c, a.sub(0, 0, a.rows, h), b.sub(0, 0, h, b.cols))
		schurSerial(c, a.sub(0, h, a.rows, a.cols-h), b.sub(h, 0, b.rows-h, b.cols))
	}
}

func schurParallel(w *core.W, c, a, b mat) {
	switch mulSplit(a.rows, a.cols, b.cols) {
	case 0:
		mulNegSerial(c, a, b)
	case 1:
		h := a.rows / 2
		c0, a0 := c.sub(0, 0, h, c.cols), a.sub(0, 0, h, a.cols)
		c1, a1 := c.sub(h, 0, c.rows-h, c.cols), a.sub(h, 0, a.rows-h, a.cols)
		var fr core.Frame
		w.Init(&fr)
		w.ForkSized(&fr, frameLarge, func(w *core.W) { schurParallel(w, c0, a0, b) })
		w.CallSized(frameLarge, func(w *core.W) { schurParallel(w, c1, a1, b) })
		w.Join(&fr)
	case 2:
		h := b.cols / 2
		c0, b0 := c.sub(0, 0, c.rows, h), b.sub(0, 0, b.rows, h)
		c1, b1 := c.sub(0, h, c.rows, c.cols-h), b.sub(0, h, b.rows, b.cols-h)
		var fr core.Frame
		w.Init(&fr)
		w.ForkSized(&fr, frameLarge, func(w *core.W) { schurParallel(w, c0, a, b0) })
		w.CallSized(frameLarge, func(w *core.W) { schurParallel(w, c1, a, b1) })
		w.Join(&fr)
	case 3:
		h := a.cols / 2
		a0, b0 := a.sub(0, 0, a.rows, h), b.sub(0, 0, h, b.cols)
		a1, b1 := a.sub(0, h, a.rows, a.cols-h), b.sub(h, 0, b.rows-h, b.cols)
		w.CallSized(frameLarge, func(w *core.W) { schurParallel(w, c, a0, b0) })
		w.CallSized(frameLarge, func(w *core.W) { schurParallel(w, c, a1, b1) })
	}
}

func luSerial(a mat) {
	if a.rows <= luBase {
		luKernel(a)
		return
	}
	h := a.rows / 2
	a00 := a.sub(0, 0, h, h)
	a01 := a.sub(0, h, h, a.cols-h)
	a10 := a.sub(h, 0, a.rows-h, h)
	a11 := a.sub(h, h, a.rows-h, a.cols-h)
	luSerial(a00)
	lowerSolveSerial(a00, a01) // A01 := L00⁻¹ A01
	upperSolveSerial(a00, a10) // A10 := A10 U00⁻¹
	schurSerial(a11, a10, a01) // A11 −= A10·A01
	luSerial(a11)
}

func luParallel(w *core.W, a mat) {
	if a.rows <= luBase {
		luKernel(a)
		return
	}
	h := a.rows / 2
	a00 := a.sub(0, 0, h, h)
	a01 := a.sub(0, h, h, a.cols-h)
	a10 := a.sub(h, 0, a.rows-h, h)
	a11 := a.sub(h, h, a.rows-h, a.cols-h)
	w.CallSized(frameLarge, func(w *core.W) { luParallel(w, a00) })
	var fr core.Frame
	w.Init(&fr)
	w.ForkSized(&fr, frameLarge, func(w *core.W) { lowerSolveParallel(w, a00, a01) })
	w.CallSized(frameLarge, func(w *core.W) { upperSolveParallel(w, a00, a10) })
	w.Join(&fr)
	w.CallSized(frameLarge, func(w *core.W) { schurParallel(w, a11, a10, a01) })
	w.CallSized(frameLarge, func(w *core.W) { luParallel(w, a11) })
}

// treeBase is the leaf granularity of the *model* trees for lu and
// cholesky: finer than the real kernels' luBase so the simulator sees the
// span the algorithm actually permits rather than artifacts of leaf size.
const treeBase = 16

// luTree mirrors luParallel, keyed by dimension.
func luTree(n int) invoke.Task {
	key := uint64(n)<<8 | 0x1C
	if n <= treeBase {
		work := int64(n) * int64(n) * int64(n) / 12
		if work < 1 {
			work = 1
		}
		return invoke.Task{Name: "lu-kernel", Frame: frameLarge, Key: key,
			Segs: []invoke.Seg{{Work: work}}}
	}
	h := n / 2
	return invoke.Task{Name: "lu", Frame: frameLarge, Key: key,
		Segs: []invoke.Seg{
			{Work: 1, Call: func() invoke.Task { return luTree(h) }},
			{Fork: func() invoke.Task { return solveTree(h, n-h, false) }},
			{Call: func() invoke.Task { return solveTree(h, n-h, true) }, Join: true},
			{Call: func() invoke.Task { return mulTree(n-h, h, n-h) }},
			{Call: func() invoke.Task { return luTree(n - h) }},
		}}
}

// solveTree models the panel solves: repeated halving of the panel's free
// dimension in parallel, then a serial triangular solve leaf.
func solveTree(tri, panel int, upper bool) invoke.Task {
	key := uint64(tri)<<24 | uint64(panel)<<2 | 0x2
	if upper {
		key |= 1
	}
	if panel <= treeBase {
		work := int64(tri) * int64(tri) * int64(panel) / 16
		if work < 1 {
			work = 1
		}
		return invoke.Task{Name: "solve-kernel", Frame: frameLarge, Key: key,
			Segs: []invoke.Seg{{Work: work}}}
	}
	h := panel / 2
	return invoke.Task{Name: "solve", Frame: frameLarge, Key: key,
		Segs: []invoke.Seg{
			{Work: 1, Fork: func() invoke.Task { return solveTree(tri, h, upper) }},
			{Call: func() invoke.Task { return solveTree(tri, panel-h, upper) }, Join: true},
		}}
}
