package bench

import (
	"fibril/internal/core"
	"fibril/internal/invoke"
)

// Adversarial constructs the workload class behind Sukha's lower bound for
// depth-restricted stealing (§3): workers get *blocked deep* while surplus
// work sits *shallow* in deques, where a depth-restricted (TBB) or
// descendant-restricted (leapfrog) join may not touch it.
//
// Structure: the root forks a few "trap" chains, then a long stream of
// shallow heavy tasks. Each trap dives D deep via plain calls; its bottom
// repeatedly forks a long-running "bait" task, works briefly (a window in
// which an idle worker steals the bait), and joins — blocking for the
// bait's full duration. A blocked Fibril worker suspends and its slot
// serves the shallow heavies; a blocked TBB/leapfrog worker may only steal
// deeper/descendant tasks — there are none in any deque — so it idles.
//
// N scales depth and durations; M is the number of shallow heavy tasks.
const (
	advTraps      = 3 // trap chains (should be < P-1 so baits get stolen)
	advBaitCycles = 4 // block/unblock rounds per trap
)

var Adversarial = register(&Spec{
	Name:        "adversarial",
	Description: "Depth-restricted stealing lower-bound workload",
	ArgDoc:      "N = depth/duration scale, M = shallow heavy tasks",
	Default:     Arg{N: 64, M: 400},
	Paper:       Arg{N: 256, M: 1600},
	Sim:         Arg{N: 128, M: 800},
	Serial: func(a Arg) uint64 {
		var sum uint64
		for t := 0; t < advTraps; t++ {
			sum += trapSerial(uint64(t), a.N)
		}
		for i := 0; i < a.M; i++ {
			sum += heavyWork(uint64(i), a.N/8+1)
		}
		return sum
	},
	Parallel: func(w *core.W, a Arg) uint64 {
		var fr core.Frame
		w.Init(&fr)
		traps := make([]uint64, advTraps)
		for t := 0; t < advTraps; t++ {
			t := t
			w.ForkSized(&fr, frameSmall, func(w *core.W) {
				traps[t] = trapParallel(w, uint64(t), a.N)
			})
		}
		sums := make([]uint64, a.M)
		for i := 0; i < a.M; i++ {
			i := i
			w.ForkSized(&fr, frameSmall, func(w *core.W) {
				sums[i] = heavyWork(uint64(i), a.N/8+1)
			})
		}
		w.Join(&fr)
		var sum uint64
		for _, v := range traps {
			sum += v
		}
		for _, v := range sums {
			sum += v
		}
		return sum
	},
	Tree: func(a Arg) invoke.Task { return adversarialTree(a.N, a.M) },
})

// heavyWork is a compute kernel of ~n·64 mixing rounds.
func heavyWork(seed uint64, n int) uint64 {
	h := seed | 1
	for i := 0; i < n*64; i++ {
		h = mix(h, uint64(i))
	}
	return h
}

// trapSerial is the serial elision of a trap: dive, then run every bait
// and window inline.
func trapSerial(seed uint64, n int) uint64 {
	sum := seed
	for k := 0; k < advBaitCycles; k++ {
		sum += heavyWork(seed+uint64(k), n*4) // bait
		sum += heavyWork(seed^uint64(k), 1)   // window work
	}
	return sum
}

// trapParallel dives depth N/2 via calls, then cycles fork-bait / window /
// join at the bottom.
func trapParallel(w *core.W, seed uint64, n int) uint64 {
	depth := n / 2
	var out uint64
	var dive func(w *core.W, d int)
	dive = func(w *core.W, d int) {
		if d > 0 {
			w.CallSized(frameSmall, func(w *core.W) { dive(w, d-1) })
			return
		}
		sum := seed
		baits := make([]uint64, advBaitCycles)
		for k := 0; k < advBaitCycles; k++ {
			k := k
			var fr core.Frame
			w.Init(&fr)
			w.ForkSized(&fr, frameSmall, func(w *core.W) {
				baits[k] = heavyWork(seed+uint64(k), n*4)
			})
			sum += heavyWork(seed^uint64(k), 1)
			w.Join(&fr)
			sum += baits[k]
		}
		out = sum
	}
	dive(w, depth)
	return out
}

// adversarialTree mirrors the parallel structure with calibrated weights:
// baits run ~N·200 units, heavies N·8, the theft window N·10.
func adversarialTree(n, heavies int) invoke.Task {
	segs := make([]invoke.Seg, 0, advTraps+heavies+2)
	for t := 0; t < advTraps; t++ {
		segs = append(segs, invoke.Seg{Work: 2, Fork: func() invoke.Task {
			return trapTree(n/2, n)
		}})
	}
	// A settling window so traps establish before the heavies appear.
	segs = append(segs, invoke.Seg{Work: int64(n) * 20})
	for i := 0; i < heavies; i++ {
		segs = append(segs, invoke.Seg{Work: 2, Fork: func() invoke.Task {
			return invoke.Task{Name: "heavy", Frame: frameSmall,
				Segs: []invoke.Seg{{Work: int64(n) * 8}}}
		}})
	}
	segs = append(segs, invoke.Seg{Join: true})
	return invoke.Task{Name: "adversarial", Frame: frameSmall, Segs: segs}
}

// trapTree dives via calls, then runs the bait cycles.
func trapTree(depth, n int) invoke.Task {
	if depth > 0 {
		d := depth
		return invoke.Task{Name: "dive", Frame: frameSmall,
			Key: uint64(n)<<20 | uint64(d)<<2 | 0x2,
			Segs: []invoke.Seg{
				{Work: 1, Call: func() invoke.Task { return trapTree(d-1, n) }},
			}}
	}
	segs := make([]invoke.Seg, 0, 2*advBaitCycles)
	for k := 0; k < advBaitCycles; k++ {
		segs = append(segs,
			invoke.Seg{Fork: func() invoke.Task {
				return invoke.Task{Name: "bait", Frame: frameSmall,
					Segs: []invoke.Seg{{Work: int64(n) * 200}}}
			}},
			// The theft window: the trap works while the bait sits in its
			// deque, then joins — blocking for the bait's remainder.
			invoke.Seg{Work: int64(n) * 10, Join: true},
		)
	}
	return invoke.Task{Name: "trap-bottom", Frame: frameSmall, Segs: segs}
}
