package bench

import (
	"io"
	"os"
	"testing"

	"fibril/internal/core"
	"fibril/internal/stats"
	"fibril/internal/trace"
)

// forkJoinLoop is the tracer-overhead microbenchmark body: b.N fork/join
// pairs on one worker, the tightest loop over the event-emitting hot
// paths. With one worker nothing is ever stolen, so the per-iteration
// cost is fork + inline-drain + join — exactly the paths that must stay
// at one pointer test when tracing is off or masked away.
func forkJoinLoop(b *testing.B, sink trace.Sink) {
	rt := core.NewRuntime(core.Config{Workers: 1, Sink: sink})
	b.ReportAllocs()
	b.ResetTimer()
	rt.Run(func(w *core.W) {
		var fr core.Frame
		w.Init(&fr)
		for i := 0; i < b.N; i++ {
			w.Fork(&fr, func(*core.W) {})
			w.Join(&fr)
		}
	})
}

// BenchmarkTracerOverhead measures the fork/join loop under each shipped
// sink. "nil" is the baseline every other lane is read against; "metrics"
// should sit within noise of it (the MetricsSink masks KindFork, so the
// fork path never touches a ring); "recorder" and "chrome" pay the full
// emit path per fork.
func BenchmarkTracerOverhead(b *testing.B) {
	b.Run("nil", func(b *testing.B) { forkJoinLoop(b, nil) })
	b.Run("metrics", func(b *testing.B) { forkJoinLoop(b, trace.NewMetricsSink()) })
	b.Run("recorder", func(b *testing.B) { forkJoinLoop(b, trace.NewRecorder(0)) })
	b.Run("chrome", func(b *testing.B) {
		cs := trace.NewChromeSink(io.Discard)
		defer cs.Close()
		forkJoinLoop(b, cs)
	})
}

// TestTracerOverheadSmoke is the CI guard for the nil-sink contract: the
// fork/join loop with a MetricsSink attached must cost within 10% of the
// nil-sink loop. Gated behind FIBRIL_OVERHEAD_SMOKE because timing
// assertions only make sense on quiet machines (the CI job sets it).
func TestTracerOverheadSmoke(t *testing.T) {
	if os.Getenv("FIBRIL_OVERHEAD_SMOKE") == "" {
		t.Skip("set FIBRIL_OVERHEAD_SMOKE=1 to run the timing smoke")
	}
	// Best-of-N damps scheduler noise; interleaving the lanes damps
	// thermal/frequency drift between them.
	const reps = 3
	var nilSamples, metSamples []float64
	for i := 0; i < reps; i++ {
		r := testing.Benchmark(func(b *testing.B) { forkJoinLoop(b, nil) })
		nilSamples = append(nilSamples, float64(r.T.Nanoseconds())/float64(r.N))
		r = testing.Benchmark(func(b *testing.B) { forkJoinLoop(b, trace.NewMetricsSink()) })
		metSamples = append(metSamples, float64(r.T.Nanoseconds())/float64(r.N))
	}
	nilSum, metSum := stats.Of(nilSamples), stats.Of(metSamples)
	nilNs, metNs := nilSum.Min, metSum.Min
	t.Logf("fork/join ns/op: nil sink %v, metrics sink %v (best %+.1f%%)",
		nilSum, metSum, 100*(metNs-nilNs)/nilNs)
	// One absolute nanosecond of slack keeps sub-100ns baselines from
	// flagging timer granularity as a regression.
	if metNs > nilNs*1.10+1 {
		t.Errorf("metrics-sink fork/join overhead %.1f ns/op exceeds nil-sink %.1f ns/op by more than 10%%",
			metNs, nilNs)
	}
}
