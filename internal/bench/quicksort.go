package bench

import (
	"fibril/internal/core"
	"fibril/internal/invoke"
)

// qsCutoff is the subarray size below which quicksort runs serially, as in
// the Cilk version.
const qsCutoff = 1024

// Quicksort sorts N seeded int64s (paper: N = 10⁸) with median-of-three
// parallel quicksort: partition, fork the left half, call the right,
// join. Its deep, pivot-skewed recursion produces the paper's largest
// Fibril depth (Table 3 lists D = 69) and the most steals (Table 2).
// N is the element count.
var Quicksort = register(&Spec{
	Name:        "quicksort",
	Description: "Parallel quicksort",
	ArgDoc:      "N = number of 64-bit keys",
	Default:     Arg{N: 300_000},
	Paper:       Arg{N: 100_000_000},
	Sim:         Arg{N: 3_000_000},
	Serial: func(a Arg) uint64 {
		data := qsInput(a.N)
		qsSerial(data)
		return qsChecksum(data)
	},
	Parallel: func(w *core.W, a Arg) uint64 {
		data := qsInput(a.N)
		qsParallel(w, data)
		return qsChecksum(data)
	},
	Tree: func(a Arg) invoke.Task {
		rng := splitmix64{state: 0x51C}
		return qsTree(a.N, &rng)
	},
})

func qsInput(n int) []int64 {
	rng := splitmix64{state: 0x5017}
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(rng.next())
	}
	return data
}

// qsChecksum verifies sortedness and folds a sample of elements.
func qsChecksum(data []int64) uint64 {
	h := uint64(0xCBF29CE484222325)
	for i := 1; i < len(data); i++ {
		if data[i-1] > data[i] {
			return 0 // unsorted: poison the checksum
		}
	}
	for i := 0; i < len(data); i += 1009 {
		h = mix(h, uint64(data[i]))
	}
	return mix(h, uint64(len(data)))
}

// median3 returns the median of a, b, c.
func median3(a, b, c int64) int64 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

// qsPartition is Hoare partition around the median of first/middle/last.
// With the pivot drawn from the data, the returned cut is always in
// [1, len-1], so neither side is empty.
func qsPartition(data []int64) int {
	n := len(data)
	pivot := median3(data[0], data[n/2], data[n-1])
	i, j := 0, n-1
	for {
		for data[i] < pivot {
			i++
		}
		for data[j] > pivot {
			j--
		}
		if i >= j {
			return j + 1
		}
		data[i], data[j] = data[j], data[i]
		i++
		j--
	}
}

func insertionSort(data []int64) {
	for i := 1; i < len(data); i++ {
		v := data[i]
		j := i - 1
		for j >= 0 && data[j] > v {
			data[j+1] = data[j]
			j--
		}
		data[j+1] = v
	}
}

func qsSerial(data []int64) {
	for len(data) > 32 {
		mid := qsPartition(data)
		if mid <= 0 || mid >= len(data) {
			// Unreachable with median-of-three Hoare; keep a correct
			// fallback rather than an infinite recursion.
			insertionSort(data)
			return
		}
		qsSerial(data[:mid])
		data = data[mid:]
	}
	insertionSort(data)
}

func qsParallel(w *core.W, data []int64) {
	if len(data) <= qsCutoff {
		qsSerial(data)
		return
	}
	mid := qsPartition(data)
	if mid <= 0 || mid >= len(data) {
		qsSerial(data)
		return
	}
	var fr core.Frame
	w.Init(&fr)
	left, right := data[:mid], data[mid:]
	w.ForkSized(&fr, frameLarge, func(w *core.W) { qsParallel(w, left) })
	w.CallSized(frameLarge, func(w *core.W) { qsParallel(w, right) })
	w.Join(&fr)
}

// qsTree models the recursion shape statistically: splits are drawn from a
// seeded distribution matching median-of-three behaviour (centred, mildly
// skewed), and leaf work is proportional to the serial cutoff sort. The
// real splits depend on the data; for the simulator only the shape
// statistics matter.
func qsTree(n int, rng *splitmix64) invoke.Task {
	if n <= qsCutoff {
		work := int64(n) / 16
		if work < 1 {
			work = 1
		}
		return invoke.Task{Name: "qs-leaf", Frame: frameLarge,
			Segs: []invoke.Seg{{Work: work}}}
	}
	// Split fraction in [0.25, 0.75): median-of-three keeps splits away
	// from the extremes.
	frac := 0.25 + float64(rng.next()%500)/1000.0
	left := int(float64(n) * frac)
	if left < 1 {
		left = 1
	}
	right := n - left
	partitionWork := int64(n) / 16 // the O(n) partition happens pre-fork
	if partitionWork < 1 {
		partitionWork = 1
	}
	lseed, rseed := rng.next(), rng.next()
	return invoke.Task{
		Name: "quicksort", Frame: frameLarge,
		Segs: []invoke.Seg{
			{Work: partitionWork, Fork: func() invoke.Task {
				r := splitmix64{state: lseed}
				return qsTree(left, &r)
			}},
			{Work: 0, Call: func() invoke.Task {
				r := splitmix64{state: rseed}
				return qsTree(right, &r)
			}},
			{Work: 1, Join: true},
		},
	}
}
