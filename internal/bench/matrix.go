package bench

// mat is a row-major matrix view with a stride, so quadrant submatrices
// alias the parent's storage without copying — the representation all the
// divide-and-conquer matrix benchmarks (matmul, rectmul, strassen, lu,
// cholesky) share.
type mat struct {
	data   []float64
	stride int
	rows   int
	cols   int
}

func newMat(rows, cols int) mat {
	return mat{data: make([]float64, rows*cols), stride: cols, rows: rows, cols: cols}
}

// randMat fills a fresh matrix with reproducible values in [-1, 1).
func randMat(seed uint64, rows, cols int) mat {
	m := newMat(rows, cols)
	rng := splitmix64{state: seed}
	for i := range m.data {
		m.data[i] = float64(int64(rng.next()%2000))/1000.0 - 1.0
	}
	return m
}

// spdMat builds a symmetric positive-definite matrix: a small seeded
// symmetric part plus strong diagonal dominance, the standard test input
// for cholesky and (pivot-free) lu.
func spdMat(seed uint64, n int) mat {
	m := newMat(n, n)
	rng := splitmix64{state: seed}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := float64(int64(rng.next()%1000))/1000.0 - 0.5
			m.set(i, j, v)
			m.set(j, i, v)
		}
		m.set(i, i, float64(n))
	}
	return m
}

func (m mat) at(i, j int) float64     { return m.data[i*m.stride+j] }
func (m mat) set(i, j int, v float64) { m.data[i*m.stride+j] = v }
func (m mat) add(i, j int, v float64) { m.data[i*m.stride+j] += v }

// sub returns the rows×cols view starting at (r0, c0).
func (m mat) sub(r0, c0, rows, cols int) mat {
	return mat{
		data:   m.data[r0*m.stride+c0:],
		stride: m.stride,
		rows:   rows,
		cols:   cols,
	}
}

// quad splits a matrix with even dimensions into quadrants.
func (m mat) quad() (m00, m01, m10, m11 mat) {
	hr, hc := m.rows/2, m.cols/2
	return m.sub(0, 0, hr, hc), m.sub(0, hc, hr, m.cols-hc),
		m.sub(hr, 0, m.rows-hr, hc), m.sub(hr, hc, m.rows-hr, m.cols-hc)
}

// checksum folds every element, scanning in row order so serial and
// parallel results (which are bit-identical) hash equally.
func (m mat) checksum() uint64 {
	h := uint64(0xCBF29CE484222325)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.stride : i*m.stride+m.cols]
		for _, v := range row {
			h = mix(h, f64bits(v))
		}
	}
	return h
}

// zero clears the view.
func (m mat) zero() {
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.stride : i*m.stride+m.cols]
		for j := range row {
			row[j] = 0
		}
	}
}

// copyFrom copies src (same shape) into m.
func (m mat) copyFrom(src mat) {
	for i := 0; i < m.rows; i++ {
		copy(m.data[i*m.stride:i*m.stride+m.cols],
			src.data[i*src.stride:i*src.stride+src.cols])
	}
}

// addFrom adds src (same shape) into m.
func (m mat) addFrom(src mat) {
	for i := 0; i < m.rows; i++ {
		d := m.data[i*m.stride : i*m.stride+m.cols]
		s := src.data[i*src.stride : i*src.stride+src.cols]
		for j := range d {
			d[j] += s[j]
		}
	}
}

// subFrom subtracts src (same shape) from m.
func (m mat) subFrom(src mat) {
	for i := 0; i < m.rows; i++ {
		d := m.data[i*m.stride : i*m.stride+m.cols]
		s := src.data[i*src.stride : i*src.stride+src.cols]
		for j := range d {
			d[j] -= s[j]
		}
	}
}

// matKernelBase is the dimension at which divide-and-conquer multiplies
// switch to the serial kernel.
const matKernelBase = 32

// mulKernel computes C += A·B serially with an ikj loop (stride-friendly).
func mulKernel(c, a, b mat) {
	for i := 0; i < a.rows; i++ {
		crow := c.data[i*c.stride : i*c.stride+c.cols]
		for k := 0; k < a.cols; k++ {
			av := a.at(i, k)
			if av == 0 {
				continue
			}
			brow := b.data[k*b.stride : k*b.stride+b.cols]
			for j := range crow {
				crow[j] += av * brow[j]
			}
		}
	}
}
