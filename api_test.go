package fibril_test

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"fibril"
)

var updateAPI = flag.Bool("update-api", false, "rewrite testdata/api_golden.txt from the current sources")

const apiGoldenPath = "testdata/api_golden.txt"

// TestAPISurface pins the package's exported API: every exported
// declaration of package fibril, rendered go-doc-style and sorted, must
// match the committed golden file. An accidental export, removal, or
// signature change fails here before it ships; a deliberate change is
// recorded with `go test -run TestAPISurface -update-api .` so the diff
// reviews alongside the code.
func TestAPISurface(t *testing.T) {
	got := apiSurface(t)
	if *updateAPI {
		if err := os.MkdirAll(filepath.Dir(apiGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(apiGoldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", apiGoldenPath)
		return
	}
	wantBytes, err := os.ReadFile(apiGoldenPath)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-api)", err)
	}
	want := string(wantBytes)
	if got == want {
		return
	}
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(want, "\n")
	seen := make(map[string]bool, len(gotLines))
	for _, l := range gotLines {
		seen[l] = true
	}
	for _, l := range wantLines {
		if l != "" && !seen[l] {
			t.Errorf("missing from API: %s", l)
		}
	}
	wanted := make(map[string]bool, len(wantLines))
	for _, l := range wantLines {
		wanted[l] = true
	}
	for _, l := range gotLines {
		if l != "" && !wanted[l] {
			t.Errorf("added to API:     %s", l)
		}
	}
	if t.Failed() {
		t.Log("intentional API changes: rerun with -update-api and commit the golden diff")
	} else {
		t.Errorf("API surface differs from %s in ordering/formatting; rerun with -update-api", apiGoldenPath)
	}
}

// apiSurface renders every exported top-level declaration in the package
// directory (tests excluded), one per line, sorted.
func apiSurface(t *testing.T) string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg := pkgs["fibril"]
	if pkg == nil {
		t.Fatalf("package fibril not found in %v", pkgs)
	}
	render := func(node any) string {
		var sb strings.Builder
		if err := printer.Fprint(&sb, fset, node); err != nil {
			t.Fatal(err)
		}
		// One line per declaration: collapse any multi-line rendering.
		return strings.Join(strings.Fields(sb.String()), " ")
	}
	var lines []string
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv != nil || !d.Name.IsExported() {
					continue // methods live on internal types; aliases re-export them
				}
				cp := *d
				cp.Doc, cp.Body = nil, nil
				lines = append(lines, render(&cp))
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() {
							cp := *s
							cp.Doc, cp.Comment = nil, nil
							lines = append(lines, "type "+render(&cp))
						}
					case *ast.ValueSpec:
						cp := *s
						cp.Doc, cp.Comment = nil, nil
						exported := false
						for _, n := range cp.Names {
							if n.IsExported() {
								exported = true
							}
						}
						if exported {
							lines = append(lines, fmt.Sprintf("%s %s", d.Tok, render(&cp)))
						}
					}
				}
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// TestJobSurfaceExposesNoInternalTypes pins the Job handle to publicly
// nameable types: every parameter and result in Job's method set must
// either live outside this module's internal/ tree or be re-exported by
// package fibril as an alias. Aliases preserve type identity, so the
// allowlist is checked by reflect.Type equality — a method that leaks an
// un-aliased internal type (one a caller could receive but never write
// down) fails here.
func TestJobSurfaceExposesNoInternalTypes(t *testing.T) {
	aliased := map[reflect.Type]bool{
		reflect.TypeOf(fibril.Job{}):   true,
		reflect.TypeOf(fibril.Stats{}): true,
	}
	seen := map[reflect.Type]bool{}
	var check func(typ reflect.Type, where string)
	check = func(typ reflect.Type, where string) {
		if seen[typ] {
			return
		}
		seen[typ] = true
		switch typ.Kind() {
		case reflect.Pointer, reflect.Slice, reflect.Array, reflect.Chan:
			check(typ.Elem(), where)
			return
		case reflect.Map:
			check(typ.Key(), where)
			check(typ.Elem(), where)
			return
		case reflect.Func:
			for i := 0; i < typ.NumIn(); i++ {
				check(typ.In(i), where)
			}
			for i := 0; i < typ.NumOut(); i++ {
				check(typ.Out(i), where)
			}
			return
		}
		if pp := typ.PkgPath(); strings.Contains(pp, "/internal/") && !aliased[typ] {
			t.Errorf("%s exposes internal type %s.%s with no fibril alias", where, pp, typ.Name())
		}
	}
	jt := reflect.TypeOf((*fibril.Job)(nil))
	if jt.NumMethod() == 0 {
		t.Fatal("*fibril.Job has no exported methods; Submit handles would be useless")
	}
	for i := 0; i < jt.NumMethod(); i++ {
		m := jt.Method(i)
		check(m.Type, "Job."+m.Name)
	}
}
