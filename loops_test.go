package fibril_test

import (
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"

	"fibril"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	rt := fibril.New(fibril.Config{Workers: 4})
	const n = 1000
	counts := make([]atomic.Int32, n)
	rt.Run(func(w *fibril.W) {
		fibril.For(w, 0, n, 16, func(w *fibril.W, i int) { counts[i].Add(1) })
	})
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("index %d executed %d times", i, got)
		}
	}
}

func TestForEmptyAndDegenerate(t *testing.T) {
	rt := fibril.New(fibril.Config{Workers: 2})
	var ran atomic.Int32
	rt.Run(func(w *fibril.W) {
		fibril.For(w, 5, 5, 8, func(*fibril.W, int) { ran.Add(1) })  // empty
		fibril.For(w, 9, 5, 8, func(*fibril.W, int) { ran.Add(1) })  // inverted
		fibril.For(w, 3, 4, -7, func(*fibril.W, int) { ran.Add(1) }) // grain ≤ 0
	})
	if got := ran.Load(); got != 1 {
		t.Errorf("ran %d iterations, want 1", got)
	}
}

// Property: For(lo,hi,grain) visits exactly [lo,hi) for arbitrary bounds
// and grains, under every strategy's scheduling.
func TestQuickForCoverage(t *testing.T) {
	rt := fibril.New(fibril.Config{Workers: 4})
	prop := func(loRaw, spanRaw uint16, grainRaw uint8) bool {
		lo := int(loRaw % 200)
		hi := lo + int(spanRaw%500)
		grain := int(grainRaw % 40)
		visited := make([]atomic.Int32, hi+1)
		rt.Run(func(w *fibril.W) {
			fibril.For(w, lo, hi, grain, func(_ *fibril.W, i int) {
				visited[i].Add(1)
			})
		})
		for i := 0; i < lo; i++ {
			if visited[i].Load() != 0 {
				return false
			}
		}
		for i := lo; i < hi; i++ {
			if visited[i].Load() != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestForEach(t *testing.T) {
	rt := fibril.New(fibril.Config{Workers: 4})
	data := make([]int64, 512)
	rt.Run(func(w *fibril.W) {
		fibril.ForEach(w, data, 32, func(_ *fibril.W, v *int64) { *v = 7 })
	})
	for i, v := range data {
		if v != 7 {
			t.Fatalf("data[%d] = %d", i, v)
		}
	}
}

func TestReduceSum(t *testing.T) {
	rt := fibril.New(fibril.Config{Workers: 4})
	var got int64
	rt.Run(func(w *fibril.W) {
		got = fibril.Reduce(w, 1, 1001, 16, 0,
			func(_ *fibril.W, i int) int64 { return int64(i) },
			func(a, b int64) int64 { return a + b })
	})
	if got != 500500 {
		t.Errorf("sum = %d, want 500500", got)
	}
}

func TestReduceNonCommutativeKeepsOrder(t *testing.T) {
	// String concatenation is associative but not commutative: Reduce must
	// produce the in-order concatenation regardless of scheduling.
	rt := fibril.New(fibril.Config{Workers: 4})
	letters := "abcdefghijklmnopqrstuvwxyz"
	var got string
	rt.Run(func(w *fibril.W) {
		got = fibril.Reduce(w, 0, len(letters), 3, "",
			func(_ *fibril.W, i int) string { return string(letters[i]) },
			func(a, b string) string { return a + b })
	})
	if got != letters {
		t.Errorf("Reduce reordered: %q", got)
	}
}

// Property: Reduce with + equals the closed-form sum for arbitrary ranges.
func TestQuickReduceSum(t *testing.T) {
	rt := fibril.New(fibril.Config{Workers: 4})
	prop := func(spanRaw uint16, grainRaw uint8) bool {
		n := int(spanRaw % 800)
		grain := int(grainRaw%50) + 1
		var got int64
		rt.Run(func(w *fibril.W) {
			got = fibril.Reduce(w, 0, n, grain, 0,
				func(_ *fibril.W, i int) int64 { return int64(i) },
				func(a, b int64) int64 { return a + b })
		})
		return got == int64(n)*int64(n-1)/2 || (n == 0 && got == 0)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestMapTransforms(t *testing.T) {
	rt := fibril.New(fibril.Config{Workers: 4})
	in := make([]int, 300)
	for i := range in {
		in[i] = i
	}
	out := make([]string, 300)
	rt.Run(func(w *fibril.W) {
		fibril.Map(w, out, in, 16, func(_ *fibril.W, v int) string {
			return strings.Repeat("x", v%3)
		})
	})
	for i := range out {
		if len(out[i]) != i%3 {
			t.Fatalf("out[%d] = %q", i, out[i])
		}
	}
}

func TestForPanicSurfaces(t *testing.T) {
	rt := fibril.New(fibril.Config{Workers: 4})
	defer func() {
		if recover() == nil {
			t.Error("expected the iteration panic to surface")
		}
	}()
	rt.Run(func(w *fibril.W) {
		fibril.For(w, 0, 100, 4, func(_ *fibril.W, i int) {
			if i == 63 {
				panic("iteration 63")
			}
		})
	})
}

func TestLoopsUnderEveryStrategy(t *testing.T) {
	for _, s := range fibril.Strategies() {
		rt := fibril.New(fibril.Config{Workers: 4, Strategy: s})
		var sum int64
		rt.Run(func(w *fibril.W) {
			sum = fibril.Reduce(w, 0, 500, 8, 0,
				func(_ *fibril.W, i int) int64 { return int64(i) },
				func(a, b int64) int64 { return a + b })
		})
		if sum != 124750 {
			t.Errorf("%v: sum = %d", s, sum)
		}
	}
}
