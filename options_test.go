package fibril_test

import (
	"errors"
	"testing"

	"fibril"
)

func optFib(w *fibril.W, n int, out *int64) {
	if n < 2 {
		*out = int64(n)
		return
	}
	var fr fibril.Frame
	w.Init(&fr)
	var x, y int64
	w.Fork(&fr, func(w *fibril.W) { optFib(w, n-1, &x) })
	w.Call(func(w *fibril.W) { optFib(w, n-2, &y) })
	w.Join(&fr)
	*out = x + y
}

func TestNewWithOptions(t *testing.T) {
	rec := fibril.NewRecorder(0)
	rt := fibril.NewWith(
		fibril.WithWorkers(2),
		fibril.WithStrategy(fibril.Fibril),
		fibril.WithSeed(42),
		fibril.WithSink(rec),
	)
	var got int64
	st, err := rt.RunErr(func(w *fibril.W) { optFib(w, 15, &got) })
	if err != nil {
		t.Fatal(err)
	}
	if got != 610 {
		t.Fatalf("fib(15)=%d, want 610", got)
	}
	if st.Workers != 2 {
		t.Fatalf("Workers=%d, want the WithWorkers(2) value", st.Workers)
	}
	if rec.Len() == 0 {
		t.Fatal("WithSink recorder saw no events")
	}
	total := 0
	for _, n := range rec.Counts() {
		total += n
	}
	if int64(total) < st.Forks {
		t.Fatalf("recorded %d events but Stats.Forks=%d", total, st.Forks)
	}
}

func TestWithConfigBase(t *testing.T) {
	base := fibril.Config{Workers: 3, Seed: 7}
	rt := fibril.NewWith(fibril.WithConfig(base), fibril.WithWorkers(1))
	st := rt.Run(func(w *fibril.W) {})
	if st.Workers != 1 {
		t.Fatalf("later option should win over WithConfig base: Workers=%d", st.Workers)
	}
}

func TestWithStealPolicy(t *testing.T) {
	for _, pol := range fibril.StealPolicies() {
		rt := fibril.NewWith(fibril.WithWorkers(4), fibril.WithStealPolicy(pol))
		var got int64
		st, err := rt.RunErr(func(w *fibril.W) { optFib(w, 15, &got) })
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if got != 610 {
			t.Fatalf("%v: fib(15)=%d, want 610", pol, got)
		}
		if st.Forks == 0 {
			t.Fatalf("%v: no forks recorded", pol)
		}
	}
}

func TestRunErr(t *testing.T) {
	rt := fibril.NewWith(fibril.WithWorkers(2))
	boom := errors.New("boom")
	_, err := rt.RunErr(func(w *fibril.W) {
		var fr fibril.Frame
		w.Init(&fr)
		w.Fork(&fr, func(*fibril.W) { panic(boom) })
		w.Join(&fr)
	})
	if err == nil {
		t.Fatal("RunErr returned nil for a panicking task")
	}
	var tp *fibril.TaskPanic
	if !errors.As(err, &tp) {
		t.Fatalf("RunErr error is %T, want *TaskPanic", err)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("TaskPanic does not unwrap to the panic value: %v", err)
	}
	// The runtime must remain usable after a recovered run.
	var got int64
	if _, err := rt.RunErr(func(w *fibril.W) { optFib(w, 10, &got) }); err != nil || got != 55 {
		t.Fatalf("runtime unusable after panic: fib(10)=%d err=%v", got, err)
	}
}

func TestSnapshotQuickstart(t *testing.T) {
	ms := fibril.NewMetricsSink()
	rt := fibril.NewWith(fibril.WithWorkers(4), fibril.WithSink(ms))
	var got int64
	rt.Run(func(w *fibril.W) { optFib(w, 20, &got) })
	m := rt.Snapshot()
	if m.Stats.Forks == 0 {
		t.Fatal("Snapshot has no forks after a run")
	}
	if m.Trace == nil {
		t.Fatal("Snapshot.Trace nil with a MetricsSink attached")
	}
	if m.Trace.TaskRun.Count != m.Stats.Steals-m.Stats.RestrictedSteals {
		t.Fatalf("TaskRun.Count=%d, want Steals-RestrictedSteals=%d",
			m.Trace.TaskRun.Count, m.Stats.Steals-m.Stats.RestrictedSteals)
	}
}
