// N-queens on the public API: irregular task parallelism with per-child
// result slots — one of the workloads the paper's evaluation leans on for
// load-balancing behaviour.
//
//	go run ./examples/nqueens -n 11 -workers 8 -strategy tbb
package main

import (
	"flag"
	"fmt"
	"os"

	"fibril"
)

func solve(w *fibril.W, n int, cols, d1, d2 uint32, out *int64) {
	full := uint32(1<<n) - 1
	if cols == full {
		*out = 1
		return
	}
	avail := full &^ (cols | d1 | d2)
	if avail == 0 {
		return
	}
	var fr fibril.Frame
	w.Init(&fr)
	counts := make([]int64, 0, n)
	for avail != 0 {
		bit := avail & (-avail)
		avail &^= bit
		counts = append(counts, 0)
		slot := &counts[len(counts)-1]
		c, dd1, dd2 := cols|bit, (d1|bit)<<1&full, (d2|bit)>>1
		w.Fork(&fr, func(w *fibril.W) { solve(w, n, c, dd1, dd2, slot) })
	}
	w.Join(&fr)
	var total int64
	for _, c := range counts {
		total += c
	}
	*out = total
}

func main() {
	n := flag.Int("n", 10, "board size")
	workers := flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
	strategy := flag.String("strategy", "fibril", "fibril | cilkplus | tbb | leapfrog | goroutine")
	flag.Parse()

	var strat fibril.Strategy
	found := false
	for _, s := range fibril.Strategies() {
		if s.String() == *strategy {
			strat, found = s, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown strategy %q\n", *strategy)
		os.Exit(2)
	}

	rt := fibril.New(fibril.Config{Workers: *workers, Strategy: strat})
	var count int64
	stats := rt.Run(func(w *fibril.W) { solve(w, *n, 0, 0, 0, &count) })
	fmt.Printf("%d-queens solutions: %d\n", *n, count)
	fmt.Printf("scheduler: %v\n", stats)
}
