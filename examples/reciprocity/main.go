// Serial-parallel reciprocity: the pattern the paper's introduction
// motivates and Cilk forbids. A generic, "serial" tree-walking library —
// written with no knowledge of the parallel runtime — invokes a visitor
// callback, and that callback forks tasks. Cilk rejects this program
// (a C function may not call a Cilk function); Fibril runs it.
//
//	go run ./examples/reciprocity -workers 4
package main

import (
	"flag"
	"fmt"
	"sync/atomic"

	"fibril"
)

// --- the "serial library": knows nothing about parallelism -------------

// Node is a binary tree node with a payload.
type Node struct {
	Value       int64
	Left, Right *Node
}

// WalkInorder is a plain recursive tree walk calling a visitor — the
// visitor/observer pattern from the paper's §1. It runs on the simulated
// cactus stack via w.Call, exactly as serial C code runs on the linear
// stack, and it never forks itself.
func WalkInorder(w *fibril.W, n *Node, visit func(*fibril.W, *Node)) {
	if n == nil {
		return
	}
	w.Call(func(w *fibril.W) { WalkInorder(w, n.Left, visit) })
	visit(w, n)
	w.Call(func(w *fibril.W) { WalkInorder(w, n.Right, visit) })
}

// --- the application: a parallel visitor --------------------------------

// expensive is a little CPU-bound analysis of one node's value.
func expensive(v int64) int64 {
	h := uint64(v) | 1
	for i := 0; i < 20_000; i++ {
		h ^= h >> 33
		h *= 0xFF51AFD7ED558CCD
	}
	return int64(h & 0xFFFF)
}

func build(depth int, next *int64) *Node {
	if depth == 0 {
		return nil
	}
	left := build(depth-1, next)
	*next++
	n := &Node{Value: *next, Left: left}
	n.Right = build(depth-1, next)
	return n
}

func main() {
	workers := flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
	depth := flag.Int("depth", 10, "tree depth")
	flag.Parse()

	var seq int64
	root := build(*depth, &seq)

	rt := fibril.New(fibril.Config{Workers: *workers})
	var sum atomic.Int64
	var visited atomic.Int64
	stats := rt.Run(func(w *fibril.W) {
		// The callback forks two analyses per node and joins them —
		// parallelism injected *through* the serial library.
		var outer fibril.Frame
		w.Init(&outer)
		WalkInorder(w, root, func(w *fibril.W, n *Node) {
			var fr fibril.Frame
			w.Init(&fr)
			var a, b int64
			w.Fork(&fr, func(w *fibril.W) { a = expensive(n.Value) })
			w.Call(func(w *fibril.W) { b = expensive(-n.Value) })
			w.Join(&fr)
			sum.Add(a + b)
			visited.Add(1)
		})
		w.Join(&outer)
	})

	fmt.Printf("visited %d nodes through the serial walker; checksum %d\n",
		visited.Load(), sum.Load())
	fmt.Printf("scheduler: %v\n", stats)
	if visited.Load() != seq {
		fmt.Printf("MISMATCH: built %d nodes\n", seq)
	}
}
