package main

import (
	"os/exec"
	"strings"
	"testing"

	"fibril"
)

// TestQuickstartSmoke execs the example exactly as README tells a user to
// run it and asserts the output it promises: the parfib result line (the
// binary self-checks against serial fib and exits 1 on mismatch) and the
// scheduler counter line.
func TestQuickstartSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("execs the example; skipped in short mode")
	}
	cmd := exec.Command("go", "run", ".", "-n", "20", "-workers", "2")
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("quickstart failed: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "parfib(20) = 6765") {
		t.Errorf("output lacks the fib(20) result:\n%s", s)
	}
	if !strings.Contains(s, "scheduler:") {
		t.Errorf("output lacks the scheduler stats line:\n%s", s)
	}
	if strings.Contains(s, "MISMATCH") {
		t.Errorf("quickstart reported a result mismatch:\n%s", s)
	}
}

// TestParfibUnit runs the example's kernel in-process so the example code
// itself is covered even in short mode.
func TestParfibUnit(t *testing.T) {
	for _, workers := range []int{1, 3} {
		rt := fibril.New(fibril.Config{Workers: workers})
		var result int64
		rt.Run(func(w *fibril.W) { parfib(w, 20, &result) })
		if result != 6765 {
			t.Fatalf("parfib(20) P=%d = %d, want 6765", workers, result)
		}
	}
}
