// Quickstart: the paper's Listing 1 (parfib) on the public API.
//
//	go run ./examples/quickstart -n 30 -workers 4
//
// It prints the result, the serial cross-check, and the scheduler counters
// so you can see steals/suspensions/unmaps happen.
package main

import (
	"flag"
	"fmt"
	"os"

	"fibril"
)

// parfib is Listing 1's parallel Fibonacci: fork n-1, call n-2, join.
func parfib(w *fibril.W, n int, out *int64) {
	if n < 2 {
		*out = int64(n)
		return
	}
	var fr fibril.Frame
	w.Init(&fr) // fibril_init(&fr)
	var x, y int64
	w.Fork(&fr, func(w *fibril.W) { parfib(w, n-1, &x) }) // fibril_fork
	w.Call(func(w *fibril.W) { parfib(w, n-2, &y) })      // plain call
	w.Join(&fr)                                           // fibril_join(&fr)
	*out = x + y
}

func fib(n int) int64 {
	if n < 2 {
		return int64(n)
	}
	return fib(n-1) + fib(n-2)
}

func main() {
	n := flag.Int("n", 28, "Fibonacci index")
	workers := flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
	flag.Parse()

	rt := fibril.New(fibril.Config{Workers: *workers})
	var result int64
	stats := rt.Run(func(w *fibril.W) { parfib(w, *n, &result) })

	fmt.Printf("parfib(%d) = %d\n", *n, result)
	if want := fib(*n); result != want {
		fmt.Printf("MISMATCH: serial fib(%d) = %d\n", *n, want)
		os.Exit(1)
	}
	fmt.Printf("scheduler: %v\n", stats)
}
