// Parallel-iteration helpers on the public API: For, Map, and an
// order-preserving Reduce — a Monte-Carlo π estimate, an in-place
// transform, and a non-commutative reduction, each cross-checked serially.
//
//	go run ./examples/loops -workers 4 -n 4000000
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"fibril"
)

// hash64 is a splitmix64 step used as the per-index RNG, so the parallel
// and serial estimates use identical samples.
func hash64(i uint64) uint64 {
	z := i*0x9E3779B97F4A7C15 + 0x123456789ABCDEF
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func inCircle(i int) int64 {
	r := hash64(uint64(i))
	x := float64(uint32(r))/float64(1<<32)*2 - 1
	y := float64(uint32(r>>32))/float64(1<<32)*2 - 1
	if x*x+y*y <= 1 {
		return 1
	}
	return 0
}

func main() {
	workers := flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
	n := flag.Int("n", 2_000_000, "Monte-Carlo samples")
	flag.Parse()

	rt := fibril.New(fibril.Config{Workers: *workers})

	// 1. Reduce: Monte-Carlo π.
	var hits int64
	rt.Run(func(w *fibril.W) {
		hits = fibril.Reduce(w, 0, *n, 4096, 0,
			func(_ *fibril.W, i int) int64 { return inCircle(i) },
			func(a, b int64) int64 { return a + b })
	})
	pi := 4 * float64(hits) / float64(*n)
	fmt.Printf("π ≈ %.4f from %d samples (error %+.4f)\n", pi, *n, pi-math.Pi)

	// Serial cross-check with identical samples.
	var serialHits int64
	for i := 0; i < *n; i++ {
		serialHits += inCircle(i)
	}
	if serialHits != hits {
		fmt.Printf("MISMATCH: serial hits %d vs parallel %d\n", serialHits, hits)
		os.Exit(1)
	}

	// 2. Map: an in-place numeric transform.
	data := make([]float64, 100_000)
	for i := range data {
		data[i] = float64(i)
	}
	rt.Run(func(w *fibril.W) {
		fibril.Map(w, data, data, 1024, func(_ *fibril.W, v float64) float64 {
			return math.Sqrt(v)
		})
	})
	fmt.Printf("Map: sqrt-transformed %d elements; data[99999] = %.3f\n",
		len(data), data[len(data)-1])

	// 3. Non-commutative Reduce: ordered concatenation survives any
	// scheduling.
	words := strings.Fields("the quick brown fox jumps over the lazy dog")
	var sentence string
	rt.Run(func(w *fibril.W) {
		sentence = fibril.Reduce(w, 0, len(words), 1, "",
			func(_ *fibril.W, i int) string { return words[i] + " " },
			func(a, b string) string { return a + b })
	})
	fmt.Printf("Reduce (ordered): %q\n", strings.TrimSpace(sentence))
}
