// Parallel quicksort on the public API — divide and conquer with a serial
// cutoff, the paper's deepest benchmark (Table 3 lists D = 69 for it).
//
//	go run ./examples/quicksort -n 2000000 -workers 8
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"fibril"
)

const cutoff = 2048

func quicksort(w *fibril.W, data []int64) {
	if len(data) <= cutoff {
		sort.Slice(data, func(i, j int) bool { return data[i] < data[j] })
		return
	}
	mid := partition(data)
	var fr fibril.Frame
	w.Init(&fr)
	left, right := data[:mid], data[mid:]
	w.Fork(&fr, func(w *fibril.W) { quicksort(w, left) })
	w.Call(func(w *fibril.W) { quicksort(w, right) })
	w.Join(&fr)
}

func partition(data []int64) int {
	n := len(data)
	a, b, c := data[0], data[n/2], data[n-1]
	pivot := a + b + c - max3(a, b, c) - min3(a, b, c) // median of three
	i, j := 0, n-1
	for {
		for data[i] < pivot {
			i++
		}
		for data[j] > pivot {
			j--
		}
		if i >= j {
			return j + 1
		}
		data[i], data[j] = data[j], data[i]
		i++
		j--
	}
}

func max3(a, b, c int64) int64 {
	if a < b {
		a = b
	}
	if a < c {
		a = c
	}
	return a
}

func min3(a, b, c int64) int64 {
	if a > b {
		a = b
	}
	if a > c {
		a = c
	}
	return a
}

func main() {
	n := flag.Int("n", 1_000_000, "elements to sort")
	workers := flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
	flag.Parse()

	data := make([]int64, *n)
	state := uint64(0x5017)
	for i := range data {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		data[i] = int64(z ^ (z >> 27))
	}

	rt := fibril.New(fibril.Config{Workers: *workers})
	stats := rt.Run(func(w *fibril.W) { quicksort(w, data) })

	for i := 1; i < len(data); i++ {
		if data[i-1] > data[i] {
			fmt.Printf("UNSORTED at index %d\n", i)
			os.Exit(1)
		}
	}
	fmt.Printf("sorted %d elements\n", *n)
	fmt.Printf("scheduler: %v\n", stats)
}
