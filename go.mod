module fibril

go 1.22
