// Serving-intake benchmarks and the CI allocation gate for the
// lock-minimized Submit path (CAS admission, sharded root queues, pooled
// Jobs, wake-one parking). Timing comparisons between the sharded
// pipeline and the mutex baseline live in the submitpath experiment
// (cmd/fibril-bench -experiment submitpath); here live the testing.B
// counters and the hard allocs/op assertions CI enforces next to
// TestForkPathGate.
package fibril_test

import (
	"context"
	"errors"
	"testing"

	"fibril"
)

// noopRoot is the package-level tiny request body: its func value is
// static, so Submit's measured allocations are the intake path's own.
func noopRoot(*fibril.W) {}

// fib10Root is the small fork-join request body (~170 tasks), for the
// lanes where the root actually schedules work.
func fib10Root(w *fibril.W) {
	var out int64
	benchFib(w, 10, &out)
}

func benchFib(w *fibril.W, n int, out *int64) {
	if n < 2 {
		*out = int64(n)
		return
	}
	var fr fibril.Frame
	w.Init(&fr)
	var a, b int64
	w.Fork(&fr, func(w *fibril.W) { benchFib(w, n-1, &a) })
	w.Call(func(w *fibril.W) { benchFib(w, n-2, &b) })
	w.Join(&fr)
	*out = a + b
}

// shedRuntime builds a runtime whose capacity is fully held by blocker
// jobs, so every further Submit resolves deterministically on the
// submitter's own goroutine (AdmitShed → ErrShed) — the pure submit-side
// cost with no scheduling in the measurement. The returned release
// function unblocks the blockers and closes the runtime.
func shedRuntime(tb testing.TB, intake fibril.IntakeKind) (*fibril.Runtime, func()) {
	tb.Helper()
	const workers = 2
	rt := fibril.NewWith(
		fibril.WithWorkers(workers),
		fibril.WithIntake(intake),
		fibril.WithMaxInflight(workers),
		fibril.WithAdmission(fibril.AdmitShed),
	)
	rt.Start()
	gate := make(chan struct{})
	blockers := make([]*fibril.Job, workers)
	for i := range blockers {
		blockers[i] = rt.Submit(func(*fibril.W) { <-gate })
	}
	// Shed one probe to confirm capacity is genuinely saturated before
	// anything is measured.
	if err := rt.Submit(noopRoot).Err(); !errors.Is(err, fibril.ErrShed) {
		tb.Fatalf("probe submit got %v, want ErrShed", err)
	}
	return rt, func() {
		close(gate)
		for _, j := range blockers {
			if err := j.Err(); err != nil {
				tb.Errorf("blocker: %v", err)
			}
		}
		if err := rt.Close(context.Background()); err != nil {
			tb.Errorf("Close: %v", err)
		}
	}
}

// BenchmarkSubmitThroughput is the closed-loop serving cost per request —
// Submit, wait, Release — across both intake pipelines and both root
// shapes. The open-loop multi-submitter sweep is the submitpath
// experiment; this is the steady per-op figure `go test -bench` tracks.
func BenchmarkSubmitThroughput(b *testing.B) {
	for _, intake := range fibril.IntakeKinds() {
		for _, root := range []struct {
			name string
			fn   func(*fibril.W)
		}{{"noop", noopRoot}, {"fib10", fib10Root}} {
			b.Run(intake.String()+"/"+root.name, func(b *testing.B) {
				rt := fibril.NewWith(fibril.WithWorkers(4), fibril.WithIntake(intake))
				rt.Start()
				defer rt.Close(context.Background())
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					j := rt.Submit(root.fn)
					if err := j.Err(); err != nil {
						b.Fatal(err)
					}
					j.Release()
				}
			})
		}
	}
}

// BenchmarkSubmitAllocs isolates the submit-side allocation count on the
// deterministic shed lane: every Submit resolves on the caller's
// goroutine, so allocs/op is exactly what the intake path itself pays.
func BenchmarkSubmitAllocs(b *testing.B) {
	for _, intake := range fibril.IntakeKinds() {
		b.Run(intake.String(), func(b *testing.B) {
			rt, done := shedRuntime(b, intake)
			defer done()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j := rt.Submit(noopRoot)
				if !errors.Is(j.Err(), fibril.ErrShed) {
					b.Fatal("expected shed")
				}
				j.Release()
			}
		})
	}
}

// TestSubmitAllocGate is the CI allocation gate for the serving intake,
// hard assertions only (timing lives in the submitpath experiment):
//
//  1. on the deterministic shed lane the sharded pipeline submits with
//     ZERO heap allocations per request — pooled Job, lock-free shed,
//     no clock read, no eager done channel, no eager stats snapshot;
//  2. the admitted closed-loop path stays within the ≤2 allocs/Submit
//     budget (the lazily allocated completion channel and its box —
//     paid only because the caller actually waits).
func TestSubmitAllocGate(t *testing.T) {
	t.Run("shed-zero-alloc", func(t *testing.T) {
		rt, done := shedRuntime(t, fibril.IntakeSharded)
		defer done()
		// Warm the per-shard Job pools past the measurement size.
		for i := 0; i < 512; i++ {
			rt.Submit(noopRoot).Release()
		}
		allocs := testing.AllocsPerRun(20_000, func() {
			rt.Submit(noopRoot).Release()
		})
		if allocs != 0 {
			t.Errorf("shed-lane Submit allocates %.2f/op, want 0", allocs)
		}
	})

	t.Run("admitted-budget", func(t *testing.T) {
		rt := fibril.NewWith(fibril.WithWorkers(2))
		rt.Start()
		defer rt.Close(context.Background())
		for i := 0; i < 512; i++ {
			j := rt.Submit(noopRoot)
			if err := j.Err(); err != nil {
				t.Fatal(err)
			}
			j.Release()
		}
		allocs := testing.AllocsPerRun(5_000, func() {
			j := rt.Submit(noopRoot)
			if err := j.Err(); err != nil {
				t.Fatal(err)
			}
			j.Release()
		})
		if allocs > 2 {
			t.Errorf("admitted closed-loop Submit allocates %.2f/op, want <= 2", allocs)
		}
	})
}
