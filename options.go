package fibril

import "fibril/internal/core"

// Option is a functional configuration knob for NewWith. Options are
// applied in order over a zero Config, so later options win and anything
// not set keeps the documented zero-value default. The plain Config
// struct (and New) remains fully supported; WithConfig bridges the two
// styles.
type Option func(*Config)

// NewWith creates a runtime from functional options — the long-lived-
// runtime counterpart to New:
//
//	rt := fibril.NewWith(
//		fibril.WithWorkers(8),
//		fibril.WithSink(fibril.NewMetricsSink()),
//	)
func NewWith(opts ...Option) *Runtime {
	var cfg Config
	for _, opt := range opts {
		opt(&cfg)
	}
	return core.NewRuntime(cfg)
}

// WithConfig starts from an explicit base Config instead of the zero
// value; options applied after it override its fields.
func WithConfig(cfg Config) Option {
	return func(c *Config) { *c = cfg }
}

// WithWorkers sets the number of worker slots P. Default: GOMAXPROCS.
func WithWorkers(n int) Option {
	return func(c *Config) { c.Workers = n }
}

// WithStrategy selects the scheduling policy. Default: Fibril, the
// paper's contribution.
func WithStrategy(s Strategy) Option {
	return func(c *Config) { c.Strategy = s }
}

// WithDeque selects the work-stealing deque implementation. Default:
// DequeTHE, the Cilk-5 protocol the paper's runtime uses.
func WithDeque(k DequeKind) Option {
	return func(c *Config) { c.Deque = k }
}

// WithStealPolicy selects the thief victim-selection discipline. Default:
// StealRandom, the paper's uniformly random sweep.
func WithStealPolicy(p StealPolicy) Option {
	return func(c *Config) { c.StealPolicy = p }
}

// WithPool selects the stack-pool implementation. Default: PoolSharded,
// the lock-free fast path.
func WithPool(k PoolKind) Option {
	return func(c *Config) { c.Pool = k }
}

// WithStackPages sets the simulated stack size in 4 KB pages. Default:
// 256 (1 MB stacks, as in the paper).
func WithStackPages(n int) Option {
	return func(c *Config) { c.StackPages = n }
}

// WithStackLimit bounds the stack pool (the Cilk Plus discipline).
// Default: unbounded, except 2400 under the CilkPlus strategy.
func WithStackLimit(n int) Option {
	return func(c *Config) { c.StackLimit = n }
}

// WithFrameBytes sets the simulated activation-frame size charged when a
// fork/call site does not specify one. Default: 192 bytes.
func WithFrameBytes(n int) Option {
	return func(c *Config) { c.FrameBytes = n }
}

// WithSeed seeds the per-worker steal RNGs. Default: a fixed constant,
// so runs are reproducible by default.
func WithSeed(seed uint64) Option {
	return func(c *Config) { c.Seed = seed }
}

// WithUnmapBatch turns on coalesced unmap for the Fibril strategy when
// n > 1: suspends post reclaim tickets flushed n at a time instead of
// madvising eagerly. Default: 0, the paper's eager per-suspend unmap.
func WithUnmapBatch(n int) Option {
	return func(c *Config) { c.UnmapBatch = n }
}

// WithMaxResidentPages sets a soft ceiling on simulated RSS in pages;
// workers over the ceiling drain deferred unmaps and strip pooled-stack
// residue before mapping fresh pages. Default: 0, no ceiling.
func WithMaxResidentPages(n int64) Option {
	return func(c *Config) { c.MaxResidentPages = n }
}

// WithSink attaches a scheduler-event sink (Recorder, ChromeSink,
// MetricsSink, or custom). Default: nil — observability off, one pointer
// test per event site.
func WithSink(s Sink) Option {
	return func(c *Config) { c.Sink = s }
}

// WithMaxInflight bounds the number of concurrently admitted Jobs on the
// serving lifecycle (Start/Submit/Close); excess submissions queue or
// shed per the admission policy. Default: 0, unlimited.
func WithMaxInflight(n int) Option {
	return func(c *Config) { c.MaxInflight = n }
}

// WithAdmission selects what Submit does with a job that does not fit:
// AdmitQueue parks it for FIFO admission as capacity frees up, AdmitShed
// rejects it immediately with ErrShed. Default: AdmitQueue.
func WithAdmission(p AdmissionPolicy) Option {
	return func(c *Config) { c.Admission = p }
}

// WithIntake selects the serving-intake pipeline: IntakeSharded is the
// lock-minimized CAS-admission path with sharded root queues and Job
// pooling, IntakeMutex the single-mutex baseline. Default: IntakeSharded.
func WithIntake(k IntakeKind) Option {
	return func(c *Config) { c.Intake = k }
}

// WithTenantQuotaPages bounds the simulated stack pages one tenant's
// admitted Jobs may reserve at once (each job reserves StackPages); use
// SubmitTenant to attribute submissions. Default: 0, unlimited.
func WithTenantQuotaPages(n int64) Option {
	return func(c *Config) { c.TenantQuotaPages = n }
}
