// Command fibril-sim gives direct access to the discrete-event
// work-stealing simulator: one benchmark tree, one strategy, one worker
// count, full result dump. Useful for exploring configurations the
// prepared experiments (cmd/fibril-bench) do not sweep.
//
// Usage:
//
//	fibril-sim -bench fib -strategy fibril -p 72
//	fibril-sim -bench fib -p 72 -helpfirst     # child-stealing engine
//	fibril-sim -bench quicksort -strategy tbb -p 16 -n 1000000
//	fibril-sim -bench fib -strategy cilkplus -p 72 -stack-limit 80
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fibril/internal/bench"
	"fibril/internal/core"
	"fibril/internal/invoke"
	"fibril/internal/sim"
)

func main() {
	var (
		name     = flag.String("bench", "fib", "benchmark: "+strings.Join(bench.Names(), ", "))
		strategy = flag.String("strategy", "fibril",
			"fibril | fibril-nounmap | fibril-mmap | cilkplus | cilkm | tbb | leapfrog")
		workers    = flag.Int("p", 8, "simulated worker count")
		n          = flag.Int("n", 0, "override the benchmark's N input (0 = Sim default)")
		m          = flag.Int("m", 0, "override the benchmark's M input")
		stackPages = flag.Int("stack-pages", 0, "stack size in 4KB pages (0 = strategy default)")
		stackLimit = flag.Int("stack-limit", 0, "bounded stack pool (0 = strategy default)")
		seed       = flag.Uint64("seed", 0, "steal-RNG seed (0 = fixed default)")
		helpFirst  = flag.Bool("helpfirst", false,
			"use the help-first child-stealing engine instead of work-first continuation stealing")
	)
	flag.Parse()

	s := bench.Get(*name)
	if s == nil {
		fmt.Fprintf(os.Stderr, "fibril-sim: unknown benchmark %q\n", *name)
		os.Exit(2)
	}
	strat, ok := parseStrategy(*strategy)
	if !ok {
		fmt.Fprintf(os.Stderr, "fibril-sim: unknown strategy %q\n", *strategy)
		os.Exit(2)
	}
	arg := s.Sim
	if *n != 0 {
		arg.N = *n
	}
	if *m != 0 {
		arg.M = *m
	}

	met := invoke.Analyze(s.Tree(arg))
	fmt.Printf("benchmark  %s %v — %s\n", s.Name, arg, s.Description)
	fmt.Printf("tree       T1=%d T∞=%d parallelism=%.1f tasks=%d forks=%d S1=%dB D=%d\n",
		met.Work, met.Span, met.Parallelism(), met.Tasks, met.Forks,
		met.MaxStackBytes, met.FibrilDepth)

	cfg := sim.Config{
		Workers: *workers, Strategy: strat, WorkFirst: !*helpFirst,
		StackPages: *stackPages, StackLimit: *stackLimit, Seed: *seed,
	}
	if cfg.StackPages == 0 && (strat == core.StrategyTBB || strat == core.StrategyLeapfrog) {
		cfg.StackPages = 2048 // inline stealers grow one stack per worker
	}
	r := sim.Run(cfg, s.Tree(arg))
	fmt.Printf("result     %v\n", r)
	fmt.Printf("speedup    %.2f (vs pure work T1)\n", float64(met.Work)/float64(r.Makespan))
	fmt.Printf("stealing   attempts=%d successes=%d suspends=%d resumes=%d\n",
		r.StealAttempts, r.Steals, r.Suspends, r.Resumes)
	fmt.Printf("memory     maxRSS=%d pages (%d KB), S%d/%d=%.2f pages/worker, faults=%d\n",
		r.VM.MaxRSSPages, r.VM.MaxRSSPages*4, *workers, *workers,
		r.MaxStackPagesPerWorker(), r.VM.PageFaults)
	fmt.Printf("stacks     created=%d maxInUse=%d poolStalls=%d unmaps=%d unmappedPages=%d\n",
		r.StacksCreated, r.MaxStacksUsed, r.PoolStalls, r.Unmaps, r.UnmappedPages)
}

func parseStrategy(s string) (core.Strategy, bool) {
	for _, st := range core.Strategies() {
		if st.String() == s {
			if st == core.StrategyGoroutine {
				return 0, false // real-runtime only
			}
			return st, true
		}
	}
	return 0, false
}
