package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runCmd builds and runs a command package in this repo via `go run`,
// returning its combined output. Smoke tests exec the real binaries so a
// flag-parsing or table-formatting regression cannot hide behind unit
// tests that bypass main.
func runCmd(t *testing.T, dir string, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "."}, args...)...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %s %v failed: %v\n%s", dir, args, err, out)
	}
	return string(out)
}

func TestBenchStealpathSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("execs the bench binary; skipped in short mode")
	}
	out := runCmd(t, ".", "-experiment", "stealpath", "-reps", "1", "-bench", "fib")
	if strings.TrimSpace(out) == "" {
		t.Fatal("stealpath experiment produced no output")
	}
	// The stealpath table must name both deque kinds and carry steal
	// counters — the parseable signal downstream perf tracking reads.
	for _, want := range []string{"the", "chaselev", "steals"} {
		if !strings.Contains(strings.ToLower(out), want) {
			t.Errorf("stealpath output lacks %q:\n%s", want, out)
		}
	}
}

func TestBenchStealPolicySmokeAndValidate(t *testing.T) {
	if testing.Short() {
		t.Skip("execs the bench binary; skipped in short mode")
	}
	path := filepath.Join(t.TempDir(), "stealpolicy.json")
	out := runCmd(t, ".", "-experiment", "stealpolicy", "-reps", "1", "-bench", "fib", "-json", path)
	// Both vehicles and every policy must appear in the table.
	for _, want := range []string{"real", "sim", "random", "lastvictim", "nearvictim", "stealhalf"} {
		if !strings.Contains(strings.ToLower(out), want) {
			t.Errorf("stealpolicy output lacks %q:\n%s", want, out)
		}
	}
	// Round-trip: the emitted JSON must pass the locality gate.
	out = runCmd(t, ".", "-validate-stealpolicy", path)
	if !strings.Contains(out, "ok") {
		t.Errorf("validate-stealpolicy did not report ok:\n%s", out)
	}
}

func TestBenchServeSmokeAndValidate(t *testing.T) {
	if testing.Short() {
		t.Skip("execs the bench binary; skipped in short mode")
	}
	path := filepath.Join(t.TempDir(), "serve.json")
	out := runCmd(t, ".", "-experiment", "serve", "-json", path)
	// All three serving modes and the latency columns must appear.
	for _, want := range []string{"light", "overload-queue", "overload-shed", "p50", "p999", "capacity"} {
		if !strings.Contains(strings.ToLower(out), want) {
			t.Errorf("serve output lacks %q:\n%s", want, out)
		}
	}
	// Round-trip: the emitted JSON must pass the saturation/latency gate.
	out = runCmd(t, ".", "-validate-serve", path)
	if !strings.Contains(out, "ok") {
		t.Errorf("validate-serve did not report ok:\n%s", out)
	}
}

func TestBenchCountersSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("execs the bench binary; skipped in short mode")
	}
	out := runCmd(t, ".", "-experiment", "counters", "-bench", "fib")
	if !strings.Contains(strings.ToLower(out), "fork") {
		t.Errorf("counters output lacks fork counts:\n%s", out)
	}
}
