// Command fibril-bench regenerates the tables and figures of the Fibril
// paper's evaluation (SPAA 2016, §5).
//
// Usage:
//
//	fibril-bench -experiment all            # quick pass over everything
//	fibril-bench -experiment fig4 -full     # Figure 4 at the paper's P grid
//	fibril-bench -experiment table2 -bench fib,quicksort
//	fibril-bench -experiment fig3 -reps 10  # the paper's ten repetitions
//
// Experiments: fig3, fig4, table2, table3, table4, mmap-vs-madvise,
// depth-restricted, stack-pool, stealpath, forkpath, stealpolicy, memory,
// serve, submitpath, counters, all. See EXPERIMENTS.md for the mapping to
// the paper and the expected shapes.
//
// The stealpath, forkpath, stealpolicy, memory, serve, and submitpath
// experiments support -json <path>, writing their rows as a JSON array —
// the machine-readable seeds of the repo's perf trajectory
// (results/BENCH_stealpath.json, results/BENCH_forkpath.json,
// results/BENCH_stealpolicy.json, results/BENCH_memory.json,
// results/BENCH_serve.json, and results/BENCH_submitpath.json). A committed BENCH_memory.json can be
// re-validated without re-running via -validate-memory <path>, which fails
// if the file is malformed, empty, or any row left its space envelope;
// -validate-stealpolicy <path> does the same for BENCH_stealpolicy.json,
// asserting the locality gate on the sim rows: every affinity policy must
// beat random on cold steals and warm fraction while staying within 10% of
// random's makespan. -validate-serve <path> checks BENCH_serve.json: at
// least two offered rates with one saturating, request conservation per
// row, a light-load p99 bound, overload-shed keeping p50 near the light
// leg's, and every drain leaving no queued tasks or pending reclaims.
// -validate-submitpath <path> checks BENCH_submitpath.json: per-row job
// conservation, the sharded shed lane allocating at most 2 per Submit
// (in practice zero), and the ≥3× intake-throughput gate — the sharded
// pipeline's shed-lane rate at 8 submitters must be at least three times
// the mutex baseline's, a per-op-work comparison that holds on any host.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"sync/atomic"

	"fibril"
	"fibril/internal/bench"
	"fibril/internal/core"
	"fibril/internal/exper"
	"fibril/internal/table"
)

func main() {
	var (
		experiment = flag.String("experiment", "all",
			"fig3 | fig4 | table2 | table3 | table4 | mmap-vs-madvise | depth-restricted | stack-pool | discipline | predict | stealpath | forkpath | stealpolicy | memory | serve | submitpath | counters | all")
		full = flag.Bool("full", false,
			"use simulation-scale inputs and the paper's worker grid (slow)")
		reps      = flag.Int("reps", 3, "timing repetitions for real-runtime measurements")
		list      = flag.String("bench", "", "comma-separated benchmark subset (default: all)")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned text")
		jsonPath  = flag.String("json", "", "write the stealpath experiment's rows as JSON to this path")
		helpFirst = flag.Bool("helpfirst", false,
			"simulate with the help-first child-stealing engine instead of the paper's work-first discipline")
		validateMemory = flag.String("validate-memory", "",
			"validate an existing BENCH_memory.json at this path and exit (CI smoke)")
		validateStealPolicy = flag.String("validate-stealpolicy", "",
			"validate an existing BENCH_stealpolicy.json at this path and exit (CI smoke)")
		validateServe = flag.String("validate-serve", "",
			"validate an existing BENCH_serve.json at this path and exit (CI smoke)")
		validateSubmitPath = flag.String("validate-submitpath", "",
			"validate an existing BENCH_submitpath.json at this path and exit (CI smoke)")
		serve = flag.String("serve", "",
			"serve live runtime metrics on this address (e.g. :8080) while experiments run; JSON at /debug/vars under the \"fibril\" key")
	)
	flag.Parse()

	if *validateMemory != "" {
		if err := checkMemoryJSON(*validateMemory); err != nil {
			fmt.Fprintln(os.Stderr, "fibril-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("fibril-bench: %s ok\n", *validateMemory)
		return
	}
	if *validateStealPolicy != "" {
		if err := checkStealPolicyJSON(*validateStealPolicy); err != nil {
			fmt.Fprintln(os.Stderr, "fibril-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("fibril-bench: %s ok\n", *validateStealPolicy)
		return
	}
	if *validateSubmitPath != "" {
		if err := checkSubmitPathJSON(*validateSubmitPath); err != nil {
			fmt.Fprintln(os.Stderr, "fibril-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("fibril-bench: %s ok\n", *validateSubmitPath)
		return
	}
	if *validateServe != "" {
		if err := checkServeJSON(*validateServe); err != nil {
			fmt.Fprintln(os.Stderr, "fibril-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("fibril-bench: %s ok\n", *validateServe)
		return
	}

	opts := exper.Options{Full: *full, Reps: *reps, HelpFirst: *helpFirst}
	if *serve != "" {
		if err := serveMetrics(*serve, &opts); err != nil {
			fmt.Fprintln(os.Stderr, "fibril-bench:", err)
			os.Exit(1)
		}
	}
	if *list != "" {
		opts.Benches = strings.Split(*list, ",")
		for _, n := range opts.Benches {
			// "for-loop" is the forkpath experiment's loop-engine
			// pseudo-benchmark, not a registry entry.
			if bench.Get(n) == nil && n != "for-loop" {
				fmt.Fprintf(os.Stderr, "fibril-bench: unknown benchmark %q (have: %s)\n",
					n, strings.Join(bench.Names(), ", "))
				os.Exit(2)
			}
		}
	}

	emit := func(t *table.Table) {
		var err error
		if *csv {
			err = t.CSV(os.Stdout)
		} else {
			err = t.Fprint(os.Stdout)
			fmt.Println()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "fibril-bench:", err)
			os.Exit(1)
		}
	}

	runFig4 := func() {
		specs := bench.All()
		for _, s := range specs {
			if s.Name == "adversarial" {
				continue
			}
			if len(opts.Benches) > 0 && !contains(opts.Benches, s.Name) {
				continue
			}
			emit(exper.Fig4(opts, s))
		}
	}

	switch *experiment {
	case "fig3":
		emit(exper.Fig3(opts))
	case "fig4":
		runFig4()
	case "table2":
		emit(exper.Table2(opts))
	case "table3":
		emit(exper.Table3(opts))
	case "table4":
		emit(exper.Table4(opts))
	case "mmap-vs-madvise":
		emit(exper.AblationMMap(opts))
	case "depth-restricted":
		emit(exper.AblationDepthRestricted(opts))
	case "stack-pool":
		emit(exper.AblationStackPool(opts))
	case "discipline":
		emit(exper.AblationDiscipline(opts))
	case "predict":
		for _, s := range bench.All() {
			if s.Name == "adversarial" {
				continue
			}
			if len(opts.Benches) > 0 && !contains(opts.Benches, s.Name) {
				continue
			}
			emit(exper.Predict(opts, s))
		}
	case "stealpath":
		rows, t := exper.StealPath(opts)
		emit(t)
		if *jsonPath != "" {
			if err := writeJSON(*jsonPath, rows); err != nil {
				fmt.Fprintln(os.Stderr, "fibril-bench:", err)
				os.Exit(1)
			}
		}
	case "forkpath":
		rows, t := exper.ForkPath(opts)
		emit(t)
		if *jsonPath != "" {
			if err := writeJSON(*jsonPath, rows); err != nil {
				fmt.Fprintln(os.Stderr, "fibril-bench:", err)
				os.Exit(1)
			}
		}
	case "stealpolicy":
		rows, t := exper.StealPolicy(opts)
		emit(t)
		if *jsonPath != "" {
			if err := writeJSON(*jsonPath, rows); err != nil {
				fmt.Fprintln(os.Stderr, "fibril-bench:", err)
				os.Exit(1)
			}
		}
	case "memory":
		rows, t := exper.Memory(opts)
		emit(t)
		if *jsonPath != "" {
			if err := writeJSON(*jsonPath, rows); err != nil {
				fmt.Fprintln(os.Stderr, "fibril-bench:", err)
				os.Exit(1)
			}
		}
	case "serve":
		rows, t := exper.Serve(opts)
		emit(t)
		if *jsonPath != "" {
			if err := writeJSON(*jsonPath, rows); err != nil {
				fmt.Fprintln(os.Stderr, "fibril-bench:", err)
				os.Exit(1)
			}
		}
	case "submitpath":
		rows, t := exper.SubmitPath(opts)
		emit(t)
		if *jsonPath != "" {
			if err := writeJSON(*jsonPath, rows); err != nil {
				fmt.Fprintln(os.Stderr, "fibril-bench:", err)
				os.Exit(1)
			}
		}
	case "counters":
		emit(exper.CountersSmoke(opts))
	case "all":
		emit(exper.Fig3(opts))
		runFig4()
		emit(exper.Table2(opts))
		emit(exper.Table3(opts))
		emit(exper.Table4(opts))
		emit(exper.AblationMMap(opts))
		emit(exper.AblationDepthRestricted(opts))
		emit(exper.AblationStackPool(opts))
		emit(exper.AblationDiscipline(opts))
		rows, t := exper.StealPath(opts)
		emit(t)
		if *jsonPath != "" {
			if err := writeJSON(*jsonPath, rows); err != nil {
				fmt.Fprintln(os.Stderr, "fibril-bench:", err)
				os.Exit(1)
			}
		}
		// -json targets the stealpath rows in "all" mode; run forkpath,
		// stealpolicy, and memory for their tables only.
		_, ft := exper.ForkPath(opts)
		emit(ft)
		_, pt := exper.StealPolicy(opts)
		emit(pt)
		_, mt := exper.Memory(opts)
		emit(mt)
		_, st := exper.Serve(opts)
		emit(st)
		_, spt := exper.SubmitPath(opts)
		emit(spt)
		emit(exper.CountersSmoke(opts))
	default:
		fmt.Fprintf(os.Stderr, "fibril-bench: unknown experiment %q\n", *experiment)
		flag.Usage()
		os.Exit(2)
	}
}

// serveMetrics starts the expvar endpoint and hooks opts.Observe so the
// "fibril" var always snapshots the runtime the experiments are currently
// driving. Runtime.Snapshot is safe mid-Run, so the endpoint serves live
// counters, gauges, and histograms while a measurement is executing.
func serveMetrics(addr string, opts *exper.Options) error {
	var current atomic.Pointer[core.Runtime]
	opts.Observe = func(rt *core.Runtime) { current.Store(rt) }
	fibril.PublishExpvar("fibril", func() fibril.Metrics {
		if rt := current.Load(); rt != nil {
			return rt.Snapshot()
		}
		return fibril.Metrics{}
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "fibril-bench: serving metrics on http://%s/debug/vars\n", ln.Addr())
	go func() {
		if err := http.Serve(ln, nil); err != nil {
			fmt.Fprintln(os.Stderr, "fibril-bench: metrics server:", err)
		}
	}()
	return nil
}

// checkMemoryJSON validates a BENCH_memory.json: it must parse as a
// non-empty []exper.MemoryRow and every row must have stayed within its
// (D+1)(S1p+1) space envelope.
func checkMemoryJSON(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rows []exper.MemoryRow
	if err := json.Unmarshal(data, &rows); err != nil {
		return fmt.Errorf("%s: malformed: %w", path, err)
	}
	if len(rows) == 0 {
		return fmt.Errorf("%s: no rows", path)
	}
	for i, r := range rows {
		if r.Benchmark == "" || r.Mode == "" || r.Workers <= 0 {
			return fmt.Errorf("%s: row %d incomplete: %+v", path, i, r)
		}
		if !r.WithinEnvelope {
			return fmt.Errorf("%s: row %d (%s/%s) left its space envelope: maxRSS=%d > %d pages",
				path, i, r.Benchmark, r.Mode, r.MaxRSSPages, r.EnvelopePages)
		}
	}
	return nil
}

// checkStealPolicyJSON validates a BENCH_stealpolicy.json: it must parse
// as a non-empty []exper.StealPolicyRow containing both real and sim rows,
// and the sim rows for lastvictim and stealhalf must satisfy the locality
// gate per benchmark — the policy re-hits warm victims strictly more often
// than random, pays no more cold raids, and stays within 10% of random's
// makespan. The gate is deliberately on the cache split, not raw makespan:
// on fib-like trees steals are off the critical path, so random is already
// makespan-near-optimal and the locality win shows up as warm-raid
// fraction and cold-raid count. nearvictim is exempt: neighbour-first
// probing diffuses work slowly around the ring, and that load-balancing
// loss swamps the cheap hops — the experiment reports it as the measured
// cost of abandoning random victim selection, not as a win.
func checkStealPolicyJSON(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rows []exper.StealPolicyRow
	if err := json.Unmarshal(data, &rows); err != nil {
		return fmt.Errorf("%s: malformed: %w", path, err)
	}
	if len(rows) == 0 {
		return fmt.Errorf("%s: no rows", path)
	}
	random := map[string]exper.StealPolicyRow{} // sim random row per benchmark
	reals := 0
	for i, r := range rows {
		if r.Benchmark == "" || r.Policy == "" || r.Workers <= 0 {
			return fmt.Errorf("%s: row %d incomplete: %+v", path, i, r)
		}
		switch r.Kind {
		case "real":
			reals++
		case "sim":
			if r.Policy == "random" {
				random[r.Benchmark] = r
			}
		default:
			return fmt.Errorf("%s: row %d has unknown kind %q", path, i, r.Kind)
		}
	}
	if reals == 0 {
		return fmt.Errorf("%s: no real-runtime rows", path)
	}
	if len(random) == 0 {
		return fmt.Errorf("%s: no sim random baseline rows", path)
	}
	warmFrac := func(r exper.StealPolicyRow) float64 {
		// Raids only: StealHalf loot extras count as steals but ride a
		// single raid's cache cost, so they belong in neither bucket.
		raids := r.WarmSteals + r.ColdSteals
		if raids == 0 {
			return 0
		}
		return float64(r.WarmSteals) / float64(raids)
	}
	for i, r := range rows {
		if r.Kind != "sim" || r.Policy != "lastvictim" && r.Policy != "stealhalf" {
			continue
		}
		base, ok := random[r.Benchmark]
		if !ok {
			return fmt.Errorf("%s: row %d (%s/%s) has no random baseline", path, i, r.Benchmark, r.Policy)
		}
		if r.ColdSteals > base.ColdSteals {
			return fmt.Errorf("%s: %s/%s pays %d cold steals, random pays %d",
				path, r.Benchmark, r.Policy, r.ColdSteals, base.ColdSteals)
		}
		if warmFrac(r) <= warmFrac(base) {
			return fmt.Errorf("%s: %s/%s warm fraction %.3f not above random's %.3f",
				path, r.Benchmark, r.Policy, warmFrac(r), warmFrac(base))
		}
		if float64(r.Makespan) > 1.10*float64(base.Makespan) {
			return fmt.Errorf("%s: %s/%s makespan %d exceeds 110%% of random's %d",
				path, r.Benchmark, r.Policy, r.Makespan, base.Makespan)
		}
	}
	return nil
}

// checkServeJSON validates a BENCH_serve.json: it must parse as a
// non-empty []exper.ServeRow spanning at least two offered rates, one of
// them saturating (rate above the calibrated capacity). Per row, the
// request-conservation law Completed+Shed+Drained == Requests must hold,
// latency quantiles must be monotone, and the post-Close drain must have
// left no queued tasks and no pending reclaims. The latency gates encode
// the serving story: under light load p99 stays under a generous absolute
// bound, and under saturating overload the shed posture keeps p50 within
// a small multiple of the light leg's p50 (with an absolute floor, since
// both are power-of-two bucket bounds) while actually shedding — flat
// latency for admitted work is what AdmitShed buys.
func checkServeJSON(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rows []exper.ServeRow
	if err := json.Unmarshal(data, &rows); err != nil {
		return fmt.Errorf("%s: malformed: %w", path, err)
	}
	if len(rows) == 0 {
		return fmt.Errorf("%s: no rows", path)
	}
	rates := map[float64]bool{}
	saturating := 0
	var light, shed *exper.ServeRow
	for i := range rows {
		r := &rows[i]
		if r.Mode == "" || r.Policy == "" || r.Workers <= 0 || r.RatePerSec <= 0 || r.Requests <= 0 {
			return fmt.Errorf("%s: row %d incomplete: %+v", path, i, *r)
		}
		rates[r.RatePerSec] = true
		if r.Saturating {
			if r.RatePerSec <= r.CapacityPerSec {
				return fmt.Errorf("%s: row %d (%s) marked saturating at rate %.0f <= capacity %.0f",
					path, i, r.Mode, r.RatePerSec, r.CapacityPerSec)
			}
			saturating++
		}
		if got := r.Completed + r.Shed + r.Drained; got != int64(r.Requests) {
			return fmt.Errorf("%s: row %d (%s): completed=%d + shed=%d + drained=%d != requests=%d",
				path, i, r.Mode, r.Completed, r.Shed, r.Drained, r.Requests)
		}
		if r.P50us <= 0 || r.P99us < r.P50us || r.P999us < r.P99us {
			return fmt.Errorf("%s: row %d (%s): quantiles not monotone: p50=%dµs p99=%dµs p999=%dµs",
				path, i, r.Mode, r.P50us, r.P99us, r.P999us)
		}
		if r.DrainQueued != 0 || r.DrainPending != 0 {
			return fmt.Errorf("%s: row %d (%s): drain left queued=%d pending=%d",
				path, i, r.Mode, r.DrainQueued, r.DrainPending)
		}
		switch r.Mode {
		case "light":
			light = r
		case "overload-shed":
			shed = r
		}
	}
	if len(rates) < 2 {
		return fmt.Errorf("%s: only %d distinct offered rates, want >= 2", path, len(rates))
	}
	if saturating == 0 {
		return fmt.Errorf("%s: no saturating row (rate > capacity)", path)
	}
	if light == nil {
		return fmt.Errorf("%s: no light row", path)
	}
	if light.P99us > 250_000 {
		return fmt.Errorf("%s: light-load p99=%dµs exceeds 250ms", path, light.P99us)
	}
	if shed != nil {
		if shed.Shed == 0 {
			return fmt.Errorf("%s: overload-shed row shed nothing", path)
		}
		bound := 8 * light.P50us
		if bound < 2000 {
			bound = 2000
		}
		if shed.P50us > bound {
			return fmt.Errorf("%s: overload-shed p50=%dµs not flat vs light p50=%dµs (bound %dµs)",
				path, shed.P50us, light.P50us, bound)
		}
	}
	return nil
}

// checkSubmitPathJSON validates a BENCH_submitpath.json: it must parse as
// a non-empty []exper.SubmitPathRow covering both intake pipelines on the
// shed lane. Per row the job conservation law Submitted == Shed + Drained
// + Completed and Admitted == Completed must hold (the experiment reads
// them off Stats after Close). The perf gates are deliberately on the
// shed lane, which measures pure per-submit work and is therefore
// host-independent: the sharded pipeline must reach at least 3× the mutex
// baseline's rate at 8 submitters, and must allocate at most 2 per
// Submit (in practice zero) at every submitter count.
func checkSubmitPathJSON(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rows []exper.SubmitPathRow
	if err := json.Unmarshal(data, &rows); err != nil {
		return fmt.Errorf("%s: malformed: %w", path, err)
	}
	if len(rows) == 0 {
		return fmt.Errorf("%s: no rows", path)
	}
	var shardedAt8, mutexAt8 float64
	for i := range rows {
		r := &rows[i]
		if r.Intake == "" || r.Lane == "" || r.Root == "" || r.Submitters <= 0 ||
			r.Workers <= 0 || r.Requests <= 0 || r.JobsPerSec <= 0 {
			return fmt.Errorf("%s: row %d incomplete: %+v", path, i, *r)
		}
		if r.Submitted != r.Shed+r.Drained+r.Completed {
			return fmt.Errorf("%s: row %d (%s/%s k=%d): submitted=%d != shed=%d + drained=%d + completed=%d",
				path, i, r.Lane, r.Intake, r.Submitters, r.Submitted, r.Shed, r.Drained, r.Completed)
		}
		if r.Admitted != r.Completed {
			return fmt.Errorf("%s: row %d (%s/%s k=%d): admitted=%d != completed=%d after Close",
				path, i, r.Lane, r.Intake, r.Submitters, r.Admitted, r.Completed)
		}
		if r.Lane != "shed" {
			continue
		}
		if r.Shed < int64(r.Requests) {
			return fmt.Errorf("%s: row %d (shed/%s k=%d): only %d of %d measured submissions shed — lane not deterministic",
				path, i, r.Intake, r.Submitters, r.Shed, r.Requests)
		}
		if r.Intake == "sharded" && r.AllocsPerOp > 2 {
			return fmt.Errorf("%s: row %d (shed/sharded k=%d): %.2f allocs/submit, want <= 2",
				path, i, r.Submitters, r.AllocsPerOp)
		}
		if r.Submitters == 8 && r.Root == "noop" {
			switch r.Intake {
			case "sharded":
				shardedAt8 = r.JobsPerSec
			case "mutex":
				mutexAt8 = r.JobsPerSec
			}
		}
	}
	if shardedAt8 == 0 || mutexAt8 == 0 {
		return fmt.Errorf("%s: missing shed-lane noop rows at 8 submitters (sharded=%.0f mutex=%.0f)",
			path, shardedAt8, mutexAt8)
	}
	if shardedAt8 < 3*mutexAt8 {
		return fmt.Errorf("%s: sharded shed-lane rate %.0f/s at 8 submitters is below 3x the mutex baseline %.0f/s",
			path, shardedAt8, mutexAt8)
	}
	return nil
}

// writeJSON writes v as indented JSON to path, creating it if needed.
func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
