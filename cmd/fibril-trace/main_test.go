package main

import (
	"bytes"
	"encoding/json"
	"testing"

	"fibril/internal/check"
	"fibril/internal/trace"
)

// chromeEvent mirrors the trace_event fields runChrome emits, enough to
// round-trip the stream back through encoding/json.
type chromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	S    string  `json:"s"`
	Args struct {
		Arg int64 `json:"arg"`
	} `json:"args"`
}

// TestChromeExportReconciles runs the -chrome path into a buffer, parses
// the document back as JSON, validates the trace_event shape, and
// reconciles the event stream against the run's Stats counters with the
// harness oracle — the acceptance check that the export is lossless.
func TestChromeExportReconciles(t *testing.T) {
	s, a, err := resolveBench("fib", 18, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	st, _, err := runChrome(s, a, 4, &buf)
	if err != nil {
		t.Fatalf("runChrome: %v", err)
	}

	var events []chromeEvent
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("output is not a valid JSON array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("trace document contains no events")
	}

	kinds := make(map[string]trace.Kind, trace.NumKinds())
	for i := 0; i < trace.NumKinds(); i++ {
		kinds[trace.Kind(i).String()] = trace.Kind(i)
	}
	ts := check.TraceSummary{Counts: make([]int64, trace.NumKinds())}
	for i, e := range events {
		k, ok := kinds[e.Name]
		if !ok {
			t.Fatalf("event %d: unknown name %q", i, e.Name)
		}
		if e.Pid != 1 || e.Tid < 0 || e.Ts < 0 {
			t.Fatalf("event %d: bad identity fields %+v", i, e)
		}
		switch e.Ph {
		case "i":
			if e.S != "t" {
				t.Fatalf("event %d: instant without thread scope: %+v", i, e)
			}
		case "X":
			if e.Dur <= 0 {
				t.Fatalf("event %d: complete slice with dur=%v", i, e.Dur)
			}
		default:
			t.Fatalf("event %d: unexpected phase %q", i, e.Ph)
		}
		ts.Counts[k]++
		switch k {
		case trace.KindUnmap:
			ts.UnmappedPages += e.Args.Arg
		case trace.KindReclaim:
			ts.ReclaimedPages += e.Args.Arg
		}
	}
	if err := check.ReconcileTrace(ts, st); err != nil {
		t.Fatal(err)
	}
	if ts.Counts[trace.KindFork] == 0 {
		t.Error("no fork events in a fib(18) run")
	}
}
