// Command fibril-trace prints the invocation-tree metrics of a benchmark —
// work T1, span T∞, average parallelism, serial stack depth S1, and the
// Fibril depth D (the quantities of the paper's §4.4 bounds and Table 3) —
// and can execute a benchmark on the REAL runtime with the scheduler
// tracer attached, printing a per-worker event timeline.
//
// Usage:
//
//	fibril-trace                            # all benchmarks at Sim inputs
//	fibril-trace -input paper               # Table 1 inputs (keyed trees only)
//	fibril-trace -bench fib -n 42
//	fibril-trace -bench fib -timeline -workers 8
//	fibril-trace -bench fib -chrome out.json  # Chrome trace_event JSON (Perfetto)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"fibril/internal/bench"
	"fibril/internal/core"
	"fibril/internal/invoke"
	"fibril/internal/table"
	"fibril/internal/trace"
	"fibril/internal/vm"
)

// keyedAtPaperScale lists the benchmarks whose trees are structurally
// memoized, so they analyze instantly even at Table 1 inputs. The others
// (adaptive or data-dependent trees) must be walked node by node.
var keyedAtPaperScale = map[string]bool{
	"fib": true, "matmul": true, "rectmul": true, "strassen": true,
	"lu": true, "cholesky": true, "fft": true, "heat": true,
}

// resolveBench looks up a -bench name and applies -n/-m overrides to its
// default input.
func resolveBench(name string, n, m int) (*bench.Spec, bench.Arg, error) {
	s := bench.Get(name)
	if s == nil {
		return nil, bench.Arg{}, fmt.Errorf("unknown benchmark %q", name)
	}
	a := s.Default
	if n != 0 {
		a.N = n
	}
	if m != 0 {
		a.M = m
	}
	return s, a, nil
}

// runTraced executes the benchmark on the real runtime with the given
// event sink attached, surfacing an escaped task panic as an error.
func runTraced(s *bench.Spec, a bench.Arg, workers int, sink trace.Sink) (core.Stats, time.Duration, error) {
	rt := core.NewRuntime(core.Config{
		Workers: workers, Strategy: core.StrategyFibril,
		StackPages: 4096, Sink: sink,
	})
	start := time.Now()
	st, err := rt.RunErr(func(w *core.W) { s.Parallel(w, a) })
	return st, time.Since(start), err
}

// runChrome executes the benchmark streaming a Chrome trace_event JSON
// document to out, closing the document even when the run fails.
func runChrome(s *bench.Spec, a bench.Arg, workers int, out io.Writer) (core.Stats, time.Duration, error) {
	cs := trace.NewChromeSink(out)
	st, elapsed, err := runTraced(s, a, workers, cs)
	if cerr := cs.Close(); err == nil {
		err = cerr
	}
	return st, elapsed, err
}

func main() {
	var (
		name     = flag.String("bench", "", "single benchmark (default: all)")
		input    = flag.String("input", "sim", "default | sim | paper")
		n        = flag.Int("n", 0, "override N (with -bench)")
		m        = flag.Int("m", 0, "override M (with -bench)")
		timeline = flag.Bool("timeline", false,
			"run the benchmark on the real runtime with tracing and print a worker timeline (with -bench)")
		chrome = flag.String("chrome", "",
			"run the benchmark on the real runtime and write a Chrome trace_event JSON file here (with -bench); load it in Perfetto or about:tracing")
		workers = flag.Int("workers", 8, "worker count for -timeline/-chrome")
		bucket  = flag.Duration("bucket", 0, "timeline column width (0 = auto)")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "fibril-trace:", err)
		os.Exit(1)
	}

	if *timeline && *chrome != "" {
		fmt.Fprintln(os.Stderr, "fibril-trace: -timeline and -chrome attach different sinks; pick one")
		os.Exit(2)
	}

	if *chrome != "" {
		if *name == "" {
			fmt.Fprintln(os.Stderr, "fibril-trace: -chrome requires -bench")
			os.Exit(2)
		}
		s, a, err := resolveBench(*name, *n, *m)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fibril-trace:", err)
			os.Exit(2)
		}
		f, err := os.Create(*chrome)
		if err != nil {
			fail(err)
		}
		st, elapsed, err := runChrome(s, a, *workers, f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fail(err)
		}
		fmt.Printf("%s %v on %d workers: %v, %v\n", s.Name, a, *workers, elapsed, st)
		fmt.Printf("wrote %s (open in https://ui.perfetto.dev or chrome://tracing)\n", *chrome)
		return
	}

	if *timeline {
		if *name == "" {
			fmt.Fprintln(os.Stderr, "fibril-trace: -timeline requires -bench")
			os.Exit(2)
		}
		s, a, err := resolveBench(*name, *n, *m)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fibril-trace:", err)
			os.Exit(2)
		}
		rec := trace.NewRecorder(0)
		st, elapsed, err := runTraced(s, a, *workers, rec)
		if err != nil {
			fail(err)
		}
		b := *bucket
		if b == 0 {
			b = elapsed / 100
			if b <= 0 {
				b = time.Microsecond
			}
		}
		fmt.Printf("%s %v on %d workers: %v, %v\n", s.Name, a, *workers, elapsed, st)
		if err := rec.Timeline(os.Stdout, b); err != nil {
			fail(err)
		}
		return
	}

	pick := func(s *bench.Spec) (bench.Arg, bool) {
		switch *input {
		case "default":
			return s.Default, true
		case "sim":
			return s.Sim, true
		case "paper":
			return s.Paper, keyedAtPaperScale[s.Name]
		}
		fmt.Fprintf(os.Stderr, "fibril-trace: unknown input class %q\n", *input)
		os.Exit(2)
		return bench.Arg{}, false
	}

	t := &table.Table{
		Title: fmt.Sprintf("Invocation-tree metrics (%s inputs)", *input),
		Header: []string{"benchmark", "input", "T1", "T∞", "T1/T∞",
			"tasks", "forks", "S1(B)", "S1(pages)", "D"},
	}
	specs := bench.All()
	if *name != "" {
		s := bench.Get(*name)
		if s == nil {
			fmt.Fprintf(os.Stderr, "fibril-trace: unknown benchmark %q\n", *name)
			os.Exit(2)
		}
		specs = []*bench.Spec{s}
	}
	for _, s := range specs {
		a, feasible := pick(s)
		if *name != "" {
			if *n != 0 {
				a.N = *n
			}
			if *m != 0 {
				a.M = *m
			}
			feasible = true // explicit request: let the user wait if huge
		}
		if !feasible {
			t.Add(s.Name, a.String(), "(unkeyed tree; too large to walk)", "", "", "", "", "", "", "")
			continue
		}
		met := invoke.Analyze(s.Tree(a))
		t.Add(s.Name, a.String(), met.Work, met.Span,
			fmt.Sprintf("%.1f", met.Parallelism()),
			met.Tasks, met.Forks, met.MaxStackBytes,
			vm.PageAlign(int(met.MaxStackBytes)), met.FibrilDepth)
	}
	if err := t.Fprint(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fibril-trace:", err)
		os.Exit(1)
	}
}
