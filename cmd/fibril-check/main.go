// Command fibril-check soak-tests the scheduler with the conformance
// harness (internal/check): it generates seeded random fork-join programs,
// runs each across the full executor matrix — real runtime × {THE,
// Chase–Lev, relaxed} × worker counts, plus both simulator engines — and
// checks
// every invariant oracle. On a violation it shrinks the generator
// parameters to a minimal failing configuration and prints the replay
// command, then exits 1.
//
// Usage:
//
//	fibril-check                    # 200 seeds, default matrix
//	fibril-check -n 5000            # longer soak
//	fibril-check -duration 2m       # time-bounded soak
//	fibril-check -seed 0x2a         # replay one seed
//	fibril-check -panics            # inject panics (real runtime only)
//	fibril-check -batch 8 -ceiling 512  # coalesced unmap + RSS ceiling
//	fibril-check -pool global       # the mutex pool instead of the sharded one
//	go test -race ... is unnecessary; build the soak itself with -race:
//	go run -race ./cmd/fibril-check -n 500
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fibril/internal/check"
	"fibril/internal/core"
)

func main() {
	var (
		seedFlag = flag.Uint64("seed", 0, "replay exactly this seed and exit (0 with -n: soak from seed 0)")
		oneSeed  = flag.Bool("one", false, "treat -seed as a single replay even when it is 0")
		n        = flag.Int("n", 200, "number of seeds to soak (ignored with -one or -duration)")
		duration = flag.Duration("duration", 0, "soak for this long instead of a fixed seed count")
		workers  = flag.String("workers", "1,2,4", "comma-separated real-runtime worker counts")
		deques   = flag.String("deque", "the,chaselev,relaxed", "deque kinds: the, chaselev, relaxed")
		strat    = flag.String("strategy", "fibril", "strategy: fibril, nounmap, mmap, cilkplus, tbb, leapfrog")
		panics   = flag.Bool("panics", false, "inject panics into 25% of leaves (disables the simulator legs)")
		nodes    = flag.Int("nodes", 0, "override Params.MaxNodes (0 = default)")
		nosim    = flag.Bool("nosim", false, "skip the simulator legs")
		pool     = flag.String("pool", "sharded", "stack pool kind: sharded, global")
		batch    = flag.Int("batch", 0, "Config.UnmapBatch for the real-runtime legs (0/1 = eager)")
		ceiling  = flag.Int64("ceiling", 0, "Config.MaxResidentPages for the real-runtime legs (0 = off)")
		quiet    = flag.Bool("q", false, "suppress the progress line")
	)
	flag.Parse()

	opts, err := parseOptions(*workers, *deques, *strat, *nosim, *pool, *batch, *ceiling)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fibril-check:", err)
		os.Exit(2)
	}
	params := check.Params{MaxNodes: *nodes}
	if *panics {
		params.PanicPct = 25
	}

	if *oneSeed || *seedFlag != 0 {
		if err := runSeed(*seedFlag, params, opts); err != nil {
			report(*seedFlag, params, opts, err)
			os.Exit(1)
		}
		fmt.Printf("seed %#x: conformant (%v)\n", *seedFlag, check.Generate(*seedFlag, params))
		return
	}

	start := time.Now()
	checked := 0
	for seed := uint64(0); ; seed++ {
		if *duration > 0 {
			if time.Since(start) > *duration {
				break
			}
		} else if checked >= *n {
			break
		}
		if err := runSeed(seed, params, opts); err != nil {
			report(seed, params, opts, err)
			os.Exit(1)
		}
		checked++
		if !*quiet && checked%50 == 0 {
			fmt.Printf("... %d seeds conformant (%.1fs)\n", checked, time.Since(start).Seconds())
		}
	}
	fmt.Printf("fibril-check: %d seeds conformant in %.1fs (matrix: workers=%s deques=%s strategy=%s)\n",
		checked, time.Since(start).Seconds(), *workers, *deques, *strat)
}

func runSeed(seed uint64, params check.Params, opts check.Options) error {
	return check.Differential(check.Generate(seed, params), opts)
}

// report prints the violation, then shrinks: it searches for smaller
// generator parameters under which the same seed still fails, so the
// replayed counterexample is as small as the bug allows.
func report(seed uint64, params check.Params, opts check.Options, err error) {
	fmt.Fprintf(os.Stderr, "fibril-check: VIOLATION at seed %#x\n%v\n\n%v\n",
		seed, check.Generate(seed, params), err)
	small, serr := shrink(seed, params, opts)
	if serr != nil {
		p := check.Generate(seed, small)
		fmt.Fprintf(os.Stderr, "\nshrunk to %v\n  params: %v\n  first violation:\n%v\n",
			p, small.String(), firstLine(serr))
		fmt.Fprintf(os.Stderr, "\nreplay: go run ./cmd/fibril-check -one -seed %#x -nodes %d\n",
			seed, p.Params.MaxNodes)
		return
	}
	fmt.Fprintf(os.Stderr, "\nreplay: go run ./cmd/fibril-check -one -seed %#x\n", seed)
}

// shrink lowers the structural parameters while the violation persists.
// The generator is deterministic in (seed, params), so each candidate is
// a cheap re-run; the last failing configuration wins.
func shrink(seed uint64, params check.Params, opts check.Options) (check.Params, error) {
	err := runSeed(seed, params, opts)
	if err == nil {
		return params, nil
	}
	best, bestErr := params.WithDefaults(), err
	for improved := true; improved; {
		improved = false
		for _, cand := range []check.Params{
			{MaxNodes: best.MaxNodes / 2, MaxDepth: best.MaxDepth, MaxFanout: best.MaxFanout, MaxCalls: best.MaxCalls, MaxWork: best.MaxWork, FrameMin: best.FrameMin, FrameMax: best.FrameMax, LoopPct: best.LoopPct, PanicPct: best.PanicPct},
			{MaxNodes: best.MaxNodes, MaxDepth: best.MaxDepth - 1, MaxFanout: best.MaxFanout, MaxCalls: best.MaxCalls, MaxWork: best.MaxWork, FrameMin: best.FrameMin, FrameMax: best.FrameMax, LoopPct: best.LoopPct, PanicPct: best.PanicPct},
			{MaxNodes: best.MaxNodes, MaxDepth: best.MaxDepth, MaxFanout: best.MaxFanout - 1, MaxCalls: best.MaxCalls, MaxWork: best.MaxWork, FrameMin: best.FrameMin, FrameMax: best.FrameMax, LoopPct: best.LoopPct, PanicPct: best.PanicPct},
			{MaxNodes: best.MaxNodes, MaxDepth: best.MaxDepth, MaxFanout: best.MaxFanout, MaxCalls: best.MaxCalls, MaxWork: best.MaxWork, FrameMin: best.FrameMin, FrameMax: best.FrameMax, LoopPct: 0, PanicPct: best.PanicPct},
		} {
			if cand.MaxNodes < 1 || cand.MaxDepth < 1 || cand.MaxFanout < 1 {
				continue
			}
			if cerr := runSeed(seed, cand, opts); cerr != nil {
				best, bestErr = cand.WithDefaults(), cerr
				improved = true
				break
			}
		}
	}
	return best, bestErr
}

func firstLine(err error) string {
	s := err.Error()
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

func parseOptions(workers, deques, strat string, nosim bool,
	pool string, batch int, ceiling int64) (check.Options, error) {
	var opts check.Options
	mem := check.MemParams{UnmapBatch: batch, MaxResidentPages: ceiling}
	switch strings.TrimSpace(pool) {
	case "sharded", "":
		mem.Pool = core.PoolSharded
	case "global":
		mem.Pool = core.PoolGlobal
	default:
		return opts, fmt.Errorf("bad -pool %q (want sharded, global)", pool)
	}
	opts.Mem = []check.MemParams{mem}
	for _, w := range strings.Split(workers, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(w), "%d", &n); err != nil || n < 1 {
			return opts, fmt.Errorf("bad -workers entry %q", w)
		}
		opts.Workers = append(opts.Workers, n)
	}
	for _, d := range strings.Split(deques, ",") {
		switch strings.TrimSpace(d) {
		case "the":
			opts.Deques = append(opts.Deques, core.DequeTHE)
		case "chaselev":
			opts.Deques = append(opts.Deques, core.DequeChaseLev)
		case "relaxed":
			opts.Deques = append(opts.Deques, core.DequeRelaxed)
		default:
			return opts, fmt.Errorf("bad -deque entry %q (want the, chaselev, relaxed)", d)
		}
	}
	switch strings.TrimSpace(strat) {
	case "fibril":
		opts.Strategies = []core.Strategy{core.StrategyFibril}
	case "nounmap":
		opts.Strategies = []core.Strategy{core.StrategyFibrilNoUnmap}
	case "mmap":
		opts.Strategies = []core.Strategy{core.StrategyFibrilMMap}
	case "cilkplus":
		opts.Strategies = []core.Strategy{core.StrategyCilkPlus}
	case "tbb":
		opts.Strategies = []core.Strategy{core.StrategyTBB}
	case "leapfrog":
		opts.Strategies = []core.Strategy{core.StrategyLeapfrog}
	default:
		return opts, fmt.Errorf("bad -strategy %q", strat)
	}
	opts.NoSim = nosim
	return opts, nil
}
